package transport

import (
	"runtime"
	"testing"
	"time"

	"mpichv/internal/vtime"
)

// proxyRig wires endpoint 1 (plain) and endpoint 2 (behind a chaos
// proxy) on one TCP fabric: 1 dials 2 through the proxy front, 2
// listens on its real bind address. Each endpoint's inbox is drained by
// a single collector goroutine so tests never race over Recv.
type proxyRig struct {
	a, b     Endpoint
	ach, bch <-chan Frame
	px       *ChaosProxy
}

func newProxyRig(t *testing.T, pol ProxyPolicy) *proxyRig {
	t.Helper()
	rt := vtime.NewReal()
	backend := freePort(t)
	fab := NewTCPFabric(rt, map[int]string{1: "127.0.0.1:0"})
	px, err := NewChaosProxy(rt, 2, "127.0.0.1:0", backend, pol)
	if err != nil {
		t.Fatal(err)
	}
	fab.SetAddr(2, px.Addr())
	fab.SetBind(2, backend)
	b := fab.Attach(2, "proxied")
	a := fab.Attach(1, "plain")
	t.Cleanup(func() {
		a.Close()
		b.Close()
		px.Close()
	})
	return &proxyRig{a: a, b: b, ach: collect(a), bch: collect(b), px: px}
}

// collect drains an endpoint's inbox into a buffered channel from a
// single goroutine; it closes the channel when the endpoint closes.
func collect(ep Endpoint) <-chan Frame {
	ch := make(chan Frame, 4096)
	go func() {
		defer close(ch)
		for {
			f, ok := ep.Inbox().Recv()
			if !ok {
				return
			}
			ch <- f
		}
	}()
	return ch
}

// freePort reserves an ephemeral port and returns its address.
func freePort(t *testing.T) string {
	t.Helper()
	fab := NewTCPFabric(vtime.NewReal(), map[int]string{9: "127.0.0.1:0"})
	ep := fab.Attach(9, "probe")
	addr := fab.addr(9)
	ep.Close()
	return addr
}

func recvN(ch <-chan Frame, n int, timeout time.Duration) []Frame {
	var out []Frame
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case f, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, f)
		case <-deadline:
			return out
		}
	}
	return out
}

func TestProxyPassThrough(t *testing.T) {
	rig := newProxyRig(t, ProxyPolicy{})
	const n = 50
	for i := 0; i < n; i++ {
		if !rig.a.Send(2, 7, []byte{byte(i), 1, 2, 3}) {
			t.Fatalf("send %d failed", i)
		}
	}
	got := recvN(rig.bch, n, 5*time.Second)
	if len(got) != n {
		t.Fatalf("proxied endpoint received %d/%d frames", len(got), n)
	}
	for i, f := range got {
		if f.From != 1 || f.Kind != 7 || len(f.Data) != 4 || f.Data[0] != byte(i) {
			t.Fatalf("frame %d corrupted in clean pass-through: %+v", i, f)
		}
	}
	// The reverse path (backend → peer over the same proxied conn).
	for i := 0; i < n; i++ {
		if !rig.b.Send(1, 9, []byte{byte(i)}) {
			t.Fatalf("reverse send %d failed", i)
		}
	}
	back := recvN(rig.ach, n, 5*time.Second)
	if len(back) != n {
		t.Fatalf("reverse path delivered %d/%d", len(back), n)
	}
	if c := rig.px.Counters(); c.FramesIn == 0 || c.FramesOut == 0 {
		t.Fatalf("proxy counted FramesIn=%d FramesOut=%d", c.FramesIn, c.FramesOut)
	}
}

// TestProxyDropVocabulary: the simulated chaos vocabulary applies to
// the live stream — dropped frames vanish without desynchronizing the
// framing, truncated ones keep a consistent length header.
func TestProxyDropVocabulary(t *testing.T) {
	rig := newProxyRig(t, ProxyPolicy{
		ChaosPolicy: ChaosPolicy{Seed: 7, Drop: 0.3, Truncate: 0.2, Corrupt: 0.1},
	})
	const n = 200
	for i := 0; i < n; i++ {
		rig.a.Send(2, 7, []byte{byte(i), byte(i), byte(i), byte(i)})
	}
	time.Sleep(300 * time.Millisecond)
	pc := rig.px.Counters()
	got := recvN(rig.bch, n-int(pc.Dropped), 2*time.Second)
	if pc.Dropped == 0 || pc.Truncated == 0 || pc.Corrupted == 0 {
		t.Fatalf("faults never fired: drop=%d trunc=%d corrupt=%d", pc.Dropped, pc.Truncated, pc.Corrupted)
	}
	whole, cut, empty := 0, 0, 0
	for _, f := range got {
		switch len(f.Data) {
		case 4:
			whole++
		case 2:
			cut++
		case 0:
			empty++
		default:
			t.Fatalf("frame with impossible payload length %d", len(f.Data))
		}
	}
	if int64(cut) != pc.Truncated || int64(empty) != pc.Corrupted {
		t.Fatalf("stream damage (cut=%d empty=%d) disagrees with counters (%d, %d)",
			cut, empty, pc.Truncated, pc.Corrupted)
	}
	// The transport hello frame also crosses the proxy and may be among
	// the dropped, so allow one frame of slack in the accounting.
	if diff := (whole + cut + empty) - (n - int(pc.Dropped)); diff < 0 || diff > 1 {
		t.Fatalf("delivered %d frames, want %d (±1 for the hello)", whole+cut+empty, n-int(pc.Dropped))
	}
}

// TestProxySeedDeterminism: one connection, sequential sends — the same
// seed must injure the same frames.
func TestProxySeedDeterminism(t *testing.T) {
	run := func() (dropped, truncated int64) {
		rig := newProxyRig(t, ProxyPolicy{
			ChaosPolicy: ChaosPolicy{Seed: 99, Drop: 0.25, Truncate: 0.25},
		})
		const n = 120
		for i := 0; i < n; i++ {
			rig.a.Send(2, 7, []byte{1, 2, 3, 4})
		}
		time.Sleep(200 * time.Millisecond)
		c := rig.px.Counters()
		recvN(rig.bch, n-int(c.Dropped), time.Second) // drain what survives
		c = rig.px.Counters()
		return c.Dropped, c.Truncated
	}
	d1, t1 := run()
	d2, t2 := run()
	if d1 != d2 || t1 != t2 {
		t.Fatalf("same seed, different schedule: drop %d vs %d, trunc %d vs %d", d1, d2, t1, t2)
	}
	if d1 == 0 || t1 == 0 {
		t.Fatalf("faults never fired (drop=%d trunc=%d)", d1, t1)
	}
}

// TestProxyPartitionIsolates: a wildcard partition toward the proxied
// node cuts inbound frames for its duration, then heals.
func TestProxyPartitionIsolates(t *testing.T) {
	rig := newProxyRig(t, ProxyPolicy{
		ChaosPolicy: ChaosPolicy{Partitions: []Partition{{A: -1, B: 2, From: 0, Until: 400 * time.Millisecond}}},
	})
	rig.a.Send(2, 7, []byte{1})
	time.Sleep(100 * time.Millisecond)
	if got := recvN(rig.bch, 1, 200*time.Millisecond); len(got) != 0 {
		t.Fatalf("frame crossed an active partition")
	}
	time.Sleep(400 * time.Millisecond) // partition lifts
	rig.a.Send(2, 7, []byte{2})
	if got := recvN(rig.bch, 1, 3*time.Second); len(got) != 1 || got[0].Data[0] != 2 {
		t.Fatalf("frame did not cross after heal: %v", got)
	}
	if rig.px.Counters().Partitioned == 0 {
		t.Fatal("partition counter never moved")
	}
}

// TestProxyResetRedials: mid-stream connection resets lose frames in
// flight but the sender's redial machinery re-establishes the path
// through the proxy, so later frames still arrive.
func TestProxyResetRedials(t *testing.T) {
	rig := newProxyRig(t, ProxyPolicy{ChaosPolicy: ChaosPolicy{Seed: 5}, Reset: 0.1})
	const n = 40
	delivered := 0
	for i := 0; i < n; i++ {
		rig.a.Send(2, 7, []byte{byte(i)})
		// Pace sends so a reset's reconnection isn't racing the next frame.
		if got := recvN(rig.bch, 1, 500*time.Millisecond); len(got) == 1 {
			delivered++
		}
	}
	pc := rig.px.Counters()
	if pc.Resets == 0 {
		t.Fatalf("resets never fired over %d frames", n)
	}
	// A reset costs at most the triggering frame plus one silently lost
	// write on the not-yet-noticed dead connection.
	if delivered == 0 || int64(delivered) < int64(n)-2*pc.Resets {
		t.Fatalf("delivered %d of %d with %d resets — redial is not recovering", delivered, n, pc.Resets)
	}
}

// TestProxyStallIsHalfOpen: a stalled direction freezes without
// closing; traffic resumes after StallFor.
func TestProxyStallIsHalfOpen(t *testing.T) {
	rig := newProxyRig(t, ProxyPolicy{Stall: 1, StallFor: 300 * time.Millisecond})
	start := time.Now()
	rig.a.Send(2, 7, []byte{1})
	got := recvN(rig.bch, 1, 5*time.Second)
	if len(got) != 1 {
		t.Fatal("stalled frame never arrived")
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Fatalf("frame arrived in %v, before the stall window", elapsed)
	}
	if rig.px.Counters().Stalls == 0 {
		t.Fatal("stall counter never moved")
	}
}

// TestProxyCloseReleasesGoroutines: the proxy joins all its goroutines
// on Close — no leaked pipes or delayed writers.
func TestProxyCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		rig := newProxyRig(t, ProxyPolicy{
			ChaosPolicy: ChaosPolicy{Seed: 3, Delay: 0.5, MaxDelay: 50 * time.Millisecond},
		})
		for i := 0; i < 100; i++ {
			rig.a.Send(2, 7, []byte{byte(i)})
		}
		recvN(rig.bch, 50, 2*time.Second)
		rig.a.Close()
		rig.b.Close()
		rig.px.Close()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, runtime.NumGoroutine())
}
