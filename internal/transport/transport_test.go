package transport

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"mpichv/internal/netsim"
	"mpichv/internal/vtime"
)

func TestSimFabricDelivery(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		fab := NewSimFabric(s, netsim.New(s, netsim.Params2003()), nil)
		a := fab.Attach(0, "a")
		b := fab.Attach(1, "b")
		if !a.Send(1, 7, []byte("hello")) {
			t.Fatal("Send failed")
		}
		f, ok := b.Inbox().Recv()
		if !ok {
			t.Fatal("inbox closed")
		}
		if f.From != 0 || f.Kind != 7 || string(f.Data) != "hello" {
			t.Errorf("frame = %+v", f)
		}
		bw := netsim.Params2003().Bandwidth
		tx := time.Duration(5.0 / bw * float64(time.Second))
		if s.Now() != 77*time.Microsecond+tx {
			t.Errorf("delivery at %v", s.Now())
		}
	})
}

func TestSimFabricKillDropsInFlight(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		fab := NewSimFabric(s, netsim.New(s, netsim.Params2003()), nil)
		a := fab.Attach(0, "a")
		b := fab.Attach(1, "b")
		a.Send(1, 1, []byte("doomed"))
		fab.Kill(1) // crash before delivery
		s.Sleep(time.Second)
		if _, ok := b.Inbox().TryRecv(); ok {
			t.Error("killed node received a frame")
		}
		if !b.Inbox().Closed() {
			t.Error("killed node inbox not closed")
		}
		// Sends to a dead node succeed from the sender's view.
		if !a.Send(1, 1, []byte("lost")) {
			t.Error("send to dead node reported local failure")
		}
	})
}

func TestSimFabricReattachReplaces(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		fab := NewSimFabric(s, netsim.New(s, netsim.Params2003()), nil)
		a := fab.Attach(0, "a")
		fab.Attach(1, "b-old")
		fab.Kill(1)
		b2 := fab.Attach(1, "b-new")
		a.Send(1, 2, []byte("fresh"))
		f, ok := b2.Inbox().Recv()
		if !ok || string(f.Data) != "fresh" {
			t.Fatalf("new endpoint did not receive: %+v ok=%v", f, ok)
		}
	})
}

func TestMemFabricRoundTrip(t *testing.T) {
	rt := vtime.NewReal()
	fab := NewMemFabric(rt)
	a := fab.Attach(0, "a")
	b := fab.Attach(1, "b")
	rt.Go("sender", func() {
		for i := 0; i < 50; i++ {
			a.Send(1, uint8(i), []byte{byte(i)})
		}
	})
	for i := 0; i < 50; i++ {
		f, ok := b.Inbox().Recv()
		if !ok || int(f.Kind) != i {
			t.Fatalf("frame %d = %+v ok=%v", i, f, ok)
		}
	}
	rt.Wait()
}

func TestFrameCodecRoundTrip(t *testing.T) {
	frames := []Frame{
		{From: 0, Kind: 0, Data: nil},
		{From: 42, Kind: 255, Data: []byte("payload")},
		{From: -1, Kind: 9, Data: bytes.Repeat([]byte{0xAB}, 100000)},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.From != want.From || got.Kind != want.Kind || !bytes.Equal(got.Data, want.Data) {
			t.Errorf("frame %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestPropertyFrameCodec(t *testing.T) {
	f := func(from int32, kind uint8, data []byte) bool {
		var buf bytes.Buffer
		in := Frame{From: int(from), Kind: kind, Data: data}
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		if len(out.Data) == 0 && len(in.Data) == 0 {
			out.Data, in.Data = nil, nil
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadFrameRejectsCorrupt(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 1, 0})); err == nil {
		t.Error("short frame length accepted")
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); err == nil {
		t.Error("giant frame length accepted")
	}
}

func TestTCPFabricLoopback(t *testing.T) {
	rt := vtime.NewReal()
	fab := NewTCPFabric(rt, map[int]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"})
	a := fab.Attach(0, "a")
	b := fab.Attach(1, "b")
	defer a.Close()
	defer b.Close()
	if !a.Send(1, 5, []byte("over tcp")) {
		t.Fatal("send failed")
	}
	f, ok := b.Inbox().Recv()
	if !ok || f.From != 0 || f.Kind != 5 || string(f.Data) != "over tcp" {
		t.Fatalf("frame = %+v ok=%v", f, ok)
	}
	// Bidirectional on the reverse path.
	if !b.Send(0, 6, []byte("back")) {
		t.Fatal("reverse send failed")
	}
	f, ok = a.Inbox().Recv()
	if !ok || f.From != 1 || string(f.Data) != "back" {
		t.Fatalf("reverse frame = %+v ok=%v", f, ok)
	}
}

func TestTCPFabricSendToDeadPeer(t *testing.T) {
	rt := vtime.NewReal()
	fab := NewTCPFabric(rt, map[int]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"})
	a := fab.Attach(0, "a")
	defer a.Close()
	b := fab.Attach(1, "b")
	b.Close()
	// Frame is dropped; local endpoint stays usable.
	if !a.Send(1, 1, []byte("x")) {
		t.Error("send to dead peer reported local failure")
	}
}
