package transport

import (
	"testing"
	"time"
)

func TestBackoffJitterDeterministic(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		b := Backoff{Base: 10 * time.Millisecond, Max: 160 * time.Millisecond, Jitter: 0.5, Seed: seed}
		var ds []time.Duration
		for i := 0; i < 12; i++ {
			ds = append(ds, b.Delay(i))
		}
		return ds
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: same seed gave %v then %v", i, a[i], b[i])
		}
	}
	c := mk(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical schedules: %v", a)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 5 * time.Millisecond, Max: 40 * time.Millisecond, Jitter: 0.3, Seed: 7}
	for attempt := 0; attempt < 64; attempt++ {
		d := b.Delay(attempt)
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", attempt, d)
		}
		if d > b.Max {
			t.Fatalf("attempt %d: delay %v exceeds Max %v", attempt, d, b.Max)
		}
		// Jitter is subtractive and bounded by the fraction.
		full := Backoff{Base: b.Base, Max: b.Max}.Delay(attempt)
		if min := time.Duration(float64(full) * (1 - b.Jitter)); d < min {
			t.Fatalf("attempt %d: delay %v below jitter floor %v", attempt, d, min)
		}
	}
}

func TestBackoffFullJitterStaysPositive(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Jitter: 1.0, Seed: 1}
	for attempt := 0; attempt < 40; attempt++ {
		if d := b.Delay(attempt); d <= 0 {
			t.Fatalf("attempt %d: delay %v must stay positive", attempt, d)
		}
	}
}

func TestBackoffZeroJitterUnchanged(t *testing.T) {
	with := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	for attempt, want := range []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond,
	} {
		if got := with.Delay(attempt); got != want {
			t.Fatalf("attempt %d: got %v want %v", attempt, got, want)
		}
	}
}
