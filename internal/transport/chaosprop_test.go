package transport

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mpichv/internal/netsim"
	"mpichv/internal/vtime"
)

// recFabric is an inner-fabric stub that records every Send the chaos
// layer lets through — virtual timestamp, addressing, kind, and a copy
// of the bytes. The recorded stream IS the fault schedule: drops never
// reach it, duplicates appear twice, jittered frames appear at their
// delayed instant, and corruption/truncation show up in the bytes.
type recFabric struct {
	rt     vtime.Runtime
	events []recEvent
}

type recEvent struct {
	at   time.Duration
	from int
	to   int
	kind uint8
	data []byte
}

func (f *recFabric) Attach(id int, name string) Endpoint {
	return &recEndpoint{fab: f, id: id,
		inbox: vtime.NewMailbox[Frame](f.rt, fmt.Sprintf("rec(%s#%d)", name, id))}
}
func (f *recFabric) Kill(int) {}

type recEndpoint struct {
	fab   *recFabric
	id    int
	inbox *vtime.Mailbox[Frame]
}

func (e *recEndpoint) ID() int                      { return e.id }
func (e *recEndpoint) Inbox() *vtime.Mailbox[Frame] { return e.inbox }
func (e *recEndpoint) Close()                       {}
func (e *recEndpoint) Send(to int, kind uint8, data []byte) bool {
	e.fab.events = append(e.fab.events, recEvent{
		at: e.fab.rt.Now(), from: e.id, to: to, kind: kind,
		data: append([]byte(nil), data...),
	})
	return true
}

// chaosSchedule drives a fixed two-sender workload through a chaos
// fabric over the recording stub and returns the resulting schedule.
func chaosSchedule(seed uint64) []recEvent {
	pol := ChaosPolicy{
		Seed:      seed,
		Drop:      0.15,
		Duplicate: 0.1,
		Delay:     0.3,
		MaxDelay:  2 * time.Millisecond,
		Corrupt:   0.05,
		Truncate:  0.05,
	}
	sim := vtime.NewSim()
	rec := &recFabric{rt: sim}
	sim.Run(func() {
		cf := NewChaosFabric(sim, rec, pol)
		a := cf.Attach(1, "a")
		b := cf.Attach(3, "b")
		for i := 0; i < 300; i++ {
			a.Send(2, 7, []byte{byte(i), byte(i >> 8), 0xaa, 0xbb})
			if i%3 == 0 {
				b.Send(2, 9, []byte{byte(i), 0xcc})
			}
			sim.Sleep(37 * time.Microsecond)
		}
		sim.Sleep(50 * time.Millisecond) // flush jittered deliveries
	})
	return rec.events
}

// TestChaosScheduleByteIdentical is the reproducibility property the
// chaos experiments depend on: the same seed over the same send
// sequence yields the same drop/dup/jitter schedule, byte for byte and
// virtual-instant for virtual-instant — not merely the same counts.
func TestChaosScheduleByteIdentical(t *testing.T) {
	s1, s2 := chaosSchedule(41), chaosSchedule(41)
	if len(s1) != len(s2) {
		t.Fatalf("same seed, different schedule length: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		a, b := s1[i], s2[i]
		if a.at != b.at || a.from != b.from || a.to != b.to || a.kind != b.kind || !bytes.Equal(a.data, b.data) {
			t.Fatalf("schedules diverge at event %d: %+v vs %+v", i, a, b)
		}
	}
	// The workload must actually have exercised every fault dimension:
	// an identical pair of empty schedules proves nothing.
	var dup, jittered, short int
	seen := map[string]int{}
	for _, e := range s1 {
		seen[string(e.data)]++
		if len(e.data) < 2 {
			short++
		}
	}
	for _, n := range seen {
		if n > 1 {
			dup++
		}
	}
	for i := 1; i < len(s1); i++ {
		if s1[i].at < s1[i-1].at {
			t.Fatalf("recorded schedule not time-ordered at %d", i)
		}
		if s1[i].at != s1[i-1].at {
			jittered++
		}
	}
	if len(s1) == 0 || dup == 0 || jittered == 0 || short == 0 {
		t.Errorf("degenerate schedule: %d events, %d dups, %d distinct instants, %d corrupt/truncated",
			len(s1), dup, jittered, short)
	}

	// And a different seed must produce a visibly different schedule.
	s3 := chaosSchedule(42)
	same := len(s1) == len(s3)
	if same {
		for i := range s1 {
			if s1[i].at != s3[i].at || !bytes.Equal(s1[i].data, s3[i].data) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 41 and 42 produced byte-identical schedules")
	}
}

// TestChaosPartitionHealingGapFree pins the healing property: with a
// partition as the only fault, every frame sent outside the cut window
// arrives, per-pair order is preserved, and the post-heal stream is
// gap-free — the cut costs exactly the frames sent during it, nothing
// after. A second, uncut pair runs alongside to show the partition is
// surgical.
func TestChaosPartitionHealingGapFree(t *testing.T) {
	const (
		frames = 150
		step   = 100 * time.Microsecond
		from   = 2 * time.Millisecond
		until  = 8 * time.Millisecond
	)
	pol := ChaosPolicy{Partitions: []Partition{{A: 1, B: 2, From: from, Until: until}}}
	got := map[int][]int{} // receiver id -> delivered seqs in order
	var cf *ChaosFabric
	sim := vtime.NewSim()
	sim.Run(func() {
		inner := NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		cf = NewChaosFabric(sim, inner, pol)
		cut := cf.Attach(1, "cut-src")
		cutDst := cf.Attach(2, "cut-dst")
		ok := cf.Attach(3, "ok-src")
		okDst := cf.Attach(4, "ok-dst")
		for i := 0; i < frames; i++ {
			seq := []byte{byte(i >> 8), byte(i)}
			cut.Send(2, 7, seq)
			ok.Send(4, 7, seq)
			sim.Sleep(step)
		}
		sim.Sleep(50 * time.Millisecond)
		for id, dst := range map[int]Endpoint{2: cutDst, 4: okDst} {
			for {
				f, okRecv := dst.Inbox().TryRecv()
				if !okRecv {
					break
				}
				got[id] = append(got[id], int(f.Data[0])<<8|int(f.Data[1]))
			}
		}
	})

	// The uncut pair sees everything, in order, gap-free.
	assertContiguous := func(name string, seqs []int, want []int) {
		t.Helper()
		if len(seqs) != len(want) {
			t.Fatalf("%s: delivered %d frames, want %d (%v)", name, len(seqs), len(want), seqs)
		}
		for i := range want {
			if seqs[i] != want[i] {
				t.Fatalf("%s: position %d holds seq %d, want %d", name, i, seqs[i], want[i])
			}
		}
	}
	all := make([]int, frames)
	for i := range all {
		all[i] = i
	}
	assertContiguous("uncut pair", got[4], all)

	// The cut pair loses exactly the frames sent inside [from, until):
	// seq i departs at i*step, so the survivors are the two contiguous
	// runs on either side of the window. Post-heal sequencing has no
	// gap: once the first post-heal seq lands, every later one does.
	var want []int
	for i := 0; i < frames; i++ {
		at := time.Duration(i) * step
		if at < from || at >= until {
			want = append(want, i)
		}
	}
	assertContiguous("cut pair", got[2], want)
	if int(cf.Partitioned) != frames-len(want) {
		t.Errorf("Partitioned = %d, want %d", cf.Partitioned, frames-len(want))
	}
}
