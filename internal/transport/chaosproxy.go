package transport

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mpichv/internal/trace"
	"mpichv/internal/vtime"
)

// ProxyPolicy configures a ChaosProxy. The embedded ChaosPolicy is the
// exact per-frame fault vocabulary of the simulated chaos fabric —
// drop, duplicate, delay/reorder, corrupt, truncate, timed partitions —
// applied verbatim to real byte streams: the proxy parses the length-
// framed wire protocol, so a "dropped frame" removes a whole frame from
// a live TCP stream without desynchronizing it, and a "truncated" one
// is re-framed with a consistent length so only its payload (which
// downstream integrity checks must catch) is damaged.
//
// On top of the shared vocabulary sit faults that only exist on real
// sockets:
//
//   - Reset tears down the connection pair mid-stream (RST-style); the
//     dialer must redial through the proxy.
//   - Stall freezes a direction for StallFor without closing anything —
//     the half-open case that read/write deadlines exist for.
//   - Bandwidth caps each direction's forwarding rate in bytes/second.
type ProxyPolicy struct {
	ChaosPolicy

	// Reset is the per-frame probability of closing both legs of the
	// connection carrying the frame.
	Reset float64
	// Stall is the per-frame probability of freezing the frame's
	// direction for StallFor (default 1s) while keeping the sockets
	// open: bytes pile up in kernel buffers until senders hit their
	// write deadlines.
	Stall    float64
	StallFor time.Duration
	// Bandwidth, when positive, caps each direction at this many
	// bytes/second by pacing frame forwarding.
	Bandwidth int64
}

// ChaosProxy fronts one node's TCP listener: peers dial the proxy's
// front address, the proxy dials the node's real (bind) address, and
// every frame of every connection crosses the fault injector in both
// directions. Because connections open with the transport's hello
// frame, the proxy learns which peer owns each inbound leg and applies
// node-pair partitions exactly like the simulated fabric: a frame from
// peer p toward the proxied node h travels the (p,h) edge, a reply
// travels (h,p).
//
// The variate stream is seeded and consumed in a fixed per-frame order
// (one shared stream across connections), so a given seed injects the
// same fault mix; exact frame interleaving across connections is
// scheduling-dependent, which is the nature of real sockets — the
// reproducible object is the seeded schedule, not the byte timeline.
type ChaosProxy struct {
	rt      vtime.Runtime
	home    int // node id of the proxied backend
	backend string
	ln      net.Listener
	pol     ProxyPolicy

	mu     sync.Mutex
	rng    uint64
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	// Counters mirror ChaosFabric's, plus the proxy-only faults.
	// Written with atomics from the per-connection pipe goroutines;
	// read via Counters().
	ctr ProxyCounters
}

// ProxyCounters is a snapshot of a proxy's injection and forwarding
// counters, safe to read while the proxy is live.
type ProxyCounters struct {
	Dropped     int64
	Duplicated  int64
	Delayed     int64
	Corrupted   int64
	Truncated   int64
	Partitioned int64
	Resets      int64
	Stalls      int64
	FramesIn    int64 // frames forwarded toward the backend
	FramesOut   int64 // frames forwarded toward peers
	BytesIn     int64
	BytesOut    int64
}

// Counters returns an atomic snapshot of the proxy's counters.
func (p *ChaosProxy) Counters() ProxyCounters {
	return ProxyCounters{
		Dropped:     atomic.LoadInt64(&p.ctr.Dropped),
		Duplicated:  atomic.LoadInt64(&p.ctr.Duplicated),
		Delayed:     atomic.LoadInt64(&p.ctr.Delayed),
		Corrupted:   atomic.LoadInt64(&p.ctr.Corrupted),
		Truncated:   atomic.LoadInt64(&p.ctr.Truncated),
		Partitioned: atomic.LoadInt64(&p.ctr.Partitioned),
		Resets:      atomic.LoadInt64(&p.ctr.Resets),
		Stalls:      atomic.LoadInt64(&p.ctr.Stalls),
		FramesIn:    atomic.LoadInt64(&p.ctr.FramesIn),
		FramesOut:   atomic.LoadInt64(&p.ctr.FramesOut),
		BytesIn:     atomic.LoadInt64(&p.ctr.BytesIn),
		BytesOut:    atomic.LoadInt64(&p.ctr.BytesOut),
	}
}

// NewChaosProxy listens on front and forwards to backend, injecting pol.
// front may use port 0; Addr reports the bound address.
func NewChaosProxy(rt vtime.Runtime, home int, front, backend string, pol ProxyPolicy) (*ChaosProxy, error) {
	ln, err := net.Listen("tcp", front)
	if err != nil {
		return nil, err
	}
	if pol.StallFor <= 0 {
		pol.StallFor = time.Second
	}
	if pol.MaxDelay <= 0 {
		pol.MaxDelay = time.Millisecond
	}
	p := &ChaosProxy{
		rt:      rt,
		home:    home,
		backend: backend,
		ln:      ln,
		pol:     pol,
		rng:     (pol.Seed + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9,
		conns:   make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's front address.
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// Policy returns the injection policy.
func (p *ChaosProxy) Policy() ProxyPolicy { return p.pol }

// AddTo exports the proxy's counters into a metrics registry under the
// "proxy." namespace. Counters accumulate across calls on the shared
// registry, so several proxies fold into one system-wide view.
func (p *ChaosProxy) AddTo(r *trace.Registry) {
	c := p.Counters()
	r.Counter("proxy.dropped").Add(c.Dropped)
	r.Counter("proxy.duplicated").Add(c.Duplicated)
	r.Counter("proxy.delayed").Add(c.Delayed)
	r.Counter("proxy.corrupted").Add(c.Corrupted)
	r.Counter("proxy.truncated").Add(c.Truncated)
	r.Counter("proxy.partitioned").Add(c.Partitioned)
	r.Counter("proxy.resets").Add(c.Resets)
	r.Counter("proxy.stalls").Add(c.Stalls)
	r.Counter("proxy.frames_in").Add(c.FramesIn)
	r.Counter("proxy.frames_out").Add(c.FramesOut)
	r.Counter("proxy.bytes_in").Add(c.BytesIn)
	r.Counter("proxy.bytes_out").Add(c.BytesOut)
}

// Close stops accepting, severs every proxied connection and joins the
// proxy's goroutines (delayed frames included).
func (p *ChaosProxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}

func (p *ChaosProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *ChaosProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *ChaosProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		b, err := net.Dial("tcp", p.backend)
		if err != nil {
			c.Close()
			continue
		}
		if !p.track(c) || !p.track(b) {
			c.Close()
			b.Close()
			return
		}
		link := &proxyLink{proxy: p, client: c, backend: b, peer: -1}
		p.wg.Add(2)
		go link.pipe(c, b, true)
		go link.pipe(b, c, false)
	}
}

// proxyLink is one proxied connection pair. peer is the node id learned
// from the first inbound frame (the transport hello); until it is
// known, partitions that need the peer treat it as unknown and pass.
type proxyLink struct {
	proxy   *ChaosProxy
	client  net.Conn
	backend net.Conn
	peer    int32
	cmu     sync.Mutex // client-side write ordering (delayed frames)
	bmu     sync.Mutex // backend-side write ordering
}

func (l *proxyLink) sever() {
	l.client.Close()
	l.backend.Close()
}

// verdict is one frame's drawn fate, all variates consumed in fixed
// order exactly like the simulated chaos fabric so the fault schedule
// does not depend on which faults trigger.
type verdict struct {
	drop    bool
	corrupt bool
	dup     bool
	jitter  time.Duration
	trunc   bool
	reset   bool
	stall   bool
	cut     bool
}

func (p *ChaosProxy) judge(from, to int, payloadLen int) verdict {
	now := p.rt.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	var v verdict
	for _, pt := range p.pol.Partitions {
		if from >= 0 && to >= 0 && pt.cuts(from, to, now) {
			v.cut = true
			atomic.AddInt64(&p.ctr.Partitioned, 1)
			return v
		}
	}
	roll := func() float64 {
		p.rng = p.rng*6364136223846793005 + 1442695040888963407
		return float64(p.rng>>11) / float64(1<<53)
	}
	v.drop = roll() < p.pol.Drop
	v.corrupt = roll() < p.pol.Corrupt && payloadLen > 0
	v.dup = roll() < p.pol.Duplicate
	if roll() < p.pol.Delay {
		v.jitter = time.Duration(roll() * float64(p.pol.MaxDelay))
		if v.jitter < time.Microsecond {
			v.jitter = time.Microsecond
		}
	}
	if p.pol.Truncate > 0 {
		v.trunc = roll() < p.pol.Truncate && payloadLen > 1
	}
	if p.pol.Reset > 0 {
		v.reset = roll() < p.pol.Reset
	}
	if p.pol.Stall > 0 {
		v.stall = roll() < p.pol.Stall
	}
	switch {
	case v.reset:
		atomic.AddInt64(&p.ctr.Resets, 1)
	case v.drop:
		atomic.AddInt64(&p.ctr.Dropped, 1)
	case v.corrupt:
		atomic.AddInt64(&p.ctr.Corrupted, 1)
	case v.trunc:
		atomic.AddInt64(&p.ctr.Truncated, 1)
	default:
		if v.dup {
			atomic.AddInt64(&p.ctr.Duplicated, 1)
		}
		if v.jitter > 0 {
			atomic.AddInt64(&p.ctr.Delayed, 1)
		}
	}
	if v.stall && !v.reset {
		atomic.AddInt64(&p.ctr.Stalls, 1)
	}
	return v
}

// pipe forwards frames src → dst, inbound toward the backend when
// toBackend, applying the policy per frame.
func (l *proxyLink) pipe(src, dst net.Conn, toBackend bool) {
	p := l.proxy
	defer p.wg.Done()
	defer p.untrack(src)
	defer l.sever() // a dead leg kills the pair; half-open is Stall's job
	wmu := &l.bmu
	if !toBackend {
		wmu = &l.cmu
	}
	var budget int64 // bandwidth pacing debt, bytes
	var since time.Duration
	for {
		f, err := ReadFrame(src)
		if err != nil {
			return
		}
		if toBackend && atomic.LoadInt32(&l.peer) < 0 {
			// The transport's first frame identifies the dialing peer.
			atomic.StoreInt32(&l.peer, int32(f.From))
		}
		from, to := int(atomic.LoadInt32(&l.peer)), p.home
		if !toBackend {
			from, to = to, from
		}
		v := p.judge(from, to, len(f.Data))
		if v.reset {
			return // defer severs both legs: a mid-stream RST
		}
		if v.stall {
			// Half-open: stop reading and forwarding this direction.
			// Kernel buffers fill, the sender's write deadline fires.
			p.rt.Sleep(p.pol.StallFor)
		}
		if v.cut || v.drop {
			continue
		}
		if v.corrupt {
			f.Data = f.Data[:0]
		} else if v.trunc {
			f.Data = f.Data[:len(f.Data)/2]
		}
		n := int64(frameHeaderLen + 4 + len(f.Data))
		if toBackend {
			atomic.AddInt64(&p.ctr.FramesIn, 1)
			atomic.AddInt64(&p.ctr.BytesIn, n)
		} else {
			atomic.AddInt64(&p.ctr.FramesOut, 1)
			atomic.AddInt64(&p.ctr.BytesOut, n)
		}
		write := func(fr Frame) {
			wmu.Lock()
			defer wmu.Unlock()
			if WriteFrame(dst, fr) != nil {
				l.sever()
			}
		}
		if v.dup {
			write(Frame{From: f.From, Kind: f.Kind, Data: append([]byte(nil), f.Data...)})
		}
		if v.jitter > 0 {
			fr := Frame{From: f.From, Kind: f.Kind, Data: append([]byte(nil), f.Data...)}
			jitter := v.jitter
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.rt.Sleep(jitter)
				write(fr)
			}()
		} else {
			write(f)
		}
		if p.pol.Bandwidth > 0 {
			// Token-bucket pacing: accumulate forwarded bytes and sleep
			// off the debt the configured rate cannot absorb.
			budget += n
			now := p.rt.Now()
			if since == 0 {
				since = now
			}
			earned := int64(float64(now-since) / float64(time.Second) * float64(p.pol.Bandwidth))
			if budget > earned {
				p.rt.Sleep(time.Duration(float64(budget-earned) / float64(p.pol.Bandwidth) * float64(time.Second)))
			}
		}
	}
}
