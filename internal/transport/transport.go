// Package transport moves frames between the nodes of a system. Three
// fabrics implement the same interface: a simulated fabric whose
// delivery times come from the netsim link model (used by all
// experiments), an immediate in-memory fabric (wall-clock tests), and a
// TCP fabric (real multi-process deployments, see cmd/vrun).
//
// A Frame is opaque to the fabric; the daemon package defines the kinds.
package transport

import (
	"fmt"

	"mpichv/internal/netsim"
	"mpichv/internal/vtime"
)

// Frame is the unit of exchange between nodes.
type Frame struct {
	From int
	Kind uint8
	Data []byte
}

// Endpoint is one node's attachment to a fabric.
type Endpoint interface {
	// ID returns the node id of this endpoint.
	ID() int
	// Send transmits a frame to node "to". Delivery is asynchronous;
	// frames to dead or missing nodes are silently dropped, like
	// writes to a broken TCP connection that nobody reads. Send
	// reports false if the local endpoint itself is closed.
	Send(to int, kind uint8, data []byte) bool
	// Inbox is the mailbox into which the fabric delivers frames.
	Inbox() *vtime.Mailbox[Frame]
	// Close detaches the endpoint; its inbox is closed.
	Close()
}

// Fabric connects endpoints by node id.
type Fabric interface {
	// Attach creates the endpoint for a node id. Re-attaching an id
	// replaces the previous endpoint (a restarted node); frames in
	// flight toward the old endpoint are lost.
	Attach(id int, name string) Endpoint
	// Kill abruptly detaches a node, as a crash would: its inbox
	// closes and in-flight frames to it are dropped.
	Kill(id int)
}

// Classifier tells the simulated fabric which per-message cost class a
// node belongs to (computing node vs auxiliary service node).
type Classifier func(id int) netsim.Class

// SimFabric delivers frames on a simulated network with modeled delays.
type SimFabric struct {
	sim      *vtime.Sim
	net      *netsim.Network
	classify Classifier
	eps      map[int]*simEndpoint
}

// NewSimFabric builds a fabric over the given network model. classify
// may be nil, in which case every node is a computing node.
func NewSimFabric(sim *vtime.Sim, net *netsim.Network, classify Classifier) *SimFabric {
	if classify == nil {
		classify = func(int) netsim.Class { return netsim.ClassCompute }
	}
	return &SimFabric{sim: sim, net: net, classify: classify, eps: make(map[int]*simEndpoint)}
}

// Net exposes the underlying network model (for stats and params).
func (f *SimFabric) Net() *netsim.Network { return f.net }

type simEndpoint struct {
	fab    *SimFabric
	id     int
	inbox  *vtime.Mailbox[Frame]
	closed bool
}

// Attach implements Fabric.
func (f *SimFabric) Attach(id int, name string) Endpoint {
	ep := &simEndpoint{
		fab:   f,
		id:    id,
		inbox: vtime.NewMailbox[Frame](f.sim, fmt.Sprintf("inbox(%s#%d)", name, id)),
	}
	if old := f.eps[id]; old != nil && !old.closed {
		old.closed = true
		old.inbox.Close()
	}
	f.eps[id] = ep
	return ep
}

// Kill implements Fabric.
func (f *SimFabric) Kill(id int) {
	if ep := f.eps[id]; ep != nil && !ep.closed {
		ep.closed = true
		ep.inbox.Close()
		delete(f.eps, id)
	}
}

func (e *simEndpoint) ID() int                      { return e.id }
func (e *simEndpoint) Inbox() *vtime.Mailbox[Frame] { return e.inbox }

func (e *simEndpoint) Close() {
	if !e.closed {
		e.closed = true
		e.inbox.Close()
		delete(e.fab.eps, e.id)
	}
}

func (e *simEndpoint) Send(to int, kind uint8, data []byte) bool {
	if e.closed {
		return false
	}
	dst := e.fab.eps[to]
	class := e.fab.classify(e.id)
	if c := e.fab.classify(to); c == netsim.ClassService {
		class = netsim.ClassService
	}
	delay := e.fab.net.Delay(e.id, to, len(data), class)
	if dst == nil || dst.closed {
		// The wire time was consumed, but nobody is listening.
		return true
	}
	dst.inbox.SendAfter(delay, Frame{From: e.id, Kind: kind, Data: data})
	return true
}

// MemFabric delivers frames immediately; it is the wall-clock in-memory
// fabric used by concurrency tests and examples that do not model time.
type MemFabric struct {
	rt  vtime.Runtime
	mu  chan struct{} // 1-token semaphore guarding eps in real mode
	eps map[int]*memEndpoint
}

// NewMemFabric returns an immediate-delivery fabric.
func NewMemFabric(rt vtime.Runtime) *MemFabric {
	f := &MemFabric{rt: rt, mu: make(chan struct{}, 1), eps: make(map[int]*memEndpoint)}
	f.mu <- struct{}{}
	return f
}

type memEndpoint struct {
	fab    *MemFabric
	id     int
	inbox  *vtime.Mailbox[Frame]
	closed bool
}

func (f *MemFabric) lock()   { <-f.mu }
func (f *MemFabric) unlock() { f.mu <- struct{}{} }

// Attach implements Fabric.
func (f *MemFabric) Attach(id int, name string) Endpoint {
	f.lock()
	defer f.unlock()
	ep := &memEndpoint{fab: f, id: id, inbox: vtime.NewMailbox[Frame](f.rt, fmt.Sprintf("inbox(%s#%d)", name, id))}
	if old := f.eps[id]; old != nil {
		old.closed = true
		old.inbox.Close()
	}
	f.eps[id] = ep
	return ep
}

// Kill implements Fabric.
func (f *MemFabric) Kill(id int) {
	f.lock()
	defer f.unlock()
	if ep := f.eps[id]; ep != nil {
		ep.closed = true
		ep.inbox.Close()
		delete(f.eps, id)
	}
}

func (e *memEndpoint) ID() int                      { return e.id }
func (e *memEndpoint) Inbox() *vtime.Mailbox[Frame] { return e.inbox }

func (e *memEndpoint) Close() {
	e.fab.lock()
	defer e.fab.unlock()
	if !e.closed {
		e.closed = true
		e.inbox.Close()
		delete(e.fab.eps, e.id)
	}
}

func (e *memEndpoint) Send(to int, kind uint8, data []byte) bool {
	e.fab.lock()
	if e.closed {
		e.fab.unlock()
		return false
	}
	dst := e.fab.eps[to]
	e.fab.unlock()
	if dst != nil {
		dst.inbox.Send(Frame{From: e.id, Kind: kind, Data: data})
	}
	return true
}
