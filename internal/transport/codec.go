package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format for a frame: a 4-byte big-endian length of the remainder,
// then 4 bytes of sender id, 1 byte of kind, and the payload.

// MaxFrameSize bounds a decoded frame; larger frames indicate stream
// corruption.
const MaxFrameSize = 1 << 30

const frameHeaderLen = 4 + 1

// WriteFrame encodes f onto w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Data) > MaxFrameSize {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(f.Data))
	}
	var hdr [4 + frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(frameHeaderLen+len(f.Data)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(int32(f.From)))
	hdr[8] = f.Kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Data) > 0 {
		if _, err := w.Write(f.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame decodes one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < frameHeaderLen || n > MaxFrameSize {
		return Frame{}, fmt.Errorf("transport: invalid frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, err
	}
	f := Frame{
		From: int(int32(binary.BigEndian.Uint32(buf[0:4]))),
		Kind: buf[4],
	}
	if n > frameHeaderLen {
		f.Data = buf[frameHeaderLen:]
	}
	return f, nil
}
