package transport

import (
	"testing"
	"time"

	"mpichv/internal/netsim"
	"mpichv/internal/vtime"
)

func TestBackoffDelays(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	if got := (Backoff{}).Delay(0); got != time.Millisecond {
		t.Errorf("zero Backoff base = %v, want 1ms", got)
	}
	if got := (Backoff{Base: time.Millisecond}).Delay(100); got != 32*time.Millisecond {
		t.Errorf("default cap = %v, want 32×base", got)
	}
}

// chaosRun sends n frames from node 1 to node 2 through a chaos-wrapped
// sim fabric and returns the delivered frames plus the fabric.
func chaosRun(t *testing.T, pol ChaosPolicy, n int, send func(ep Endpoint, i int)) ([]Frame, *ChaosFabric) {
	t.Helper()
	var got []Frame
	var cf *ChaosFabric
	sim := vtime.NewSim()
	sim.Run(func() {
		inner := NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		cf = NewChaosFabric(sim, inner, pol)
		src := cf.Attach(1, "src")
		dst := cf.Attach(2, "dst")
		for i := 0; i < n; i++ {
			send(src, i)
		}
		sim.Sleep(time.Second) // let every delivery (delayed ones included) land
		for {
			f, ok := dst.Inbox().TryRecv()
			if !ok {
				break
			}
			got = append(got, f)
		}
	})
	return got, cf
}

func plainSend(ep Endpoint, i int) { ep.Send(2, 7, []byte{byte(i), 1, 2, 3}) }

func TestChaosDropAll(t *testing.T) {
	got, cf := chaosRun(t, ChaosPolicy{Seed: 1, Drop: 1}, 50, plainSend)
	if len(got) != 0 || cf.Dropped != 50 {
		t.Errorf("delivered %d, Dropped = %d; want 0 and 50", len(got), cf.Dropped)
	}
}

func TestChaosDuplicateAll(t *testing.T) {
	got, cf := chaosRun(t, ChaosPolicy{Seed: 1, Duplicate: 1}, 50, plainSend)
	if len(got) != 100 || cf.Duplicated != 50 {
		t.Errorf("delivered %d, Duplicated = %d; want 100 and 50", len(got), cf.Duplicated)
	}
}

func TestChaosCorruptTruncates(t *testing.T) {
	got, cf := chaosRun(t, ChaosPolicy{Seed: 1, Corrupt: 1}, 20, plainSend)
	if len(got) != 20 || cf.Corrupted != 20 {
		t.Fatalf("delivered %d, Corrupted = %d; want 20 and 20", len(got), cf.Corrupted)
	}
	for _, f := range got {
		if len(f.Data) != 0 {
			t.Fatalf("corrupted frame still carries %d bytes", len(f.Data))
		}
	}
	// Frames with no payload cannot be corrupted and pass through.
	got, cf = chaosRun(t, ChaosPolicy{Seed: 1, Corrupt: 1}, 5, func(ep Endpoint, i int) {
		ep.Send(2, 7, nil)
	})
	if len(got) != 5 || cf.Corrupted != 0 {
		t.Errorf("empty frames: delivered %d, Corrupted = %d; want 5 and 0", len(got), cf.Corrupted)
	}
}

func TestChaosDelayStillDelivers(t *testing.T) {
	got, cf := chaosRun(t, ChaosPolicy{Seed: 3, Delay: 1, MaxDelay: 10 * time.Millisecond}, 50, plainSend)
	if len(got) != 50 || cf.Delayed != 50 {
		t.Errorf("delivered %d, Delayed = %d; want 50 each", len(got), cf.Delayed)
	}
}

func TestChaosPartitionWindow(t *testing.T) {
	// Frames sent inside [0, 10ms) are cut; after the window they pass.
	pol := ChaosPolicy{Partitions: []Partition{{A: 1, B: 2, From: 0, Until: 10 * time.Millisecond}}}
	var early, late []Frame
	var cf *ChaosFabric
	sim := vtime.NewSim()
	sim.Run(func() {
		inner := NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		cf = NewChaosFabric(sim, inner, pol)
		src := cf.Attach(1, "src")
		dst := cf.Attach(2, "dst")
		for i := 0; i < 10; i++ {
			src.Send(2, 7, []byte{byte(i)})
		}
		sim.Sleep(20 * time.Millisecond)
		for {
			f, ok := dst.Inbox().TryRecv()
			if !ok {
				break
			}
			early = append(early, f)
		}
		for i := 0; i < 10; i++ {
			src.Send(2, 7, []byte{byte(i)})
		}
		sim.Sleep(20 * time.Millisecond)
		for {
			f, ok := dst.Inbox().TryRecv()
			if !ok {
				break
			}
			late = append(late, f)
		}
	})
	if len(early) != 0 || cf.Partitioned != 10 {
		t.Errorf("during partition: delivered %d, Partitioned = %d; want 0 and 10", len(early), cf.Partitioned)
	}
	if len(late) != 10 {
		t.Errorf("after partition: delivered %d, want 10", len(late))
	}
}

func TestChaosWildcardPartitionIsolatesNode(t *testing.T) {
	pol := ChaosPolicy{Partitions: []Partition{{A: 2, B: -1, From: 0, Until: time.Hour}}}
	got, cf := chaosRun(t, pol, 10, plainSend)
	if len(got) != 0 || cf.Partitioned != 10 {
		t.Errorf("delivered %d, Partitioned = %d; want 0 and 10", len(got), cf.Partitioned)
	}
}

func TestChaosDeterministic(t *testing.T) {
	pol := ChaosPolicy{
		Seed:      42,
		Drop:      0.2,
		Duplicate: 0.2,
		Delay:     0.3,
		Corrupt:   0.1,
		MaxDelay:  5 * time.Millisecond,
	}
	run := func() (int, [5]int64) {
		got, cf := chaosRun(t, pol, 400, plainSend)
		return len(got), [5]int64{cf.Dropped, cf.Duplicated, cf.Delayed, cf.Corrupted, cf.Partitioned}
	}
	n1, c1 := run()
	n2, c2 := run()
	if n1 != n2 || c1 != c2 {
		t.Errorf("same seed diverged: %d %v vs %d %v", n1, c1, n2, c2)
	}
	if c1[0] == 0 || c1[1] == 0 || c1[2] == 0 || c1[3] == 0 {
		t.Errorf("mixed policy left a fault kind uninjected: %v", c1)
	}
	// A different seed must produce a different schedule.
	pol.Seed = 43
	_, c3 := run()
	if c1 == c3 {
		t.Errorf("seeds 42 and 43 produced identical fault counts %v", c1)
	}
}
