package transport

import (
	"fmt"
	"sync"
	"time"

	"mpichv/internal/trace"
	"mpichv/internal/vtime"
)

// ChaosPolicy configures deterministic fault injection on a fabric.
// The rates are independent per-frame probabilities in [0,1]; the same
// seed over the same send sequence always produces the same fault
// schedule (exactly reproducible in a Sim, where sends are serialized).
type ChaosPolicy struct {
	Seed uint64

	// Drop silently loses the frame, like a lossy link or a peer's
	// kernel buffer overflowing.
	Drop float64
	// Duplicate delivers the frame twice, like a retransmission whose
	// original was not lost after all.
	Duplicate float64
	// Delay holds the frame back for up to MaxDelay of extra jitter
	// before it enters the fabric, reordering it against later sends.
	Delay    float64
	MaxDelay time.Duration // jitter bound for delayed frames (default 1ms)
	// Corrupt truncates the frame's payload to zero bytes, modeling a
	// frame whose checksum fails: every decoder rejects it and none can
	// mistake it for valid data. Frames that legitimately carry no
	// payload pass through unharmed (there is nothing to corrupt).
	Corrupt float64
	// Truncate cuts the frame's payload in half, modeling a transfer
	// severed mid-flight: length-framed decoders reject the stub, and
	// blobs whose framing survives (a checkpoint image inside a save
	// request) must be caught by their integrity checksum downstream.
	Truncate float64

	// Partitions are timed cuts between node pairs.
	Partitions []Partition
}

// Active reports whether the policy injects anything at all.
func (p ChaosPolicy) Active() bool {
	return p.Drop > 0 || p.Duplicate > 0 || p.Delay > 0 || p.Corrupt > 0 ||
		p.Truncate > 0 || len(p.Partitions) > 0
}

// Lossy reports whether the policy can make a frame vanish (drop,
// corruption, partition) — the cases that need end-to-end retransmit
// and pull machinery rather than mere reordering tolerance.
func (p ChaosPolicy) Lossy() bool {
	return p.Drop > 0 || p.Corrupt > 0 || p.Truncate > 0 || len(p.Partitions) > 0
}

// Partition cuts every frame between nodes A and B, in both directions,
// during [From, Until). A negative A or B is a wildcard matching any
// node, so {A: 3, B: -1} isolates node 3 completely.
type Partition struct {
	A, B        int
	From, Until time.Duration
}

func (pt Partition) cuts(a, b int, now time.Duration) bool {
	if now < pt.From || now >= pt.Until {
		return false
	}
	match := func(x, y int) bool {
		return (pt.A < 0 || pt.A == x) && (pt.B < 0 || pt.B == y)
	}
	return match(a, b) || match(b, a)
}

// ChaosFabric wraps any Fabric and injects the faults of a ChaosPolicy
// on every Send. Endpoints, inboxes and Kill pass straight through to
// the inner fabric, so daemons cannot tell they are running on a
// hostile network. The counters record what was injected; read them
// after the run (they are guarded by the fabric's lock during it).
type ChaosFabric struct {
	rt    vtime.Runtime
	inner Fabric
	pol   ChaosPolicy

	mu  sync.Mutex
	rng uint64
	n   uint64 // delayed-delivery actor naming

	Dropped     int64 // frames silently lost
	Duplicated  int64 // frames delivered twice
	Delayed     int64 // frames held back by extra jitter
	Corrupted   int64 // frames truncated to an undecodable stub
	Truncated   int64 // frames cut in half mid-flight
	Partitioned int64 // frames cut by an active partition
}

// AddTo exports the fabric's fault counters into a metrics registry
// under the "chaos." namespace. Read it only after the run (or from
// the owning actor): the counters themselves are sim-serialized.
func (f *ChaosFabric) AddTo(r *trace.Registry) {
	r.Counter("chaos.dropped").Add(f.Dropped)
	r.Counter("chaos.duplicated").Add(f.Duplicated)
	r.Counter("chaos.delayed").Add(f.Delayed)
	r.Counter("chaos.corrupted").Add(f.Corrupted)
	r.Counter("chaos.truncated").Add(f.Truncated)
	r.Counter("chaos.partitioned").Add(f.Partitioned)
}

// NewChaosFabric wraps inner with the given policy.
func NewChaosFabric(rt vtime.Runtime, inner Fabric, pol ChaosPolicy) *ChaosFabric {
	return &ChaosFabric{
		rt:    rt,
		inner: inner,
		pol:   pol,
		// splitmix-style seed scrambling so nearby seeds diverge.
		rng: (pol.Seed + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9,
	}
}

// Policy returns the injection policy.
func (f *ChaosFabric) Policy() ChaosPolicy { return f.pol }

// Attach implements Fabric.
func (f *ChaosFabric) Attach(id int, name string) Endpoint {
	return &chaosEndpoint{fab: f, inner: f.inner.Attach(id, name)}
}

// Kill implements Fabric.
func (f *ChaosFabric) Kill(id int) { f.inner.Kill(id) }

// roll draws the next uniform [0,1) variate. Callers hold f.mu.
func (f *ChaosFabric) roll() float64 {
	f.rng = f.rng*6364136223846793005 + 1442695040888963407
	return float64(f.rng>>11) / float64(1<<53)
}

func (f *ChaosFabric) cut(a, b int, now time.Duration) bool {
	for _, pt := range f.pol.Partitions {
		if pt.cuts(a, b, now) {
			return true
		}
	}
	return false
}

type chaosEndpoint struct {
	fab   *ChaosFabric
	inner Endpoint
}

func (e *chaosEndpoint) ID() int                      { return e.inner.ID() }
func (e *chaosEndpoint) Inbox() *vtime.Mailbox[Frame] { return e.inner.Inbox() }
func (e *chaosEndpoint) Close()                       { e.inner.Close() }

func (e *chaosEndpoint) Send(to int, kind uint8, data []byte) bool {
	f := e.fab
	now := f.rt.Now()
	f.mu.Lock()
	if f.cut(e.inner.ID(), to, now) {
		f.Partitioned++
		f.mu.Unlock()
		return true
	}
	// All four rolls are consumed for every frame, in a fixed order, so
	// the variate stream — and with it the whole fault schedule — does
	// not depend on which faults happen to trigger.
	drop := f.roll() < f.pol.Drop
	corrupt := f.roll() < f.pol.Corrupt && len(data) > 0
	dup := f.roll() < f.pol.Duplicate
	var jitter time.Duration
	if f.roll() < f.pol.Delay {
		max := f.pol.MaxDelay
		if max <= 0 {
			max = time.Millisecond
		}
		jitter = time.Duration(f.roll() * float64(max))
		if jitter < time.Microsecond {
			jitter = time.Microsecond
		}
	}
	// The truncation roll is drawn only when the policy enables it, so
	// pre-existing policies keep their exact variate streams.
	trunc := false
	if f.pol.Truncate > 0 {
		trunc = f.roll() < f.pol.Truncate && len(data) > 1
	}
	switch {
	case drop:
		f.Dropped++
	case corrupt:
		f.Corrupted++
	case trunc:
		f.Truncated++
	default:
		if dup {
			f.Duplicated++
		}
		if jitter > 0 {
			f.Delayed++
		}
	}
	f.n++
	seq := f.n
	f.mu.Unlock()

	if drop {
		return true // the frame vanished; the sender cannot tell
	}
	if corrupt {
		data = data[:0:0]
	} else if trunc {
		data = data[: len(data)/2 : len(data)/2]
	}
	if dup {
		// The duplicate travels undelayed; the original may jitter past
		// it, exercising reordering too. It owns its bytes: the
		// original's receiver may recycle the frame's buffer
		// (wire.PutBuf) after decoding it, and a shared backing array
		// would let that recycle scribble over this copy in flight.
		e.inner.Send(to, kind, append([]byte(nil), data...))
	}
	if jitter > 0 {
		f.rt.Go(fmt.Sprintf("chaos-delay-%d", seq), func() {
			f.rt.Sleep(jitter)
			e.inner.Send(to, kind, data)
		})
		return true
	}
	return e.inner.Send(to, kind, data)
}
