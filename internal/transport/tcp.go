package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"mpichv/internal/vtime"
)

// TCPFabric connects nodes over real TCP sockets. Each attached node
// listens on its address from the address map; a single connection is
// kept per peer and used in both directions. Connections open with a
// hello frame identifying the dialer, so an accepted connection can be
// registered for sending — and, crucially, an inbound connection from a
// *restarted* peer replaces the stale cached connection to its dead
// predecessor, whose writes would otherwise vanish into a closed
// socket. A failed write is retried over fresh dials with bounded
// exponential backoff (see Backoff) before the frame is dropped.
//
// As in the paper's mpirun (§4.7), a socket disconnection is a trusty
// fault detector: readers that observe EOF stop delivering, and the
// launcher observes the worker's death directly.
type TCPFabric struct {
	rt    vtime.Runtime
	mu    sync.Mutex
	addrs map[int]string
	eps   map[int]*tcpEndpoint
}

// helloKind is the transport-internal connection handshake frame; it is
// never delivered to the application.
const helloKind uint8 = 0xFF

// NewTCPFabric creates a fabric over the given node id → "host:port"
// address map.
func NewTCPFabric(rt vtime.Runtime, addrs map[int]string) *TCPFabric {
	m := make(map[int]string, len(addrs))
	for k, v := range addrs {
		m[k] = v
	}
	return &TCPFabric{rt: rt, addrs: m, eps: make(map[int]*tcpEndpoint)}
}

// SetAddr registers or updates the address of a node id.
func (f *TCPFabric) SetAddr(id int, addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.addrs[id] = addr
}

func (f *TCPFabric) addr(id int) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.addrs[id]
}

type tcpEndpoint struct {
	fab    *TCPFabric
	id     int
	inbox  *vtime.Mailbox[Frame]
	ln     net.Listener
	mu     sync.Mutex
	conns  map[int]net.Conn
	wmu    sync.Mutex // serializes frame writes
	closed bool
}

// Attach implements Fabric. It returns an endpoint whose listener is
// already accepting; Attach panics if the node's address cannot be
// bound, since a node without its listener cannot participate at all.
func (f *TCPFabric) Attach(id int, name string) Endpoint {
	addr := f.addr(id)
	ep := &tcpEndpoint{
		fab:   f,
		id:    id,
		inbox: vtime.NewMailbox[Frame](f.rt, fmt.Sprintf("inbox(%s#%d)", name, id)),
		conns: make(map[int]net.Conn),
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		panic(fmt.Sprintf("transport: node %d cannot listen on %q: %v", id, addr, err))
	}
	ep.ln = ln
	if _, port, err := net.SplitHostPort(addr); addr == "" || (err == nil && port == "0") {
		// Ephemeral port: record the actual address for peers in
		// the same process (tests).
		f.SetAddr(id, ln.Addr().String())
	}
	f.mu.Lock()
	f.eps[id] = ep
	f.mu.Unlock()
	f.rt.Go(fmt.Sprintf("tcp-accept-%d", id), ep.acceptLoop)
	return ep
}

// Kill implements Fabric for in-process tests: it closes the endpoint.
func (f *TCPFabric) Kill(id int) {
	f.mu.Lock()
	ep := f.eps[id]
	delete(f.eps, id)
	f.mu.Unlock()
	if ep != nil {
		ep.Close()
	}
}

func (e *tcpEndpoint) acceptLoop() {
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return
		}
		e.fab.rt.Go(fmt.Sprintf("tcp-read-%d", e.id), func() { e.readLoop(c) })
	}
}

// register makes c the connection for peer, closing any previous one (a
// stale connection to a dead incarnation, or the loser of a
// simultaneous-dial race).
func (e *tcpEndpoint) register(peer int, c net.Conn) {
	e.mu.Lock()
	old := e.conns[peer]
	e.conns[peer] = c
	e.mu.Unlock()
	if old != nil && old != c {
		old.Close()
	}
}

func (e *tcpEndpoint) readLoop(c net.Conn) {
	defer c.Close()
	peer := -1
	for {
		f, err := ReadFrame(c)
		if err != nil {
			if peer >= 0 {
				e.mu.Lock()
				if e.conns[peer] == c {
					delete(e.conns, peer)
				}
				e.mu.Unlock()
			}
			return
		}
		if peer < 0 {
			// The first frame identifies the dialer; adopt the
			// connection for the reverse direction too.
			peer = f.From
			e.register(peer, c)
		}
		if f.Kind == helloKind {
			continue
		}
		if !e.inbox.Send(f) {
			return
		}
	}
}

func (e *tcpEndpoint) ID() int                      { return e.id }
func (e *tcpEndpoint) Inbox() *vtime.Mailbox[Frame] { return e.inbox }

func (e *tcpEndpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	conns := e.conns
	e.conns = nil
	e.mu.Unlock()
	e.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	e.inbox.Close()
}

// conn returns the connection for a peer, dialing (with a hello) if
// none is registered.
func (e *tcpEndpoint) conn(to int) (net.Conn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("transport: endpoint %d closed", e.id)
	}
	if c := e.conns[to]; c != nil {
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()

	addr := e.fab.addr(to)
	if addr == "" {
		return nil, fmt.Errorf("transport: no address for node %d", to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(c, Frame{From: e.id, Kind: helloKind}); err != nil {
		c.Close()
		return nil, err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("transport: endpoint %d closed", e.id)
	}
	if cur := e.conns[to]; cur != nil {
		// Lost a simultaneous-dial race; use the established one.
		e.mu.Unlock()
		c.Close()
		return cur, nil
	}
	e.conns[to] = c
	e.mu.Unlock()
	// Read replies arriving on the dialed connection too.
	e.fab.rt.Go(fmt.Sprintf("tcp-read-%d", e.id), func() { e.readLoop(c) })
	return c, nil
}

func (e *tcpEndpoint) dropConn(to int, c net.Conn) {
	e.mu.Lock()
	if e.conns != nil && e.conns[to] == c {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	c.Close()
}

// sendRetries dial attempts with sendBackoff delays bound how long a
// send waits for an unreachable peer before dropping the frame (the
// delays sum to ~2.6 s). The early retries are fast so the common
// startup race (a peer's listener not yet bound) costs milliseconds;
// the capped tail covers the typical restart window (the launcher
// re-launches a killed worker in a few hundred milliseconds). A peer
// dead for longer loses the frame, like a crash — which the recovery
// protocol already tolerates.
const sendRetries = 12

var sendBackoff = Backoff{Base: 5 * time.Millisecond, Max: 500 * time.Millisecond}

func (e *tcpEndpoint) Send(to int, kind uint8, data []byte) bool {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	for attempt := 0; attempt < sendRetries; attempt++ {
		c, err := e.conn(to)
		if err != nil {
			e.mu.Lock()
			closed := e.closed
			e.mu.Unlock()
			if closed {
				return false
			}
			time.Sleep(sendBackoff.Delay(attempt))
			continue
		}
		if err := WriteFrame(c, Frame{From: e.id, Kind: kind, Data: data}); err == nil {
			return true
		}
		// Stale connection (the peer may have restarted): drop and
		// retry over a fresh dial.
		e.dropConn(to, c)
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	return !closed // peer unreachable: frame dropped, like a crash
}
