package transport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mpichv/internal/trace"
	"mpichv/internal/vtime"
)

// TCPFabric connects nodes over real TCP sockets. Each attached node
// listens on its address from the address map; a single connection is
// kept per peer and used in both directions. Connections open with a
// hello frame identifying the dialer, so an accepted connection can be
// registered for sending — and, crucially, an inbound connection from a
// *restarted* peer replaces the stale cached connection to its dead
// predecessor, whose writes would otherwise vanish into a closed
// socket. A failed write is retried over fresh dials with bounded
// exponential backoff (see Backoff) before the frame is dropped.
//
// As in the paper's mpirun (§4.7), a socket disconnection is a trusty
// fault detector: readers that observe EOF stop delivering, and the
// launcher observes the worker's death directly.
type TCPFabric struct {
	rt    vtime.Runtime
	mu    sync.Mutex
	addrs map[int]string
	binds map[int]string // listen addresses when they differ from addrs
	eps   map[int]*tcpEndpoint
	stats TCPStats
}

// TCPStats are the fabric's liveness counters: what the retry machinery
// actually did on the wire. They are the real-socket analogue of the
// chaos fabric's injection counters and surface through the same typed
// metrics registry (AddTo), so a deployed run's BENCH artifacts carry
// them next to the daemon and store counters.
type TCPStats struct {
	Dials         int64 // successful outbound connections
	Redials       int64 // dials replacing a previously dropped connection
	Retransmits   int64 // Send attempts retried after a failed write/dial
	DroppedFrames int64 // frames dropped after exhausting every retry
	HelloTimeouts int64 // accepted connections that never sent their hello
	WriteTimeouts int64 // writes aborted by the per-frame write deadline
	StaleReplaced int64 // cached connections replaced by a newer inbound one
}

// AddTo exports the counters into a metrics registry under the "tcp."
// namespace.
func (s TCPStats) AddTo(r *trace.Registry) {
	r.Counter("tcp.dials").Add(s.Dials)
	r.Counter("tcp.redials").Add(s.Redials)
	r.Counter("tcp.retransmits").Add(s.Retransmits)
	r.Counter("tcp.dropped_frames").Add(s.DroppedFrames)
	r.Counter("tcp.hello_timeouts").Add(s.HelloTimeouts)
	r.Counter("tcp.write_timeouts").Add(s.WriteTimeouts)
	r.Counter("tcp.stale_replaced").Add(s.StaleReplaced)
}

// Stats returns a snapshot of the fabric's counters. Safe to call
// concurrently with live traffic.
func (f *TCPFabric) Stats() TCPStats {
	return TCPStats{
		Dials:         atomic.LoadInt64(&f.stats.Dials),
		Redials:       atomic.LoadInt64(&f.stats.Redials),
		Retransmits:   atomic.LoadInt64(&f.stats.Retransmits),
		DroppedFrames: atomic.LoadInt64(&f.stats.DroppedFrames),
		HelloTimeouts: atomic.LoadInt64(&f.stats.HelloTimeouts),
		WriteTimeouts: atomic.LoadInt64(&f.stats.WriteTimeouts),
		StaleReplaced: atomic.LoadInt64(&f.stats.StaleReplaced),
	}
}

// AddTo folds a live snapshot of the fabric's counters into a registry.
func (f *TCPFabric) AddTo(r *trace.Registry) { f.Stats().AddTo(r) }

// helloKind is the transport-internal connection handshake frame; it is
// never delivered to the application.
const helloKind uint8 = 0xFF

// HelloTimeout bounds how long an accepted connection may stay silent
// before sending its identifying first frame. Without it a stalled (or
// malicious, or SIGSTOPped) dialer would pin a read goroutine forever
// and, worse, its connection could never be garbage collected.
var HelloTimeout = 3 * time.Second

// WriteTimeout bounds a single frame write. A half-open peer — crashed
// without a FIN, or SIGSTOPped with a full receive window — otherwise
// blocks the sending daemon indefinitely inside write(2). On expiry the
// connection is dropped and the send retried over a fresh dial, exactly
// like a hard write error.
var WriteTimeout = 5 * time.Second

// NewTCPFabric creates a fabric over the given node id → "host:port"
// address map.
func NewTCPFabric(rt vtime.Runtime, addrs map[int]string) *TCPFabric {
	m := make(map[int]string, len(addrs))
	for k, v := range addrs {
		m[k] = v
	}
	return &TCPFabric{rt: rt, addrs: m, binds: make(map[int]string), eps: make(map[int]*tcpEndpoint)}
}

// SetAddr registers or updates the address of a node id.
func (f *TCPFabric) SetAddr(id int, addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.addrs[id] = addr
}

// SetBind makes node id listen on addr while peers keep dialing the
// advertised address from the address map. This is how a ChaosProxy is
// interposed: the proxy owns the advertised (front) address and
// forwards to the bind (backend) address, so every inbound byte of the
// node crosses the fault injector.
func (f *TCPFabric) SetBind(id int, addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.binds[id] = addr
}

func (f *TCPFabric) bindAddr(id int) (addr string, bound bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if b := f.binds[id]; b != "" {
		return b, true
	}
	return f.addrs[id], false
}

func (f *TCPFabric) addr(id int) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.addrs[id]
}

type tcpEndpoint struct {
	fab           *TCPFabric
	id            int
	inbox         *vtime.Mailbox[Frame]
	ln            net.Listener
	mu            sync.Mutex
	conns         map[int]net.Conn
	everConnected map[int]bool // peers we dialed at least once (redial counting)
	wmu           sync.Mutex   // serializes frame writes
	closed        bool
}

// Attach implements Fabric. It returns an endpoint whose listener is
// already accepting; Attach panics if the node's address cannot be
// bound, since a node without its listener cannot participate at all.
func (f *TCPFabric) Attach(id int, name string) Endpoint {
	addr, bound := f.bindAddr(id)
	ep := &tcpEndpoint{
		fab:   f,
		id:    id,
		inbox: vtime.NewMailbox[Frame](f.rt, fmt.Sprintf("inbox(%s#%d)", name, id)),
		conns: make(map[int]net.Conn),
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		panic(fmt.Sprintf("transport: node %d cannot listen on %q: %v", id, addr, err))
	}
	ep.ln = ln
	if _, port, err := net.SplitHostPort(addr); !bound && (addr == "" || (err == nil && port == "0")) {
		// Ephemeral port: record the actual address for peers in the
		// same process (tests). With an explicit bind the advertised
		// address stays what peers must dial (the proxy front).
		f.SetAddr(id, ln.Addr().String())
	}
	f.mu.Lock()
	f.eps[id] = ep
	f.mu.Unlock()
	f.rt.Go(fmt.Sprintf("tcp-accept-%d", id), ep.acceptLoop)
	return ep
}

// Kill implements Fabric for in-process tests: it closes the endpoint.
func (f *TCPFabric) Kill(id int) {
	f.mu.Lock()
	ep := f.eps[id]
	delete(f.eps, id)
	f.mu.Unlock()
	if ep != nil {
		ep.Close()
	}
}

func (e *tcpEndpoint) acceptLoop() {
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return
		}
		e.fab.rt.Go(fmt.Sprintf("tcp-read-%d", e.id), func() { e.readLoop(c, -1) })
	}
}

// register makes c the connection for peer, closing any previous one (a
// stale connection to a dead incarnation, or the loser of a
// simultaneous-dial race).
func (e *tcpEndpoint) register(peer int, c net.Conn) {
	e.mu.Lock()
	old := e.conns[peer]
	e.conns[peer] = c
	e.mu.Unlock()
	if old != nil && old != c {
		atomic.AddInt64(&e.fab.stats.StaleReplaced, 1)
		old.Close()
	}
}

// readLoop drains one connection into the inbox. peer is the known
// remote node id for dialed connections; -1 for accepted ones, whose
// dialer is identified by its first frame — which must arrive within
// HelloTimeout, so a stalled dialer cannot pin an anonymous connection
// (and its goroutine) on the accept path forever.
func (e *tcpEndpoint) readLoop(c net.Conn, peer int) {
	defer c.Close()
	for {
		if peer < 0 && HelloTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(HelloTimeout))
		}
		f, err := ReadFrame(c)
		if err != nil {
			if peer < 0 && errors.Is(err, os.ErrDeadlineExceeded) {
				atomic.AddInt64(&e.fab.stats.HelloTimeouts, 1)
			}
			if peer >= 0 {
				e.mu.Lock()
				if e.conns[peer] == c {
					delete(e.conns, peer)
				}
				e.mu.Unlock()
			}
			return
		}
		if peer < 0 {
			// The first frame identifies the dialer; adopt the
			// connection for the reverse direction too, and lift the
			// handshake deadline — an identified connection may stay
			// quiet for as long as the protocol likes.
			peer = f.From
			c.SetReadDeadline(time.Time{})
			e.register(peer, c)
		}
		if f.Kind == helloKind {
			continue
		}
		if !e.inbox.Send(f) {
			return
		}
	}
}

func (e *tcpEndpoint) ID() int                      { return e.id }
func (e *tcpEndpoint) Inbox() *vtime.Mailbox[Frame] { return e.inbox }

func (e *tcpEndpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	conns := e.conns
	e.conns = nil
	e.mu.Unlock()
	e.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	e.inbox.Close()
}

// conn returns the connection for a peer, dialing (with a hello) if
// none is registered.
func (e *tcpEndpoint) conn(to int) (net.Conn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("transport: endpoint %d closed", e.id)
	}
	if c := e.conns[to]; c != nil {
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()

	addr := e.fab.addr(to)
	if addr == "" {
		return nil, fmt.Errorf("transport: no address for node %d", to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(c, Frame{From: e.id, Kind: helloKind}); err != nil {
		c.Close()
		return nil, err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("transport: endpoint %d closed", e.id)
	}
	if cur := e.conns[to]; cur != nil {
		// Lost a simultaneous-dial race; use the established one.
		e.mu.Unlock()
		c.Close()
		return cur, nil
	}
	e.conns[to] = c
	redial := e.everConnected[to]
	if e.everConnected == nil {
		e.everConnected = make(map[int]bool)
	}
	e.everConnected[to] = true
	e.mu.Unlock()
	atomic.AddInt64(&e.fab.stats.Dials, 1)
	if redial {
		atomic.AddInt64(&e.fab.stats.Redials, 1)
	}
	// Read replies arriving on the dialed connection too.
	e.fab.rt.Go(fmt.Sprintf("tcp-read-%d", e.id), func() { e.readLoop(c, to) })
	return c, nil
}

func (e *tcpEndpoint) dropConn(to int, c net.Conn) {
	e.mu.Lock()
	if e.conns != nil && e.conns[to] == c {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	c.Close()
}

// sendRetries dial attempts with sendBackoff delays bound how long a
// send waits for an unreachable peer before dropping the frame (the
// delays sum to ~2.6 s). The early retries are fast so the common
// startup race (a peer's listener not yet bound) costs milliseconds;
// the capped tail covers the typical restart window (the launcher
// re-launches a killed worker in a few hundred milliseconds). A peer
// dead for longer loses the frame, like a crash — which the recovery
// protocol already tolerates.
const sendRetries = 12

var sendBackoff = Backoff{Base: 5 * time.Millisecond, Max: 500 * time.Millisecond}

func (e *tcpEndpoint) Send(to int, kind uint8, data []byte) bool {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	for attempt := 0; attempt < sendRetries; attempt++ {
		if attempt > 0 {
			atomic.AddInt64(&e.fab.stats.Retransmits, 1)
		}
		c, err := e.conn(to)
		if err != nil {
			e.mu.Lock()
			closed := e.closed
			e.mu.Unlock()
			if closed {
				return false
			}
			time.Sleep(sendBackoff.Delay(attempt))
			continue
		}
		if WriteTimeout > 0 {
			c.SetWriteDeadline(time.Now().Add(WriteTimeout))
		}
		err = WriteFrame(c, Frame{From: e.id, Kind: kind, Data: data})
		if WriteTimeout > 0 {
			c.SetWriteDeadline(time.Time{})
		}
		if err == nil {
			return true
		}
		if errors.Is(err, os.ErrDeadlineExceeded) {
			// Half-open peer: the write stalled against a full window
			// instead of failing. Without the deadline this daemon
			// would be wedged inside write(2) for good.
			atomic.AddInt64(&e.fab.stats.WriteTimeouts, 1)
		}
		// Stale connection (the peer may have restarted): drop and
		// retry over a fresh dial.
		e.dropConn(to, c)
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if !closed {
		atomic.AddInt64(&e.fab.stats.DroppedFrames, 1)
	}
	return !closed // peer unreachable: frame dropped, like a crash
}
