package transport

import (
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"mpichv/internal/vtime"
)

// TestTCPHelloTimeoutReapsSilentDialer: an accepted connection that
// never identifies itself is dropped after HelloTimeout instead of
// pinning a read goroutine forever, and the listener keeps serving
// well-behaved peers afterwards.
func TestTCPHelloTimeoutReapsSilentDialer(t *testing.T) {
	old := HelloTimeout
	HelloTimeout = 200 * time.Millisecond
	defer func() { HelloTimeout = old }()

	rt := vtime.NewReal()
	fab := NewTCPFabric(rt, map[int]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"})
	b := fab.Attach(1, "victim")
	a := fab.Attach(0, "peer")
	defer a.Close()
	defer b.Close()

	// A dialer that connects and says nothing.
	mute, err := net.Dial("tcp", fab.addr(1))
	if err != nil {
		t.Fatal(err)
	}
	defer mute.Close()

	deadline := time.Now().Add(5 * time.Second)
	for fab.Stats().HelloTimeouts == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hello timeout never fired against a silent dialer")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The reaped connection is observable from the mute side too: the
	// endpoint closed it.
	mute.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := mute.Read(make([]byte, 1)); err == nil {
		t.Fatal("silent connection still open after hello timeout")
	}

	// Well-behaved traffic is unaffected.
	ch := collect(b)
	if !a.Send(1, 7, []byte("hi")) {
		t.Fatal("send failed after hello-timeout reap")
	}
	if got := recvN(ch, 1, 3*time.Second); len(got) != 1 || string(got[0].Data) != "hi" {
		t.Fatalf("frame lost after reap: %v", got)
	}
}

// TestTCPStaleConnReplacedOnRestart: node 1 dies and a new incarnation
// re-attaches on the same address while node 0 keeps sending. The new
// incarnation's inbound connection must replace 0's stale cached one,
// and traffic must flow to the survivor with no deadlock.
func TestTCPStaleConnReplacedOnRestart(t *testing.T) {
	rt := vtime.NewReal()
	fab := NewTCPFabric(rt, map[int]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"})
	b1 := fab.Attach(1, "gen1")
	a := fab.Attach(0, "sender")
	defer a.Close()

	ch1 := collect(b1)
	if !a.Send(1, 7, []byte{1}) {
		t.Fatal("warm-up send failed")
	}
	if got := recvN(ch1, 1, 3*time.Second); len(got) != 1 {
		t.Fatal("warm-up frame lost")
	}

	// Kill generation 1. Its listener port is freed; re-bind the same
	// address for generation 2, as a restarted worker would.
	addr := fab.addr(1)
	b1.Close()
	fab.SetAddr(1, addr)

	// Node 0 keeps sending through the death (retries are expected to
	// carry the frames over fresh dials once gen2 is up) while gen2
	// attaches and dials node 0 concurrently.
	var delivered int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			if a.Send(1, 7, []byte{byte(i)}) {
				atomic.AddInt64(&delivered, 1)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	time.Sleep(30 * time.Millisecond)
	b2 := fab.Attach(1, "gen2")
	defer b2.Close()
	ch2 := collect(b2)
	// Gen2 dials node 0 first — the inbound hello must displace any
	// stale state for peer 1 on node 0's side.
	if !b2.Send(0, 9, []byte("reborn")) {
		t.Fatal("gen2 send failed")
	}

	<-done
	got := recvN(ch2, 1, 5*time.Second)
	if len(got) == 0 {
		t.Fatal("no frame reached the restarted incarnation")
	}
	if atomic.LoadInt64(&delivered) == 0 {
		t.Fatal("every send failed across the restart")
	}
	// Recovery is observable in one of three ways, depending on who wins
	// the race after gen1 dies: the sender's write fails and it redials;
	// gen2's inbound hello displaces the stale cached connection; or the
	// stale connection's read loop reaps it first and the sends retry
	// into the refilled slot. All three must leave a trace.
	if st := fab.Stats(); st.Redials == 0 && st.StaleReplaced == 0 && st.Retransmits == 0 {
		t.Fatalf("restart left no trace in sender stats: %+v", st)
	}
}

// TestTCPWriteTimeoutUnwedgesSender: a half-open peer (accepts, never
// reads, window fills) must not wedge Send forever — the write deadline
// fires, the connection is dropped, and Send gives up after its retry
// budget instead of blocking.
func TestTCPWriteTimeoutUnwedgesSender(t *testing.T) {
	oldW := WriteTimeout
	WriteTimeout = 300 * time.Millisecond
	oldB := sendBackoff
	sendBackoff = Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond}
	defer func() { WriteTimeout = oldW; sendBackoff = oldB }()

	// A raw listener that accepts and never reads: kernel buffers fill
	// and the sender's write(2) blocks.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()

	rt := vtime.NewReal()
	fab := NewTCPFabric(rt, map[int]string{0: "127.0.0.1:0", 1: ln.Addr().String()})
	a := fab.Attach(0, "sender")
	defer a.Close()

	big := make([]byte, 1<<20)
	done := make(chan bool, 1)
	go func() {
		ok := true
		for i := 0; i < 32 && ok; i++ {
			ok = a.Send(1, 7, big)
		}
		done <- ok
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("sender wedged against a half-open peer")
	}
	if fab.Stats().WriteTimeouts == 0 {
		t.Fatal("write deadline never fired")
	}
}

// TestTCPFabricShutdownReleasesGoroutines: closing every endpoint joins
// the fabric's accept and read goroutines.
func TestTCPFabricShutdownReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		rt := vtime.NewReal()
		fab := NewTCPFabric(rt, map[int]string{0: "127.0.0.1:0", 1: "127.0.0.1:0", 2: "127.0.0.1:0"})
		eps := []Endpoint{fab.Attach(0, "n0"), fab.Attach(1, "n1"), fab.Attach(2, "n2")}
		chs := []<-chan Frame{collect(eps[0]), collect(eps[1]), collect(eps[2])}
		for i, ep := range eps {
			for j := range eps {
				if i != j {
					ep.Send(j, 7, []byte{byte(i), byte(j)})
				}
			}
		}
		for _, ch := range chs {
			recvN(ch, 2, 3*time.Second)
		}
		for _, ep := range eps {
			ep.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, runtime.NumGoroutine())
}
