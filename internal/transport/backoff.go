package transport

import "time"

// Backoff computes bounded exponential retry delays: retry 0 waits
// Base, every further retry doubles the wait, capped at Max (Max <= 0
// defaults to 32×Base). It is the one backoff rule shared by every
// retry loop in the system — the TCP fabric's dial loop and the V2
// daemon's retransmit timers — so all of them age the same way.
type Backoff struct {
	Base time.Duration
	Max  time.Duration
}

// Delay returns the wait before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 32 * base
	}
	d := base
	for i := 0; i < attempt; i++ {
		if d >= max {
			break
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}
