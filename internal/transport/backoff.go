package transport

import "time"

// Backoff computes bounded exponential retry delays: retry 0 waits
// Base, every further retry doubles the wait, capped at Max (Max <= 0
// defaults to 32×Base). It is the one backoff rule shared by every
// retry loop in the system — the TCP fabric's dial loop and the V2
// daemon's retransmit timers — so all of them age the same way.
//
// With Jitter > 0 each delay is shortened by up to that fraction,
// drawn from a stateless hash of (Seed, attempt): the schedule is a
// pure function of the seed, so two retry loops with different seeds
// desynchronize while any single loop replays identically run after
// run. Jitter is subtractive, keeping Max a hard upper bound.
type Backoff struct {
	Base time.Duration
	Max  time.Duration

	// Jitter is the fraction of each delay randomized away, in [0,1].
	// Zero disables jitter entirely.
	Jitter float64
	// Seed selects the jitter stream. The same seed always yields the
	// same per-attempt jitter — chaos runs stay reproducible.
	Seed uint64
}

// Delay returns the wait before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 32 * base
	}
	d := base
	for i := 0; i < attempt; i++ {
		if d >= max {
			break
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	if b.Jitter > 0 {
		j := b.Jitter
		if j > 1 {
			j = 1
		}
		cut := time.Duration(j * jitterRoll(b.Seed, attempt) * float64(d))
		if cut >= d {
			cut = d - 1
		}
		d -= cut
	}
	if d <= 0 {
		d = 1
	}
	return d
}

// jitterRoll maps (seed, attempt) to a uniform variate in [0,1) via a
// splitmix64 finalizer — stateless, so Delay stays a pure function.
func jitterRoll(seed uint64, attempt int) float64 {
	x := seed + 0x9e3779b97f4a7c15*uint64(attempt+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
