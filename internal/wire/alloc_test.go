package wire

import (
	"testing"

	"mpichv/internal/core"
)

func sampleEvents(n int) []core.Event {
	evs := make([]core.Event, n)
	for i := range evs {
		evs[i] = core.Event{
			Sender:      i % 4,
			SenderClock: uint64(100 + i),
			RecvClock:   uint64(200 + i),
			Probes:      uint32(i),
			Seq:         uint64(1 + i),
		}
	}
	return evs
}

// The append codecs must not allocate when the destination buffer has
// room: that is the whole point of threading GetBuf buffers through the
// daemon and server send paths.
func TestAppendCodecsZeroAlloc(t *testing.T) {
	evs := sampleEvents(8)
	body := make([]byte, 1024)
	hdr := PayloadHeader{SenderClock: 7, PairSeq: 3, DevKind: 1}
	ackBuf := make([]byte, 0, eventAckLen)
	evBuf := make([]byte, 0, EventLogSize(len(evs)))
	plBuf := make([]byte, 0, PayloadSize(len(body)))
	chBuf := make([]byte, 0, CkptChunkSize(len(body)))
	caBuf := make([]byte, 0, CkptChunkAckLen)
	cfBuf := make([]byte, 0, CkptChunkFetchLen)

	cases := []struct {
		name string
		fn   func()
	}{
		{"AppendPayload", func() { plBuf = AppendPayload(plBuf[:0], hdr, body) }},
		{"AppendEvents", func() { evBuf = AppendEvents(evBuf[:0], evs) }},
		{"AppendEventLog", func() { evBuf = AppendEventLog(evBuf[:0], 42, evs) }},
		{"AppendEventAck", func() { ackBuf = AppendEventAck(ackBuf[:0], 42, 41) }},
		{"AppendCkptChunk", func() { chBuf = AppendCkptChunk(chBuf[:0], 42, 3, 9, body) }},
		{"AppendCkptChunkAck", func() { caBuf = AppendCkptChunkAck(caBuf[:0], 42, 3) }},
		{"AppendCkptChunkFetch", func() { cfBuf = AppendCkptChunkFetch(cfBuf[:0], 42, 3, 4096) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(200, c.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", c.name, allocs)
		}
	}
}

// A full GetBuf → encode → PutBuf cycle must also be allocation-free
// once the pool is warm; the loop itself creates no garbage, so the
// pool cannot be drained by GC mid-measurement.
func TestPooledEncodeZeroAlloc(t *testing.T) {
	evs := sampleEvents(8)
	size := EventLogSize(len(evs))
	PutBuf(GetBuf(size)) // warm the bucket (buffer + box)
	allocs := testing.AllocsPerRun(200, func() {
		buf := AppendEventLog(GetBuf(size), 42, evs)
		PutBuf(buf)
	})
	if allocs != 0 {
		t.Errorf("pooled event-log encode: %.1f allocs/op, want 0", allocs)
	}
}

func TestPoolCapacityClasses(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128, 4096, 65535, 65536, 65537, 1 << 20} {
		buf := GetBuf(n)
		if len(buf) != 0 {
			t.Errorf("GetBuf(%d): len %d, want 0", n, len(buf))
		}
		if cap(buf) < n {
			t.Errorf("GetBuf(%d): cap %d too small", n, cap(buf))
		}
		PutBuf(buf)
	}
	// Recycled capacity must survive the round trip: a buffer only
	// serves requests no larger than its own capacity.
	PutBuf(make([]byte, 0, 200))
	if buf := GetBuf(129); cap(buf) < 129 {
		t.Errorf("GetBuf(129) after PutBuf(cap 200): cap %d too small", cap(buf))
	}
}

func TestEventAckRoundTrip(t *testing.T) {
	data := EncodeEventAck(42, 40)
	seq, cum, err := DecodeEventAck(data)
	if err != nil || seq != 42 || cum != 40 {
		t.Fatalf("round trip = (%d, %d, %v), want (42, 40, nil)", seq, cum, err)
	}
	// The legacy 8-byte ack — also what a truncated 16-byte ack decays
	// to — must decode as a plain per-batch ack with a dead cum.
	seq, cum, err = DecodeEventAck(EncodeU64(42))
	if err != nil || seq != 42 || cum != 0 {
		t.Fatalf("legacy ack = (%d, %d, %v), want (42, 0, nil)", seq, cum, err)
	}
	if _, _, err := DecodeEventAck(data[:5]); err == nil {
		t.Fatal("5-byte ack decoded without error")
	}
	if _, _, err := DecodeEventAck(nil); err == nil {
		t.Fatal("empty ack decoded without error")
	}
}

func BenchmarkAppendEventLog(b *testing.B) {
	evs := sampleEvents(8)
	buf := make([]byte, 0, EventLogSize(len(evs)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendEventLog(buf[:0], uint64(i), evs)
	}
}

func BenchmarkEncodeEventLog(b *testing.B) {
	evs := sampleEvents(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeEventLog(uint64(i), evs)
	}
}

func BenchmarkPooledEventLog(b *testing.B) {
	evs := sampleEvents(8)
	size := EventLogSize(len(evs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PutBuf(AppendEventLog(GetBuf(size), uint64(i), evs))
	}
}

func BenchmarkDecodeEventLog(b *testing.B) {
	data := EncodeEventLog(42, sampleEvents(8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeEventLog(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendPayload(b *testing.B) {
	body := make([]byte, 1024)
	hdr := PayloadHeader{SenderClock: 7, PairSeq: 3, DevKind: 1}
	buf := make([]byte, 0, PayloadSize(len(body)))
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	for i := 0; i < b.N; i++ {
		buf = AppendPayload(buf[:0], hdr, body)
	}
}

func BenchmarkDecodePayload(b *testing.B) {
	data := EncodePayload(PayloadHeader{SenderClock: 7, PairSeq: 3, DevKind: 1}, make([]byte, 1024))
	b.ReportAllocs()
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodePayload(data); err != nil {
			b.Fatal(err)
		}
	}
}
