package wire

import (
	"bytes"
	"testing"
)

func TestCkptChunkRoundTrip(t *testing.T) {
	body := bytes.Repeat([]byte{0xAB, 1, 2}, 100)
	frame := AppendCkptChunk(nil, 77, 3, 9, body)
	if len(frame) != CkptChunkSize(len(body)) {
		t.Errorf("frame is %d bytes, CkptChunkSize promises %d", len(frame), CkptChunkSize(len(body)))
	}
	seq, idx, count, got, err := DecodeCkptChunk(frame)
	if err != nil || seq != 77 || idx != 3 || count != 9 || !bytes.Equal(got, body) {
		t.Fatalf("round trip = (%d, %d, %d, %v)", seq, idx, count, err)
	}
	// Empty body (the last chunk of an image that divides evenly never
	// is, but the frame must still be well-formed).
	if _, _, _, got, err = DecodeCkptChunk(AppendCkptChunk(nil, 1, 0, 1, nil)); err != nil || len(got) != 0 {
		t.Errorf("empty-body chunk: %v", err)
	}
}

func TestDecodeCkptChunkRejectsDamage(t *testing.T) {
	frame := AppendCkptChunk(nil, 77, 3, 9, bytes.Repeat([]byte{5}, 64))
	for cut := 0; cut < len(frame); cut += 5 {
		if _, _, _, _, err := DecodeCkptChunk(frame[:cut]); err == nil {
			t.Fatalf("chunk truncated to %d of %d bytes decoded", cut, len(frame))
		}
	}
	for _, pos := range []int{0, 10, 30, len(frame) - 1} {
		flipped := append([]byte(nil), frame...)
		flipped[pos] ^= 0x04
		if _, _, _, _, err := DecodeCkptChunk(flipped); err == nil {
			t.Fatalf("chunk with bit flip at %d decoded", pos)
		}
	}
	// Geometry: idx must be below count, and count must be nonzero.
	if _, _, _, _, err := DecodeCkptChunk(AppendCkptChunk(nil, 1, 9, 9, []byte("x"))); err == nil {
		t.Error("chunk with idx == count decoded")
	}
	if _, _, _, _, err := DecodeCkptChunk(AppendCkptChunk(nil, 1, 0, 0, []byte("x"))); err == nil {
		t.Error("chunk with zero count decoded")
	}
}

func TestCkptChunkAckAndFetchRoundTrip(t *testing.T) {
	seq, idx, err := DecodeCkptChunkAck(AppendCkptChunkAck(nil, 42, 7))
	if err != nil || seq != 42 || idx != 7 {
		t.Fatalf("ack round trip = (%d, %d, %v)", seq, idx, err)
	}
	if _, _, err := DecodeCkptChunkAck(make([]byte, CkptChunkAckLen-1)); err == nil {
		t.Error("short chunk ack decoded")
	}
	seq, idx, cs, err := DecodeCkptChunkFetch(AppendCkptChunkFetch(nil, 42, 7, 4096))
	if err != nil || seq != 42 || idx != 7 || cs != 4096 {
		t.Fatalf("fetch round trip = (%d, %d, %d, %v)", seq, idx, cs, err)
	}
	if _, _, _, err := DecodeCkptChunkFetch(make([]byte, CkptChunkFetchLen+1)); err == nil {
		t.Error("long chunk fetch decoded")
	}
}

func TestCkptManifestRoundTrip(t *testing.T) {
	m := CkptManifest{
		Present: true, Seq: 9, Size: 1000, ChunkSize: 256,
		ImageCRC:  0xDEADBEEF,
		ChunkCRCs: []uint32{1, 2, 3, 4},
	}
	got, err := DecodeCkptManifest(EncodeCkptManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Present || got.Seq != 9 || got.Size != 1000 || got.ChunkSize != 256 ||
		got.ImageCRC != 0xDEADBEEF || len(got.ChunkCRCs) != 4 || got.ChunkCRCs[3] != 4 {
		t.Errorf("round trip = %+v", got)
	}
	if got.Chunks() != 4 {
		t.Errorf("Chunks() = %d, want 4", got.Chunks())
	}
	// Absent manifest (empty replica) round-trips too.
	got, err = DecodeCkptManifest(EncodeCkptManifest(CkptManifest{}))
	if err != nil || got.Present {
		t.Errorf("absent manifest = (%+v, %v)", got, err)
	}
}

func TestDecodeCkptManifestRejectsBadGeometry(t *testing.T) {
	enc := func(m CkptManifest) []byte { return EncodeCkptManifest(m) }
	cases := []struct {
		name string
		data []byte
	}{
		{"truncated", enc(CkptManifest{Present: true, Seq: 1, Size: 10, ChunkSize: 4, ChunkCRCs: []uint32{1, 2, 3}})[:9]},
		{"zero chunk size", enc(CkptManifest{Present: true, Seq: 1, Size: 10, ChunkSize: 0, ChunkCRCs: []uint32{1, 2, 3}})},
		{"too few chunks", enc(CkptManifest{Present: true, Seq: 1, Size: 100, ChunkSize: 4, ChunkCRCs: []uint32{1, 2}})},
		{"too many chunks", enc(CkptManifest{Present: true, Seq: 1, Size: 10, ChunkSize: 8, ChunkCRCs: []uint32{1, 2, 3, 4}})},
		{"no chunks", enc(CkptManifest{Present: true, Seq: 1, Size: 10, ChunkSize: 8})},
	}
	for _, c := range cases {
		if _, err := DecodeCkptManifest(c.data); err == nil {
			t.Errorf("%s: decoded without error", c.name)
		}
	}
}
