package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"mpichv/internal/core"
)

func TestPayloadRoundTrip(t *testing.T) {
	h := PayloadHeader{SenderClock: 123456789, DevKind: 7}
	body := []byte("the payload")
	enc := EncodePayload(h, body)
	if len(enc) != PayloadHeaderLen+len(body) {
		t.Fatalf("encoded length %d", len(enc))
	}
	h2, body2, err := DecodePayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h2, h) || !bytes.Equal(body, body2) {
		t.Errorf("round trip: %+v %q", h2, body2)
	}
}

func TestPayloadTooShort(t *testing.T) {
	if _, _, err := DecodePayload([]byte{1, 2, 3}); err == nil {
		t.Error("short payload accepted")
	}
}

func TestPropertyPayloadRoundTrip(t *testing.T) {
	// Bits 6-7 of DevKind are reserved for the determinant-block and
	// span-id flags, so the valid device-kind domain is 6 bits.
	f := func(clock uint64, kind uint8, span uint64, body []byte) bool {
		in := PayloadHeader{SenderClock: clock, DevKind: kind & 0x3f, Span: span}
		h, b, err := DecodePayload(EncodePayload(in, body))
		return err == nil && reflect.DeepEqual(h, in) && bytes.Equal(b, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadSpanRoundTrip(t *testing.T) {
	h := PayloadHeader{SenderClock: 99, PairSeq: 7, DevKind: 3, Span: 0xdeadbeef}
	enc := EncodePayload(h, []byte("body"))
	if len(enc) != PayloadHeaderLen+PayloadSpanLen+4 {
		t.Fatalf("encoded length %d", len(enc))
	}
	h2, b, err := DecodePayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h2, h) || string(b) != "body" {
		t.Errorf("round trip: %+v %q", h2, b)
	}
	// A spanless frame must be byte-identical to the pre-span format:
	// tracing off means zero wire delta.
	h.Span = 0
	if n := len(EncodePayload(h, []byte("body"))); n != PayloadSize(4) {
		t.Errorf("spanless frame is %d bytes, want %d", n, PayloadSize(4))
	}
	// A flagged frame cut off before the span id must fail decode, not
	// overread.
	if _, _, err := DecodePayload(enc[:PayloadHeaderLen+2]); err == nil {
		t.Error("truncated span frame accepted")
	}
	// Reserved bit 7 in DevKind is a programming error.
	defer func() {
		if recover() == nil {
			t.Error("DevKind with bit 7 set did not panic")
		}
	}()
	EncodePayload(PayloadHeader{DevKind: 0x80}, nil)
}

func TestEventsRoundTrip(t *testing.T) {
	evs := []core.Event{
		{Sender: 0, SenderClock: 1, RecvClock: 2, Probes: 0},
		{Sender: 31, SenderClock: 1 << 40, RecvClock: 1<<40 + 7, Probes: 99},
		{Sender: -1, SenderClock: 0, RecvClock: 0, Probes: 0},
	}
	got, err := DecodeEvents(EncodeEvents(evs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs, got) {
		t.Errorf("round trip: %+v", got)
	}
	// Paper §4.3: the event record is "in the order of 20 bytes".
	if per := (len(EncodeEvents(evs)) - 4) / len(evs); per > 32 {
		t.Errorf("event record is %d bytes; the paper's point is that it is small", per)
	}
}

func TestEventsEmptyBatch(t *testing.T) {
	got, err := DecodeEvents(EncodeEvents(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v %v", got, err)
	}
}

func TestEventsRejectCorrupt(t *testing.T) {
	if _, err := DecodeEvents([]byte{0, 0}); err == nil {
		t.Error("truncated header accepted")
	}
	enc := EncodeEvents([]core.Event{{Sender: 1}})
	if _, err := DecodeEvents(enc[:len(enc)-3]); err == nil {
		t.Error("truncated batch accepted")
	}
}

func TestPropertyEventsRoundTrip(t *testing.T) {
	f := func(senders []int32, clock uint64) bool {
		if len(senders) > 64 {
			senders = senders[:64]
		}
		evs := make([]core.Event, len(senders))
		for i, s := range senders {
			evs[i] = core.Event{Sender: int(s), SenderClock: clock + uint64(i), RecvClock: uint64(i), Probes: uint32(i)}
		}
		got, err := DecodeEvents(EncodeEvents(evs))
		if err != nil {
			return false
		}
		if len(evs) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(evs, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScalars(t *testing.T) {
	if v, err := DecodeU64(EncodeU64(1 << 63)); err != nil || v != 1<<63 {
		t.Errorf("u64: %d %v", v, err)
	}
	if v, err := DecodeU32(EncodeU32(12345)); err != nil || v != 12345 {
		t.Errorf("u32: %d %v", v, err)
	}
	if _, err := DecodeU64([]byte{1}); err == nil {
		t.Error("short u64 accepted")
	}
	if _, err := DecodeU32([]byte{1, 2, 3, 4, 5}); err == nil {
		t.Error("long u32 accepted")
	}
}

func TestStatusRoundTrip(t *testing.T) {
	st := NodeStatus{Rank: 17, LogBytes: 1 << 33, SentBytes: 42, RecvBytes: 7}
	got, err := DecodeStatus(EncodeStatus(st))
	if err != nil || got != st {
		t.Errorf("status: %+v %v", got, err)
	}
	if _, err := DecodeStatus([]byte{1}); err == nil {
		t.Error("short status accepted")
	}
}

func TestCkptFraming(t *testing.T) {
	seq, img, err := DecodeCkptSave(EncodeCkptSave(9, []byte("image")))
	if err != nil || seq != 9 || string(img) != "image" {
		t.Errorf("ckpt save: %d %q %v", seq, img, err)
	}
	present, img, err := DecodeCkptImage(EncodeCkptImage(true, []byte("x")))
	if err != nil || !present || string(img) != "x" {
		t.Errorf("ckpt image: %v %q %v", present, img, err)
	}
	present, img, err = DecodeCkptImage(EncodeCkptImage(false, nil))
	if err != nil || present || len(img) != 0 {
		t.Errorf("empty ckpt image: %v %q %v", present, img, err)
	}
	if _, _, err := DecodeCkptSave([]byte{1}); err == nil {
		t.Error("short ckpt save accepted")
	}
	if _, _, err := DecodeCkptImage(nil); err == nil {
		t.Error("empty ckpt image frame accepted")
	}
}

func TestCMFraming(t *testing.T) {
	dest, data, err := DecodeCMPut(EncodeCMPut(5, []byte("m")))
	if err != nil || dest != 5 || string(data) != "m" {
		t.Errorf("cm put: %d %q %v", dest, data, err)
	}
	present, from, data, err := DecodeCMMsg(EncodeCMMsg(true, 3, []byte("d")))
	if err != nil || !present || from != 3 || string(data) != "d" {
		t.Errorf("cm msg: %v %d %q %v", present, from, data, err)
	}
	if _, _, err := DecodeCMPut([]byte{1}); err == nil {
		t.Error("short cm put accepted")
	}
	if _, _, _, err := DecodeCMMsg([]byte{1}); err == nil {
		t.Error("short cm msg accepted")
	}
}

func TestKindNames(t *testing.T) {
	kinds := []uint8{KPayload, KRestart1, KRestart2, KCkptNote, KEventLog, KEventAck,
		KEventFetch, KEventFetched, KCkptSave, KCkptSaveAck, KCkptFetch, KCkptImage,
		KSchedPoll, KSchedStat, KCkptOrder, KHello, KFinalize, KCMPut, KCMGet, KCMMsg}
	seen := map[uint8]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Errorf("duplicate kind value %d", k)
		}
		seen[k] = true
		if KindName(k) == "" || KindName(k)[0] == 'k' {
			t.Errorf("kind %d has no name", k)
		}
	}
	if KindName(200) != "kind-200" {
		t.Errorf("unknown kind name: %s", KindName(200))
	}
}
