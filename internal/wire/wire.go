// Package wire defines the frame kinds and binary encodings exchanged
// between the components of an MPICH-V2 system: computing-node daemons,
// event loggers, checkpoint servers, the checkpoint scheduler and the
// dispatcher. Encodings are hand-rolled over encoding/binary: the event
// record is 24 bytes, matching the paper's "small message (in the order
// of 20 bytes) to the Event Logger".
package wire

import (
	"encoding/binary"
	"fmt"

	"mpichv/internal/core"
)

// Frame kinds. The transport carries the kind byte; the payload encoding
// is defined per kind below.
const (
	// Computing node ↔ computing node.
	KPayload  uint8 = iota + 1 // data: PayloadHeader + payload bytes
	KRestart1                  // data: u64 HR (phase B of recovery)
	KRestart2                  // data: u64 HR
	KCkptNote                  // data: u64 delivered-up-to clock (garbage collection)

	// Computing node ↔ event logger.
	KEventLog     // data: u64 request seq + event batch
	KEventAck     // data: u64 echoed request seq
	KEventFetch   // data: u64 clock; reply holds events with RecvClock > clock
	KEventFetched // data: event batch

	// Computing node ↔ checkpoint server.
	KCkptSave    // data: u64 seq + image bytes
	KCkptSaveAck // data: u64 seq
	KCkptFetch   // data: empty
	KCkptImage   // data: u8 present + image bytes

	// Checkpoint scheduler ↔ computing node.
	KSchedPoll // data: empty
	KSchedStat // data: NodeStatus
	KCkptOrder // data: empty — take a checkpoint now

	// Dispatcher ↔ everyone.
	KHello    // node announces itself; data: u64 incarnation
	KFinalize // node reached MPI finalize; data: empty

	// MPICH-V1 baseline: computing node ↔ channel memory.
	KCMPut // sender stores a message on the receiver's channel memory
	KCMGet // receiver asks its channel memory for the next message
	KCMMsg // channel memory delivers one message (u8 present + header+payload)

	// KFinalizeAck confirms a KFinalize so the daemon can stop
	// retransmitting it on a lossy fabric; data: empty. (Appended last
	// to keep the numeric values of the kinds above stable.)
	KFinalizeAck
)

// KindName returns a short human-readable name for diagnostics.
func KindName(k uint8) string {
	names := map[uint8]string{
		KPayload: "payload", KRestart1: "restart1", KRestart2: "restart2",
		KCkptNote: "ckpt-note", KEventLog: "event-log", KEventAck: "event-ack",
		KEventFetch: "event-fetch", KEventFetched: "event-fetched",
		KCkptSave: "ckpt-save", KCkptSaveAck: "ckpt-save-ack",
		KCkptFetch: "ckpt-fetch", KCkptImage: "ckpt-image",
		KSchedPoll: "sched-poll", KSchedStat: "sched-stat", KCkptOrder: "ckpt-order",
		KHello: "hello", KFinalize: "finalize", KFinalizeAck: "finalize-ack",
		KCMPut: "cm-put", KCMGet: "cm-get", KCMMsg: "cm-msg",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("kind-%d", k)
}

// PayloadHeader prefixes every inter-node payload frame: the sender's
// logical clock at emission (the message identifier of §4.1 together
// with the frame's From field), the per-destination channel sequence
// (gap-free, so a receiver on a lossy network can detect a missing
// predecessor; 0 = unsequenced), and the device-level kind byte that
// the MPI channel layer uses.
type PayloadHeader struct {
	SenderClock uint64
	PairSeq     uint64
	DevKind     uint8
}

// PayloadHeaderLen is the encoded size of a PayloadHeader.
const PayloadHeaderLen = 17

// EncodePayload prepends the header to body.
func EncodePayload(h PayloadHeader, body []byte) []byte {
	out := make([]byte, PayloadHeaderLen+len(body))
	binary.BigEndian.PutUint64(out[0:8], h.SenderClock)
	binary.BigEndian.PutUint64(out[8:16], h.PairSeq)
	out[16] = h.DevKind
	copy(out[PayloadHeaderLen:], body)
	return out
}

// DecodePayload splits a payload frame into header and body. The body
// aliases data.
func DecodePayload(data []byte) (PayloadHeader, []byte, error) {
	if len(data) < PayloadHeaderLen {
		return PayloadHeader{}, nil, fmt.Errorf("wire: payload frame of %d bytes too short", len(data))
	}
	return PayloadHeader{
		SenderClock: binary.BigEndian.Uint64(data[0:8]),
		PairSeq:     binary.BigEndian.Uint64(data[8:16]),
		DevKind:     data[16],
	}, data[PayloadHeaderLen:], nil
}

// --- Event batches -------------------------------------------------------

const eventLen = 4 + 8 + 8 + 4

// EncodeEvents serializes a batch of reception events.
func EncodeEvents(evs []core.Event) []byte {
	out := make([]byte, 4+eventLen*len(evs))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(evs)))
	off := 4
	for _, ev := range evs {
		binary.BigEndian.PutUint32(out[off:], uint32(int32(ev.Sender)))
		binary.BigEndian.PutUint64(out[off+4:], ev.SenderClock)
		binary.BigEndian.PutUint64(out[off+12:], ev.RecvClock)
		binary.BigEndian.PutUint32(out[off+20:], ev.Probes)
		off += eventLen
	}
	return out
}

// DecodeEvents parses a batch of reception events.
func DecodeEvents(data []byte) ([]core.Event, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("wire: event batch too short")
	}
	n := int(binary.BigEndian.Uint32(data[0:4]))
	if len(data) != 4+n*eventLen {
		return nil, fmt.Errorf("wire: event batch of %d bytes does not hold %d events", len(data), n)
	}
	evs := make([]core.Event, n)
	off := 4
	for i := range evs {
		evs[i] = core.Event{
			Sender:      int(int32(binary.BigEndian.Uint32(data[off:]))),
			SenderClock: binary.BigEndian.Uint64(data[off+4:]),
			RecvClock:   binary.BigEndian.Uint64(data[off+12:]),
			Probes:      binary.BigEndian.Uint32(data[off+20:]),
		}
		off += eventLen
	}
	return evs, nil
}

// EncodeEventLog prefixes the submitter's request sequence number to an
// event batch. The event logger echoes the sequence in its KEventAck,
// which lets a daemon match acks to in-flight batches when frames are
// lost, duplicated, or reordered, and lets the logger re-ack a
// retransmitted batch it already stored.
func EncodeEventLog(seq uint64, evs []core.Event) []byte {
	body := EncodeEvents(evs)
	out := make([]byte, 8+len(body))
	binary.BigEndian.PutUint64(out, seq)
	copy(out[8:], body)
	return out
}

// DecodeEventLog splits a KEventLog payload.
func DecodeEventLog(data []byte) (uint64, []core.Event, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("wire: event log frame of %d bytes too short", len(data))
	}
	evs, err := DecodeEvents(data[8:])
	if err != nil {
		return 0, nil, err
	}
	return binary.BigEndian.Uint64(data), evs, nil
}

// --- Small scalar payloads ----------------------------------------------

// EncodeU64 encodes a single 64-bit value (clocks, counts, sequence
// numbers).
func EncodeU64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// DecodeU64 decodes a value produced by EncodeU64.
func DecodeU64(data []byte) (uint64, error) {
	if len(data) != 8 {
		return 0, fmt.Errorf("wire: expected 8-byte value, got %d", len(data))
	}
	return binary.BigEndian.Uint64(data), nil
}

// EncodeU32 encodes a 32-bit count.
func EncodeU32(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

// DecodeU32 decodes a value produced by EncodeU32.
func DecodeU32(data []byte) (uint32, error) {
	if len(data) != 4 {
		return 0, fmt.Errorf("wire: expected 4-byte value, got %d", len(data))
	}
	return binary.BigEndian.Uint32(data), nil
}

// --- Scheduler status ------------------------------------------------------

// NodeStatus is what a computing node reports to the checkpoint
// scheduler (§4.6.2): the occupancy of its message log and its traffic
// ratio inputs.
type NodeStatus struct {
	Rank      int
	LogBytes  uint64
	SentBytes uint64
	RecvBytes uint64
}

// EncodeStatus serializes a NodeStatus.
func EncodeStatus(st NodeStatus) []byte {
	out := make([]byte, 4+8*3)
	binary.BigEndian.PutUint32(out[0:], uint32(int32(st.Rank)))
	binary.BigEndian.PutUint64(out[4:], st.LogBytes)
	binary.BigEndian.PutUint64(out[12:], st.SentBytes)
	binary.BigEndian.PutUint64(out[20:], st.RecvBytes)
	return out
}

// DecodeStatus parses a NodeStatus.
func DecodeStatus(data []byte) (NodeStatus, error) {
	if len(data) != 28 {
		return NodeStatus{}, fmt.Errorf("wire: bad status length %d", len(data))
	}
	return NodeStatus{
		Rank:      int(int32(binary.BigEndian.Uint32(data[0:]))),
		LogBytes:  binary.BigEndian.Uint64(data[4:]),
		SentBytes: binary.BigEndian.Uint64(data[12:]),
		RecvBytes: binary.BigEndian.Uint64(data[20:]),
	}, nil
}

// --- Checkpoint image framing ---------------------------------------------

// EncodeCkptSave prefixes the checkpoint sequence number to an image.
func EncodeCkptSave(seq uint64, image []byte) []byte {
	out := make([]byte, 8+len(image))
	binary.BigEndian.PutUint64(out, seq)
	copy(out[8:], image)
	return out
}

// DecodeCkptSave splits a KCkptSave payload.
func DecodeCkptSave(data []byte) (seq uint64, image []byte, err error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("wire: ckpt save frame too short")
	}
	return binary.BigEndian.Uint64(data), data[8:], nil
}

// EncodeCkptImage frames a fetch response; present=false means the
// server has no image for the rank (restart from scratch).
func EncodeCkptImage(present bool, image []byte) []byte {
	out := make([]byte, 1+len(image))
	if present {
		out[0] = 1
	}
	copy(out[1:], image)
	return out
}

// DecodeCkptImage splits a KCkptImage payload.
func DecodeCkptImage(data []byte) (present bool, image []byte, err error) {
	if len(data) < 1 {
		return false, nil, fmt.Errorf("wire: ckpt image frame too short")
	}
	return data[0] == 1, data[1:], nil
}
