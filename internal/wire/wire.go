// Package wire defines the frame kinds and binary encodings exchanged
// between the components of an MPICH-V2 system: computing-node daemons,
// event loggers, checkpoint servers, the checkpoint scheduler and the
// dispatcher. Encodings are hand-rolled over encoding/binary: the event
// record is 32 bytes — the paper's "small message (in the order of 20
// bytes) to the Event Logger" plus the per-channel sequence number the
// recovery auditor uses to prove logged histories are gap-free.
package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"mpichv/internal/core"
)

// Frame kinds. The transport carries the kind byte; the payload encoding
// is defined per kind below.
const (
	// Computing node ↔ computing node.
	KPayload  uint8 = iota + 1 // data: PayloadHeader + payload bytes
	KRestart1                  // data: u64 HR (phase B of recovery)
	KRestart2                  // data: u64 HR
	KCkptNote                  // data: u64 delivered-up-to clock (garbage collection)

	// Computing node ↔ event logger.
	KEventLog     // data: u64 request seq + event batch
	KEventAck     // data: u64 echoed request seq + u64 cumulative seq (legacy: seq only)
	KEventFetch   // data: u64 clock; reply holds events with RecvClock > clock
	KEventFetched // data: event batch

	// Computing node ↔ checkpoint server.
	KCkptSave    // data: u64 seq + image bytes
	KCkptSaveAck // data: u64 seq
	KCkptFetch   // data: empty
	KCkptImage   // data: u8 present + image bytes

	// Checkpoint scheduler ↔ computing node.
	KSchedPoll // data: empty
	KSchedStat // data: NodeStatus
	KCkptOrder // data: empty — take a checkpoint now

	// Dispatcher ↔ everyone.
	KHello    // node announces itself; data: u64 incarnation
	KFinalize // node reached MPI finalize; data: empty

	// MPICH-V1 baseline: computing node ↔ channel memory.
	KCMPut // sender stores a message on the receiver's channel memory
	KCMGet // receiver asks its channel memory for the next message
	KCMMsg // channel memory delivers one message (u8 present + header+payload)

	// KFinalizeAck confirms a KFinalize so the daemon can stop
	// retransmitting it on a lossy fabric; data: empty. (Appended last
	// to keep the numeric values of the kinds above stable.)
	KFinalizeAck

	// Replica ↔ replica anti-entropy (appended after KFinalizeAck for
	// the same numbering-stability reason).
	KELSyncReq  // data: sync marks (node → RecvClock high-water)
	KELSyncResp // data: per-node event batches above the marks
	KCSSyncReq  // data: sync marks (rank → checkpoint seq high-water)
	KCSSyncResp // data: checkpoint entries above the marks

	// Chunked checkpoint transfer (appended after KCSSyncResp, same
	// numbering-stability reason). The save path streams an image as
	// fixed-size chunks, each acked individually; the restart fast path
	// fetches a manifest first and then pulls chunks across the read
	// quorum.
	KCkptChunk       // data: chunk frame (magic + seq/idx/count + len + CRC + body)
	KCkptChunkAck    // data: u64 seq + u32 chunk index
	KCkptManifestReq // data: u32 desired chunk size
	KCkptManifest    // data: CkptManifest (present, seq, size, per-chunk CRCs)
	KCkptChunkFetch  // data: u64 seq + u32 index + u32 chunk size
	KCkptChunkData   // data: chunk frame, same encoding as KCkptChunk

	// Determinant suppression (appended after KCkptChunkData, same
	// numbering-stability reason). KDetRelay carries determinants a
	// daemon received piggybacked on payload frames to the event-logger
	// replicas on behalf of their origin node; it is acked by the same
	// KEventAck (seq + cumulative mark) as KEventLog, sharing the
	// submitter's seq stream. KDetFlushReq/Resp are the recovery-time
	// direct merge: a restarting node asks every peer for the
	// piggybacked determinants it holds for it, closing the window where
	// a relay is still in flight to the loggers.
	KDetRelay     // data: u64 request seq + u32 origin node + event batch
	KDetFlushReq  // data: empty — "send me the determinants you hold for me"
	KDetFlushResp // data: event batch (the requester's own determinants)

	// Event-logger fleet rebalancing (appended after KDetFlushResp, same
	// numbering-stability reason). The dispatcher tracks per-shard live
	// membership and tells every compute rank when an EL shard drops
	// below / regains its write quorum; daemons reroute the shard's key
	// range to its ring successor and backfill retained determinants
	// (DESIGN.md §15).
	KELShardDown // data: u32 shard index — shard lost its write quorum
	KELShardUp   // data: u32 shard index — shard regained its quorum
)

// KindName returns a short human-readable name for diagnostics.
func KindName(k uint8) string {
	names := map[uint8]string{
		KPayload: "payload", KRestart1: "restart1", KRestart2: "restart2",
		KCkptNote: "ckpt-note", KEventLog: "event-log", KEventAck: "event-ack",
		KEventFetch: "event-fetch", KEventFetched: "event-fetched",
		KCkptSave: "ckpt-save", KCkptSaveAck: "ckpt-save-ack",
		KCkptFetch: "ckpt-fetch", KCkptImage: "ckpt-image",
		KSchedPoll: "sched-poll", KSchedStat: "sched-stat", KCkptOrder: "ckpt-order",
		KHello: "hello", KFinalize: "finalize", KFinalizeAck: "finalize-ack",
		KCMPut: "cm-put", KCMGet: "cm-get", KCMMsg: "cm-msg",
		KELSyncReq: "el-sync-req", KELSyncResp: "el-sync-resp",
		KCSSyncReq: "cs-sync-req", KCSSyncResp: "cs-sync-resp",
		KCkptChunk: "ckpt-chunk", KCkptChunkAck: "ckpt-chunk-ack",
		KCkptManifestReq: "ckpt-manifest-req", KCkptManifest: "ckpt-manifest",
		KCkptChunkFetch: "ckpt-chunk-fetch", KCkptChunkData: "ckpt-chunk-data",
		KDetRelay: "det-relay", KDetFlushReq: "det-flush-req", KDetFlushResp: "det-flush-resp",
		KELShardDown: "el-shard-down", KELShardUp: "el-shard-up",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("kind-%d", k)
}

// PayloadHeader prefixes every inter-node payload frame: the sender's
// logical clock at emission (the message identifier of §4.1 together
// with the frame's From field), the per-destination channel sequence
// (gap-free, so a receiver on a lossy network can detect a missing
// predecessor; 0 = unsequenced), and the device-level kind byte that
// the MPI channel layer uses. The encoding additionally frames the
// body with its length and CRC-32, so a frame truncated or bit-flipped
// in flight fails DecodePayload instead of handing garbage to the MPI
// layer — the receiver then treats it exactly like a dropped frame and
// the retry machinery re-delivers it.
type PayloadHeader struct {
	SenderClock uint64
	PairSeq     uint64
	DevKind     uint8
	// Span is an optional trace span id (causal parent link for the
	// receiver's trace). Zero means absent: the frame encodes exactly
	// as it did before spans existed, so runs with tracing disabled
	// put byte-identical frames on the (simulated) wire and pay zero
	// virtual-time or allocation overhead. A nonzero span is appended
	// after the fixed header, signaled by the top bit of the DevKind
	// byte (device kinds are small; bit 7 is never a real kind).
	Span uint64
	// Dets are suppressed determinants piggybacked on the frame: the
	// sender's not-yet-durable reception events riding an app message
	// they causally precede, so the receiver can relay them to the
	// event loggers off the sender's critical path. Empty means absent:
	// the frame encodes byte-identically to a det-free frame. A
	// non-empty block (u32 count + 32-byte event records, the
	// AppendEvents format) is appended after the span id, signaled by
	// bit 6 of the DevKind byte.
	Dets []core.Event
}

// PayloadHeaderLen is the encoded size of a PayloadHeader plus the body
// length and checksum framing.
const PayloadHeaderLen = 17 + 8

// PayloadSpanLen is the extra encoded size of a nonzero trace span id.
const PayloadSpanLen = 8

// payloadSpanFlag marks, on the encoded DevKind byte, that a span id
// follows the fixed header.
const payloadSpanFlag = 0x80

// payloadDetFlag marks, on the encoded DevKind byte, that a piggybacked
// determinant block follows the (optional) span id. Bit 6 is the second
// reserved bit: device kinds are small and never reach it.
const payloadDetFlag = 0x40

// payloadFlags are the DevKind bits reserved for framing.
const payloadFlags = payloadSpanFlag | payloadDetFlag

// PayloadSize is the encoded size of a payload frame with an n-byte
// body and no span id.
func PayloadSize(n int) int { return PayloadHeaderLen + n }

// PayloadSizeH is the encoded size of a payload frame with an n-byte
// body under header h (accounts for an optional span id and an optional
// piggybacked determinant block).
func PayloadSizeH(h PayloadHeader, n int) int {
	sz := PayloadHeaderLen + n
	if h.Span != 0 {
		sz += PayloadSpanLen
	}
	if len(h.Dets) > 0 {
		sz += EventsSize(len(h.Dets))
	}
	return sz
}

// AppendPayload appends the encoded frame to dst and returns the
// extended slice. With dst capacity of at least PayloadSizeH(h, len(body))
// — e.g. a GetBuf buffer — it performs no allocation.
func AppendPayload(dst []byte, h PayloadHeader, body []byte) []byte {
	if h.DevKind&payloadFlags != 0 {
		panic(fmt.Sprintf("wire: DevKind %#x uses reserved framing bits 6-7", h.DevKind))
	}
	var hdr [PayloadHeaderLen + PayloadSpanLen]byte
	binary.BigEndian.PutUint64(hdr[0:8], h.SenderClock)
	binary.BigEndian.PutUint64(hdr[8:16], h.PairSeq)
	hdr[16] = h.DevKind
	binary.BigEndian.PutUint32(hdr[17:21], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[21:25], crc32.ChecksumIEEE(body))
	n := PayloadHeaderLen
	if h.Span != 0 {
		hdr[16] |= payloadSpanFlag
		binary.BigEndian.PutUint64(hdr[PayloadHeaderLen:], h.Span)
		n += PayloadSpanLen
	}
	if len(h.Dets) > 0 {
		hdr[16] |= payloadDetFlag
	}
	dst = append(dst, hdr[:n]...)
	if len(h.Dets) > 0 {
		dst = AppendEvents(dst, h.Dets)
	}
	return append(dst, body...)
}

// EncodePayload prepends the header and the body's length/CRC framing.
func EncodePayload(h PayloadHeader, body []byte) []byte {
	return AppendPayload(make([]byte, 0, PayloadSizeH(h, len(body))), h, body)
}

// DecodePayload splits a payload frame into header and body, verifying
// the body's length and checksum. The body aliases data; a piggybacked
// determinant block is copied out into h.Dets.
func DecodePayload(data []byte) (PayloadHeader, []byte, error) {
	if len(data) < PayloadHeaderLen {
		return PayloadHeader{}, nil, fmt.Errorf("wire: payload frame of %d bytes too short", len(data))
	}
	hlen := PayloadHeaderLen
	var span uint64
	if data[16]&payloadSpanFlag != 0 {
		hlen += PayloadSpanLen
		if len(data) < hlen {
			return PayloadHeader{}, nil, fmt.Errorf("wire: payload frame of %d bytes too short for span id", len(data))
		}
		span = binary.BigEndian.Uint64(data[PayloadHeaderLen:hlen])
	}
	var dets []core.Event
	if data[16]&payloadDetFlag != 0 {
		if len(data) < hlen+4 {
			return PayloadHeader{}, nil, fmt.Errorf("wire: payload frame of %d bytes too short for det block", len(data))
		}
		n := int(binary.BigEndian.Uint32(data[hlen : hlen+4]))
		end := hlen + EventsSize(n)
		if n > len(data) || end > len(data) { // n guard keeps EventsSize from overflowing
			return PayloadHeader{}, nil, fmt.Errorf("wire: payload det block of %d events truncated", n)
		}
		var err error
		if dets, err = DecodeEvents(data[hlen:end]); err != nil {
			return PayloadHeader{}, nil, err
		}
		if len(dets) == 0 {
			// Canonical form: encoders omit the flag for an empty block,
			// so an accepted zero-count block must decode to the same
			// header the re-encoded frame will.
			dets = nil
		}
		hlen = end
	}
	body := data[hlen:]
	if n := binary.BigEndian.Uint32(data[17:21]); int(n) != len(body) {
		return PayloadHeader{}, nil, fmt.Errorf("wire: payload body of %d bytes, framed as %d", len(body), n)
	}
	if sum := binary.BigEndian.Uint32(data[21:25]); sum != crc32.ChecksumIEEE(body) {
		return PayloadHeader{}, nil, fmt.Errorf("wire: payload checksum mismatch")
	}
	return PayloadHeader{
		SenderClock: binary.BigEndian.Uint64(data[0:8]),
		PairSeq:     binary.BigEndian.Uint64(data[8:16]),
		DevKind:     data[16] &^ payloadFlags,
		Span:        span,
		Dets:        dets,
	}, body, nil
}

// --- Event batches -------------------------------------------------------

const eventLen = 4 + 8 + 8 + 4 + 8

// EventsSize is the encoded size of an n-event batch.
func EventsSize(n int) int { return 4 + eventLen*n }

// AppendEvents appends a serialized batch of reception events to dst.
// With sufficient dst capacity — EventsSize(len(evs)) — it performs no
// allocation.
func AppendEvents(dst []byte, evs []core.Event) []byte {
	var b [eventLen]byte
	binary.BigEndian.PutUint32(b[:4], uint32(len(evs)))
	dst = append(dst, b[:4]...)
	for _, ev := range evs {
		binary.BigEndian.PutUint32(b[0:], uint32(int32(ev.Sender)))
		binary.BigEndian.PutUint64(b[4:], ev.SenderClock)
		binary.BigEndian.PutUint64(b[12:], ev.RecvClock)
		binary.BigEndian.PutUint32(b[20:], ev.Probes)
		binary.BigEndian.PutUint64(b[24:], ev.Seq)
		dst = append(dst, b[:]...)
	}
	return dst
}

// EncodeEvents serializes a batch of reception events.
func EncodeEvents(evs []core.Event) []byte {
	return AppendEvents(make([]byte, 0, EventsSize(len(evs))), evs)
}

// DecodeEvents parses a batch of reception events.
func DecodeEvents(data []byte) ([]core.Event, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("wire: event batch too short")
	}
	n := int(binary.BigEndian.Uint32(data[0:4]))
	if len(data) != 4+n*eventLen {
		return nil, fmt.Errorf("wire: event batch of %d bytes does not hold %d events", len(data), n)
	}
	evs := make([]core.Event, n)
	off := 4
	for i := range evs {
		evs[i] = core.Event{
			Sender:      int(int32(binary.BigEndian.Uint32(data[off:]))),
			SenderClock: binary.BigEndian.Uint64(data[off+4:]),
			RecvClock:   binary.BigEndian.Uint64(data[off+12:]),
			Probes:      binary.BigEndian.Uint32(data[off+20:]),
			Seq:         binary.BigEndian.Uint64(data[off+24:]),
		}
		off += eventLen
	}
	return evs, nil
}

// EventLogSize is the encoded size of a KEventLog frame holding n events.
func EventLogSize(n int) int { return 8 + EventsSize(n) }

// AppendEventLog appends a KEventLog frame to dst: the submitter's
// request sequence number followed by the event batch. With sufficient
// dst capacity — EventLogSize(len(evs)) — it performs no allocation.
func AppendEventLog(dst []byte, seq uint64, evs []core.Event) []byte {
	return AppendEvents(AppendU64(dst, seq), evs)
}

// EncodeEventLog prefixes the submitter's request sequence number to an
// event batch. The event logger echoes the sequence in its KEventAck,
// which lets a daemon match acks to in-flight batches when frames are
// lost, duplicated, or reordered, and lets the logger re-ack a
// retransmitted batch it already stored.
func EncodeEventLog(seq uint64, evs []core.Event) []byte {
	return AppendEventLog(make([]byte, 0, EventLogSize(len(evs))), seq, evs)
}

// DecodeEventLog splits a KEventLog payload.
func DecodeEventLog(data []byte) (uint64, []core.Event, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("wire: event log frame of %d bytes too short", len(data))
	}
	evs, err := DecodeEvents(data[8:])
	if err != nil {
		return 0, nil, err
	}
	return binary.BigEndian.Uint64(data), evs, nil
}

// --- Event acks -----------------------------------------------------------

// eventAckLen is the encoded size of a full KEventAck: the echoed
// request seq plus the server's cumulative mark.
const eventAckLen = 16

// AppendEventAck appends a KEventAck to dst: the echoed request seq and
// the server's cumulative mark cum — the highest sequence number such
// that the server has stored every batch of the same incarnation up to
// and including it. The mark lets the submitter complete older batches
// whose own acks were lost without waiting for a retransmit round trip.
func AppendEventAck(dst []byte, seq, cum uint64) []byte {
	return AppendU64(AppendU64(dst, seq), cum)
}

// EncodeEventAck encodes a KEventAck.
func EncodeEventAck(seq, cum uint64) []byte {
	return AppendEventAck(make([]byte, 0, eventAckLen), seq, cum)
}

// DecodeEventAck parses a KEventAck. The legacy 8-byte form (seq only)
// is accepted with cum = 0, which can never match a live batch: it is
// what a chaos-truncated 16-byte ack decays to, and what pre-cumulative
// loggers send, so both degrade to a plain per-batch ack.
func DecodeEventAck(data []byte) (seq, cum uint64, err error) {
	switch len(data) {
	case eventAckLen:
		return binary.BigEndian.Uint64(data), binary.BigEndian.Uint64(data[8:]), nil
	case 8:
		return binary.BigEndian.Uint64(data), 0, nil
	}
	return 0, 0, fmt.Errorf("wire: event ack of %d bytes, want 8 or %d", len(data), eventAckLen)
}

// --- Determinant relay ----------------------------------------------------

// DetRelaySize is the encoded size of a KDetRelay frame holding n events.
func DetRelaySize(n int) int { return 8 + 4 + EventsSize(n) }

// AppendDetRelay appends a KDetRelay frame to dst: the relaying
// daemon's request seq (drawn from the same stream as its KEventLog
// batches, so one cumulative KEventAck mark retires both), the origin
// node the piggybacked determinants belong to, and the event batch.
// With sufficient dst capacity it performs no allocation.
func AppendDetRelay(dst []byte, seq uint64, origin int, evs []core.Event) []byte {
	dst = AppendU64(dst, seq)
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(int32(origin)))
	dst = append(dst, b[:]...)
	return AppendEvents(dst, evs)
}

// DecodeDetRelay splits a KDetRelay payload.
func DecodeDetRelay(data []byte) (seq uint64, origin int, evs []core.Event, err error) {
	if len(data) < 12 {
		return 0, 0, nil, fmt.Errorf("wire: det relay frame of %d bytes too short", len(data))
	}
	evs, err = DecodeEvents(data[12:])
	if err != nil {
		return 0, 0, nil, err
	}
	return binary.BigEndian.Uint64(data), int(int32(binary.BigEndian.Uint32(data[8:12]))), evs, nil
}

// --- Small scalar payloads ----------------------------------------------

// AppendU64 appends a big-endian 64-bit value to dst.
func AppendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// EncodeU64 encodes a single 64-bit value (clocks, counts, sequence
// numbers).
func EncodeU64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// DecodeU64 decodes a value produced by EncodeU64.
func DecodeU64(data []byte) (uint64, error) {
	if len(data) != 8 {
		return 0, fmt.Errorf("wire: expected 8-byte value, got %d", len(data))
	}
	return binary.BigEndian.Uint64(data), nil
}

// EncodeU32 encodes a 32-bit count.
func EncodeU32(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

// DecodeU32 decodes a value produced by EncodeU32.
func DecodeU32(data []byte) (uint32, error) {
	if len(data) != 4 {
		return 0, fmt.Errorf("wire: expected 4-byte value, got %d", len(data))
	}
	return binary.BigEndian.Uint32(data), nil
}

// --- Scheduler status ------------------------------------------------------

// NodeStatus is what a computing node reports to the checkpoint
// scheduler (§4.6.2): the occupancy of its message log and its traffic
// ratio inputs.
type NodeStatus struct {
	Rank      int
	LogBytes  uint64
	SentBytes uint64
	RecvBytes uint64
}

// EncodeStatus serializes a NodeStatus.
func EncodeStatus(st NodeStatus) []byte {
	out := make([]byte, 4+8*3)
	binary.BigEndian.PutUint32(out[0:], uint32(int32(st.Rank)))
	binary.BigEndian.PutUint64(out[4:], st.LogBytes)
	binary.BigEndian.PutUint64(out[12:], st.SentBytes)
	binary.BigEndian.PutUint64(out[20:], st.RecvBytes)
	return out
}

// DecodeStatus parses a NodeStatus.
func DecodeStatus(data []byte) (NodeStatus, error) {
	if len(data) != 28 {
		return NodeStatus{}, fmt.Errorf("wire: bad status length %d", len(data))
	}
	return NodeStatus{
		Rank:      int(int32(binary.BigEndian.Uint32(data[0:]))),
		LogBytes:  binary.BigEndian.Uint64(data[4:]),
		SentBytes: binary.BigEndian.Uint64(data[12:]),
		RecvBytes: binary.BigEndian.Uint64(data[20:]),
	}, nil
}

// --- Checkpoint image framing ---------------------------------------------

// EncodeCkptSave prefixes the checkpoint sequence number to an image.
func EncodeCkptSave(seq uint64, image []byte) []byte {
	out := make([]byte, 8+len(image))
	binary.BigEndian.PutUint64(out, seq)
	copy(out[8:], image)
	return out
}

// DecodeCkptSave splits a KCkptSave payload.
func DecodeCkptSave(data []byte) (seq uint64, image []byte, err error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("wire: ckpt save frame too short")
	}
	return binary.BigEndian.Uint64(data), data[8:], nil
}

// EncodeCkptImage frames a fetch response; present=false means the
// server has no image for the rank (restart from scratch).
func EncodeCkptImage(present bool, image []byte) []byte {
	out := make([]byte, 1+len(image))
	if present {
		out[0] = 1
	}
	copy(out[1:], image)
	return out
}

// DecodeCkptImage splits a KCkptImage payload.
func DecodeCkptImage(data []byte) (present bool, image []byte, err error) {
	if len(data) < 1 {
		return false, nil, fmt.Errorf("wire: ckpt image frame too short")
	}
	return data[0] == 1, data[1:], nil
}

// --- Replica anti-entropy -------------------------------------------------

// EncodeSyncMarks serializes per-key high-water marks for a sync
// request: the requester asks its peers for everything above each mark
// (event-logger replicas key by computing node and RecvClock;
// checkpoint replicas key by rank and checkpoint seq). Keys are sorted
// so the encoding is deterministic.
func EncodeSyncMarks(marks map[int]uint64) []byte {
	keys := make([]int, 0, len(marks))
	for k := range marks {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]byte, 4+12*len(keys))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(keys)))
	off := 4
	for _, k := range keys {
		binary.BigEndian.PutUint32(out[off:], uint32(int32(k)))
		binary.BigEndian.PutUint64(out[off+4:], marks[k])
		off += 12
	}
	return out
}

// DecodeSyncMarks parses a sync-marks payload.
func DecodeSyncMarks(data []byte) (map[int]uint64, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("wire: sync marks too short")
	}
	n := int(binary.BigEndian.Uint32(data[0:4]))
	if len(data) != 4+12*n {
		return nil, fmt.Errorf("wire: sync marks of %d bytes do not hold %d entries", len(data), n)
	}
	marks := make(map[int]uint64, n)
	off := 4
	for i := 0; i < n; i++ {
		k := int(int32(binary.BigEndian.Uint32(data[off:])))
		marks[k] = binary.BigEndian.Uint64(data[off+4:])
		off += 12
	}
	return marks, nil
}

// EncodeNodeEvents serializes a sync response: per computing node, the
// events the peer holds above the requested marks. Nodes are sorted for
// a deterministic encoding.
func EncodeNodeEvents(m map[int][]core.Event) []byte {
	nodes := make([]int, 0, len(m))
	for k := range m {
		nodes = append(nodes, k)
	}
	sort.Ints(nodes)
	out := EncodeU32(uint32(len(nodes)))
	for _, node := range nodes {
		out = append(out, EncodeU32(uint32(int32(node)))...)
		out = append(out, EncodeEvents(m[node])...)
	}
	return out
}

// DecodeNodeEvents parses a sync response.
func DecodeNodeEvents(data []byte) (map[int][]core.Event, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("wire: node events too short")
	}
	n := int(binary.BigEndian.Uint32(data[0:4]))
	off := 4
	m := make(map[int][]core.Event, n)
	for i := 0; i < n; i++ {
		if len(data) < off+8 {
			return nil, fmt.Errorf("wire: node events truncated")
		}
		node := int(int32(binary.BigEndian.Uint32(data[off:])))
		cnt := int(binary.BigEndian.Uint32(data[off+4:]))
		end := off + 4 + 4 + cnt*eventLen
		if len(data) < end {
			return nil, fmt.Errorf("wire: node events truncated")
		}
		evs, err := DecodeEvents(data[off+4 : end])
		if err != nil {
			return nil, err
		}
		m[node] = evs
		off = end
	}
	if off != len(data) {
		return nil, fmt.Errorf("wire: node events have %d trailing bytes", len(data)-off)
	}
	return m, nil
}

// CkptEntry is one replicated checkpoint image in a KCSSyncResp.
type CkptEntry struct {
	Rank  int
	Seq   uint64
	Image []byte
}

// EncodeCkptEntries serializes a checkpoint sync response.
func EncodeCkptEntries(entries []CkptEntry) []byte {
	out := EncodeU32(uint32(len(entries)))
	for _, e := range entries {
		var hdr [16]byte
		binary.BigEndian.PutUint32(hdr[0:], uint32(int32(e.Rank)))
		binary.BigEndian.PutUint64(hdr[4:], e.Seq)
		binary.BigEndian.PutUint32(hdr[12:], uint32(len(e.Image)))
		out = append(out, hdr[:]...)
		out = append(out, e.Image...)
	}
	return out
}

// DecodeCkptEntries parses a checkpoint sync response.
func DecodeCkptEntries(data []byte) ([]CkptEntry, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("wire: ckpt entries too short")
	}
	n := int(binary.BigEndian.Uint32(data[0:4]))
	off := 4
	entries := make([]CkptEntry, 0, n)
	for i := 0; i < n; i++ {
		if len(data) < off+16 {
			return nil, fmt.Errorf("wire: ckpt entries truncated")
		}
		rank := int(int32(binary.BigEndian.Uint32(data[off:])))
		seq := binary.BigEndian.Uint64(data[off+4:])
		sz := int(binary.BigEndian.Uint32(data[off+12:]))
		off += 16
		if len(data) < off+sz {
			return nil, fmt.Errorf("wire: ckpt entries truncated")
		}
		entries = append(entries, CkptEntry{Rank: rank, Seq: seq, Image: data[off : off+sz]})
		off += sz
	}
	if off != len(data) {
		return nil, fmt.Errorf("wire: ckpt entries have %d trailing bytes", len(data)-off)
	}
	return entries, nil
}

// --- Chunked checkpoint transfer ------------------------------------------

// chunkMagic brands every checkpoint chunk frame: a chunk is
// independently verifiable (magic, length, CRC-32) so a damaged chunk is
// rejected — and left unacked, hence retransmitted — without waiting for
// the whole image to assemble.
var chunkMagic = [4]byte{'M', 'V', 'C', 'H'}

// chunkHeaderLen is magic + seq + idx + count + body length + CRC-32.
const chunkHeaderLen = 4 + 8 + 4 + 4 + 4 + 4

// CkptChunkSize is the encoded size of a chunk frame with an n-byte body.
func CkptChunkSize(n int) int { return chunkHeaderLen + n }

// AppendCkptChunk appends one checkpoint chunk frame to dst: chunk idx
// of count for checkpoint seq, carrying body bytes under their own
// magic/length/CRC-32 framing. The checksum covers the routing fields
// (seq, idx, count, body length) as well as the body: a bit flip that
// would steer an intact body into the wrong assembly slot is rejected
// at decode, not discovered after a whole image assembles corrupt. With
// dst capacity of at least CkptChunkSize(len(body)) — e.g. a GetBuf
// buffer — it performs no allocation. The same encoding serves the save
// path (KCkptChunk) and the restart fetch path (KCkptChunkData).
func AppendCkptChunk(dst []byte, seq uint64, idx, count uint32, body []byte) []byte {
	start := len(dst)
	var hdr [chunkHeaderLen]byte
	copy(hdr[0:4], chunkMagic[:])
	binary.BigEndian.PutUint64(hdr[4:12], seq)
	binary.BigEndian.PutUint32(hdr[12:16], idx)
	binary.BigEndian.PutUint32(hdr[16:20], count)
	binary.BigEndian.PutUint32(hdr[20:24], uint32(len(body)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, body...)
	// Checksum in place over dst (not over the stack header, which would
	// escape through crc32's indirect call and cost an allocation).
	sum := crc32.Update(crc32.ChecksumIEEE(dst[start+4:start+24]), crc32.IEEETable, dst[start+chunkHeaderLen:])
	binary.BigEndian.PutUint32(dst[start+24:start+28], sum)
	return dst
}

// DecodeCkptChunk parses a chunk frame, verifying magic, length framing
// and the checksum over both routing fields and body. The body aliases
// data.
func DecodeCkptChunk(data []byte) (seq uint64, idx, count uint32, body []byte, err error) {
	if len(data) < chunkHeaderLen {
		return 0, 0, 0, nil, fmt.Errorf("wire: chunk frame of %d bytes shorter than its header", len(data))
	}
	if !bytes.Equal(data[0:4], chunkMagic[:]) {
		return 0, 0, 0, nil, fmt.Errorf("wire: bad chunk magic %x", data[0:4])
	}
	body = data[chunkHeaderLen:]
	if n := binary.BigEndian.Uint32(data[20:24]); int(n) != len(body) {
		return 0, 0, 0, nil, fmt.Errorf("wire: chunk body of %d bytes, framed as %d", len(body), n)
	}
	sum := crc32.Update(crc32.ChecksumIEEE(data[4:24]), crc32.IEEETable, body)
	if sum != binary.BigEndian.Uint32(data[24:28]) {
		return 0, 0, 0, nil, fmt.Errorf("wire: chunk checksum mismatch")
	}
	seq = binary.BigEndian.Uint64(data[4:12])
	idx = binary.BigEndian.Uint32(data[12:16])
	count = binary.BigEndian.Uint32(data[16:20])
	if idx >= count || count == 0 {
		return 0, 0, 0, nil, fmt.Errorf("wire: chunk index %d outside count %d", idx, count)
	}
	return seq, idx, count, body, nil
}

// CkptChunkAckLen is the encoded size of a KCkptChunkAck.
const CkptChunkAckLen = 12

// AppendCkptChunkAck appends a per-chunk receipt: the checkpoint seq and
// the chunk index the server holds.
func AppendCkptChunkAck(dst []byte, seq uint64, idx uint32) []byte {
	var b [CkptChunkAckLen]byte
	binary.BigEndian.PutUint64(b[0:8], seq)
	binary.BigEndian.PutUint32(b[8:12], idx)
	return append(dst, b[:]...)
}

// DecodeCkptChunkAck parses a KCkptChunkAck.
func DecodeCkptChunkAck(data []byte) (seq uint64, idx uint32, err error) {
	if len(data) != CkptChunkAckLen {
		return 0, 0, fmt.Errorf("wire: chunk ack of %d bytes, want %d", len(data), CkptChunkAckLen)
	}
	return binary.BigEndian.Uint64(data), binary.BigEndian.Uint32(data[8:]), nil
}

// CkptChunkFetchLen is the encoded size of a KCkptChunkFetch.
const CkptChunkFetchLen = 16

// AppendCkptChunkFetch appends a restart-time chunk request: chunk idx
// of the stored image at seq, cut at chunkSize bytes per chunk.
func AppendCkptChunkFetch(dst []byte, seq uint64, idx, chunkSize uint32) []byte {
	var b [CkptChunkFetchLen]byte
	binary.BigEndian.PutUint64(b[0:8], seq)
	binary.BigEndian.PutUint32(b[8:12], idx)
	binary.BigEndian.PutUint32(b[12:16], chunkSize)
	return append(dst, b[:]...)
}

// DecodeCkptChunkFetch parses a KCkptChunkFetch.
func DecodeCkptChunkFetch(data []byte) (seq uint64, idx, chunkSize uint32, err error) {
	if len(data) != CkptChunkFetchLen {
		return 0, 0, 0, fmt.Errorf("wire: chunk fetch of %d bytes, want %d", len(data), CkptChunkFetchLen)
	}
	return binary.BigEndian.Uint64(data), binary.BigEndian.Uint32(data[8:]),
		binary.BigEndian.Uint32(data[12:]), nil
}

// CkptManifest describes a stored checkpoint image so a restarting
// daemon can pull it chunk by chunk: the image seq and total size, the
// chunk size the per-chunk CRCs were computed at, a CRC over the whole
// encoded image (used to group replicas serving byte-identical copies),
// and one CRC-32 per chunk so each pulled chunk validates independently
// and only damaged chunks are re-fetched.
type CkptManifest struct {
	Present   bool
	Seq       uint64
	Size      uint64
	ChunkSize uint32
	ImageCRC  uint32
	ChunkCRCs []uint32
}

// Chunks returns the number of chunks the manifest describes.
func (m CkptManifest) Chunks() int { return len(m.ChunkCRCs) }

// EncodeCkptManifest serializes a manifest reply.
func EncodeCkptManifest(m CkptManifest) []byte {
	out := make([]byte, 1+8+8+4+4+4+4*len(m.ChunkCRCs))
	if m.Present {
		out[0] = 1
	}
	binary.BigEndian.PutUint64(out[1:9], m.Seq)
	binary.BigEndian.PutUint64(out[9:17], m.Size)
	binary.BigEndian.PutUint32(out[17:21], m.ChunkSize)
	binary.BigEndian.PutUint32(out[21:25], m.ImageCRC)
	binary.BigEndian.PutUint32(out[25:29], uint32(len(m.ChunkCRCs)))
	off := 29
	for _, c := range m.ChunkCRCs {
		binary.BigEndian.PutUint32(out[off:], c)
		off += 4
	}
	return out
}

// DecodeCkptManifest parses a manifest reply.
func DecodeCkptManifest(data []byte) (CkptManifest, error) {
	if len(data) < 29 {
		return CkptManifest{}, fmt.Errorf("wire: manifest of %d bytes too short", len(data))
	}
	m := CkptManifest{
		Present:   data[0] == 1,
		Seq:       binary.BigEndian.Uint64(data[1:9]),
		Size:      binary.BigEndian.Uint64(data[9:17]),
		ChunkSize: binary.BigEndian.Uint32(data[17:21]),
		ImageCRC:  binary.BigEndian.Uint32(data[21:25]),
	}
	n := int(binary.BigEndian.Uint32(data[25:29]))
	if len(data) != 29+4*n {
		return CkptManifest{}, fmt.Errorf("wire: manifest of %d bytes does not hold %d chunk CRCs", len(data), n)
	}
	if m.Present {
		if n == 0 || m.ChunkSize == 0 || uint64(n-1)*uint64(m.ChunkSize) >= m.Size || uint64(n)*uint64(m.ChunkSize) < m.Size {
			return CkptManifest{}, fmt.Errorf("wire: manifest geometry %d chunks × %d bytes cannot cover %d", n, m.ChunkSize, m.Size)
		}
	}
	m.ChunkCRCs = make([]uint32, n)
	off := 29
	for i := range m.ChunkCRCs {
		m.ChunkCRCs[i] = binary.BigEndian.Uint32(data[off:])
		off += 4
	}
	return m, nil
}
