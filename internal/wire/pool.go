package wire

import (
	"math/bits"
	"sync"
)

// Framing-buffer pool for the protocol hot path. A sender encodes each
// frame into a GetBuf buffer with an Append* codec; the receiver, once
// it has decoded (copied out) everything it needs, hands the frame's
// bytes back with PutBuf. Ownership follows the frame: a buffer must be
// recycled by whoever holds the frame last, exactly once, and only when
// nothing decoded from it aliases it (DecodePayload bodies alias their
// frame, so payload frames are never recycled; event batches are copied
// by the decoder, so KEventLog frames are).
//
// Buffers live in size-class buckets (powers of two from 64 bytes to
// 64 KiB; larger requests are served by plain make and never pooled).
// Each bucket pairs a pool of filled buffers with a pool of their empty
// *[]byte boxes, so neither GetBuf nor PutBuf allocates in steady state
// — a plain sync.Pool of slices would box the slice header on every Put.

const (
	minBufBits = 6  // smallest class: 64 B, below which pooling is noise
	maxBufBits = 16 // largest class: 64 KiB
	numBuckets = maxBufBits - minBufBits + 1
)

type bufBucket struct {
	bufs  sync.Pool // *[]byte boxes holding a zero-length buffer of the class's capacity
	boxes sync.Pool // empty *[]byte boxes, recycled so Put never allocates a header
}

var bufBuckets [numBuckets]bufBucket

// GetBuf returns a zero-length buffer with capacity at least n, drawn
// from the pool when a suitable buffer was recycled. Append into it with
// the wire Append* functions and either send it (transferring ownership
// with the frame) or PutBuf it back.
func GetBuf(n int) []byte {
	if n > 1<<maxBufBits {
		return make([]byte, 0, n)
	}
	i := 0
	if n > 1<<minBufBits {
		i = bits.Len(uint(n-1)) - minBufBits
	}
	b := &bufBuckets[i]
	if v := b.bufs.Get(); v != nil {
		box := v.(*[]byte)
		buf := *box
		*box = nil
		b.boxes.Put(box)
		return buf
	}
	return make([]byte, 0, 1<<(minBufBits+i))
}

// PutBuf recycles a buffer obtained from GetBuf (or any buffer whose
// bytes are provably dead). Buffers below the smallest class are
// dropped: chaos-truncated stubs and test-crafted frames are not worth
// keeping. Oversized buffers land in the largest bucket — a buffer only
// ever serves requests no larger than its own capacity.
func PutBuf(buf []byte) {
	c := cap(buf)
	if c < 1<<minBufBits {
		return
	}
	i := bits.Len(uint(c)) - 1 - minBufBits
	if i >= numBuckets {
		i = numBuckets - 1
	}
	b := &bufBuckets[i]
	var box *[]byte
	if v := b.boxes.Get(); v != nil {
		box = v.(*[]byte)
	} else {
		box = new([]byte)
	}
	*box = buf[:0]
	b.bufs.Put(box)
}
