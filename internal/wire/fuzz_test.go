package wire

import (
	"bytes"
	"reflect"
	"testing"

	"mpichv/internal/core"
)

// The fuzz targets feed arbitrary bytes to the frame decoders daemons
// apply to data straight off the (chaos-corruptible) fabric. The
// properties under test: no panic, no overread (the race/asan runtime
// would catch it), and decode∘encode is the identity on every frame
// the decoder accepts.

func FuzzDecodePayload(f *testing.F) {
	f.Add(EncodePayload(PayloadHeader{SenderClock: 1, DevKind: 7}, []byte("hello")))
	f.Add(EncodePayload(PayloadHeader{SenderClock: 99, PairSeq: 3, Span: 0xbeef}, []byte("traced")))
	f.Add(EncodePayload(PayloadHeader{}, nil))
	f.Add([]byte{0x80})
	// Frames carrying a piggybacked determinant block (flag 0x40), with
	// and without a span and a body, so the fuzzer starts from the
	// det-block decode path rather than having to discover the flag.
	f.Add(EncodePayload(PayloadHeader{SenderClock: 5, Dets: []core.Event{
		{Sender: 2, SenderClock: 9, RecvClock: 4, Seq: 1}}}, []byte("det")))
	f.Add(EncodePayload(PayloadHeader{SenderClock: 6, Span: 0xf00d, Dets: []core.Event{
		{Sender: 0, SenderClock: 1, RecvClock: 1, Probes: 2, Seq: 1},
		{Sender: 3, SenderClock: 1 << 33, RecvClock: 7, Seq: 2}}}, nil))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0x40, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, body, err := DecodePayload(data)
		if err != nil {
			return
		}
		enc := EncodePayload(h, body)
		h2, body2, err := DecodePayload(enc)
		if err != nil {
			t.Fatalf("re-encode of accepted frame rejected: %v", err)
		}
		if !reflect.DeepEqual(h2, h) || !bytes.Equal(body, body2) {
			t.Fatalf("round trip: %+v %q vs %+v %q", h, body, h2, body2)
		}
	})
}

func FuzzDecodeDetRelay(f *testing.F) {
	f.Add(AppendDetRelay(nil, 7, 3, []core.Event{{Sender: 1, SenderClock: 2, RecvClock: 3, Seq: 4}}))
	f.Add(AppendDetRelay(nil, 0, 0, nil))
	f.Add(AppendDetRelay(nil, 1<<40, 1023, []core.Event{{Sender: -1}, {Sender: 5, Probes: 9}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, origin, evs, err := DecodeDetRelay(data)
		if err != nil {
			return
		}
		seq2, origin2, evs2, err := DecodeDetRelay(AppendDetRelay(nil, seq, origin, evs))
		if err != nil {
			t.Fatalf("re-encode of accepted relay rejected: %v", err)
		}
		if seq2 != seq || origin2 != origin || len(evs2) != len(evs) ||
			(len(evs) > 0 && !reflect.DeepEqual(evs, evs2)) {
			t.Fatalf("round trip: (%d,%d,%+v) vs (%d,%d,%+v)", seq, origin, evs, seq2, origin2, evs2)
		}
	})
}

func FuzzDecodeEvents(f *testing.F) {
	f.Add(EncodeEvents(nil))
	f.Add(EncodeEvents([]core.Event{{Sender: 1, SenderClock: 2, RecvClock: 3, Probes: 4, Seq: 5}}))
	f.Add(EncodeEvents([]core.Event{{Sender: -1}, {Sender: 31, SenderClock: 1 << 40}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := DecodeEvents(data)
		if err != nil {
			return
		}
		got, err := DecodeEvents(EncodeEvents(evs))
		if err != nil {
			t.Fatalf("re-encode of accepted batch rejected: %v", err)
		}
		if len(evs) != len(got) || (len(evs) > 0 && !reflect.DeepEqual(evs, got)) {
			t.Fatalf("round trip: %+v vs %+v", evs, got)
		}
	})
}

func FuzzDecodeEventLog(f *testing.F) {
	f.Add(EncodeEventLog(7, []core.Event{{Sender: 1, SenderClock: 2, RecvClock: 3}}))
	f.Add(EncodeEventLog(0, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, evs, err := DecodeEventLog(data)
		if err != nil {
			return
		}
		seq2, evs2, err := DecodeEventLog(EncodeEventLog(seq, evs))
		if err != nil || seq2 != seq || len(evs2) != len(evs) {
			t.Fatalf("round trip: (%d,%d ev) vs (%d,%d ev), %v", seq, len(evs), seq2, len(evs2), err)
		}
	})
}

func FuzzDecodeEventAck(f *testing.F) {
	f.Add(EncodeEventAck(1, 2))
	f.Add(EncodeEventAck(0, 0))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, cum, err := DecodeEventAck(data)
		if err != nil {
			return
		}
		seq2, cum2, err := DecodeEventAck(EncodeEventAck(seq, cum))
		if err != nil || seq2 != seq || cum2 != cum {
			t.Fatalf("round trip: (%d,%d) vs (%d,%d), %v", seq, cum, seq2, cum2, err)
		}
	})
}

func FuzzDecodeCkptChunk(f *testing.F) {
	f.Add(AppendCkptChunk(nil, 3, 0, 2, []byte("first half")))
	f.Add(AppendCkptChunk(nil, 9, 1, 2, nil))
	f.Add([]byte("CKC?garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, idx, count, body, err := DecodeCkptChunk(data)
		if err != nil {
			return
		}
		if idx >= count {
			t.Fatalf("accepted chunk %d outside count %d", idx, count)
		}
		seq2, idx2, count2, body2, err := DecodeCkptChunk(AppendCkptChunk(nil, seq, idx, count, body))
		if err != nil || seq2 != seq || idx2 != idx || count2 != count || !bytes.Equal(body, body2) {
			t.Fatalf("round trip: (%d,%d,%d,%q) vs (%d,%d,%d,%q), %v",
				seq, idx, count, body, seq2, idx2, count2, body2, err)
		}
	})
}

func FuzzDecodeCkptManifest(f *testing.F) {
	f.Add(EncodeCkptManifest(CkptManifest{Present: true, Seq: 2, Size: 100, ChunkSize: 64, ImageCRC: 7, ChunkCRCs: []uint32{1, 2}}))
	f.Add(EncodeCkptManifest(CkptManifest{}))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeCkptManifest(data)
		if err != nil {
			return
		}
		if m.Present {
			// The accepted geometry must actually cover Size.
			if n := uint64(m.Chunks()); n*uint64(m.ChunkSize) < m.Size {
				t.Fatalf("accepted manifest %d×%d cannot cover %d", n, m.ChunkSize, m.Size)
			}
		}
		m2, err := DecodeCkptManifest(EncodeCkptManifest(m))
		if err != nil || !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip: %+v vs %+v, %v", m, m2, err)
		}
	})
}
