package wire

import (
	"encoding/binary"
	"fmt"
)

// Channel Memory encodings for the MPICH-V1 baseline (§3.2): every
// message is stored and ordered on the receiver's Channel Memory; the
// receiver requests messages from it.

// CMGetBlock and CMGetProbe select the behaviour of a KCMGet request.
const (
	CMGetBlock uint8 = 0 // hold the request until a message is available
	CMGetProbe uint8 = 1 // answer immediately with presence information
)

// EncodeCMPut frames a message for storage: final destination plus the
// payload (the original sender travels in the transport frame).
func EncodeCMPut(dest int, data []byte) []byte {
	out := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(out, uint32(int32(dest)))
	copy(out[4:], data)
	return out
}

// DecodeCMPut splits a KCMPut payload; data aliases the input.
func DecodeCMPut(b []byte) (dest int, data []byte, err error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("wire: cm-put frame too short")
	}
	return int(int32(binary.BigEndian.Uint32(b))), b[4:], nil
}

// EncodeCMMsg frames a Channel Memory delivery (or a negative probe
// answer when present is false).
func EncodeCMMsg(present bool, origFrom int, data []byte) []byte {
	out := make([]byte, 5+len(data))
	if present {
		out[0] = 1
	}
	binary.BigEndian.PutUint32(out[1:], uint32(int32(origFrom)))
	copy(out[5:], data)
	return out
}

// DecodeCMMsg splits a KCMMsg payload; data aliases the input.
func DecodeCMMsg(b []byte) (present bool, origFrom int, data []byte, err error) {
	if len(b) < 5 {
		return false, 0, nil, fmt.Errorf("wire: cm-msg frame too short")
	}
	return b[0] == 1, int(int32(binary.BigEndian.Uint32(b[1:]))), b[5:], nil
}
