// Package netsim models the paper's experimental network: a 48-port
// 100 Mbit/s Ethernet switch connecting 32 Athlon computing nodes and 12
// slower dual-PIII auxiliary machines (SC'03 paper, §5). The model is
// deliberately simple — a fixed per-message one-way cost plus a
// bandwidth-paced link resource per direction — because the experiments
// measure protocol-induced differences (message counts, synchronisation,
// payload routing), not wire physics. Constants are calibrated against
// the paper's own MPICH-P4 measurements; see Params2003.
package netsim

import (
	"time"

	"mpichv/internal/vtime"
)

// Class describes the fixed per-message cost class of a destination.
type Class int

const (
	// ClassCompute is a message between computing nodes (payloads,
	// rendezvous control, restart control).
	ClassCompute Class = iota
	// ClassService is a message to or from an auxiliary service node
	// (event logger, checkpoint server, scheduler, dispatcher). The
	// paper's auxiliary machines are slower dual-PIII boxes, so the
	// per-message cost is a little higher.
	ClassService
)

// Params calibrates the network model. All constants trace back to
// numbers reported in the paper.
type Params struct {
	// ComputeOverhead is the fixed one-way cost of a TCP message
	// between computing nodes. Paper figure 6: MPICH-P4 0-byte
	// one-way latency is 77 µs.
	ComputeOverhead time.Duration
	// ServiceOverhead is the fixed one-way cost of a message to/from a
	// service node. Calibrated together with ELService so that a V2
	// 0-byte send — one payload message plus a blocking event-log
	// round trip — costs 237 µs (paper §5.1):
	// 5 + 77 + 5 + 55 + 40 + 55 = 237.
	ServiceOverhead time.Duration
	// ELService is the event logger's per-event processing time. The
	// paper's auxiliary machines are dual PIII-500 boxes serving every
	// computing node, so simultaneous reception events (collective
	// bursts) queue behind each other — a big part of V2's penalty on
	// latency-bound kernels like CG and MG.
	ELService time.Duration
	// UnixOverhead is the cost of one crossing of the Unix socket
	// between an MPI process and its communication daemon (§4.4).
	UnixOverhead time.Duration
	// Bandwidth is the per-direction link bandwidth in bytes/second.
	// Paper figure 5: P4 peaks at 11.3 MB/s on 100 Mb/s Ethernet.
	Bandwidth float64
	// HalfDuplexPairs makes the two directions of a node pair share a
	// single link resource. This models the P4 driver, which does not
	// service incoming traffic while a blocking send loop runs, so
	// simultaneous transfers between a pair serialize (§5.2, Fig 9
	// discussion). V2's daemon polls for receptions after every chunk
	// and therefore keeps both directions busy (full duplex).
	HalfDuplexPairs bool
	// HalfDuplexMinBytes exempts small messages from pair
	// serialization: they are absorbed by the 2003-era ~64 KB socket
	// buffers without stalling the peer's send loop, which is why P4
	// still wins the figure 9 pattern at small sizes.
	HalfDuplexMinBytes int
	// UnixCopyPerByte is the per-byte cost of moving an eager payload
	// across the MPI-process↔daemon Unix socket (one copy each way).
	// Large rendezvous transfers pipeline through the daemon and do
	// not pay it; eager messages are store-and-forwarded. This is the
	// daemon-architecture tax that P4's in-process driver avoids, and
	// a large part of V2's penalty on kernels dominated by mid-size
	// eager messages (CG, MG).
	UnixCopyPerByte time.Duration
	// LogCopyPerByte is the sender-based logging penalty per payload
	// byte (copying into the SAVED log). Calibrated so the V2
	// ping-pong asymptote is 10.7 MB/s versus P4's 11.3 (figure 5):
	// 1/10.7e6 − 1/11.3e6 ≈ 5 ns/byte.
	LogCopyPerByte time.Duration
	// LogMemLimit is the in-memory budget for logged payloads per
	// node; beyond it the log spills to IDE disk (paper: 1 GB memory
	// + 1 GB swap; LU's poor performance is attributed to this).
	LogMemLimit int64
	// DiskCopyPerByte is the extra per-byte cost once the log spills
	// to disk (~15 MB/s 2003 IDE disk ≈ 67 ns/byte).
	DiskCopyPerByte time.Duration
	// LogHardLimit is the absolute message-log capacity per node
	// (paper: 2 GB = 1 GB memory + 1 GB disk; FT class B exceeds it).
	LogHardLimit int64
	// EagerLimit is the largest payload sent eagerly; above it the
	// MPI layer uses the rendezvous protocol (figure 10 shows the
	// protocol switch between 64 KB and 128 KB).
	EagerLimit int
	// FlopRate is the sustained compute rate used to convert kernel
	// flop counts into virtual compute time (Athlon XP 1800+ running
	// NPB-class Fortran ≈ 2×10⁸ flop/s sustained).
	FlopRate float64
}

// Params2003 returns the model calibrated to the paper's testbed.
func Params2003() Params {
	return Params{
		ComputeOverhead:    77 * time.Microsecond,
		HalfDuplexMinBytes: 8 << 10,
		ServiceOverhead:    55 * time.Microsecond,
		ELService:          40 * time.Microsecond,
		UnixOverhead:       5 * time.Microsecond,
		UnixCopyPerByte:    15 * time.Nanosecond,
		Bandwidth:          11.3e6,
		LogCopyPerByte:     5 * time.Nanosecond,
		LogMemLimit:        1 << 30,
		DiskCopyPerByte:    67 * time.Nanosecond,
		LogHardLimit:       2 << 30,
		EagerLimit:         64 << 10,
		FlopRate:           2e8,
	}
}

// Network tracks link occupancy and computes delivery delays. It must
// only be used from simulator actors (the token discipline makes method
// calls race-free without locking).
type Network struct {
	clock vtime.Clock
	p     Params
	res   map[linkKey]*resource

	// Stats
	Messages int64
	Bytes    int64
}

type linkKey struct{ a, b int }

type resource struct{ freeAt time.Duration }

// New returns a network model using clock for the current virtual time.
func New(clock vtime.Clock, p Params) *Network {
	return &Network{clock: clock, p: p, res: make(map[linkKey]*resource)}
}

// Params returns the calibration in use.
func (n *Network) Params() Params { return n.p }

func (n *Network) link(from, to, bytes int) *resource {
	k := linkKey{from, to}
	if n.p.HalfDuplexPairs && from > to && bytes >= n.p.HalfDuplexMinBytes {
		k = linkKey{to, from}
	}
	r := n.res[k]
	if r == nil {
		r = &resource{}
		n.res[k] = r
	}
	return r
}

// Delay reserves link capacity for a message of the given payload size
// and returns how long after "now" it arrives at the destination.
func (n *Network) Delay(from, to int, bytes int, class Class) time.Duration {
	n.Messages++
	n.Bytes += int64(bytes)
	now := n.clock.Now()
	overhead := n.p.ComputeOverhead
	if class == ClassService {
		overhead = n.p.ServiceOverhead
	}
	if from == to {
		// Loopback: no wire, just the software overhead.
		return overhead / 4
	}
	tx := time.Duration(float64(bytes) / n.p.Bandwidth * float64(time.Second))
	r := n.link(from, to, bytes)
	start := now
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + tx
	return r.freeAt + overhead - now
}
