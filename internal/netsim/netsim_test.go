package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"mpichv/internal/vtime"
)

func TestZeroByteDelayIsOverhead(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		n := New(s, Params2003())
		if d := n.Delay(0, 1, 0, ClassCompute); d != 77*time.Microsecond {
			t.Errorf("compute 0-byte delay = %v, want 77µs", d)
		}
		if d := n.Delay(0, 9, 0, ClassService); d != 55*time.Microsecond {
			t.Errorf("service 0-byte delay = %v, want 55µs", d)
		}
	})
}

func TestBandwidthPacing(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		p := Params2003()
		n := New(s, p)
		const sz = 1 << 20
		d1 := n.Delay(0, 1, sz, ClassCompute)
		d2 := n.Delay(0, 1, sz, ClassCompute)
		tx := time.Duration(float64(sz) / p.Bandwidth * float64(time.Second))
		if want := tx + p.ComputeOverhead; d1 != want {
			t.Errorf("first delay = %v, want %v", d1, want)
		}
		// Second message queues behind the first on the same direction.
		if want := 2*tx + p.ComputeOverhead; d2 != want {
			t.Errorf("second delay = %v, want %v", d2, want)
		}
	})
}

func TestFullDuplexDirectionsIndependent(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		p := Params2003()
		n := New(s, p)
		const sz = 1 << 20
		d1 := n.Delay(0, 1, sz, ClassCompute)
		d2 := n.Delay(1, 0, sz, ClassCompute)
		if d1 != d2 {
			t.Errorf("opposite directions interfere: %v vs %v", d1, d2)
		}
	})
}

func TestHalfDuplexPairShared(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		p := Params2003()
		p.HalfDuplexPairs = true
		n := New(s, p)
		const sz = 1 << 20
		d1 := n.Delay(0, 1, sz, ClassCompute)
		d2 := n.Delay(1, 0, sz, ClassCompute)
		if d2 <= d1 {
			t.Errorf("half-duplex reverse direction did not queue: %v vs %v", d1, d2)
		}
	})
}

func TestLinkDrainsOverTime(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		p := Params2003()
		n := New(s, p)
		const sz = 1 << 20
		n.Delay(0, 1, sz, ClassCompute)
		s.Sleep(10 * time.Second) // link long since idle
		d := n.Delay(0, 1, sz, ClassCompute)
		tx := time.Duration(float64(sz) / p.Bandwidth * float64(time.Second))
		if want := tx + p.ComputeOverhead; d != want {
			t.Errorf("delay after idle = %v, want %v", d, want)
		}
	})
}

func TestLoopbackCheap(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		n := New(s, Params2003())
		if d := n.Delay(3, 3, 1<<20, ClassCompute); d >= 77*time.Microsecond {
			t.Errorf("loopback delay %v should be below one message overhead", d)
		}
	})
}

// Property: delay is always positive and monotone in message size for a
// fresh link.
func TestPropertyDelayMonotoneInSize(t *testing.T) {
	f := func(a, b uint16) bool {
		s := vtime.NewSim()
		ok := true
		s.Run(func() {
			small, big := int(a), int(a)+int(b)+1
			n1 := New(s, Params2003())
			d1 := n1.Delay(0, 1, small, ClassCompute)
			n2 := New(s, Params2003())
			d2 := n2.Delay(0, 1, big, ClassCompute)
			ok = d1 > 0 && d2 >= d1
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		n := New(s, Params2003())
		n.Delay(0, 1, 100, ClassCompute)
		n.Delay(1, 2, 200, ClassService)
		if n.Messages != 2 || n.Bytes != 300 {
			t.Errorf("stats = (%d msgs, %d bytes), want (2, 300)", n.Messages, n.Bytes)
		}
	})
}

func TestHalfDuplexSmallMessagesExempt(t *testing.T) {
	// Small messages ride the socket buffers: no pair serialization
	// below HalfDuplexMinBytes.
	s := vtime.NewSim()
	s.Run(func() {
		p := Params2003()
		p.HalfDuplexPairs = true
		n := New(s, p)
		small := p.HalfDuplexMinBytes - 1
		d1 := n.Delay(0, 1, small, ClassCompute)
		d2 := n.Delay(1, 0, small, ClassCompute)
		if d1 != d2 {
			t.Errorf("small messages serialized: %v vs %v", d1, d2)
		}
		big := p.HalfDuplexMinBytes
		b1 := n.Delay(0, 1, big, ClassCompute)
		b2 := n.Delay(1, 0, big, ClassCompute)
		if b2 <= b1 {
			t.Errorf("large messages not serialized: %v vs %v", b1, b2)
		}
	})
}

func TestParamsAccessor(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		p := Params2003()
		n := New(s, p)
		if n.Params().Bandwidth != p.Bandwidth {
			t.Error("Params() does not round-trip")
		}
	})
}
