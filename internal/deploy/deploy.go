// Package deploy runs an MPICH-V2 system as real OS processes over TCP:
// the paper's deployment mode (§4.7). A program file — the equivalent
// of MPICH's P4PGFILE — lists every machine with its role (computing
// node, event logger, checkpoint server, checkpoint scheduler) and
// address. cmd/vrun plays the dispatcher: it launches the workers,
// watches them ("a socket disconnection is considered as a trusty fault
// detector" — here, a worker process exiting before it finished), and
// re-launches crashed computing nodes with the recovery flag.
package deploy

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"mpichv/internal/mpi"
)

// Role is a node's function in the system.
type Role string

// The four roles of a program file.
const (
	RoleCN    Role = "cn"
	RoleEL    Role = "el"
	RoleCS    Role = "cs"
	RoleSched Role = "sc"
)

// Node ids per role (computing nodes use their rank). Service roles may
// be replicated: the i-th node of a role gets the role's base id plus i,
// so every replica has a distinct id and address-map entry. Computing
// nodes therefore must number below ELID, and a role's replica count is
// bounded by the gap to the next base (and by the daemon's 64-bit
// quorum ack masks).
const (
	ELID    = 1000 // event-logger replicas: ELID, ELID+1, ...
	CSID    = 1100 // checkpoint-server replicas: CSID, CSID+1, ...
	SchedID = 1200 // checkpoint scheduler (single)

	// MaxReplicas caps a service role's replica group: the daemon
	// tracks quorum acks in a 64-bit mask.
	MaxReplicas = 64
)

// Node is one line of the program file.
type Node struct {
	ID   int
	Role Role
	// Addr is the advertised address peers dial.
	Addr string
	// Bind, when non-empty, is the address the node actually listens
	// on. The split exists for fault injection: a ChaosProxy owns the
	// advertised address and forwards to the bind address, so every
	// inbound byte crosses the injector. Empty means listen on Addr.
	Bind string
}

// Program is a parsed program file.
type Program struct {
	Nodes []Node
}

// Parse reads a program file: one "role address [bind]" line per node,
// '#' comments allowed. Computing nodes get ranks in order of
// appearance; service nodes get their fixed ids. The optional third
// field is a listen address differing from the advertised one (see
// Node.Bind — the proxy-interposition hook).
func Parse(r io.Reader) (*Program, error) {
	p := &Program{}
	sc := bufio.NewScanner(r)
	rank := 0
	els, css, scs := 0, 0, 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("deploy: line %d: want \"role address [bind]\", got %q", line, text)
		}
		n := Node{Role: Role(fields[0]), Addr: fields[1]}
		if len(fields) == 3 {
			n.Bind = fields[2]
		}
		switch n.Role {
		case RoleCN:
			if rank >= ELID {
				return nil, fmt.Errorf("deploy: line %d: more than %d computing nodes", line, ELID)
			}
			n.ID = rank
			rank++
		case RoleEL:
			if els >= MaxReplicas {
				return nil, fmt.Errorf("deploy: line %d: more than %d event-logger replicas", line, MaxReplicas)
			}
			n.ID = ELID + els
			els++
		case RoleCS:
			if css >= MaxReplicas {
				return nil, fmt.Errorf("deploy: line %d: more than %d checkpoint-server replicas", line, MaxReplicas)
			}
			n.ID = CSID + css
			css++
		case RoleSched:
			if scs > 0 {
				return nil, fmt.Errorf("deploy: line %d: more than one checkpoint scheduler", line)
			}
			n.ID = SchedID
			scs++
		default:
			return nil, fmt.Errorf("deploy: line %d: unknown role %q", line, fields[0])
		}
		p.Nodes = append(p.Nodes, n)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(p.CNs()) == 0 {
		return nil, fmt.Errorf("deploy: program file has no computing nodes")
	}
	if _, ok := p.Find(RoleEL); !ok {
		return nil, fmt.Errorf("deploy: program file has no event logger")
	}
	return p, nil
}

// ParseFile parses the program file at path.
func ParseFile(path string) (*Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// CNs returns the computing nodes in rank order.
func (p *Program) CNs() []Node {
	var out []Node
	for _, n := range p.Nodes {
		if n.Role == RoleCN {
			out = append(out, n)
		}
	}
	return out
}

// Find returns the first node with the given role.
func (p *Program) Find(role Role) (Node, bool) {
	for _, n := range p.Nodes {
		if n.Role == role {
			return n, true
		}
	}
	return Node{}, false
}

// OfRole returns every node with the given role, in program-file order
// (for service roles that is replica-id order).
func (p *Program) OfRole(role Role) []Node {
	var out []Node
	for _, n := range p.Nodes {
		if n.Role == role {
			out = append(out, n)
		}
	}
	return out
}

// IDsOfRole returns the node ids of a role, in replica order.
func (p *Program) IDsOfRole(role Role) []int {
	var out []int
	for _, n := range p.Nodes {
		if n.Role == role {
			out = append(out, n.ID)
		}
	}
	return out
}

// RoleOf maps a node id back to its role ("" when the id is not in the
// program).
func (p *Program) RoleOf(id int) Role {
	for _, n := range p.Nodes {
		if n.ID == id {
			return n.Role
		}
	}
	return ""
}

// AddrMap returns the id → address map for the TCP fabric.
func (p *Program) AddrMap() map[int]string {
	m := make(map[int]string, len(p.Nodes))
	for _, n := range p.Nodes {
		m[n.ID] = n.Addr
	}
	return m
}

// DoneMarker is printed by a computing-node worker when its MPI program
// finalized; the launcher uses it to distinguish completion from a
// crash.
const DoneMarker = "VRUN-RANK-DONE"

// App is a runnable MPI program.
type App func(p *mpi.Proc)

// Serve runs one node of the program in this process. Computing nodes
// run the app, print DoneMarker, and then keep serving (their message
// logs may be needed by recovering peers) until the launcher kills
// them. Service nodes serve forever. Serve is the legacy entry point;
// it is ServeWith with every fault-injection knob off.
func Serve(pg *Program, id int, app App, restarted bool, out io.Writer) error {
	return ServeWith(ServeOpts{
		Program:   pg,
		ID:        id,
		App:       app,
		Restarted: restarted,
		Out:       out,
	})
}

// Launcher spawns and supervises the worker processes of one run.
type Launcher struct {
	Program  string // program file path
	AppName  string
	Exe      string    // worker executable (usually os.Executable())
	Stdout   io.Writer // launcher log
	MaxSpawn int       // restart budget per rank (default 10)
}

type workerExit struct {
	rank int
	done bool
	err  error
}

// Run launches the system and blocks until every rank completed. Killed
// computing nodes (e.g. kill -9 from another terminal) are re-launched
// with the recovery flag, exactly like the paper's execution monitor.
func (l *Launcher) Run() error {
	pg, err := ParseFile(l.Program)
	if err != nil {
		return err
	}
	if l.Stdout == nil {
		l.Stdout = os.Stdout
	}
	if l.MaxSpawn <= 0 {
		l.MaxSpawn = 10
	}

	var mu sync.Mutex
	var services []*exec.Cmd
	stopping := false
	defer func() {
		mu.Lock()
		stopping = true
		for _, c := range services {
			if c.Process != nil {
				c.Process.Kill()
			}
		}
		mu.Unlock()
	}()

	// Services are supervised like computing nodes: an event logger,
	// checkpoint server or scheduler that dies mid-run is re-launched
	// with the recovery flag (it reloads its WAL and, for replicated
	// roles, resyncs from its surviving peers) under the same restart
	// budget. The paper assumes these nodes are reliable; the launcher
	// no longer does.
	svcSpawns := make(map[int]int)
	var spawnService func(n Node, restarted bool) error
	spawnService = func(n Node, restarted bool) error {
		mu.Lock()
		if stopping {
			mu.Unlock()
			return nil
		}
		svcSpawns[n.ID]++
		if svcSpawns[n.ID] > l.MaxSpawn {
			mu.Unlock()
			return fmt.Errorf("deploy: service %s %d exceeded %d restarts", n.Role, n.ID, l.MaxSpawn)
		}
		mu.Unlock()
		args := []string{"-pg", l.Program, "-serve", fmt.Sprint(n.ID), "-app", l.AppName}
		if restarted {
			args = append(args, "-restarted")
		}
		cmd := exec.Command(l.Exe, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		mu.Lock()
		services = append(services, cmd)
		mu.Unlock()
		go func() {
			err := cmd.Wait()
			mu.Lock()
			dead := stopping
			mu.Unlock()
			if dead {
				return
			}
			fmt.Fprintf(l.Stdout, "vrun: %s %d died (%v); re-launching with recovery\n", n.Role, n.ID, err)
			time.Sleep(200 * time.Millisecond) // port release
			if err := spawnService(n, true); err != nil {
				fmt.Fprintf(l.Stdout, "vrun: %v\n", err)
			}
		}()
		return nil
	}
	for _, n := range pg.Nodes {
		if n.Role != RoleCN {
			fmt.Fprintf(l.Stdout, "vrun: starting %s on %s\n", n.Role, n.Addr)
			if err := spawnService(n, false); err != nil {
				return err
			}
		}
	}
	time.Sleep(300 * time.Millisecond) // let the services bind

	exits := make(chan workerExit, len(pg.CNs())*l.MaxSpawn)
	spawnCN := func(rank int, restarted bool) (*exec.Cmd, error) {
		args := []string{"-pg", l.Program, "-serve", fmt.Sprint(rank), "-app", l.AppName}
		if restarted {
			args = append(args, "-restarted")
		}
		cmd := exec.Command(l.Exe, args...)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		go func() {
			done := false
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				line := sc.Text()
				if line == DoneMarker {
					done = true
					exits <- workerExit{rank: rank, done: true}
				} else {
					fmt.Fprintf(l.Stdout, "[rank %d] %s\n", rank, line)
				}
			}
			err := cmd.Wait()
			if !done {
				exits <- workerExit{rank: rank, err: err}
			}
		}()
		mu.Lock()
		services = append(services, cmd)
		mu.Unlock()
		return cmd, nil
	}

	spawns := make(map[int]int)
	for _, n := range pg.CNs() {
		fmt.Fprintf(l.Stdout, "vrun: starting rank %d on %s\n", n.ID, n.Addr)
		spawns[n.ID]++
		if _, err := spawnCN(n.ID, false); err != nil {
			return err
		}
	}

	finished := make(map[int]bool)
	for len(finished) < len(pg.CNs()) {
		ex := <-exits
		switch {
		case ex.done:
			if !finished[ex.rank] {
				finished[ex.rank] = true
				fmt.Fprintf(l.Stdout, "vrun: rank %d finalized (%d/%d)\n", ex.rank, len(finished), len(pg.CNs()))
			}
		case finished[ex.rank]:
			// A finalized worker died. Its MPI program is done, but
			// its daemon still holds the SAVED payload log that
			// recovering peers may need — re-launch it with the
			// recovery flag (it replays to completion and resumes
			// serving).
			fmt.Fprintf(l.Stdout, "vrun: finalized rank %d died; re-launching its daemon\n", ex.rank)
			spawns[ex.rank]++
			if spawns[ex.rank] > l.MaxSpawn {
				return fmt.Errorf("deploy: rank %d exceeded %d restarts", ex.rank, l.MaxSpawn)
			}
			time.Sleep(200 * time.Millisecond)
			if _, err := spawnCN(ex.rank, true); err != nil {
				return err
			}
		default:
			fmt.Fprintf(l.Stdout, "vrun: rank %d died (%v); re-launching with recovery\n", ex.rank, ex.err)
			spawns[ex.rank]++
			if spawns[ex.rank] > l.MaxSpawn {
				return fmt.Errorf("deploy: rank %d exceeded %d restarts", ex.rank, l.MaxSpawn)
			}
			time.Sleep(200 * time.Millisecond) // detection + port release
			if _, err := spawnCN(ex.rank, true); err != nil {
				return err
			}
		}
	}
	fmt.Fprintln(l.Stdout, "vrun: all ranks finalized; cleaning the execution pool")
	return nil
}
