package deploy

import (
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"mpichv/internal/daemon"
	"mpichv/internal/eventlog"
	"mpichv/internal/mpi"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
)

func TestParseProgramFile(t *testing.T) {
	src := `
# services
el 127.0.0.1:9000
cs 127.0.0.1:9001
sc 127.0.0.1:9002
# computing nodes
cn 127.0.0.1:9100
cn 127.0.0.1:9101
`
	pg, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.CNs()) != 2 {
		t.Fatalf("CNs = %d, want 2", len(pg.CNs()))
	}
	if pg.CNs()[0].ID != 0 || pg.CNs()[1].ID != 1 {
		t.Errorf("CN ranks = %v", pg.CNs())
	}
	if el, ok := pg.Find(RoleEL); !ok || el.ID != ELID {
		t.Errorf("EL = %+v ok=%v", el, ok)
	}
	m := pg.AddrMap()
	if m[0] != "127.0.0.1:9100" || m[ELID] != "127.0.0.1:9000" {
		t.Errorf("addr map = %v", m)
	}
}

func TestParseRejectsBadFiles(t *testing.T) {
	cases := []string{
		"cn 127.0.0.1:9100",               // no event logger
		"el 127.0.0.1:9000",               // no computing node
		"xx 127.0.0.1:9000\ncn a\nel b",   // unknown role
		"cn 127.0.0.1:9100 a b c\nel b",   // wrong field count
		"el a\nsc b\nsc c\ncn d",          // two schedulers
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("accepted bad program file %q", src)
		}
	}
}

// TestParseReplicaIDs: repeated el/cs lines form replica groups with
// consecutive ids off the role bases, the role helpers see them, and
// computing-node ranks stay below the service id space.
func TestParseReplicaIDs(t *testing.T) {
	src := `
el 127.0.0.1:9000
el 127.0.0.1:9001
el 127.0.0.1:9002
cs 127.0.0.1:9010
cs 127.0.0.1:9011
sc 127.0.0.1:9020
cn 127.0.0.1:9100
cn 127.0.0.1:9101
`
	pg, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	wantEL := []int{ELID, ELID + 1, ELID + 2}
	if got := pg.IDsOfRole(RoleEL); fmt.Sprint(got) != fmt.Sprint(wantEL) {
		t.Errorf("EL ids = %v, want %v", got, wantEL)
	}
	wantCS := []int{CSID, CSID + 1}
	if got := pg.IDsOfRole(RoleCS); fmt.Sprint(got) != fmt.Sprint(wantCS) {
		t.Errorf("CS ids = %v, want %v", got, wantCS)
	}
	if got := pg.IDsOfRole(RoleSched); len(got) != 1 || got[0] != SchedID {
		t.Errorf("scheduler ids = %v, want [%d]", got, SchedID)
	}
	for id, want := range map[int]Role{0: RoleCN, ELID + 2: RoleEL, CSID + 1: RoleCS, SchedID: RoleSched} {
		if got := pg.RoleOf(id); got != want {
			t.Errorf("RoleOf(%d) = %q, want %q", id, got, want)
		}
	}
	m := pg.AddrMap()
	if m[ELID+1] != "127.0.0.1:9001" || m[CSID+1] != "127.0.0.1:9011" {
		t.Errorf("replica addr map = %v", m)
	}
}

func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	out := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range out {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		out[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return out
}

// TestRealTCPSystem runs an event logger and three V2 computing nodes
// over real loopback TCP in one process, with a token ring application,
// and then kills and recovers one node — the full protocol on the real
// transport, no virtual time.
func TestRealTCPSystem(t *testing.T) {
	addrs := freeAddrs(t, 4)
	rt := vtime.NewReal()
	addrMap := map[int]string{ELID: addrs[0], 0: addrs[1], 1: addrs[2], 2: addrs[3]}
	fab := transport.NewTCPFabric(rt, addrMap)

	eventlog.NewServer(rt, fab.Attach(ELID, "event-logger"), 0).Start()

	const n, rounds = 3, 6
	finals := make(chan uint64, n*2)
	ring := func(p *mpi.Proc) {
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		buf := make([]byte, 8)
		var token uint64
		for r := 0; r < rounds; r++ {
			if p.Rank() == 0 {
				binary.BigEndian.PutUint64(buf, token+1)
				p.Send(right, 1, buf)
				b, _ := p.Recv(left, 1)
				token = binary.BigEndian.Uint64(b)
			} else {
				b, _ := p.Recv(left, 1)
				token = binary.BigEndian.Uint64(b) + 1
				binary.BigEndian.PutUint64(buf, token)
				p.Send(right, 1, buf)
				if p.Rank() == 1 {
					time.Sleep(5 * time.Millisecond) // slow the ring down
				}
			}
		}
		finals <- token
	}

	spawn := func(rank int, restarted bool) {
		cfg := daemon.Config{
			Rank: rank, Size: n,
			EventLogger: ELID, CkptServer: -1, Scheduler: -1, Dispatcher: -1,
			Restarted: restarted,
		}
		dev, _ := daemon.StartV2(rt, fab, cfg)
		rt.Go(fmt.Sprintf("rank%d", rank), func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(daemon.Killed); ok {
						return
					}
					panic(r)
				}
			}()
			p := mpi.Start(dev, rt, mpi.Options{})
			ring(p)
			p.Finalize()
		})
	}

	for r := 0; r < n; r++ {
		spawn(r, false)
	}

	// Let the ring make progress, then "crash" rank 2 and restart it.
	time.Sleep(30 * time.Millisecond)
	fab.Kill(2)
	time.Sleep(20 * time.Millisecond) // detection delay
	spawn(2, true)

	want := uint64(n * rounds)
	deadline := time.After(20 * time.Second)
	got := map[uint64]int{}
	for i := 0; i < n; i++ {
		select {
		case v := <-finals:
			got[v]++
		case <-deadline:
			t.Fatalf("timeout: only %d ranks finished (%v)", i, got)
		}
	}
	// Every rank's final token must be consistent with a fault-free
	// ring; rank 0 ends at exactly n*rounds.
	if got[want] == 0 {
		t.Errorf("no rank reached the final token %d: %v", want, got)
	}
}
