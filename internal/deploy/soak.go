package deploy

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/core"
	"mpichv/internal/trace"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// FreePorts reserves n distinct loopback addresses by briefly listening
// on ephemeral ports. All listeners are held open simultaneously, so
// the addresses are pairwise distinct; the usual reuse race is harmless
// on a loopback-only test box.
func FreePorts(n int) ([]string, error) {
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

// SoakConfig sizes one soak run: a real multi-process deployment over
// loopback TCP, every computing node fronted by a fault-injecting
// proxy, with a seeded schedule of process kills and freezes.
type SoakConfig struct {
	// Exe is the worker executable; it must call deploy.MaybeServe at
	// the top of main.
	Exe     string
	AppName string // default "soakring"
	CNs     int    // computing nodes (default 3)

	// Soak app sizing (exported to workers through the environment).
	Laps    int // laps per rank (default 20)
	HoldMS  int // per-rank token hold (default 25)
	Payload int // token payload bytes (default 256)

	// Seed drives the fault plan, the proxies' chaos variates, and the
	// disk-fault injector: one number reproduces the whole run.
	Seed uint64

	// Process fault schedule.
	Kills    int           // SIGKILLs (default 2)
	Stalls   int           // SIGSTOP freezes
	MinAfter time.Duration // earliest fault (default 2s)
	Over     time.Duration // fault window width (default 6s)
	StallFor time.Duration // freeze length (default 1s)

	// Proxy is the socket-level chaos applied to every CN's inbound
	// traffic. The zero value proxies bytes through unmodified.
	Proxy transport.ProxyPolicy

	// DiskFaultEvery arms torn-write injection on the EL/CS WALs.
	DiskFaultEvery int

	Heartbeat time.Duration // worker heartbeat cadence (default 100ms)
	Timeout   time.Duration // wall-clock safety limit (default 2m)
	MaxSpawn  int           // restart budget per node (default 10)
	Dir       string        // scratch dir (default: a fresh temp dir)
	Log       io.Writer     // driver log (default io.Discard)
}

// Recovery is one crash→recovery episode of a computing node.
type Recovery struct {
	ID           int   `json:"id"`
	Inc          uint64 `json:"incarnation"` // incarnation that died
	RespawnMS    int64 `json:"respawn_ms"`      // exit → replacement spawned
	BackToWorkMS int64 `json:"back_to_work_ms"` // exit → first lap of any later incarnation (-1: none)
}

// SoakReport is the JSON-serializable outcome of a soak run.
type SoakReport struct {
	Seed       uint64   `json:"seed"`
	OK         bool     `json:"ok"`
	Failures   []string `json:"failures,omitempty"`
	DurationMS int64    `json:"duration_ms"`

	CNs         int   `json:"cns"`
	LapsPerRank int   `json:"laps_per_rank"`
	LapsDone    int   `json:"laps_done"` // lap completions observed (all ranks)
	Goodput     []int `json:"goodput"`   // lap completions per 1s bucket

	Kills      int        `json:"kills"`
	Stalls     int        `json:"stalls"`
	Respawns   int        `json:"respawns"`
	Recoveries []Recovery `json:"recoveries,omitempty"`
	Plan       []string   `json:"plan,omitempty"` // human-readable fault schedule

	MidAudits      int    `json:"mid_audits"`       // post-recovery audit passes
	AuditEvents    int    `json:"audit_events"`     // determinants in the final audit
	AuditSummary   string `json:"audit"`            // final no-orphans verdict
	HBSummary      string `json:"hb_audit"`         // final happens-before verdict
	LeakGoroutines int    `json:"leak_goroutines"`  // residual goroutines after teardown

	TCP     TCPSample        `json:"tcp"`              // Σ last sample per (node, incarnation)
	Metrics map[string]int64 `json:"metrics,omitempty"` // proxy counters etc.
}

func (c *SoakConfig) defaults() {
	if c.AppName == "" {
		c.AppName = "soakring"
	}
	if c.CNs <= 0 {
		c.CNs = 3
	}
	if c.Laps <= 0 {
		c.Laps = 20
	}
	if c.HoldMS <= 0 {
		c.HoldMS = 25
	}
	if c.Payload <= 0 {
		c.Payload = 256
	}
	if c.Kills < 0 {
		c.Kills = 0
	}
	if c.MinAfter <= 0 {
		c.MinAfter = 2 * time.Second
	}
	if c.Over <= 0 {
		c.Over = 6 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 100 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.MaxSpawn <= 0 {
		c.MaxSpawn = 10
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
}

// fetchELEvents pulls the event logger's whole determinant store over a
// throwaway TCP endpoint (the EL itself is not proxied, so this read is
// chaos-free) and returns the per-rank delivery view.
func fetchELEvents(elAddr string, cns int, timeout time.Duration) ([][]core.Event, int, error) {
	const auditorID = 1900
	rt := vtime.NewReal()
	fab := transport.NewTCPFabric(rt, map[int]string{
		ELID:      elAddr,
		auditorID: "127.0.0.1:0",
	})
	ep := fab.Attach(auditorID, "soak-audit")
	defer ep.Close()

	frames := make(chan transport.Frame, 16)
	go func() {
		for {
			f, ok := ep.Inbox().Recv()
			if !ok {
				close(frames)
				return
			}
			frames <- f
		}
	}()

	req := wire.EncodeSyncMarks(map[int]uint64{})
	deadline := time.After(timeout)
	var m map[int][]core.Event
	for m == nil {
		ep.Send(ELID, wire.KELSyncReq, req)
		select {
		case f, ok := <-frames:
			if !ok {
				return nil, 0, fmt.Errorf("soak: audit endpoint closed")
			}
			if f.Kind != wire.KELSyncResp {
				continue
			}
			dec, err := wire.DecodeNodeEvents(f.Data)
			if err != nil {
				return nil, 0, fmt.Errorf("soak: bad sync response: %w", err)
			}
			m = dec
		case <-time.After(500 * time.Millisecond):
			// re-send the request
		case <-deadline:
			return nil, 0, fmt.Errorf("soak: event-logger fetch timed out after %v", timeout)
		}
	}

	dels := make([][]core.Event, cns)
	total := 0
	for node, evs := range m {
		if node < 0 || node >= cns {
			continue
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].RecvClock < evs[j].RecvClock })
		dels[node] = evs
		total += len(evs)
	}
	return dels, total, nil
}

// knownCommits maps the fetched determinants to trace span ids: a
// determinant in the EL *is* a durable commit, so it anchors replays
// whose local EvDetDurable record died with a crashed incarnation.
func knownCommits(dels [][]core.Event) map[uint64]bool {
	known := make(map[uint64]bool)
	for rank, evs := range dels {
		for _, ev := range evs {
			known[trace.PackSpan(rank, ev.RecvClock)] = true
		}
	}
	return known
}

// auditOnce runs both post-run checks — the no-orphans audit over the
// event logger's determinant store and the happens-before audit over
// the merged crash-surviving trace snapshots — and reports the verdicts.
func auditOnce(elAddr, traceDir string, cns int) (cluster.AuditReport, trace.HBReport, int, error) {
	dels, total, err := fetchELEvents(elAddr, cns, 5*time.Second)
	if err != nil {
		return cluster.AuditReport{}, trace.HBReport{}, 0, err
	}
	rep := cluster.Audit(cluster.Result{Deliveries: dels})
	tr, err := trace.BuildTrace(filepath.Join(traceDir, "trace-*.mvtr"))
	if err != nil {
		return rep, trace.HBReport{}, total, err
	}
	hb := trace.AuditHBWith(tr, trace.AuditHBOpts{
		KnownCommits: knownCommits(dels),
		CrashTail:    true,
	})
	return rep, hb, total, nil
}

// RunSoak deploys the program as real OS processes over loopback TCP —
// every computing node behind a fault-injecting proxy — executes the
// seeded kill/stall schedule, and audits the survivors: the same seed
// reproduces the same fault schedule and the same chaos variates.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	cfg.defaults()
	rep := &SoakReport{Seed: cfg.Seed, CNs: cfg.CNs, LapsPerRank: cfg.Laps}
	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}
	goroutinesBefore := runtime.NumGoroutine()

	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "mpichv-soak-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	traceDir := filepath.Join(dir, "trace")
	walDir := filepath.Join(dir, "wal")
	for _, d := range []string{traceDir, walDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}

	// Address plan: per CN an advertised (proxy front) and a bind
	// address, plus one each for EL, CS and the checkpoint scheduler.
	addrs, err := FreePorts(2*cfg.CNs + 3)
	if err != nil {
		return nil, err
	}
	elAddr, csAddr, scAddr := addrs[0], addrs[1], addrs[2]
	var pg strings.Builder
	fmt.Fprintf(&pg, "el %s\ncs %s\nsc %s\n", elAddr, csAddr, scAddr)
	for i := 0; i < cfg.CNs; i++ {
		fmt.Fprintf(&pg, "cn %s %s\n", addrs[3+2*i], addrs[3+2*i+1])
	}
	pgPath := filepath.Join(dir, "soak.pg")
	if err := os.WriteFile(pgPath, []byte(pg.String()), 0o644); err != nil {
		return nil, err
	}

	// The shared epoch: every worker's virtual clock and the proxies'
	// partition windows count from here.
	epoch := time.Now()
	rt := vtime.NewRealAt(epoch)

	// One chaos proxy per computing node, owning the advertised
	// address and forwarding to the bind address. Distinct sub-seeds
	// keep the proxies' variate streams independent but reproducible.
	proxies := make([]*transport.ChaosProxy, 0, cfg.CNs)
	defer func() {
		for _, px := range proxies {
			px.Close()
		}
	}()
	for i := 0; i < cfg.CNs; i++ {
		pol := cfg.Proxy
		pol.Seed = cfg.Seed + uint64(i)*0x9e3779b97f4a7c15
		px, err := transport.NewChaosProxy(rt, i, addrs[3+2*i], addrs[3+2*i+1], pol)
		if err != nil {
			return nil, fmt.Errorf("soak: proxy for rank %d: %w", i, err)
		}
		proxies = append(proxies, px)
	}

	sup, err := StartSupervisor(SupervisorConfig{
		ProgramPath: pgPath,
		Exe:         cfg.Exe,
		AppName:     cfg.AppName,
		Template: ServeOpts{
			Epoch:          epoch,
			TraceDir:       traceDir,
			WALDir:         walDir,
			DiskFaultEvery: cfg.DiskFaultEvery,
			DiskFaultSeed:  cfg.Seed,
			Heartbeat:      cfg.Heartbeat,
			ELHighWater:    512,
			PullTimeout:    250 * time.Millisecond,
		},
		MaxSpawn: cfg.MaxSpawn,
		ExtraEnv: []string{
			"MPICHV_SOAK_LAPS=" + strconv.Itoa(cfg.Laps),
			"MPICHV_SOAK_HOLD_MS=" + strconv.Itoa(cfg.HoldMS),
			"MPICHV_SOAK_PAYLOAD=" + strconv.Itoa(cfg.Payload),
		},
		Log: cfg.Log,
	})
	if err != nil {
		return nil, err
	}
	defer sup.Stop()
	start := time.Now()

	var targets []int
	for i := 0; i < cfg.CNs; i++ {
		targets = append(targets, i)
	}
	plan := PlanFaults(FaultPlanConfig{
		Seed:     cfg.Seed,
		Targets:  targets,
		Kills:    cfg.Kills,
		Stalls:   cfg.Stalls,
		MinAfter: cfg.MinAfter,
		Over:     cfg.Over,
		StallFor: cfg.StallFor,
	})
	for _, f := range plan {
		rep.Plan = append(rep.Plan, fmt.Sprintf("%s %d @%dms", f.Kind, f.Target, f.After.Milliseconds()))
	}
	stopInject := sup.Inject(plan)
	defer stopInject()

	// Wait for completion, re-running both audits after every observed
	// recovery (a respawn with incarnation > 0). Mid-run audits may see
	// transient holes while retransmissions drain, so each retries
	// until green; only never-converging audits count as failures. The
	// post-quiesce final audit below stays authoritative.
	audited := make(map[string]bool)
	timeout := time.After(cfg.Timeout)
	poll := time.NewTicker(time.Second)
	timedOut := false
waitLoop:
	for {
		select {
		case <-sup.Done():
			break waitLoop
		case <-timeout:
			timedOut = true
			fail("soak timed out after %v", cfg.Timeout)
			break waitLoop
		case <-poll.C:
			for _, ev := range sup.Events() {
				if ev.Kind != "spawn" || ev.Inc == 0 {
					continue
				}
				key := fmt.Sprintf("%d/%d", ev.ID, ev.Inc)
				if audited[key] {
					continue
				}
				audited[key] = true
				green := false
				var last string
				for attempt := 0; attempt < 10; attempt++ {
					a, hb, _, err := auditOnce(elAddr, traceDir, cfg.CNs)
					if err == nil && a.OK() && hb.OK() {
						green = true
						break
					}
					last = fmt.Sprintf("audit=%v hb=%v err=%v", a.Summary(), hb.Summary(), err)
					time.Sleep(300 * time.Millisecond)
				}
				rep.MidAudits++
				if !green {
					fail("post-recovery audit for node %s never converged: %s", key, last)
				}
			}
		}
	}
	poll.Stop()
	rep.DurationMS = time.Since(start).Milliseconds()
	stopInject()

	// Quiesce: let in-flight retransmissions and the last heartbeat
	// land, plus one trace-snapshot flush interval.
	time.Sleep(2*cfg.Heartbeat + 500*time.Millisecond)

	// Authoritative final audits.
	audit, hb, total, err := auditOnce(elAddr, traceDir, cfg.CNs)
	rep.AuditEvents = total
	if err != nil {
		fail("final audit: %v", err)
	} else {
		rep.AuditSummary = audit.Summary()
		rep.HBSummary = hb.Summary()
		if !audit.OK() {
			fail("no-orphans audit failed: %s", audit.Summary())
			for _, o := range audit.Orphans {
				fail("orphan: %s", o)
			}
		}
		if !hb.OK() {
			fail("happens-before audit failed: %s", hb.Summary())
		}
	}
	if err := sup.Err(); err != nil {
		fail("supervision: %v", err)
	}

	// Fold the supervision record into the report.
	events := sup.Events()
	laps := sup.Laps()
	rep.LapsDone = len(laps)
	for _, l := range laps {
		b := int(l.T.Sub(start) / time.Second)
		for len(rep.Goodput) <= b {
			rep.Goodput = append(rep.Goodput, 0)
		}
		rep.Goodput[b]++
	}
	for _, ev := range events {
		switch ev.Kind {
		case "kill":
			rep.Kills++
		case "stall":
			rep.Stalls++
		case "spawn":
			if ev.Inc > 0 {
				rep.Respawns++
			}
		}
	}
	for i, ev := range events {
		if ev.Kind != "exit" || ev.ID >= ELID {
			continue
		}
		r := Recovery{ID: ev.ID, Inc: ev.Inc, RespawnMS: -1, BackToWorkMS: -1}
		for _, later := range events[i+1:] {
			if later.ID == ev.ID && later.Kind == "spawn" {
				r.RespawnMS = later.T.Sub(ev.T).Milliseconds()
				break
			}
		}
		for _, l := range laps {
			if l.ID == ev.ID && l.T.After(ev.T) {
				r.BackToWorkMS = l.T.Sub(ev.T).Milliseconds()
				break
			}
		}
		rep.Recoveries = append(rep.Recoveries, r)
	}
	if !timedOut && cfg.Kills > 0 && rep.Kills < cfg.Kills {
		fail("only %d of %d planned kills fired", rep.Kills, cfg.Kills)
	}

	rep.TCP = sup.TCPTotals()
	reg := trace.NewRegistry()
	for _, px := range proxies {
		px.AddTo(reg)
	}
	rep.Metrics = reg.Snapshot().Counters

	// Teardown, then verify the driver leaked no goroutines: proxies,
	// supervisor loops and audit endpoints must all wind down.
	sup.Stop()
	for _, px := range proxies {
		px.Close()
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		rep.LeakGoroutines = runtime.NumGoroutine() - goroutinesBefore
		if rep.LeakGoroutines <= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if rep.LeakGoroutines > 5 {
		fail("driver leaked %d goroutines", rep.LeakGoroutines)
	}

	rep.OK = len(rep.Failures) == 0
	return rep, nil
}
