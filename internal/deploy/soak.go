package deploy

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/core"
	"mpichv/internal/trace"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// FreePorts reserves n distinct loopback addresses by briefly listening
// on ephemeral ports. All listeners are held open simultaneously, so
// the addresses are pairwise distinct; the usual reuse race is harmless
// on a loopback-only test box.
func FreePorts(n int) ([]string, error) {
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

// SoakConfig sizes one soak run: a real multi-process deployment over
// loopback TCP, every computing node (and, with ProxyServices, every
// service node) fronted by a fault-injecting proxy, with a seeded
// schedule of process kills and freezes aimed at a configurable
// kill-set of roles.
type SoakConfig struct {
	// Exe is the worker executable; it must call deploy.MaybeServe at
	// the top of main.
	Exe     string
	AppName string // default "soakring"
	CNs     int    // computing nodes (default 3)
	ELs     int    // event-logger replicas (default 1; >1 = write quorum of majority)
	CSs     int    // checkpoint-server replicas (default 1)

	// Soak app sizing (exported to workers through the environment).
	Laps    int // laps per rank (default 20)
	HoldMS  int // per-rank token hold (default 25)
	Payload int // token payload bytes (default 256)

	// Seed drives the fault plan, the proxies' chaos variates, and the
	// disk-fault injector: one number reproduces the whole run.
	Seed uint64

	// Process fault schedule.
	Kills    int           // SIGKILLs (default 2)
	Stalls   int           // SIGSTOP freezes
	MinAfter time.Duration // earliest fault (default 2s)
	Over     time.Duration // fault window width (default 6s)
	StallFor time.Duration // freeze length (default 1s)

	// KillRoles is the kill-set: the roles the seeded fault plan may
	// target (default computing nodes only, the pre-service-plane
	// behavior). Kills round-robin across the named roles, so with
	// Kills >= len(KillRoles) every role in the set loses at least one
	// node; stalls draw from the union. Roles with no nodes in the
	// program are skipped.
	KillRoles []Role

	// Proxy is the socket-level chaos applied to every CN's inbound
	// traffic. The zero value proxies bytes through unmodified.
	Proxy transport.ProxyPolicy
	// ProxyServices fronts the EL/CS/scheduler listeners with chaos
	// proxies too, so service links (determinant submissions, quorum
	// acks, anti-entropy resync, checkpoint chunks) cross the injector
	// — not just CN↔CN traffic. Audit reads bypass the proxies via the
	// bind addresses.
	ProxyServices bool

	// DiskFaultEvery arms torn-write injection on the EL/CS WALs.
	DiskFaultEvery int

	// DetMode selects the CN daemons' determinant-suppression policy
	// (daemon.DetOff / DetAdaptive / DetAggressive).
	DetMode int

	Heartbeat time.Duration // worker heartbeat cadence (default 100ms)
	Timeout   time.Duration // wall-clock safety limit (default 2m)
	MaxSpawn  int           // restart budget per node (default 10)
	Dir       string        // scratch dir (default: a fresh temp dir)
	Log       io.Writer     // driver log (default io.Discard)
}

// Recovery is one crash→recovery episode of a node, any role.
type Recovery struct {
	ID   int    `json:"id"`
	Role string `json:"role"`
	Inc  uint64 `json:"incarnation"` // incarnation that died
	// RespawnMS is exit → replacement spawned.
	RespawnMS int64 `json:"respawn_ms"`
	// BackToWorkMS is exit → first lap of any later incarnation
	// (computing nodes; -1 otherwise or when none followed).
	BackToWorkMS int64 `json:"back_to_work_ms"`
	// RejoinMS is the replica-outage window of a service node: exit →
	// rejoin marker of a later incarnation (WAL replayed and, for
	// replicated roles, anti-entropy resync complete). -1 for computing
	// nodes or when the window never closed.
	RejoinMS int64 `json:"rejoin_ms"`
}

// SoakReport is the JSON-serializable outcome of a soak run.
type SoakReport struct {
	Seed       uint64   `json:"seed"`
	OK         bool     `json:"ok"`
	Failures   []string `json:"failures,omitempty"`
	DurationMS int64    `json:"duration_ms"`

	CNs         int   `json:"cns"`
	ELs         int   `json:"els"`
	CSs         int   `json:"css"`
	LapsPerRank int   `json:"laps_per_rank"`
	LapsDone    int   `json:"laps_done"` // lap completions observed (all ranks)
	Goodput     []int `json:"goodput"`   // lap completions per 1s bucket

	Kills      int            `json:"kills"`
	RoleKills  map[string]int `json:"role_kills,omitempty"` // kills that landed, per role
	Stalls     int            `json:"stalls"`
	Respawns   int            `json:"respawns"`
	Recoveries []Recovery     `json:"recoveries,omitempty"`
	Plan       []string       `json:"plan,omitempty"` // human-readable fault schedule

	MidAudits      int    `json:"mid_audits"`      // post-recovery audit passes
	AuditEvents    int    `json:"audit_events"`    // determinants in the final audit
	AuditSummary   string `json:"audit"`           // final no-orphans verdict
	HBSummary      string `json:"hb_audit"`        // final happens-before verdict
	LeakGoroutines int    `json:"leak_goroutines"` // residual goroutines after teardown

	TCP     TCPSample        `json:"tcp"`               // Σ last sample per (node, incarnation)
	Metrics map[string]int64 `json:"metrics,omitempty"` // proxy counters, per-role latency totals
}

func (c *SoakConfig) defaults() {
	if c.AppName == "" {
		c.AppName = "soakring"
	}
	if c.CNs <= 0 {
		c.CNs = 3
	}
	if c.ELs <= 0 {
		c.ELs = 1
	}
	if c.CSs <= 0 {
		c.CSs = 1
	}
	if c.Laps <= 0 {
		c.Laps = 20
	}
	if c.HoldMS <= 0 {
		c.HoldMS = 25
	}
	if c.Payload <= 0 {
		c.Payload = 256
	}
	if c.Kills < 0 {
		c.Kills = 0
	}
	if len(c.KillRoles) == 0 {
		c.KillRoles = []Role{RoleCN}
	}
	if c.MinAfter <= 0 {
		c.MinAfter = 2 * time.Second
	}
	if c.Over <= 0 {
		c.Over = 6 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 100 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.MaxSpawn <= 0 {
		c.MaxSpawn = 10
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
}

// elEndpoint is one event-logger replica as the auditor reaches it: its
// node id and a proxy-free address (the bind side when the replica's
// advertised address is a chaos proxy).
type elEndpoint struct {
	id   int
	addr string
}

// fetchELEvents pulls the determinant stores of the whole event-logger
// replica group over a throwaway TCP endpoint and unions the replies.
// The read is quorum-aware: it succeeds once at least `need` distinct
// replicas (= R−Q+1, the smallest set intersecting every write quorum)
// have answered, so a killed or still-resyncing replica cannot block
// the audit — the commit set is re-fetched from the survivors. Replies
// beyond the minimum only grow the union (merges are idempotent), so
// the fetch keeps collecting until the group is complete or a short
// grace expires.
func fetchELEvents(els []elEndpoint, cns int, need int, timeout time.Duration) ([][]core.Event, int, error) {
	const auditorID = 1900
	addrMap := map[int]string{auditorID: "127.0.0.1:0"}
	for _, el := range els {
		addrMap[el.id] = el.addr
	}
	rt := vtime.NewReal()
	fab := transport.NewTCPFabric(rt, addrMap)
	ep := fab.Attach(auditorID, "soak-audit")
	defer ep.Close()

	frames := make(chan transport.Frame, 16)
	go func() {
		for {
			f, ok := ep.Inbox().Recv()
			if !ok {
				close(frames)
				return
			}
			frames <- f
		}
	}()

	req := wire.EncodeSyncMarks(map[int]uint64{})
	deadline := time.After(timeout)
	responded := make(map[int]bool)
	union := make(map[int]map[uint64]core.Event)
	ask := func() {
		for _, el := range els {
			if !responded[el.id] {
				ep.Send(el.id, wire.KELSyncReq, req)
			}
		}
	}
	ask()
	grace := time.Duration(0)
collect:
	for len(responded) < len(els) {
		var graceC <-chan time.Time
		if grace > 0 {
			graceC = time.After(grace)
		}
		select {
		case f, ok := <-frames:
			if !ok {
				return nil, 0, fmt.Errorf("soak: audit endpoint closed")
			}
			if f.Kind != wire.KELSyncResp || responded[f.From] {
				continue
			}
			dec, err := wire.DecodeNodeEvents(f.Data)
			if err != nil {
				return nil, 0, fmt.Errorf("soak: bad sync response: %w", err)
			}
			responded[f.From] = true
			for node, evs := range dec {
				m := union[node]
				if m == nil {
					m = make(map[uint64]core.Event)
					union[node] = m
				}
				for _, ev := range evs {
					m[ev.RecvClock] = ev
				}
			}
			if len(responded) >= need {
				// Quorum met: give stragglers one short grace, then go.
				grace = 500 * time.Millisecond
			}
		case <-graceC:
			break collect
		case <-time.After(500 * time.Millisecond):
			ask() // re-send to the still-silent replicas
		case <-deadline:
			if len(responded) >= need {
				break collect
			}
			return nil, 0, fmt.Errorf("soak: only %d of %d event-logger replicas answered (read quorum %d) after %v",
				len(responded), len(els), need, timeout)
		}
	}

	dels := make([][]core.Event, cns)
	total := 0
	for node, m := range union {
		if node < 0 || node >= cns {
			continue
		}
		evs := make([]core.Event, 0, len(m))
		for _, ev := range m {
			evs = append(evs, ev)
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].RecvClock < evs[j].RecvClock })
		dels[node] = evs
		total += len(evs)
	}
	return dels, total, nil
}

// knownCommits maps the fetched determinants to trace span ids: a
// determinant in the EL *is* a durable commit, so it anchors replays
// whose local EvDetDurable record died with a crashed incarnation.
func knownCommits(dels [][]core.Event) map[uint64]bool {
	known := make(map[uint64]bool)
	for rank, evs := range dels {
		for _, ev := range evs {
			known[trace.PackSpan(rank, ev.RecvClock)] = true
		}
	}
	return known
}

// auditOnce runs both post-run checks — the no-orphans audit over the
// event-logger group's unioned determinant store (read-quorum-gated)
// and the happens-before audit over the merged crash-surviving trace
// snapshots — and reports the verdicts.
func auditOnce(els []elEndpoint, need int, traceDir string, cns int) (cluster.AuditReport, trace.HBReport, int, error) {
	dels, total, err := fetchELEvents(els, cns, need, 5*time.Second)
	if err != nil {
		return cluster.AuditReport{}, trace.HBReport{}, 0, err
	}
	rep := cluster.Audit(cluster.Result{Deliveries: dels})
	tr, err := trace.BuildTrace(filepath.Join(traceDir, "trace-*.mvtr"))
	if err != nil {
		return rep, trace.HBReport{}, total, err
	}
	hb := trace.AuditHBWith(tr, trace.AuditHBOpts{
		KnownCommits: knownCommits(dels),
		CrashTail:    true,
	})
	return rep, hb, total, nil
}

// RunSoak deploys the program as real OS processes over loopback TCP —
// every computing node (and optionally every service) behind a
// fault-injecting proxy — executes the seeded kill/stall schedule over
// the configured role kill-set, and audits the survivors: the same seed
// reproduces the same fault schedule and the same chaos variates.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	cfg.defaults()
	rep := &SoakReport{
		Seed: cfg.Seed, CNs: cfg.CNs, ELs: cfg.ELs, CSs: cfg.CSs,
		LapsPerRank: cfg.Laps, RoleKills: make(map[string]int),
	}
	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}
	goroutinesBefore := runtime.NumGoroutine()

	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "mpichv-soak-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	traceDir := filepath.Join(dir, "trace")
	walDir := filepath.Join(dir, "wal")
	for _, d := range []string{traceDir, walDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}

	// Address plan: every node gets an advertised (front) and a bind
	// address; the bind side is written into the program file — and a
	// proxy spawned — only for the nodes whose links cross the
	// injector: all CNs, plus the services when ProxyServices is set.
	services := cfg.ELs + cfg.CSs + 1
	addrs, err := FreePorts(2 * (cfg.CNs + services))
	if err != nil {
		return nil, err
	}
	type planned struct {
		id          int
		role        Role
		front, bind string
		proxied     bool
	}
	var nodes []planned
	next := 0
	take := func() (string, string) {
		front, bind := addrs[next], addrs[next+1]
		next += 2
		return front, bind
	}
	for i := 0; i < cfg.ELs; i++ {
		front, bind := take()
		nodes = append(nodes, planned{ELID + i, RoleEL, front, bind, cfg.ProxyServices})
	}
	for i := 0; i < cfg.CSs; i++ {
		front, bind := take()
		nodes = append(nodes, planned{CSID + i, RoleCS, front, bind, cfg.ProxyServices})
	}
	{
		front, bind := take()
		nodes = append(nodes, planned{SchedID, RoleSched, front, bind, cfg.ProxyServices})
	}
	for i := 0; i < cfg.CNs; i++ {
		front, bind := take()
		nodes = append(nodes, planned{i, RoleCN, front, bind, true})
	}
	var pg strings.Builder
	for _, n := range nodes {
		if n.proxied {
			fmt.Fprintf(&pg, "%s %s %s\n", n.role, n.front, n.bind)
		} else {
			fmt.Fprintf(&pg, "%s %s\n", n.role, n.front)
		}
	}
	pgPath := filepath.Join(dir, "soak.pg")
	if err := os.WriteFile(pgPath, []byte(pg.String()), 0o644); err != nil {
		return nil, err
	}

	// The audit side-steps the proxies: it reads each EL replica at its
	// bind address when the front is a chaos proxy.
	var els []elEndpoint
	for _, n := range nodes {
		if n.role != RoleEL {
			continue
		}
		addr := n.front
		if n.proxied {
			addr = n.bind
		}
		els = append(els, elEndpoint{id: n.id, addr: addr})
	}
	elQ := len(els)/2 + 1
	readNeed := len(els) - elQ + 1

	// The shared epoch: every worker's virtual clock and the proxies'
	// partition windows count from here.
	epoch := time.Now()
	rt := vtime.NewRealAt(epoch)

	// One chaos proxy per proxied node, owning the advertised address
	// and forwarding to the bind address. Distinct sub-seeds keep the
	// proxies' variate streams independent but reproducible.
	var proxies []*transport.ChaosProxy
	defer func() {
		for _, px := range proxies {
			px.Close()
		}
	}()
	for i, n := range nodes {
		if !n.proxied {
			continue
		}
		pol := cfg.Proxy
		pol.Seed = cfg.Seed + uint64(i+1)*0x9e3779b97f4a7c15
		px, err := transport.NewChaosProxy(rt, n.id, n.front, n.bind, pol)
		if err != nil {
			return nil, fmt.Errorf("soak: proxy for node %d: %w", n.id, err)
		}
		proxies = append(proxies, px)
	}

	sup, err := StartSupervisor(SupervisorConfig{
		ProgramPath: pgPath,
		Exe:         cfg.Exe,
		AppName:     cfg.AppName,
		Template: ServeOpts{
			Epoch:          epoch,
			TraceDir:       traceDir,
			WALDir:         walDir,
			DiskFaultEvery: cfg.DiskFaultEvery,
			DiskFaultSeed:  cfg.Seed,
			Heartbeat:      cfg.Heartbeat,
			ELHighWater:    512,
			PullTimeout:    250 * time.Millisecond,
			DetMode:        cfg.DetMode,
		},
		MaxSpawn: cfg.MaxSpawn,
		ExtraEnv: []string{
			"MPICHV_SOAK_LAPS=" + strconv.Itoa(cfg.Laps),
			"MPICHV_SOAK_HOLD_MS=" + strconv.Itoa(cfg.HoldMS),
			"MPICHV_SOAK_PAYLOAD=" + strconv.Itoa(cfg.Payload),
		},
		Log: cfg.Log,
	})
	if err != nil {
		return nil, err
	}
	defer sup.Stop()
	start := time.Now()
	roleOf := func(id int) string { return string(sup.Program().RoleOf(id)) }

	// The kill-set: one target group per configured role, in the order
	// given, so kills round-robin across roles. Roles with no nodes in
	// this program drop out of the plan (and out of the coverage check).
	var roleGroups [][]int
	var activeKillRoles []Role
	for _, role := range cfg.KillRoles {
		ids := sup.Program().IDsOfRole(role)
		if len(ids) > 0 {
			roleGroups = append(roleGroups, ids)
			activeKillRoles = append(activeKillRoles, role)
		}
	}
	plan := PlanFaults(FaultPlanConfig{
		Seed:        cfg.Seed,
		RoleTargets: roleGroups,
		Kills:       cfg.Kills,
		Stalls:      cfg.Stalls,
		MinAfter:    cfg.MinAfter,
		Over:        cfg.Over,
		StallFor:    cfg.StallFor,
	})
	for _, f := range plan {
		rep.Plan = append(rep.Plan, fmt.Sprintf("%s %s/%d @%dms", f.Kind, roleOf(f.Target), f.Target, f.After.Milliseconds()))
	}
	stopInject := sup.Inject(plan)
	defer stopInject()

	// Wait for completion, re-running both audits after every observed
	// recovery (a respawn with incarnation > 0) — computing node or
	// service. Mid-run audits may see transient holes while
	// retransmissions drain or a replica resyncs, so each retries until
	// green; only never-converging audits count as failures. The
	// post-quiesce final audit below stays authoritative.
	audited := make(map[string]bool)
	timeout := time.After(cfg.Timeout)
	poll := time.NewTicker(time.Second)
	timedOut := false
waitLoop:
	for {
		select {
		case <-sup.Done():
			break waitLoop
		case <-timeout:
			timedOut = true
			fail("soak timed out after %v", cfg.Timeout)
			break waitLoop
		case <-poll.C:
			for _, ev := range sup.Events() {
				if ev.Kind != "spawn" || ev.Inc == 0 {
					continue
				}
				key := fmt.Sprintf("%d/%d", ev.ID, ev.Inc)
				if audited[key] {
					continue
				}
				audited[key] = true
				green := false
				var last string
				for attempt := 0; attempt < 10; attempt++ {
					a, hb, _, err := auditOnce(els, readNeed, traceDir, cfg.CNs)
					if err == nil && a.OK() && hb.OK() {
						green = true
						break
					}
					last = fmt.Sprintf("audit=%v hb=%v err=%v", a.Summary(), hb.Summary(), err)
					time.Sleep(300 * time.Millisecond)
				}
				rep.MidAudits++
				if !green {
					fail("post-recovery audit for node %s never converged: %s", key, last)
				}
			}
		}
	}
	poll.Stop()
	rep.DurationMS = time.Since(start).Milliseconds()
	stopInject()

	// Quiesce: let in-flight retransmissions and the last heartbeat
	// land, plus one trace-snapshot flush interval.
	time.Sleep(2*cfg.Heartbeat + 500*time.Millisecond)

	// Authoritative final audits.
	audit, hb, total, err := auditOnce(els, readNeed, traceDir, cfg.CNs)
	rep.AuditEvents = total
	if err != nil {
		fail("final audit: %v", err)
	} else {
		rep.AuditSummary = audit.Summary()
		rep.HBSummary = hb.Summary()
		if !audit.OK() {
			fail("no-orphans audit failed: %s", audit.Summary())
			for _, o := range audit.Orphans {
				fail("orphan: %s", o)
			}
		}
		if !hb.OK() {
			fail("happens-before audit failed: %s", hb.Summary())
		}
	}
	if err := sup.Err(); err != nil {
		fail("supervision: %v", err)
	}

	// Fold the supervision record into the report.
	events := sup.Events()
	laps := sup.Laps()
	rep.LapsDone = len(laps)
	for _, l := range laps {
		b := int(l.T.Sub(start) / time.Second)
		for len(rep.Goodput) <= b {
			rep.Goodput = append(rep.Goodput, 0)
		}
		rep.Goodput[b]++
	}
	for _, ev := range events {
		switch ev.Kind {
		case "kill":
			rep.Kills++
			rep.RoleKills[roleOf(ev.ID)]++
		case "stall":
			rep.Stalls++
		case "spawn":
			if ev.Inc > 0 {
				rep.Respawns++
			}
		}
	}
	for i, ev := range events {
		if ev.Kind != "exit" {
			continue
		}
		r := Recovery{ID: ev.ID, Role: roleOf(ev.ID), Inc: ev.Inc,
			RespawnMS: -1, BackToWorkMS: -1, RejoinMS: -1}
		for _, later := range events[i+1:] {
			if later.ID != ev.ID {
				continue
			}
			if later.Kind == "spawn" && r.RespawnMS < 0 {
				r.RespawnMS = later.T.Sub(ev.T).Milliseconds()
			}
			if later.Kind == "rejoin" && r.RejoinMS < 0 {
				r.RejoinMS = later.T.Sub(ev.T).Milliseconds()
			}
		}
		if ev.ID < ELID {
			for _, l := range laps {
				if l.ID == ev.ID && l.T.After(ev.T) {
					r.BackToWorkMS = l.T.Sub(ev.T).Milliseconds()
					break
				}
			}
		}
		// Exits during teardown (no successor spawn) are not recoveries.
		if r.RespawnMS >= 0 {
			rep.Recoveries = append(rep.Recoveries, r)
		}
	}
	if !timedOut && cfg.Kills > 0 && rep.Kills < cfg.Kills {
		fail("only %d of %d planned kills fired", rep.Kills, cfg.Kills)
	}
	// Role coverage: the round-robin plan guarantees every active role
	// at least one kill when the quota allows; a hole means a kill was
	// planned but never landed (e.g. the target was already dead).
	if !timedOut && cfg.Kills >= len(activeKillRoles) {
		for _, role := range activeKillRoles {
			if rep.RoleKills[string(role)] == 0 {
				fail("kill-set role %s was never killed", role)
			}
		}
	}

	rep.TCP = sup.TCPTotals()
	reg := trace.NewRegistry()
	for _, px := range proxies {
		px.AddTo(reg)
	}
	// Per-role recovery latency and outage-window totals, alongside the
	// proxy counters: mean respawn latency for role r is
	// soak.respawn_ms_total.r / soak.respawns.r, and a service role's
	// replica-outage window (exit → rejoined, resync complete) is
	// soak.outage_ms_total.r / soak.rejoins.r.
	for _, r := range rep.Recoveries {
		reg.Counter("soak.respawns." + r.Role).Add(1)
		reg.Counter("soak.respawn_ms_total." + r.Role).Add(r.RespawnMS)
		if r.BackToWorkMS >= 0 {
			reg.Counter("soak.back_to_work." + r.Role).Add(1)
			reg.Counter("soak.back_to_work_ms_total." + r.Role).Add(r.BackToWorkMS)
		}
		if r.RejoinMS >= 0 {
			reg.Counter("soak.rejoins." + r.Role).Add(1)
			reg.Counter("soak.outage_ms_total." + r.Role).Add(r.RejoinMS)
		}
	}
	rep.Metrics = reg.Snapshot().Counters

	// Teardown, then verify the driver leaked no goroutines: proxies,
	// supervisor loops and audit endpoints must all wind down.
	sup.Stop()
	for _, px := range proxies {
		px.Close()
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		rep.LeakGoroutines = runtime.NumGoroutine() - goroutinesBefore
		if rep.LeakGoroutines <= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if rep.LeakGoroutines > 5 {
		fail("driver leaked %d goroutines", rep.LeakGoroutines)
	}

	rep.OK = len(rep.Failures) == 0
	return rep, nil
}
