package deploy

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"mpichv/internal/ckpt"
	"mpichv/internal/daemon"
	"mpichv/internal/eventlog"
	"mpichv/internal/mpi"
	"mpichv/internal/sched"
	"mpichv/internal/trace"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/walog"
)

// Worker line protocol: a served process talks to its supervisor over
// stdout with these prefixes (everything else is application output).
const (
	// HBMarker precedes a unix-millisecond timestamp; the supervisor
	// treats a stale heartbeat like a socket disconnection (§4.7) and
	// kills the worker.
	HBMarker = "VRUN-HB"
	// TCPMarker precedes the seven TCPStats counters in declaration
	// order; the soak driver folds the last sample of each incarnation
	// into the run's metrics registry.
	TCPMarker = "VRUN-TCP"
	// LapMarker precedes a completed-iteration count printed by
	// long-running apps (see the soakring app); the soak driver turns
	// the series into a goodput curve.
	LapMarker = "VRUN-LAP"
	// RejoinMarker precedes a role name; a *restarted* service worker
	// prints it once it is back in service — after its WAL replay and,
	// for replicated roles, after anti-entropy resync pulled the events
	// or images it missed while dead. The soak driver uses it to close
	// the replica-outage window that the kill opened.
	RejoinMarker = "VRUN-REJOIN"
)

// ServeOpts fully describes one worker process of a deployed run. The
// zero value of every optional field selects the legacy Serve behavior,
// so ServeWith is a strict superset of Serve.
type ServeOpts struct {
	Program   *Program
	ID        int
	App       App
	AppName   string
	Restarted bool
	Out       io.Writer

	// Epoch, when non-zero, is the shared wall-clock zero of the whole
	// deployment: every worker's virtual clock reads Now()==0 at Epoch,
	// so trace timestamps from different processes are comparable and
	// the happens-before auditor can merge them. Zero keeps a private
	// per-process epoch (legacy behavior, traces not merged).
	Epoch time.Time

	// Incarnation is how many times this rank has been respawned; it
	// namespaces daemon sequence numbers and the trace snapshot file.
	Incarnation uint64

	// TraceDir, when set, arms a shared causal-trace recorder on the
	// daemon and flushes atomic snapshots to
	// TraceDir/trace-r<rank>-i<incarnation>.mvtr so the trace survives
	// a SIGKILL. CN roles only.
	TraceDir string

	// WALDir, when set, makes the EL/CS stores durable: they replay
	// WALDir/el.wal / WALDir/cs.wal on start and append every accepted
	// record, so a killed service restarts with its state.
	WALDir string

	// DiskFaultEvery/DiskFaultSeed arm deterministic torn-write
	// injection on the WALs (see walog.TornConfig). Zero disables.
	DiskFaultEvery int
	DiskFaultSeed  uint64

	// Heartbeat, when positive, prints "VRUN-HB <unixms>" and a
	// "VRUN-TCP <counters>" sample to Out at this cadence, from every
	// role. The supervisor kills workers whose heartbeat goes stale.
	Heartbeat time.Duration

	// Daemon knobs for running against a faulty network (CN roles):
	// the degraded-mode watermarks and the starvation pull timer.
	ELHighWater int
	ELLowWater  int
	PullTimeout time.Duration

	// DetMode selects the daemon's determinant-suppression policy
	// (daemon.DetOff / DetAdaptive / DetAggressive). CN roles only.
	DetMode int
}

func (o *ServeOpts) runtime() *vtime.Real {
	if o.Epoch.IsZero() {
		return vtime.NewReal()
	}
	return vtime.NewRealAt(o.Epoch)
}

// startHeartbeat emits liveness and transport-counter samples until the
// process dies. Lines are short enough to be atomic on a pipe, so they
// interleave safely with application output.
func (o *ServeOpts) startHeartbeat(fab *transport.TCPFabric) {
	if o.Heartbeat <= 0 {
		return
	}
	go func() {
		tick := time.NewTicker(o.Heartbeat)
		defer tick.Stop()
		for range tick.C {
			s := fab.Stats()
			fmt.Fprintf(o.Out, "%s %d\n", HBMarker, time.Now().UnixMilli())
			fmt.Fprintf(o.Out, "%s %d %d %d %d %d %d %d\n", TCPMarker,
				s.Dials, s.Redials, s.Retransmits, s.DroppedFrames,
				s.HelloTimeouts, s.WriteTimeouts, s.StaleReplaced)
		}
	}()
}

func (o *ServeOpts) torn() walog.TornConfig {
	return walog.TornConfig{Seed: o.DiskFaultSeed, Every: o.DiskFaultEvery}
}

// announceRejoin prints the rejoin marker once ready reports true —
// immediately when ready is nil (the role has no resync to wait for).
// Only restarted workers announce: an initial spawn has no outage
// window to close.
func (o *ServeOpts) announceRejoin(role Role, ready func() bool) {
	if !o.Restarted {
		return
	}
	go func() {
		for ready != nil && !ready() {
			time.Sleep(20 * time.Millisecond)
		}
		fmt.Fprintf(o.Out, "%s %s\n", RejoinMarker, role)
	}()
}

// peersOf returns the other replica ids of a service node's role group.
func peersOf(pg *Program, node *Node) []int {
	var peers []int
	for _, n := range pg.OfRole(node.Role) {
		if n.ID != node.ID {
			peers = append(peers, n.ID)
		}
	}
	return peers
}

// ServeWith runs one node of the program in this process, with the full
// fault-injection surface: bind/advertise address split, shared epoch,
// durable service stores with torn-write injection, crash-surviving
// trace snapshots, heartbeats, and the daemon's degraded-mode knobs.
// Computing nodes run the app, print DoneMarker, and keep serving;
// service nodes serve forever.
func ServeWith(o ServeOpts) error {
	pg := o.Program
	if o.Out == nil {
		o.Out = os.Stdout
	}
	var node *Node
	for i := range pg.Nodes {
		if pg.Nodes[i].ID == o.ID {
			node = &pg.Nodes[i]
		}
	}
	if node == nil {
		return fmt.Errorf("deploy: node id %d not in program file", o.ID)
	}

	rt := o.runtime()
	fab := transport.NewTCPFabric(rt, pg.AddrMap())
	if node.Bind != "" {
		fab.SetBind(node.ID, node.Bind)
	}
	o.startHeartbeat(fab)

	switch node.Role {
	case RoleEL:
		st := eventlog.NewStore()
		if o.WALDir != "" {
			// Per-replica WAL: every member of the group keeps its own
			// durable prefix (independent stores, as in §8's quorum model).
			if _, err := st.OpenWAL(filepath.Join(o.WALDir, fmt.Sprintf("el-%d.wal", node.ID)), o.torn()); err != nil {
				return fmt.Errorf("deploy: el wal: %w", err)
			}
		}
		srv := eventlog.NewServerWithStore(rt, fab.Attach(node.ID, "event-logger"), 0, st)
		srv.Peers = peersOf(pg, node)
		if o.Restarted && len(srv.Peers) > 0 {
			// A respawned replica rejoins its group: the WAL replay gave
			// it its own durable prefix, anti-entropy pulls everything
			// the group committed while it was dead. Out-of-process runs
			// get a longer retry budget than the simulation default —
			// real dials and peer respawns take wall-clock time.
			srv.Resync = true
			srv.ResyncAttempts = 60
		}
		srv.Start()
		if srv.Resync {
			o.announceRejoin(RoleEL, srv.Synced)
		} else {
			o.announceRejoin(RoleEL, nil)
		}
		select {}
	case RoleCS:
		st := ckpt.NewStore()
		if o.WALDir != "" {
			if _, err := st.OpenWAL(filepath.Join(o.WALDir, fmt.Sprintf("cs-%d.wal", node.ID)), o.torn()); err != nil {
				return fmt.Errorf("deploy: cs wal: %w", err)
			}
		}
		srv := ckpt.NewServerWithStore(rt, fab.Attach(node.ID, "ckpt-server"), st)
		srv.Peers = peersOf(pg, node)
		if o.Restarted && len(srv.Peers) > 0 {
			srv.Resync = true
			srv.ResyncAttempts = 60
		}
		srv.Start()
		if srv.Resync {
			o.announceRejoin(RoleCS, srv.Synced)
		} else {
			o.announceRejoin(RoleCS, nil)
		}
		select {}
	case RoleSched:
		var ranks []int
		for _, n := range pg.CNs() {
			ranks = append(ranks, n.ID)
		}
		sched.Start(rt, fab, sched.Config{
			Node:   node.ID,
			Ranks:  ranks,
			Policy: &sched.RoundRobin{},
			Period: 2 * time.Second,
		})
		// The scheduler is soft-state by design: its policy position is
		// rebuilt from the first poll round, so a respawn is back in
		// service as soon as its endpoint is bound.
		o.announceRejoin(RoleSched, nil)
		select {}
	case RoleCN:
		cfg := daemon.Config{
			Rank:        o.ID,
			Size:        len(pg.CNs()),
			EventLogger: -1,
			CkptServer:  -1,
			Scheduler:   -1,
			Dispatcher:  -1,
			Restarted:   o.Restarted,
			Incarnation: o.Incarnation,
			ELHighWater: o.ELHighWater,
			ELLowWater:  o.ELLowWater,
			PullTimeout: o.PullTimeout,
			DetMode:     o.DetMode,
		}
		// Replicated service roles: a single node keeps the legacy
		// primary path, several switch the daemon to quorum replication
		// (write quorum = majority, restart reads merge the complement).
		els := pg.IDsOfRole(RoleEL)
		if len(els) == 1 {
			cfg.EventLogger = els[0]
		} else if len(els) > 1 {
			cfg.ELReplicas = els
			cfg.ELQuorum = len(els)/2 + 1
		}
		css := pg.IDsOfRole(RoleCS)
		if len(css) == 1 {
			cfg.CkptServer = css[0]
		} else if len(css) > 1 {
			cfg.CSReplicas = css
			cfg.CSQuorum = len(css)/2 + 1
		}
		if sc, ok := pg.Find(RoleSched); ok {
			cfg.Scheduler = sc.ID
		}
		if o.TraceDir != "" {
			rec := trace.NewRecorder(o.ID, 1<<15)
			rec.SetShared()
			cfg.Tracer = rec
			path := filepath.Join(o.TraceDir,
				fmt.Sprintf("trace-r%d-i%d.mvtr", o.ID, o.Incarnation))
			go func() {
				iv := o.Heartbeat
				if iv <= 0 {
					iv = 500 * time.Millisecond
				}
				tick := time.NewTicker(iv)
				defer tick.Stop()
				for range tick.C {
					// Atomic (tmp+rename): a kill mid-flush leaves the
					// previous snapshot, never a torn one.
					trace.WriteSnapshot(path, rec)
				}
			}()
		}
		dev, _ := daemon.StartV2(rt, fab, cfg)
		p := mpi.Start(dev, rt, mpi.Options{})
		o.App(p)
		p.Finalize()
		fmt.Fprintln(o.Out, DoneMarker)
		select {}
	}
	return fmt.Errorf("deploy: unhandled role %q", node.Role)
}

// Environment round-trip: the supervisor passes a worker its ServeOpts
// through the environment rather than flags, so any binary that calls
// MaybeServe at the top of main can host a worker — including the soak
// driver itself re-exec'd.
const (
	envServe     = "MPICHV_SERVE"
	envProgram   = "MPICHV_PG"
	envApp       = "MPICHV_APP"
	envRestarted = "MPICHV_RESTARTED"
	envEpoch     = "MPICHV_EPOCH"
	envInc       = "MPICHV_INC"
	envTraceDir  = "MPICHV_TRACEDIR"
	envWALDir    = "MPICHV_WALDIR"
	envDiskEvery = "MPICHV_DISK_EVERY"
	envDiskSeed  = "MPICHV_DISK_SEED"
	envHB        = "MPICHV_HB_MS"
	envELHigh    = "MPICHV_EL_HIGH"
	envELLow     = "MPICHV_EL_LOW"
	envPull      = "MPICHV_PULL_MS"
	envDetMode   = "MPICHV_DETMODE"
)

// Env encodes the opts as environment assignments for a worker spawned
// to serve node id from the program file at pgPath.
func (o *ServeOpts) Env(pgPath string) []string {
	env := []string{
		envServe + "=" + strconv.Itoa(o.ID),
		envProgram + "=" + pgPath,
		envApp + "=" + o.AppName,
		envInc + "=" + strconv.FormatUint(o.Incarnation, 10),
	}
	if o.Restarted {
		env = append(env, envRestarted+"=1")
	}
	if !o.Epoch.IsZero() {
		env = append(env, envEpoch+"="+strconv.FormatInt(o.Epoch.UnixNano(), 10))
	}
	if o.TraceDir != "" {
		env = append(env, envTraceDir+"="+o.TraceDir)
	}
	if o.WALDir != "" {
		env = append(env, envWALDir+"="+o.WALDir)
	}
	if o.DiskFaultEvery > 0 {
		env = append(env,
			envDiskEvery+"="+strconv.Itoa(o.DiskFaultEvery),
			envDiskSeed+"="+strconv.FormatUint(o.DiskFaultSeed, 10))
	}
	if o.Heartbeat > 0 {
		env = append(env, envHB+"="+strconv.FormatInt(o.Heartbeat.Milliseconds(), 10))
	}
	if o.ELHighWater > 0 {
		env = append(env, envELHigh+"="+strconv.Itoa(o.ELHighWater))
	}
	if o.ELLowWater > 0 {
		env = append(env, envELLow+"="+strconv.Itoa(o.ELLowWater))
	}
	if o.PullTimeout > 0 {
		env = append(env, envPull+"="+strconv.FormatInt(o.PullTimeout.Milliseconds(), 10))
	}
	if o.DetMode > 0 {
		env = append(env, envDetMode+"="+strconv.Itoa(o.DetMode))
	}
	return env
}

func envInt(key string) int {
	n, _ := strconv.Atoi(os.Getenv(key))
	return n
}

// MaybeServe turns the calling process into a worker when MPICHV_SERVE
// is set, and returns immediately otherwise. Call it at the top of any
// main that the supervisor may use as a worker executable; lookup
// resolves the app name (computing nodes only — services pass a nil
// app). On serve errors the process exits non-zero; a serving process
// never returns.
func MaybeServe(lookup func(name string) (App, bool)) {
	idStr := os.Getenv(envServe)
	if idStr == "" {
		return
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	id, err := strconv.Atoi(idStr)
	if err != nil {
		fail(fmt.Errorf("bad %s=%q", envServe, idStr))
	}
	pg, err := ParseFile(os.Getenv(envProgram))
	if err != nil {
		fail(err)
	}
	o := ServeOpts{
		Program:        pg,
		ID:             id,
		AppName:        os.Getenv(envApp),
		Restarted:      os.Getenv(envRestarted) == "1",
		Out:            os.Stdout,
		TraceDir:       os.Getenv(envTraceDir),
		WALDir:         os.Getenv(envWALDir),
		DiskFaultEvery: envInt(envDiskEvery),
		Heartbeat:      time.Duration(envInt(envHB)) * time.Millisecond,
		ELHighWater:    envInt(envELHigh),
		ELLowWater:     envInt(envELLow),
		PullTimeout:    time.Duration(envInt(envPull)) * time.Millisecond,
		DetMode:        envInt(envDetMode),
	}
	if ns, err := strconv.ParseInt(os.Getenv(envEpoch), 10, 64); err == nil && ns > 0 {
		o.Epoch = time.Unix(0, ns)
	}
	o.Incarnation, _ = strconv.ParseUint(os.Getenv(envInc), 10, 64)
	o.DiskFaultSeed, _ = strconv.ParseUint(os.Getenv(envDiskSeed), 10, 64)
	if id < ELID { // computing node: needs the app
		app, ok := lookup(o.AppName)
		if !ok {
			fail(fmt.Errorf("unknown app %q", o.AppName))
		}
		o.App = app
	}
	fail(ServeWith(o)) // ServeWith only returns on error
}
