package deploy

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"mpichv/internal/transport"
)

// Event is one supervision decision, timestamped for the recovery-
// latency series: a spawn, an observed exit, a DoneMarker, an injected
// kill/stall, a stale heartbeat, or a restart budget running out.
type Event struct {
	T    time.Time
	ID   int // node id (CN rank or service id)
	Inc  uint64
	Kind string // spawn | exit | done | kill | stall | resume | hb-stale | rejoin | give-up
	Info string
}

// LapSample is one "VRUN-LAP n" line from a worker: rank ID completed
// its n-th application iteration at T.
type LapSample struct {
	T   time.Time
	ID  int
	Inc uint64
	N   int
}

// TCPSample is one "VRUN-TCP ..." line: a snapshot of the worker
// fabric's TCPStats counters, in declaration order.
type TCPSample struct {
	Dials, Redials, Retransmits, DroppedFrames int64
	HelloTimeouts, WriteTimeouts, StaleReplaced int64
}

// SupervisorConfig describes one supervised deployment.
type SupervisorConfig struct {
	ProgramPath string
	Exe         string // worker executable (must call MaybeServe)
	AppName     string
	// Template carries the per-worker ServeOpts knobs (Epoch, TraceDir,
	// WALDir, disk faults, heartbeat cadence, daemon knobs); ID,
	// Restarted and Incarnation are filled per spawn.
	Template ServeOpts
	// MaxSpawn bounds spawns per node id (default 10); exceeding it is
	// a give-up: supervision ends with an error.
	MaxSpawn int
	// Restart is the crash→respawn backoff (default 100ms base, 2s max).
	Restart transport.Backoff
	// ExtraEnv is appended to every worker's environment (app knobs).
	ExtraEnv []string
	Log      io.Writer
}

type supWorker struct {
	node    Node
	inc     uint64
	cmd     *exec.Cmd
	lastHB  time.Time
	done    bool // DoneMarker seen for this incarnation
	stalled bool
}

type supExit struct {
	id  int
	inc uint64
	err error
}

// Supervisor spawns the workers of a program file, watches their
// stdout line protocol, kills workers whose heartbeat goes stale (the
// §4.7 fault detector, generalized from socket disconnection), respawns
// crashed nodes with the recovery flag under a bounded exponential
// backoff and a restart budget, and injects process faults (SIGKILL,
// SIGSTOP freezes) on demand or from a seeded plan.
type Supervisor struct {
	cfg SupervisorConfig
	pg  *Program

	mu       sync.Mutex
	workers  map[int]*supWorker
	spawns   map[int]int
	events   []Event
	laps     []LapSample
	tcp      map[int]map[uint64]TCPSample
	finished map[int]bool
	stopped  bool
	err      error

	exits     chan supExit
	doneCh    chan struct{}
	quitHB    chan struct{}
	allExited chan struct{} // closed once stopped and every worker's exit was seen
	exitOnce  sync.Once
	doneOnce  sync.Once
	wg        sync.WaitGroup // stdout scanners + supervise loop
}

// StartSupervisor launches every node of the program and begins
// supervision. Call Wait for completion and Stop to tear down.
func StartSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	pg, err := ParseFile(cfg.ProgramPath)
	if err != nil {
		return nil, err
	}
	if cfg.Log == nil {
		cfg.Log = os.Stdout
	}
	if cfg.MaxSpawn <= 0 {
		cfg.MaxSpawn = 10
	}
	if cfg.Restart.Base <= 0 {
		cfg.Restart = transport.Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second}
	}
	s := &Supervisor{
		cfg:      cfg,
		pg:       pg,
		workers:  make(map[int]*supWorker),
		spawns:   make(map[int]int),
		tcp:      make(map[int]map[uint64]TCPSample),
		finished: make(map[int]bool),
		exits:     make(chan supExit, 256),
		doneCh:    make(chan struct{}),
		quitHB:    make(chan struct{}),
		allExited: make(chan struct{}),
	}
	for _, n := range pg.Nodes {
		if n.Role != RoleCN {
			if err := s.spawn(n, false); err != nil {
				s.Stop()
				return nil, err
			}
		}
	}
	time.Sleep(300 * time.Millisecond) // let the services bind
	for _, n := range pg.CNs() {
		if err := s.spawn(n, false); err != nil {
			s.Stop()
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.superviseLoop()
	if cfg.Template.Heartbeat > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop()
	}
	return s, nil
}

func (s *Supervisor) logf(format string, args ...any) {
	fmt.Fprintf(s.cfg.Log, "sup: "+format+"\n", args...)
}

func (s *Supervisor) event(id int, inc uint64, kind, info string) {
	s.events = append(s.events, Event{T: time.Now(), ID: id, Inc: inc, Kind: kind, Info: info})
}

// spawn starts one worker process (caller must not hold s.mu).
func (s *Supervisor) spawn(n Node, restarted bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return nil
	}
	s.spawns[n.ID]++
	if s.spawns[n.ID] > s.cfg.MaxSpawn {
		s.event(n.ID, 0, "give-up", fmt.Sprintf("exceeded %d spawns", s.cfg.MaxSpawn))
		s.err = fmt.Errorf("deploy: node %d exceeded %d spawns", n.ID, s.cfg.MaxSpawn)
		s.doneOnce.Do(func() { close(s.doneCh) })
		return s.err
	}
	inc := uint64(s.spawns[n.ID] - 1)

	opts := s.cfg.Template
	opts.ID = n.ID
	opts.AppName = s.cfg.AppName
	opts.Restarted = restarted
	opts.Incarnation = inc

	cmd := exec.Command(s.cfg.Exe)
	cmd.Env = append(append(os.Environ(), s.cfg.ExtraEnv...), opts.Env(s.cfg.ProgramPath)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	w := &supWorker{node: n, inc: inc, cmd: cmd, lastHB: time.Now()}
	s.workers[n.ID] = w
	s.event(n.ID, inc, "spawn", string(n.Role))
	s.logf("spawned %s %d (incarnation %d, restarted=%v)", n.Role, n.ID, inc, restarted)

	s.wg.Add(1)
	go s.scan(w, stdout)
	return nil
}

// scan consumes one worker's stdout until it exits, dispatching the
// line protocol, then reports the exit.
func (s *Supervisor) scan(w *supWorker, stdout io.Reader) {
	defer s.wg.Done()
	sc := bufio.NewScanner(stdout)
	id, inc := w.node.ID, w.inc
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == DoneMarker:
			s.mu.Lock()
			w.done = true
			first := !s.finished[id]
			// Only computing nodes count toward run completion; a
			// service echoing the marker must not end the run early.
			if id < ELID {
				s.finished[id] = true
			}
			s.event(id, inc, "done", "")
			if len(s.finished) == len(s.pg.CNs()) && !s.stopped && s.err == nil {
				s.doneOnce.Do(func() { close(s.doneCh) })
			}
			s.mu.Unlock()
			if first {
				s.logf("rank %d finalized", id)
			}
		case strings.HasPrefix(line, HBMarker+" "):
			s.mu.Lock()
			w.lastHB = time.Now()
			s.mu.Unlock()
		case strings.HasPrefix(line, RejoinMarker+" "):
			role := strings.TrimSpace(line[len(RejoinMarker)+1:])
			s.mu.Lock()
			s.event(id, inc, "rejoin", role)
			s.mu.Unlock()
			s.logf("%s %d (incarnation %d) rejoined", role, id, inc)
		case strings.HasPrefix(line, TCPMarker+" "):
			f := strings.Fields(line[len(TCPMarker)+1:])
			if len(f) == 7 {
				var v [7]int64
				ok := true
				for i, s := range f {
					n, err := strconv.ParseInt(s, 10, 64)
					if err != nil {
						ok = false
						break
					}
					v[i] = n
				}
				if ok {
					s.mu.Lock()
					m := s.tcp[id]
					if m == nil {
						m = make(map[uint64]TCPSample)
						s.tcp[id] = m
					}
					m[inc] = TCPSample{v[0], v[1], v[2], v[3], v[4], v[5], v[6]}
					s.mu.Unlock()
				}
			}
		case strings.HasPrefix(line, LapMarker+" "):
			if n, err := strconv.Atoi(strings.TrimSpace(line[len(LapMarker)+1:])); err == nil {
				s.mu.Lock()
				s.laps = append(s.laps, LapSample{T: time.Now(), ID: id, Inc: inc, N: n})
				s.mu.Unlock()
			}
		default:
			fmt.Fprintf(s.cfg.Log, "[%d] %s\n", id, line)
		}
	}
	err := w.cmd.Wait()
	s.exits <- supExit{id: id, inc: inc, err: err}
}

// superviseLoop restarts crashed workers until stopped, then confirms
// every worker's exit has been observed (releasing Stop).
func (s *Supervisor) superviseLoop() {
	defer s.wg.Done()
	for ex := range s.exits {
		s.mu.Lock()
		w := s.workers[ex.id]
		if w == nil || w.inc != ex.inc {
			s.checkAllExitedLocked()
			s.mu.Unlock()
			continue
		}
		delete(s.workers, ex.id)
		s.event(ex.id, ex.inc, "exit", fmt.Sprint(ex.err))
		stopped := s.stopped || s.err != nil
		attempt := s.spawns[ex.id] - 1
		node := w.node
		s.checkAllExitedLocked()
		s.mu.Unlock()
		if stopped {
			continue
		}
		s.logf("node %d (incarnation %d) died: %v; respawning", ex.id, ex.inc, ex.err)
		// Crash→respawn delay: detection slack plus port release, aged
		// by the shared bounded exponential backoff.
		time.Sleep(s.cfg.Restart.Delay(attempt))
		// Every respawn carries the recovery flag; the launched process
		// decides what it means from its role — computing nodes replay
		// from their checkpoint and event list, services reload their
		// WAL and (replicated roles) resync from their surviving peers.
		if err := s.spawn(node, true); err != nil {
			s.logf("respawn of node %d failed: %v", ex.id, err)
		}
	}
}

// checkAllExitedLocked fires allExited once supervision is stopped and
// no worker remains; Stop blocks on it before closing the exit stream.
func (s *Supervisor) checkAllExitedLocked() {
	if s.stopped && len(s.workers) == 0 {
		s.exitOnce.Do(func() { close(s.allExited) })
	}
}

// heartbeatLoop is the fault detector: a worker whose heartbeat is
// older than 3 heartbeat periods is declared crashed and killed (its
// exit then flows through the normal respawn path). SIGSTOPped workers
// are exempt while an injected stall is pending — the injector owns
// their fate.
func (s *Supervisor) heartbeatLoop() {
	defer s.wg.Done()
	hb := s.cfg.Template.Heartbeat
	tick := time.NewTicker(hb)
	defer tick.Stop()
	for {
		select {
		case <-s.quitHB:
			return
		case <-tick.C:
		}
		s.mu.Lock()
		now := time.Now()
		for id, w := range s.workers {
			if w.stalled || now.Sub(w.lastHB) <= 3*hb {
				continue
			}
			s.event(id, w.inc, "hb-stale", now.Sub(w.lastHB).String())
			s.logf("node %d heartbeat stale (%v); killing", id, now.Sub(w.lastHB).Round(time.Millisecond))
			if w.cmd.Process != nil {
				w.cmd.Process.Kill()
			}
			w.lastHB = now // one kill per staleness episode
		}
		s.mu.Unlock()
	}
}

// Kill SIGKILLs the current incarnation of node id — the paper's
// volatile-node fault, injected.
func (s *Supervisor) Kill(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.workers[id]
	if w == nil || w.cmd.Process == nil {
		return false
	}
	s.event(id, w.inc, "kill", "")
	s.logf("injecting SIGKILL into node %d (incarnation %d)", id, w.inc)
	w.cmd.Process.Kill()
	return true
}

// Stall SIGSTOPs node id for d, then SIGCONTs it: a frozen process
// whose sockets stay open — the half-open failure mode a pure
// disconnection detector cannot see.
func (s *Supervisor) Stall(id int, d time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.workers[id]
	if w == nil || w.cmd.Process == nil {
		return false
	}
	inc := w.inc
	s.event(id, inc, "stall", d.String())
	s.logf("freezing node %d for %v", id, d)
	w.stalled = true
	w.cmd.Process.Signal(syscall.SIGSTOP)
	time.AfterFunc(d, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		cur := s.workers[id]
		if cur == nil || cur.inc != inc {
			return
		}
		cur.stalled = false
		cur.lastHB = time.Now() // fresh grace period after the freeze
		cur.cmd.Process.Signal(syscall.SIGCONT)
		s.event(id, inc, "resume", "")
	})
	return true
}

// Done is closed when every computing node finalized, or supervision
// failed (see Err).
func (s *Supervisor) Done() <-chan struct{} { return s.doneCh }

// Err reports why supervision ended early (restart budget exhausted).
func (s *Supervisor) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Events returns a copy of the supervision event log.
func (s *Supervisor) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Laps returns a copy of the collected lap samples.
func (s *Supervisor) Laps() []LapSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]LapSample(nil), s.laps...)
}

// TCPTotals sums, over every (node, incarnation), the last TCPSample
// that incarnation reported: the whole deployment's transport counters.
// (An incarnation's counters start at zero, so last-per-incarnation
// sums are exact up to the final heartbeat before each death.)
func (s *Supervisor) TCPTotals() TCPSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t TCPSample
	for _, m := range s.tcp {
		for _, v := range m {
			t.Dials += v.Dials
			t.Redials += v.Redials
			t.Retransmits += v.Retransmits
			t.DroppedFrames += v.DroppedFrames
			t.HelloTimeouts += v.HelloTimeouts
			t.WriteTimeouts += v.WriteTimeouts
			t.StaleReplaced += v.StaleReplaced
		}
	}
	return t
}

// Spawns returns how many times node id was spawned.
func (s *Supervisor) Spawns(id int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spawns[id]
}

// PID returns the OS pid of node id's current incarnation (0 when the
// node has no live worker). Tests use it to inject raw signals —
// e.g. a SIGSTOP the supervisor did not orchestrate, so its staleness
// detector has to find the frozen worker on its own.
func (s *Supervisor) PID(id int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.workers[id]
	if w == nil || w.cmd.Process == nil {
		return 0
	}
	return w.cmd.Process.Pid
}

// Program returns the parsed program file under supervision.
func (s *Supervisor) Program() *Program { return s.pg }

// Stop kills every worker and waits for supervision to wind down.
// Idempotent.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	already := s.stopped
	if !already {
		s.stopped = true
		for _, w := range s.workers {
			if w.cmd.Process != nil {
				w.cmd.Process.Signal(syscall.SIGCONT) // unfreeze so Kill lands
				w.cmd.Process.Kill()
			}
		}
		s.checkAllExitedLocked()
	}
	s.mu.Unlock()
	if already {
		s.wg.Wait()
		return
	}

	// The supervise loop confirms every worker's exit, then we can
	// close the exit stream (every scanner has already sent).
	select {
	case <-s.allExited:
	case <-time.After(10 * time.Second):
	}
	close(s.exits)
	close(s.quitHB)
	s.wg.Wait()
}

// Fault is one entry of a seeded fault plan.
type Fault struct {
	After    time.Duration
	Target   int    // node id
	Kind     string // "kill" | "stall"
	StallFor time.Duration
}

// FaultPlanConfig parameterizes PlanFaults.
type FaultPlanConfig struct {
	Seed    uint64
	Targets []int // candidate node ids (usually the CN ranks)
	// RoleTargets, when non-empty, supersedes Targets for kills: each
	// inner slice is one role's node ids (the configurable kill-set),
	// and kill i lands in group i mod len(RoleTargets) — a round-robin
	// across the groups, so with Kills >= len(RoleTargets) every role
	// in the kill-set loses at least one node. The target inside the
	// group and the offsets stay seed-drawn. Stalls draw uniformly from
	// the union of all groups.
	RoleTargets [][]int
	Kills       int
	Stalls      int
	MinAfter    time.Duration // earliest fault (let the system warm up)
	Over        time.Duration // faults spread uniformly in [MinAfter, MinAfter+Over)
	StallFor    time.Duration // freeze length (default 1s)
}

// PlanFaults derives a process-fault schedule from a seed: the same
// seed, targets and counts always produce the same kills and stalls at
// the same offsets — the knob that makes a soak run reproducible.
func PlanFaults(cfg FaultPlanConfig) []Fault {
	groups := cfg.RoleTargets
	if len(groups) == 0 && len(cfg.Targets) > 0 {
		groups = [][]int{cfg.Targets}
	}
	var all []int
	for _, g := range groups {
		all = append(all, g...)
	}
	if len(all) == 0 || cfg.Kills+cfg.Stalls == 0 {
		return nil
	}
	if cfg.Over <= 0 {
		cfg.Over = 10 * time.Second
	}
	if cfg.StallFor <= 0 {
		cfg.StallFor = time.Second
	}
	rng := (cfg.Seed + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
	roll := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(rng>>11) / float64(1<<53)
	}
	var out []Fault
	for i := 0; i < cfg.Kills+cfg.Stalls; i++ {
		f := Fault{
			After: cfg.MinAfter + time.Duration(roll()*float64(cfg.Over)),
			Kind:  "kill",
		}
		pool := all
		if i < cfg.Kills {
			pool = groups[i%len(groups)]
		} else {
			f.Kind = "stall"
			f.StallFor = cfg.StallFor
		}
		f.Target = pool[int(roll()*float64(len(pool)))%len(pool)]
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].After < out[j].After })
	return out
}

// Inject arms the plan against the supervisor: each fault fires at its
// offset from now. Returns a stop function cancelling pending faults.
func (s *Supervisor) Inject(plan []Fault) (stop func()) {
	timers := make([]*time.Timer, 0, len(plan))
	for _, f := range plan {
		f := f
		timers = append(timers, time.AfterFunc(f.After, func() {
			switch f.Kind {
			case "kill":
				s.Kill(f.Target)
			case "stall":
				s.Stall(f.Target, f.StallFor)
			}
		}))
	}
	return func() {
		for _, t := range timers {
			t.Stop()
		}
	}
}
