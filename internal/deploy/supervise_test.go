package deploy

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"mpichv/internal/transport"
)

// TestMain doubles the test binary as a fake worker: the supervisor
// re-execs it with DEPLOY_TEST_WORKER set and gets a process with a
// scripted behavior instead of a real MPICH-V2 node. This isolates the
// supervision machinery (spawn, heartbeat, budget, restart) from the
// protocol stack.
func TestMain(m *testing.M) {
	switch os.Getenv("DEPLOY_TEST_WORKER") {
	case "":
		// Normal test run.
	case "crash":
		os.Exit(3)
	case "serve":
		fmt.Println("VRUN-TCP 1 2 3 4 5 6 7")
		fmt.Println("VRUN-LAP 1")
		fmt.Println(DoneMarker)
		for {
			fmt.Printf("%s %d\n", HBMarker, time.Now().UnixMilli())
			time.Sleep(20 * time.Millisecond)
		}
	case "mute":
		// One heartbeat, then silence while staying alive: the
		// half-dead worker only a staleness detector can catch.
		fmt.Printf("%s %d\n", HBMarker, time.Now().UnixMilli())
		select {}
	case "mixed":
		// Role-aware fake: computing nodes finalize immediately,
		// services idle under heartbeats; a restarted service announces
		// its rejoin the way a real one does after WAL replay + resync.
		id, _ := strconv.Atoi(os.Getenv("MPICHV_SERVE"))
		if id < ELID {
			fmt.Println("VRUN-TCP 1 2 3 4 5 6 7")
			fmt.Println("VRUN-LAP 1")
			fmt.Println(DoneMarker)
		} else if os.Getenv("MPICHV_RESTARTED") == "1" {
			role := RoleEL
			switch {
			case id >= SchedID:
				role = RoleSched
			case id >= CSID:
				role = RoleCS
			}
			fmt.Printf("%s %s\n", RejoinMarker, role)
		}
		for {
			fmt.Printf("%s %d\n", HBMarker, time.Now().UnixMilli())
			time.Sleep(20 * time.Millisecond)
		}
	case "crash-service":
		// Computing nodes are healthy; every service crash-loops — the
		// shape that must exhaust a *service* node's restart budget.
		if id, _ := strconv.Atoi(os.Getenv("MPICHV_SERVE")); id >= ELID {
			os.Exit(3)
		}
		fmt.Println(DoneMarker)
		for {
			fmt.Printf("%s %d\n", HBMarker, time.Now().UnixMilli())
			time.Sleep(20 * time.Millisecond)
		}
	}
	os.Exit(m.Run())
}

// fakeProgramSvc writes a program file with a configurable service
// plane: els event-logger replicas, css checkpoint servers, optionally
// a scheduler, and cns computing nodes.
func fakeProgramSvc(t *testing.T, els, css int, sched bool, cns int) string {
	t.Helper()
	var b strings.Builder
	port := 1
	for i := 0; i < els; i++ {
		fmt.Fprintf(&b, "el 127.0.0.1:%d\n", port)
		port++
	}
	for i := 0; i < css; i++ {
		fmt.Fprintf(&b, "cs 127.0.0.1:%d\n", port)
		port++
	}
	if sched {
		fmt.Fprintf(&b, "sc 127.0.0.1:%d\n", port)
		port++
	}
	for i := 0; i < cns; i++ {
		fmt.Fprintf(&b, "cn 127.0.0.1:%d\n", port)
		port++
	}
	path := filepath.Join(t.TempDir(), "fake.pg")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fakeProgram(t *testing.T, cns int) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("el 127.0.0.1:1\n")
	for i := 0; i < cns; i++ {
		fmt.Fprintf(&b, "cn 127.0.0.1:%d\n", 2+i)
	}
	path := filepath.Join(t.TempDir(), "fake.pg")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func testExe(t *testing.T) string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

// TestSupervisorBudgetExhaustion: a worker that always crashes must be
// respawned exactly MaxSpawn times under the backoff, then supervision
// gives up with an error instead of spinning forever.
func TestSupervisorBudgetExhaustion(t *testing.T) {
	sup, err := StartSupervisor(SupervisorConfig{
		ProgramPath: fakeProgram(t, 1),
		Exe:         testExe(t),
		AppName:     "none",
		MaxSpawn:    3,
		Restart:     transport.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		ExtraEnv:    []string{"DEPLOY_TEST_WORKER=crash"},
		Log:         testWriter{t},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	select {
	case <-sup.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("supervisor never gave up on the crash-looping worker")
	}
	if sup.Err() == nil {
		t.Fatal("budget exhaustion did not surface as an error")
	}
	gaveUp := false
	for _, ev := range sup.Events() {
		if ev.Kind == "give-up" {
			gaveUp = true
		}
	}
	if !gaveUp {
		t.Fatalf("no give-up event in %+v", sup.Events())
	}
}

// TestSupervisorDoneAndCounters: healthy workers drive the run to Done;
// the lap and TCP counter lines fold into the supervisor's record, an
// injected kill triggers exactly one respawn, and teardown leaks no
// goroutines.
func TestSupervisorDoneAndCounters(t *testing.T) {
	before := runtime.NumGoroutine()
	sup, err := StartSupervisor(SupervisorConfig{
		ProgramPath: fakeProgram(t, 2),
		Exe:         testExe(t),
		AppName:     "none",
		Template:    ServeOpts{Heartbeat: 50 * time.Millisecond},
		Restart:     transport.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		ExtraEnv:    []string{"DEPLOY_TEST_WORKER=serve"},
		Log:         testWriter{t},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sup.Done():
	case <-time.After(15 * time.Second):
		sup.Stop()
		t.Fatal("healthy workers never reached Done")
	}
	if sup.Err() != nil {
		t.Fatalf("unexpected supervision error: %v", sup.Err())
	}

	// Inject a kill: rank 0's replacement must come up (restarted).
	if !sup.Kill(0) {
		t.Fatal("Kill(0) found no worker")
	}
	deadline := time.Now().Add(10 * time.Second)
	for sup.Spawns(0) < 2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := sup.Spawns(0); got != 2 {
		t.Fatalf("spawns(0) = %d after kill, want 2", got)
	}

	if laps := sup.Laps(); len(laps) < 2 { // one per initial worker at least
		t.Fatalf("laps = %v, want one per worker", laps)
	}
	tot := sup.TCPTotals()
	if tot.Dials < 2 || tot.StaleReplaced < 2 {
		t.Fatalf("TCP totals not folded per incarnation: %+v", tot)
	}

	sup.Stop()
	waitGoroutines(t, before)
}

// TestSupervisorHeartbeatStaleness: a live-but-silent worker is killed
// by the staleness detector and respawned — §4.7 fault detection when
// the socket never disconnects.
func TestSupervisorHeartbeatStaleness(t *testing.T) {
	sup, err := StartSupervisor(SupervisorConfig{
		ProgramPath: fakeProgram(t, 1),
		Exe:         testExe(t),
		AppName:     "none",
		Template:    ServeOpts{Heartbeat: 40 * time.Millisecond},
		MaxSpawn:    2,
		Restart:     transport.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		ExtraEnv:    []string{"DEPLOY_TEST_WORKER=mute"},
		Log:         testWriter{t},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		stale := false
		for _, ev := range sup.Events() {
			if ev.Kind == "hb-stale" {
				stale = true
			}
		}
		if stale && sup.Spawns(0) >= 2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("staleness detector never fired: %+v", sup.Events())
}

// TestPlanFaultsDeterministic: the fault schedule is a pure function of
// the seed.
func TestPlanFaultsDeterministic(t *testing.T) {
	cfg := FaultPlanConfig{Seed: 7, Targets: []int{0, 1, 2}, Kills: 3, Stalls: 2}
	a := PlanFaults(cfg)
	b := PlanFaults(cfg)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("plan sizes %d/%d, want 5", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg.Seed = 8
	c := PlanFaults(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical plans")
	}
	kills := 0
	for _, f := range a {
		if f.Kind == "kill" {
			kills++
		}
	}
	if kills != 3 {
		t.Fatalf("plan has %d kills, want 3", kills)
	}
}

// TestServeOptsEnvRoundTrip: every knob survives the environment
// encoding the supervisor hands its workers.
func TestServeOptsEnvRoundTrip(t *testing.T) {
	o := ServeOpts{
		ID:             2,
		AppName:        "soakring",
		Restarted:      true,
		Epoch:          time.Unix(0, 1234567890),
		Incarnation:    3,
		TraceDir:       "/tmp/tr",
		WALDir:         "/tmp/wal",
		DiskFaultEvery: 5,
		DiskFaultSeed:  99,
		Heartbeat:      150 * time.Millisecond,
		ELHighWater:    512,
		ELLowWater:     128,
		PullTimeout:    250 * time.Millisecond,
	}
	env := o.Env("/tmp/p.pg")
	want := []string{
		"MPICHV_SERVE=2", "MPICHV_PG=/tmp/p.pg", "MPICHV_APP=soakring",
		"MPICHV_RESTARTED=1", "MPICHV_EPOCH=1234567890", "MPICHV_INC=3",
		"MPICHV_TRACEDIR=/tmp/tr", "MPICHV_WALDIR=/tmp/wal",
		"MPICHV_DISK_EVERY=5", "MPICHV_DISK_SEED=99",
		"MPICHV_HB_MS=150", "MPICHV_EL_HIGH=512", "MPICHV_EL_LOW=128",
		"MPICHV_PULL_MS=250",
	}
	got := strings.Join(env, "\n")
	for _, kv := range want {
		if !strings.Contains(got, kv) {
			t.Errorf("env missing %q:\n%s", kv, got)
		}
	}
}

// TestParseBindField: the optional third program-file field becomes the
// node's bind address (proxy interposition), and the advertised address
// map is unchanged by it.
func TestParseBindField(t *testing.T) {
	src := "el 127.0.0.1:9000\ncn 127.0.0.1:9100 127.0.0.1:9200\ncn 127.0.0.1:9101\n"
	pg, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	cns := pg.CNs()
	if cns[0].Bind != "127.0.0.1:9200" || cns[1].Bind != "" {
		t.Fatalf("binds = %q, %q", cns[0].Bind, cns[1].Bind)
	}
	if m := pg.AddrMap(); m[0] != "127.0.0.1:9100" {
		t.Fatalf("advertised addr = %q, want the proxy front", m[0])
	}
}

func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestSupervisorServiceKillRespawnRejoin: killing each service role —
// an EL replica, a CS mirror, the scheduler — must produce a respawn
// carrying the recovery flag, and the restarted service must announce
// its rejoin (the marker a real service emits once its WAL is replayed
// and, for replicated roles, anti-entropy resync is complete).
func TestSupervisorServiceKillRespawnRejoin(t *testing.T) {
	sup, err := StartSupervisor(SupervisorConfig{
		ProgramPath: fakeProgramSvc(t, 1, 1, true, 1),
		Exe:         testExe(t),
		AppName:     "none",
		MaxSpawn:    8,
		Restart:     transport.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		ExtraEnv:    []string{"DEPLOY_TEST_WORKER=mixed"},
		Log:         testWriter{t},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	select {
	case <-sup.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("computing node never finalized")
	}

	for _, tc := range []struct {
		id   int
		role Role
	}{{ELID, RoleEL}, {CSID, RoleCS}, {SchedID, RoleSched}} {
		if !sup.Kill(tc.id) {
			t.Fatalf("Kill(%d) found no worker", tc.id)
		}
		deadline := time.Now().Add(10 * time.Second)
		rejoined := false
		for !rejoined && time.Now().Before(deadline) {
			for _, ev := range sup.Events() {
				if ev.Kind == "rejoin" && ev.ID == tc.id {
					if ev.Info != string(tc.role) {
						t.Fatalf("rejoin of node %d reports role %q, want %q", tc.id, ev.Info, tc.role)
					}
					rejoined = true
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
		if !rejoined {
			t.Fatalf("%s %d never rejoined after kill: %+v", tc.role, tc.id, sup.Events())
		}
		if got := sup.Spawns(tc.id); got < 2 {
			t.Fatalf("spawns(%d) = %d after kill, want >= 2", tc.id, got)
		}
	}
}

// TestSupervisorServiceBudgetExhaustion: a crash-looping *service* must
// burn its per-node restart budget and end supervision with an error,
// exactly like a crash-looping computing node.
func TestSupervisorServiceBudgetExhaustion(t *testing.T) {
	sup, err := StartSupervisor(SupervisorConfig{
		ProgramPath: fakeProgramSvc(t, 1, 0, false, 1),
		Exe:         testExe(t),
		AppName:     "none",
		MaxSpawn:    3,
		Restart:     transport.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		ExtraEnv:    []string{"DEPLOY_TEST_WORKER=crash-service"},
		Log:         testWriter{t},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for _, ev := range sup.Events() {
			if ev.Kind == "give-up" {
				if ev.ID < ELID {
					t.Fatalf("give-up on node %d, want a service id", ev.ID)
				}
				if sup.Err() == nil {
					t.Fatal("give-up did not surface as a supervision error")
				}
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("service budget exhaustion never surfaced: %+v", sup.Events())
}

// TestSupervisorELRawSIGSTOPStaleness: an EL replica frozen by a raw
// SIGSTOP (not an orchestrated stall, so the supervisor has no advance
// notice) stops heartbeating; the staleness detector must declare it
// crashed, kill it and respawn a replacement.
func TestSupervisorELRawSIGSTOPStaleness(t *testing.T) {
	sup, err := StartSupervisor(SupervisorConfig{
		ProgramPath: fakeProgramSvc(t, 1, 0, false, 1),
		Exe:         testExe(t),
		AppName:     "none",
		Template:    ServeOpts{Heartbeat: 40 * time.Millisecond},
		MaxSpawn:    4,
		Restart:     transport.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		ExtraEnv:    []string{"DEPLOY_TEST_WORKER=mixed"},
		Log:         testWriter{t},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	pid := sup.PID(ELID)
	if pid == 0 {
		t.Fatal("no live EL worker")
	}
	if err := syscall.Kill(pid, syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		stale := false
		for _, ev := range sup.Events() {
			if ev.Kind == "hb-stale" && ev.ID == ELID {
				stale = true
			}
		}
		if stale && sup.Spawns(ELID) >= 2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("staleness detector never caught the frozen EL: %+v", sup.Events())
}

// TestPlanFaultsRoleRoundRobin: with a role kill-set, kills round-robin
// across the groups — Kills >= groups guarantees every role is hit —
// while stalls draw from the union, and the schedule stays a pure
// function of the seed.
func TestPlanFaultsRoleRoundRobin(t *testing.T) {
	groups := [][]int{{0, 1, 2}, {ELID, ELID + 1, ELID + 2}, {CSID, CSID + 1}, {SchedID}}
	cfg := FaultPlanConfig{Seed: 11, RoleTargets: groups, Kills: 4, Stalls: 3,
		MinAfter: time.Second, Over: 4 * time.Second}
	groupOf := func(id int) int {
		for gi, g := range groups {
			for _, t := range g {
				if t == id {
					return gi
				}
			}
		}
		return -1
	}
	plan := PlanFaults(cfg)
	if len(plan) != 7 {
		t.Fatalf("plan has %d faults, want 7", len(plan))
	}
	hit := make(map[int]int)
	for _, f := range plan {
		gi := groupOf(f.Target)
		if gi < 0 {
			t.Fatalf("fault targets unknown node %d", f.Target)
		}
		if f.Kind == "kill" {
			hit[gi]++
		}
	}
	for gi := range groups {
		if hit[gi] != 1 {
			t.Fatalf("group %d got %d kills, want exactly 1 (round-robin): %+v", gi, hit[gi], plan)
		}
	}
	b := PlanFaults(cfg)
	for i := range plan {
		if plan[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

// testWriter routes supervisor logs into the test log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}
