package deploy

import (
	"strings"
	"testing"
)

// TestPhaseSeeds: phase 0 runs under the base seed itself (a one-phase
// series is the plain soak), later phases roll distinct seeds, and the
// whole sequence is a pure function of the base.
func TestPhaseSeeds(t *testing.T) {
	a := PhaseSeeds(42, 4)
	b := PhaseSeeds(42, 4)
	if a[0] != 42 {
		t.Fatalf("phase 0 seed = %d, want the base seed", a[0])
	}
	seen := make(map[uint64]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d diverged between identical calls", i)
		}
		if seen[a[i]] {
			t.Fatalf("duplicate phase seed %d", a[i])
		}
		seen[a[i]] = true
	}
	if c := PhaseSeeds(43, 4); c[1] == a[1] {
		t.Fatal("different base seeds rolled the same phase seed")
	}
}

// TestBaselineGoodputFormats: the regression gate reads both committed
// report shapes — the rolling-seed series (goodput_lps) and the
// pre-series single report (recomputed from laps_done/duration_ms).
func TestBaselineGoodputFormats(t *testing.T) {
	series := []byte(`{"base_seed":42,"goodput_lps":48.2,"laps_done":1820,"duration_ms":37777}`)
	if got, err := BaselineGoodput(series); err != nil || got != 48.2 {
		t.Fatalf("series baseline = %v, %v; want 48.2", got, err)
	}
	old := []byte(`{"seed":42,"laps_done":2319,"duration_ms":60191}`)
	got, err := BaselineGoodput(old)
	if err != nil || got < 38.4 || got > 38.6 {
		t.Fatalf("old-format baseline = %v, %v; want ~38.5", got, err)
	}
	if _, err := BaselineGoodput([]byte(`{"seed":42}`)); err == nil {
		t.Fatal("baseline with no goodput accepted")
	}
	if _, err := BaselineGoodput([]byte(`not json`)); err == nil {
		t.Fatal("malformed baseline accepted")
	}
}

// TestCheckGoodputRegression: drops beyond the tolerance fail, drops
// within it and improvements pass.
func TestCheckGoodputRegression(t *testing.T) {
	base := []byte(`{"goodput_lps":50.0}`)
	if err := CheckGoodputRegression(45, base, 0.2); err != nil {
		t.Fatalf("10%% drop rejected at 20%% tolerance: %v", err)
	}
	if err := CheckGoodputRegression(60, base, 0.2); err != nil {
		t.Fatalf("improvement rejected: %v", err)
	}
	err := CheckGoodputRegression(39, base, 0.2)
	if err == nil {
		t.Fatal("22% drop passed at 20% tolerance")
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Fatalf("unexpected error: %v", err)
	}
}
