package deploy

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildVrun compiles cmd/vrun into a temp dir once per test run.
func buildVrun(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "vrun")
	cmd := exec.Command("go", "build", "-o", exe, "mpichv/cmd/vrun")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building vrun: %v\n%s", err, out)
	}
	return exe
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func writeProgram(t *testing.T, withCkpt bool, cns int) string {
	t.Helper()
	n := 1 + cns
	if withCkpt {
		n += 2
	}
	addrs := freeAddrs(t, n)
	var b strings.Builder
	i := 0
	fmt.Fprintf(&b, "el %s\n", addrs[i])
	i++
	if withCkpt {
		fmt.Fprintf(&b, "cs %s\n", addrs[i])
		i++
		fmt.Fprintf(&b, "sc %s\n", addrs[i])
		i++
	}
	for ; i < n; i++ {
		fmt.Fprintf(&b, "cn %s\n", addrs[i])
	}
	path := filepath.Join(t.TempDir(), "program.txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestVrunEndToEnd launches a complete system as OS processes and runs
// the token ring to completion.
func TestVrunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in short mode")
	}
	exe := buildVrun(t)
	pg := writeProgram(t, false, 3)
	var out bytes.Buffer
	cmd := exec.Command(exe, "-pg", pg, "-app", "tokenring")
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("vrun failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all ranks finalized") {
		t.Errorf("missing completion line:\n%s", out.String())
	}
}

// TestVrunSurvivesKill9 kills a live worker with SIGKILL mid-run; the
// launcher must re-launch it with the recovery flag and the run must
// still complete and verify.
func TestVrunSurvivesKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in short mode")
	}
	exe := buildVrun(t)
	pg := writeProgram(t, false, 3)
	var out bytes.Buffer
	cmd := exec.Command(exe, "-pg", pg, "-app", "tokenring")
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	})

	// Find the worker serving rank 1 and SIGKILL it early in the run
	// (the ring holds the token 50 ms per hop, so the run lasts about
	// a second).
	var victim int
	for i := 0; i < 40 && victim == 0; i++ {
		time.Sleep(25 * time.Millisecond)
		victim = findWorkerPID(t, pg, 1)
	}
	if victim == 0 {
		t.Fatalf("no rank-1 worker found\n%s", out.String())
	}
	time.Sleep(300 * time.Millisecond) // let the ring make some progress
	if err := syscall.Kill(victim, syscall.SIGKILL); err != nil {
		t.Fatalf("kill: %v", err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("vrun failed after kill: %v\n%s", err, out.String())
		}
	case <-time.After(120 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("vrun did not finish after kill\n%s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "re-launching with recovery") {
		t.Errorf("launcher never recovered a worker:\n%s", s)
	}
	if !strings.Contains(s, "all ranks finalized") {
		t.Errorf("run did not complete:\n%s", s)
	}
}

// findWorkerPID scans /proc for a vrun process serving the given rank of
// the program file.
func findWorkerPID(t *testing.T, pgPath string, rank int) int {
	t.Helper()
	entries, err := os.ReadDir("/proc")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		pid := 0
		if _, err := fmt.Sscanf(e.Name(), "%d", &pid); err != nil || pid <= 0 {
			continue
		}
		raw, err := os.ReadFile(filepath.Join("/proc", e.Name(), "cmdline"))
		if err != nil {
			continue
		}
		args := strings.Split(string(raw), "\x00")
		hasServe, hasPg := false, false
		for i, a := range args {
			if a == "-serve" && i+1 < len(args) && args[i+1] == fmt.Sprint(rank) {
				hasServe = true
			}
			if a == "-pg" && i+1 < len(args) && args[i+1] == pgPath {
				hasPg = true
			}
		}
		if hasServe && hasPg {
			return pid
		}
	}
	return 0
}
