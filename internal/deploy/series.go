package deploy

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// PhaseSeeds derives n per-phase seeds from a base seed: the first
// phase runs under the base seed itself (a one-phase series is exactly
// the plain soak), later phases roll fresh seeds off it with splitmix64
// — statistically independent streams, yet the whole series replays
// from the one base number. Each phase therefore draws its own fault
// schedule, chaos variates and disk-fault cadence while staying
// reproducible.
func PhaseSeeds(base uint64, n int) []uint64 {
	seeds := make([]uint64, n)
	seeds[0] = base
	for i := 1; i < n; i++ {
		z := base + uint64(i)*0x9e3779b97f4a7c15
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		seeds[i] = z
	}
	return seeds
}

// SoakSeries is the outcome of a rolling-seed soak: several full
// kill/audit/recover phases back to back, each under a fresh seed (so
// each phase draws a fresh fault mix), sharing one goodput ledger.
type SoakSeries struct {
	BaseSeed   uint64   `json:"base_seed"`
	Seeds      []uint64 `json:"seeds"`
	OK         bool     `json:"ok"`
	Failures   []string `json:"failures,omitempty"`
	DurationMS int64    `json:"duration_ms"`

	LapsDone   int            `json:"laps_done"`
	GoodputLPS float64        `json:"goodput_lps"` // laps per second across all phases
	Kills      int            `json:"kills"`
	RoleKills  map[string]int `json:"role_kills,omitempty"`
	Respawns   int            `json:"respawns"`

	Phases []SoakReport `json:"phases"`
}

// RunSoakSeries executes `phases` consecutive soak runs, rolling the
// seed between them with PhaseSeeds. Each phase is a complete
// deployment with its own fault schedule and its own final audits; the
// series fails if any phase fails. cfg.Seed is the base seed; cfg.Dir,
// when set, gets one phase-<i> subdirectory per phase.
func RunSoakSeries(cfg SoakConfig, phases int) (*SoakSeries, error) {
	if phases <= 0 {
		phases = 1
	}
	ser := &SoakSeries{
		BaseSeed:  cfg.Seed,
		Seeds:     PhaseSeeds(cfg.Seed, phases),
		RoleKills: make(map[string]int),
	}
	start := time.Now()
	for i, seed := range ser.Seeds {
		pc := cfg
		pc.Seed = seed
		if cfg.Dir != "" {
			pc.Dir = filepath.Join(cfg.Dir, fmt.Sprintf("phase-%d", i))
			if err := os.MkdirAll(pc.Dir, 0o755); err != nil {
				return nil, err
			}
		}
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "soak: phase %d/%d seed=%d\n", i+1, phases, seed)
		}
		rep, err := RunSoak(pc)
		if err != nil {
			return nil, fmt.Errorf("soak: phase %d (seed %d): %w", i, seed, err)
		}
		ser.Phases = append(ser.Phases, *rep)
		ser.LapsDone += rep.LapsDone
		ser.Kills += rep.Kills
		ser.Respawns += rep.Respawns
		for role, n := range rep.RoleKills {
			ser.RoleKills[role] += n
		}
		if !rep.OK {
			for _, f := range rep.Failures {
				ser.Failures = append(ser.Failures, fmt.Sprintf("phase %d (seed %d): %s", i, seed, f))
			}
		}
	}
	ser.DurationMS = time.Since(start).Milliseconds()
	if ser.DurationMS > 0 {
		ser.GoodputLPS = float64(ser.LapsDone) / (float64(ser.DurationMS) / 1000)
	}
	ser.OK = len(ser.Failures) == 0
	return ser, nil
}

// BaselineGoodput extracts the goodput (laps per second) from a
// committed BENCH_soak.json, accepting both report shapes: the current
// SoakSeries form and the pre-series single SoakReport form (which has
// no goodput_lps field — it is recomputed from laps_done/duration_ms).
func BaselineGoodput(data []byte) (float64, error) {
	var probe struct {
		GoodputLPS float64 `json:"goodput_lps"`
		LapsDone   int     `json:"laps_done"`
		DurationMS int64   `json:"duration_ms"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	if probe.GoodputLPS > 0 {
		return probe.GoodputLPS, nil
	}
	if probe.LapsDone > 0 && probe.DurationMS > 0 {
		return float64(probe.LapsDone) / (float64(probe.DurationMS) / 1000), nil
	}
	return 0, fmt.Errorf("baseline: no usable goodput (laps_done=%d duration_ms=%d)", probe.LapsDone, probe.DurationMS)
}

// CheckGoodputRegression compares a fresh run's goodput against the
// committed baseline and errors when it dropped by more than tol
// (fractional; 0.2 = 20%). Faster-than-baseline always passes — the
// gate catches decay, not improvement.
func CheckGoodputRegression(current float64, baseline []byte, tol float64) error {
	base, err := BaselineGoodput(baseline)
	if err != nil {
		return err
	}
	if tol <= 0 {
		tol = 0.2
	}
	floor := base * (1 - tol)
	if current < floor {
		return fmt.Errorf("goodput regression: %.1f laps/s vs baseline %.1f (floor %.1f at %.0f%% tolerance)",
			current, base, floor, tol*100)
	}
	return nil
}
