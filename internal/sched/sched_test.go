package sched

import (
	"testing"
	"testing/quick"
	"time"

	"mpichv/internal/netsim"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

func statuses(ranks ...int) []wire.NodeStatus {
	out := make([]wire.NodeStatus, len(ranks))
	for i, r := range ranks {
		out[i] = wire.NodeStatus{Rank: r, SentBytes: 10, RecvBytes: 10}
	}
	return out
}

func TestRoundRobinCycles(t *testing.T) {
	rr := &RoundRobin{}
	var picks []int
	for i := 0; i < 6; i++ {
		picks = append(picks, rr.Next(statuses(0, 1, 2)))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("picks = %v, want %v", picks, want)
		}
	}
}

func TestRoundRobinEmpty(t *testing.T) {
	if n := (&RoundRobin{}).Next(nil); n != -1 {
		t.Errorf("Next(nil) = %d", n)
	}
	if n := (&Adaptive{}).Next(nil); n != -1 {
		t.Errorf("adaptive Next(nil) = %d", n)
	}
}

func TestAdaptivePrefersHighRatio(t *testing.T) {
	a := &Adaptive{}
	st := []wire.NodeStatus{
		{Rank: 0, SentBytes: 100, RecvBytes: 10}, // ratio 0.1
		{Rank: 1, SentBytes: 10, RecvBytes: 100}, // ratio 10
		{Rank: 2, SentBytes: 50, RecvBytes: 50},  // ratio 1
	}
	if got := a.Next(st); got != 1 {
		t.Errorf("adaptive picked %d, want 1", got)
	}
}

func TestAdaptiveRotatesOnTies(t *testing.T) {
	a := &Adaptive{}
	seen := map[int]int{}
	for i := 0; i < 9; i++ {
		seen[a.Next(statuses(0, 1, 2))]++
	}
	for r := 0; r < 3; r++ {
		if seen[r] != 3 {
			t.Fatalf("unfair tie rotation: %v", seen)
		}
	}
}

func TestAdaptiveZeroSentUsesRecv(t *testing.T) {
	a := &Adaptive{}
	st := []wire.NodeStatus{
		{Rank: 0, SentBytes: 1000, RecvBytes: 0}, // the broadcaster
		{Rank: 1, SentBytes: 0, RecvBytes: 500},  // a receiver
	}
	if got := a.Next(st); got != 1 {
		t.Errorf("adaptive picked the broadcaster (%d)", got)
	}
}

func TestRandomDeterministicAndInRange(t *testing.T) {
	a, b := NewRandom(7), NewRandom(7)
	for i := 0; i < 50; i++ {
		x, y := a.Next(statuses(0, 1, 2, 3)), b.Next(statuses(0, 1, 2, 3))
		if x != y {
			t.Fatal("same seed diverged")
		}
		if x < 0 || x > 3 {
			t.Fatalf("pick %d out of range", x)
		}
	}
}

func TestPropertyPoliciesPickValidRanks(t *testing.T) {
	f := func(sent, recv []uint32) bool {
		n := len(sent)
		if len(recv) < n {
			n = len(recv)
		}
		if n == 0 || n > 32 {
			return true
		}
		st := make([]wire.NodeStatus, n)
		for i := 0; i < n; i++ {
			st[i] = wire.NodeStatus{Rank: i, SentBytes: uint64(sent[i]), RecvBytes: uint64(recv[i])}
		}
		for _, p := range []Policy{&RoundRobin{}, &Adaptive{}, NewRandom(1)} {
			got := p.Next(append([]wire.NodeStatus(nil), st...))
			if got < 0 || got >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatorAdaptiveNeverWorse(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		for _, sc := range Schemes() {
			rr := Simulate(sc, &RoundRobin{}, n, 2000, 20)
			ad := Simulate(sc, &Adaptive{}, n, 2000, 20)
			if ad.MeanCkptBytes > rr.MeanCkptBytes*1.01 {
				t.Errorf("n=%d %s: adaptive ckpt %.0f > round-robin %.0f",
					n, sc.Name, ad.MeanCkptBytes, rr.MeanCkptBytes)
			}
		}
	}
}

func TestSimulatorBroadcastAdvantageGrowsWithN(t *testing.T) {
	// Paper: "up to n times better ... for asynchronous broadcast".
	gain := func(n int) float64 {
		var bcast Scheme
		for _, sc := range Schemes() {
			if sc.Name == "broadcast" {
				bcast = sc
			}
		}
		rr := Simulate(bcast, &RoundRobin{}, n, 2000, 20)
		ad := Simulate(bcast, &Adaptive{}, n, 2000, 20)
		if ad.MeanCkptBytes == 0 {
			return rr.MeanCkptBytes // adaptive ships ~nothing: report rr as the gain scale
		}
		return rr.MeanCkptBytes / ad.MeanCkptBytes
	}
	if g8, g16 := gain(8), gain(16); g16 <= g8 {
		t.Errorf("broadcast advantage should grow with n: n=8 → %.1f, n=16 → %.1f", g8, g16)
	}
}

// TestSchedulerOrdersCheckpoints runs the real scheduler actor against
// fake daemons on a simulated fabric.
func TestSchedulerOrdersCheckpoints(t *testing.T) {
	sim := vtime.NewSim()
	orders := make(map[int]int)
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		// Fake daemons: answer polls, count orders.
		for r := 0; r < 3; r++ {
			r := r
			ep := fab.Attach(r, "fake")
			sim.Go("fake-daemon", func() {
				for {
					f, ok := ep.Inbox().Recv()
					if !ok {
						return
					}
					switch f.Kind {
					case wire.KSchedPoll:
						ep.Send(f.From, wire.KSchedStat, wire.EncodeStatus(wire.NodeStatus{
							Rank: r, SentBytes: 10, RecvBytes: 10,
						}))
					case wire.KCkptOrder:
						orders[r]++
					}
				}
			})
		}
		s := Start(sim, fab, Config{
			Node:   1002,
			Ranks:  []int{0, 1, 2},
			Policy: &RoundRobin{},
			Period: 10 * time.Millisecond,
		})
		sim.Sleep(100 * time.Millisecond)
		if s.Orders < 6 {
			t.Errorf("scheduler issued only %d orders in 100ms at 10ms period", s.Orders)
		}
	})
	total := 0
	for r, n := range orders {
		if n == 0 {
			t.Errorf("rank %d never ordered to checkpoint", r)
		}
		total += n
	}
	if total == 0 {
		t.Fatal("no checkpoint orders delivered")
	}
}
