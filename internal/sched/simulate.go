package sched

import "mpichv/internal/wire"

// Policy simulator (§4.6.2): the paper compares round-robin and
// adaptive checkpoint scheduling "with classical communication schemes
// (point to point, synchronous all to all, broadcasts and reduces)" and
// reports that adaptive is never worse and up to n times better for the
// asynchronous broadcast.
//
// The model: at every tick each node sends bytes according to the
// scheme; a sender's log grows by what it sends. Every period, the
// policy checkpoints one node; checkpointing node j lets every sender
// garbage-collect the bytes j has received so far (§4.6.1). The figure
// of merit is the time-averaged total log occupancy — the storage (and
// checkpoint-traffic) pressure the scheduling is supposed to relieve.

// Scheme describes per-tick traffic: bytes sent from node i to node j.
type Scheme struct {
	Name string
	Rate func(i, j, n int) float64
}

// Schemes returns the paper's four classical communication schemes.
func Schemes() []Scheme {
	return []Scheme{
		{Name: "point-to-point", Rate: func(i, j, n int) float64 {
			// Neighbour pairs: i ↔ i^1.
			if j == i^1 && j < n {
				return 1
			}
			return 0
		}},
		{Name: "all-to-all", Rate: func(i, j, n int) float64 {
			if i != j {
				return 1
			}
			return 0
		}},
		{Name: "broadcast", Rate: func(i, j, n int) float64 {
			// Asynchronous broadcast: node 0 streams to everyone.
			if i == 0 && j != 0 {
				return 1
			}
			return 0
		}},
		{Name: "reduce", Rate: func(i, j, n int) float64 {
			// Everyone streams to node 0.
			if j == 0 && i != 0 {
				return 1
			}
			return 0
		}},
	}
}

// SimResult is the outcome of one policy/scheme simulation.
type SimResult struct {
	Scheme string
	Policy string
	// MeanLogBytes is the time-averaged total logged bytes across all
	// nodes.
	MeanLogBytes float64
	// PeakLogBytes is the maximum total occupancy seen.
	PeakLogBytes float64
	// MeanCkptBytes is the mean checkpoint image size shipped to the
	// checkpoint server (the node state plus its logged payloads) —
	// the "bandwidth utilization" the paper's comparison targets:
	// checkpoint traffic competes with application traffic.
	MeanCkptBytes float64
}

// Simulate runs the occupancy model for n nodes over the given number of
// ticks, checkpointing one node every period ticks according to the
// policy.
func Simulate(scheme Scheme, policy Policy, n, ticks, period int) SimResult {
	// sentTo[i][j]: bytes i has sent to j since j's last checkpoint
	// (still occupying i's log).
	sentTo := make([][]float64, n)
	for i := range sentTo {
		sentTo[i] = make([]float64, n)
	}
	totalSent := make([]float64, n)
	totalRecv := make([]float64, n)

	var sumOcc, peak, ckptBytes float64
	var ckpts int
	for t := 1; t <= ticks; t++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				r := scheme.Rate(i, j, n)
				if r > 0 {
					sentTo[i][j] += r
					totalSent[i] += r
					totalRecv[j] += r
				}
			}
		}
		if t%period == 0 {
			statuses := make([]wire.NodeStatus, n)
			for i := 0; i < n; i++ {
				var logBytes float64
				for j := 0; j < n; j++ {
					logBytes += sentTo[i][j]
				}
				statuses[i] = wire.NodeStatus{
					Rank:      i,
					LogBytes:  uint64(logBytes),
					SentBytes: uint64(totalSent[i]),
					RecvBytes: uint64(totalRecv[i]),
				}
			}
			if target := policy.Next(statuses); target >= 0 {
				// The image carries the target's own log (§4.1: the
				// SAVED copies are part of the checkpoint).
				var img float64
				for j := 0; j < n; j++ {
					img += sentTo[target][j]
				}
				ckptBytes += img
				ckpts++
				// Everything delivered to the target so far can be
				// collected on its senders.
				for i := 0; i < n; i++ {
					sentTo[i][target] = 0
				}
				// Status counters are "since last checkpoint".
				totalSent[target], totalRecv[target] = 0, 0
			}
		}
		var occ float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				occ += sentTo[i][j]
			}
		}
		sumOcc += occ
		if occ > peak {
			peak = occ
		}
	}
	res := SimResult{
		Scheme:       scheme.Name,
		Policy:       policy.Name(),
		MeanLogBytes: sumOcc / float64(ticks),
		PeakLogBytes: peak,
	}
	if ckpts > 0 {
		res.MeanCkptBytes = ckptBytes / float64(ckpts)
	}
	return res
}

// ComparePolicies runs round-robin and adaptive on every scheme.
func ComparePolicies(n, ticks, period int) []SimResult {
	var out []SimResult
	for _, sc := range Schemes() {
		out = append(out, Simulate(sc, &RoundRobin{}, n, ticks, period))
		out = append(out, Simulate(sc, &Adaptive{}, n, ticks, period))
	}
	return out
}
