// Package sched implements the checkpoint scheduler of §4.6.2. It
// periodically polls the communication daemons for their status (amount
// of logged messages, traffic ratio) and orders checkpoints according to
// a policy. The paper provides two policies — round-robin and an
// adaptive one driven by the received/sent ratio — plus a random policy
// used in the faulty-execution experiment (§5.4), and compares the first
// two with a simulator (see simulate.go).
package sched

import (
	"sort"
	"time"

	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// Policy chooses the next node to checkpoint from the collected
// statuses.
type Policy interface {
	Name() string
	Next(status []wire.NodeStatus) int
}

// RoundRobin cycles through the ranks regardless of status — no
// communication needed in principle, but unfair under asymmetric
// communication schemes.
type RoundRobin struct{ pos int }

// Name implements Policy.
func (r *RoundRobin) Name() string { return "round-robin" }

// Next implements Policy.
func (r *RoundRobin) Next(status []wire.NodeStatus) int {
	if len(status) == 0 {
		return -1
	}
	sort.Slice(status, func(i, j int) bool { return status[i].Rank < status[j].Rank })
	n := status[r.pos%len(status)].Rank
	r.pos++
	return n
}

// Adaptive orders checkpoints by decreasing received/sent ratio
// (§4.6.2): a node that received much relative to what it sent releases
// the most logged bytes on other nodes when it checkpoints ("computes a
// scheduling following a decreasing order of this ratio across the
// nodes"). Equal ratios — symmetric schemes — are broken by the least
// recently checkpointed node, which reduces to a fair rotation.
type Adaptive struct {
	seq  int
	last map[int]int
}

// Name implements Policy.
func (*Adaptive) Name() string { return "adaptive" }

// Next implements Policy.
func (a *Adaptive) Next(status []wire.NodeStatus) int {
	if len(status) == 0 {
		return -1
	}
	if a.last == nil {
		a.last = make(map[int]int)
	}
	sort.Slice(status, func(i, j int) bool { return status[i].Rank < status[j].Rank })
	best := -1
	var bestRatio float64
	var bestLast int
	for _, st := range status {
		r := ratio(st)
		l := a.last[st.Rank]
		if best < 0 || r > bestRatio || (r == bestRatio && l < bestLast) {
			best, bestRatio, bestLast = st.Rank, r, l
		}
	}
	a.seq++
	a.last[best] = a.seq
	return best
}

func ratio(st wire.NodeStatus) float64 {
	if st.SentBytes == 0 {
		return float64(st.RecvBytes)
	}
	return float64(st.RecvBytes) / float64(st.SentBytes)
}

// Random picks a uniformly random node, with a deterministic generator —
// the policy used by the paper's fault-injection run ("a scheduling
// policy randomly selecting the node to checkpoint").
type Random struct {
	state uint64
}

// NewRandom returns a Random policy with the given seed.
func NewRandom(seed uint64) *Random { return &Random{state: seed*2862933555777941757 + 3037000493} }

// Name implements Policy.
func (*Random) Name() string { return "random" }

// Next implements Policy.
func (r *Random) Next(status []wire.NodeStatus) int {
	if len(status) == 0 {
		return -1
	}
	sort.Slice(status, func(i, j int) bool { return status[i].Rank < status[j].Rank })
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return status[(r.state>>33)%uint64(len(status))].Rank
}

// Config parameterizes a Scheduler.
type Config struct {
	Node   int   // this scheduler's node id
	Ranks  []int // computing nodes to manage
	Policy Policy
	// Period between scheduling rounds; the faulty-execution
	// experiment uses a tiny period so "the system is always
	// checkpointing a node".
	Period time.Duration
	// ReplyWindow is how long to wait for status replies each round.
	ReplyWindow time.Duration
}

// Scheduler polls daemons and orders checkpoints.
type Scheduler struct {
	rt  vtime.Runtime
	cfg Config
	ep  transport.Endpoint

	Orders int64
}

// Start attaches and runs a scheduler.
func Start(rt vtime.Runtime, fab transport.Fabric, cfg Config) *Scheduler {
	if cfg.Period <= 0 {
		cfg.Period = 100 * time.Millisecond
	}
	if cfg.ReplyWindow <= 0 {
		cfg.ReplyWindow = 5 * time.Millisecond
	}
	s := &Scheduler{rt: rt, cfg: cfg, ep: fab.Attach(cfg.Node, "ckpt-sched")}
	rt.Go("ckpt-scheduler", s.run)
	return s
}

func (s *Scheduler) run() {
	for {
		s.rt.Sleep(s.cfg.Period)
		if s.ep.Inbox().Closed() {
			return
		}
		for _, r := range s.cfg.Ranks {
			s.ep.Send(r, wire.KSchedPoll, nil)
		}
		s.rt.Sleep(s.cfg.ReplyWindow)
		var statuses []wire.NodeStatus
		for {
			f, ok := s.ep.Inbox().TryRecv()
			if !ok {
				break
			}
			if f.Kind != wire.KSchedStat {
				continue
			}
			st, err := wire.DecodeStatus(f.Data)
			if err == nil {
				statuses = append(statuses, st)
			}
		}
		if target := s.pick(statuses); target >= 0 {
			s.ep.Send(target, wire.KCkptOrder, nil)
			s.Orders++
		}
	}
}

func (s *Scheduler) pick(statuses []wire.NodeStatus) int {
	if len(statuses) == 0 {
		return -1
	}
	t := s.cfg.Policy.Next(statuses)
	if t < 0 {
		return -1
	}
	return t
}
