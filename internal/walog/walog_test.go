package walog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func writeAll(t *testing.T, path string, torn TornConfig, bodies [][]byte) *Writer {
	t.Helper()
	w, err := Open(path, torn)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bodies {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return w
}

func loadAll(t *testing.T, path string) ([][]byte, LoadResult) {
	t.Helper()
	var got [][]byte
	res, err := Load(path, func(b []byte) { got = append(got, append([]byte(nil), b...)) })
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	var bodies [][]byte
	for i := 0; i < 50; i++ {
		bodies = append(bodies, []byte(fmt.Sprintf("record-%d-%s", i, string(bytes.Repeat([]byte{byte(i)}, i)))))
	}
	writeAll(t, path, TornConfig{}, bodies)
	got, res := loadAll(t, path)
	if res.Torn != 0 || res.Records != len(bodies) {
		t.Fatalf("load = %+v, want %d clean records", res, len(bodies))
	}
	for i := range bodies {
		if !bytes.Equal(got[i], bodies[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], bodies[i])
		}
	}
}

func TestMissingFileLoadsEmpty(t *testing.T) {
	got, res := loadAll(t, filepath.Join(t.TempDir(), "absent"))
	if len(got) != 0 || res.Records != 0 || res.Torn != 0 {
		t.Fatalf("absent log loaded %+v", res)
	}
}

// TestTornTailRecovers truncates the file mid-record, as a SIGKILL
// mid-append would, and checks the prefix survives.
func TestTornTailRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	bodies := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	writeAll(t, path, TornConfig{}, bodies)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	got, res := loadAll(t, path)
	if res.Records != 2 || res.Torn == 0 {
		t.Fatalf("load = %+v, want 2 records and a torn tail", res)
	}
	if string(got[0]) != "alpha" || string(got[1]) != "beta" {
		t.Fatalf("surviving prefix = %q", got)
	}
}

// TestMidLogCorruptionResyncs scribbles over a record in the middle and
// checks the loader skips it and resynchronizes on the next boundary.
func TestMidLogCorruptionResyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	bodies := [][]byte{[]byte("aaaaaaaaaa"), []byte("bbbbbbbbbb"), []byte("cccccccccc")}
	writeAll(t, path, TornConfig{}, bodies)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's body.
	data[headerLen+len(bodies[0])+headerLen+3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, res := loadAll(t, path)
	if res.Records != 2 {
		t.Fatalf("load = %+v, want 2 surviving records", res)
	}
	if string(got[0]) != "aaaaaaaaaa" || string(got[1]) != "cccccccccc" {
		t.Fatalf("survivors = %q", got)
	}
}

// TestInjectedTornWrites runs the deterministic fault injector and
// checks (a) the loader survives every injected fault, (b) the same
// seed injects the same schedule.
func TestInjectedTornWrites(t *testing.T) {
	dir := t.TempDir()
	var bodies [][]byte
	for i := 0; i < 200; i++ {
		bodies = append(bodies, bytes.Repeat([]byte{byte(i)}, 8+i%32))
	}
	torn := TornConfig{Seed: 42, Every: 10}
	w1 := writeAll(t, filepath.Join(dir, "a"), torn, bodies)
	w2 := writeAll(t, filepath.Join(dir, "b"), torn, bodies)
	if w1.Torn == 0 {
		t.Fatal("fault injector never fired over 200 appends at Every=10")
	}
	if w1.Torn != w2.Torn {
		t.Fatalf("same seed tore %d vs %d records", w1.Torn, w2.Torn)
	}
	a, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different logs")
	}
	got, res := loadAll(t, filepath.Join(dir, "a"))
	if int64(res.Records)+w1.Torn < int64(len(bodies)) {
		t.Fatalf("records %d + torn %d < appended %d", res.Records, w1.Torn, len(bodies))
	}
	// Every surviving record must be byte-identical to something appended.
	valid := make(map[string]bool, len(bodies))
	for _, b := range bodies {
		valid[string(b)] = true
	}
	for _, g := range got {
		if !valid[string(g)] {
			t.Fatalf("loader surfaced a record that was never appended: %q", g)
		}
	}
}

func TestReplayInto(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	writeAll(t, path, TornConfig{}, [][]byte{[]byte("one"), []byte("two")})
	var seen []string
	w, res, err := ReplayInto(path, TornConfig{}, func(b []byte) { seen = append(seen, string(b)) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2 || len(seen) != 2 {
		t.Fatalf("replay = %+v (%q)", res, seen)
	}
	if err := w.Append([]byte("three")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, _ := loadAll(t, path)
	if len(got) != 3 || string(got[2]) != "three" {
		t.Fatalf("after replay+append, log holds %q", got)
	}
}
