// Package walog is a minimal crash-tolerant append-only record log,
// the stable storage behind the deployed event-logger and checkpoint
//-server workers (cmd/soak, cmd/vrun with a WAL directory). A record
// is framed as
//
//	magic "MVWL" | u32 body length | u32 CRC-32 (IEEE) of body | body
//
// and the loader trusts nothing: a record whose magic, length or CRC
// does not verify is counted as torn and the scan resynchronizes on the
// next magic boundary, so a short write — a process SIGKILLed mid-
// append, or the injected disk faults of TornConfig — costs exactly the
// damaged records, never the log. This is the property Skjellum et
// al. demand of checkpoint-restart storage: the fault-tolerance layer's
// own disk state must survive faults of its own.
//
// The log never fsyncs: the deployment's fault model is process death
// (SIGKILL), not power loss, and the page cache survives the process.
package walog

import (
	"encoding/binary"
	"hash/crc32"
	"os"
)

var magic = [4]byte{'M', 'V', 'W', 'L'}

const headerLen = 4 + 4 + 4 // magic + length + CRC-32

// MaxRecord bounds a decoded record; larger lengths indicate log
// corruption and are treated as torn.
const MaxRecord = 1 << 30

// TornConfig injects deterministic short-write disk faults: roughly one
// in Every appends writes only a prefix of the record (header plus half
// the body), modeling a crash mid-write or a failing disk. The schedule
// is a pure function of Seed, so a seeded soak reproduces the same torn
// records run after run. The zero value injects nothing.
type TornConfig struct {
	Seed  uint64
	Every int
}

// Active reports whether the config injects anything.
func (tc TornConfig) Active() bool { return tc.Every > 0 }

// Writer appends records to a log file.
type Writer struct {
	f    *os.File
	torn TornConfig
	rng  uint64

	// Torn counts appends deliberately damaged by the fault injector.
	Torn int64
}

// Open opens (creating if needed) the log at path for appending.
func Open(path string, torn TornConfig) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Writer{
		f:    f,
		torn: torn,
		rng:  (torn.Seed + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9,
	}, nil
}

// Append writes one record. Under an active TornConfig the write may be
// deliberately truncated; the caller cannot tell (a real torn write is
// silent too), the loader recovers by resync.
func (w *Writer) Append(body []byte) error {
	hdr := make([]byte, headerLen, headerLen+len(body))
	copy(hdr, magic[:])
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(body))
	rec := append(hdr, body...)
	if w.torn.Active() {
		w.rng = w.rng*6364136223846793005 + 1442695040888963407
		if int(w.rng%uint64(w.torn.Every)) == 0 {
			w.Torn++
			cut := headerLen + len(body)/2
			_, err := w.f.Write(rec[:cut])
			return err
		}
	}
	_, err := w.f.Write(rec)
	return err
}

// Close closes the underlying file.
func (w *Writer) Close() error { return w.f.Close() }

// LoadResult summarizes a Load pass.
type LoadResult struct {
	Records int // records delivered to the callback
	Torn    int // records skipped (bad magic, length or CRC)
}

// Load scans the log at path, calling fn with each verified record
// body. Damaged regions are skipped by scanning forward to the next
// magic boundary. A missing file loads as empty — a fresh worker.
func Load(path string, fn func(body []byte)) (LoadResult, error) {
	var res LoadResult
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return res, nil
		}
		return res, err
	}
	i := 0
	damaged := false
	for i+headerLen <= len(data) {
		if [4]byte(data[i:i+4]) != magic {
			// Out of frame: resync on the next magic boundary.
			if !damaged {
				damaged = true
				res.Torn++
			}
			i++
			continue
		}
		n := binary.BigEndian.Uint32(data[i+4 : i+8])
		want := binary.BigEndian.Uint32(data[i+8 : i+12])
		end := i + headerLen + int(n)
		if n > MaxRecord || end > len(data) {
			// Torn tail or corrupt length: step past the magic and
			// resync (the length cannot be trusted to skip with).
			damaged = true
			res.Torn++
			i += 4
			continue
		}
		body := data[i+headerLen : end]
		if crc32.ChecksumIEEE(body) != want {
			damaged = true
			res.Torn++
			i += 4
			continue
		}
		damaged = false
		res.Records++
		fn(body)
		i = end
	}
	if i < len(data) && !damaged {
		res.Torn++ // trailing partial header
	}
	return res, nil
}

// ReplayInto is a convenience for stores that load before attaching a
// writer: it loads path into fn and then opens the same path for
// appending.
func ReplayInto(path string, torn TornConfig, fn func(body []byte)) (*Writer, LoadResult, error) {
	res, err := Load(path, fn)
	if err != nil {
		return nil, res, err
	}
	w, err := Open(path, torn)
	return w, res, err
}
