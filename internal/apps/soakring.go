package apps

import (
	"encoding/binary"
	"fmt"
	"os"
	"strconv"
	"time"

	"mpichv/internal/mpi"
)

// Soak app knobs, passed through the environment so the soak driver can
// size a run without recompiling. The app must not branch on wall-clock
// time: a fixed lap count keeps a killed rank's replay piecewise
// deterministic regardless of how long the outage lasted.
const (
	envSoakLaps    = "MPICHV_SOAK_LAPS"
	envSoakHoldMS  = "MPICHV_SOAK_HOLD_MS"
	envSoakPayload = "MPICHV_SOAK_PAYLOAD"
)

func envIntDefault(key string, def int) int {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func init() {
	Register("soakring", SoakRing)
}

// SoakRing is the long-running soak workload: a token circulates the
// ring for a configured number of laps, each rank holding it briefly
// and incrementing it, with a checkpoint opportunity every lap. Every
// completed lap is announced as a "VRUN-LAP n" stdout line (the
// deploy.LapMarker protocol) so the supervisor can chart goodput and
// recovery latency. The token's arithmetic is verified at the end: a
// lost, duplicated, or reordered delivery anywhere in the run makes
// the final value wrong.
func SoakRing(p *mpi.Proc) {
	laps := envIntDefault(envSoakLaps, 20)
	hold := time.Duration(envIntDefault(envSoakHoldMS, 25)) * time.Millisecond
	payload := envIntDefault(envSoakPayload, 256)
	if payload < 8 {
		payload = 8
	}
	n := p.Size()
	right := (p.Rank() + 1) % n
	left := (p.Rank() - 1 + n) % n

	state := struct {
		Lap   int
		Token uint64
	}{}
	p.SetStateProvider(func() []byte {
		buf := make([]byte, 16)
		binary.BigEndian.PutUint64(buf, uint64(state.Lap))
		binary.BigEndian.PutUint64(buf[8:], state.Token)
		return buf
	})
	if blob, restarted := p.Restarted(); restarted && len(blob) >= 16 {
		state.Lap = int(binary.BigEndian.Uint64(blob))
		state.Token = binary.BigEndian.Uint64(blob[8:])
		fmt.Printf("rank %d: resuming soak from lap %d\n", p.Rank(), state.Lap)
	}

	buf := make([]byte, payload)
	for ; state.Lap < laps; state.Lap++ {
		p.CheckpointPoint()
		if p.Rank() == 0 {
			binary.BigEndian.PutUint64(buf, state.Token+1)
			p.Send(right, 1, buf)
			b, _ := p.Recv(left, 1)
			state.Token = binary.BigEndian.Uint64(b)
		} else {
			b, _ := p.Recv(left, 1)
			tok := binary.BigEndian.Uint64(b) + 1
			p.Clock().Sleep(hold)
			binary.BigEndian.PutUint64(buf, tok)
			p.Send(right, 1, buf)
			state.Token = tok
		}
		// Matches deploy.LapMarker; apps stays a pure-MPI package, so
		// the literal is repeated here rather than imported.
		fmt.Printf("VRUN-LAP %d\n", state.Lap+1)
	}
	if p.Rank() == 0 && state.Token != uint64(n*laps) {
		p.Abortf("soakring: token = %d, want %d", state.Token, n*laps)
	}
	if p.Rank() == 0 {
		fmt.Printf("soakring: verified token=%d after %d laps\n", state.Token, laps)
	}
}
