// Package apps registers the MPI programs runnable under cmd/vrun (the
// real-TCP deployment). Each is a small but real workload exercising
// the fault-tolerant runtime.
package apps

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"mpichv/internal/mpi"
)

// App is a runnable MPI program.
type App func(p *mpi.Proc)

var registry = map[string]App{}

// Register adds an app under a name; it panics on duplicates.
func Register(name string, app App) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("apps: duplicate app %q", name))
	}
	registry[name] = app
}

// Get returns the registered app.
func Get(name string) (App, bool) {
	a, ok := registry[name]
	return a, ok
}

// Names returns the registered app names, sorted.
func Names() []string {
	var out []string
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("pingpong", PingPong)
	Register("tokenring", TokenRing)
	Register("allreduce", AllreduceLoop)
}

// PingPong bounces messages between ranks 0 and 1 and prints the mean
// round trip.
func PingPong(p *mpi.Proc) {
	const rounds = 100
	if p.Size() < 2 {
		p.Abortf("pingpong needs at least 2 ranks")
	}
	if p.Rank() > 1 {
		return
	}
	msg := make([]byte, 1024)
	t0 := p.Clock().Now()
	for r := 0; r < rounds; r++ {
		if p.Rank() == 0 {
			p.Send(1, 7, msg)
			p.Recv(1, 8)
		} else {
			b, _ := p.Recv(0, 7)
			p.Send(0, 8, b)
		}
	}
	if p.Rank() == 0 {
		fmt.Printf("pingpong: mean RTT %v over %d rounds\n", (p.Clock().Now()-t0)/rounds, rounds)
	}
}

// TokenRing circulates an accumulating token; slow enough (50 ms per
// hold) that a rank can be killed mid-run to watch recovery.
func TokenRing(p *mpi.Proc) {
	const rounds = 10
	n := p.Size()
	right := (p.Rank() + 1) % n
	left := (p.Rank() - 1 + n) % n
	buf := make([]byte, 8)
	var token uint64
	for r := 0; r < rounds; r++ {
		if p.Rank() == 0 {
			binary.BigEndian.PutUint64(buf, token+1)
			p.Send(right, 1, buf)
			b, _ := p.Recv(left, 1)
			token = binary.BigEndian.Uint64(b)
			fmt.Printf("round %d: token=%d\n", r, token)
		} else {
			b, _ := p.Recv(left, 1)
			token = binary.BigEndian.Uint64(b) + 1
			p.Clock().Sleep(50 * time.Millisecond)
			binary.BigEndian.PutUint64(buf, token)
			p.Send(right, 1, buf)
		}
	}
	if p.Rank() == 0 && token != uint64(n*rounds) {
		p.Abortf("token = %d, want %d", token, n*rounds)
	}
}

// AllreduceLoop iterates checkpointable allreduces: with a checkpoint
// server and scheduler in the program file, a killed rank resumes from
// its checkpoint instead of the beginning.
func AllreduceLoop(p *mpi.Proc) {
	const iters = 40
	state := struct {
		Iter int
		Acc  float64
	}{}
	p.SetStateProvider(func() []byte {
		buf := make([]byte, 16)
		binary.BigEndian.PutUint64(buf, uint64(state.Iter))
		binary.BigEndian.PutUint64(buf[8:], uint64(int64(state.Acc)))
		return buf
	})
	if blob, restarted := p.Restarted(); restarted && blob != nil {
		state.Iter = int(binary.BigEndian.Uint64(blob))
		state.Acc = float64(int64(binary.BigEndian.Uint64(blob[8:])))
		fmt.Printf("rank %d: resuming from iteration %d\n", p.Rank(), state.Iter)
	}
	for ; state.Iter < iters; state.Iter++ {
		p.CheckpointPoint()
		p.Clock().Sleep(25 * time.Millisecond) // "compute"
		state.Acc += p.AllreduceScalar(float64(p.Rank()+state.Iter), mpi.OpSum)
	}
	var want float64
	for i := 0; i < iters; i++ {
		for r := 0; r < p.Size(); r++ {
			want += float64(r + i)
		}
	}
	if state.Acc != want {
		p.Abortf("acc = %v, want %v", state.Acc, want)
	}
	if p.Rank() == 0 {
		fmt.Printf("allreduce: verified acc=%v after %d iterations\n", state.Acc, iters)
	}
}
