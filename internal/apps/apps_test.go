package apps_test

import (
	"testing"
	"time"

	"mpichv/internal/apps"
	"mpichv/internal/cluster"
	"mpichv/internal/dispatcher"
	"mpichv/internal/mpi"
)

func TestRegistry(t *testing.T) {
	names := apps.Names()
	if len(names) < 3 {
		t.Fatalf("registry has %d apps", len(names))
	}
	for _, n := range names {
		if _, ok := apps.Get(n); !ok {
			t.Errorf("Get(%q) failed", n)
		}
	}
	if _, ok := apps.Get("no-such-app"); ok {
		t.Error("Get of unknown app succeeded")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	apps.Register("pingpong", func(*mpi.Proc) {})
}

// The registered apps self-verify (they Abortf on wrong results), so
// running them to completion on a simulated cluster is the test.
func runApp(t *testing.T, name string, n int, faults []dispatcher.Fault, ckpt bool) {
	t.Helper()
	app, ok := apps.Get(name)
	if !ok {
		t.Fatalf("app %q not registered", name)
	}
	cfg := cluster.Config{Impl: cluster.V2, N: n, Faults: faults, Checkpointing: ckpt}
	if ckpt {
		cfg.SchedPeriod = 50 * time.Millisecond
	}
	cluster.Run(cfg, func(p *mpi.Proc) { app(p) })
}

func TestPingPongApp(t *testing.T) { runApp(t, "pingpong", 2, nil, false) }

func TestTokenRingApp(t *testing.T) { runApp(t, "tokenring", 3, nil, false) }

func TestTokenRingAppSurvivesFault(t *testing.T) {
	runApp(t, "tokenring", 3, []dispatcher.Fault{{Time: 200 * time.Millisecond, Rank: 1}}, false)
}

func TestAllreduceApp(t *testing.T) { runApp(t, "allreduce", 4, nil, false) }

func TestAllreduceAppResumesFromCheckpoint(t *testing.T) {
	runApp(t, "allreduce", 4, []dispatcher.Fault{{Time: 500 * time.Millisecond, Rank: 2}}, true)
}
