package daemon

import (
	"fmt"
	"time"

	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// P4 is the MPICH-P4 baseline driver: direct TCP transmission, no fault
// tolerance. Two modeled behaviours distinguish it from V2 (paper §5.2
// and figure 9):
//
//   - the driver is busy for the whole transmission of a payload (it
//     does not poll for incoming receptions while sending), expressed
//     here as a sleep of size/bandwidth during BSend, on top of the
//     half-duplex pair links the P4 network model uses;
//   - the MPI layer above it pushes payloads during MPI_Isend rather
//     than MPI_Wait (mpi.Options.EagerInIsend).
type P4 struct {
	rt      vtime.Runtime
	cfg     Config
	ep      transport.Endpoint
	in      *vtime.Mailbox[dEvent]
	rsp     *vtime.Mailbox[rankResp]
	arrived []transport.Frame
	stats   Stats

	// driverBPS is the byte rate used to model driver occupancy
	// during a blocking send; 0 disables the sleep (wall-clock runs).
	driverBPS float64
}

// StartP4 attaches a P4 daemon and returns the Device for its MPI
// process. driverBPS models the send-loop occupancy (use the network
// bandwidth in simulated runs, 0 in wall-clock runs).
func StartP4(rt vtime.Runtime, fab transport.Fabric, cfg Config, driverBPS float64) (Device, *P4) {
	d := &P4{rt: rt, cfg: cfg, driverBPS: driverBPS}
	d.ep = fab.Attach(cfg.Rank, fmt.Sprintf("p4-%d", cfg.Rank))
	d.in = vtime.NewMailbox[dEvent](rt, fmt.Sprintf("p4d%d", cfg.Rank))
	d.rsp = vtime.NewMailbox[rankResp](rt, fmt.Sprintf("p4r%d", cfg.Rank))
	pump(rt, fmt.Sprintf("pump-p4-%d", cfg.Rank), d.ep, d.in)
	rt.Go(fmt.Sprintf("daemon-p4-%d", cfg.Rank), d.run)
	return &proxy{rank: cfg.Rank, delay: cfg.UnixDelay, in: d.in, resp: d.rsp, ckpt: &noCkpt}, d
}

// Stats returns the daemon's counters.
func (d *P4) Stats() Stats { return d.stats }

func (d *P4) run() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedPanic); ok {
				d.rsp.Close()
				return
			}
			panic(r)
		}
	}()
	for {
		e := d.next()
		if e.isFrame {
			d.handleFrame(e.frame)
			continue
		}
		switch e.req.op {
		case opInit:
			d.reply(rankResp{rank: d.cfg.Rank, size: d.cfg.Size})
		case opSend:
			d.doSend(e.req.to, e.req.data)
		case opRecv:
			d.doRecv()
		case opProbe:
			d.doProbe()
		case opCkpt:
			d.reply(rankResp{}) // no fault tolerance: ignore
		case opFinish:
			if d.cfg.Dispatcher >= 0 {
				d.ep.Send(d.cfg.Dispatcher, wire.KFinalize, nil)
			}
			d.reply(rankResp{})
		}
	}
}

func (d *P4) next() dEvent {
	e, ok := d.in.Recv()
	if !ok || e.closed {
		panic(killedPanic{})
	}
	return e
}

func (d *P4) handleFrame(f transport.Frame) {
	if f.Kind == wire.KPayload {
		d.arrived = append(d.arrived, f)
		d.stats.RecvMsgs++
		d.stats.RecvBytes += int64(len(f.Data)) - wire.PayloadHeaderLen
	}
}

func (d *P4) doSend(to int, data []byte) {
	if to == d.cfg.Rank {
		panic("daemon: device-level self send")
	}
	d.ep.Send(to, wire.KPayload, wire.EncodePayload(wire.PayloadHeader{}, data))
	d.stats.SentMsgs++
	d.stats.SentBytes += int64(len(data))
	// The P4 send loop owns the CPU until the payload is written out.
	if d.driverBPS > 0 && len(data) > 0 {
		d.rt.Sleep(time.Duration(float64(len(data)) / d.driverBPS * float64(time.Second)))
	}
	d.reply(rankResp{})
}

func (d *P4) doRecv() {
	for len(d.arrived) == 0 {
		e := d.next()
		if e.isFrame {
			d.handleFrame(e.frame)
		}
	}
	f := d.arrived[0]
	d.arrived = d.arrived[1:]
	_, body, err := wire.DecodePayload(f.Data)
	if err != nil {
		panic(fmt.Sprintf("daemon: p4 rank %d: corrupt payload: %v", d.cfg.Rank, err))
	}
	d.reply(rankResp{from: f.From, data: body})
}

func (d *P4) doProbe() {
	for {
		e, ok := d.in.TryRecv()
		if !ok {
			break
		}
		if e.closed {
			panic(killedPanic{})
		}
		if e.isFrame {
			d.handleFrame(e.frame)
		}
	}
	d.reply(rankResp{flag: len(d.arrived) > 0})
}

func (d *P4) reply(r rankResp) { d.rsp.SendAfter(d.cfg.UnixDelay, r) }
