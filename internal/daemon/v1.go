package daemon

import (
	"fmt"
	"time"

	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// V1 is the MPICH-V1 baseline daemon (§3.2): every message transits
// through the receiver's reliable Channel Memory — "two serialized TCP
// streams", which halves the observable bandwidth and requires a
// reliable node per group of computing nodes. It is implemented here as
// the performance baseline of figures 5, 6 and 8; V1-style recovery
// (re-fetching the reception history from the Channel Memory) is not
// reproduced, since every fault-tolerance experiment in the paper runs
// on V2.
type V1 struct {
	rt    vtime.Runtime
	cfg   Config
	ep    transport.Endpoint
	in    *vtime.Mailbox[dEvent]
	rsp   *vtime.Mailbox[rankResp]
	stats Stats
}

// StartV1 attaches a V1 daemon; cfg.ChannelMemory must map every rank to
// its Channel Memory node id.
func StartV1(rt vtime.Runtime, fab transport.Fabric, cfg Config) (Device, *V1) {
	if cfg.ChannelMemory == nil {
		panic("daemon: V1 requires a ChannelMemory mapping")
	}
	d := &V1{rt: rt, cfg: cfg}
	d.ep = fab.Attach(cfg.Rank, fmt.Sprintf("v1-%d", cfg.Rank))
	d.in = vtime.NewMailbox[dEvent](rt, fmt.Sprintf("v1d%d", cfg.Rank))
	d.rsp = vtime.NewMailbox[rankResp](rt, fmt.Sprintf("v1r%d", cfg.Rank))
	pump(rt, fmt.Sprintf("pump-v1-%d", cfg.Rank), d.ep, d.in)
	rt.Go(fmt.Sprintf("daemon-v1-%d", cfg.Rank), d.run)
	return &proxy{rank: cfg.Rank, delay: cfg.UnixDelay, in: d.in, resp: d.rsp, ckpt: &noCkpt}, d
}

// Stats returns the daemon's counters.
func (d *V1) Stats() Stats { return d.stats }

func (d *V1) run() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedPanic); ok {
				d.rsp.Close()
				return
			}
			panic(r)
		}
	}()
	for {
		e := d.next()
		if e.isFrame {
			continue // unsolicited frames have no meaning for V1
		}
		switch e.req.op {
		case opInit:
			d.reply(rankResp{rank: d.cfg.Rank, size: d.cfg.Size})
		case opSend:
			d.doSend(e.req.to, e.req.data)
		case opRecv:
			d.doRecv()
		case opProbe:
			d.doProbe()
		case opCkpt:
			d.reply(rankResp{})
		case opFinish:
			if d.cfg.Dispatcher >= 0 {
				d.ep.Send(d.cfg.Dispatcher, wire.KFinalize, nil)
			}
			d.reply(rankResp{})
		}
	}
}

func (d *V1) next() dEvent {
	e, ok := d.in.Recv()
	if !ok || e.closed {
		panic(killedPanic{})
	}
	return e
}

// awaitCM blocks until the Channel Memory answers.
func (d *V1) awaitCM() transport.Frame {
	for {
		e := d.next()
		if e.isFrame && e.frame.Kind == wire.KCMMsg {
			return e.frame
		}
	}
}

func (d *V1) doSend(to int, data []byte) {
	if to == d.cfg.Rank {
		panic("daemon: device-level self send")
	}
	if n := len(data); n > 0 && d.cfg.UnixCopyPerByte > 0 &&
		(d.cfg.PipelineLimit <= 0 || n <= d.cfg.PipelineLimit) {
		d.rt.Sleep(time.Duration(n) * d.cfg.UnixCopyPerByte)
	}
	// The message is stored on the *receiver's* Channel Memory.
	d.ep.Send(d.cfg.ChannelMemory(to), wire.KCMPut, wire.EncodeCMPut(to, data))
	d.stats.SentMsgs++
	d.stats.SentBytes += int64(len(data))
	d.reply(rankResp{})
}

func (d *V1) doRecv() {
	d.ep.Send(d.cfg.ChannelMemory(d.cfg.Rank), wire.KCMGet, []byte{wire.CMGetBlock})
	f := d.awaitCM()
	present, origFrom, data, err := wire.DecodeCMMsg(f.Data)
	if err != nil || !present {
		panic(fmt.Sprintf("daemon: v1 rank %d: bad channel memory delivery (err=%v present=%v)", d.cfg.Rank, err, present))
	}
	d.stats.RecvMsgs++
	d.stats.RecvBytes += int64(len(data))
	if n := len(data); n > 0 && d.cfg.UnixCopyPerByte > 0 &&
		(d.cfg.PipelineLimit <= 0 || n <= d.cfg.PipelineLimit) {
		d.rt.Sleep(time.Duration(n) * d.cfg.UnixCopyPerByte)
	}
	d.reply(rankResp{from: origFrom, data: data})
}

func (d *V1) doProbe() {
	d.ep.Send(d.cfg.ChannelMemory(d.cfg.Rank), wire.KCMGet, []byte{wire.CMGetProbe})
	f := d.awaitCM()
	present, _, _, err := wire.DecodeCMMsg(f.Data)
	if err != nil {
		panic(fmt.Sprintf("daemon: v1 rank %d: bad probe answer: %v", d.cfg.Rank, err))
	}
	d.reply(rankResp{flag: present})
}

func (d *V1) reply(r rankResp) { d.rsp.SendAfter(d.cfg.UnixDelay, r) }

// ChannelMemory is the reliable store-and-forward node of MPICH-V1. One
// instance serves a group of computing nodes; in the paper's setups one
// Channel Memory serves 1 to 4 nodes.
type ChannelMemory struct {
	rt vtime.Runtime
	ep transport.Endpoint

	queues  map[int][]cmItem // destination rank → ordered messages
	waiting map[int]bool     // destination rank has a parked blocking get

	Stored int64
	Bytes  int64
}

type cmItem struct {
	from int
	data []byte
}

// StartChannelMemory attaches and runs a Channel Memory on node id.
func StartChannelMemory(rt vtime.Runtime, fab transport.Fabric, id int) *ChannelMemory {
	cm := &ChannelMemory{
		rt:      rt,
		ep:      fab.Attach(id, fmt.Sprintf("cm%d", id)),
		queues:  make(map[int][]cmItem),
		waiting: make(map[int]bool),
	}
	rt.Go(fmt.Sprintf("cm-%d", id), cm.run)
	return cm
}

func (cm *ChannelMemory) run() {
	for {
		f, ok := cm.ep.Inbox().Recv()
		if !ok {
			return
		}
		switch f.Kind {
		case wire.KCMPut:
			dest, data, err := wire.DecodeCMPut(f.Data)
			if err != nil {
				continue
			}
			cm.Stored++
			cm.Bytes += int64(len(data))
			cm.queues[dest] = append(cm.queues[dest], cmItem{from: f.From, data: data})
			if cm.waiting[dest] {
				cm.waiting[dest] = false
				cm.deliver(dest)
			}
		case wire.KCMGet:
			if len(f.Data) != 1 {
				continue
			}
			switch f.Data[0] {
			case wire.CMGetProbe:
				cm.ep.Send(f.From, wire.KCMMsg, wire.EncodeCMMsg(len(cm.queues[f.From]) > 0, 0, nil))
			case wire.CMGetBlock:
				if len(cm.queues[f.From]) > 0 {
					cm.deliver(f.From)
				} else {
					cm.waiting[f.From] = true
				}
			}
		}
	}
}

func (cm *ChannelMemory) deliver(dest int) {
	it := cm.queues[dest][0]
	cm.queues[dest] = cm.queues[dest][1:]
	cm.ep.Send(dest, wire.KCMMsg, wire.EncodeCMMsg(true, it.from, it.data))
}
