package daemon

import (
	"testing"
	"time"

	"mpichv/internal/netsim"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// silentEL records every KEventLog submission but never acks, so tests
// can fill the pipelined window and release it ack by ack from the
// root actor. The recordings are read from the root actor too — safe
// under the single-threaded token-passing simulator.
type silentEL struct {
	ep    transport.Endpoint
	seqs  []uint64
	sizes []int
}

func startSilentEL(sim *vtime.Sim, fab transport.Fabric, id int) *silentEL {
	s := &silentEL{ep: fab.Attach(id, "silent-el")}
	sim.Go("silent-el", func() {
		for {
			fr, ok := s.ep.Inbox().Recv()
			if !ok {
				return
			}
			if fr.Kind != wire.KEventLog {
				continue
			}
			seq, evs, err := wire.DecodeEventLog(fr.Data)
			if err != nil {
				continue
			}
			s.seqs = append(s.seqs, seq)
			s.sizes = append(s.sizes, len(evs))
		}
	})
	return s
}

// ack releases one batch the way a real logger would, with an explicit
// cumulative mark.
func (s *silentEL) ack(to int, seq, cum uint64) {
	s.ep.Send(to, wire.KEventAck, wire.EncodeEventAck(seq, cum))
}

// injectPayloads fakes `n` gap-free payloads from peer rank 1 so the
// daemon under test generates reception events without a second daemon
// (whose own WAITLOGGED would deadlock against a silent logger).
func injectPayloads(peer transport.Endpoint, n int) {
	for c := uint64(1); c <= uint64(n); c++ {
		hdr := wire.PayloadHeader{SenderClock: c, PairSeq: c}
		peer.Send(0, wire.KPayload, wire.EncodePayload(hdr, []byte{1}))
	}
}

func TestV2ELWindowPipelinesAndRetiresInOrder(t *testing.T) {
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		el := startSilentEL(sim, fab, elNode)
		cfg := v2Config(0, 2, elNode)
		cfg.EventBatching = true
		cfg.ELWindow = 2
		cfg.ELAckTimeout = -1 // no retransmits: every frame below is deliberate
		dev0, d0 := StartV2(sim, fab, cfg)
		dev0.Init()

		peer := fab.Attach(1, "peer")
		injectPayloads(peer, 5)
		sim.Sleep(time.Millisecond)
		for i := 0; i < 5; i++ {
			dev0.BRecv()
		}
		sim.Sleep(time.Millisecond)

		// Two single-event batches fill the window; three events queue.
		if got := append([]uint64(nil), el.seqs...); len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Fatalf("submitted seqs = %v, want [1 2]", got)
		}
		if n := d0.State().UnackedEvents(); n != 5 {
			t.Fatalf("unacked = %d, want 5", n)
		}

		// Acking the SECOND batch completes it but must not retire it:
		// WAITLOGGED credits events in submission order only.
		el.ack(0, 2, 0)
		sim.Sleep(time.Millisecond)
		if n := d0.State().UnackedEvents(); n != 5 {
			t.Errorf("unacked after out-of-order ack = %d, want 5", n)
		}
		if len(el.seqs) != 2 {
			t.Errorf("window slot opened on an out-of-order ack: seqs = %v", el.seqs)
		}

		// Acking the first batch retires both and frees the window; the
		// queued three events flush as one adaptive batch.
		el.ack(0, 1, 0)
		sim.Sleep(time.Millisecond)
		if n := d0.State().UnackedEvents(); n != 3 {
			t.Errorf("unacked after in-order ack = %d, want 3", n)
		}
		if len(el.seqs) != 3 || el.seqs[2] != 3 || el.sizes[2] != 3 {
			t.Errorf("queued events did not flush as batch 3×3: seqs=%v sizes=%v", el.seqs, el.sizes)
		}

		// A cumulative ack completes the tail; the barrier clears.
		el.ack(0, 3, 3)
		sim.Sleep(time.Millisecond)
		if d0.State().SendBlocked() {
			t.Errorf("still WAITLOGGED after all batches acked (unacked=%d)", d0.State().UnackedEvents())
		}
	})
}

func TestV2ELRetransmitOrderAscending(t *testing.T) {
	// Retransmissions of in-flight batches must go out in ascending seq
	// order (the ordered ring replaced a per-fire sort). Jitter can
	// legally reorder deadlines across separate timer fires, so the test
	// forces every batch overdue and triggers exactly one fire.
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		el := startSilentEL(sim, fab, elNode)
		cfg := v2Config(0, 2, elNode)
		cfg.ELWindow = 8
		cfg.ELAckTimeout = time.Hour // armed, but never fires on its own
		dev0, d0 := StartV2(sim, fab, cfg)
		dev0.Init()

		peer := fab.Attach(1, "peer")
		injectPayloads(peer, 3)
		sim.Sleep(time.Millisecond)
		for i := 0; i < 3; i++ {
			dev0.BRecv()
		}
		sim.Sleep(time.Millisecond)
		if len(el.seqs) != 3 {
			t.Fatalf("initial submissions = %v, want 3 batches", el.seqs)
		}

		// Backdate every in-flight batch and fire the retransmit path
		// once, directly on the idle daemon (single-threaded simulator).
		el.seqs, el.sizes = nil, nil
		sh := d0.elShards[0]
		for i := range sh.ring {
			sh.ring[i].sent = -10 * time.Hour
		}
		d0.elExpired(sh)
		sim.Sleep(time.Millisecond)

		if len(el.seqs) != 3 || el.seqs[0] != 1 || el.seqs[1] != 2 || el.seqs[2] != 3 {
			t.Errorf("retransmit order = %v, want [1 2 3]", el.seqs)
		}
		if got := d0.Stats().Retransmits; got != 3 {
			t.Errorf("Retransmits = %d, want 3", got)
		}
	})
}

func TestV2SenderLogGCUnderPipelining(t *testing.T) {
	// Garbage collection and restart replay must keep working while
	// several determinant batches are in flight: a KCkptNote shrinks the
	// SAVED log without touching the window, and the messages a peer
	// could still need to replay survive and are re-sent on RESTART1.
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		startSilentEL(sim, fab, elNode)
		cfg := v2Config(0, 2, elNode)
		cfg.ELWindow = 4
		cfg.ELAckTimeout = -1
		dev0, d0 := StartV2(sim, fab, cfg)
		dev0.Init()
		peer := fab.Attach(1, "peer")

		// Four sends before any reception event: nothing gates them, and
		// each leaves a 100-byte SAVED copy.
		for i := 0; i < 4; i++ {
			dev0.BSend(1, make([]byte, 100))
		}
		if lb := d0.State().LogBytes(); lb != 400 {
			t.Fatalf("log = %d bytes, want 400", lb)
		}

		// Three receptions open three in-flight batches (silent logger).
		injectPayloads(peer, 3)
		sim.Sleep(time.Millisecond)
		for i := 0; i < 3; i++ {
			dev0.BRecv()
		}
		sim.Sleep(time.Millisecond)
		if n := d0.State().UnackedEvents(); n != 3 {
			t.Fatalf("unacked = %d, want 3 in-flight batches", n)
		}

		// Peer checkpointed after delivering clock 2: SAVED 1-2 free,
		// 3-4 stay for replay, and the window is untouched.
		peer.Send(0, wire.KCkptNote, wire.EncodeU64(2))
		sim.Sleep(time.Millisecond)
		if lb := d0.State().LogBytes(); lb != 200 {
			t.Errorf("log after GC = %d bytes, want 200", lb)
		}
		if freed := d0.Stats().GCFreedBytes; freed != 200 {
			t.Errorf("GCFreedBytes = %d, want 200", freed)
		}
		if n := d0.State().UnackedEvents(); n != 3 {
			t.Errorf("GC disturbed the EL window: unacked = %d, want 3", n)
		}
		if got := d0.State().DeliveredVector()[1]; got != 3 {
			t.Errorf("delivered vector for peer = %d, want 3", got)
		}

		// The peer "restarts" having delivered only clock 2; the kept
		// tail of the SAVED log must replay in order.
		peer.Send(0, wire.KRestart1, wire.EncodeU64(2))
		var clocks []uint64
		seenR2 := false
		deadline := 100 // frames, not time: the fabric is reliable here
		for len(clocks) < 2 && deadline > 0 {
			deadline--
			f, ok := peer.Inbox().Recv()
			if !ok {
				t.Fatal("peer endpoint closed")
			}
			switch f.Kind {
			case wire.KRestart2:
				seenR2 = true
			case wire.KPayload:
				if !seenR2 {
					continue // the four original sends
				}
				hdr, _, err := wire.DecodePayload(f.Data)
				if err != nil {
					t.Fatal(err)
				}
				clocks = append(clocks, hdr.SenderClock)
			}
		}
		if len(clocks) != 2 || clocks[0] != 3 || clocks[1] != 4 {
			t.Errorf("replayed clocks = %v, want [3 4]", clocks)
		}
	})
}
