package daemon

import (
	"fmt"
	"testing"
	"time"

	"mpichv/internal/core"
	"mpichv/internal/netsim"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// fakeEL acks event batches after an optional delay, so tests can hold
// the WAITLOGGED barrier open deliberately.
type fakeEL struct {
	ep    transport.Endpoint
	delay time.Duration
	acked int
}

func startFakeEL(sim *vtime.Sim, fab transport.Fabric, id int, delay time.Duration) *fakeEL {
	f := &fakeEL{ep: fab.Attach(id, "fake-el"), delay: delay}
	sim.Go("fake-el", func() {
		for {
			fr, ok := f.ep.Inbox().Recv()
			if !ok {
				return
			}
			switch fr.Kind {
			case wire.KEventLog:
				seq, evs, err := wire.DecodeEventLog(fr.Data)
				if err != nil {
					continue
				}
				if f.delay > 0 {
					sim.Sleep(f.delay)
				}
				f.acked += len(evs)
				f.ep.Send(fr.From, wire.KEventAck, wire.EncodeU64(seq))
			case wire.KEventFetch:
				f.ep.Send(fr.From, wire.KEventFetched, wire.EncodeEvents(nil))
			}
		}
	})
	return f
}

func v2Config(rank, size, el int) Config {
	return Config{Rank: rank, Size: size, EventLogger: el, CkptServer: -1, Scheduler: -1, Dispatcher: -1}
}

const elNode = 900

func TestV2SendRecvBetweenTwoNodes(t *testing.T) {
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		startFakeEL(sim, fab, elNode, 0)
		dev0, _ := StartV2(sim, fab, v2Config(0, 2, elNode))
		dev1, _ := StartV2(sim, fab, v2Config(1, 2, elNode))
		if r, s, _, restarted := dev0.Init(); r != 0 || s != 2 || restarted {
			t.Fatalf("Init = %d %d %v", r, s, restarted)
		}
		dev1.Init()
		done := vtime.NewMailbox[string](sim, "done")
		sim.Go("rank1", func() {
			from, data := dev1.BRecv()
			done.Send(fmt.Sprintf("%d:%s", from, data))
		})
		dev0.BSend(1, []byte("hello"))
		got, _ := done.Recv()
		if got != "0:hello" {
			t.Errorf("received %q", got)
		}
	})
}

func TestV2WaitLoggedBlocksSend(t *testing.T) {
	// With a slow event logger, a node that received a message must
	// not emit until the ack arrives: the second hop of a relay chain
	// is delayed by at least the EL delay.
	const elDelay = 10 * time.Millisecond
	var relayArrival time.Duration
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		startFakeEL(sim, fab, elNode, elDelay)
		dev0, _ := StartV2(sim, fab, v2Config(0, 3, elNode))
		dev1, _ := StartV2(sim, fab, v2Config(1, 3, elNode))
		dev2, _ := StartV2(sim, fab, v2Config(2, 3, elNode))
		dev0.Init()
		dev1.Init()
		dev2.Init()
		done := vtime.NewMailbox[struct{}](sim, "done")
		sim.Go("relay", func() {
			_, data := dev1.BRecv()
			dev1.BSend(2, data) // must wait for the event ack
			done.Send(struct{}{})
		})
		sim.Go("sink", func() {
			dev2.BRecv()
			relayArrival = sim.Now()
			done.Send(struct{}{})
		})
		dev0.BSend(1, []byte("x"))
		done.Recv()
		done.Recv()
	})
	if relayArrival < elDelay {
		t.Errorf("relayed message arrived at %v, before the event-log ack (%v)", relayArrival, elDelay)
	}
}

func TestV2NoGatingAblation(t *testing.T) {
	// Same relay with NoSendGating: the relay leaves immediately.
	const elDelay = 10 * time.Millisecond
	var relayArrival time.Duration
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		startFakeEL(sim, fab, elNode, elDelay)
		cfg0, cfg1, cfg2 := v2Config(0, 3, elNode), v2Config(1, 3, elNode), v2Config(2, 3, elNode)
		cfg1.NoSendGating = true
		dev0, _ := StartV2(sim, fab, cfg0)
		dev1, _ := StartV2(sim, fab, cfg1)
		dev2, _ := StartV2(sim, fab, cfg2)
		dev0.Init()
		dev1.Init()
		dev2.Init()
		done := vtime.NewMailbox[struct{}](sim, "done")
		sim.Go("relay", func() {
			_, data := dev1.BRecv()
			dev1.BSend(2, data)
			done.Send(struct{}{})
		})
		sim.Go("sink", func() {
			dev2.BRecv()
			relayArrival = sim.Now()
			done.Send(struct{}{})
		})
		dev0.BSend(1, []byte("x"))
		done.Recv()
		done.Recv()
	})
	if relayArrival >= elDelay {
		t.Errorf("ungated relay still waited for the event logger (%v)", relayArrival)
	}
}

func TestV2ProbeSemantics(t *testing.T) {
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		startFakeEL(sim, fab, elNode, 0)
		dev0, _ := StartV2(sim, fab, v2Config(0, 2, elNode))
		dev1, d1 := StartV2(sim, fab, v2Config(1, 2, elNode))
		dev0.Init()
		dev1.Init()
		if dev1.NProbe() {
			t.Error("probe true on empty queue")
		}
		dev0.BSend(1, []byte("m"))
		sim.Sleep(time.Millisecond)
		if !dev1.NProbe() {
			t.Error("probe false after arrival")
		}
		dev1.BRecv()
		if dev1.NProbe() {
			t.Error("probe true after consuming the only message")
		}
		// Two misses and one hit were recorded for replay fidelity.
		if pc := d1.State().ProbeCount(); pc != 1 {
			t.Errorf("probe misses since delivery = %d, want 1", pc)
		}
	})
}

func TestV2GarbageCollectionNote(t *testing.T) {
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		startFakeEL(sim, fab, elNode, 0)
		dev0, d0 := StartV2(sim, fab, v2Config(0, 2, elNode))
		dev1, _ := StartV2(sim, fab, v2Config(1, 2, elNode))
		dev0.Init()
		dev1.Init()
		done := vtime.NewMailbox[struct{}](sim, "done")
		sim.Go("sink", func() {
			for i := 0; i < 3; i++ {
				dev1.BRecv()
			}
			done.Send(struct{}{})
		})
		for i := 0; i < 3; i++ {
			dev0.BSend(1, make([]byte, 100))
		}
		done.Recv()
		if d0.State().LogBytes() != 300 {
			t.Fatalf("log = %d bytes", d0.State().LogBytes())
		}
		// Rank 1 "checkpointed" after delivering all three: clock 3.
		peer := fab.Attach(1, "note-sender") // reuse rank 1's id to fake the note
		peer.Send(0, wire.KCkptNote, wire.EncodeU64(3))
		sim.Sleep(time.Millisecond)
		if d0.State().LogBytes() != 0 {
			t.Errorf("log after GC note = %d bytes", d0.State().LogBytes())
		}
		if d0.Stats().GCFreedBytes != 300 {
			t.Errorf("GCFreedBytes = %d", d0.Stats().GCFreedBytes)
		}
	})
}

func TestV2RestartResendsSaved(t *testing.T) {
	// A live node receives RESTART1 from a restarted peer and must
	// re-send the saved payloads above the announced horizon.
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		startFakeEL(sim, fab, elNode, 0)
		dev0, d0 := StartV2(sim, fab, v2Config(0, 2, elNode))
		dev1, _ := StartV2(sim, fab, v2Config(1, 2, elNode))
		dev0.Init()
		dev1.Init()
		done := vtime.NewMailbox[struct{}](sim, "done")
		sim.Go("sink", func() {
			for i := 0; i < 3; i++ {
				dev1.BRecv()
			}
			done.Send(struct{}{})
		})
		for i := 0; i < 3; i++ {
			dev0.BSend(1, []byte{byte(i)})
		}
		done.Recv()

		// "Restart" rank 1: new endpoint, RESTART1 announcing it has
		// delivered only clock 1.
		fab.Kill(1)
		newEp := fab.Attach(1, "restarted")
		newEp.Send(0, wire.KRestart1, wire.EncodeU64(1))
		var resent []transport.Frame
		for len(resent) < 3 {
			f, ok := newEp.Inbox().Recv()
			if !ok {
				t.Fatal("endpoint closed")
			}
			if f.Kind == wire.KRestart2 || f.Kind == wire.KPayload {
				resent = append(resent, f)
			}
		}
		if resent[0].Kind != wire.KRestart2 {
			t.Errorf("first reply kind = %d, want RESTART2", resent[0].Kind)
		}
		var clocks []uint64
		for _, f := range resent[1:] {
			hdr, body, err := wire.DecodePayload(f.Data)
			if err != nil {
				t.Fatal(err)
			}
			clocks = append(clocks, hdr.SenderClock)
			if len(body) != 1 {
				t.Errorf("resent body %v", body)
			}
		}
		if len(clocks) != 2 || clocks[0] != 2 || clocks[1] != 3 {
			t.Errorf("resent clocks = %v, want [2 3]", clocks)
		}
		if d0.Stats().Resent != 2 {
			t.Errorf("Resent stat = %d", d0.Stats().Resent)
		}
	})
}

func TestP4DirectDelivery(t *testing.T) {
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		cfg0 := Config{Rank: 0, Size: 2, EventLogger: -1, CkptServer: -1, Scheduler: -1, Dispatcher: -1}
		cfg1 := cfg0
		cfg1.Rank = 1
		dev0, _ := StartP4(sim, fab, cfg0, 11.3e6)
		dev1, d1 := StartP4(sim, fab, cfg1, 11.3e6)
		dev0.Init()
		dev1.Init()
		done := vtime.NewMailbox[time.Duration](sim, "done")
		sim.Go("sink", func() {
			dev1.BRecv()
			done.Send(sim.Now())
		})
		dev0.BSend(1, make([]byte, 0))
		at, _ := done.Recv()
		// One-way 0-byte latency is the calibrated 77µs.
		if at < 70*time.Microsecond || at > 90*time.Microsecond {
			t.Errorf("P4 one-way = %v", at)
		}
		if d1.Stats().RecvMsgs != 1 {
			t.Errorf("recv msgs = %d", d1.Stats().RecvMsgs)
		}
	})
}

func TestP4DriverBusyDuringSend(t *testing.T) {
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		cfg := Config{Rank: 0, Size: 2, EventLogger: -1, CkptServer: -1, Scheduler: -1, Dispatcher: -1}
		dev0, _ := StartP4(sim, fab, cfg, 1e6) // 1 MB/s driver
		dev0.Init()
		t0 := sim.Now()
		dev0.BSend(1, make([]byte, 100_000)) // 100ms of driver occupancy
		if busy := sim.Now() - t0; busy < 100*time.Millisecond {
			t.Errorf("BSend returned after %v; the driver should be busy for the transmission", busy)
		}
	})
}

func TestChannelMemoryOrderingAndProbe(t *testing.T) {
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		cm := StartChannelMemory(sim, fab, 500)
		sender := fab.Attach(10, "sender")
		recvr := fab.Attach(11, "recvr")

		// Probe while empty.
		recvr.Send(500, wire.KCMGet, []byte{wire.CMGetProbe})
		f, _ := recvr.Inbox().Recv()
		if present, _, _, _ := wire.DecodeCMMsg(f.Data); present {
			t.Error("probe on empty CM reported a message")
		}

		// Store two messages for node 11; they must come back in order.
		sender.Send(500, wire.KCMPut, wire.EncodeCMPut(11, []byte("first")))
		sender.Send(500, wire.KCMPut, wire.EncodeCMPut(11, []byte("second")))
		sim.Sleep(time.Millisecond)
		for _, want := range []string{"first", "second"} {
			recvr.Send(500, wire.KCMGet, []byte{wire.CMGetBlock})
			f, _ := recvr.Inbox().Recv()
			present, from, data, err := wire.DecodeCMMsg(f.Data)
			if err != nil || !present || from != 10 || string(data) != want {
				t.Errorf("got (%v,%d,%q,%v), want %q from 10", present, from, data, err, want)
			}
		}
		if cm.Stored != 2 {
			t.Errorf("Stored = %d", cm.Stored)
		}
	})
}

func TestChannelMemoryBlockingGet(t *testing.T) {
	// A blocking get posted before any message is parked and answered
	// on arrival.
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		StartChannelMemory(sim, fab, 500)
		sender := fab.Attach(10, "sender")
		recvr := fab.Attach(11, "recvr")
		recvr.Send(500, wire.KCMGet, []byte{wire.CMGetBlock})
		sim.Sleep(5 * time.Millisecond)
		sender.Send(500, wire.KCMPut, wire.EncodeCMPut(11, []byte("late")))
		f, _ := recvr.Inbox().Recv()
		present, _, data, _ := wire.DecodeCMMsg(f.Data)
		if !present || string(data) != "late" {
			t.Errorf("parked get answered with (%v,%q)", present, data)
		}
	})
}

func TestV2DiskSpillSlowsLogging(t *testing.T) {
	// Past the memory budget, logging pays the disk penalty (the LU
	// effect, §5.2).
	elapsed := func(memLimit int64) time.Duration {
		var d time.Duration
		sim := vtime.NewSim()
		sim.Run(func() {
			fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
			startFakeEL(sim, fab, elNode, 0)
			cfg := v2Config(0, 2, elNode)
			cfg.LogCopyPerByte = 5 * time.Nanosecond
			cfg.DiskCopyPerByte = 67 * time.Nanosecond
			cfg.LogMemLimit = memLimit
			dev, _ := StartV2(sim, fab, cfg)
			dev.Init()
			t0 := sim.Now()
			for i := 0; i < 10; i++ {
				dev.BSend(1, make([]byte, 100_000))
			}
			d = sim.Now() - t0
		})
		return d
	}
	fast := elapsed(1 << 30) // never spills
	slow := elapsed(100_000) // spills after the first message
	if slow <= fast {
		t.Errorf("disk spill did not slow logging: mem=%v disk=%v", fast, slow)
	}
}

func TestV2StateAccessors(t *testing.T) {
	st := core.NewState(3)
	if st.Rank() != 3 {
		t.Errorf("rank = %d", st.Rank())
	}
}
