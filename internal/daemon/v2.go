package daemon

import (
	"fmt"
	"sync/atomic"
	"time"

	"mpichv/internal/ckpt"
	"mpichv/internal/core"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// V2 is the MPICH-V2 communication daemon: a single actor owning the
// node's endpoint, its protocol state (core.State) and the Unix-socket
// mailboxes of its MPI process.
type V2 struct {
	rt  vtime.Runtime
	cfg Config
	ep  transport.Endpoint
	in  *vtime.Mailbox[dEvent]
	rsp *vtime.Mailbox[rankResp]

	st       *core.State
	arrived  []core.StashedMsg
	appState []byte
	restored bool

	ckptFlag    atomic.Bool
	ckptSeq     uint64
	ckptDone    uint64                    // highest acked checkpoint seq
	ckptVectors map[uint64]map[int]uint64 // seq → HR vector captured at snapshot

	finished bool
	stats    Stats

	// Scheduler status counters, reset at each checkpoint so the
	// adaptive policy sees traffic since the last checkpoint.
	schedSent, schedRecv uint64

	// Event batching (Config.EventBatching): events accumulated while
	// an event-logger exchange is in flight.
	elInFlight int
	elQueue    []core.Event

	// recovery buffering: frames that arrive while we fetch our image
	// and event list are replayed into the normal handler afterwards.
	recovering     bool
	recoverPending []transport.Frame
	recoverReqs    []rankReq
}

// StartV2 attaches a V2 daemon for cfg.Rank to the fabric, spawns its
// actors, and returns the Device for the MPI process.
func StartV2(rt vtime.Runtime, fab transport.Fabric, cfg Config) (Device, *V2) {
	d := &V2{
		rt:          rt,
		cfg:         cfg,
		st:          core.NewState(cfg.Rank),
		ckptVectors: make(map[uint64]map[int]uint64),
	}
	d.ep = fab.Attach(cfg.Rank, fmt.Sprintf("cn%d", cfg.Rank))
	d.in = vtime.NewMailbox[dEvent](rt, fmt.Sprintf("v2d%d", cfg.Rank))
	d.rsp = vtime.NewMailbox[rankResp](rt, fmt.Sprintf("v2r%d", cfg.Rank))
	pump(rt, fmt.Sprintf("pump-cn%d", cfg.Rank), d.ep, d.in)
	rt.Go(fmt.Sprintf("daemon-cn%d", cfg.Rank), d.run)
	return &proxy{rank: cfg.Rank, delay: cfg.UnixDelay, in: d.in, resp: d.rsp, ckpt: &d.ckptFlag}, d
}

// Stats returns the daemon's counters. Read it after the simulation (or
// from the owning actor) — it is not synchronized.
func (d *V2) Stats() Stats { return d.stats }

// State exposes the protocol state for tests and the checkpoint
// scheduler status plumbing.
func (d *V2) State() *core.State { return d.st }

func (d *V2) run() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedPanic); ok {
				d.rsp.Close()
				return
			}
			panic(r)
		}
	}()
	if d.cfg.Restarted {
		d.recover()
	}
	for {
		e := d.next()
		if e.isFrame {
			d.handleFrame(e.frame)
			continue
		}
		d.handleReq(e.req)
	}
}

// next pulls one event, unwinding the actor if the node has been killed.
func (d *V2) next() dEvent {
	e, ok := d.in.Recv()
	if !ok || e.closed {
		panic(killedPanic{})
	}
	return e
}

// --- Recovery (figure 2) -------------------------------------------------

func (d *V2) recover() {
	d.recovering = true
	d.restored = false

	// Phase A1: fetch the latest checkpoint image, if any.
	if d.cfg.CkptServer >= 0 {
		d.ep.Send(d.cfg.CkptServer, wire.KCkptFetch, nil)
		data := d.awaitFrame(wire.KCkptImage)
		present, img, err := wire.DecodeCkptImage(data)
		if err != nil {
			panic(fmt.Sprintf("daemon: rank %d: bad checkpoint image: %v", d.cfg.Rank, err))
		}
		if present {
			im, err := ckpt.DecodeImage(img)
			if err != nil {
				panic(fmt.Sprintf("daemon: rank %d: corrupt checkpoint: %v", d.cfg.Rank, err))
			}
			sn, err := im.ProtoSnapshot()
			if err != nil {
				panic(fmt.Sprintf("daemon: rank %d: corrupt protocol snapshot: %v", d.cfg.Rank, err))
			}
			d.st = core.Restore(sn)
			d.appState = im.AppState
			d.restored = true
			d.ckptSeq = im.Seq
			d.ckptDone = im.Seq
		}
	}

	// Phase A2: download the reception events to replay.
	d.ep.Send(d.cfg.EventLogger, wire.KEventFetch, wire.EncodeU64(d.st.Clock()))
	evData := d.awaitFrame(wire.KEventFetched)
	evs, err := wire.DecodeEvents(evData)
	if err != nil {
		panic(fmt.Sprintf("daemon: rank %d: bad event list: %v", d.cfg.Rank, err))
	}
	d.st.StartRecovery(evs)

	// Phase B: ask every peer to re-send from what we have delivered.
	for q := 0; q < d.cfg.Size; q++ {
		if q == d.cfg.Rank {
			continue
		}
		d.ep.Send(q, wire.KRestart1, wire.EncodeU64(d.st.RestartAnnouncement(q)))
	}

	// Frames and rank requests that raced with recovery now go through
	// the normal path (the new MPI process's Init is typically among
	// them).
	d.recovering = false
	pend := d.recoverPending
	reqs := d.recoverReqs
	d.recoverPending, d.recoverReqs = nil, nil
	for _, f := range pend {
		d.handleFrame(f)
	}
	for _, r := range reqs {
		d.handleReq(r)
	}
}

// awaitFrame blocks until a frame of the wanted kind arrives, buffering
// everything else for post-recovery processing.
func (d *V2) awaitFrame(kind uint8) []byte {
	for {
		e := d.next()
		if !e.isFrame {
			d.recoverReqs = append(d.recoverReqs, e.req)
			continue
		}
		if e.frame.Kind == kind {
			return e.frame.Data
		}
		d.recoverPending = append(d.recoverPending, e.frame)
	}
}

// --- Frame handling ------------------------------------------------------

func (d *V2) handleFrame(f transport.Frame) {
	if d.recovering {
		d.recoverPending = append(d.recoverPending, f)
		return
	}
	switch f.Kind {
	case wire.KPayload:
		hdr, body, err := wire.DecodePayload(f.Data)
		if err != nil {
			return
		}
		if d.st.Offer(f.From, hdr.SenderClock, hdr.DevKind, body) == core.OfferQueue {
			d.arrived = append(d.arrived, core.StashedMsg{From: f.From, Clock: hdr.SenderClock, Kind: hdr.DevKind, Data: body})
		}
		d.stats.RecvMsgs++
		d.stats.RecvBytes += int64(len(body))
		d.schedRecv += uint64(len(body))

	case wire.KEventAck:
		n, err := wire.DecodeU32(f.Data)
		if err == nil {
			d.st.EventsAcked(int(n))
			d.elInFlight -= int(n)
			if len(d.elQueue) > 0 && d.elInFlight == 0 {
				q := d.elQueue
				d.elQueue = nil
				d.elInFlight += len(q)
				d.ep.Send(d.cfg.EventLogger, wire.KEventLog, wire.EncodeEvents(q))
				d.stats.EventsLogged += int64(len(q))
			}
		}

	case wire.KRestart1:
		hp, err := wire.DecodeU64(f.Data)
		if err != nil {
			return
		}
		resend, myHR := d.st.OnRestart1(f.From, hp)
		d.ep.Send(f.From, wire.KRestart2, wire.EncodeU64(myHR))
		d.transmitSaved(f.From, resend)

	case wire.KRestart2:
		hp, err := wire.DecodeU64(f.Data)
		if err != nil {
			return
		}
		d.transmitSaved(f.From, d.st.OnRestart2(f.From, hp))

	case wire.KCkptNote:
		upTo, err := wire.DecodeU64(f.Data)
		if err == nil {
			d.stats.GCFreedBytes += d.st.CollectGarbage(f.From, upTo)
		}

	case wire.KSchedPoll:
		d.ep.Send(f.From, wire.KSchedStat, wire.EncodeStatus(wire.NodeStatus{
			Rank:      d.cfg.Rank,
			LogBytes:  uint64(d.st.LogBytes()),
			SentBytes: d.schedSent,
			RecvBytes: d.schedRecv,
		}))

	case wire.KCkptOrder:
		if d.cfg.CkptServer >= 0 {
			d.ckptFlag.Store(true)
		}

	case wire.KCkptSaveAck:
		seq, err := wire.DecodeU64(f.Data)
		if err != nil || seq <= d.ckptDone {
			return
		}
		d.ckptDone = seq
		vec := d.ckptVectors[seq]
		for s := range d.ckptVectors {
			if s <= seq {
				delete(d.ckptVectors, s)
			}
		}
		// §4.6.1: notify every peer of the checkpointed horizon so
		// they can garbage-collect their SAVED copies.
		for q := 0; q < d.cfg.Size; q++ {
			if q == d.cfg.Rank {
				continue
			}
			d.ep.Send(q, wire.KCkptNote, wire.EncodeU64(vec[q]))
		}
	}
}

// transmitSaved re-sends saved payload copies after a peer restart.
func (d *V2) transmitSaved(to int, msgs []core.SavedMsg) {
	for _, m := range msgs {
		d.ep.Send(to, wire.KPayload, wire.EncodePayload(wire.PayloadHeader{SenderClock: m.Clock, DevKind: m.Kind}, m.Data))
		d.stats.Resent++
	}
}

// --- Rank requests -------------------------------------------------------

func (d *V2) handleReq(r rankReq) {
	switch r.op {
	case opInit:
		d.reply(rankResp{rank: d.cfg.Rank, size: d.cfg.Size, appState: d.appState, restarted: d.restored || d.st.Replaying()})
	case opSend:
		d.doSend(r.to, r.data)
	case opRecv:
		d.doRecv()
	case opProbe:
		d.doProbe()
	case opCkpt:
		d.doCheckpoint(r.data)
	case opFinish:
		if d.cfg.Dispatcher >= 0 {
			d.ep.Send(d.cfg.Dispatcher, wire.KFinalize, nil)
		}
		d.finished = true
		d.reply(rankResp{})
	}
}

func (d *V2) reply(r rankResp) {
	d.rsp.SendAfter(d.cfg.UnixDelay, r)
}

func (d *V2) doSend(to int, data []byte) {
	if to == d.cfg.Rank {
		panic("daemon: device-level self send (the MPI layer must short-circuit self messages)")
	}
	id, transmit := d.st.PrepareSend(to, 0, data)

	// Sender-based logging cost: copying the payload into the SAVED
	// log, plus the Unix-socket copy for store-and-forwarded eager
	// payloads, spilling to disk past the memory budget (§5.2: LU's
	// poor performance; the daemon "becomes a competitor of the MPI
	// process for CPU resources").
	if n := len(data); n > 0 {
		cost := time.Duration(n) * d.cfg.LogCopyPerByte
		if d.cfg.PipelineLimit <= 0 || n <= d.cfg.PipelineLimit {
			cost += time.Duration(n) * d.cfg.UnixCopyPerByte
		}
		if d.cfg.LogMemLimit > 0 && d.st.LogBytes() > d.cfg.LogMemLimit {
			cost += time.Duration(n) * d.cfg.DiskCopyPerByte
		}
		if d.cfg.LogHardLimit > 0 && d.st.LogBytes() > d.cfg.LogHardLimit {
			d.stats.LogOverflowed = true
		}
		if cost > 0 {
			d.rt.Sleep(cost)
		}
	}

	// WAITLOGGED(): no payload leaves before the event logger has
	// acknowledged every reception event submitted so far.
	if d.st.SendBlocked() && !d.cfg.NoSendGating {
		d.stats.ELWaits++
		for d.st.SendBlocked() {
			e := d.next()
			if e.isFrame {
				d.handleFrame(e.frame)
			} else {
				panic(fmt.Sprintf("daemon: rank %d: concurrent rank request during send", d.cfg.Rank))
			}
		}
	}

	if transmit {
		d.ep.Send(to, wire.KPayload, wire.EncodePayload(wire.PayloadHeader{SenderClock: id.Clock}, data))
		d.stats.SentMsgs++
		d.stats.SentBytes += int64(len(data))
		d.schedSent += uint64(len(data))
	}
	d.reply(rankResp{})
}

func (d *V2) doRecv() {
	if d.st.Replaying() {
		for {
			if m, _, ok := d.st.TakeStashed(); ok {
				d.stats.Replayed++
				if !d.st.Replaying() {
					d.arrived = append(d.arrived, d.st.DrainStash()...)
				}
				d.replyPayload(m.From, m.Data)
				return
			}
			e := d.next()
			if e.isFrame {
				d.handleFrame(e.frame)
			}
		}
	}
	for len(d.arrived) == 0 {
		e := d.next()
		if e.isFrame {
			d.handleFrame(e.frame)
		}
	}
	m := d.arrived[0]
	d.arrived = d.arrived[1:]
	ev := d.st.Commit(m.From, m.Clock)
	d.submitEvent(ev)
	d.replyPayload(m.From, m.Data)
}

// replyPayload delivers a payload to the MPI process, charging the
// Unix-socket copy for store-and-forwarded eager messages.
func (d *V2) replyPayload(from int, data []byte) {
	if n := len(data); n > 0 && d.cfg.UnixCopyPerByte > 0 &&
		(d.cfg.PipelineLimit <= 0 || n <= d.cfg.PipelineLimit) {
		d.rt.Sleep(time.Duration(n) * d.cfg.UnixCopyPerByte)
	}
	d.reply(rankResp{from: from, data: data})
}

func (d *V2) submitEvent(ev core.Event) {
	if d.cfg.EventBatching && d.elInFlight > 0 {
		d.elQueue = append(d.elQueue, ev)
		return
	}
	d.elInFlight++
	d.ep.Send(d.cfg.EventLogger, wire.KEventLog, wire.EncodeEvents([]core.Event{ev}))
	d.stats.EventsLogged++
}

func (d *V2) doProbe() {
	// Opportunistically drain arrived frames first.
	for {
		e, ok := d.in.TryRecv()
		if !ok {
			break
		}
		if e.closed {
			panic(killedPanic{})
		}
		if e.isFrame {
			d.handleFrame(e.frame)
		} else {
			panic("daemon: concurrent rank request during probe")
		}
	}
	if d.st.Replaying() {
		// The log dictates the exact probe outcomes (§4.5: "in order
		// to replay exactly the same execution").
		if d.st.ReplayProbeMiss() {
			d.reply(rankResp{flag: false})
			return
		}
		for !d.st.ReplayReady() {
			e := d.next()
			if e.isFrame {
				d.handleFrame(e.frame)
			}
		}
		d.reply(rankResp{flag: true})
		return
	}
	if len(d.arrived) > 0 {
		d.reply(rankResp{flag: true})
		return
	}
	d.st.ProbeMiss()
	d.reply(rankResp{flag: false})
}

func (d *V2) doCheckpoint(appState []byte) {
	d.ckptFlag.Store(false)
	if d.cfg.CkptServer < 0 {
		d.reply(rankResp{})
		return
	}
	d.ckptSeq++
	seq := d.ckptSeq
	sn := d.st.Snapshot()
	proto, err := sn.Encode()
	if err != nil {
		panic(fmt.Sprintf("daemon: rank %d: snapshot encode: %v", d.cfg.Rank, err))
	}
	im := &ckpt.Image{Rank: d.cfg.Rank, Seq: seq, AppState: appState, Proto: proto}
	img, err := im.Encode()
	if err != nil {
		panic(fmt.Sprintf("daemon: rank %d: image encode: %v", d.cfg.Rank, err))
	}
	vec := make(map[int]uint64, len(sn.HR))
	for k, v := range sn.HR {
		vec[k] = v
	}
	d.ckptVectors[seq] = vec
	d.schedSent, d.schedRecv = 0, 0
	// The transfer is asynchronous: execution continues while the
	// image streams to the checkpoint server (the paper's fork trick).
	d.ep.Send(d.cfg.CkptServer, wire.KCkptSave, wire.EncodeCkptSave(seq, img))
	d.stats.Checkpoints++
	d.stats.CkptBytes += int64(len(img))
	d.reply(rankResp{})
}
