package daemon

import (
	"fmt"
	"hash/crc32"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"

	"mpichv/internal/ckpt"
	"mpichv/internal/core"
	"mpichv/internal/shard"
	"mpichv/internal/trace"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// Default bases for the retry machinery; see Config.
const (
	defELAckTimeout   = 25 * time.Millisecond
	defCkptAckTimeout = 250 * time.Millisecond
	defFetchTimeout   = 25 * time.Millisecond
	defRestartRetries = 6
	defFailoverAfter  = 3
	finalizeRetries   = 8
)

// V2 is the MPICH-V2 communication daemon: a single actor owning the
// node's endpoint, its protocol state (core.State) and the Unix-socket
// mailboxes of its MPI process.
type V2 struct {
	rt  vtime.Runtime
	cfg Config
	ep  transport.Endpoint
	in  *vtime.Mailbox[dEvent]
	rsp *vtime.Mailbox[rankResp]

	st       *core.State
	arrived  []core.StashedMsg
	appState []byte
	restored bool

	ckptFlag atomic.Bool
	ckptSeq  uint64
	ckptDone uint64 // highest retired (durably acked) checkpoint seq

	// Delta checkpointing base: the seq of the last retired checkpoint
	// and the SeqTo marks of its snapshot. The next checkpoint ships
	// only SAVED entries beyond those marks — the store holds the rest
	// inside the base image, so re-shipping them buys nothing.
	ckptBase  uint64
	ckptMarks map[int]uint64

	finished bool
	finAcked bool
	finTimer uint64
	stats    Stats

	// tr mirrors cfg.Tracer; nil disables tracing (every Record call
	// is a nil-receiver no-op).
	tr *trace.Recorder

	// Scheduler status counters, reset at each checkpoint so the
	// adaptive policy sees traffic since the last checkpoint.
	schedSent, schedRecv uint64

	// Virtual-time timers: after() registers a callback and posts a
	// dEvent; handleTimer() fires it unless cancel()led meanwhile.
	timers   map[uint64]func()
	timerSeq uint64

	// Event-logger exchange state, one elShard per replica group. The
	// non-sharded configurations (ELReplicas or legacy
	// EventLogger+ELBackups) are the single-shard special case; with
	// ELShardGroups the elMap ring routes each channel (sender,
	// receiver) to its shard, elDead tracks groups the dispatcher
	// declared below quorum (their key ranges reroute to the ring
	// successor), elNodeShard resolves an ack's sender to its shard, and
	// elHistory retains this rank's committed determinants per sender
	// channel so a rebuilt or rerouted shard can be backfilled
	// (DESIGN.md §15).
	elShards    []*elShard
	elMap       *shard.Ring
	elDead      map[int]bool
	elNodeShard map[int]*elShard
	elHistory   map[int][]core.Event

	// Checkpoint push state, mirroring the event-logger ring: in-flight
	// checkpoints live in ckptRing ascending by seq, each streaming as
	// individually acked chunks, and retire strictly from the front so
	// ckptDone, the delta base and the KCkptNote GC horizons advance in
	// submission order exactly as the stop-and-wait path did.
	csTargets []int
	csIdx     int
	csStrikes int
	ckptRing  []ckptXfer
	ckptTimer uint64
	csQ       int
	csBits    map[int]uint

	// Pull recovery: when the daemon starves waiting for a deliverable
	// message on a lossy fabric, it re-announces its delivered horizon
	// so peers re-send anything that was dropped.
	pullTimer    uint64
	pullAttempts int

	// elDegraded latches the bounded-memory stall while pending
	// determinants sit between the ELLowWater/ELHighWater hysteresis
	// band (see Config.ELHighWater).
	elDegraded bool

	// Determinant suppression (Config.DetMode). detPoisoned holds the
	// per-channel poison latches of the adaptive classifier. detEpoch
	// buffers suppressed events awaiting their batch flush to the EL;
	// detPending is the superset still short of quorum durability
	// (buffered + in flight), piggybacked on every outgoing payload.
	// detForeign caches determinants piggybacked by peers, keyed
	// origin → RecvClock, served back on KDetFlushReq when the origin
	// restarts.
	detPoisoned map[int]bool
	detEpoch    []core.Event
	detPending  []core.Event
	detForeign  map[int]map[uint64]core.Event

	// recovery buffering: frames that arrive while we fetch our image
	// and event list are replayed into the normal handler afterwards.
	recovering     bool
	recoverPending []transport.Frame
	recoverReqs    []rankReq
}

// StartV2 attaches a V2 daemon for cfg.Rank to the fabric, spawns its
// actors, and returns the Device for the MPI process.
func StartV2(rt vtime.Runtime, fab transport.Fabric, cfg Config) (Device, *V2) {
	d := &V2{
		rt:          rt,
		cfg:         cfg,
		st:          core.NewState(cfg.Rank),
		timers:      make(map[uint64]func()),
		detPoisoned: make(map[int]bool),
	}
	d.tr = cfg.Tracer
	d.tr.SetIncarnation(int(cfg.Incarnation))
	d.ckptSeq = cfg.Incarnation << 32
	d.ckptDone = d.ckptSeq
	// Each shard is an independent submission stream: its own seq space
	// (contiguous per shard, so the servers' cumulative-ack trackers keep
	// working), ring, window queue and retransmit timer.
	newShard := func(id int, targets []int, q int) *elShard {
		if q > len(targets) {
			q = len(targets)
		}
		return &elShard{
			id:      id,
			targets: append([]int(nil), targets...),
			q:       q,
			seq:     cfg.Incarnation << 32,
			bits:    replicaBits(cfg.Rank, targets),
		}
	}
	switch {
	case len(cfg.ELShardGroups) > 0:
		q := cfg.ELQuorum
		if q <= 0 {
			q = 1
		}
		for i, grp := range cfg.ELShardGroups {
			d.elShards = append(d.elShards, newShard(i, grp, q))
		}
		if len(d.elShards) > 1 {
			d.elMap = shard.New(len(d.elShards), cfg.ELShardSeed)
			d.elDead = make(map[int]bool)
			d.elHistory = make(map[int][]core.Event)
		}
	case len(cfg.ELReplicas) > 0 && cfg.ELQuorum > 0:
		d.elShards = []*elShard{newShard(0, cfg.ELReplicas, cfg.ELQuorum)}
	case cfg.EventLogger >= 0:
		d.elShards = []*elShard{newShard(0, append([]int{cfg.EventLogger}, cfg.ELBackups...), 0)}
	}
	d.elNodeShard = make(map[int]*elShard)
	for _, sh := range d.elShards {
		for _, t := range sh.targets {
			d.elNodeShard[t] = sh
		}
	}
	switch {
	case len(cfg.CSReplicas) > 0 && cfg.CSQuorum > 0:
		d.csTargets = append([]int(nil), cfg.CSReplicas...)
		d.csQ = cfg.CSQuorum
		if d.csQ > len(d.csTargets) {
			d.csQ = len(d.csTargets)
		}
	case cfg.CkptServer >= 0:
		d.csTargets = append([]int{cfg.CkptServer}, cfg.CSBackups...)
	}
	d.csBits = replicaBits(cfg.Rank, d.csTargets)
	d.ep = fab.Attach(cfg.Rank, fmt.Sprintf("cn%d", cfg.Rank))
	d.in = vtime.NewMailbox[dEvent](rt, fmt.Sprintf("v2d%d", cfg.Rank))
	d.rsp = vtime.NewMailbox[rankResp](rt, fmt.Sprintf("v2r%d", cfg.Rank))
	pump(rt, fmt.Sprintf("pump-cn%d", cfg.Rank), d.ep, d.in)
	rt.Go(fmt.Sprintf("daemon-cn%d", cfg.Rank), d.run)
	return &proxy{rank: cfg.Rank, delay: cfg.UnixDelay, in: d.in, resp: d.rsp, ckpt: &d.ckptFlag}, d
}

// replicaBits assigns each node of a target group a fixed bit in the
// per-request ack bitmask, replacing per-ack linear scans and per-batch
// ack sets. Replica groups are small and static for the life of a run;
// 64 bits is far beyond any sane replication factor.
func replicaBits(rank int, targets []int) map[int]uint {
	if len(targets) > 64 {
		panic(fmt.Sprintf("daemon: rank %d: %d replicas exceed the 64-bit ack mask", rank, len(targets)))
	}
	m := make(map[int]uint, len(targets))
	for i, t := range targets {
		m[t] = uint(i)
	}
	return m
}

// Stats returns the daemon's counters. Read it after the simulation (or
// from the owning actor) — it is not synchronized.
func (d *V2) Stats() Stats { return d.stats }

// State exposes the protocol state for tests and the checkpoint
// scheduler status plumbing.
func (d *V2) State() *core.State { return d.st }

// --- Timeout configuration -----------------------------------------------

// timeout resolves a Config duration: zero selects the default,
// negative disables (returns 0).
func timeout(v, def time.Duration) time.Duration {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

func (d *V2) elAckTimeout() time.Duration   { return timeout(d.cfg.ELAckTimeout, defELAckTimeout) }
func (d *V2) ckptAckTimeout() time.Duration { return timeout(d.cfg.CkptAckTimeout, defCkptAckTimeout) }
func (d *V2) fetchTimeout() time.Duration   { return timeout(d.cfg.FetchTimeout, defFetchTimeout) }

func (d *V2) restartRetries() int {
	if d.cfg.RestartRetries <= 0 {
		return defRestartRetries
	}
	return d.cfg.RestartRetries
}

func (d *V2) failoverAfter() int {
	if d.cfg.FailoverAfter <= 0 {
		return defFailoverAfter
	}
	return d.cfg.FailoverAfter
}

// --- Determinant suppression ----------------------------------------------

// Defaults for the suppression knobs; see Config.
const (
	defDetEpoch    = 16
	defDetPiggyMax = 64
	// detCacheMax bounds the per-origin foreign-determinant cache: only
	// the newest entries matter for a restarting origin (older ones are
	// below its checkpoint horizon or regenerable), so the cache prunes
	// its lowest clocks past this size.
	detCacheMax = 512
)

// detMode resolves the effective suppression policy: without an event
// logger nothing is logged and there is nothing to suppress.
func (d *V2) detMode() int {
	if !d.hasEL() {
		return DetOff
	}
	return d.cfg.DetMode
}

func (d *V2) detEpochSize() int {
	if d.cfg.DetEpoch > 0 {
		return d.cfg.DetEpoch
	}
	return defDetEpoch
}

func (d *V2) detPiggyMax() int {
	if d.cfg.DetPiggyMax > 0 {
		return d.cfg.DetPiggyMax
	}
	return defDetPiggyMax
}

// classify decides, before the commit, whether the determinant of the
// next delivery from "from" may be suppressed. The adaptive policy
// suppresses only deliveries the daemon can prove deterministic from
// its own vantage point: no unsuccessful probe since the last delivery
// (a probe means the application branched on message timing) and no
// competing undelivered arrival from another sender (the delivery order
// across senders is a race the determinant would have to pin down).
// Either signal poisons the channel permanently — a source that raced
// once may race again, and a wrong suppression is unrecoverable. The
// aggressive policy skips the competing-arrival check and the poison
// latch; it exists to prove the auditors catch unsafe classifiers.
func (d *V2) classify(from int, probes uint32, competing int) bool {
	switch d.detMode() {
	case DetAdaptive:
		if probes > 0 || competing > 0 {
			if !d.detPoisoned[from] {
				d.detPoisoned[from] = true
				d.stats.DetPoisoned++
			}
			return false
		}
		if d.detPoisoned[from] {
			return false
		}
		if len(d.detPending) >= d.detPiggyMax() {
			// Backlog cap: flush what is buffered and take the
			// pessimistic path until durability catches up, so the
			// piggyback block on every payload stays bounded.
			d.flushDetEpoch()
			return false
		}
		return true
	case DetAggressive:
		return probes == 0
	}
	return false
}

// suppressEvent records a suppressed determinant: it joins the epoch
// buffer (flushed to the EL as one batch off the critical path) and the
// pending set piggybacked on every outgoing payload until durable.
func (d *V2) suppressEvent(ev core.Event) {
	d.stats.DetSuppressed++
	d.detEpoch = append(d.detEpoch, ev)
	d.detPending = append(d.detPending, ev)
	if len(d.detEpoch) >= d.detEpochSize() {
		d.flushDetEpoch()
	}
}

// flushDetEpoch submits the buffered suppressed determinants as one
// ungated batch: it rides the same ring, retransmit and cumulative-ack
// machinery as pessimistic batches, but retiring it credits nothing to
// WAITLOGGED — the events never blocked anything.
func (d *V2) flushDetEpoch() {
	if len(d.detEpoch) == 0 || !d.hasEL() {
		return
	}
	evs := d.detEpoch
	d.detEpoch = nil
	d.stats.DetEpochFlushes++
	if len(d.elShards) == 1 {
		d.sendEvents(d.elShards[0], evs, 0, originOwn)
		return
	}
	// Sharded: the epoch spans channels owned by different shards; split
	// it along the placement so each determinant lands where a restart
	// fetch will look for it.
	groups := make(map[*elShard][]core.Event)
	for _, ev := range evs {
		sh := d.elShardFor(ev.Sender, d.cfg.Rank)
		groups[sh] = append(groups[sh], ev)
	}
	for _, sh := range d.elShards {
		if g := groups[sh]; len(g) > 0 {
			d.sendEvents(sh, g, 0, originOwn)
		}
	}
}

// detRetire prunes pending suppressed determinants that just became
// quorum-durable, shrinking the piggyback block.
func (d *V2) detRetire(evs []core.Event) {
	if len(d.detPending) == 0 {
		return
	}
	durable := make(map[uint64]bool, len(evs))
	for _, ev := range evs {
		durable[ev.RecvClock] = true
	}
	kept := d.detPending[:0]
	for _, ev := range d.detPending {
		if !durable[ev.RecvClock] {
			kept = append(kept, ev)
		}
	}
	d.detPending = kept
	if len(d.detPending) == 0 {
		d.detPending = nil
	}
}

// drainDetPending blocks until every suppressed determinant is
// quorum-durable — the synchronous closing of the asynchronous path,
// used where volatile determinants must not survive: before a snapshot
// is captured (a crash after the checkpoint could otherwise leave
// permanent holes below its horizon, unreachable by replay
// regeneration) and before finalize (the post-run audits demand a
// gap-free logged history). The EL retransmit timers keep the exchange
// turning while we wait.
func (d *V2) drainDetPending() {
	if !d.hasEL() {
		return
	}
	for len(d.detPending) > 0 {
		e := d.next()
		if e.isFrame {
			d.handleFrame(e.frame)
		} else if e.isTimer {
			d.handleTimer(e.timer)
		} else {
			panic(fmt.Sprintf("daemon: rank %d: concurrent rank request during determinant drain", d.cfg.Rank))
		}
	}
}

// absorbDets handles determinants piggybacked on an incoming payload:
// they are cached for the origin's possible restart (KDetFlushReq) and
// relayed to the event loggers on our own submission stream — a second,
// receiver-driven durability path that needs no action from the origin.
func (d *V2) absorbDets(origin int, dets []core.Event) {
	cache := d.detForeign[origin]
	if cache == nil {
		if d.detForeign == nil {
			d.detForeign = make(map[int]map[uint64]core.Event)
		}
		cache = make(map[uint64]core.Event, len(dets))
		d.detForeign[origin] = cache
	}
	var fresh []core.Event
	for _, ev := range dets {
		if _, ok := cache[ev.RecvClock]; ok {
			continue
		}
		cache[ev.RecvClock] = ev
		fresh = append(fresh, ev)
	}
	if len(fresh) == 0 {
		return
	}
	if len(cache) > detCacheMax {
		d.pruneDetCache(cache)
	}
	d.stats.DetRelayed += int64(len(fresh))
	if !d.hasEL() {
		return
	}
	if len(d.elShards) == 1 {
		d.sendEvents(d.elShards[0], fresh, 0, origin)
		return
	}
	// Relayed determinants describe the origin's reception channels:
	// route each by (sender, origin) so they share the shard its own
	// submissions and its restart fetch use.
	groups := make(map[*elShard][]core.Event)
	for _, ev := range fresh {
		sh := d.elShardFor(ev.Sender, origin)
		groups[sh] = append(groups[sh], ev)
	}
	for _, sh := range d.elShards {
		if g := groups[sh]; len(g) > 0 {
			d.sendEvents(sh, g, 0, origin)
		}
	}
}

// pruneDetCache drops the oldest half of a foreign-determinant cache
// (lowest RecvClocks — below any horizon a restarting origin will ask
// about, or regenerable if not).
func (d *V2) pruneDetCache(cache map[uint64]core.Event) {
	clocks := make([]uint64, 0, len(cache))
	for c := range cache {
		clocks = append(clocks, c)
	}
	sort.Slice(clocks, func(i, j int) bool { return clocks[i] < clocks[j] })
	for _, c := range clocks[:len(clocks)/2] {
		delete(cache, c)
	}
}

// foreignDetsFor returns the cached determinants of a peer in clock
// order, for a KDetFlushResp.
func (d *V2) foreignDetsFor(origin int) []core.Event {
	cache := d.detForeign[origin]
	if len(cache) == 0 {
		return nil
	}
	out := make([]core.Event, 0, len(cache))
	for _, ev := range cache {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RecvClock < out[j].RecvClock })
	return out
}

// backoff builds the retransmit backoff for this daemon's service
// exchanges: rank- and incarnation-seeded jitter desynchronizes the
// retry storms of many daemons hammering the same replica group, while
// staying a pure function of the configuration so chaos runs remain
// reproducible.
func (d *V2) backoff(base time.Duration) transport.Backoff {
	return transport.Backoff{Base: base, Jitter: 0.2, Seed: uint64(d.cfg.Rank)*0x9e3779b9 + d.cfg.Incarnation}
}

// --- Timers ---------------------------------------------------------------

// after schedules fn on the daemon's own actor loop: the callback runs
// when the daemon next pulls its inbox, never concurrently with other
// daemon work.
func (d *V2) after(delay time.Duration, fn func()) uint64 {
	d.timerSeq++
	id := d.timerSeq
	d.timers[id] = fn
	d.in.SendAfter(delay, dEvent{isTimer: true, timer: id})
	return id
}

func (d *V2) cancel(id uint64) { delete(d.timers, id) }

func (d *V2) handleTimer(id uint64) {
	fn, ok := d.timers[id]
	if !ok {
		return // cancelled
	}
	delete(d.timers, id)
	fn()
}

func (d *V2) run() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedPanic); ok {
				d.rsp.Close()
				return
			}
			panic(r)
		}
	}()
	if d.cfg.Restarted {
		d.recover()
	}
	for {
		e := d.next()
		if e.isFrame {
			d.handleFrame(e.frame)
			continue
		}
		if e.isTimer {
			d.handleTimer(e.timer)
			continue
		}
		d.handleReq(e.req)
	}
}

// next pulls one event, unwinding the actor if the node has been killed.
func (d *V2) next() dEvent {
	e, ok := d.in.Recv()
	if !ok || e.closed {
		panic(killedPanic{})
	}
	return e
}

// --- Recovery (figure 2) -------------------------------------------------

func (d *V2) recover() {
	d.recovering = true
	d.restored = false
	recoverFrom := d.rt.Now()
	d.tr.Record(recoverFrom, trace.EvRestartBegin, 0, 0, d.cfg.Incarnation, 0)

	// Phase A1: fetch the latest checkpoint image, if any. On a lossy
	// fabric the request or the reply can vanish, so the fetch runs
	// under a timeout with bounded backoff. A corrupt or truncated
	// image fails the integrity check and is simply re-fetched — from
	// the same server after a retransmit (legacy), or from the other
	// replicas of the group (quorum). An image that damaged is never a
	// dead end: servers only ack verified copies, so a write quorum of
	// intact ones exists somewhere.
	ckptValid := func(resp []byte) bool {
		present, img, err := wire.DecodeCkptImage(resp)
		if err != nil {
			return false
		}
		if present {
			if _, err := ckpt.DecodeImage(img); err != nil {
				d.stats.CorruptImages++
				return false
			}
		}
		return true
	}
	// Fast path first: fetch the image manifest from a read quorum, then
	// pull the chunks in parallel across the replicas serving
	// byte-identical copies, re-fetching only damaged chunks. Any
	// failure falls back to the whole-image paths below.
	fetched := false
	if len(d.csTargets) > 0 && d.ckptChunkSize() > 0 {
		if im := d.fetchImageChunked(); im != nil {
			d.restoreImage(im)
			fetched = true
		}
	}
	switch {
	case fetched:
	case d.csQ > 0:
		// Read quorum: R−Q+1 replies intersect every write quorum, so
		// at least one carries the newest durable image; take the
		// highest sequence among the verified replies.
		need := len(d.csTargets) - d.csQ + 1
		replies := d.gatherQuorum(d.csTargets, need, wire.KCkptFetch, nil, wire.KCkptImage, ckptValid, false)
		var best *ckpt.Image
		for _, resp := range replies {
			present, img, _ := wire.DecodeCkptImage(resp)
			if !present {
				continue
			}
			im, err := ckpt.DecodeImage(img)
			if err != nil {
				continue
			}
			if best == nil || im.Seq > best.Seq {
				best = im
			}
		}
		if best != nil {
			d.restoreImage(best)
		}
	case len(d.csTargets) > 0:
		data := d.fetchLoop("checkpoint image", d.csTargets, wire.KCkptFetch, nil, wire.KCkptImage, ckptValid)
		present, img, _ := wire.DecodeCkptImage(data)
		if present {
			im, err := ckpt.DecodeImage(img)
			if err != nil {
				panic(fmt.Sprintf("daemon: rank %d: corrupt checkpoint passed validation: %v", d.cfg.Rank, err))
			}
			d.restoreImage(im)
		}
	}

	// Phase A2: download the reception events to replay, same scheme.
	// In quorum mode the read-quorum replies are merged so that no
	// event acked at the write quorum is lost even when Q−1 of the
	// replicas answering are stale.
	evsValid := func(resp []byte) bool {
		_, err := wire.DecodeEvents(resp)
		return err == nil
	}
	evs := []core.Event(nil)
	switch {
	case d.elQuorumMode():
		// Shard-aware union: every shard contributes a read quorum of
		// replies and the merge spans all of them — a determinant is
		// fetchable wherever its channel was logged, including a
		// successor shard that absorbed a rebalanced range. A shard that
		// is entirely dead may answer with nothing (allowEmpty): its
		// surviving data, if any, lives on its successor or comes back
		// through the daemons' history backfill, and one dead group must
		// not wedge every restart in the system.
		all := make(map[int][]byte)
		allowEmpty := len(d.elShards) > 1
		for _, sh := range d.elShards {
			need := len(sh.targets) - sh.q + 1
			replies := d.gatherQuorum(sh.targets, need, wire.KEventFetch,
				wire.EncodeU64(d.st.Clock()), wire.KEventFetched, evsValid, allowEmpty)
			for from, data := range replies {
				all[from] = data
			}
		}
		evs = mergeEventReplies(all)
	case d.hasEL():
		evData := d.fetchLoop("event list", d.elShards[0].targets, wire.KEventFetch,
			wire.EncodeU64(d.st.Clock()), wire.KEventFetched, evsValid)
		evs, _ = wire.DecodeEvents(evData)
	}
	// Phase A2b (suppression only): merge the determinants our peers
	// cached off our piggybacks. A suppressed determinant can be relayed
	// but not yet EL-durable when we fetch — the peer's cache is the
	// only place it exists, and this bounded best-effort gather closes
	// that window. Whatever is in neither the EL nor any living cache is
	// a determinant nothing alive depends on; replay regenerates its
	// delivery instead.
	holeTolerant := d.detMode() != DetOff
	if holeTolerant && d.cfg.Size > 1 {
		evs = d.mergeDetFlush(evs)
	}
	// The fetched determinants re-seed the rebalancing history: after a
	// restart this daemon must again be able to backfill a successor
	// shard with everything it has committed since its checkpoint.
	for _, ev := range evs {
		d.noteHistory(ev)
	}
	d.stats.ReplayDropped += int64(d.st.StartRecoveryWith(evs, holeTolerant))

	// Phase B: ask every peer to re-send from what we have delivered.
	// Without a restart timeout this is fire-and-forget, as in the
	// paper; with one, we insist on a RESTART2 from each live peer,
	// retransmitting RESTART1 to the silent ones with backoff. Both
	// messages are idempotent, and peers simultaneously in recovery are
	// answered inline so two crashed nodes cannot deadlock waiting on
	// each other.
	peers := make([]int, 0, d.cfg.Size-1)
	for q := 0; q < d.cfg.Size; q++ {
		if q != d.cfg.Rank {
			peers = append(peers, q)
		}
	}
	r2Seen := make(map[int]bool, len(peers))
	handshake := func(f transport.Frame) {
		switch f.Kind {
		case wire.KRestart2:
			hp, err := wire.DecodeU64(f.Data)
			if err != nil {
				d.stats.Malformed++
				return
			}
			r2Seen[f.From] = true
			d.transmitSaved(f.From, d.st.OnRestart2(f.From, hp))
		case wire.KRestart1:
			hp, err := wire.DecodeU64(f.Data)
			if err != nil {
				d.stats.Malformed++
				return
			}
			resend, myHR := d.st.OnRestart1(f.From, hp)
			d.ep.Send(f.From, wire.KRestart2, wire.EncodeU64(myHR))
			d.transmitSaved(f.From, resend)
		default:
			d.recoverPending = append(d.recoverPending, f)
		}
	}
	restartTO := timeout(d.cfg.RestartTimeout, 0) // default: disabled
	bo := transport.Backoff{Base: restartTO}
	for attempt := 0; ; attempt++ {
		for _, q := range peers {
			if !r2Seen[q] {
				if attempt > 0 {
					d.stats.Retransmits++
				}
				d.ep.Send(q, wire.KRestart1, wire.EncodeU64(d.st.RestartAnnouncement(q)))
			}
		}
		if restartTO <= 0 || attempt >= d.restartRetries() {
			break
		}
		deadline := d.rt.Now() + bo.Delay(attempt)
		for d.rt.Now() < deadline && len(r2Seen) < len(peers) {
			f, ok := d.awaitAnyFrame(deadline - d.rt.Now())
			if !ok {
				break
			}
			handshake(f)
		}
		if len(r2Seen) == len(peers) {
			break
		}
	}

	d.tr.Record(d.rt.Now(), trace.EvRestartEnd, 0, 0,
		d.cfg.Incarnation, uint64(d.rt.Now()-recoverFrom))

	// Frames and rank requests that raced with recovery now go through
	// the normal path (the new MPI process's Init is typically among
	// them).
	d.recovering = false
	pend := d.recoverPending
	reqs := d.recoverReqs
	d.recoverPending, d.recoverReqs = nil, nil
	for _, f := range pend {
		d.handleFrame(f)
	}
	for _, r := range reqs {
		d.handleReq(r)
	}
}

// restoreImage rebuilds the daemon from a fetched (already
// integrity-verified) checkpoint image.
func (d *V2) restoreImage(im *ckpt.Image) {
	sn, err := im.ProtoSnapshot()
	if err != nil {
		panic(fmt.Sprintf("daemon: rank %d: corrupt protocol snapshot: %v", d.cfg.Rank, err))
	}
	d.st = core.Restore(sn)
	d.appState = im.AppState
	d.restored = true
	if im.Seq > d.ckptSeq {
		d.ckptSeq = im.Seq
		d.ckptDone = im.Seq
	}
	// The restored image is the store's materialized latest: it is a
	// valid base for this incarnation's first delta, and its SeqTo
	// vector bounds what that delta may omit.
	d.ckptBase = im.Seq
	d.ckptMarks = sn.SeqTo
}

// fetchImageChunked is the restart fast path: gather image manifests
// from a read quorum, group the replicas by (seq, image CRC) so chunks
// are only mixed across byte-identical copies, then pull the chunks of
// the best group in parallel. Returns nil when anything falls short —
// the caller falls back to the whole-image fetch.
func (d *V2) fetchImageChunked() *ckpt.Image {
	cs := d.ckptChunkSize()
	need := 1
	if d.csQ > 0 {
		need = len(d.csTargets) - d.csQ + 1
	}
	d.stats.ManifestFetches++
	req := wire.EncodeU32(uint32(cs))
	valid := func(resp []byte) bool {
		_, err := wire.DecodeCkptManifest(resp)
		return err == nil
	}
	replies := d.gatherQuorum(d.csTargets, need, wire.KCkptManifestReq, req, wire.KCkptManifest, valid, false)

	type group struct {
		seq uint64
		crc uint32
	}
	servers := make(map[group][]int)
	manifests := make(map[group]wire.CkptManifest)
	for from, resp := range replies {
		m, err := wire.DecodeCkptManifest(resp)
		if err != nil || !m.Present || m.ChunkSize != uint32(cs) {
			continue
		}
		g := group{m.Seq, m.ImageCRC}
		servers[g] = append(servers[g], from)
		manifests[g] = m
	}
	var best group
	found := false
	for g := range servers {
		if !found || g.seq > best.seq ||
			(g.seq == best.seq && len(servers[g]) > len(servers[best])) {
			best, found = g, true
		}
	}
	if !found {
		return nil
	}
	m := manifests[best]
	from := servers[best]
	sort.Ints(from) // deterministic chunk→replica assignment
	img := d.fetchChunks(m, from)
	if img == nil {
		return nil
	}
	im, err := ckpt.DecodeImage(img)
	if err != nil || im.BaseSeq != 0 {
		d.stats.CorruptImages++
		return nil
	}
	return im
}

// fetchChunks pulls every chunk the manifest describes, spreading the
// requests round-robin across the group's replicas — all holding
// byte-identical images, so any replica can serve any chunk — and
// validating each against its manifest CRC. Each retry round rotates
// the assignment and re-requests only the chunks still missing or
// received damaged.
func (d *V2) fetchChunks(m wire.CkptManifest, from []int) []byte {
	n := m.Chunks()
	parts := make([][]byte, n)
	got := 0
	to := d.fetchTimeout()
	if to <= 0 {
		to = defFetchTimeout // the bounded fast path cannot block forever
	}
	bo := d.backoff(to)
	for attempt := 0; got < n; attempt++ {
		if attempt > d.restartRetries() {
			return nil
		}
		for i := 0; i < n; i++ {
			if parts[i] != nil {
				continue
			}
			if attempt > 0 {
				d.stats.Retransmits++
			}
			t := from[(i+attempt)%len(from)]
			d.ep.Send(t, wire.KCkptChunkFetch,
				wire.AppendCkptChunkFetch(wire.GetBuf(wire.CkptChunkFetchLen), m.Seq, uint32(i), m.ChunkSize))
		}
		deadline := d.rt.Now() + bo.Delay(attempt)
		for d.rt.Now() < deadline && got < n {
			f, ok := d.awaitAnyFrame(deadline - d.rt.Now())
			if !ok {
				break
			}
			if f.Kind != wire.KCkptChunkData {
				d.recoverPending = append(d.recoverPending, f)
				continue
			}
			seq, idx, count, body, err := wire.DecodeCkptChunk(f.Data)
			if err != nil || seq != m.Seq || int(count) != n || int(idx) >= n {
				d.stats.Malformed++
				continue
			}
			if parts[idx] != nil {
				continue // duplicate
			}
			if crc32.ChecksumIEEE(body) != m.ChunkCRCs[idx] {
				// Damaged past the frame CRC, or a different image's
				// bytes: drop it and re-fetch just this chunk.
				d.stats.CorruptImages++
				continue
			}
			parts[idx] = append([]byte(nil), body...)
			got++
		}
	}
	img := make([]byte, 0, int(m.Size))
	for _, p := range parts {
		img = append(img, p...)
	}
	if uint64(len(img)) != m.Size || crc32.ChecksumIEEE(img) != m.ImageCRC {
		d.stats.CorruptImages++
		return nil
	}
	return img
}

// isTarget reports whether node is one of the configured targets — a
// linear scan, fine for the restart path; the per-ack hot path uses the
// elBits/csBits bitmask maps instead.
func isTarget(targets []int, node int) bool {
	for _, t := range targets {
		if t == node {
			return true
		}
	}
	return false
}

// gatherQuorum performs a restart-time read-quorum exchange: the request
// goes to every replica still missing a valid reply, and the call
// returns once `need` distinct replicas have answered. After bounded
// retries the fetch degrades to whatever non-empty reply set arrived —
// a restarting daemon that waited forever on crashed replicas would
// stall the whole run — and the degradation is counted so experiments
// can report when the intersection guarantee was forfeited. allowEmpty
// additionally lets the degrade return an empty set (a whole replica
// group down), which only a multi-shard fetch may tolerate.
func (d *V2) gatherQuorum(targets []int, need int, reqKind uint8, reqData []byte, respKind uint8, valid func([]byte) bool, allowEmpty bool) map[int][]byte {
	if need > len(targets) {
		need = len(targets)
	}
	to := d.fetchTimeout()
	if to <= 0 {
		to = defFetchTimeout // a quorum gather cannot block without a timeout
	}
	bo := d.backoff(to)
	got := make(map[int][]byte, len(targets))
	for attempt := 0; ; attempt++ {
		for _, t := range targets {
			if _, ok := got[t]; ok {
				continue
			}
			if attempt > 0 {
				d.stats.Retransmits++
			}
			d.ep.Send(t, reqKind, reqData)
		}
		deadline := d.rt.Now() + bo.Delay(attempt)
		for d.rt.Now() < deadline && len(got) < need {
			f, ok := d.awaitAnyFrame(deadline - d.rt.Now())
			if !ok {
				break
			}
			if f.Kind != respKind {
				d.recoverPending = append(d.recoverPending, f)
				continue
			}
			if !isTarget(targets, f.From) {
				continue
			}
			if !valid(f.Data) {
				d.stats.Malformed++
				continue
			}
			got[f.From] = f.Data
		}
		if len(got) >= need {
			return got
		}
		if attempt >= d.restartRetries() && (len(got) > 0 || allowEmpty) {
			d.stats.DegradedReads++
			return got
		}
	}
}

// mergeDetFlush broadcasts KDetFlushReq to every peer and merges the
// cached determinants they return into the EL-fetched replay list,
// EL events winning any clock collision. Bounded and best-effort: dead
// peers (or peers simultaneously in recovery, whose replies are
// buffered behind their own fetch) must not stall our restart.
func (d *V2) mergeDetFlush(evs []core.Event) []core.Event {
	peers := make([]int, 0, d.cfg.Size-1)
	for q := 0; q < d.cfg.Size; q++ {
		if q != d.cfg.Rank {
			peers = append(peers, q)
		}
	}
	to := d.fetchTimeout()
	if to <= 0 {
		to = defFetchTimeout // a best-effort gather cannot block forever
	}
	bo := d.backoff(to)
	got := make(map[int][]byte, len(peers))
	for attempt := 0; attempt < 3 && len(got) < len(peers); attempt++ {
		for _, q := range peers {
			if _, ok := got[q]; ok {
				continue
			}
			if attempt > 0 {
				d.stats.Retransmits++
			}
			d.ep.Send(q, wire.KDetFlushReq, nil)
		}
		deadline := d.rt.Now() + bo.Delay(attempt)
		for d.rt.Now() < deadline && len(got) < len(peers) {
			f, ok := d.awaitAnyFrame(deadline - d.rt.Now())
			if !ok {
				break
			}
			if f.Kind != wire.KDetFlushResp {
				d.recoverPending = append(d.recoverPending, f)
				continue
			}
			if _, err := wire.DecodeEvents(f.Data); err != nil {
				d.stats.Malformed++
				continue
			}
			got[f.From] = f.Data
		}
	}
	seen := make(map[uint64]bool, len(evs))
	for _, ev := range evs {
		seen[ev.RecvClock] = true
	}
	for _, data := range got {
		flushed, err := wire.DecodeEvents(data)
		if err != nil {
			continue
		}
		for _, ev := range flushed {
			// Each RecvClock names exactly one delivery of our history;
			// below the restored clock it is inside the checkpoint.
			if ev.RecvClock <= d.st.Clock() || seen[ev.RecvClock] {
				continue
			}
			seen[ev.RecvClock] = true
			evs = append(evs, ev)
			d.stats.DetFlushMerged++
		}
	}
	return evs
}

// mergeEventReplies folds a read quorum of event-list replies into one
// replay list. Identical events deduplicate; when replicas disagree
// about a (sender, channel-seq) slot — possible only when a previous
// incarnation died mid-quorum and divergent suffixes were logged across
// the group — the version held by more replicas wins (only it can have
// completed a write quorum and thus have been observable), with the
// higher RecvClock, then higher SenderClock, breaking ties
// deterministically.
func mergeEventReplies(replies map[int][]byte) []core.Event {
	count := make(map[core.Event]int)
	for _, data := range replies {
		evs, err := wire.DecodeEvents(data)
		if err != nil {
			continue
		}
		for _, ev := range evs {
			count[ev]++
		}
	}
	type slot struct {
		sender int
		seq    uint64
	}
	best := make(map[slot]core.Event)
	merged := make([]core.Event, 0, len(count))
	for ev, n := range count {
		if ev.Seq == 0 {
			merged = append(merged, ev) // unsequenced legacy event: keep as-is
			continue
		}
		k := slot{ev.Sender, ev.Seq}
		cur, ok := best[k]
		if !ok || n > count[cur] ||
			(n == count[cur] && (ev.RecvClock > cur.RecvClock ||
				(ev.RecvClock == cur.RecvClock && ev.SenderClock > cur.SenderClock))) {
			best[k] = ev
		}
	}
	for _, ev := range best {
		merged = append(merged, ev)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].RecvClock != merged[j].RecvClock {
			return merged[i].RecvClock < merged[j].RecvClock
		}
		if merged[i].Sender != merged[j].Sender {
			return merged[i].Sender < merged[j].Sender
		}
		return merged[i].Seq < merged[j].Seq
	})
	return merged
}

// fetchLoop performs one restart-time request/reply exchange against a
// service, retransmitting with exponential backoff on timeout or on a
// malformed reply, and rotating to the next backup instance after
// failoverAfter consecutive failures. It blocks until a valid reply
// arrives — a restarting daemon cannot make progress without it.
func (d *V2) fetchLoop(what string, targets []int, reqKind uint8, reqData []byte, respKind uint8, valid func([]byte) bool) []byte {
	to := d.fetchTimeout()
	bo := transport.Backoff{Base: to}
	idx, strikes := 0, 0
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			d.stats.Retransmits++
		}
		d.ep.Send(targets[idx], reqKind, reqData)
		if to <= 0 {
			data := d.awaitFrame(respKind)
			if valid(data) {
				return data
			}
			d.stats.Malformed++
			continue
		}
		deadline := d.rt.Now() + bo.Delay(attempt)
		for d.rt.Now() < deadline {
			f, ok := d.awaitAnyFrame(deadline - d.rt.Now())
			if !ok {
				break
			}
			if f.Kind != respKind {
				d.recoverPending = append(d.recoverPending, f)
				continue
			}
			if !valid(f.Data) {
				d.stats.Malformed++
				continue
			}
			return f.Data
		}
		strikes++
		if strikes >= d.failoverAfter() && len(targets) > 1 {
			idx = (idx + 1) % len(targets)
			strikes = 0
			d.stats.Failovers++
		}
	}
}

// awaitFrame blocks until a frame of the wanted kind arrives, buffering
// everything else for post-recovery processing.
func (d *V2) awaitFrame(kind uint8) []byte {
	for {
		e := d.next()
		if e.isTimer {
			d.handleTimer(e.timer)
			continue
		}
		if !e.isFrame {
			d.recoverReqs = append(d.recoverReqs, e.req)
			continue
		}
		if e.frame.Kind == kind {
			return e.frame.Data
		}
		d.recoverPending = append(d.recoverPending, e.frame)
	}
}

// awaitAnyFrame waits up to timeout for any frame, buffering rank
// requests. ok=false means the timeout expired.
func (d *V2) awaitAnyFrame(timeout time.Duration) (transport.Frame, bool) {
	expired := false
	id := d.after(timeout, func() { expired = true })
	defer d.cancel(id)
	for {
		e := d.next()
		if e.isTimer {
			d.handleTimer(e.timer)
			if expired {
				return transport.Frame{}, false
			}
			continue
		}
		if !e.isFrame {
			d.recoverReqs = append(d.recoverReqs, e.req)
			continue
		}
		return e.frame, true
	}
}

// --- Frame handling ------------------------------------------------------

func (d *V2) handleFrame(f transport.Frame) {
	if d.recovering {
		d.recoverPending = append(d.recoverPending, f)
		return
	}
	switch f.Kind {
	case wire.KPayload:
		hdr, body, err := wire.DecodePayload(f.Data)
		if err != nil {
			d.stats.Malformed++
			return
		}
		d.tr.Record(d.rt.Now(), trace.EvRecvWire, hdr.Span, 0, uint64(f.From), uint64(len(body)))
		if len(hdr.Dets) > 0 {
			d.absorbDets(f.From, hdr.Dets)
		}
		if d.st.Offer(f.From, hdr.SenderClock, hdr.PairSeq, hdr.DevKind, body) == core.OfferQueue {
			d.arrived = append(d.arrived, core.StashedMsg{From: f.From, Clock: hdr.SenderClock, Seq: hdr.PairSeq, Kind: hdr.DevKind, Data: body})
			// A newly admitted message may release successors that
			// arrived out of order and were held for the gap to fill.
			d.arrived = append(d.arrived, d.st.TakeHeld(f.From)...)
		}
		d.stats.RecvMsgs++
		d.stats.RecvBytes += int64(len(body))
		d.schedRecv += uint64(len(body))

	case wire.KEventAck:
		seq, cum, err := wire.DecodeEventAck(f.Data)
		if err != nil {
			d.stats.Malformed++
			return
		}
		wire.PutBuf(f.Data) // seq and cum are copied out; the frame is dead
		d.elAck(f.From, seq, cum)

	case wire.KRestart1:
		hp, err := wire.DecodeU64(f.Data)
		if err != nil {
			d.stats.Malformed++
			return
		}
		resend, myHR := d.st.OnRestart1(f.From, hp)
		d.ep.Send(f.From, wire.KRestart2, wire.EncodeU64(myHR))
		d.transmitSaved(f.From, resend)

	case wire.KRestart2:
		hp, err := wire.DecodeU64(f.Data)
		if err != nil {
			d.stats.Malformed++
			return
		}
		d.transmitSaved(f.From, d.st.OnRestart2(f.From, hp))

	case wire.KDetFlushReq:
		// A restarting peer gathers the determinants the living hold
		// for it (phase A2b) — the close of the in-flight-relay race:
		// a determinant we cached but whose relay has not reached the
		// EL yet would otherwise be invisible to the peer's fetch.
		d.ep.Send(f.From, wire.KDetFlushResp, wire.EncodeEvents(d.foreignDetsFor(f.From)))

	case wire.KELShardDown:
		k, err := wire.DecodeU32(f.Data)
		if err != nil {
			d.stats.Malformed++
			return
		}
		d.elShardDown(int(k))

	case wire.KELShardUp:
		k, err := wire.DecodeU32(f.Data)
		if err != nil {
			d.stats.Malformed++
			return
		}
		d.elShardUp(int(k))

	case wire.KCkptNote:
		upTo, err := wire.DecodeU64(f.Data)
		if err != nil {
			d.stats.Malformed++
			return
		}
		d.tr.Record(d.rt.Now(), trace.EvGCApply, 0, 0, uint64(f.From), upTo)
		d.stats.GCFreedBytes += d.st.CollectGarbage(f.From, upTo)

	case wire.KSchedPoll:
		d.ep.Send(f.From, wire.KSchedStat, wire.EncodeStatus(wire.NodeStatus{
			Rank:      d.cfg.Rank,
			LogBytes:  uint64(d.st.LogBytes()),
			SentBytes: d.schedSent,
			RecvBytes: d.schedRecv,
		}))

	case wire.KCkptOrder:
		if len(d.csTargets) > 0 {
			d.ckptFlag.Store(true)
		}

	case wire.KCkptSaveAck:
		// A save ack means the server verified and stored a FULL image
		// for this seq — either a legacy monolithic save or an escalated
		// transfer — so the replica holds the checkpoint regardless of
		// which chunks it acked.
		seq, err := wire.DecodeU64(f.Data)
		if err != nil {
			d.stats.Malformed++
			return
		}
		wire.PutBuf(f.Data) // seq is copied out; the frame is dead
		bit, inGroup := d.csBits[f.From]
		if !inGroup {
			return // acks from nodes outside the replica group cannot count
		}
		if x := d.findXfer(seq); x != nil && x.fullAcked&(1<<bit) == 0 {
			x.fullAcked |= 1 << bit
			d.csStrikes = 0
			d.completeCkpt(x)
		}

	case wire.KCkptChunkAck:
		seq, idx, err := wire.DecodeCkptChunkAck(f.Data)
		if err != nil {
			d.stats.Malformed++
			return
		}
		wire.PutBuf(f.Data) // fields are copied out; the frame is dead
		bit, inGroup := d.csBits[f.From]
		if !inGroup {
			return
		}
		// Chunk acks suppress retransmission of that chunk to that
		// replica; they never complete a transfer. Completion rides only
		// on KCkptSaveAck: the store sends it once the assembled image
		// verified and materialized, so per-chunk acks left behind by a
		// replica that died mid-transfer cannot fake durability.
		if x := d.findXfer(seq); x != nil && int(idx) < len(x.chunks) &&
			x.chunks[idx].acked&(1<<bit) == 0 {
			x.chunks[idx].acked |= 1 << bit
			d.csStrikes = 0
		}

	case wire.KFinalizeAck:
		d.finAcked = true
		if d.finTimer != 0 {
			d.cancel(d.finTimer)
			d.finTimer = 0
		}
	}
}

// transmitSaved re-sends saved payload copies after a peer restart.
// Retransmissions reuse the original message's span id: they re-emit a
// message whose first transmission already passed the WAITLOGGED gate.
func (d *V2) transmitSaved(to int, msgs []core.SavedMsg) {
	for _, m := range msgs {
		hdr := wire.PayloadHeader{SenderClock: m.Clock, PairSeq: m.Seq, DevKind: m.Kind}
		if d.tr != nil {
			hdr.Span = trace.PackSpan(d.cfg.Rank, m.Clock)
		}
		// Retransmissions carry the pending suppressed determinants
		// too: a restarting peer is exactly who benefits from the
		// receiver-side cache being current.
		if len(d.detPending) > 0 {
			hdr.Dets = d.detPending
			d.stats.DetPiggybacked += int64(len(d.detPending))
		}
		d.ep.Send(to, wire.KPayload, wire.AppendPayload(wire.GetBuf(wire.PayloadSizeH(hdr, len(m.Data))), hdr, m.Data))
		d.tr.Record(d.rt.Now(), trace.EvResend, hdr.Span, uint64(len(hdr.Dets)), uint64(to), uint64(len(m.Data)))
		d.stats.Resent++
	}
}

// --- Event-logger exchange ------------------------------------------------

// elBatch is one in-flight event-log submission. Three shapes share the
// ring, the seq stream and the cumulative-ack machinery: pessimistic
// batches (gated == len(evs), origin < 0) whose retirement credits
// WAITLOGGED; suppressed epoch batches (gated == 0, origin < 0) whose
// retirement only prunes the piggyback set; and foreign relay batches
// (origin >= 0) shipping another node's piggybacked determinants as
// KDetRelay frames.
type elBatch struct {
	seq      uint64
	evs      []core.Event
	gated    int           // events to credit against WAITLOGGED on retire
	origin   int           // <0: our events (KEventLog); else relay origin (KDetRelay)
	sent     time.Duration // last (re)transmission
	attempts int
	acked    uint64 // replica ack bitmask (quorum mode)
	done     bool   // complete, waiting for older batches to retire
}

// Batch origins below 0 both ship as KEventLog and credit gated events
// on retirement; backfill marks re-submissions of already-counted
// determinants (shard rebuilds) so EventsLogged is not inflated.
const (
	originOwn      = -1
	originBackfill = -2
)

// elShard is one event-logger replica group of the fleet: the complete
// exchange state the daemon used to keep globally, now per shard.
// Requests are numbered (namespaced by incarnation) per shard, so each
// group's replicas observe one contiguous seq stream and their
// cumulative-ack trackers work unchanged; acks are matched back through
// elNodeShard, so identical seqs on different shards cannot collide.
//
// In-flight batches live in ring, ordered ascending by seq — the
// submission order. The ring is the sliding window of pipelined
// determinant logging: up to elWindow() batches may be outstanding per
// shard, further events wait in queue for a free slot, and completed
// batches retire strictly from the front (see retireEL) so EventsAcked
// credits events in submission order exactly as stop-and-wait did.
//
// Quorum replication (q > 0) submits every batch to all targets and
// completes it only once q distinct replicas acked, with bits assigning
// each replica its bit in the acked bitmask. q == 0 is the legacy
// primary+failover exchange (single shard only): idx/strikes rotate to
// the next backup after repeated silence.
type elShard struct {
	id      int
	targets []int
	bits    map[int]uint
	q       int
	idx     int
	strikes int
	seq     uint64
	ring    []elBatch
	timer   uint64
	queue   []core.Event // events awaiting a free window slot
}

// hasEL reports whether any event-logger group is configured; without
// one nothing is logged and nothing gates.
func (d *V2) hasEL() bool { return len(d.elShards) > 0 }

// elQuorumMode reports whether the exchange runs quorum replication
// (uniform across shards; legacy failover mode is single-shard only).
func (d *V2) elQuorumMode() bool { return len(d.elShards) > 0 && d.elShards[0].q > 0 }

// elShardFor routes a channel (sender → receiver) to the shard serving
// it under the current dead set: the ring owner, or its successor while
// the owner is rebalanced away.
func (d *V2) elShardFor(sender, receiver int) *elShard {
	if len(d.elShards) == 1 {
		return d.elShards[0]
	}
	return d.elShards[d.elMap.OwnerLive(sender, receiver, d.elDead)]
}

// elWindow is the bound on in-flight batches: ELWindow when configured,
// else the legacy behavior — stop-and-wait under EventBatching,
// unbounded (one batch per event, 0 = no limit) without it.
func (d *V2) elWindow() int {
	if d.cfg.ELWindow > 0 {
		return d.cfg.ELWindow
	}
	if d.cfg.EventBatching {
		return 1
	}
	return 0
}

// pumpEL flushes a shard's queued events into new batches while its
// window has free slots — the adaptive close of the pipeline: under
// batching the whole queue becomes one batch, so batch size adapts to
// however many events accumulated while the window was full.
func (d *V2) pumpEL(sh *elShard) {
	w := d.elWindow()
	for len(sh.queue) > 0 && (w == 0 || len(sh.ring) < w) {
		var evs []core.Event
		if d.cfg.EventBatching {
			evs = sh.queue
			sh.queue = nil
		} else {
			evs = sh.queue[:1:1]
			sh.queue = sh.queue[1:]
		}
		d.sendEvents(sh, evs, len(evs), originOwn)
	}
	if len(sh.queue) == 0 {
		sh.queue = nil
	}
}

// sendEvents opens a window slot on one shard: it ships a batch to the
// shard's current event logger — or, in quorum mode, to every replica
// of the group — appends it to the shard's in-flight ring and arms its
// retransmit timer. gated is how many of the events credit WAITLOGGED
// on retirement (all of them for a pessimistic batch, none for a
// suppressed epoch, relay or backfill batch); origin >= 0 marks a
// foreign relay batch shipped as KDetRelay.
func (d *V2) sendEvents(sh *elShard, evs []core.Event, gated, origin int) {
	sh.seq++
	seq := sh.seq
	d.tr.Record(d.rt.Now(), trace.EvDetSubmit, 0, 0, seq, uint64(len(evs)))
	sh.ring = append(sh.ring, elBatch{seq: seq, evs: evs, gated: gated, origin: origin, sent: d.rt.Now()})
	b := &sh.ring[len(sh.ring)-1]
	if sh.q > 0 {
		for _, t := range sh.targets {
			d.sendEventFrame(t, b)
		}
	} else {
		d.sendEventFrame(sh.targets[sh.idx], b)
	}
	switch origin {
	case originOwn:
		d.stats.EventsLogged += int64(len(evs))
	case originBackfill:
		d.stats.ShardBackfilled += int64(len(evs))
	}
	d.armEL(sh)
}

// sendEventFrame encodes one KEventLog (or KDetRelay, for a foreign
// relay batch) into a pooled framing buffer and ships it. Every
// transmission gets a fresh buffer — ownership moves with the frame,
// and the logger recycles it after decoding — so retransmissions
// re-encode rather than caching an encoding per batch.
func (d *V2) sendEventFrame(to int, b *elBatch) {
	if b.origin >= 0 {
		d.ep.Send(to, wire.KDetRelay, wire.AppendDetRelay(wire.GetBuf(wire.DetRelaySize(len(b.evs))), b.seq, b.origin, b.evs))
		return
	}
	d.ep.Send(to, wire.KEventLog, wire.AppendEventLog(wire.GetBuf(wire.EventLogSize(len(b.evs))), b.seq, b.evs))
}

// elAck completes in-flight batches on the acking replica's shard: the
// batch matching the acked seq, plus — via the server's cumulative
// mark — every older batch the server has stored whose own ack was lost
// on the wire. Completed batches retire strictly from the front of the
// shard's ring (retireEL), so events are credited against WAITLOGGED in
// submission order and unacked reaches zero at exactly the moment
// stop-and-wait would have reached it: when every submitted batch is
// complete. Shards gate independently: the WAITLOGGED counter in
// core.State is a plain count, so per-shard retirement order cannot
// misattribute credits.
func (d *V2) elAck(from int, seq, cum uint64) {
	sh := d.elNodeShard[from]
	if sh == nil {
		return // acks from nodes outside every replica group cannot count
	}
	var mask uint64
	if sh.q > 0 {
		// WAITLOGGED is released only once the write quorum acked:
		// record this replica and keep waiting below quorum.
		mask = 1 << sh.bits[from]
	}
	hi := seq
	if cum > hi {
		hi = cum
	}
	progressed := false
	for i := range sh.ring {
		b := &sh.ring[i]
		if b.seq > hi {
			break // the ring is ascending; nothing further can match
		}
		if b.done || (b.seq != seq && b.seq > cum) {
			continue
		}
		if sh.q > 0 {
			if b.acked&mask != 0 {
				continue
			}
			b.acked |= mask
			progressed = true
			if bits.OnesCount64(b.acked) < sh.q {
				continue
			}
			d.stats.QuorumAcks++
		} else {
			progressed = true
		}
		b.done = true
	}
	if !progressed {
		return // duplicate ack, or ack of a dead incarnation's batch
	}
	sh.strikes = 0
	d.retireEL(sh)
	d.pumpEL(sh)
}

// retireEL pops completed batches off the front of a shard's ring,
// crediting their events in submission order.
func (d *V2) retireEL(sh *elShard) {
	n := 0
	for n < len(sh.ring) && sh.ring[n].done {
		b := &sh.ring[n]
		if b.origin < 0 {
			if d.tr != nil {
				// Each determinant of the batch is quorum-durable the
				// instant its batch retires in order — this, not the raw
				// ack arrival, is the durability point WAITLOGGED waits on.
				now := d.rt.Now()
				for _, ev := range b.evs {
					d.tr.Record(now, trace.EvDetDurable,
						trace.PackSpan(d.cfg.Rank, ev.RecvClock), 0, b.seq, 0)
				}
			}
			d.st.EventsAcked(b.gated)
			if b.gated < len(b.evs) {
				d.detRetire(b.evs)
			}
		}
		n++
	}
	if n == 0 {
		return
	}
	sh.ring = append(sh.ring[:0], sh.ring[n:]...)
	if len(sh.ring) == 0 {
		sh.ring = nil
	}
}

// armEL (re)arms a shard's retransmit timer for the earliest deadline
// among its in-flight batches.
func (d *V2) armEL(sh *elShard) {
	to := d.elAckTimeout()
	if sh.timer != 0 || to <= 0 {
		return
	}
	bo := d.backoff(to)
	var min time.Duration
	first := true
	for i := range sh.ring {
		b := &sh.ring[i]
		if b.done {
			continue
		}
		if dl := b.sent + bo.Delay(b.attempts); first || dl < min {
			min, first = dl, false
		}
	}
	if first {
		return // nothing awaiting an ack
	}
	delay := min - d.rt.Now()
	if delay < 0 {
		delay = 0
	}
	sh.timer = d.after(delay, func() { d.elExpired(sh) })
}

// elExpired retransmits every in-flight batch of one shard whose
// deadline has passed, walking the ring front to back so
// retransmissions go out in ascending seq order. Legacy mode fails over
// to a backup logger after repeated silence; in quorum mode every
// replica is already a target, so the batch is re-sent only to the
// replicas that have not acked it.
func (d *V2) elExpired(sh *elShard) {
	sh.timer = 0
	to := d.elAckTimeout()
	if to <= 0 {
		return
	}
	bo := d.backoff(to)
	now := d.rt.Now()
	for i := range sh.ring {
		b := &sh.ring[i]
		if b.done || b.sent+bo.Delay(b.attempts) > now {
			continue
		}
		b.attempts++
		b.sent = now
		if sh.q > 0 {
			for _, t := range sh.targets {
				if b.acked&(1<<sh.bits[t]) == 0 {
					d.sendEventFrame(t, b)
				}
			}
			d.stats.Retransmits++
			continue
		}
		sh.strikes++
		if sh.strikes >= d.failoverAfter() && len(sh.targets) > 1 {
			sh.idx = (sh.idx + 1) % len(sh.targets)
			sh.strikes = 0
			d.stats.Failovers++
		}
		d.sendEventFrame(sh.targets[sh.idx], b)
		d.stats.Retransmits++
	}
	d.armEL(sh)
}

// pendingEL counts determinants not yet quorum-durable across every
// shard: events queued for submission plus events inside unretired
// in-flight batches.
func (d *V2) pendingEL() int {
	n := 0
	for _, sh := range d.elShards {
		n += len(sh.queue)
		for i := range sh.ring {
			if !sh.ring[i].done {
				n += len(sh.ring[i].evs)
			}
		}
	}
	return n
}

// elStalled evaluates the ELHighWater/ELLowWater hysteresis band and
// latches the degraded state across the threshold crossings, counting
// each transition once.
func (d *V2) elStalled() bool {
	hi := d.cfg.ELHighWater
	if hi <= 0 {
		return false
	}
	lo := d.cfg.ELLowWater
	if lo <= 0 || lo >= hi {
		lo = hi / 2
	}
	n := d.pendingEL()
	if d.elDegraded {
		if n <= lo {
			d.elDegraded = false
			d.stats.DegradedResumes++
		}
	} else if n >= hi {
		d.elDegraded = true
		d.stats.DegradedStalls++
	}
	return d.elDegraded
}

func (d *V2) submitEvent(ev core.Event) {
	if !d.hasEL() {
		return
	}
	sh := d.elShardFor(ev.Sender, d.cfg.Rank)
	sh.queue = append(sh.queue, ev)
	d.pumpEL(sh)
}

// noteHistory retains a committed determinant for shard rebuilds: when
// a shard loses its quorum or rejoins empty, the daemon — the
// authoritative producer of its own reception history — re-submits the
// retained events of the moved channels (gated already satisfied, so as
// ungated backfill batches). Only kept in sharded mode; pruned at
// checkpoint retirement, below whose horizon no restart fetch reaches.
func (d *V2) noteHistory(ev core.Event) {
	if d.elHistory == nil {
		return
	}
	d.elHistory[ev.Sender] = append(d.elHistory[ev.Sender], ev)
}

// pruneHistory drops retained determinants at or below a durable
// checkpoint's clock horizon: a restart restores at least that clock
// and fetches only events above it.
func (d *V2) pruneHistory(clock uint64) {
	for p, hist := range d.elHistory {
		kept := hist[:0]
		for _, ev := range hist {
			if ev.RecvClock > clock {
				kept = append(kept, ev)
			}
		}
		if len(kept) == 0 {
			delete(d.elHistory, p)
		} else {
			d.elHistory[p] = kept
		}
	}
}

// --- Fleet rebalancing (KELShardDown / KELShardUp) ------------------------

// elShardDown applies a dispatcher notice that shard k lost its write
// quorum: the shard's key range reroutes to its ring successor for new
// submissions, everything queued or in flight on the shard re-submits
// through the new owners (an unretired batch may have died below quorum
// with the group), and the retained history of the moved channels is
// backfilled so determinants the dead group alone held stay fetchable.
func (d *V2) elShardDown(k int) {
	if d.elMap == nil || k < 0 || k >= len(d.elShards) || d.elDead[k] {
		return
	}
	// Live owners before the failure, to identify the moved channels.
	before := make(map[int]int, len(d.elHistory))
	for p := range d.elHistory {
		before[p] = d.elMap.OwnerLive(p, d.cfg.Rank, d.elDead)
	}
	d.elDead[k] = true
	d.stats.ShardRebalances++
	sh := d.elShards[k]
	if sh.timer != 0 {
		d.cancel(sh.timer)
		sh.timer = 0
	}
	sh.strikes = 0
	queue, ring := sh.queue, sh.ring
	sh.queue, sh.ring = nil, nil
	for _, ev := range queue {
		nsh := d.elShardFor(ev.Sender, d.cfg.Rank)
		nsh.queue = append(nsh.queue, ev)
	}
	for i := range ring {
		b := &ring[i]
		d.resubmitBatch(b)
	}
	for p, hist := range d.elHistory {
		if before[p] != k || len(hist) == 0 {
			continue
		}
		nsh := d.elShardFor(p, d.cfg.Rank)
		if nsh == sh {
			continue // whole fleet down; submissions would land nowhere new
		}
		d.sendEvents(nsh, append([]core.Event(nil), hist...), 0, originBackfill)
	}
	for _, nsh := range d.elShards {
		d.pumpEL(nsh)
	}
}

// resubmitBatch re-routes one displaced batch's events to their current
// owners, preserving the gating semantics: a pessimistic batch's events
// stay uncredited until the re-submission retires, so the WAITLOGGED
// accounting carries over exactly; ungated and relay batches re-submit
// ungated. Own events re-count as backfill, not as fresh logging.
func (d *V2) resubmitBatch(b *elBatch) {
	receiver := d.cfg.Rank
	if b.origin >= 0 {
		receiver = b.origin
	}
	groups := make(map[*elShard][]core.Event)
	for _, ev := range b.evs {
		nsh := d.elShardFor(ev.Sender, receiver)
		groups[nsh] = append(groups[nsh], ev)
	}
	for _, nsh := range d.elShards {
		evs := groups[nsh]
		if len(evs) == 0 {
			continue
		}
		gated := 0
		if b.gated > 0 {
			gated = len(evs)
		}
		origin := b.origin
		if origin == originOwn {
			origin = originBackfill
		}
		d.sendEvents(nsh, evs, gated, origin)
	}
}

// elShardUp applies a dispatcher notice that shard k regained its
// quorum: its key range routes back, and the retained history of the
// returning channels is backfilled — the respawned group may hold
// nothing, and its own anti-entropy resync can only copy what some
// replica still has.
func (d *V2) elShardUp(k int) {
	if d.elMap == nil || !d.elDead[k] {
		return
	}
	// Owners while k was out, to identify the channels coming back.
	before := make(map[int]int, len(d.elHistory))
	for p := range d.elHistory {
		before[p] = d.elMap.OwnerLive(p, d.cfg.Rank, d.elDead)
	}
	delete(d.elDead, k)
	d.stats.ShardRejoins++
	sh := d.elShards[k]
	sh.strikes = 0
	for p, hist := range d.elHistory {
		if len(hist) == 0 {
			continue
		}
		if d.elMap.OwnerLive(p, d.cfg.Rank, d.elDead) != k || before[p] == k {
			continue
		}
		d.sendEvents(sh, append([]core.Event(nil), hist...), 0, originBackfill)
	}
}

// --- Pull recovery --------------------------------------------------------

// beginStarve arms the pull timer: if the daemon is still starved when
// it fires, every peer is asked to re-send from our delivered horizon
// (the same announcement a restarted node makes), recovering messages a
// lossy fabric dropped. Duplicates are discarded by the clock/sequence
// dedup on the receive path.
func (d *V2) beginStarve() {
	to := timeout(d.cfg.PullTimeout, 0) // default: disabled
	if to <= 0 || d.pullTimer != 0 {
		return
	}
	bo := transport.Backoff{Base: to}
	d.pullTimer = d.after(bo.Delay(d.pullAttempts), d.pullExpired)
}

func (d *V2) endStarve() {
	if d.pullTimer != 0 {
		d.cancel(d.pullTimer)
		d.pullTimer = 0
	}
	d.pullAttempts = 0
}

func (d *V2) pullExpired() {
	d.pullTimer = 0
	d.pullAttempts++
	d.stats.Pulls++
	for q := 0; q < d.cfg.Size; q++ {
		if q == d.cfg.Rank {
			continue
		}
		d.ep.Send(q, wire.KRestart1, wire.EncodeU64(d.st.RestartAnnouncement(q)))
	}
	d.beginStarve()
}

// --- Rank requests -------------------------------------------------------

func (d *V2) handleReq(r rankReq) {
	switch r.op {
	case opInit:
		d.reply(rankResp{rank: d.cfg.Rank, size: d.cfg.Size, appState: d.appState, restarted: d.restored || d.st.Replaying()})
	case opSend:
		d.doSend(r.to, r.data)
	case opRecv:
		d.doRecv()
	case opProbe:
		d.doProbe()
	case opCkpt:
		d.doCheckpoint(r.data)
	case opFinish:
		d.doFinish()
	}
}

func (d *V2) doFinish() {
	// A finalize with suppressed determinants still volatile would leave
	// permanent holes in the logged channel history; flush and drain
	// them first (one epoch tail per run).
	d.flushDetEpoch()
	d.drainDetPending()
	if d.cfg.Dispatcher >= 0 {
		d.ep.Send(d.cfg.Dispatcher, wire.KFinalize, nil)
		// Retransmit the finalize until the dispatcher confirms it:
		// losing it would leave the run waiting on a node that has in
		// fact completed. Bounded — a dead dispatcher must not keep the
		// virtual timeline alive forever.
		if to := d.elAckTimeout(); to > 0 {
			bo := transport.Backoff{Base: to}
			var rearm func(attempt int)
			rearm = func(attempt int) {
				if d.finAcked || attempt >= finalizeRetries {
					return
				}
				d.finTimer = d.after(bo.Delay(attempt), func() {
					d.finTimer = 0
					if d.finAcked {
						return
					}
					d.ep.Send(d.cfg.Dispatcher, wire.KFinalize, nil)
					d.stats.Retransmits++
					rearm(attempt + 1)
				})
			}
			rearm(0)
		}
	}
	d.finished = true
	d.reply(rankResp{})
}

func (d *V2) reply(r rankResp) {
	d.rsp.SendAfter(d.cfg.UnixDelay, r)
}

func (d *V2) doSend(to int, data []byte) {
	if to == d.cfg.Rank {
		panic("daemon: device-level self send (the MPI layer must short-circuit self messages)")
	}
	id, seq, transmit := d.st.PrepareSend(to, 0, data)

	// Sender-based logging cost: copying the payload into the SAVED
	// log, plus the Unix-socket copy for store-and-forwarded eager
	// payloads, spilling to disk past the memory budget (§5.2: LU's
	// poor performance; the daemon "becomes a competitor of the MPI
	// process for CPU resources").
	if n := len(data); n > 0 {
		cost := time.Duration(n) * d.cfg.LogCopyPerByte
		if d.cfg.PipelineLimit <= 0 || n <= d.cfg.PipelineLimit {
			cost += time.Duration(n) * d.cfg.UnixCopyPerByte
		}
		if d.cfg.LogMemLimit > 0 && d.st.LogBytes() > d.cfg.LogMemLimit {
			cost += time.Duration(n) * d.cfg.DiskCopyPerByte
		}
		if d.cfg.LogHardLimit > 0 && d.st.LogBytes() > d.cfg.LogHardLimit {
			d.stats.LogOverflowed = true
		}
		if cost > 0 {
			d.rt.Sleep(cost)
		}
	}

	// WAITLOGGED(): no payload leaves before the event logger has
	// acknowledged every reception event submitted so far.
	if d.st.SendBlocked() && !d.cfg.NoSendGating {
		d.stats.ELWaits++
		waitFrom := d.rt.Now()
		unacked := uint64(d.st.UnackedEvents())
		for d.st.SendBlocked() {
			e := d.next()
			if e.isFrame {
				d.handleFrame(e.frame)
			} else if e.isTimer {
				d.handleTimer(e.timer)
			} else {
				panic(fmt.Sprintf("daemon: rank %d: concurrent rank request during send", d.cfg.Rank))
			}
		}
		d.stats.ELWaitNS += int64(d.rt.Now() - waitFrom)
		d.tr.Record(d.rt.Now(), trace.EvWaitLogged, 0, 0, uint64(d.rt.Now()-waitFrom), unacked)
	}

	if transmit {
		if d.elQuorumMode() && d.st.SendBlocked() {
			// A payload is leaving while reception events are still
			// below their write quorum — every path that can do this
			// (only the NoSendGating ablation today) is counted so the
			// auditor can assert the invariant held.
			d.stats.BelowQuorumAcks++
		}
		hdr := wire.PayloadHeader{SenderClock: id.Clock, PairSeq: seq}
		if d.tr != nil {
			hdr.Span = trace.PackSpan(d.cfg.Rank, id.Clock)
		}
		// Every payload carries the suppressed determinants still short
		// of durability: the receiver caches and relays them, so any
		// causal successor of a suppressed delivery also carries the
		// evidence needed to reconstruct it.
		if len(d.detPending) > 0 {
			hdr.Dets = d.detPending
			d.stats.DetPiggybacked += int64(len(d.detPending))
		}
		d.ep.Send(to, wire.KPayload, wire.AppendPayload(wire.GetBuf(wire.PayloadSizeH(hdr, len(data))), hdr, data))
		d.tr.Record(d.rt.Now(), trace.EvSend, hdr.Span, uint64(len(hdr.Dets)), uint64(to), uint64(len(data)))
		d.stats.SentMsgs++
		d.stats.SentBytes += int64(len(data))
		d.schedSent += uint64(len(data))
	}
	d.reply(rankResp{})
}

func (d *V2) doRecv() {
	if d.st.Replaying() {
		for {
			if m, rev, ok := d.st.TakeStashed(); ok {
				d.endStarve()
				d.stats.Replayed++
				d.tr.Record(d.rt.Now(), trace.EvReplay,
					trace.PackSpan(d.cfg.Rank, rev.RecvClock),
					trace.PackSpan(m.From, m.Clock), uint64(m.From), m.Seq)
				if !d.st.Replaying() {
					d.arrived = append(d.arrived, d.st.DrainStash()...)
				}
				d.replyPayload(m.From, m.Data)
				return
			}
			// A clock hole in the replay can only be a delivery whose
			// suppressed determinant died with the crash; fill it by
			// regenerating the delivery fresh — a new, pessimistically
			// gated event that must reach the EL like any other.
			if m, rev, ok := d.st.RegenerateReplay(); ok {
				d.endStarve()
				d.stats.DetRegenerated++
				gated := uint64(0)
				if d.hasEL() {
					gated = 1
					d.stats.DetForced++
				}
				d.tr.Record(d.rt.Now(), trace.EvDeliver,
					trace.PackSpan(d.cfg.Rank, rev.RecvClock),
					trace.PackSpan(m.From, m.Clock), m.Seq, gated)
				d.noteHistory(rev)
				d.submitEvent(rev)
				d.replyPayload(m.From, m.Data)
				return
			}
			d.beginStarve()
			e := d.next()
			if e.isFrame {
				d.handleFrame(e.frame)
			} else if e.isTimer {
				d.handleTimer(e.timer)
			}
		}
	}
	if len(d.arrived) == 0 {
		// Starving: the application is blocked anyway, so ship the
		// suppressed-determinant epoch early — durability for free.
		d.flushDetEpoch()
	}
	// elStalled is the degraded-mode gate: with the EL quorum
	// unreachable the daemon refuses to commit further receptions, so
	// the application blocks here and stops feeding the resend queues.
	// Retransmission timers keep the loop turning, and the first acks
	// from a healed logger drain the backlog and lift the gate.
	for len(d.arrived) == 0 || d.elStalled() {
		d.beginStarve()
		e := d.next()
		if e.isFrame {
			d.handleFrame(e.frame)
		} else if e.isTimer {
			d.handleTimer(e.timer)
		}
	}
	d.endStarve()
	m := d.arrived[0]
	d.arrived = d.arrived[1:]
	// The nondeterminism signals are captured by the delivery path
	// itself, before the commit resets the probe count, and recorded
	// honestly on EvDetSuppressed whatever the classifier decides — the
	// happens-before auditor convicts a classifier that suppressed a
	// delivery these signals mark nondeterministic.
	probes := d.st.ProbeCount()
	competing := 0
	for i := range d.arrived {
		if d.arrived[i].From != m.From {
			competing++
		}
	}
	suppress := d.classify(m.From, probes, competing)
	var ev core.Event
	gated := uint64(0)
	if suppress {
		ev = d.st.CommitSuppressed(m.From, m.Clock, m.Seq)
		gated = 2 // suppressed: epoch-batched + piggybacked, no send gate
	} else {
		ev = d.st.Commit(m.From, m.Clock, m.Seq)
		if d.hasEL() {
			gated = 1 // the determinant joins the WAITLOGGED gate
		}
	}
	d.noteHistory(ev)
	if d.tr != nil {
		d.tr.Record(d.rt.Now(), trace.EvDeliver,
			trace.PackSpan(d.cfg.Rank, ev.RecvClock),
			trace.PackSpan(m.From, m.Clock), m.Seq, gated)
	}
	if suppress {
		d.tr.Record(d.rt.Now(), trace.EvDetSuppressed,
			trace.PackSpan(d.cfg.Rank, ev.RecvClock),
			trace.PackSpan(m.From, m.Clock), uint64(competing), uint64(probes))
		d.suppressEvent(ev)
	} else {
		if gated == 1 {
			d.stats.DetForced++
		}
		d.submitEvent(ev)
	}
	d.replyPayload(m.From, m.Data)
}

// replyPayload delivers a payload to the MPI process, charging the
// Unix-socket copy for store-and-forwarded eager messages.
func (d *V2) replyPayload(from int, data []byte) {
	if n := len(data); n > 0 && d.cfg.UnixCopyPerByte > 0 &&
		(d.cfg.PipelineLimit <= 0 || n <= d.cfg.PipelineLimit) {
		d.rt.Sleep(time.Duration(n) * d.cfg.UnixCopyPerByte)
	}
	d.reply(rankResp{from: from, data: data})
}

func (d *V2) doProbe() {
	// Opportunistically drain arrived frames first.
	for {
		e, ok := d.in.TryRecv()
		if !ok {
			break
		}
		if e.closed {
			panic(killedPanic{})
		}
		if e.isFrame {
			d.handleFrame(e.frame)
		} else if e.isTimer {
			d.handleTimer(e.timer)
		} else {
			panic("daemon: concurrent rank request during probe")
		}
	}
	if d.st.Replaying() {
		// The log dictates the exact probe outcomes (§4.5: "in order
		// to replay exactly the same execution").
		if d.st.ReplayProbeMiss() {
			d.reply(rankResp{flag: false})
			return
		}
		for !d.st.ReplayReady() {
			d.beginStarve()
			e := d.next()
			if e.isFrame {
				d.handleFrame(e.frame)
			} else if e.isTimer {
				d.handleTimer(e.timer)
			}
		}
		d.endStarve()
		d.reply(rankResp{flag: true})
		return
	}
	if len(d.arrived) > 0 {
		d.reply(rankResp{flag: true})
		return
	}
	d.st.ProbeMiss()
	d.reply(rankResp{flag: false})
}

// --- Checkpoint transfer ring ---------------------------------------------

// defCkptChunk is the default chunk size of the chunked transfer.
const defCkptChunk = 16 << 10

func (d *V2) ckptChunkSize() int {
	if d.cfg.CkptChunkSize == 0 {
		return defCkptChunk
	}
	return d.cfg.CkptChunkSize // negative: monolithic saves
}

// ckptChunk is one retained chunk frame of an in-flight transfer. The
// frame buffer is shared with every (re)transmission of the chunk and
// is therefore never recycled — the same ownership rule the monolithic
// KCkptSave payload had.
type ckptChunk struct {
	frame []byte
	acked uint64 // replica ack bitmask (csBits)
}

// ckptXfer is one in-flight checkpoint in the ring. The full protocol
// snapshot is retained for three jobs that outlive the delta encoding:
// the KCkptNote GC horizons and the next delta's base marks at
// retirement, and the escalation path — after repeated silence the
// daemon abandons the chunked delta and ships a monolithic full image,
// so liveness never depends on a replica holding the delta's base.
type ckptXfer struct {
	seq       uint64
	sn        *core.Snapshot
	clock     uint64 // receive clock at capture: the rebalancing-history prune horizon
	appState  []byte
	chunks    []ckptChunk
	fullAcked uint64 // replicas that acked a FULL image (KCkptSaveAck)
	full      []byte // encoded monolithic KCkptSave payload, lazily built
	sent      time.Duration
	attempts  int
	escalated bool
	isDelta   bool
	done      bool // complete, waiting for older transfers to retire
}

// heldBy reports whether the replica behind bit holds the full image:
// it sent a KCkptSaveAck — after a monolithic save, or after its store
// verified and materialized a completed chunk assembly. Per-chunk acks
// deliberately do NOT count: a replica respawned empty mid-transfer
// still looks all-chunks-acked to us, but holds nothing.
func (x *ckptXfer) heldBy(bit uint) bool {
	return x.fullAcked&(1<<bit) != 0
}

// holders is the bitmask of replicas holding the full image.
func (x *ckptXfer) holders() uint64 { return x.fullAcked }

// findXfer locates an in-flight transfer by seq; the ring is ascending,
// so the scan stops early. nil means a duplicate ack or a dead
// incarnation's.
func (d *V2) findXfer(seq uint64) *ckptXfer {
	for i := range d.ckptRing {
		x := &d.ckptRing[i]
		if x.seq > seq {
			return nil
		}
		if x.seq == seq && !x.done {
			return x
		}
	}
	return nil
}

func (d *V2) doCheckpoint(appState []byte) {
	d.ckptFlag.Store(false)
	if len(d.csTargets) == 0 {
		d.reply(rankResp{})
		return
	}
	// Drain suppressed determinants before capturing the snapshot:
	// replay regeneration only reaches above the restored clock, so a
	// determinant that stayed volatile below this checkpoint's horizon
	// would be a permanent hole in the logged channel history. The
	// drain is synchronous but rare — checkpoint cadence, not message
	// cadence.
	d.flushDetEpoch()
	d.drainDetPending()
	d.ckptSeq++
	seq := d.ckptSeq
	sn := d.st.Snapshot()
	d.schedSent, d.schedRecv = 0, 0

	// Delta capture: once a checkpoint has been retired, its SeqTo
	// marks bound what the store already holds — entries at or below a
	// mark live inside the base image and need not travel again.
	var marks map[int]uint64
	var baseSeq uint64
	if !d.cfg.CkptNoDelta && d.ckptBase != 0 && d.ckptMarks != nil {
		marks, baseSeq = d.ckptMarks, d.ckptBase
	}
	var protoSize int
	if marks != nil {
		protoSize = core.SnapshotDeltaSize(sn, marks)
	} else {
		protoSize = core.SnapshotSize(sn)
	}
	proto := core.AppendSnapshotDelta(wire.GetBuf(protoSize), sn, marks)
	im := &ckpt.Image{Rank: d.cfg.Rank, Seq: seq, BaseSeq: baseSeq, AppState: appState, Proto: proto}
	img := ckpt.AppendImage(wire.GetBuf(ckpt.ImageSize(im)), im)
	wire.PutBuf(proto) // copied into img

	x := ckptXfer{seq: seq, sn: sn, clock: d.st.Clock(), appState: appState, isDelta: baseSeq != 0, sent: d.rt.Now()}
	if cs := d.ckptChunkSize(); cs > 0 {
		n := (len(img) + cs - 1) / cs
		x.chunks = make([]ckptChunk, n)
		for i := range x.chunks {
			lo := i * cs
			hi := min(lo+cs, len(img))
			body := img[lo:hi]
			x.chunks[i].frame = wire.AppendCkptChunk(
				wire.GetBuf(wire.CkptChunkSize(len(body))), seq, uint32(i), uint32(n), body)
		}
	} else {
		// Monolithic mode: the whole image as one legacy KCkptSave.
		x.escalated = true
		x.full = wire.EncodeCkptSave(seq, img)
	}
	d.stats.Checkpoints++
	d.stats.CkptBytes += int64(len(img))
	if x.isDelta {
		d.stats.DeltaCkpts++
	}
	wire.PutBuf(img) // copied into the chunk frames / the full payload

	// The transfer is asynchronous: execution continues while the image
	// streams to the checkpoint servers (the paper's fork trick), and
	// unacknowledged chunks are retransmitted like event batches.
	d.ckptRing = append(d.ckptRing, x)
	xp := &d.ckptRing[len(d.ckptRing)-1]
	if d.csQ > 0 {
		for _, t := range d.csTargets {
			d.sendXfer(xp, t)
		}
	} else {
		d.sendXfer(xp, d.csTargets[d.csIdx])
	}
	d.armCkpt()
	d.reply(rankResp{})
}

// sendXfer ships a transfer to one server: nothing if it already holds
// the image, the monolithic payload when escalated, else every chunk
// the server has not acked, in ascending chunk order.
func (d *V2) sendXfer(x *ckptXfer, t int) {
	bit := d.csBits[t]
	if x.fullAcked&(1<<bit) != 0 {
		return
	}
	if x.escalated {
		d.ep.Send(t, wire.KCkptSave, x.full)
		return
	}
	for i := range x.chunks {
		if x.chunks[i].acked&(1<<bit) == 0 {
			d.tr.Record(d.rt.Now(), trace.EvCkptChunk, 0, 0, x.seq, uint64(i))
			d.ep.Send(t, wire.KCkptChunk, x.chunks[i].frame)
		}
	}
}

// completeCkpt marks a transfer done once enough replicas hold the full
// image — one in legacy mode, the write quorum in quorum mode — and
// retires the ring front.
func (d *V2) completeCkpt(x *ckptXfer) {
	h := x.holders()
	if d.csQ > 0 {
		if bits.OnesCount64(h) < d.csQ {
			return
		}
		d.stats.QuorumAcks++
	} else if h == 0 {
		return
	}
	x.done = true
	d.retireCkpt()
}

// retireCkpt pops completed transfers off the front of the ring in
// submission order: each advances ckptDone, installs itself as the next
// delta base, and broadcasts the §4.6.1 KCkptNote GC horizons — exactly
// the effects the stop-and-wait ack handler had, still strictly
// in-order.
func (d *V2) retireCkpt() {
	n := 0
	for n < len(d.ckptRing) && d.ckptRing[n].done {
		x := &d.ckptRing[n]
		n++
		if x.seq <= d.ckptDone {
			continue
		}
		d.ckptDone = x.seq
		d.ckptBase = x.seq
		d.ckptMarks = x.sn.SeqTo
		// Events below a durable checkpoint's clock horizon are replayed
		// from the image, never from the EL — the rebalancing history can
		// drop them.
		d.pruneHistory(x.clock)
		d.tr.Record(d.rt.Now(), trace.EvCkptDurable, 0, 0, x.seq, uint64(len(x.chunks)))
		for q := 0; q < d.cfg.Size; q++ {
			if q == d.cfg.Rank {
				continue
			}
			// The §4.6.1 GC horizon: deliveries from q up to HR[q] are
			// inside a durable checkpoint, so q may reclaim the SAVED
			// copies. Recorded before the send so the note always
			// happens-before the peer's EvGCApply.
			d.tr.Record(d.rt.Now(), trace.EvGCNote, 0, 0, uint64(q), x.sn.HR[q])
			d.ep.Send(q, wire.KCkptNote, wire.EncodeU64(x.sn.HR[q]))
		}
	}
	if n == 0 {
		return
	}
	d.ckptRing = append(d.ckptRing[:0], d.ckptRing[n:]...)
	if len(d.ckptRing) == 0 {
		d.ckptRing = nil
	}
}

// armCkpt mirrors armEL: one timer for the earliest deadline among
// in-flight transfers.
func (d *V2) armCkpt() {
	to := d.ckptAckTimeout()
	if d.ckptTimer != 0 || to <= 0 {
		return
	}
	bo := d.backoff(to)
	var min time.Duration
	first := true
	for i := range d.ckptRing {
		x := &d.ckptRing[i]
		if x.done {
			continue
		}
		if dl := x.sent + bo.Delay(x.attempts); first || dl < min {
			min, first = dl, false
		}
	}
	if first {
		return // nothing awaiting acks
	}
	delay := min - d.rt.Now()
	if delay < 0 {
		delay = 0
	}
	d.ckptTimer = d.after(delay, d.ckptExpired)
}

// ckptExpired walks the ring front to back (ascending seq — no
// sort.Slice over a map needed) and retransmits only what is missing:
// per replica, the chunks it has not acked. After failoverAfter silent
// rounds a transfer escalates to a monolithic full image, which cannot
// chain-break at the store; legacy mode additionally rotates to a
// backup server, whereupon all chunks are missing there by definition.
func (d *V2) ckptExpired() {
	d.ckptTimer = 0
	to := d.ckptAckTimeout()
	if to <= 0 {
		return
	}
	bo := d.backoff(to)
	now := d.rt.Now()
	for i := range d.ckptRing {
		x := &d.ckptRing[i]
		if x.done || x.sent+bo.Delay(x.attempts) > now {
			continue
		}
		x.attempts++
		x.sent = now
		if !x.escalated && x.attempts >= d.failoverAfter() {
			d.escalateCkpt(x)
		}
		if d.csQ > 0 {
			for _, t := range d.csTargets {
				if !x.heldBy(d.csBits[t]) {
					d.resendXfer(x, t)
				}
			}
			d.stats.Retransmits++
			continue
		}
		d.csStrikes++
		if d.csStrikes >= d.failoverAfter() && len(d.csTargets) > 1 {
			d.csIdx = (d.csIdx + 1) % len(d.csTargets)
			d.csStrikes = 0
			d.stats.Failovers++
		}
		d.resendXfer(x, d.csTargets[d.csIdx])
		d.stats.Retransmits++
	}
	d.armCkpt()
}

// resendXfer is sendXfer plus the retransmit accounting.
func (d *V2) resendXfer(x *ckptXfer, t int) {
	bit := d.csBits[t]
	if x.fullAcked&(1<<bit) != 0 {
		return
	}
	if x.escalated {
		d.ep.Send(t, wire.KCkptSave, x.full)
		return
	}
	for i := range x.chunks {
		if x.chunks[i].acked&(1<<bit) == 0 {
			d.ep.Send(t, wire.KCkptChunk, x.chunks[i].frame)
			d.stats.ChunkRetransmits++
		}
	}
}

// escalateCkpt abandons the chunked delta for a transfer the servers
// will not complete — a replica missing the delta's base, or chunks
// vanishing faster than selective retransmit can replace them — and
// encodes the retained full snapshot as one monolithic KCkptSave. The
// store accepts it unconditionally (no chain to follow), restoring the
// pre-delta liveness guarantee.
func (d *V2) escalateCkpt(x *ckptXfer) {
	x.escalated = true
	if x.full != nil {
		return
	}
	proto := core.AppendSnapshot(wire.GetBuf(core.SnapshotSize(x.sn)), x.sn)
	im := &ckpt.Image{Rank: d.cfg.Rank, Seq: x.seq, AppState: x.appState, Proto: proto}
	img := ckpt.AppendImage(wire.GetBuf(ckpt.ImageSize(im)), im)
	wire.PutBuf(proto)
	x.full = wire.EncodeCkptSave(x.seq, img)
	d.stats.CkptBytes += int64(len(img)) // the full image ships after all
	wire.PutBuf(img)
}
