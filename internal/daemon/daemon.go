// Package daemon implements the communication daemons of the three MPI
// implementations compared in the paper:
//
//   - V2: the MPICH-V2 daemon (§4.4-§4.6) — sender-based payload
//     logging, event logging with send gating, uncoordinated
//     checkpointing, message replay after restart.
//   - P4: the MPICH-P4 baseline — direct transmission, no fault
//     tolerance, payload pushed during the send call (the driver is busy
//     while transmitting and does not service receptions).
//   - V1: the MPICH-V1 baseline — every payload store-and-forwarded
//     through a reliable Channel Memory.
//
// Each daemon owns a transport endpoint and serves exactly one MPI
// process through the Device interface — the six-primitive MPICH channel
// interface of §4.4. The MPI process talks to its daemon over a
// mailbox pair that models the Unix socket (synchronous, whole-message
// granularity).
package daemon

import (
	"sync/atomic"
	"time"

	"mpichv/internal/trace"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
)

// Device is the MPICH channel interface seen by the MPI protocol layer
// (PIbsend, PIbrecv, PInprobe, PIiInit, PIiFinish; PIfrom is folded into
// BRecv's return value).
type Device interface {
	// Init completes once the daemon is ready (recovery included) and
	// returns the process coordinates plus the restored application
	// snapshot when restarting from a checkpoint.
	Init() (rank, size int, appState []byte, restarted bool)
	// BSend transmits one protocol-layer block to the daemon of rank
	// "to".
	BSend(to int, data []byte)
	// BRecv blocks for the next protocol-layer block.
	BRecv() (from int, data []byte)
	// NProbe reports whether a block is pending.
	NProbe() bool
	// CkptRequested reports whether the checkpoint scheduler asked
	// this node to checkpoint; the MPI layer answers by calling
	// Checkpoint at the next application safe point.
	CkptRequested() bool
	// Checkpoint hands the application-level snapshot to the daemon,
	// which pairs it with the protocol state and ships it to the
	// checkpoint server (transfer overlapped with execution).
	Checkpoint(appState []byte)
	// Finish signals MPI finalization.
	Finish()
}

// Killed is panicked out of an MPI process whose daemon died (node
// crash). The runner that spawned the process recovers it.
type Killed struct{ Rank int }

// Config describes one computing node of a system.
type Config struct {
	Rank int // rank and node id of this computing node
	Size int // number of MPI processes

	// Service node ids; -1 when the service is absent.
	EventLogger int
	CkptServer  int
	Scheduler   int
	Dispatcher  int

	// ChannelMemory maps a destination rank to its Channel Memory
	// node id (V1 only).
	ChannelMemory func(rank int) int

	// UnixDelay is the cost of one MPI-process↔daemon socket
	// crossing.
	UnixDelay time.Duration
	// UnixCopyPerByte is the store-and-forward copy cost for payloads
	// up to PipelineLimit crossing the Unix socket (larger transfers
	// pipeline and pay nothing extra).
	UnixCopyPerByte time.Duration
	PipelineLimit   int

	// Sender-based logging costs (V2 only); see netsim.Params.
	LogCopyPerByte  time.Duration
	DiskCopyPerByte time.Duration
	LogMemLimit     int64
	LogHardLimit    int64

	// Restarted indicates this daemon replaces a crashed incarnation
	// and must run the recovery protocol before serving.
	Restarted bool

	// Incarnation counts how many times this rank has been (re)spawned
	// (0 for the first launch). It namespaces the daemon's request
	// sequence numbers — event-log submissions and checkpoint saves
	// start at Incarnation<<32 — so a frame of a dead predecessor that
	// a slow network delivers late can never be mistaken for one of
	// ours, and the checkpoint store's monotonicity guard keeps
	// working across restarts.
	Incarnation uint64

	// ELBackups and CSBackups are alternate event-logger / checkpoint
	// server node ids the daemon re-homes to (round-robin) when the
	// current one stops acknowledging; see FailoverAfter.
	ELBackups []int
	CSBackups []int

	// ELReplicas, together with ELQuorum ≥ 1, switches the event-log
	// exchange from primary+failover to quorum replication: every event
	// batch is submitted to all replicas, WAITLOGGED is satisfied only
	// once ELQuorum distinct replicas have acked, retransmissions go
	// only to the still-silent replicas, and restart-time event fetches
	// merge a read quorum of len(ELReplicas)−ELQuorum+1 replies (the
	// smallest set guaranteed to intersect every write quorum). When
	// set, EventLogger/ELBackups are ignored.
	ELReplicas []int
	ELQuorum   int
	// CSReplicas/CSQuorum mirror the same scheme for checkpoint saves
	// and restart-time image fetches.
	CSReplicas []int
	CSQuorum   int

	// ELShardGroups shards the event-logger fleet (DESIGN.md §15): each
	// group is one ELReplicas/ELQuorum replica set, and every channel
	// (sender, receiver) maps to a shard through the deterministic
	// consistent-hash ring seeded by ELShardSeed. Submissions,
	// WAITLOGGED gating, retransmission and cumulative acks run
	// independently per shard, restart fetches union determinants across
	// all shards, and KELShardDown/KELShardUp notices from the
	// dispatcher move a dead shard's key range to its ring successor
	// (with a history backfill) until it rejoins. When set, ELReplicas
	// and EventLogger/ELBackups are ignored; a single group behaves
	// exactly like ELReplicas. ELQuorum applies per group.
	ELShardGroups [][]int
	ELShardSeed   uint64

	// Timeouts for the retry machinery on the blocking protocol paths.
	// Each names the base of a bounded exponential backoff
	// (transport.Backoff). Zero selects the default; negative disables
	// that retry path.
	//
	//   ELAckTimeout   — event-log submission → KEventAck (default 25ms)
	//   CkptAckTimeout — checkpoint save → KCkptSaveAck (default 250ms)
	//   FetchTimeout   — restart-time image/event-list fetch (default 25ms)
	//   RestartTimeout — RESTART1 → RESTART2 handshake wait (default:
	//                    disabled; the paper's protocol never waits on
	//                    RESTART2, so this only pays off on lossy links)
	ELAckTimeout   time.Duration
	CkptAckTimeout time.Duration
	FetchTimeout   time.Duration
	RestartTimeout time.Duration

	// RestartRetries bounds RESTART1 retransmissions per peer during
	// recovery (default 6); a peer silent for that long is presumed
	// crashed — its own recovery will resynchronize us.
	RestartRetries int

	// FailoverAfter is the number of consecutive unanswered
	// (re)transmissions to a service after which the daemon re-homes
	// to the next backup (default 3).
	FailoverAfter int

	// PullTimeout, when positive, arms a pull timer whenever the
	// daemon starves waiting for a message: it re-announces its
	// delivered horizon (a RESTART1) to every peer, making them
	// re-send anything the network may have dropped. Disabled by
	// default — on a reliable fabric starvation just means the
	// application is blocked on a message that was never sent.
	PullTimeout time.Duration

	// EventBatching accumulates reception events while an event-logger
	// exchange is in flight and submits them as one frame on the ack,
	// trading a longer WAITLOGGED tail for far fewer logger messages.
	EventBatching bool

	// ELWindow, when positive, pipelines determinant logging: up to
	// ELWindow event batches may be in flight to the logger at once,
	// and the queue flushes into a new batch whenever a slot frees.
	// 1 is explicit stop-and-wait; 0 keeps the legacy behavior
	// (stop-and-wait iff EventBatching, else one batch per event with
	// no limit). The pessimistic guarantee is unchanged: WAITLOGGED
	// still holds sends until every submitted batch is acked.
	ELWindow int

	// ELHighWater, when positive, bounds the daemon's memory while its
	// event-logger quorum is unreachable. Determinants that cannot
	// reach quorum pile up (in-flight batches plus the submission
	// queue); at ELHighWater pending determinants the daemon stops
	// committing new receptions — the application stalls in recv, so it
	// also stops producing — and resumes once retransmissions drain the
	// backlog to ELLowWater (default ELHighWater/2). The WAITLOGGED
	// gate already stalls *senders* under a dead logger; the watermark
	// extends the same pressure to receive-heavy ranks, whose resend
	// queues would otherwise grow without bound for the whole outage.
	// Zero disables the gate (simulated runs keep legacy behavior).
	ELHighWater int
	ELLowWater  int

	// DetMode selects the determinant-suppression policy of the receive
	// path (DetOff, DetAdaptive, DetAggressive). Off logs every
	// reception pessimistically (the paper's protocol). Adaptive
	// classifies each delivery with daemon-observable signals — zero
	// outstanding probes and no competing undelivered arrival from
	// another sender — and suppresses the determinant of deterministic
	// deliveries: the event skips the WAITLOGGED gate, rides outgoing
	// payloads piggybacked, and reaches the event loggers in a periodic
	// epoch batch off the critical path. A channel that ever shows a
	// probe or a competing arrival is poisoned: it falls back to the
	// full pessimistic path permanently. Aggressive suppresses on the
	// probe signal alone with no poisoning — deliberately unsafe, kept
	// for the misclassification negative tests (the happens-before
	// auditor convicts it).
	DetMode int

	// DetEpoch is the epoch size of suppressed-determinant batching:
	// after this many suppressed events the buffer flushes to the event
	// loggers as one batch (default 16). Flushes also happen whenever
	// the daemon starves waiting for traffic, and synchronously at
	// checkpoint and finalize time so no suppressed determinant can be
	// orphaned below a checkpoint horizon.
	DetEpoch int

	// DetPiggyMax bounds the suppressed determinants pending durability
	// (default 64): every outgoing payload carries all of them, so the
	// bound caps the piggyback block; at the cap the classifier forces
	// the pessimistic path until the epoch flush drains the backlog.
	DetPiggyMax int

	// NoSendGating disables the WAITLOGGED barrier (ablation only):
	// sends leave before reception events are acknowledged, turning
	// the protocol into an optimistic-style logger that can no longer
	// guarantee replay after a crash. Used by the ablation benchmarks
	// to price the pessimistic gating on the critical path.
	NoSendGating bool

	// CkptChunkSize is the chunk size (bytes) of the chunked checkpoint
	// transfer: images stream to the checkpoint servers as individually
	// CRC-framed chunks with per-chunk acks, and only missing chunks are
	// retransmitted. Zero selects the default (16 KiB); negative
	// disables chunking and ships each checkpoint as one monolithic
	// KCkptSave — the pre-chunking behavior, kept for ablations.
	CkptChunkSize int

	// CkptNoDelta disables delta checkpoint images (ablation): every
	// checkpoint ships its full SAVED log even when the previous acked
	// checkpoint already made most of it durable.
	CkptNoDelta bool

	// Tracer, when non-nil, receives a causal trace of the daemon's
	// protocol transitions (sends, deliveries, determinant durability,
	// WAITLOGGED stalls, checkpoint/GC progress, restarts) stamped
	// with virtual time. The recorder is owned by the rank, not the
	// incarnation: a respawned daemon inherits its predecessor's ring
	// so the happens-before auditor sees the whole history. Nil (the
	// default) records nothing and adds zero wire bytes, zero
	// allocations and zero virtual time to the run.
	Tracer *trace.Recorder
}

// Determinant-suppression policies (Config.DetMode).
const (
	// DetOff logs every reception pessimistically (the paper's
	// protocol, unchanged).
	DetOff = iota
	// DetAdaptive suppresses determinants of deliveries the daemon can
	// prove deterministic (no outstanding probe, no competing arrival
	// from another sender, channel never poisoned); everything else
	// takes the full pessimistic path.
	DetAdaptive
	// DetAggressive suppresses on the probe signal alone, without
	// channel poisoning or the competing-arrival check. Unsafe by
	// design: it exists so the negative tests can demonstrate that the
	// happens-before auditor convicts unsound suppression.
	DetAggressive
)

// rank → daemon request plumbing ("the Unix socket").

type rankOp uint8

const (
	opInit rankOp = iota
	opSend
	opRecv
	opProbe
	opCkpt
	opFinish
)

type rankReq struct {
	op   rankOp
	to   int
	data []byte
}

type rankResp struct {
	from      int
	data      []byte
	flag      bool
	rank      int
	size      int
	appState  []byte
	restarted bool
}

// dEvent multiplexes everything a daemon actor can observe into its
// single inbox: transport frames, rank requests, timer expiries, and
// death.
type dEvent struct {
	isFrame bool
	frame   transport.Frame
	isReq   bool
	req     rankReq
	isTimer bool
	timer   uint64
	closed  bool
}

// proxy implements Device over the daemon's unified inbox.
type proxy struct {
	rank  int
	delay time.Duration
	in    *vtime.Mailbox[dEvent]
	resp  *vtime.Mailbox[rankResp]
	ckpt  *atomic.Bool
}

func (p *proxy) call(r rankReq) rankResp {
	p.in.SendAfter(p.delay, dEvent{isReq: true, req: r})
	resp, ok := p.resp.Recv()
	if !ok {
		panic(Killed{Rank: p.rank})
	}
	return resp
}

func (p *proxy) Init() (int, int, []byte, bool) {
	r := p.call(rankReq{op: opInit})
	return r.rank, r.size, r.appState, r.restarted
}

func (p *proxy) BSend(to int, data []byte) {
	p.call(rankReq{op: opSend, to: to, data: data})
}

func (p *proxy) BRecv() (int, []byte) {
	r := p.call(rankReq{op: opRecv})
	return r.from, r.data
}

func (p *proxy) NProbe() bool {
	return p.call(rankReq{op: opProbe}).flag
}

func (p *proxy) CkptRequested() bool { return p.ckpt.Load() }

func (p *proxy) Checkpoint(appState []byte) {
	p.call(rankReq{op: opCkpt, data: appState})
}

func (p *proxy) Finish() {
	p.call(rankReq{op: opFinish})
}

// killedPanic is used internally by daemon actors to unwind when their
// endpoint closes underneath them.
type killedPanic struct{}

// noCkpt is the always-false checkpoint flag shared by daemons without
// fault tolerance (P4, V1).
var noCkpt atomic.Bool

// pump forwards endpoint frames into the unified inbox and reports
// endpoint death.
func pump(rt vtime.Runtime, name string, ep transport.Endpoint, in *vtime.Mailbox[dEvent]) {
	rt.Go(name, func() {
		for {
			f, ok := ep.Inbox().Recv()
			if !ok {
				in.Send(dEvent{closed: true})
				return
			}
			if !in.Send(dEvent{isFrame: true, frame: f}) {
				return
			}
		}
	})
}

// Stats are per-daemon counters surfaced to the experiments.
type Stats struct {
	SentMsgs      int64
	SentBytes     int64
	RecvMsgs      int64
	RecvBytes     int64
	EventsLogged  int64
	ELWaits       int64 // sends that actually blocked on WAITLOGGED
	ELWaitNS      int64 // virtual nanoseconds spent blocked in WAITLOGGED
	Checkpoints   int64
	CkptBytes     int64
	Replayed      int64
	Resent        int64
	GCFreedBytes  int64
	LogOverflowed bool
	Retransmits   int64 // timed-out requests re-sent (EL, ckpt, recovery, finalize)
	Pulls         int64 // starvation-triggered re-announcements to peers
	Failovers     int64 // re-homings to a backup service instance
	Malformed     int64 // frames the daemon could not decode

	// Quorum replication counters.
	QuorumAcks      int64 // batches/saves completed at their write quorum
	BelowQuorumAcks int64 // completions below quorum — an invariant breach, must stay 0
	DegradedReads   int64 // restart fetches that settled below the read quorum
	CorruptImages   int64 // fetched checkpoint images rejected by integrity checks
	ReplayDropped   int64 // replay events truncated at a channel-sequence gap

	// Incremental chunked checkpointing counters.
	DeltaCkpts       int64 // checkpoints shipped as deltas against an acked base
	ChunkRetransmits int64 // individual checkpoint chunks re-sent after a timeout
	ManifestFetches  int64 // restart-time manifest gathers (chunked fast path)

	// Degraded-mode (EL watermark) counters.
	DegradedStalls  int64 // times the daemon crossed ELHighWater and froze delivery
	DegradedResumes int64 // times the backlog drained to ELLowWater and delivery resumed

	// Event-logger fleet (sharding) counters.
	ShardRebalances int64 // KELShardDown notices applied (key range moved to successor)
	ShardRejoins    int64 // KELShardUp notices applied (key range moved back)
	ShardBackfilled int64 // retained determinants re-submitted to rebuild a shard

	// Determinant-suppression counters.
	DetSuppressed   int64 // deliveries whose determinant skipped the WAITLOGGED gate
	DetForced       int64 // deliveries logged on the full pessimistic path
	DetPiggybacked  int64 // suppressed determinants carried on outgoing payload frames
	DetRelayed      int64 // foreign piggybacked determinants relayed to the EL quorum
	DetEpochFlushes int64 // suppressed-determinant epoch batches submitted to the EL
	DetRegenerated  int64 // replay holes filled by regenerating a suppressed delivery
	DetFlushMerged  int64 // peer-cached determinants merged during restart (KDetFlushResp)
	DetPoisoned     int64 // channels permanently returned to the pessimistic path
}

// AddTo exports the counters into a metrics registry under the
// "daemon." namespace — the uniform surface the vbench -json artifacts
// read. Hot paths keep bumping the plain struct fields (free under the
// sim's actor serialization); the registry is the observation layer
// they fold into at run teardown.
func (s Stats) AddTo(r *trace.Registry) {
	r.Counter("daemon.sent_msgs").Add(s.SentMsgs)
	r.Counter("daemon.sent_bytes").Add(s.SentBytes)
	r.Counter("daemon.recv_msgs").Add(s.RecvMsgs)
	r.Counter("daemon.recv_bytes").Add(s.RecvBytes)
	r.Counter("daemon.events_logged").Add(s.EventsLogged)
	r.Counter("daemon.el_waits").Add(s.ELWaits)
	r.Counter("daemon.el_wait_ns").Add(s.ELWaitNS)
	r.Counter("daemon.checkpoints").Add(s.Checkpoints)
	r.Counter("daemon.ckpt_bytes").Add(s.CkptBytes)
	r.Counter("daemon.replayed").Add(s.Replayed)
	r.Counter("daemon.resent").Add(s.Resent)
	r.Counter("daemon.gc_freed_bytes").Add(s.GCFreedBytes)
	r.Counter("daemon.retransmits").Add(s.Retransmits)
	r.Counter("daemon.pulls").Add(s.Pulls)
	r.Counter("daemon.failovers").Add(s.Failovers)
	r.Counter("daemon.malformed").Add(s.Malformed)
	r.Counter("daemon.quorum_acks").Add(s.QuorumAcks)
	r.Counter("daemon.below_quorum_acks").Add(s.BelowQuorumAcks)
	r.Counter("daemon.degraded_reads").Add(s.DegradedReads)
	r.Counter("daemon.corrupt_images").Add(s.CorruptImages)
	r.Counter("daemon.replay_dropped").Add(s.ReplayDropped)
	r.Counter("daemon.delta_ckpts").Add(s.DeltaCkpts)
	r.Counter("daemon.chunk_retransmits").Add(s.ChunkRetransmits)
	r.Counter("daemon.manifest_fetches").Add(s.ManifestFetches)
	r.Counter("daemon.degraded_stalls").Add(s.DegradedStalls)
	r.Counter("daemon.degraded_resumes").Add(s.DegradedResumes)
	r.Counter("daemon.shard_rebalances").Add(s.ShardRebalances)
	r.Counter("daemon.shard_rejoins").Add(s.ShardRejoins)
	r.Counter("daemon.shard_backfilled").Add(s.ShardBackfilled)
	r.Counter("daemon.det_suppressed").Add(s.DetSuppressed)
	r.Counter("daemon.det_forced").Add(s.DetForced)
	r.Counter("daemon.det_piggybacked").Add(s.DetPiggybacked)
	r.Counter("daemon.det_relayed").Add(s.DetRelayed)
	r.Counter("daemon.det_epoch_flushes").Add(s.DetEpochFlushes)
	r.Counter("daemon.det_regenerated").Add(s.DetRegenerated)
	r.Counter("daemon.det_flush_merged").Add(s.DetFlushMerged)
	r.Counter("daemon.det_poisoned").Add(s.DetPoisoned)
}
