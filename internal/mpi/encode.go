package mpi

import (
	"encoding/binary"
	"math"
)

// Typed payload helpers. MPI datatypes are reduced to the two the
// kernels need: float64 vectors and int64 vectors, in little-endian
// layout.

// Float64sToBytes serializes a float64 vector.
func Float64sToBytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// BytesToFloat64s parses a vector produced by Float64sToBytes.
func BytesToFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Int64sToBytes serializes an int64 vector.
func Int64sToBytes(v []int64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// BytesToInt64s parses a vector produced by Int64sToBytes.
func BytesToInt64s(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// SendFloat64s is Send with a float64 payload.
func (p *Proc) SendFloat64s(to, tag int, v []float64) {
	p.Send(to, tag, Float64sToBytes(v))
}

// RecvFloat64s is Recv with a float64 payload.
func (p *Proc) RecvFloat64s(src, tag int) ([]float64, Status) {
	b, st := p.Recv(src, tag)
	return BytesToFloat64s(b), st
}

// IsendFloat64s is Isend with a float64 payload.
func (p *Proc) IsendFloat64s(to, tag int, v []float64) *Request {
	return p.Isend(to, tag, Float64sToBytes(v))
}
