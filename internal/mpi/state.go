package mpi

import (
	"bytes"
	"encoding/gob"
)

// Checkpointable MPI-layer state. The application provides its own
// snapshot bytes; the protocol layer must add what it owns that the
// device-level replay cannot reconstruct: the collective and rendezvous
// sequence counters and — crucially — the unexpected-message queue.
// Messages sitting there already crossed the device (their reception
// events are logged, their clock ticks happened), so a restart from this
// checkpoint will not replay them; dropping them would lose messages.
//
// Outstanding requests (posted receives, deferred sends, rendezvous
// transfers in flight) are not serializable against the application's
// own state, so CheckpointPoint only fires when the process is quiescent
// and retries at the next safe point otherwise.

type procState struct {
	CollSeq    uint32
	NextSendID uint32
	Unexpected []savedInMsg
	User       []byte
}

type savedInMsg struct {
	From int
	Tag  int
	RTS  bool
	ID   uint32
	Size int
	Data []byte
}

func (p *Proc) quiescent() bool {
	return len(p.posted) == 0 && len(p.deferred) == 0 &&
		len(p.sendsByID) == 0 && len(p.rvInflight) == 0
}

func (p *Proc) encodeState(user []byte) []byte {
	st := procState{
		CollSeq:    p.collSeq,
		NextSendID: p.nextSendID,
		User:       user,
	}
	for _, m := range p.unexpected {
		st.Unexpected = append(st.Unexpected, savedInMsg{
			From: m.from, Tag: m.tag, RTS: m.rts, ID: m.id, Size: m.size,
			Data: append([]byte(nil), m.data...),
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		p.Abortf("encoding checkpoint state: %v", err)
	}
	return buf.Bytes()
}

func (p *Proc) restoreState(blob []byte) []byte {
	var st procState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		p.Abortf("decoding checkpoint state: %v", err)
	}
	p.collSeq = st.CollSeq
	p.nextSendID = st.NextSendID
	p.unexpected = p.unexpected[:0]
	for _, m := range st.Unexpected {
		p.unexpected = append(p.unexpected, inMsg{
			from: m.From, tag: m.Tag, rts: m.RTS, id: m.ID, size: m.Size, data: m.Data,
		})
	}
	return st.User
}
