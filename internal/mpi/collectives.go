package mpi

// Collective operations built on point-to-point, with deterministic
// communication patterns (fixed trees and rings, no wildcard receives)
// so that re-execution replays them exactly.

// collTagBase separates collective traffic from user tags. User tags
// must stay below it.
const collTagBase = 1 << 24

func (p *Proc) collTag() int {
	p.collSeq++
	return collTagBase + int(p.collSeq&0xFFFFF)
}

// Barrier blocks until every process has entered it (dissemination
// algorithm: ⌈log2 n⌉ rounds).
func (p *Proc) Barrier() {
	tag := p.collTag()
	for k := 1; k < p.size; k <<= 1 {
		to := (p.rank + k) % p.size
		from := (p.rank - k + p.size) % p.size
		p.Sendrecv(to, tag, nil, from, tag)
	}
}

// Bcast broadcasts root's data to every process (binomial tree) and
// returns the received copy.
func (p *Proc) Bcast(root int, data []byte) []byte {
	tag := p.collTag()
	vrank := (p.rank - root + p.size) % p.size
	if vrank != 0 {
		// Receive from the parent: clear the lowest set bit.
		parent := ((vrank & (vrank - 1)) + root) % p.size
		data, _ = p.Recv(parent, tag)
	}
	// Forward to children: set bits above the lowest set bit.
	for k := 1; k < p.size; k <<= 1 {
		if vrank&(k-1) == 0 && vrank&k == 0 && vrank+k < p.size {
			child := (vrank + k + root) % p.size
			p.Send(child, tag, data)
		}
	}
	return data
}

// ReduceOp combines two equally-shaped float64 vectors in place (dst op=
// src).
type ReduceOp func(dst, src []float64)

// OpSum accumulates element-wise sums.
func OpSum(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// OpMax keeps element-wise maxima.
func OpMax(dst, src []float64) {
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// OpMin keeps element-wise minima.
func OpMin(dst, src []float64) {
	for i := range dst {
		if src[i] < dst[i] {
			dst[i] = src[i]
		}
	}
}

// Reduce combines each process's vector onto root (binomial tree) and
// returns the result on root (nil elsewhere). The input is not mutated.
func (p *Proc) Reduce(root int, data []float64, op ReduceOp) []float64 {
	tag := p.collTag()
	acc := append([]float64(nil), data...)
	vrank := (p.rank - root + p.size) % p.size
	for k := 1; k < p.size; k <<= 1 {
		if vrank&k != 0 {
			parent := ((vrank - k) + root) % p.size
			p.Send(parent, tag, Float64sToBytes(acc))
			return nil
		}
		if vrank+k < p.size {
			child := (vrank + k + root) % p.size
			b, _ := p.Recv(child, tag)
			op(acc, BytesToFloat64s(b))
		}
	}
	return acc
}

// Allreduce combines every process's vector and distributes the result.
func (p *Proc) Allreduce(data []float64, op ReduceOp) []float64 {
	res := p.Reduce(0, data, op)
	if p.rank != 0 {
		res = nil
	}
	var b []byte
	if p.rank == 0 {
		b = Float64sToBytes(res)
	}
	return BytesToFloat64s(p.Bcast(0, b))
}

// AllreduceScalar is Allreduce over a single value.
func (p *Proc) AllreduceScalar(v float64, op ReduceOp) float64 {
	return p.Allreduce([]float64{v}, op)[0]
}

// Gather collects every process's block on root, concatenated in rank
// order (nil on non-roots).
func (p *Proc) Gather(root int, data []byte) [][]byte {
	tag := p.collTag()
	if p.rank != root {
		p.Send(root, tag, data)
		return nil
	}
	out := make([][]byte, p.size)
	out[root] = data
	reqs := make([]*Request, 0, p.size-1)
	idx := make([]int, 0, p.size-1)
	for r := 0; r < p.size; r++ {
		if r == root {
			continue
		}
		reqs = append(reqs, p.Irecv(r, tag))
		idx = append(idx, r)
	}
	p.Waitall(reqs)
	for i, r := range reqs {
		out[idx[i]] = r.Data()
	}
	return out
}

// Scatter distributes root's blocks (one per rank) and returns this
// process's block.
func (p *Proc) Scatter(root int, blocks [][]byte) []byte {
	tag := p.collTag()
	if p.rank == root {
		for r := 0; r < p.size; r++ {
			if r != root {
				p.Send(r, tag, blocks[r])
			}
		}
		return blocks[root]
	}
	b, _ := p.Recv(root, tag)
	return b
}

// Allgather collects every process's block everywhere (ring algorithm:
// n-1 steps, each passing the newest block to the right).
func (p *Proc) Allgather(data []byte) [][]byte {
	tag := p.collTag()
	out := make([][]byte, p.size)
	out[p.rank] = data
	right := (p.rank + 1) % p.size
	left := (p.rank - 1 + p.size) % p.size
	cur := data
	for step := 0; step < p.size-1; step++ {
		got, _ := p.Sendrecv(right, tag, cur, left, tag)
		src := (p.rank - 1 - step + 2*p.size) % p.size
		out[src] = got
		cur = got
	}
	return out
}

// Alltoall sends blocks[r] to each rank r and returns the blocks
// received from every rank (pairwise exchange, n-1 steps).
func (p *Proc) Alltoall(blocks [][]byte) [][]byte {
	tag := p.collTag()
	out := make([][]byte, p.size)
	out[p.rank] = blocks[p.rank]
	for step := 1; step < p.size; step++ {
		to := (p.rank + step) % p.size
		from := (p.rank - step + p.size) % p.size
		got, _ := p.Sendrecv(to, tag, blocks[to], from, tag)
		out[from] = got
	}
	return out
}
