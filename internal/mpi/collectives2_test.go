package mpi

import (
	"math/rand"
	"testing"
)

func TestScan(t *testing.T) {
	for _, n := range collectiveSizes() {
		runProcs(t, n, Options{}, func(p *Proc) {
			got := p.ScanScalar(float64(p.Rank()+1), OpSum)
			want := float64((p.Rank() + 1) * (p.Rank() + 2) / 2)
			if got != want {
				p.Abortf("scan = %v, want %v", got, want)
			}
		})
	}
}

func TestScanVector(t *testing.T) {
	runProcs(t, 4, Options{}, func(p *Proc) {
		got := p.Scan([]float64{1, float64(p.Rank())}, OpSum)
		if got[0] != float64(p.Rank()+1) {
			p.Abortf("scan count = %v", got)
		}
		want := float64(p.Rank() * (p.Rank() + 1) / 2)
		if got[1] != want {
			p.Abortf("scan sum = %v, want %v", got[1], want)
		}
	})
}

func TestReduceScatter(t *testing.T) {
	for _, n := range collectiveSizes() {
		runProcs(t, n, Options{}, func(p *Proc) {
			// Every rank contributes [1, 2, ..., 2n]; the sum is
			// size×i, block r holds its slice.
			data := make([]float64, 2*p.Size())
			for i := range data {
				data[i] = float64(i + 1)
			}
			got := p.ReduceScatter(data, OpSum)
			lo, hi := blockSplit(len(data), p.Size(), p.Rank())
			if len(got) != hi-lo {
				p.Abortf("block len %d, want %d", len(got), hi-lo)
			}
			for i, v := range got {
				want := float64(p.Size()) * float64(lo+i+1)
				if v != want {
					p.Abortf("block[%d] = %v, want %v", i, v, want)
				}
			}
		})
	}
}

func TestGathervVariableSizes(t *testing.T) {
	runProcs(t, 5, Options{}, func(p *Proc) {
		mine := make([]byte, p.Rank()+1)
		for i := range mine {
			mine[i] = byte(p.Rank())
		}
		blocks := p.Gatherv(2, mine)
		if p.Rank() != 2 {
			return
		}
		for r, b := range blocks {
			if len(b) != r+1 {
				p.Abortf("block %d has %d bytes", r, len(b))
			}
			for _, x := range b {
				if int(x) != r {
					p.Abortf("block %d contains %d", r, x)
				}
			}
		}
	})
}

func TestAlltoallvVariableSizes(t *testing.T) {
	runProcs(t, 4, Options{}, func(p *Proc) {
		out := make([][]byte, p.Size())
		for r := range out {
			out[r] = make([]byte, p.Rank()+r+1) // size identifies the pair
		}
		in := p.Alltoallv(out)
		for r, b := range in {
			if len(b) != r+p.Rank()+1 {
				p.Abortf("from %d got %d bytes, want %d", r, len(b), r+p.Rank()+1)
			}
		}
	})
}

func TestBcastFloat64s(t *testing.T) {
	runProcs(t, 3, Options{}, func(p *Proc) {
		var v []float64
		if p.Rank() == 1 {
			v = []float64{3.14, 2.71}
		}
		got := p.BcastFloat64s(1, v)
		if len(got) != 2 || got[0] != 3.14 || got[1] != 2.71 {
			p.Abortf("bcast floats = %v", got)
		}
	})
}

// Property: Allreduce(sum) equals the serial sum of all contributions
// for random vectors (up to reduction-order rounding, which is exact
// here because inputs are small integers).
func TestPropertyAllreduceMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(6)
		width := 1 + rng.Intn(8)
		inputs := make([][]float64, n)
		want := make([]float64, width)
		for r := range inputs {
			inputs[r] = make([]float64, width)
			for i := range inputs[r] {
				inputs[r][i] = float64(rng.Intn(100))
				want[i] += inputs[r][i]
			}
		}
		runProcs(t, n, Options{}, func(p *Proc) {
			got := p.Allreduce(inputs[p.Rank()], OpSum)
			for i := range want {
				if got[i] != want[i] {
					p.Abortf("allreduce[%d] = %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}
