package mpi

import "encoding/binary"

// Message type bytes of the protocol layer.
const (
	mEager uint8 = 1 // complete payload
	mRTS   uint8 = 2 // rendezvous request-to-send (announces size)
	mCTS   uint8 = 3 // rendezvous clear-to-send (echoes sender id)
	mData  uint8 = 4 // rendezvous payload
)

const hdrLen = 1 + 4 + 4

func encodeMsg(mtype uint8, tag int, id uint32, payload []byte) []byte {
	out := make([]byte, hdrLen+len(payload))
	out[0] = mtype
	binary.BigEndian.PutUint32(out[1:], uint32(int32(tag)))
	binary.BigEndian.PutUint32(out[5:], id)
	copy(out[hdrLen:], payload)
	return out
}

func decodeMsg(b []byte) (mtype uint8, tag int, id uint32, payload []byte) {
	if len(b) < hdrLen {
		panic("mpi: protocol block shorter than header")
	}
	return b[0], int(int32(binary.BigEndian.Uint32(b[1:]))), binary.BigEndian.Uint32(b[5:]), b[hdrLen:]
}

// Request is a nonblocking communication handle.
type Request struct {
	done   bool
	isSend bool

	// send fields
	to      int
	stag    int
	payload []byte
	id      uint32
	pushed  bool // transmission initiated (eager sent / RTS sent)

	// recv fields
	srcSel int // matching source (AnySource allowed)
	tagSel int // matching tag (AnyTag allowed)
	from   int
	rtag   int
	data   []byte
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done }

// Data returns the received payload of a completed receive request.
func (r *Request) Data() []byte { return r.data }

// Status returns the completion status of a receive request.
func (r *Request) Status() Status { return Status{Source: r.from, Tag: r.rtag, Size: len(r.data)} }

func match(srcSel, tagSel, from, tag int) bool {
	return (srcSel == AnySource || srcSel == from) && (tagSel == AnyTag || tagSel == tag)
}

// Isend starts a nonblocking send. The payload is not copied; the caller
// must not mutate it until the request completes.
func (p *Proc) Isend(to, tag int, data []byte) *Request {
	t0 := p.clock.Now()
	r := &Request{isSend: true, to: to, stag: tag, payload: data}
	if to == p.rank {
		p.deliverLocal(inMsg{from: p.rank, tag: tag, data: data})
		r.done = true
	} else if len(data) <= p.opt.EagerLimit && p.opt.EagerInIsend {
		p.pushSend(r)
	} else if len(data) > p.opt.EagerLimit && p.opt.EagerInIsend {
		// P4 rendezvous: the RTS goes out immediately; the payload
		// follows the CTS during a later progress call.
		p.pushSend(r)
	} else {
		// V2/V1: the send is only posted; transmission happens in
		// the completing call (MPI_Wait and friends).
		p.deferred = append(p.deferred, r)
	}
	p.stats.Add("MPI_Isend", p.clock.Now()-t0)
	return r
}

// Irecv starts a nonblocking receive matching (src, tag), with
// wildcards.
func (p *Proc) Irecv(src, tag int) *Request {
	t0 := p.clock.Now()
	r := &Request{srcSel: src, tagSel: tag}
	if !p.matchUnexpected(r) {
		p.posted = append(p.posted, r)
	}
	p.stats.Add("MPI_Irecv", p.clock.Now()-t0)
	return r
}

// Wait blocks until the request completes. For receive requests it
// returns the payload and status.
func (p *Proc) Wait(r *Request) ([]byte, Status) {
	t0 := p.clock.Now()
	p.flushDeferred()
	for !r.done {
		p.progressBlocking()
	}
	p.stats.Add("MPI_Wait", p.clock.Now()-t0)
	return r.data, r.Status()
}

// Waitall blocks until every request completes.
func (p *Proc) Waitall(rs []*Request) {
	t0 := p.clock.Now()
	p.flushDeferred()
	for _, r := range rs {
		for !r.done {
			p.progressBlocking()
		}
	}
	p.stats.Add("MPI_Wait", p.clock.Now()-t0)
}

// Test reports whether the request has completed, progressing the engine
// without blocking.
func (p *Proc) Test(r *Request) bool {
	t0 := p.clock.Now()
	p.flushDeferred()
	p.progressNonblocking()
	p.stats.Add("MPI_Test", p.clock.Now()-t0)
	return r.done
}

// Send is the blocking send.
func (p *Proc) Send(to, tag int, data []byte) {
	t0 := p.clock.Now()
	r := &Request{isSend: true, to: to, stag: tag, payload: data}
	if to == p.rank {
		p.deliverLocal(inMsg{from: p.rank, tag: tag, data: data})
		r.done = true
	} else {
		p.flushDeferred()
		p.pushSend(r)
	}
	for !r.done {
		p.progressBlocking()
	}
	p.stats.Add("MPI_Send", p.clock.Now()-t0)
}

// Recv is the blocking receive; it returns the payload and status.
func (p *Proc) Recv(src, tag int) ([]byte, Status) {
	t0 := p.clock.Now()
	p.flushDeferred()
	r := &Request{srcSel: src, tagSel: tag}
	if !p.matchUnexpected(r) {
		p.posted = append(p.posted, r)
	}
	for !r.done {
		p.progressBlocking()
	}
	p.stats.Add("MPI_Recv", p.clock.Now()-t0)
	return r.data, r.Status()
}

// Sendrecv exchanges messages without deadlock.
func (p *Proc) Sendrecv(to, stag int, data []byte, from, rtag int) ([]byte, Status) {
	rr := p.Irecv(from, rtag)
	sr := p.Isend(to, stag, data)
	p.Waitall([]*Request{sr, rr})
	return rr.data, rr.Status()
}

// Probe blocks until a message matching (src, tag) is available and
// returns its envelope without consuming it.
func (p *Proc) Probe(src, tag int) Status {
	t0 := p.clock.Now()
	p.flushDeferred()
	for {
		if st, ok := p.findUnexpected(src, tag); ok {
			p.stats.Add("MPI_Probe", p.clock.Now()-t0)
			return st
		}
		p.progressBlocking()
	}
}

// Iprobe reports whether a message matching (src, tag) is available,
// without consuming it.
func (p *Proc) Iprobe(src, tag int) (Status, bool) {
	t0 := p.clock.Now()
	p.flushDeferred()
	p.progressNonblocking()
	st, ok := p.findUnexpected(src, tag)
	p.stats.Add("MPI_Iprobe", p.clock.Now()-t0)
	return st, ok
}

func (p *Proc) findUnexpected(src, tag int) (Status, bool) {
	for _, m := range p.unexpected {
		if match(src, tag, m.from, m.tag) {
			sz := len(m.data)
			if m.rts {
				sz = m.size
			}
			return Status{Source: m.from, Tag: m.tag, Size: sz}, true
		}
	}
	return Status{}, false
}

// pushSend initiates transmission of a send request.
func (p *Proc) pushSend(r *Request) {
	if r.pushed {
		return
	}
	r.pushed = true
	if len(r.payload) <= p.opt.EagerLimit {
		p.dev.BSend(r.to, encodeMsg(mEager, r.stag, 0, r.payload))
		r.done = true
		return
	}
	p.nextSendID++
	r.id = p.nextSendID
	p.sendsByID[r.id] = r
	var sz [8]byte
	binary.BigEndian.PutUint64(sz[:], uint64(len(r.payload)))
	p.dev.BSend(r.to, encodeMsg(mRTS, r.stag, r.id, sz[:]))
}

// flushDeferred pushes V2-style posted sends; every blocking MPI call
// does this first so deferred transmissions cannot starve.
func (p *Proc) flushDeferred() {
	if len(p.deferred) == 0 {
		return
	}
	ds := p.deferred
	p.deferred = p.deferred[:0]
	for _, r := range ds {
		p.pushSend(r)
	}
}

// matchUnexpected tries to satisfy a new receive from the unexpected
// queue. For a rendezvous envelope it sends the CTS and registers the
// inflight transfer; the request completes when the data block arrives.
func (p *Proc) matchUnexpected(r *Request) bool {
	for i, m := range p.unexpected {
		if !match(r.srcSel, r.tagSel, m.from, m.tag) {
			continue
		}
		p.unexpected = append(p.unexpected[:i], p.unexpected[i+1:]...)
		if m.rts {
			p.rvInflight[rvKey(m.from, m.id)] = r
			r.from, r.rtag = m.from, m.tag
			p.dev.BSend(m.from, encodeMsg(mCTS, m.tag, m.id, nil))
			// Not done yet: the payload follows as mData.
			return true
		}
		r.from, r.rtag, r.data = m.from, m.tag, m.data
		r.done = true
		return true
	}
	return false
}

func rvKey(from int, id uint32) uint64 { return uint64(uint32(from))<<32 | uint64(id) }

// deliverLocal routes a self-message (never crossing the device).
func (p *Proc) deliverLocal(m inMsg) {
	p.dispatchEager(m)
}
