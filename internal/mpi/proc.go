// Package mpi implements the MPI point-to-point and collective API on
// top of the MPICH channel interface (daemon.Device), mirroring the
// MPICH 1.2.5 layering the paper builds on (§4.4): the API sits on a
// protocol layer implementing the eager and rendezvous protocols, which
// in turn drives the six channel primitives.
//
// The same protocol layer runs over all three daemons (V2, P4, V1); the
// only per-implementation knob is Options.EagerInIsend, which reproduces
// the behavioural difference the paper measures in Table 1: "MPICH-P4
// sends the message payload during the execution of the ISend function,
// while MPICH-V2 only posts a message notification" (transmission
// happens in Wait).
package mpi

import (
	"fmt"
	"time"

	"mpichv/internal/daemon"
	"mpichv/internal/trace"
	"mpichv/internal/vtime"
)

// AnySource and AnyTag are the wildcard matching values.
const (
	AnySource = -1
	AnyTag    = -1
)

// Options configures the protocol layer.
type Options struct {
	// EagerLimit is the largest payload sent eagerly; larger messages
	// use the rendezvous protocol. Zero means 64 KiB.
	EagerLimit int
	// EagerInIsend pushes eager payloads during Isend (P4 semantics).
	// When false, transmission is deferred to the completing call (V2
	// and V1 semantics).
	EagerInIsend bool
	// FlopRate converts Compute(flops) into time. Zero disables flop
	// charging (Compute becomes a no-op).
	FlopRate float64
}

// Status describes a received or probed message.
type Status struct {
	Source int
	Tag    int
	Size   int
}

// Proc is one MPI process.
type Proc struct {
	dev   daemon.Device
	clock vtime.Clock
	opt   Options
	rank  int
	size  int

	restoredState []byte
	restarted     bool
	stateProvider func() []byte

	posted     []*Request
	unexpected []inMsg
	deferred   []*Request
	sendsByID  map[uint32]*Request
	rvInflight map[uint64]*Request
	nextSendID uint32
	collSeq    uint32

	stats *trace.Stats
}

// inMsg is an arrived-but-unmatched message: either a complete eager
// payload or a rendezvous RTS envelope.
type inMsg struct {
	from int
	tag  int
	rts  bool
	id   uint32 // sender request id (rendezvous)
	data []byte // eager payload (nil for RTS)
	size int    // payload size announced by an RTS
}

// Start initializes an MPI process over the given device. It blocks
// until the daemon is ready (including crash recovery) and returns the
// process handle.
func Start(dev daemon.Device, clock vtime.Clock, opt Options) *Proc {
	if opt.EagerLimit <= 0 {
		opt.EagerLimit = 64 << 10
	}
	rank, size, appState, restarted := dev.Init()
	p := &Proc{
		dev:        dev,
		clock:      clock,
		opt:        opt,
		rank:       rank,
		size:       size,
		restarted:  restarted,
		sendsByID:  make(map[uint32]*Request),
		rvInflight: make(map[uint64]*Request),
		stats:      trace.New(),
	}
	if len(appState) > 0 {
		p.restoredState = p.restoreState(appState)
	}
	return p
}

// Rank returns the process rank.
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of processes.
func (p *Proc) Size() int { return p.size }

// Clock returns the process time source.
func (p *Proc) Clock() vtime.Clock { return p.clock }

// Stats returns the per-call time decomposition of this process.
func (p *Proc) Stats() *trace.Stats { return p.stats }

// Restarted reports whether this process is a re-execution after a
// crash, and returns the restored application snapshot if a checkpoint
// existed (nil when re-executing from the beginning).
func (p *Proc) Restarted() ([]byte, bool) { return p.restoredState, p.restarted }

// SetStateProvider registers the function producing the application
// snapshot for checkpoints. Programs without a provider are restarted
// from the beginning after a crash.
func (p *Proc) SetStateProvider(f func() []byte) { p.stateProvider = f }

// CheckpointPoint marks an application safe point: if the checkpoint
// scheduler has ordered a checkpoint and a state provider is registered,
// the snapshot is taken here. The application must call it where its
// provider output is consistent (typically once per outer iteration).
func (p *Proc) CheckpointPoint() {
	if p.stateProvider == nil || !p.dev.CkptRequested() {
		return
	}
	if !p.quiescent() {
		// Outstanding requests cannot be serialized consistently;
		// the order stays pending and the next safe point retries.
		return
	}
	p.dev.Checkpoint(p.encodeState(p.stateProvider()))
}

// Compute charges the given number of floating point operations as
// virtual compute time (Options.FlopRate).
func (p *Proc) Compute(flops float64) {
	if p.opt.FlopRate <= 0 || flops <= 0 {
		return
	}
	p.ComputeTime(time.Duration(flops / p.opt.FlopRate * float64(time.Second)))
}

// ComputeTime charges d as application compute time.
func (p *Proc) ComputeTime(d time.Duration) {
	p.clock.Sleep(d)
	p.stats.Add(trace.Compute, d)
}

// Finalize completes the MPI execution.
func (p *Proc) Finalize() {
	t0 := p.clock.Now()
	p.flushDeferred()
	p.dev.Finish()
	p.stats.Add("MPI_Finalize", p.clock.Now()-t0)
}

// Abortf panics with a formatted message, crashing the process.
func (p *Proc) Abortf(format string, args ...any) {
	panic(fmt.Sprintf("rank %d: %s", p.rank, fmt.Sprintf(format, args...)))
}
