package mpi

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"mpichv/internal/vtime"
)

// hubDev is a minimal in-memory Device connecting n MPI processes
// directly — the unit-test double for the daemon stack.
type hubDev struct {
	rank int
	hub  *hub
	mu   sync.Mutex
	cond *sync.Cond
	q    []hubMsg
}

type hubMsg struct {
	from int
	data []byte
}

type hub struct {
	devs []*hubDev
}

func newHub(n int) []*hubDev {
	h := &hub{}
	for r := 0; r < n; r++ {
		d := &hubDev{rank: r, hub: h}
		d.cond = sync.NewCond(&d.mu)
		h.devs = append(h.devs, d)
	}
	return h.devs
}

func (d *hubDev) Init() (int, int, []byte, bool) { return d.rank, len(d.hub.devs), nil, false }

func (d *hubDev) BSend(to int, data []byte) {
	peer := d.hub.devs[to]
	peer.mu.Lock()
	peer.q = append(peer.q, hubMsg{from: d.rank, data: append([]byte(nil), data...)})
	peer.cond.Broadcast()
	peer.mu.Unlock()
}

func (d *hubDev) BRecv() (int, []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.q) == 0 {
		d.cond.Wait()
	}
	m := d.q[0]
	d.q = d.q[1:]
	return m.from, m.data
}

func (d *hubDev) NProbe() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.q) > 0
}

func (d *hubDev) CkptRequested() bool { return false }
func (d *hubDev) Checkpoint(_ []byte) {}
func (d *hubDev) Finish()             {}

// runProcs executes fn on n connected processes and waits.
func runProcs(t *testing.T, n int, opt Options, fn func(p *Proc)) {
	t.Helper()
	devs := newHub(n)
	rt := vtime.NewReal()
	var wg sync.WaitGroup
	errs := make(chan any, n)
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs <- rec
				}
			}()
			fn(Start(devs[r], rt, opt))
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("process panicked: %v", e)
	}
}

func TestSendRecvTagged(t *testing.T) {
	runProcs(t, 2, Options{}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 5, []byte("five"))
			p.Send(1, 6, []byte("six"))
		} else {
			// Receive in reverse tag order: tag matching, not FIFO.
			b6, st6 := p.Recv(0, 6)
			b5, st5 := p.Recv(0, 5)
			if string(b6) != "six" || st6.Tag != 6 || st6.Source != 0 {
				p.Abortf("tag 6 got %q %+v", b6, st6)
			}
			if string(b5) != "five" || st5.Size != 4 {
				p.Abortf("tag 5 got %q %+v", b5, st5)
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	runProcs(t, 3, Options{}, func(p *Proc) {
		if p.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				b, st := p.Recv(AnySource, AnyTag)
				if int(b[0]) != st.Source || st.Tag != 40+st.Source {
					p.Abortf("mismatched envelope %q %+v", b, st)
				}
				seen[st.Source] = true
			}
			if !seen[1] || !seen[2] {
				p.Abortf("sources seen: %v", seen)
			}
		} else {
			p.Send(0, 40+p.Rank(), []byte{byte(p.Rank())})
		}
	})
}

func TestIsendIrecvWaitall(t *testing.T) {
	for _, eagerInIsend := range []bool{false, true} {
		opt := Options{EagerInIsend: eagerInIsend}
		runProcs(t, 2, opt, func(p *Proc) {
			peer := 1 - p.Rank()
			var reqs []*Request
			for i := 0; i < 10; i++ {
				reqs = append(reqs, p.Irecv(peer, 100+i))
			}
			for i := 0; i < 10; i++ {
				reqs = append(reqs, p.Isend(peer, 100+i, []byte{byte(i)}))
			}
			p.Waitall(reqs)
			for i := 0; i < 10; i++ {
				if got := reqs[i].Data(); len(got) != 1 || got[0] != byte(i) {
					p.Abortf("eagerInIsend=%v req %d got %v", eagerInIsend, i, got)
				}
			}
		})
	}
}

func TestRendezvousBothDirections(t *testing.T) {
	const size = 200 << 10 // over the default 64 KiB eager limit
	runProcs(t, 2, Options{}, func(p *Proc) {
		peer := 1 - p.Rank()
		data := bytes.Repeat([]byte{byte(p.Rank() + 1)}, size)
		rr := p.Irecv(peer, 9)
		sr := p.Isend(peer, 9, data)
		p.Waitall([]*Request{sr, rr})
		got := rr.Data()
		if len(got) != size || got[0] != byte(peer+1) || got[size-1] != byte(peer+1) {
			p.Abortf("rendezvous got %d bytes first=%d", len(got), got[0])
		}
	})
}

func TestRendezvousUnexpected(t *testing.T) {
	// RTS arrives before the receive is posted.
	runProcs(t, 2, Options{}, func(p *Proc) {
		const size = 100 << 10
		if p.Rank() == 0 {
			p.Send(1, 3, make([]byte, size))
		} else {
			// Give the RTS time to land in the unexpected queue.
			st := p.Probe(0, 3)
			if st.Size != size {
				p.Abortf("probed size %d", st.Size)
			}
			b, _ := p.Recv(0, 3)
			if len(b) != size {
				p.Abortf("got %d bytes", len(b))
			}
		}
	})
}

func TestSelfSend(t *testing.T) {
	runProcs(t, 1, Options{}, func(p *Proc) {
		p.Isend(0, 7, []byte("me"))
		b, st := p.Recv(0, 7)
		if string(b) != "me" || st.Source != 0 {
			p.Abortf("self message %q %+v", b, st)
		}
	})
}

func TestIprobe(t *testing.T) {
	runProcs(t, 2, Options{}, func(p *Proc) {
		if p.Rank() == 0 {
			if _, ok := p.Iprobe(1, AnyTag); ok {
				p.Abortf("iprobe true before any send")
			}
			p.Send(1, 1, nil) // release peer
			st := p.Probe(1, 2)
			if st.Tag != 2 || st.Source != 1 {
				p.Abortf("probe %+v", st)
			}
			// Probe must not consume.
			if _, ok := p.Iprobe(1, 2); !ok {
				p.Abortf("iprobe false after probe")
			}
			p.Recv(1, 2)
			if _, ok := p.Iprobe(1, 2); ok {
				p.Abortf("iprobe true after recv")
			}
		} else {
			p.Recv(0, 1)
			p.Send(0, 2, []byte("x"))
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	runProcs(t, 4, Options{}, func(p *Proc) {
		right := (p.Rank() + 1) % p.Size()
		left := (p.Rank() - 1 + p.Size()) % p.Size()
		got, st := p.Sendrecv(right, 8, []byte{byte(p.Rank())}, left, 8)
		if st.Source != left || int(got[0]) != left {
			p.Abortf("sendrecv got %v from %d", got, st.Source)
		}
	})
}

func TestTestNonblocking(t *testing.T) {
	runProcs(t, 2, Options{}, func(p *Proc) {
		if p.Rank() == 0 {
			r := p.Irecv(1, 4)
			for !p.Test(r) {
			}
			if string(r.Data()) != "done" {
				p.Abortf("test-completed data %q", r.Data())
			}
		} else {
			p.Send(0, 4, []byte("done"))
		}
	})
}

func collectiveSizes() []int { return []int{1, 2, 3, 4, 5, 8} }

func TestBarrierAllSizes(t *testing.T) {
	for _, n := range collectiveSizes() {
		runProcs(t, n, Options{}, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Barrier()
			}
		})
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, n := range collectiveSizes() {
		for root := 0; root < n; root++ {
			n, root := n, root
			runProcs(t, n, Options{}, func(p *Proc) {
				var data []byte
				if p.Rank() == root {
					data = []byte(fmt.Sprintf("payload-from-%d", root))
				}
				got := p.Bcast(root, data)
				want := fmt.Sprintf("payload-from-%d", root)
				if string(got) != want {
					p.Abortf("bcast(root=%d) got %q", root, got)
				}
			})
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, n := range collectiveSizes() {
		runProcs(t, n, Options{}, func(p *Proc) {
			me := []float64{float64(p.Rank() + 1), -float64(p.Rank())}
			sum := p.Reduce(0, me, OpSum)
			wantA := float64(p.Size()*(p.Size()+1)) / 2
			if p.Rank() == 0 {
				if sum[0] != wantA {
					p.Abortf("reduce sum = %v", sum)
				}
			} else if sum != nil {
				p.Abortf("non-root got reduce result")
			}
			all := p.Allreduce(me, OpSum)
			if all[0] != wantA {
				p.Abortf("allreduce = %v", all)
			}
			mx := p.AllreduceScalar(float64(p.Rank()), OpMax)
			if mx != float64(p.Size()-1) {
				p.Abortf("max = %v", mx)
			}
			mn := p.AllreduceScalar(float64(p.Rank()), OpMin)
			if mn != 0 {
				p.Abortf("min = %v", mn)
			}
		})
	}
}

func TestGatherScatterAllgatherAlltoall(t *testing.T) {
	for _, n := range collectiveSizes() {
		runProcs(t, n, Options{}, func(p *Proc) {
			// Gather on root 0.
			blocks := p.Gather(0, []byte{byte(p.Rank() * 2)})
			if p.Rank() == 0 {
				for r, b := range blocks {
					if len(b) != 1 || int(b[0]) != r*2 {
						p.Abortf("gather block %d = %v", r, b)
					}
				}
			}
			// Scatter from the last rank.
			root := p.Size() - 1
			var outs [][]byte
			if p.Rank() == root {
				for r := 0; r < p.Size(); r++ {
					outs = append(outs, []byte{byte(r + 10)})
				}
			}
			mine := p.Scatter(root, outs)
			if len(mine) != 1 || int(mine[0]) != p.Rank()+10 {
				p.Abortf("scatter got %v", mine)
			}
			// Allgather.
			ag := p.Allgather([]byte{byte(p.Rank() + 1)})
			for r, b := range ag {
				if len(b) != 1 || int(b[0]) != r+1 {
					p.Abortf("allgather block %d = %v", r, b)
				}
			}
			// Alltoall.
			outs = nil
			for r := 0; r < p.Size(); r++ {
				outs = append(outs, []byte{byte(p.Rank()), byte(r)})
			}
			in := p.Alltoall(outs)
			for r, b := range in {
				if int(b[0]) != r || int(b[1]) != p.Rank() {
					p.Abortf("alltoall from %d = %v", r, b)
				}
			}
		})
	}
}

func TestFloat64Codec(t *testing.T) {
	f := func(v []float64) bool {
		got := BytesToFloat64s(Float64sToBytes(v))
		if len(v) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(v, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64Codec(t *testing.T) {
	f := func(v []int64) bool {
		got := BytesToInt64s(Int64sToBytes(v))
		if len(v) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(v, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProcStateRoundTrip(t *testing.T) {
	devs := newHub(1)
	rt := vtime.NewReal()
	p := Start(devs[0], rt, Options{})
	p.collSeq = 42
	p.nextSendID = 7
	p.unexpected = []inMsg{
		{from: 2, tag: 3, data: []byte("pending")},
		{from: 1, tag: 9, rts: true, id: 5, size: 1 << 20},
	}
	blob := p.encodeState([]byte("user"))

	q := Start(newHub(1)[0], rt, Options{})
	user := q.restoreState(blob)
	if string(user) != "user" || q.collSeq != 42 || q.nextSendID != 7 {
		t.Errorf("restored: user=%q collSeq=%d sendID=%d", user, q.collSeq, q.nextSendID)
	}
	if len(q.unexpected) != 2 || string(q.unexpected[0].data) != "pending" ||
		!q.unexpected[1].rts || q.unexpected[1].size != 1<<20 {
		t.Errorf("restored unexpected queue: %+v", q.unexpected)
	}
}

func TestQuiescentGuard(t *testing.T) {
	devs := newHub(2)
	rt := vtime.NewReal()
	p := Start(devs[0], rt, Options{})
	if !p.quiescent() {
		t.Error("fresh proc not quiescent")
	}
	p.Irecv(1, 1)
	if p.quiescent() {
		t.Error("quiescent with a posted receive")
	}
}

func TestStatsRecorded(t *testing.T) {
	runProcs(t, 2, Options{}, func(p *Proc) {
		peer := 1 - p.Rank()
		r := p.Irecv(peer, 1)
		p.Isend(peer, 1, []byte("x"))
		p.Wait(r)
		p.Compute(1e6)
		st := p.Stats()
		if st.Get("MPI_Isend").Calls != 1 || st.Get("MPI_Irecv").Calls != 1 || st.Get("MPI_Wait").Calls != 1 {
			p.Abortf("stats: %+v", st.Names())
		}
	})
}

func TestComputeChargesTime(t *testing.T) {
	sim := vtime.NewSim()
	sim.Run(func() {
		devs := newHub(1)
		p := Start(devs[0], sim, Options{FlopRate: 1e6})
		p.Compute(2e6) // 2 virtual seconds
		if got := sim.Now().Seconds(); got < 1.99 || got > 2.01 {
			panic(fmt.Sprintf("Compute advanced %v", sim.Now()))
		}
		if p.Stats().ComputeTime().Seconds() < 1.99 {
			panic("compute bucket not charged")
		}
	})
}
