package mpi

// progressBlocking receives one protocol block from the device and
// dispatches it.
func (p *Proc) progressBlocking() {
	from, raw := p.dev.BRecv()
	p.dispatch(from, raw)
}

// progressNonblocking drains whatever the device has pending.
func (p *Proc) progressNonblocking() {
	for p.dev.NProbe() {
		from, raw := p.dev.BRecv()
		p.dispatch(from, raw)
	}
}

// dispatch routes one protocol block.
func (p *Proc) dispatch(from int, raw []byte) {
	mtype, tag, id, payload := decodeMsg(raw)
	switch mtype {
	case mEager:
		p.dispatchEager(inMsg{from: from, tag: tag, data: payload})

	case mRTS:
		size := 0
		if len(payload) == 8 {
			size = int(uint64FromBytes(payload))
		}
		m := inMsg{from: from, tag: tag, rts: true, id: id, size: size}
		if r := p.takePosted(from, tag); r != nil {
			p.rvInflight[rvKey(from, id)] = r
			r.from, r.rtag = from, tag
			p.dev.BSend(from, encodeMsg(mCTS, tag, id, nil))
		} else {
			p.unexpected = append(p.unexpected, m)
		}

	case mCTS:
		r := p.sendsByID[id]
		if r == nil {
			p.Abortf("CTS for unknown send id %d from %d", id, from)
		}
		delete(p.sendsByID, id)
		p.dev.BSend(r.to, encodeMsg(mData, r.stag, id, r.payload))
		r.done = true

	case mData:
		key := rvKey(from, id)
		r := p.rvInflight[key]
		if r == nil {
			p.Abortf("rendezvous data for unknown transfer id %d from %d", id, from)
		}
		delete(p.rvInflight, key)
		r.data = payload
		r.done = true

	default:
		p.Abortf("unknown protocol block type %d from %d", mtype, from)
	}
}

// dispatchEager matches an eager payload against posted receives.
func (p *Proc) dispatchEager(m inMsg) {
	if r := p.takePosted(m.from, m.tag); r != nil {
		r.from, r.rtag, r.data = m.from, m.tag, m.data
		r.done = true
		return
	}
	p.unexpected = append(p.unexpected, m)
}

// takePosted pops the first posted receive matching the envelope.
func (p *Proc) takePosted(from, tag int) *Request {
	for i, r := range p.posted {
		if match(r.srcSel, r.tagSel, from, tag) {
			p.posted = append(p.posted[:i], p.posted[i+1:]...)
			return r
		}
	}
	return nil
}

func uint64FromBytes(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}
