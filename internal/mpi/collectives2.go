package mpi

// Additional collective operations, beyond the set the NAS kernels use:
// inclusive scan, reduce-scatter, variable-size gather and all-to-all.
// All follow the same discipline as collectives.go — deterministic
// communication patterns so crash replay reproduces them exactly.

// Scan computes the inclusive prefix reduction: rank r receives the
// combination of the vectors of ranks 0..r (linear pipeline).
func (p *Proc) Scan(data []float64, op ReduceOp) []float64 {
	tag := p.collTag()
	acc := append([]float64(nil), data...)
	if p.rank > 0 {
		prev, _ := p.Recv(p.rank-1, tag)
		prefix := BytesToFloat64s(prev)
		op(prefix, acc)
		acc = prefix
	}
	if p.rank < p.size-1 {
		p.Send(p.rank+1, tag, Float64sToBytes(acc))
	}
	return acc
}

// ScanScalar is Scan over a single value.
func (p *Proc) ScanScalar(v float64, op ReduceOp) float64 {
	return p.Scan([]float64{v}, op)[0]
}

// ReduceScatter combines every process's vector element-wise and
// scatters the result: rank r receives the block of indices
// [offsets[r], offsets[r+1]) where blocks are split as evenly as
// possible. Implemented as a reduce to rank 0 plus a scatter, like the
// Allreduce of collectives.go.
func (p *Proc) ReduceScatter(data []float64, op ReduceOp) []float64 {
	total := p.Reduce(0, data, op)
	var blocks [][]byte
	if p.rank == 0 {
		blocks = make([][]byte, p.size)
		n := len(data)
		for r := 0; r < p.size; r++ {
			lo, hi := blockSplit(n, p.size, r)
			blocks[r] = Float64sToBytes(total[lo:hi])
		}
	}
	return BytesToFloat64s(p.Scatter(0, blocks))
}

func blockSplit(n, size, rank int) (lo, hi int) {
	base, rem := n/size, n%size
	lo = rank*base + min(rank, rem)
	hi = lo + base
	if rank < rem {
		hi++
	}
	return lo, hi
}

// Gatherv collects variable-size blocks on root, in rank order (nil on
// non-roots).
func (p *Proc) Gatherv(root int, data []byte) [][]byte {
	// Gather already supports variable sizes: blocks travel whole.
	return p.Gather(root, data)
}

// Alltoallv exchanges variable-size blocks: blocks[r] goes to rank r,
// and the result holds what every rank sent to this one.
func (p *Proc) Alltoallv(blocks [][]byte) [][]byte {
	// Alltoall already supports variable sizes.
	return p.Alltoall(blocks)
}

// BcastFloat64s broadcasts a float64 vector from root.
func (p *Proc) BcastFloat64s(root int, v []float64) []float64 {
	var b []byte
	if p.rank == root {
		b = Float64sToBytes(v)
	}
	return BytesToFloat64s(p.Bcast(root, b))
}
