package nas

import (
	"math"
	"math/cmplx"

	"mpichv/internal/mpi"
)

// FT: 3D FFT time evolution. The spectrum of a random field is evolved
// by exponential factors and inverse-transformed every iteration; each
// 3D (inverse) FFT needs one global transpose, an all-to-all of large
// blocks — the bandwidth-bound pattern on which V2 matches P4 in the
// paper (figure 7: "FT uses an All-to-All communication pattern
// involving many large messages").
//
// Reduced grid: 32³ complex points, slab-decomposed along z before the
// transpose and along x after it. The process count must divide the
// edge (the paper's sweep uses powers of two).

const (
	ftN     = 32
	ftAlpha = 1e-6
)

// FT returns the FT benchmark (class A; the paper could not run class B
// either — its message log exceeds the 2 GB per-node capacity).
func FT(class string) Benchmark {
	full := 256.0 * 256.0 * 128.0
	b := Benchmark{
		Name: "FT", Class: "A",
		Iters: 6, FullIters: 6,
		FullFlops: 7.16e9,
		MsgScale:  full / float64(ftN*ftN*ftN),
		Run:       runFT,
	}
	return b
}

type ftComm interface {
	alltoall(blocks [][]complex128) [][]complex128
	sum(v complex128) complex128
	charge()
}

type ftParallel struct {
	p *mpi.Proc
	b Benchmark
}

func (c *ftParallel) alltoall(blocks [][]complex128) [][]complex128 {
	raw := make([][]byte, len(blocks))
	for i, blk := range blocks {
		raw[i] = complexToBytes(blk)
	}
	got := c.p.Alltoall(raw)
	out := make([][]complex128, len(got))
	for i, b := range got {
		out[i] = bytesToComplex(b)
	}
	return out
}

func (c *ftParallel) sum(v complex128) complex128 {
	r := c.p.Allreduce([]float64{real(v), imag(v)}, mpi.OpSum)
	return complex(r[0], r[1])
}

func (c *ftParallel) charge() { chargePerIter(c.p, c.b) }

type ftSerial struct{}

func (ftSerial) alltoall(blocks [][]complex128) [][]complex128 { return blocks }
func (ftSerial) sum(v complex128) complex128                   { return v }
func (ftSerial) charge()                                       {}

func complexToBytes(v []complex128) []byte {
	f := make([]float64, 2*len(v))
	for i, c := range v {
		f[2*i], f[2*i+1] = real(c), imag(c)
	}
	return mpi.Float64sToBytes(f)
}

func bytesToComplex(b []byte) []complex128 {
	f := mpi.BytesToFloat64s(b)
	v := make([]complex128, len(f)/2)
	for i := range v {
		v[i] = complex(f[2*i], f[2*i+1])
	}
	return v
}

// fft performs an in-place radix-2 FFT of a power-of-two-length line;
// inverse when inv is true (unnormalized — callers divide).
func fft(a []complex128, inv bool) {
	n := len(a)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if inv {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u, v := a[i+j], a[i+j+length/2]*w
				a[i+j], a[i+j+length/2] = u+v, u-v
				w *= wl
			}
		}
	}
}

// ftState is the distributed field: z-slab layout u[zl][y][x] and
// x-slab layout v[xl][y][z].
type ftState struct {
	n        int
	size     int
	rank     int
	lz, lx   int
	spectrum []complex128 // x-slab layout, frozen after the initial FFT
}

// fft2DLocal transforms each local z-plane in x then y.
func fft2DLocal(u []complex128, n, lz int, inv bool) {
	line := make([]complex128, n)
	for zl := 0; zl < lz; zl++ {
		plane := u[zl*n*n : (zl+1)*n*n]
		for y := 0; y < n; y++ {
			fft(plane[y*n:(y+1)*n], inv)
		}
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				line[y] = plane[y*n+x]
			}
			fft(line, inv)
			for y := 0; y < n; y++ {
				plane[y*n+x] = line[y]
			}
		}
	}
}

// transposeZX moves from z-slabs to x-slabs via all-to-all.
func transposeZX(c ftComm, u []complex128, n, size int) []complex128 {
	lz, lx := n/size, n/size
	blocks := make([][]complex128, size)
	for r := 0; r < size; r++ {
		blk := make([]complex128, lx*n*lz)
		for xl := 0; xl < lx; xl++ {
			for y := 0; y < n; y++ {
				for zl := 0; zl < lz; zl++ {
					blk[(xl*n+y)*lz+zl] = u[(zl*n+y)*n+r*lx+xl]
				}
			}
		}
		blocks[r] = blk
	}
	got := c.alltoall(blocks)
	v := make([]complex128, lx*n*n)
	for s := 0; s < size; s++ {
		blk := got[s]
		for xl := 0; xl < lx; xl++ {
			for y := 0; y < n; y++ {
				copy(v[(xl*n+y)*n+s*lz:(xl*n+y)*n+s*lz+lz], blk[(xl*n+y)*lz:(xl*n+y)*lz+lz])
			}
		}
	}
	return v
}

// transposeXZ is the inverse redistribution.
func transposeXZ(c ftComm, v []complex128, n, size int) []complex128 {
	lz, lx := n/size, n/size
	blocks := make([][]complex128, size)
	for r := 0; r < size; r++ {
		blk := make([]complex128, lx*n*lz)
		for xl := 0; xl < lx; xl++ {
			for y := 0; y < n; y++ {
				copy(blk[(xl*n+y)*lz:(xl*n+y)*lz+lz], v[(xl*n+y)*n+r*lz:(xl*n+y)*n+r*lz+lz])
			}
		}
		blocks[r] = blk
	}
	got := c.alltoall(blocks)
	u := make([]complex128, lz*n*n)
	for s := 0; s < size; s++ {
		blk := got[s]
		for xl := 0; xl < lx; xl++ {
			for y := 0; y < n; y++ {
				for zl := 0; zl < lz; zl++ {
					u[(zl*n+y)*n+s*lx+xl] = blk[(xl*n+y)*lz+zl]
				}
			}
		}
	}
	return u
}

// fftZLines transforms the z-lines of the x-slab layout.
func fftZLines(v []complex128, n, lx int, inv bool) {
	for xl := 0; xl < lx; xl++ {
		for y := 0; y < n; y++ {
			fft(v[(xl*n+y)*n:(xl*n+y)*n+n], inv)
		}
	}
}

func ftFold(i, n int) float64 {
	if i >= n/2 {
		i -= n
	}
	return float64(i)
}

func ftDriver(c ftComm, rank, size, iters int) float64 {
	n := ftN
	lz := n / size
	lx := n / size

	// Deterministic pseudo-random initial field, seeded per global
	// plane so every decomposition builds the same field.
	u := make([]complex128, lz*n*n)
	for zl := 0; zl < lz; zl++ {
		rng := newLCG(uint64(1000 + rank*lz + zl))
		plane := u[zl*n*n : (zl+1)*n*n]
		for i := range plane {
			plane[i] = complex(rng.float()-0.5, rng.float()-0.5)
		}
	}

	// Forward 3D FFT once.
	fft2DLocal(u, n, lz, false)
	spec := transposeZX(c, u, n, size)
	fftZLines(spec, n, lx, false)

	norm := 1.0 / float64(n*n*n)
	var check float64
	w := make([]complex128, len(spec))
	for it := 1; it <= iters; it++ {
		c.charge()
		// Evolve the spectrum.
		t := float64(it)
		for xl := 0; xl < lx; xl++ {
			kx := ftFold(rank*lx+xl, n)
			for y := 0; y < n; y++ {
				ky := ftFold(y, n)
				for z := 0; z < n; z++ {
					kz := ftFold(z, n)
					k2 := kx*kx + ky*ky + kz*kz
					w[(xl*n+y)*n+z] = spec[(xl*n+y)*n+z] * complex(math.Exp(-4*math.Pi*math.Pi*ftAlpha*t*k2), 0)
				}
			}
		}
		// Inverse 3D FFT (one all-to-all).
		wv := append([]complex128(nil), w...)
		fftZLines(wv, n, lx, true)
		ut := transposeXZ(c, wv, n, size)
		fft2DLocal(ut, n, lz, true)

		// NPB-style checksum over 1024 strided points.
		var local complex128
		for j := 1; j <= 1024; j++ {
			x := j % n
			y := (3 * j) % n
			z := (5 * j) % n
			if z >= rank*lz && z < (rank+1)*lz {
				local += ut[((z-rank*lz)*n+y)*n+x] * complex(norm, 0)
			}
		}
		s := c.sum(local)
		check += cmplx.Abs(s)
	}
	return check
}

func runFT(p *mpi.Proc, b Benchmark) Result {
	if ftN%p.Size() != 0 {
		p.Abortf("FT requires a process count dividing %d", ftN)
	}
	v := ftDriver(&ftParallel{p: p, b: b}, p.Rank(), p.Size(), b.Iters)
	ref := refValue(refKey("ft", b.Iters), func() float64 { return ftSerialValue(b.Iters) })
	return Result{Value: v, Verified: close(v, ref), Iters: b.Iters}
}

// ftSerialValue runs the same computation on one process.
func ftSerialValue(iters int) float64 {
	return ftDriver(ftSerial{}, 0, 1, iters)
}
