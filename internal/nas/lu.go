package nas

import (
	"math"

	"mpichv/internal/mpi"
)

// LU: SSOR-style iterations with pipelined wavefront sweeps, following
// the dependency structure of NPB LU: each iteration computes a
// residual from the old field (one halo exchange per direction), then a
// lower-triangular solve sweeping ascending (k, j, i) — every z-level
// needs the west and north block edges before computing and feeds east
// and south — and an upper-triangular solve sweeping descending. That
// is 2·nz tiny messages per process per iteration plus four halo faces:
// the enormous small-message count that, combined with sender-based
// payload logging, drives MPICH-V2's log beyond memory in the paper
// ("the poor performance of LU is explained by the use of the disk
// storage").
//
// Cross-block dependencies are transmitted exactly, so the parallel
// wavefront computes the same values as the serial sweep.

const (
	luNX = 32 // reduced horizontal grid (full class A: 64, B: 102)
	luNY = 32
)

// LU returns the LU benchmark for a class.
func LU(class string) Benchmark {
	b := Benchmark{Name: "LU", Class: class, Run: runLU}
	switch class {
	case "B":
		b.Iters, b.FullIters = 8, 250
		b.FullFlops = 319.6e9
		b.MsgScale = (102.0 / luNX) * 5 // full edge length × 5 flow variables
		b.nz = 102
	default:
		b.Class = "A"
		b.Iters, b.FullIters = 10, 250
		b.FullFlops = 64.6e9
		b.MsgScale = (64.0 / luNX) * 5
		b.nz = 64
	}
	return b
}

// procGrid factors size into the most square q×r grid.
func procGrid(size int) (q, r int) {
	q = int(math.Sqrt(float64(size)))
	for size%q != 0 {
		q--
	}
	return q, size / q
}

type luBlock struct {
	nz, nyl, nxl int
	x0, y0       int
	u, f         []float64 // [nz][nyl][nxl]
}

func (l *luBlock) idx(k, j, i int) int { return (k*l.nyl+j)*l.nxl + i }

func luInit(nz, size, rank int) *luBlock {
	q, r := procGrid(size)
	pi, pj := rank%q, rank/q
	xlo, xhi := blockRange(luNX, q, pi)
	ylo, yhi := blockRange(luNY, r, pj)
	b := &luBlock{nz: nz, nyl: yhi - ylo, nxl: xhi - xlo, x0: xlo, y0: ylo}
	b.u = make([]float64, nz*b.nyl*b.nxl)
	b.f = make([]float64, nz*b.nyl*b.nxl)
	for k := 0; k < nz; k++ {
		for j := 0; j < b.nyl; j++ {
			for i := 0; i < b.nxl; i++ {
				gx, gy := xlo+i, ylo+j
				b.f[b.idx(k, j, i)] = math.Sin(float64(1+gx)*0.17) * math.Cos(float64(1+gy)*0.23) * math.Sin(float64(1+k)*0.11)
			}
		}
	}
	return b
}

// luFaces holds the halo faces of the old field: values just outside the
// block (zero at the global boundary).
type luFaces struct {
	west, east   []float64 // [nz][nyl]
	north, south []float64 // [nz][nxl]
}

func (f *luFaces) w(k, j, nyl int) float64 {
	if f.west == nil {
		return 0
	}
	return f.west[k*nyl+j]
}
func (f *luFaces) e(k, j, nyl int) float64 {
	if f.east == nil {
		return 0
	}
	return f.east[k*nyl+j]
}
func (f *luFaces) n(k, i, nxl int) float64 {
	if f.north == nil {
		return 0
	}
	return f.north[k*nxl+i]
}
func (f *luFaces) s(k, i, nxl int) float64 {
	if f.south == nil {
		return 0
	}
	return f.south[k*nxl+i]
}

// luComm is the communication dependency of the sweeps; the serial
// variant has no neighbours (zero faces/edges).
type luComm interface {
	exchangeHalos(b *luBlock) *luFaces
	recvWest(nyl int) []float64
	recvNorth(nxl int) []float64
	sendEast(edge []float64)
	sendSouth(edge []float64)
	recvEast(nyl int) []float64
	recvSouth(nxl int) []float64
	sendWest(edge []float64)
	sendNorth(edge []float64)
	charge()
	sum(x float64) float64
}

const (
	luTagE = 801 // eastward wavefront edges (lower sweep)
	luTagS = 802
	luTagW = 803 // westward wavefront edges (upper sweep)
	luTagN = 804
	luTagH = 805 // halo faces
)

type luParallel struct {
	p      *mpi.Proc
	b      Benchmark
	q, r   int
	pi, pj int
}

func (c *luParallel) rankAt(pi, pj int) int { return pj*c.q + pi }

func (c *luParallel) exchangeHalos(b *luBlock) *luFaces {
	p := c.p
	faces := &luFaces{}
	var reqs []*mpi.Request
	var rw, re, rn, rs *mpi.Request
	pack := func(i int) []float64 {
		out := make([]float64, b.nz*b.nyl)
		for k := 0; k < b.nz; k++ {
			for j := 0; j < b.nyl; j++ {
				out[k*b.nyl+j] = b.u[b.idx(k, j, i)]
			}
		}
		return out
	}
	packY := func(j int) []float64 {
		out := make([]float64, b.nz*b.nxl)
		for k := 0; k < b.nz; k++ {
			copy(out[k*b.nxl:(k+1)*b.nxl], b.u[b.idx(k, j, 0):b.idx(k, j, b.nxl)])
		}
		return out
	}
	if c.pi > 0 {
		rw = p.Irecv(c.rankAt(c.pi-1, c.pj), luTagH)
		reqs = append(reqs, rw, p.IsendFloat64s(c.rankAt(c.pi-1, c.pj), luTagH, pack(0)))
	}
	if c.pi < c.q-1 {
		re = p.Irecv(c.rankAt(c.pi+1, c.pj), luTagH)
		reqs = append(reqs, re, p.IsendFloat64s(c.rankAt(c.pi+1, c.pj), luTagH, pack(b.nxl-1)))
	}
	if c.pj > 0 {
		rn = p.Irecv(c.rankAt(c.pi, c.pj-1), luTagH)
		reqs = append(reqs, rn, p.IsendFloat64s(c.rankAt(c.pi, c.pj-1), luTagH, packY(0)))
	}
	if c.pj < c.r-1 {
		rs = p.Irecv(c.rankAt(c.pi, c.pj+1), luTagH)
		reqs = append(reqs, rs, p.IsendFloat64s(c.rankAt(c.pi, c.pj+1), luTagH, packY(b.nyl-1)))
	}
	p.Waitall(reqs)
	if rw != nil {
		faces.west = mpi.BytesToFloat64s(rw.Data())
	}
	if re != nil {
		faces.east = mpi.BytesToFloat64s(re.Data())
	}
	if rn != nil {
		faces.north = mpi.BytesToFloat64s(rn.Data())
	}
	if rs != nil {
		faces.south = mpi.BytesToFloat64s(rs.Data())
	}
	return faces
}

func (c *luParallel) recvWest(nyl int) []float64 {
	if c.pi == 0 {
		return nil
	}
	v, _ := c.p.RecvFloat64s(c.rankAt(c.pi-1, c.pj), luTagE)
	return v
}

func (c *luParallel) recvNorth(nxl int) []float64 {
	if c.pj == 0 {
		return nil
	}
	v, _ := c.p.RecvFloat64s(c.rankAt(c.pi, c.pj-1), luTagS)
	return v
}

func (c *luParallel) sendEast(edge []float64) {
	if c.pi < c.q-1 {
		c.p.SendFloat64s(c.rankAt(c.pi+1, c.pj), luTagE, edge)
	}
}

func (c *luParallel) sendSouth(edge []float64) {
	if c.pj < c.r-1 {
		c.p.SendFloat64s(c.rankAt(c.pi, c.pj+1), luTagS, edge)
	}
}

func (c *luParallel) recvEast(nyl int) []float64 {
	if c.pi == c.q-1 {
		return nil
	}
	v, _ := c.p.RecvFloat64s(c.rankAt(c.pi+1, c.pj), luTagW)
	return v
}

func (c *luParallel) recvSouth(nxl int) []float64 {
	if c.pj == c.r-1 {
		return nil
	}
	v, _ := c.p.RecvFloat64s(c.rankAt(c.pi, c.pj+1), luTagN)
	return v
}

func (c *luParallel) sendWest(edge []float64) {
	if c.pi > 0 {
		c.p.SendFloat64s(c.rankAt(c.pi-1, c.pj), luTagW, edge)
	}
}

func (c *luParallel) sendNorth(edge []float64) {
	if c.pj > 0 {
		c.p.SendFloat64s(c.rankAt(c.pi, c.pj-1), luTagN, edge)
	}
}

func (c *luParallel) charge()               { chargePerIter(c.p, c.b) }
func (c *luParallel) sum(x float64) float64 { return c.p.AllreduceScalar(x, mpi.OpSum) }

type luSerial struct{}

func (luSerial) exchangeHalos(*luBlock) *luFaces { return &luFaces{} }
func (luSerial) recvWest(int) []float64          { return nil }
func (luSerial) recvNorth(int) []float64         { return nil }
func (luSerial) sendEast([]float64)              {}
func (luSerial) sendSouth([]float64)             {}
func (luSerial) recvEast(int) []float64          { return nil }
func (luSerial) recvSouth(int) []float64         { return nil }
func (luSerial) sendWest([]float64)              {}
func (luSerial) sendNorth([]float64)             {}
func (luSerial) charge()                         {}
func (luSerial) sum(x float64) float64           { return x }

// luIter runs one SSOR-style iteration: residual from the old field,
// lower-triangular wavefront solve, upper-triangular wavefront solve,
// and the relaxed update.
func luIter(c luComm, b *luBlock) {
	const omega = 0.9

	// Residual r = f - A·u_old, A = 7-point (7u - Σ neighbours), zero
	// Dirichlet boundary.
	faces := c.exchangeHalos(b)
	r := make([]float64, len(b.u))
	at := func(k, j, i int) float64 {
		switch {
		case k < 0 || k >= b.nz:
			return 0
		case i < 0:
			return faces.w(k, j, b.nyl)
		case i >= b.nxl:
			return faces.e(k, j, b.nyl)
		case j < 0:
			return faces.n(k, i, b.nxl)
		case j >= b.nyl:
			return faces.s(k, i, b.nxl)
		}
		return b.u[b.idx(k, j, i)]
	}
	for k := 0; k < b.nz; k++ {
		for j := 0; j < b.nyl; j++ {
			for i := 0; i < b.nxl; i++ {
				nb := at(k-1, j, i) + at(k+1, j, i) + at(k, j-1, i) + at(k, j+1, i) + at(k, j, i-1) + at(k, j, i+1)
				r[b.idx(k, j, i)] = b.f[b.idx(k, j, i)] - (7.0*b.u[b.idx(k, j, i)] - nb)
			}
		}
	}

	// Lower-triangular wavefront (NPB blts): dependencies on k-1, j-1,
	// i-1 only; per z-level, the west and north edges arrive from the
	// wavefront.
	t := make([]float64, len(b.u))
	for k := 0; k < b.nz; k++ {
		west := c.recvWest(b.nyl)
		north := c.recvNorth(b.nxl)
		for j := 0; j < b.nyl; j++ {
			for i := 0; i < b.nxl; i++ {
				var tw, tn, tk float64
				if i > 0 {
					tw = t[b.idx(k, j, i-1)]
				} else if west != nil {
					tw = west[j]
				}
				if j > 0 {
					tn = t[b.idx(k, j-1, i)]
				} else if north != nil {
					tn = north[i]
				}
				if k > 0 {
					tk = t[b.idx(k-1, j, i)]
				}
				t[b.idx(k, j, i)] = (r[b.idx(k, j, i)] + tw + tn + tk) / 7.0
			}
		}
		east := make([]float64, b.nyl)
		for j := 0; j < b.nyl; j++ {
			east[j] = t[b.idx(k, j, b.nxl-1)]
		}
		c.sendEast(east)
		south := make([]float64, b.nxl)
		for i := 0; i < b.nxl; i++ {
			south[i] = t[b.idx(k, b.nyl-1, i)]
		}
		c.sendSouth(south)
	}

	// Upper-triangular wavefront (NPB buts): dependencies on k+1, j+1,
	// i+1, sweeping backwards.
	d := make([]float64, len(b.u))
	for k := b.nz - 1; k >= 0; k-- {
		east := c.recvEast(b.nyl)
		south := c.recvSouth(b.nxl)
		for j := b.nyl - 1; j >= 0; j-- {
			for i := b.nxl - 1; i >= 0; i-- {
				var de, ds, dk float64
				if i < b.nxl-1 {
					de = d[b.idx(k, j, i+1)]
				} else if east != nil {
					de = east[j]
				}
				if j < b.nyl-1 {
					ds = d[b.idx(k, j+1, i)]
				} else if south != nil {
					ds = south[i]
				}
				if k < b.nz-1 {
					dk = d[b.idx(k+1, j, i)]
				}
				d[b.idx(k, j, i)] = (t[b.idx(k, j, i)] + de + ds + dk) / 7.0
			}
		}
		west := make([]float64, b.nyl)
		for j := 0; j < b.nyl; j++ {
			west[j] = d[b.idx(k, j, 0)]
		}
		c.sendWest(west)
		north := make([]float64, b.nxl)
		for i := 0; i < b.nxl; i++ {
			north[i] = d[b.idx(k, 0, i)]
		}
		c.sendNorth(north)
	}

	for i := range b.u {
		b.u[i] += omega * d[i]
	}
}

func luDriver(c luComm, b *luBlock, iters int) float64 {
	var norm float64
	for it := 0; it < iters; it++ {
		c.charge()
		luIter(c, b)
		var local float64
		for _, v := range b.u {
			local += v * v
		}
		norm = math.Sqrt(c.sum(local))
	}
	return norm
}

func runLU(p *mpi.Proc, b Benchmark) Result {
	q, r := procGrid(p.Size())
	blk := luInit(b.nz, p.Size(), p.Rank())
	c := &luParallel{p: p, b: b, q: q, r: r, pi: p.Rank() % q, pj: p.Rank() / q}
	v := luDriver(c, blk, b.Iters)
	ref := refValue(refKey("lu", b.nz, b.Iters), func() float64 { return luDriver(luSerial{}, luInit(b.nz, 1, 0), b.Iters) })
	return Result{Value: v, Verified: close(v, ref), Iters: b.Iters}
}
