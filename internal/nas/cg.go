package nas

import (
	"bytes"
	"encoding/gob"

	"mpichv/internal/mpi"
)

// CG: the NPB conjugate-gradient kernel structure — outer power-method
// iterations, each running a fixed 25-step CG solve on a sparse
// symmetric diagonally-dominant matrix, row-partitioned. Every inner
// step performs a sparse matrix-vector product (assembling the search
// direction via an allgather of vector segments) and two dot-product
// allreduces: hundreds of dependent small-message exchanges per outer
// iteration. Each reception event must reach the event logger before
// the next emission, so this is MPICH-V2's worst case in figure 7.

const (
	cgN        = 1024
	cgNNZ      = 8
	cgShift    = 40.0
	cgInner    = 25 // CG steps per outer iteration (NPB cgitmax)
	cgRedOuter = 3  // reduced outer iterations actually executed
)

// CG returns the CG benchmark for a class.
func CG(class string) Benchmark {
	b := Benchmark{
		Name:  "CG",
		Class: class,
		Run:   runCG,
	}
	switch class {
	case "B":
		b.Iters, b.FullIters = cgRedOuter, 75
		b.FullFlops = 54.9e9
		b.MsgScale = 75000.0 / cgN
	default:
		b.Class = "A"
		b.Iters, b.FullIters = cgRedOuter, 15
		b.FullFlops = 1.50e9
		b.MsgScale = 14000.0 / cgN
	}
	return b
}

// cgMatrix is a CSR-ish sparse matrix, built identically on every rank.
type cgMatrix struct {
	n    int
	cols [][]int
	vals [][]float64
}

func buildCGMatrix(n int) *cgMatrix {
	m := &cgMatrix{n: n, cols: make([][]int, n), vals: make([][]float64, n)}
	rng := newLCG(42)
	add := func(i, j int, v float64) {
		m.cols[i] = append(m.cols[i], j)
		m.vals[i] = append(m.vals[i], v)
	}
	for i := 0; i < n; i++ {
		add(i, i, cgShift+float64(cgNNZ))
	}
	for i := 0; i < n; i++ {
		for k := 0; k < cgNNZ/2; k++ {
			j := rng.intn(n)
			if j == i {
				continue
			}
			v := rng.float() - 0.5
			add(i, j, v)
			add(j, i, v)
		}
	}
	return m
}

// spmvRows computes y = A·x for rows [lo,hi).
func (m *cgMatrix) spmvRows(lo, hi int, x, y []float64) {
	for i := lo; i < hi; i++ {
		var s float64
		cols, vals := m.cols[i], m.vals[i]
		for k, j := range cols {
			s += vals[k] * x[j]
		}
		y[i-lo] = s
	}
}

// blockRange splits n items over size ranks.
func blockRange(n, size, rank int) (lo, hi int) {
	base, rem := n/size, n%size
	lo = rank*base + min(rank, rem)
	hi = lo + base
	if rank < rem {
		hi++
	}
	return lo, hi
}

// cgComm abstracts the two collective operations of the solver.
type cgComm interface {
	// assemble gathers the full vector from the local segments.
	assemble(seg []float64, full []float64)
	allreduce(x float64) float64
	charge()
}

type cgParallel struct {
	p *mpi.Proc
	b Benchmark
}

func (c *cgParallel) assemble(seg []float64, full []float64) {
	segs := c.p.Allgather(mpi.Float64sToBytes(seg))
	off := 0
	for rk := 0; rk < c.p.Size(); rk++ {
		s := mpi.BytesToFloat64s(segs[rk])
		copy(full[off:], s)
		off += len(s)
	}
}

func (c *cgParallel) allreduce(x float64) float64 { return c.p.AllreduceScalar(x, mpi.OpSum) }
func (c *cgParallel) charge()                     { chargePerIter(c.p, c.b) }

type cgSerialComm struct{}

func (cgSerialComm) assemble(seg []float64, full []float64) { copy(full, seg) }
func (cgSerialComm) allreduce(x float64) float64            { return x }
func (cgSerialComm) charge()                                {}

// cgSolve runs the fixed-iteration inner CG for A·x = rhs and returns
// (x, final residual rho).
func cgSolve(c cgComm, m *cgMatrix, lo, hi int, rhs []float64) ([]float64, float64) {
	local := hi - lo
	x := make([]float64, local)
	r := append([]float64(nil), rhs...)
	pv := make([]float64, m.n)
	q := make([]float64, local)
	plocal := append([]float64(nil), r...)
	rho := c.allreduce(dot(r, r))
	for it := 0; it < cgInner; it++ {
		c.assemble(plocal, pv)
		m.spmvRows(lo, hi, pv, q)
		alpha := rho / c.allreduce(dot(plocal, q))
		for i := range x {
			x[i] += alpha * plocal[i]
			r[i] -= alpha * q[i]
		}
		rhoNew := c.allreduce(dot(r, r))
		beta := rhoNew / rho
		rho = rhoNew
		for i := range plocal {
			plocal[i] = r[i] + beta*plocal[i]
		}
	}
	return x, rho
}

// cgState is the checkpointable outer-loop state.
type cgState struct {
	Outer int
	Rhs   []float64
	Value float64
}

// cgDriver runs the outer iterations: each solves against a right-hand
// side derived from the previous solution (the power-method chaining of
// NPB CG, simplified). When p is non-nil the outer loop is
// checkpointable: a restarted rank resumes from its last snapshot.
func cgDriver(c cgComm, m *cgMatrix, lo, hi, outer int, p *mpi.Proc) float64 {
	local := hi - lo
	st := cgState{Rhs: make([]float64, local)}
	for i := range st.Rhs {
		st.Rhs[i] = 1.0
	}
	if p != nil {
		p.SetStateProvider(func() []byte {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
				p.Abortf("encoding CG state: %v", err)
			}
			return buf.Bytes()
		})
		if blob, restarted := p.Restarted(); restarted && blob != nil {
			if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
				p.Abortf("decoding CG state: %v", err)
			}
		}
	}
	rhs := st.Rhs
	value := st.Value
	for it := st.Outer; it < outer; it++ {
		st.Outer, st.Rhs, st.Value = it, rhs, value
		if p != nil {
			p.CheckpointPoint()
		}
		c.charge()
		x, rho := cgSolve(c, m, lo, hi, rhs)
		// Normalize by the global norm to chain outer iterations.
		norm := c.allreduce(dot(x, x))
		if norm > 0 {
			inv := 1.0 / norm
			for i := range rhs {
				rhs[i] = x[i] * inv
			}
		}
		value = rho
	}
	return value
}

func runCG(p *mpi.Proc, b Benchmark) Result {
	m := buildCGMatrix(cgN)
	lo, hi := blockRange(cgN, p.Size(), p.Rank())
	value := cgDriver(&cgParallel{p: p, b: b}, m, lo, hi, b.Iters, p)
	ref := refValue(refKey("cg", b.Iters), func() float64 {
		return cgDriver(cgSerialComm{}, buildCGMatrix(cgN), 0, cgN, b.Iters, nil)
	})
	return Result{Value: value, Verified: close(value, ref), Iters: b.Iters}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
