package nas_test

import (
	"testing"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/dispatcher"
	"mpichv/internal/mpi"
	"mpichv/internal/nas"
)

// runKernel executes a benchmark on a simulated V2 cluster and returns
// the per-rank results.
func runKernel(t *testing.T, impl cluster.Impl, b nas.Benchmark, n int, faults []dispatcher.Fault, ckpt bool) []nas.Result {
	t.Helper()
	results := make([]nas.Result, n)
	cfg := cluster.Config{Impl: impl, N: n, Faults: faults, Checkpointing: ckpt}
	if ckpt {
		cfg.SchedPeriod = 5 * time.Millisecond
	}
	cluster.Run(cfg, func(p *mpi.Proc) {
		results[p.Rank()] = b.Run(p, b)
	})
	return results
}

func checkVerified(t *testing.T, id string, rs []nas.Result) {
	t.Helper()
	for r, res := range rs {
		if !res.Verified {
			t.Errorf("%s rank %d failed verification (value %v)", id, r, res.Value)
		}
	}
}

func TestCGVerifies(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		checkVerified(t, "CG.A", runKernel(t, cluster.V2, nas.CG("A"), n, nil, false))
	}
}

func TestCGVerifiesOnP4(t *testing.T) {
	checkVerified(t, "CG.A", runKernel(t, cluster.P4, nas.CG("A"), 4, nil, false))
}

func TestMGVerifies(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		checkVerified(t, "MG.A", runKernel(t, cluster.V2, nas.MG("A"), n, nil, false))
	}
}

func TestFTVerifies(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		checkVerified(t, "FT.A", runKernel(t, cluster.V2, nas.FT("A"), n, nil, false))
	}
}

func TestLUVerifies(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		checkVerified(t, "LU.A", runKernel(t, cluster.V2, nas.LU("A"), n, nil, false))
	}
}

func TestBTVerifies(t *testing.T) {
	for _, n := range []int{1, 4} {
		checkVerified(t, "BT.A", runKernel(t, cluster.V2, nas.BT("A"), n, nil, false))
	}
}

func TestSPVerifies(t *testing.T) {
	checkVerified(t, "SP.A", runKernel(t, cluster.V2, nas.SP("A"), 4, nil, false))
}

func TestBTNineProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("9-process BT is slow in short mode")
	}
	checkVerified(t, "BT.A", runKernel(t, cluster.V2, nas.BT("A"), 9, nil, false))
}

func TestCGSurvivesFault(t *testing.T) {
	faults := []dispatcher.Fault{{Time: 20 * time.Millisecond, Rank: 1}}
	checkVerified(t, "CG.A", runKernel(t, cluster.V2, nas.CG("A"), 4, faults, false))
}

func TestBTSurvivesFaultWithCheckpoint(t *testing.T) {
	// The figure 11 scenario in miniature: BT with continuous
	// checkpointing and a mid-run fault; the restarted rank resumes
	// from its checkpoint and the result still verifies.
	faults := []dispatcher.Fault{{Time: 100 * time.Millisecond, Rank: 2}}
	checkVerified(t, "BT.A", runKernel(t, cluster.V2, nas.BT("A"), 4, faults, true))
}

func TestLUSurvivesFault(t *testing.T) {
	if testing.Short() {
		t.Skip("LU fault test is slow in short mode")
	}
	faults := []dispatcher.Fault{{Time: 50 * time.Millisecond, Rank: 0}}
	checkVerified(t, "LU.A", runKernel(t, cluster.V2, nas.LU("A"), 4, faults, false))
}

func TestSuiteMetadata(t *testing.T) {
	ids := map[string]bool{}
	for _, b := range nas.All() {
		if b.Iters <= 0 || b.FullFlops <= 0 || b.MsgScale < 1 {
			t.Errorf("%s: bad metadata %+v", b.ID(), b)
		}
		if ids[b.ID()] {
			t.Errorf("duplicate benchmark id %s", b.ID())
		}
		ids[b.ID()] = true
		if b.ExtrapFactor() < 1 {
			t.Errorf("%s: extrapolation factor %v < 1", b.ID(), b.ExtrapFactor())
		}
	}
	if _, ok := nas.ByID("CG.A"); !ok {
		t.Error("ByID failed for CG.A")
	}
	if _, ok := nas.ByID("XX.Z"); ok {
		t.Error("ByID returned a bogus benchmark")
	}
}

func TestCGSurvivesFaultWithCheckpoint(t *testing.T) {
	// CG's outer loop is checkpointable too: a killed rank resumes
	// from its snapshot instead of re-executing from the start.
	faults := []dispatcher.Fault{{Time: 40 * time.Millisecond, Rank: 2}}
	checkVerified(t, "CG.A", runKernel(t, cluster.V2, nas.CG("A"), 4, faults, true))
}
