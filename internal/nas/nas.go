// Package nas implements reduced-size but mathematically real versions
// of the NAS Parallel Benchmarks 2.3 kernels the paper evaluates
// (§5.2): CG, MG, FT, LU, BT and SP, written against this repository's
// MPI layer with the same domain decompositions and communication
// patterns as the Fortran originals:
//
//	CG — conjugate gradient on a sparse SPD matrix: dot-product
//	     allreduces and vector-segment exchanges every iteration
//	     (many small messages; latency-bound).
//	MG — 3D multigrid V-cycles: halo exchanges that shrink with each
//	     level (small messages at coarse levels).
//	FT — 3D FFT: local FFTs plus a global transpose (all-to-all of
//	     large blocks; bandwidth-bound).
//	LU — SSOR with pipelined wavefront sweeps (very many tiny
//	     messages).
//	BT/SP — ADI sweeps with Isend/Irecv/Waitall face exchanges
//	     (moderately large messages, bidirectional; the figure 9
//	     pattern).
//
// Scaling: each kernel runs a problem small enough to execute quickly
// and verify against a serial reference, while (a) charging the full
// NPB class flop count as virtual compute time and (b) reporting a
// MsgScale — the geometric factor between its reduced message sizes and
// the full-class message sizes. The experiment harness divides the
// modeled network bandwidth (and the eager limit and log budgets) by
// MsgScale, so transfer times, message counts and compute/communication
// ratios match the full-class run without allocating full-class memory.
// See DESIGN.md §2.
package nas

import (
	"fmt"
	"math"
	"sync"

	"mpichv/internal/mpi"
)

// Result is the outcome of one kernel run on one rank.
type Result struct {
	// Value is the kernel's verification value (identical on every
	// rank).
	Value float64
	// Verified is true when Value matches the serial reference within
	// tolerance.
	Verified bool
	// Iters actually executed.
	Iters int
}

// Benchmark describes one kernel+class instance.
type Benchmark struct {
	Name  string
	Class string
	// Iters is the number of iterations actually executed.
	Iters int
	// FullIters is the iteration count of the full-class benchmark;
	// when larger than Iters, measured times extrapolate linearly
	// (kernels are steady-state per iteration).
	FullIters int
	// FullFlops is the total floating-point work of the full-class
	// problem (all FullIters, all ranks), charged as virtual time
	// pro-rata per executed iteration.
	FullFlops float64
	// MsgScale is fullMessageBytes / reducedMessageBytes.
	MsgScale float64
	// MaxProcs bounds the process count (BT/SP need squares).
	MaxProcs int
	// Run executes the kernel on one rank.
	Run func(p *mpi.Proc, b Benchmark) Result

	// kernel-private dimensioning.
	nz   int // LU: vertical levels (full-class count, run as-is)
	vars int // ADI: components per grid point
	n    int // ADI: reduced cube edge
}

// ID returns e.g. "CG.A".
func (b Benchmark) ID() string { return b.Name + "." + b.Class }

const verifyTol = 1e-8

func close(a, b float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return true
	}
	return math.Abs(a-b)/den < verifyTol
}

// chargePerIter charges this rank's share of one iteration of the
// full-class compute.
func chargePerIter(p *mpi.Proc, b Benchmark) {
	fi := b.FullIters
	if fi <= 0 {
		fi = b.Iters
	}
	p.Compute(b.FullFlops / float64(fi) / float64(p.Size()))
}

// ExtrapFactor is what measured elapsed times are multiplied by to
// estimate the full-class run.
func (b Benchmark) ExtrapFactor() float64 {
	if b.FullIters <= 0 || b.FullIters <= b.Iters {
		return 1
	}
	return float64(b.FullIters) / float64(b.Iters)
}

// refValue memoizes serial reference values: every rank verifies
// against the same reference, so it is computed once per process
// lifetime.
var (
	refMu    sync.Mutex
	refCache = map[string]float64{}
)

func refValue(key string, f func() float64) float64 {
	refMu.Lock()
	v, ok := refCache[key]
	refMu.Unlock()
	if ok {
		return v
	}
	v = f()
	refMu.Lock()
	refCache[key] = v
	refMu.Unlock()
	return v
}

func refKey(parts ...any) string { return fmt.Sprintln(parts...) }

// lcg is the deterministic pseudo-random generator used to build inputs
// (NPB uses a specific linear congruential generator; the exact stream
// does not matter here, determinism does).
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*6364136223846793005 + 1442695040888963407} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s
}

// float returns a uniform value in (0,1).
func (l *lcg) float() float64 {
	return float64(l.next()>>11) / float64(1<<53)
}

// intn returns a uniform value in [0,n).
func (l *lcg) intn(n int) int {
	return int(l.next() % uint64(n))
}

// Square reports the largest q with q*q <= n.
func Square(n int) int {
	q := int(math.Sqrt(float64(n)))
	for q*q > n {
		q--
	}
	return q
}

// All returns the benchmark suite of the paper's figure 7: CG, MG, FT,
// LU, BT, SP in classes A and B (FT.B is excluded — the paper could not
// run it either, its message log exceeding the 2 GB capacity).
func All() []Benchmark {
	return []Benchmark{
		CG("A"), CG("B"),
		MG("A"), MG("B"),
		FT("A"),
		LU("A"), LU("B"),
		BT("A"), BT("B"),
		SP("A"), SP("B"),
	}
}

// ByID returns the benchmark with the given ID ("CG.A").
func ByID(id string) (Benchmark, bool) {
	for _, b := range All() {
		if b.ID() == id {
			return b, true
		}
	}
	return Benchmark{}, false
}
