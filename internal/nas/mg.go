package nas

import (
	"math"

	"mpichv/internal/mpi"
)

// MG: 3D multigrid V-cycles for the Poisson problem on a periodic cube,
// slab-decomposed along z. Every smoothing and residual step exchanges
// one halo plane with each z-neighbour; the planes shrink quadratically
// toward coarse levels, producing the stream of small messages that
// makes MG latency-bound (paper figure 7: V2 suffers on MG like on CG).
//
// The smoother is weighted Jacobi, which is order-independent, so the
// parallel run and the serial reference compute identical values.

const (
	mgN   = 64  // reduced cube edge (full class A/B: 256)
	mgNu  = 2   // smoothing sweeps per level
	mgTag = 901 // halo tag base
)

// MG returns the MG benchmark for a class.
func MG(class string) Benchmark {
	// MsgScale 4: the reduced 64³ slab halo (64²×8 = 32 KiB) models the
	// full 256³ run's per-axis transfer volume on the paper's process
	// counts (a 3D-decomposed face is (256²/q)×8 bytes ≈ 4×32 KiB at
	// 8–16 processes).
	b := Benchmark{Name: "MG", Class: class, Run: runMG, MsgScale: 4}
	switch class {
	case "B":
		b.Iters, b.FullIters = 8, 20
		b.FullFlops = 58.1e9
	default:
		b.Class = "A"
		b.Iters, b.FullIters = 4, 4
		b.FullFlops = 3.89e9
	}
	return b
}

// mgComm abstracts the halo exchange so the serial reference reuses the
// exact same numerical code.
type mgComm interface {
	// exchange fills the ghost planes of g (periodic in z).
	exchange(g *mgGrid)
	sum(x float64) float64
	charge()
}

// mgGrid is one level's slab: nz local planes plus two ghost planes,
// each plane nx×nx, periodic in x and y.
type mgGrid struct {
	nx  int // plane edge
	nz  int // local planes (without ghosts)
	gz  int // global planes
	z0  int // global index of first local plane
	val []float64
}

func newMGGrid(nx, gz, rank, size int) *mgGrid {
	lo, hi := blockRange(gz, size, rank)
	return &mgGrid{nx: nx, nz: hi - lo, gz: gz, z0: lo, val: make([]float64, (hi-lo+2)*nx*nx)}
}

// at addresses plane z (−1..nz) — z is local with ghosts at −1 and nz.
func (g *mgGrid) plane(z int) []float64 {
	n2 := g.nx * g.nx
	return g.val[(z+1)*n2 : (z+2)*n2]
}

func (g *mgGrid) idx(z, y, x int) int {
	return (z+1)*g.nx*g.nx + y*g.nx + x
}

type mgParallel struct {
	p *mpi.Proc
	b Benchmark
}

func (c *mgParallel) exchange(g *mgGrid) {
	p := c.p
	if p.Size() == 1 {
		copy(g.plane(-1), g.plane(g.nz-1))
		copy(g.plane(g.nz), g.plane(0))
		return
	}
	up := (p.Rank() + 1) % p.Size()
	down := (p.Rank() - 1 + p.Size()) % p.Size()
	// One direction at a time, like NPB MG's comm3 (per-axis,
	// per-direction): first every rank ships its top plane upward,
	// then its bottom plane downward. Transfers never run both ways at
	// once, so the P4 driver's half-duplex limitation does not bite
	// here — which is why the paper's MG, like CG, is purely a
	// latency/overhead loss for V2.
	got, _ := p.Sendrecv(up, mgTag, mpi.Float64sToBytes(g.plane(g.nz-1)), down, mgTag)
	copy(g.plane(-1), mpi.BytesToFloat64s(got)) // ghost below ← down-neighbour's top plane
	got, _ = p.Sendrecv(down, mgTag+1, mpi.Float64sToBytes(g.plane(0)), up, mgTag+1)
	copy(g.plane(g.nz), mpi.BytesToFloat64s(got)) // ghost above ← up-neighbour's bottom plane
}

func (c *mgParallel) sum(x float64) float64 { return c.p.AllreduceScalar(x, mpi.OpSum) }
func (c *mgParallel) charge()               { chargePerIter(c.p, c.b) }

type mgSerial struct{}

func (mgSerial) exchange(g *mgGrid) {
	copy(g.plane(-1), g.plane(g.nz-1))
	copy(g.plane(g.nz), g.plane(0))
}
func (mgSerial) sum(x float64) float64 { return x }
func (mgSerial) charge()               {}

// mgLevels returns how many levels the V-cycle can descend: the process
// count must divide every coarser plane count so slabs stay aligned
// (the benchmark sweep uses powers of two, as the paper does).
func mgLevels(gz, size int) int {
	levels := 1
	for n := gz / 2; n%size == 0 && n >= 4 && levels < 4; n /= 2 {
		levels++
	}
	return levels
}

// smooth runs weighted-Jacobi sweeps of the 7-point Laplacian equation
// A·u = r.
func mgSmooth(c mgComm, u, r *mgGrid, sweeps int) {
	const omega = 0.8
	nx := u.nx
	tmp := make([]float64, len(u.val))
	for s := 0; s < sweeps; s++ {
		c.exchange(u)
		for z := 0; z < u.nz; z++ {
			for y := 0; y < nx; y++ {
				ym, yp := (y-1+nx)%nx, (y+1)%nx
				for x := 0; x < nx; x++ {
					xm, xp := (x-1+nx)%nx, (x+1)%nx
					nb := u.val[u.idx(z-1, y, x)] + u.val[u.idx(z+1, y, x)] +
						u.val[u.idx(z, ym, x)] + u.val[u.idx(z, yp, x)] +
						u.val[u.idx(z, y, xm)] + u.val[u.idx(z, y, xp)]
					// Jacobi update for -∇²u = r: u = (r + Σnb)/6.
					newV := (r.val[r.idx(z, y, x)] + nb) / 6.0
					old := u.val[u.idx(z, y, x)]
					tmp[u.idx(z, y, x)] = old + omega*(newV-old)
				}
			}
		}
		for z := 0; z < u.nz; z++ {
			copy(u.plane(z), tmp[(z+1)*nx*nx:(z+2)*nx*nx])
		}
	}
}

// mgResidual computes res = r - A·u (A = -∇² with unit spacing scaled by
// 1/6 convention matching the smoother).
func mgResidual(c mgComm, u, r, res *mgGrid) {
	nx := u.nx
	c.exchange(u)
	for z := 0; z < u.nz; z++ {
		for y := 0; y < nx; y++ {
			ym, yp := (y-1+nx)%nx, (y+1)%nx
			for x := 0; x < nx; x++ {
				xm, xp := (x-1+nx)%nx, (x+1)%nx
				nb := u.val[u.idx(z-1, y, x)] + u.val[u.idx(z+1, y, x)] +
					u.val[u.idx(z, ym, x)] + u.val[u.idx(z, yp, x)] +
					u.val[u.idx(z, y, xm)] + u.val[u.idx(z, y, xp)]
				au := 6.0*u.val[u.idx(z, y, x)] - nb
				res.val[res.idx(z, y, x)] = r.val[r.idx(z, y, x)] - au
			}
		}
	}
}

// mgRestrict halves the grid (full-weighting on even points).
func mgRestrict(c mgComm, fine, coarse *mgGrid) {
	c.exchange(fine)
	nx := coarse.nx
	for z := 0; z < coarse.nz; z++ {
		fz := (coarse.z0+z)*2 - fine.z0 // global→local fine plane
		for y := 0; y < nx; y++ {
			for x := 0; x < nx; x++ {
				coarse.val[coarse.idx(z, y, x)] = fine.val[fine.idx(fz, 2*y, 2*x)]
			}
		}
	}
}

// mgProlong adds the coarse correction (injection + nearest neighbour).
func mgProlong(c mgComm, coarse, fine *mgGrid) {
	c.exchange(coarse)
	nx := fine.nx
	cnx := coarse.nx
	for z := 0; z < fine.nz; z++ {
		gz := fine.z0 + z
		cz := gz/2 - coarse.z0
		for y := 0; y < nx; y++ {
			cy := (y / 2) % cnx
			for x := 0; x < nx; x++ {
				cx := (x / 2) % cnx
				fine.val[fine.idx(z, y, x)] += coarse.val[coarse.idx(cz, cy, cx)]
			}
		}
	}
}

// mgVcycle solves A·u = r approximately.
func mgVcycle(c mgComm, rank, size, level, maxLevel int, u, r *mgGrid) {
	mgSmooth(c, u, r, mgNu)
	if level == maxLevel-1 {
		mgSmooth(c, u, r, mgNu)
		return
	}
	res := newMGGrid(u.nx, u.gz, rank, size)
	mgResidual(c, u, r, res)
	rc := newMGGrid(u.nx/2, u.gz/2, rank, size)
	mgRestrict(c, res, rc)
	uc := newMGGrid(rc.nx, rc.gz, rank, size)
	mgVcycle(c, rank, size, level+1, maxLevel, uc, rc)
	mgProlong(c, uc, u)
	mgSmooth(c, u, r, mgNu)
}

// mgRHS builds the deterministic sparse ±1 source (NPB-style).
func mgRHS(g *mgGrid) {
	rng := newLCG(7)
	for k := 0; k < 20; k++ {
		x, y, z := rng.intn(g.nx), rng.intn(g.nx), rng.intn(g.gz)
		v := 1.0
		if k%2 == 1 {
			v = -1.0
		}
		if z >= g.z0 && z < g.z0+g.nz {
			g.val[g.idx(z-g.z0, y, x)] = v
		}
	}
}

func mgDriver(c mgComm, rank, size, iters, levels int) float64 {
	r := newMGGrid(mgN, mgN, rank, size)
	mgRHS(r)
	u := newMGGrid(mgN, mgN, rank, size)
	res := newMGGrid(mgN, mgN, rank, size)
	var norm float64
	for it := 0; it < iters; it++ {
		c.charge()
		mgVcycle(c, rank, size, 0, levels, u, r)
		mgResidual(c, u, r, res)
		var local float64
		for z := 0; z < res.nz; z++ {
			for _, v := range res.plane(z) {
				local += v * v
			}
		}
		norm = math.Sqrt(c.sum(local))
	}
	return norm
}

func runMG(p *mpi.Proc, b Benchmark) Result {
	c := &mgParallel{p: p, b: b}
	levels := mgLevels(mgN, p.Size())
	v := mgDriver(c, p.Rank(), p.Size(), b.Iters, levels)
	ref := refValue(refKey("mg", b.Iters, levels), func() float64 {
		return mgDriver(mgSerial{}, 0, 1, b.Iters, levels)
	})
	return Result{Value: v, Verified: close(v, ref), Iters: b.Iters}
}
