package nas

import (
	"bytes"
	"encoding/gob"
	"math"

	"mpichv/internal/mpi"
)

// BT and SP: ADI (alternating direction implicit) time stepping on a 3D
// grid with a square 2D process decomposition over x and y — the paper
// runs them on square process counts (up to 25). Every timestep sweeps
// the three directions; the x and y sweeps first exchange boundary
// faces with the two neighbours as a batch of non-blocking sends and
// receives completed by a Waitall — exactly the communication pattern
// of the paper's figure 9 synthetic benchmark ("a communication pattern
// identical to the one of BT/SP"), bidirectional and built from
// moderately large messages, where V2's full-duplex daemon beats P4.
//
// The scheme is a block-Jacobi ADI: each sweep solves tridiagonal
// systems along local lines with Dirichlet couplings taken from the
// neighbours' current faces, so the parallel run and a sequential
// emulation of the same partition compute identical values. BT carries
// 5 components per point and heavy per-step compute; SP carries 5
// components with lighter steps and twice the step count.

const (
	adiN      = 24  // reduced cube edge (full class A: 64, B: 102)
	adiChunks = 5   // face exchange is split into this many Isends
	adiSigma  = 0.4 // implicit diffusion weight
	adiTau    = 0.1 // forcing weight
	adiTagX   = 701
	adiTagY   = 702
)

// BT returns the BT benchmark for a class.
func BT(class string) Benchmark {
	b := Benchmark{Name: "BT", Class: class, Run: runADI, vars: 5, n: adiN, MaxProcs: 25}
	switch class {
	case "B":
		b.Iters, b.FullIters = 10, 200
		b.FullFlops = 721.5e9
		b.MsgScale = (102.0 / adiN) * (102.0 / adiN)
	default:
		b.Class = "A"
		b.Iters, b.FullIters = 10, 200
		b.FullFlops = 168.3e9
		b.MsgScale = (64.0 / adiN) * (64.0 / adiN)
	}
	return b
}

// SP returns the SP benchmark for a class.
func SP(class string) Benchmark {
	b := Benchmark{Name: "SP", Class: class, Run: runADI, vars: 5, n: adiN, MaxProcs: 25}
	switch class {
	case "B":
		b.Iters, b.FullIters = 10, 400
		b.FullFlops = 447.1e9
		b.MsgScale = (102.0 / adiN) * (102.0 / adiN)
	default:
		b.Class = "A"
		b.Iters, b.FullIters = 10, 400
		b.FullFlops = 102.0e9
		b.MsgScale = (64.0 / adiN) * (64.0 / adiN)
	}
	return b
}

// adiBlock is one process's subgrid: nz = full n planes, nyl × nxl
// horizontal block, vars components per point.
type adiBlock struct {
	n, vars  int
	nxl, nyl int
	x0, y0   int
	u        []float64
}

func (b *adiBlock) idx(k, j, i, v int) int {
	return (((k*b.nyl)+j)*b.nxl+i)*b.vars + v
}

func adiInit(bm Benchmark, q, pi, pj int) *adiBlock {
	n := bm.n
	xlo, xhi := blockRange(n, q, pi)
	ylo, yhi := blockRange(n, q, pj)
	b := &adiBlock{n: n, vars: bm.vars, nxl: xhi - xlo, nyl: yhi - ylo, x0: xlo, y0: ylo}
	b.u = make([]float64, n*b.nyl*b.nxl*b.vars)
	for k := 0; k < n; k++ {
		for j := 0; j < b.nyl; j++ {
			for i := 0; i < b.nxl; i++ {
				for v := 0; v < b.vars; v++ {
					gx, gy := xlo+i, ylo+j
					b.u[b.idx(k, j, i, v)] = math.Sin(0.13*float64(gx+1)+0.7*float64(v)) *
						math.Cos(0.19*float64(gy+1)) * math.Sin(0.07*float64(k+1))
				}
			}
		}
	}
	return b
}

// faces: the x-sweep needs the neighbours' boundary columns, the y-sweep
// their boundary rows. A face is [n][edge][vars] values.

// packXFace extracts column i as a face for an x-neighbour.
func (b *adiBlock) packXFace(i int) []float64 {
	out := make([]float64, b.n*b.nyl*b.vars)
	p := 0
	for k := 0; k < b.n; k++ {
		for j := 0; j < b.nyl; j++ {
			for v := 0; v < b.vars; v++ {
				out[p] = b.u[b.idx(k, j, i, v)]
				p++
			}
		}
	}
	return out
}

// packYFace extracts row j as a face for a y-neighbour.
func (b *adiBlock) packYFace(j int) []float64 {
	out := make([]float64, b.n*b.nxl*b.vars)
	p := 0
	for k := 0; k < b.n; k++ {
		for i := 0; i < b.nxl; i++ {
			for v := 0; v < b.vars; v++ {
				out[p] = b.u[b.idx(k, j, i, v)]
				p++
			}
		}
	}
	return out
}

// adiComm provides the neighbour faces for the two decomposed sweeps.
type adiComm interface {
	// exchangeX returns the west and east neighbour faces (nil at the
	// global boundary).
	exchangeX(b *adiBlock) (west, east []float64)
	exchangeY(b *adiBlock) (north, south []float64)
	charge()
	sum(x float64) float64
	checkpointPoint()
}

type adiParallel struct {
	p      *mpi.Proc
	bm     Benchmark
	q      int
	pi, pj int
}

func (c *adiParallel) rankAt(pi, pj int) int { return pj*c.q + pi }

// exchangeFaces swaps a face with up to two neighbours, each split into
// adiChunks non-blocking sends completed by one Waitall (the BT/SP
// pattern of figure 9).
func (c *adiParallel) exchangeFaces(tag int, lo, hi int, loFace, hiFace []float64) (loIn, hiIn []float64) {
	p := c.p
	var reqs []*mpi.Request
	var loRecv, hiRecv []*mpi.Request
	post := func(peer int, face []float64) []*mpi.Request {
		var rs []*mpi.Request
		for ch := 0; ch < adiChunks; ch++ {
			rs = append(rs, p.Irecv(peer, tag+ch))
		}
		for ch := 0; ch < adiChunks; ch++ {
			a, b := chunkRange(len(face), adiChunks, ch)
			reqs = append(reqs, p.IsendFloat64s(peer, tag+ch, face[a:b]))
		}
		return rs
	}
	if lo >= 0 {
		loRecv = post(lo, loFace)
	}
	if hi >= 0 {
		hiRecv = post(hi, hiFace)
	}
	for _, rs := range [][]*mpi.Request{loRecv, hiRecv} {
		reqs = append(reqs, rs...)
	}
	p.Waitall(reqs)
	assemble := func(rs []*mpi.Request, n int) []float64 {
		if rs == nil {
			return nil
		}
		out := make([]float64, n)
		for ch, r := range rs {
			a, b := chunkRange(n, adiChunks, ch)
			copy(out[a:b], mpi.BytesToFloat64s(r.Data()))
		}
		return out
	}
	return assemble(loRecv, len(loFace)), assemble(hiRecv, len(hiFace))
}

func chunkRange(n, chunks, ch int) (int, int) {
	base, rem := n/chunks, n%chunks
	a := ch*base + min(ch, rem)
	b := a + base
	if ch < rem {
		b++
	}
	return a, b
}

func (c *adiParallel) exchangeX(b *adiBlock) (west, east []float64) {
	lo, hi := -1, -1
	if c.pi > 0 {
		lo = c.rankAt(c.pi-1, c.pj)
	}
	if c.pi < c.q-1 {
		hi = c.rankAt(c.pi+1, c.pj)
	}
	return c.exchangeFaces(adiTagX, lo, hi, b.packXFace(0), b.packXFace(b.nxl-1))
}

func (c *adiParallel) exchangeY(b *adiBlock) (north, south []float64) {
	lo, hi := -1, -1
	if c.pj > 0 {
		lo = c.rankAt(c.pi, c.pj-1)
	}
	if c.pj < c.q-1 {
		hi = c.rankAt(c.pi, c.pj+1)
	}
	return c.exchangeFaces(adiTagY, lo, hi, b.packYFace(0), b.packYFace(b.nyl-1))
}

func (c *adiParallel) charge()               { chargePerIter(c.p, c.bm) }
func (c *adiParallel) sum(x float64) float64 { return c.p.AllreduceScalar(x, mpi.OpSum) }
func (c *adiParallel) checkpointPoint()      { c.p.CheckpointPoint() }

// adiSerial emulates the whole q×q partition sequentially; neighbours
// read each other's pre-sweep faces exactly like the parallel exchange.
type adiSerial struct {
	q      int
	blocks [][]*adiBlock // [pj][pi]
	pi, pj int
}

func (c *adiSerial) exchangeX(b *adiBlock) (west, east []float64) {
	if c.pi > 0 {
		west = c.blocks[c.pj][c.pi-1].packXFace(c.blocks[c.pj][c.pi-1].nxl - 1)
	}
	if c.pi < c.q-1 {
		east = c.blocks[c.pj][c.pi+1].packXFace(0)
	}
	return
}

func (c *adiSerial) exchangeY(b *adiBlock) (north, south []float64) {
	if c.pj > 0 {
		north = c.blocks[c.pj-1][c.pi].packYFace(c.blocks[c.pj-1][c.pi].nyl - 1)
	}
	if c.pj < c.q-1 {
		south = c.blocks[c.pj+1][c.pi].packYFace(0)
	}
	return
}

func (*adiSerial) charge()               {}
func (*adiSerial) sum(x float64) float64 { return x }
func (*adiSerial) checkpointPoint()      {}

// thomas solves (1+2σ)x_i − σ(x_{i−1}+x_{i+1}) = rhs_i in place.
func thomas(rhs []float64) {
	n := len(rhs)
	const a = -adiSigma
	b0 := 1 + 2*adiSigma
	cp := make([]float64, n)
	cp[0] = a / b0
	rhs[0] /= b0
	for i := 1; i < n; i++ {
		m := b0 - a*cp[i-1]
		cp[i] = a / m
		rhs[i] = (rhs[i] - a*rhs[i-1]) / m
	}
	for i := n - 2; i >= 0; i-- {
		rhs[i] -= cp[i] * rhs[i+1]
	}
}

// sweepX solves the x-direction systems of one block, with Dirichlet
// couplings from the neighbour faces folded into the RHS.
func sweepX(b *adiBlock, west, east []float64) {
	line := make([]float64, b.nxl)
	for k := 0; k < b.n; k++ {
		for j := 0; j < b.nyl; j++ {
			for v := 0; v < b.vars; v++ {
				for i := 0; i < b.nxl; i++ {
					line[i] = b.u[b.idx(k, j, i, v)]
				}
				if west != nil {
					line[0] += adiSigma * west[(k*b.nyl+j)*b.vars+v]
				}
				if east != nil {
					line[b.nxl-1] += adiSigma * east[(k*b.nyl+j)*b.vars+v]
				}
				thomas(line)
				for i := 0; i < b.nxl; i++ {
					b.u[b.idx(k, j, i, v)] = line[i]
				}
			}
		}
	}
}

func sweepY(b *adiBlock, north, south []float64) {
	line := make([]float64, b.nyl)
	for k := 0; k < b.n; k++ {
		for i := 0; i < b.nxl; i++ {
			for v := 0; v < b.vars; v++ {
				for j := 0; j < b.nyl; j++ {
					line[j] = b.u[b.idx(k, j, i, v)]
				}
				if north != nil {
					line[0] += adiSigma * north[(k*b.nxl+i)*b.vars+v]
				}
				if south != nil {
					line[b.nyl-1] += adiSigma * south[(k*b.nxl+i)*b.vars+v]
				}
				thomas(line)
				for j := 0; j < b.nyl; j++ {
					b.u[b.idx(k, j, i, v)] = line[j]
				}
			}
		}
	}
}

// sweepZ is fully local (z is not decomposed).
func sweepZ(b *adiBlock) {
	line := make([]float64, b.n)
	for j := 0; j < b.nyl; j++ {
		for i := 0; i < b.nxl; i++ {
			for v := 0; v < b.vars; v++ {
				for k := 0; k < b.n; k++ {
					line[k] = b.u[b.idx(k, j, i, v)]
				}
				thomas(line)
				for k := 0; k < b.n; k++ {
					b.u[b.idx(k, j, i, v)] = line[k]
				}
			}
		}
	}
}

// adiStep advances one timestep.
func adiStep(c adiComm, b *adiBlock) {
	w, e := c.exchangeX(b)
	sweepX(b, w, e)
	n, s := c.exchangeY(b)
	sweepY(b, n, s)
	sweepZ(b)
	// Forcing keeps the field from decaying to zero.
	for k := 0; k < b.n; k++ {
		for j := 0; j < b.nyl; j++ {
			for i := 0; i < b.nxl; i++ {
				for v := 0; v < b.vars; v++ {
					gx, gy := b.x0+i, b.y0+j
					b.u[b.idx(k, j, i, v)] += adiTau * math.Sin(0.05*float64(gx+gy+k+v+1))
				}
			}
		}
	}
}

// adiState is the checkpointable application state.
type adiState struct {
	It int
	U  []float64
}

func runADI(p *mpi.Proc, bm Benchmark) Result {
	q := Square(p.Size())
	if q*q != p.Size() {
		p.Abortf("%s requires a square number of processes, got %d", bm.Name, p.Size())
	}
	pi, pj := p.Rank()%q, p.Rank()/q
	c := &adiParallel{p: p, bm: bm, q: q, pi: pi, pj: pj}
	blk := adiInit(bm, q, pi, pj)

	st := adiState{U: blk.u}
	p.SetStateProvider(func() []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
			p.Abortf("encoding ADI state: %v", err)
		}
		return buf.Bytes()
	})
	if blob, restarted := p.Restarted(); restarted && blob != nil {
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
			p.Abortf("decoding ADI state: %v", err)
		}
		blk.u = st.U
	}

	for ; st.It < bm.Iters; st.It++ {
		c.checkpointPoint()
		c.charge()
		adiStep(c, blk)
		st.U = blk.u
	}
	var local float64
	for _, v := range blk.u {
		local += v * v
	}
	value := math.Sqrt(c.sum(local))
	ref := refValue(refKey("adi", bm.Name, bm.Class, q, bm.Iters), func() float64 { return adiSerialValue(bm, q) })
	return Result{Value: value, Verified: close(value, ref), Iters: bm.Iters}
}

// adiSerialValue runs the same partitioned scheme sequentially.
func adiSerialValue(bm Benchmark, q int) float64 {
	s := &adiSerial{q: q, blocks: make([][]*adiBlock, q)}
	for pj := 0; pj < q; pj++ {
		s.blocks[pj] = make([]*adiBlock, q)
		for pi := 0; pi < q; pi++ {
			s.blocks[pj][pi] = adiInit(bm, q, pi, pj)
		}
	}
	for it := 0; it < bm.Iters; it++ {
		// Jacobi-coupled sweeps: all x-exchanges happen against the
		// pre-sweep state, then all x-sweeps run, and likewise for y —
		// matching the simultaneous parallel exchange.
		type fpair struct{ w, e []float64 }
		fx := make([][]fpair, q)
		for pj := 0; pj < q; pj++ {
			fx[pj] = make([]fpair, q)
			for pi := 0; pi < q; pi++ {
				s.pi, s.pj = pi, pj
				w, e := s.exchangeX(s.blocks[pj][pi])
				fx[pj][pi] = fpair{w, e}
			}
		}
		for pj := 0; pj < q; pj++ {
			for pi := 0; pi < q; pi++ {
				sweepX(s.blocks[pj][pi], fx[pj][pi].w, fx[pj][pi].e)
			}
		}
		fy := make([][]fpair, q)
		for pj := 0; pj < q; pj++ {
			fy[pj] = make([]fpair, q)
			for pi := 0; pi < q; pi++ {
				s.pi, s.pj = pi, pj
				n, so := s.exchangeY(s.blocks[pj][pi])
				fy[pj][pi] = fpair{n, so}
			}
		}
		for pj := 0; pj < q; pj++ {
			for pi := 0; pi < q; pi++ {
				blk := s.blocks[pj][pi]
				sweepY(blk, fy[pj][pi].w, fy[pj][pi].e)
				sweepZ(blk)
				for k := 0; k < blk.n; k++ {
					for j := 0; j < blk.nyl; j++ {
						for i := 0; i < blk.nxl; i++ {
							for v := 0; v < blk.vars; v++ {
								gx, gy := blk.x0+i, blk.y0+j
								blk.u[blk.idx(k, j, i, v)] += adiTau * math.Sin(0.05*float64(gx+gy+k+v+1))
							}
						}
					}
				}
			}
		}
	}
	var total float64
	for pj := 0; pj < q; pj++ {
		for pi := 0; pi < q; pi++ {
			for _, v := range s.blocks[pj][pi].u {
				total += v * v
			}
		}
	}
	return math.Sqrt(total)
}
