package nas_test

import (
	"mpichv/internal/cluster"
	"mpichv/internal/mpi"
	"mpichv/internal/nas"
	"testing"
)

func TestMGP16(t *testing.T) {
	for _, impl := range []cluster.Impl{cluster.P4, cluster.V2} {
		for _, n := range []int{8, 16, 32} {
			b := nas.MG("A")
			results := make([]nas.Result, n)
			cluster.Run(cluster.Config{Impl: impl, N: n}, func(p *mpi.Proc) {
				results[p.Rank()] = b.Run(p, b)
			})
			for r, res := range results {
				if !res.Verified {
					t.Errorf("%v P=%d rank %d: value %v", impl, n, r, res.Value)
				}
			}
		}
	}
}
