package bench

import (
	"fmt"
	"io"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/dispatcher"
	"mpichv/internal/mpi"
	"mpichv/internal/nas"
	"mpichv/internal/sched"
)

// Figure 11: BT class A on 4 computing nodes with a single reliable
// node (checkpoint server + scheduler + event logger), the system
// always checkpointing some node (random selection), and 0–9 faults
// injected during the execution. The paper's findings: low overhead
// with no fault, smooth degradation with the fault count, and a 9-fault
// execution below twice the fault-free time.

// FaultyPoint is one point of the figure 11 sweep.
type FaultyPoint struct {
	Faults   int
	Elapsed  time.Duration
	Ratio    float64 // vs the 0-fault run
	Restarts int
	Ckpts    int64
	Verified bool
}

func faultyBT() nas.Benchmark {
	b := nas.BT("A")
	b.Iters = 25 // long enough for checkpoints and faults to interleave
	return b
}

// Figure11Data runs the fault sweep.
func Figure11Data(quick bool) []FaultyPoint {
	counts := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if quick {
		counts = []int{0, 2, 5}
	}
	b := faultyBT()
	base := runFaultyBT(b, nil, 1)
	out := []FaultyPoint{base}
	for _, k := range counts {
		if k == 0 {
			continue
		}
		// Faults spread across the fault-free duration, one every
		// E0/10 (the paper injects roughly one fault every 45 s of a
		// ~450 s run).
		var faults []dispatcher.Fault
		for i := 0; i < k; i++ {
			faults = append(faults, dispatcher.Fault{
				Time: time.Duration(i+1) * base.Elapsed / 10,
				Rank: int(uint(i*2654435761) % uint(4)),
			})
		}
		pt := runFaultyBT(b, faults, uint64(k))
		pt.Ratio = float64(pt.Elapsed) / float64(base.Elapsed)
		out = append(out, pt)
	}
	out[0].Ratio = 1
	return out
}

func runFaultyBT(b nas.Benchmark, faults []dispatcher.Fault, seed uint64) FaultyPoint {
	results := make([]nas.Result, 4)
	res := cluster.Run(cluster.Config{
		Impl:          cluster.V2,
		N:             4,
		Params:        paramsFor(b),
		Checkpointing: true,
		Policy:        sched.NewRandom(seed),
		SchedPeriod:   400 * time.Millisecond, // "the system is always checkpointing a node"
		Faults:        faults,
	}, func(p *mpi.Proc) {
		results[p.Rank()] = b.Run(p, b)
	})
	pt := FaultyPoint{
		Faults:   len(faults),
		Elapsed:  res.Elapsed,
		Restarts: res.Restarts,
		Ckpts:    res.CkptSaves,
		Verified: true,
	}
	for _, r := range results {
		if !r.Verified {
			pt.Verified = false
		}
	}
	return pt
}

// Figure11 regenerates the faulty-execution experiment.
func Figure11(w io.Writer, quick bool) error {
	t := newTable(w)
	t.row("faults", "time", "vs 0-fault", "restarts", "checkpoints", "verified")
	for _, pt := range Figure11Data(quick) {
		t.row(pt.Faults, pt.Elapsed.Round(time.Millisecond), fmt.Sprintf("%.2f", pt.Ratio),
			pt.Restarts, pt.Ckpts, pt.Verified)
	}
	t.flush()
	return nil
}
