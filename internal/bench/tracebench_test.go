package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestTraceExperimentReport pins the acceptance claims of the trace
// experiment: the traced run audits green, the report carries a full
// critical-path breakdown, and the structure survives the JSON
// marshalling vbench -json applies.
func TestTraceExperimentReport(t *testing.T) {
	rep, err := TraceData(true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AuditOK {
		t.Errorf("hb-audit failed: %s", rep.AuditSummary)
	}
	if rep.Events == 0 || rep.Dropped != 0 {
		t.Errorf("trace volume: %d events, %d dropped", rep.Events, rep.Dropped)
	}
	if rep.Restarts == 0 || rep.Replays == 0 {
		t.Errorf("scenario exercised no recovery: restarts=%d replays=%d", rep.Restarts, rep.Replays)
	}
	if len(rep.CriticalPath) != 4 {
		t.Fatalf("critical path rows = %d, want 4", len(rep.CriticalPath))
	}
	for _, r := range rep.CriticalPath {
		if r.TotalUS != r.ComputeUS+r.CommUS {
			t.Errorf("rank %d: total %dus != compute %dus + comm %dus", r.Rank, r.TotalUS, r.ComputeUS, r.CommUS)
		}
		if r.ComputeUS == 0 || r.CommUS == 0 {
			t.Errorf("rank %d: empty decomposition %+v", r.Rank, r)
		}
	}
	var elWait int64
	for _, r := range rep.CriticalPath {
		elWait += r.ELWaitUS
	}
	if elWait == 0 {
		t.Error("no rank ever waited on EL acks; the scenario lost its point")
	}
	if rep.ELWaitShare < 0 || rep.ELWaitShare >= 1 {
		t.Errorf("ELWaitShare = %g", rep.ELWaitShare)
	}
	if rep.Metrics.Counters["daemon.sent_msgs"] == 0 {
		t.Error("metrics snapshot missing daemon counters")
	}

	// The JSON twin (what vbench -json writes as BENCH_trace.json) must
	// include the breakdown fields by name.
	enc, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"CriticalPath", "ELWaitUS", "RecoveryUS", "TransferUS", "AuditSummary", "OverheadPct", "Metrics"} {
		if !bytes.Contains(enc, []byte(field)) {
			t.Errorf("BENCH_trace.json misses %q", field)
		}
	}
}

// TestTraceBenchTable smoke-tests the human-readable twin.
func TestTraceBenchTable(t *testing.T) {
	var buf bytes.Buffer
	if err := TraceBench(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"hb-audit", "el-wait", "recovery", "critical rank"} {
		if !strings.Contains(out, want) {
			t.Errorf("table misses %q:\n%s", want, out)
		}
	}
}
