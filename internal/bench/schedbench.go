package bench

import (
	"fmt"
	"io"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/mpi"
	"mpichv/internal/sched"
)

// SchedPolicies regenerates the §4.6.2 comparison: round-robin versus
// adaptive checkpoint scheduling over the four classical communication
// schemes, measured as mean checkpoint traffic and mean log occupancy.
// The paper: "the adaptive algorithm never provides a worse scheduling
// (w.r.t. bandwidth utilization) and often provides better scheduling
// (up to n times better ... for asynchronous broadcast)".
func SchedPolicies(w io.Writer, quick bool) error {
	n, ticks, period := 16, 4000, 25
	if quick {
		n, ticks = 8, 1000
	}
	t := newTable(w)
	t.row("scheme", "policy", "mean ckpt traffic", "mean log occupancy", "peak")
	results := sched.ComparePolicies(n, ticks, period)
	for _, r := range results {
		t.row(r.Scheme, r.Policy, fmt.Sprintf("%.0f", r.MeanCkptBytes),
			fmt.Sprintf("%.0f", r.MeanLogBytes), fmt.Sprintf("%.0f", r.PeakLogBytes))
	}
	t.flush()
	return nil
}

// Ablations prices the individual design choices of the V2 protocol:
//
//   - WAITLOGGED gating: the pessimistic barrier is what separates V2
//     from an optimistic logger; removing it recovers most of the
//     latency gap to P4 (and forfeits the replay guarantee).
//   - Payload routing: V1's Channel Memories versus V2's sender-based
//     direct path is the paper's headline bandwidth argument.
//   - Garbage collection: without checkpoint-driven GC, the sender logs
//     grow with the total traffic.
func Ablations(w io.Writer, quick bool) error {
	t := newTable(w)

	// 1. Send gating.
	lat := func(gating bool) time.Duration {
		var mean time.Duration
		cluster.Run(cluster.Config{Impl: cluster.V2, N: 2, NoSendGating: !gating}, func(p *mpi.Proc) {
			var t0 time.Duration
			for r := 0; r < 11; r++ {
				if p.Rank() == 0 {
					if r == 1 {
						t0 = p.Clock().Now()
					}
					p.Send(1, 7, nil)
					p.Recv(1, 8)
				} else {
					p.Recv(0, 7)
					p.Send(0, 8, nil)
				}
			}
			if p.Rank() == 0 {
				mean = (p.Clock().Now() - t0) / 10
			}
		})
		return mean / 2
	}
	withGate, withoutGate := lat(true), lat(false)
	t.row("ablation", "variant", "metric", "value")
	t.row("send-gating", "pessimistic (V2)", "one-way latency", withGate)
	t.row("send-gating", "no WAITLOGGED (optimistic-style)", "one-way latency", withoutGate)

	// 2. Payload routing (V1 channel memory vs V2 sender-based).
	ppV1 := PingPong(cluster.V1, 1<<20, 3)
	ppV2 := PingPong(cluster.V2, 1<<20, 3)
	t.row("payload-routing", "channel memory (V1)", "1MB bandwidth MB/s", fmt.Sprintf("%.2f", ppV1.MBperS))
	t.row("payload-routing", "sender-based (V2)", "1MB bandwidth MB/s", fmt.Sprintf("%.2f", ppV2.MBperS))

	// 3. Garbage collection: final log occupancy of a ring run with
	// and without checkpoint-driven GC.
	logBytes := func(ckpt bool) int64 {
		cfg := cluster.Config{Impl: cluster.V2, N: 4, Checkpointing: ckpt}
		if ckpt {
			cfg.SchedPeriod = 2 * time.Millisecond
		}
		res := cluster.Run(cfg, gcRingProgram(quick))
		var total int64
		for _, d := range res.Daemons {
			total += d.SentBytes - d.GCFreedBytes
		}
		return total
	}
	t.row("garbage-collection", "off (no checkpoints)", "residual log bytes", logBytes(false))
	t.row("garbage-collection", "on (checkpoint-driven)", "residual log bytes", logBytes(true))

	// 4. Event batching: messages on the wire for an incast burst.
	msgs := func(batching bool) int64 {
		res := cluster.Run(cluster.Config{Impl: cluster.V2, N: 4, EventBatching: batching}, incastProgram(30))
		return res.NetMessages
	}
	t.row("event-batching", "off (one frame per event)", "network messages", msgs(false))
	t.row("event-batching", "on (batch while in flight)", "network messages", msgs(true))
	t.flush()
	return nil
}

// incastProgram drains (size-1)×msgs messages on rank 0.
func incastProgram(msgs int) cluster.Program {
	return func(p *mpi.Proc) {
		if p.Rank() == 0 {
			for i := 0; i < (p.Size()-1)*msgs; i++ {
				p.Recv(mpi.AnySource, 1)
			}
		} else {
			for i := 0; i < msgs; i++ {
				p.Send(0, 1, []byte{byte(i)})
			}
		}
	}
}

func gcRingProgram(quick bool) cluster.Program {
	rounds := 150
	if quick {
		rounds = 30
	}
	return func(p *mpi.Proc) {
		n := p.Size()
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		buf := make([]byte, 4<<10)
		var state struct{ Round int }
		p.SetStateProvider(func() []byte { return []byte{byte(state.Round)} })
		for ; state.Round < rounds; state.Round++ {
			p.CheckpointPoint()
			p.Sendrecv(right, 1, buf, left, 1)
		}
	}
}
