package bench

import (
	"bytes"
	"testing"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/nas"
	"mpichv/internal/sched"
)

// These tests assert the qualitative findings of the paper's evaluation
// on the simulated testbed: who wins, by roughly what factor, and where
// the crossovers fall.

func TestFigure5Shape(t *testing.T) {
	data := Figure5Data(false)
	last := len(data[cluster.P4]) - 1
	p4 := data[cluster.P4][last].MBperS
	v1 := data[cluster.V1][last].MBperS
	v2 := data[cluster.V2][last].MBperS
	t.Logf("4MB bandwidth: P4=%.2f V1=%.2f V2=%.2f MB/s", p4, v1, v2)
	// Paper: P4 11.3, V2 10.7, V1 about half of P4.
	if p4 < 10.5 || p4 > 12 {
		t.Errorf("P4 bandwidth %.2f out of the calibrated 11.3 MB/s band", p4)
	}
	if v2 < 10 || v2 >= p4 {
		t.Errorf("V2 bandwidth %.2f should be just below P4 %.2f", v2, p4)
	}
	if v1 < 0.4*p4 || v1 > 0.6*p4 {
		t.Errorf("V1 bandwidth %.2f should be about half of P4 %.2f", v1, p4)
	}
}

func TestFigure6Shape(t *testing.T) {
	data := Figure6Data(false)
	p4 := data[cluster.P4][0].OneWay
	v1 := data[cluster.V1][0].OneWay
	v2 := data[cluster.V2][0].OneWay
	t.Logf("0-byte one-way latency: P4=%v V1=%v V2=%v", p4, v1, v2)
	within := func(d, want time.Duration) bool {
		return d > want*90/100 && d < want*110/100
	}
	if !within(p4, 77*time.Microsecond) {
		t.Errorf("P4 latency %v, calibration target 77µs", p4)
	}
	if !within(v2, 237*time.Microsecond) {
		t.Errorf("V2 latency %v, calibration target 237µs", v2)
	}
	if v1 <= p4 || v1 >= v2 {
		t.Errorf("V1 latency %v should fall between P4 %v and V2 %v", v1, p4, v2)
	}
}

func TestFigure9Shape(t *testing.T) {
	data := Figure9Data(false)
	find := func(impl cluster.Impl, size int) float64 {
		for _, r := range data[impl] {
			if r.Size == size {
				return r.MBperS
			}
		}
		t.Fatalf("missing size %d", size)
		return 0
	}
	// Paper: V2 reaches about twice the P4 bandwidth at 64 KB; P4
	// wins at small sizes where V2's latency dominates.
	r64 := find(cluster.V2, 64<<10) / find(cluster.P4, 64<<10)
	r1k := find(cluster.V2, 1<<10) / find(cluster.P4, 1<<10)
	t.Logf("V2/P4: 1KB=%.2f 64KB=%.2f", r1k, r64)
	if r64 < 1.5 {
		t.Errorf("V2 should approach 2x P4 at 64KB, got %.2f", r64)
	}
	if r1k > 1.0 {
		t.Errorf("P4 should win at 1KB, got V2/P4=%.2f", r1k)
	}
}

func TestFigure7Shape(t *testing.T) {
	// Quick subset: CG (latency-bound, V2 loses big), FT (bandwidth
	// bound, V2 close), BT (Isend/Waitall pattern, V2 at or above
	// P4). Paper figure 7.
	ratio := func(b nas.Benchmark, procs int) float64 {
		p4 := RunNAS(b, cluster.P4, procs, cluster.Config{})
		v2 := RunNAS(b, cluster.V2, procs, cluster.Config{})
		if !p4.Verified || !v2.Verified {
			t.Fatalf("%s unverified", b.ID())
		}
		return float64(v2.Elapsed) / float64(p4.Elapsed)
	}
	cg := ratio(nas.CG("A"), 8)
	ft := ratio(nas.FT("A"), 8)
	bt := ratio(nas.BT("A"), 9)
	t.Logf("V2/P4 time ratios: CG-A-8=%.2f FT-A-8=%.2f BT-A-9=%.2f", cg, ft, bt)
	if cg < 1.15 {
		t.Errorf("CG should suffer visibly on V2 (ratio %.2f)", cg)
	}
	if ft > 1.30 {
		t.Errorf("FT should stay close to P4 on V2 (ratio %.2f)", ft)
	}
	if bt > 1.05 {
		t.Errorf("BT should match or beat P4 on V2 (ratio %.2f)", bt)
	}
	if !(bt < ft || ft < cg) && !(bt < cg) {
		t.Errorf("ordering should trend BT ≤ FT < CG, got %v %v %v", bt, ft, cg)
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1Data(true)
	// rows: BT-P4, BT-V2, CG-P4, CG-V2.
	btP4, btV2, cgP4, cgV2 := rows[0], rows[1], rows[2], rows[3]
	t.Logf("BT: P4 send=%v wait=%v | V2 send=%v wait=%v", btP4.Send, btP4.Wait, btV2.Send, btV2.Wait)
	t.Logf("CG: P4 total=%v | V2 total=%v", cgP4.Total, cgV2.Total)
	// Paper: P4 spends its time in (I)send, V2 in Wait.
	if btP4.Send < btP4.Wait {
		t.Errorf("P4 BT should be Isend-heavy: send=%v wait=%v", btP4.Send, btP4.Wait)
	}
	if btV2.Wait < btV2.Send {
		t.Errorf("V2 BT should be Wait-heavy: send=%v wait=%v", btV2.Send, btV2.Wait)
	}
	// Paper: V2 increases CG communication time by about 3x (we allow
	// a broad band), and V2 beats P4 on BT's communication total.
	cgRatio := float64(cgV2.Total) / float64(cgP4.Total)
	if cgRatio < 1.5 {
		t.Errorf("V2 should inflate CG comm time substantially, got %.2fx", cgRatio)
	}
	if btV2.Total >= btP4.Total {
		t.Errorf("V2 should lower BT comm total (P4 %v, V2 %v)", btP4.Total, btV2.Total)
	}
}

func TestFigure10Shape(t *testing.T) {
	one := Reexec(1<<10, 1)
	all := Reexec(1<<10, 8)
	r1 := float64(one.Reexec) / float64(one.Reference)
	r8 := float64(all.Reexec) / float64(all.Reference)
	t.Logf("re-execution ratios at 1KB: x=1 %.2f, x=8 %.2f", r1, r8)
	// Paper: one restart re-executes in about half the reference time;
	// all-restart stays below the reference.
	if r1 > 0.75 {
		t.Errorf("single-restart ratio %.2f should be well below 1 (paper ≈ 0.5)", r1)
	}
	if r8 >= 1.0 {
		t.Errorf("8-restart ratio %.2f should stay below the reference", r8)
	}
	if r1 >= r8 {
		t.Errorf("re-execution should grow with restarts: x1=%.2f x8=%.2f", r1, r8)
	}

	// Rendezvous knee: the reference per-byte time jumps between 64KB
	// and 128KB.
	e64 := Reexec(64<<10, 0).Reference
	e128 := Reexec(128<<10, 0).Reference
	perByte64 := float64(e64) / float64(64<<10)
	perByte128 := float64(e128) / float64(128<<10)
	t.Logf("per-byte reference: 64KB=%.2f 128KB=%.2f", perByte64, perByte128)
	if perByte128 < perByte64 {
		t.Errorf("eager→rendezvous switch should show between 64KB and 128KB")
	}
}

func TestFigure11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 11 sweep is slow")
	}
	pts := Figure11Data(true)
	for _, pt := range pts {
		if !pt.Verified {
			t.Errorf("faults=%d: result failed verification", pt.Faults)
		}
		t.Logf("faults=%d time=%v ratio=%.2f restarts=%d ckpts=%d",
			pt.Faults, pt.Elapsed.Round(time.Millisecond), pt.Ratio, pt.Restarts, pt.Ckpts)
	}
	last := pts[len(pts)-1]
	if last.Ratio >= 2.0 {
		t.Errorf("%d faults should stay under 2x the fault-free time, got %.2fx", last.Faults, last.Ratio)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Ratio < 0.95 {
			t.Errorf("faulty run %d faster than fault-free (%.2f)", pts[i].Faults, pts[i].Ratio)
		}
	}
}

func TestSchedulerPolicyClaim(t *testing.T) {
	n := 16
	results := sched.ComparePolicies(n, 4000, 25)
	byKey := map[string]sched.SimResult{}
	for _, r := range results {
		byKey[r.Scheme+"/"+r.Policy] = r
	}
	for _, scheme := range []string{"point-to-point", "all-to-all", "broadcast", "reduce"} {
		rr := byKey[scheme+"/round-robin"]
		ad := byKey[scheme+"/adaptive"]
		t.Logf("%s: rr ckpt=%.0f log=%.0f | adaptive ckpt=%.0f log=%.0f",
			scheme, rr.MeanCkptBytes, rr.MeanLogBytes, ad.MeanCkptBytes, ad.MeanLogBytes)
		// "never provides a worse scheduling" (checkpoint traffic).
		if ad.MeanCkptBytes > rr.MeanCkptBytes*1.01 {
			t.Errorf("%s: adaptive ckpt traffic %.0f worse than round-robin %.0f",
				scheme, ad.MeanCkptBytes, rr.MeanCkptBytes)
		}
	}
	// "up to n times better ... for asynchronous broadcast".
	rr := byKey["broadcast/round-robin"]
	ad := byKey["broadcast/adaptive"]
	if ad.MeanCkptBytes*2 > rr.MeanCkptBytes {
		t.Errorf("broadcast: adaptive %.0f should be far below round-robin %.0f",
			ad.MeanCkptBytes, rr.MeanCkptBytes)
	}
}

func TestELRepQuorumSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos BT sweep takes a while")
	}
	for _, pt := range ELRepData(true) {
		if !pt.Verified {
			t.Errorf("R=%d Q=%d: numerics failed verification", pt.Replicas, pt.Quorum)
		}
		// Quick mode runs only majority quorums, which must always pass
		// the recovery audit — a replica loss may cost redundancy, never
		// a logged event.
		if !pt.AuditOK {
			t.Errorf("R=%d Q=%d: %s", pt.Replicas, pt.Quorum, pt.Audit)
		}
		if pt.Replicas >= 2 && pt.Synced == 0 {
			t.Errorf("R=%d Q=%d: killed replica resynced nothing from its peers", pt.Replicas, pt.Quorum)
		}
	}
}

func TestPerfWindowShape(t *testing.T) {
	// The pipelined determinant window must beat stop-and-wait on the
	// latency-bound small-message burst (where logger round-trips
	// dominate) and never lose anywhere: a deeper window can only
	// overlap waits that stop-and-wait serializes.
	pts := PerfData(true)
	byKey := func(size, window int, batching bool) PerfPoint {
		for _, pt := range pts {
			if pt.Size == size && pt.Window == window && pt.Batching == batching {
				return pt
			}
		}
		t.Fatalf("missing point size=%d window=%d batching=%v", size, window, batching)
		return PerfPoint{}
	}
	small := byKey(0, 8, false)
	t.Logf("0B window=8: %.2fx vs stop-and-wait", small.Speedup)
	if small.Speedup < 1.5 {
		t.Errorf("window=8 speedup %.2fx at 0B, want ≥ 1.5x over stop-and-wait", small.Speedup)
	}
	for _, pt := range pts {
		if pt.Speedup < 0.99 {
			t.Errorf("size=%d window=%d batching=%v: pipelining SLOWED the run (%.2fx)",
				pt.Size, pt.Window, pt.Batching, pt.Speedup)
		}
		if pt.Events == 0 || pt.ELWaits == 0 {
			t.Errorf("size=%d window=%d batching=%v: workload did not stress WAITLOGGED (events=%d waits=%d)",
				pt.Size, pt.Window, pt.Batching, pt.Events, pt.ELWaits)
		}
	}
}

func TestDetSuppShape(t *testing.T) {
	// The suppression acceptance bar: on a deterministic ring the
	// adaptive classifier must log strictly fewer determinants per
	// message than the pessimistic baseline — at least a 2× reduction —
	// and the time spent blocked in WAITLOGGED must drop with it. This
	// is the CI gate bench-smoke runs.
	pts := DetSuppData(true)
	byKey := func(mode string, size int) DetSuppPoint {
		for _, pt := range pts {
			if pt.Mode == mode && pt.Size == size {
				return pt
			}
		}
		t.Fatalf("missing point mode=%s size=%d", mode, size)
		return DetSuppPoint{}
	}
	for _, size := range []int{0, 4 << 10} {
		off, adaptive := byKey("off", size), byKey("adaptive", size)
		if off.Forced == 0 {
			t.Fatalf("size=%d: baseline logged no gated determinants; the workload is broken", size)
		}
		if adaptive.ForcedPerMsg >= off.ForcedPerMsg {
			t.Errorf("size=%d: adaptive forced %.3f determinants/msg, baseline %.3f — no reduction",
				size, adaptive.ForcedPerMsg, off.ForcedPerMsg)
		}
		if adaptive.Forced*2 > off.Forced {
			t.Errorf("size=%d: adaptive forced %d determinants vs baseline %d, want ≥ 2× reduction",
				size, adaptive.Forced, off.Forced)
		}
		if adaptive.Suppressed == 0 {
			t.Errorf("size=%d: adaptive suppressed nothing", size)
		}
		if adaptive.ELWaitUS >= off.ELWaitUS && off.ELWaitUS > 0 {
			t.Errorf("size=%d: WAITLOGGED time did not drop (adaptive %dµs vs off %dµs)",
				size, adaptive.ELWaitUS, off.ELWaitUS)
		}
		t.Logf("size=%d: forced/msg %.3f → %.3f, el-wait %dµs → %dµs, speedup %.2fx",
			size, off.ForcedPerMsg, adaptive.ForcedPerMsg, off.ELWaitUS, adaptive.ELWaitUS, adaptive.Speedup)
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes a while")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, true); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			t.Logf("\n%s", buf.String())
		})
	}
}

func TestCkptBenchShape(t *testing.T) {
	// The delta acceptance bar: on the steady-state mostly-stable SAVED
	// log, delta shipping must cut the bytes pushed per checkpoint at
	// least in half, and must cost nothing when it is switched off —
	// delta-off monolithic and delta-off chunked are the same bytes at
	// drop 0 up to per-chunk framing.
	pts := CkptBenchData(true)
	byKey := func(chunk int, delta bool, drop float64) CkptPoint {
		for _, pt := range pts {
			if pt.Chunk == chunk && pt.Delta == delta && pt.Drop == drop {
				return pt
			}
		}
		t.Fatalf("missing point chunk=%d delta=%v drop=%v", chunk, delta, drop)
		return CkptPoint{}
	}
	for _, pt := range pts {
		if pt.Ckpts == 0 {
			t.Errorf("chunk=%d delta=%v drop=%v: no checkpoints completed", pt.Chunk, pt.Delta, pt.Drop)
		}
		if pt.Delta && pt.DeltaCkpts == 0 {
			t.Errorf("chunk=%d drop=%v: delta mode never shipped a delta", pt.Chunk, pt.Drop)
		}
		if !pt.Delta && pt.DeltaCkpts != 0 {
			t.Errorf("chunk=%d drop=%v: %d deltas with delta shipping off", pt.Chunk, pt.Drop, pt.DeltaCkpts)
		}
		if pt.Delta && pt.Reduction < 2 {
			t.Errorf("chunk=%d drop=%v: delta reduction %.2fx, want ≥ 2x", pt.Chunk, pt.Drop, pt.Reduction)
		}
		t.Logf("log=%dKB chunk=%d delta=%v drop=%.1f%%: %d ckpts, %dB/ckpt, %.1fx, retrans=%d",
			pt.LogKB, pt.Chunk, pt.Delta, pt.Drop*100, pt.Ckpts, pt.BytesPerCkpt, pt.Reduction, pt.Retrans)
	}
	mono := byKey(-1, false, 0)
	chunked := byKey(1024, false, 0)
	if chunked.BytesPerCkpt > mono.BytesPerCkpt*110/100 {
		t.Errorf("chunked delta-off ships %dB/ckpt vs monolithic %dB/ckpt; framing overhead above 10%%",
			chunked.BytesPerCkpt, mono.BytesPerCkpt)
	}
}
