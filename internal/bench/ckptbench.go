package bench

import (
	"fmt"
	"io"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/mpi"
	"mpichv/internal/transport"
)

// Ckpt experiment: the checkpoint data path, swept over SAVED-log size,
// chunk size, delta shipping and link quality. The workload is the
// steady-state the delta encoding was built for: rank 0 accumulates a
// sender-side payload log in a warm-up burst, then checkpoints
// frequently while its receiver checkpoints rarely — so the log is
// large, mostly stable, and un-GC'd. A full image re-ships that backlog
// on every checkpoint; a delta ships only the handful of entries
// appended since the last acked one. Chunking prices the transfer under
// loss: monolithic images re-send whole, chunked transfers re-send only
// the missing chunks.

// CkptPoint is one (log size, chunk, delta, drop) point of the sweep.
type CkptPoint struct {
	LogKB        int     // steady-state SAVED-log size on the sender
	Chunk        int     // chunk size in bytes; -1 = monolithic, 0 = default
	Delta        bool    // delta SAVED-log shipping enabled
	Drop         float64 // frame drop probability
	Ckpts        int64   // checkpoints completed by the daemons
	Shipped      int64   // bytes the daemons pushed for those checkpoints
	BytesPerCkpt int64
	Reduction    float64 // bytes/ckpt vs delta-off at same geometry
	DeltaCkpts   int64   // checkpoints that went out as deltas
	Retrans      int64   // chunk retransmissions (chunked modes only)
	Elapsed      time.Duration
}

const (
	ckptWarmMsg  = 512 // warm-up message size: the log the base image carries
	ckptSteadyMs = 32  // steady-state message size: what each delta carries
)

// ckptBenchRun measures one point. Two ranks: rank 0 builds its SAVED
// log with warm-up sends, then runs paced request/reply rounds with a
// checkpoint safe point every round; rank 1 reaches a safe point only
// once near the end, so its KCkptNote horizon never garbage-collects
// the warm-up backlog out of rank 0's snapshots mid-sweep.
func ckptBenchRun(logBytes, chunk int, delta bool, drop float64, rounds int) CkptPoint {
	warm := logBytes / ckptWarmMsg
	pol := transport.ChaosPolicy{}
	if drop > 0 {
		pol = transport.ChaosPolicy{Seed: 41, Drop: drop}
	}
	res := cluster.Run(cluster.Config{
		Impl: cluster.V2, N: 2,
		Checkpointing: true,
		SchedPeriod:   500 * time.Microsecond,
		CkptChunk:     chunk,
		CkptNoDelta:   !delta,
		Chaos:         pol,
	}, func(p *mpi.Proc) {
		state := make([]byte, 64)
		p.SetStateProvider(func() []byte { return state })
		small := make([]byte, ckptSteadyMs)
		if p.Rank() == 0 {
			buf := make([]byte, ckptWarmMsg)
			for i := 0; i < warm; i++ {
				p.Send(1, 1, buf)
			}
			for r := 0; r < rounds; r++ {
				p.CheckpointPoint()
				p.ComputeTime(300 * time.Microsecond)
				p.Send(1, 2, small)
				p.Recv(1, 3)
			}
		} else {
			for i := 0; i < warm; i++ {
				p.Recv(0, 1)
			}
			for r := 0; r < rounds; r++ {
				if r == rounds-1 {
					p.CheckpointPoint()
				}
				p.Recv(0, 2)
				p.Send(0, 3, small)
			}
		}
	})
	pt := CkptPoint{
		LogKB:   logBytes >> 10,
		Chunk:   chunk,
		Delta:   delta,
		Drop:    drop,
		Elapsed: res.Elapsed,
	}
	for _, d := range res.Daemons {
		pt.Ckpts += d.Checkpoints
		pt.Shipped += d.CkptBytes
		pt.DeltaCkpts += d.DeltaCkpts
		pt.Retrans += d.ChunkRetransmits
	}
	if pt.Ckpts > 0 {
		pt.BytesPerCkpt = pt.Shipped / pt.Ckpts
	}
	return pt
}

// CkptBenchData runs the sweep. Delta-off is always first at each
// (log size, chunk, drop) so it anchors the Reduction column.
func CkptBenchData(quick bool) []CkptPoint {
	logs := []int{4 << 10, 32 << 10}
	chunks := []int{-1, 0, 1024} // monolithic, default (16KB), small
	drops := []float64{0, 0.01}
	// The scheduler cycle is SchedPeriod plus its 5ms status reply
	// window, and round-robin spends every other order on the receiver;
	// the steady phase must span many ~11ms sender-checkpoint intervals.
	rounds := 400
	if quick {
		logs = []int{16 << 10}
		chunks = []int{-1, 1024}
		drops = []float64{0, 0.01}
		rounds = 250
	}
	var out []CkptPoint
	for _, logBytes := range logs {
		for _, chunk := range chunks {
			for _, drop := range drops {
				var base int64
				for _, delta := range []bool{false, true} {
					pt := ckptBenchRun(logBytes, chunk, delta, drop, rounds)
					if !delta {
						base = pt.BytesPerCkpt
					}
					if pt.BytesPerCkpt > 0 {
						pt.Reduction = float64(base) / float64(pt.BytesPerCkpt)
					}
					out = append(out, pt)
				}
			}
		}
	}
	return out
}

// chunkLabel renders the chunk-size axis.
func chunkLabel(c int) string {
	switch {
	case c < 0:
		return "mono"
	case c == 0:
		return "default"
	}
	return sizeLabel(c)
}

// CkptBench regenerates the checkpoint data-path sweep.
func CkptBench(w io.Writer, quick bool) error {
	pts := CkptBenchData(quick)
	t := newTable(w)
	t.row("log", "chunk", "delta", "drop", "ckpts", "shipped", "bytes/ckpt", "vs full", "deltas", "retrans", "time")
	for _, pt := range pts {
		t.row(sizeLabel(pt.LogKB<<10), chunkLabel(pt.Chunk), pt.Delta,
			fmt.Sprintf("%.1f%%", pt.Drop*100), pt.Ckpts, pt.Shipped, pt.BytesPerCkpt,
			fmt.Sprintf("%.1fx", pt.Reduction), pt.DeltaCkpts, pt.Retrans,
			pt.Elapsed.Round(time.Microsecond))
	}
	t.flush()
	fmt.Fprintf(w, "steady-state sender log held by a rarely-checkpointing receiver; 64B app state, %dB steady messages\n", ckptSteadyMs)
	return nil
}
