package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/dispatcher"
	"mpichv/internal/mpi"
	"mpichv/internal/trace"
	"mpichv/internal/transport"
)

// Trace experiment: the observability subsystem turned on itself. One
// seeded chaos scenario (quorum logging, chunked checkpointing, a
// mid-run kill) runs twice — untraced and traced — pricing the tracing
// overhead, then the traced run's causal record is fed through the
// happens-before auditor and the critical-path extractor to report
// where the virtual time of the slowest rank actually went: compute,
// EL ack stalls, recovery, or transfer.

// TracePathRow is one rank's critical-path decomposition, in
// microseconds for stable JSON.
type TracePathRow struct {
	Rank       int
	ComputeUS  int64
	CommUS     int64
	ELWaitUS   int64
	RecoveryUS int64
	TransferUS int64
	TotalUS    int64
}

// TraceReport is the structured result (BENCH_trace.json).
type TraceReport struct {
	// Overhead: same scenario with tracing off and on. The traced run
	// carries span ids on the wire, so a small virtual-time delta is
	// expected; OverheadPct prices it. A single seed is too noisy to
	// price: the extra header bytes perturb the chaos schedule, and the
	// perturbed run can land FASTER by luck — a negative "overhead" that
	// is timing divergence, not a measurement. The experiment therefore
	// runs Samples seed-varied pairs after a discarded warm-up pair,
	// reports the medians, and floors OverheadPct at zero;
	// RawOverheadPct keeps the unfloored median for the record.
	UntracedUS     int64
	TracedUS       int64
	OverheadPct    float64
	RawOverheadPct float64
	Samples        int

	// Trace volume.
	Events  int
	Dropped int64

	// Happens-before audit verdict over the traced run.
	AuditOK      bool
	AuditSummary string

	// Protocol transition counts.
	Sends      int
	Deliveries int
	Durables   int
	Replays    int
	Restarts   int

	// Critical path: per-rank decomposition plus the slowest rank and
	// the share of its time spent waiting on event-logger acks.
	CriticalPath []TracePathRow
	CriticalRank int
	ELWaitShare  float64

	// The run's uniform metrics registry.
	Metrics trace.Snapshot
}

// traceScenario is the workload both runs share: a token ring under
// seeded link chaos with quorum event logging, continuous chunked
// checkpointing and one mid-run kill, so the trace exercises every
// recorded transition (send, deliver, durable, waitlogged, ckpt,
// gc-note, replay, restart).
func traceScenario(rounds int, traced bool, seed uint64) (cluster.Result, []uint64) {
	finals := make([]uint64, 4)
	res := cluster.Run(cluster.Config{
		Impl: cluster.V2, N: 4,
		ELReplicas:     3,
		Checkpointing:  true,
		SchedPeriod:    2 * time.Millisecond,
		CkptChunk:      64,
		DetectionDelay: 2 * time.Millisecond,
		Chaos:          transport.ChaosPolicy{Seed: seed, Drop: 0.01, Delay: 0.02, MaxDelay: 200 * time.Microsecond},
		Faults:         []dispatcher.Fault{{Time: 12 * time.Millisecond, Rank: 2}},
		Trace:          traced,
	}, traceRing(rounds, finals))
	return res, finals
}

// traceRing is a checkpointable token ring: each round passes the
// accumulating token and burns some compute so the critical-path
// extractor has a nonzero Compute bucket to decompose against.
func traceRing(rounds int, finals []uint64) cluster.Program {
	return func(p *mpi.Proc) {
		n := p.Size()
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		state := struct {
			Round int
			Token uint64
		}{}
		p.SetStateProvider(func() []byte {
			buf := make([]byte, 16)
			binary.BigEndian.PutUint64(buf, uint64(state.Round))
			binary.BigEndian.PutUint64(buf[8:], state.Token)
			return buf
		})
		if blob, restarted := p.Restarted(); restarted && blob != nil {
			state.Round = int(binary.BigEndian.Uint64(blob))
			state.Token = binary.BigEndian.Uint64(blob[8:])
		}
		buf := make([]byte, 8)
		for ; state.Round < rounds; state.Round++ {
			p.CheckpointPoint()
			p.Compute(5e4)
			if p.Rank() == 0 {
				binary.BigEndian.PutUint64(buf, state.Token+1)
				p.Send(right, 1, buf)
				b, _ := p.Recv(left, 1)
				state.Token = binary.BigEndian.Uint64(b)
			} else {
				b, _ := p.Recv(left, 1)
				state.Token = binary.BigEndian.Uint64(b) + 1
				binary.BigEndian.PutUint64(buf, state.Token)
				p.Send(right, 1, buf)
			}
		}
		finals[p.Rank()] = state.Token
	}
}

// TraceData runs the experiment and returns the structured report.
func TraceData(quick bool) (TraceReport, error) {
	rounds := 40
	samples := 5
	if quick {
		rounds = 15
		samples = 3
	}

	// Warm-up pair, discarded: it touches every code path once so the
	// measured pairs all run against the same process state.
	traceScenario(rounds, false, 40)
	traceScenario(rounds, true, 40)

	// Seed-varied sample pairs. The median untraced/traced times damp
	// the per-seed divergence a single chaotic schedule bakes in.
	var plainUS, tracedUS, overheads []float64
	var traced cluster.Result
	for i := 0; i < samples; i++ {
		seed := uint64(41 + i)
		plain, pf := traceScenario(rounds, false, seed)
		tr, tf := traceScenario(rounds, true, seed)
		for r := range pf {
			if pf[r] != tf[r] {
				return TraceReport{}, fmt.Errorf("tracing changed the computation: rank %d %d vs %d", r, tf[r], pf[r])
			}
		}
		plainUS = append(plainUS, float64(plain.Elapsed.Microseconds()))
		tracedUS = append(tracedUS, float64(tr.Elapsed.Microseconds()))
		overheads = append(overheads, 100*(float64(tr.Elapsed)-float64(plain.Elapsed))/float64(plain.Elapsed))
		if i == 0 {
			traced = tr // seed 41: the canonical trace for audit + critical path
		}
	}
	rawOverhead := median(overheads)

	hb := trace.AuditHB(traced.Trace)
	rows := trace.ExtractCriticalPath(traced.Trace, traced.PerRank)
	crit := trace.CriticalRank(rows)

	rep := TraceReport{
		UntracedUS:     int64(median(plainUS)),
		TracedUS:       int64(median(tracedUS)),
		OverheadPct:    max(0, rawOverhead),
		RawOverheadPct: rawOverhead,
		Samples:        samples,
		Events:         len(traced.Trace.Evs),
		Dropped:      traced.Trace.Dropped,
		AuditOK:      hb.OK(),
		AuditSummary: hb.Summary(),
		Sends:        hb.Sends,
		Deliveries:   hb.Deliveries,
		Durables:     hb.Durables,
		Replays:      hb.Replays,
		Restarts:     traced.Restarts,
		CriticalRank: crit,
		Metrics:      traced.Metrics.Snapshot(),
	}
	for _, row := range rows {
		rep.CriticalPath = append(rep.CriticalPath, TracePathRow{
			Rank:       row.Rank,
			ComputeUS:  row.Compute.Microseconds(),
			CommUS:     row.Comm.Microseconds(),
			ELWaitUS:   row.ELWait.Microseconds(),
			RecoveryUS: row.Recovery.Microseconds(),
			TransferUS: row.Transfer.Microseconds(),
			TotalUS:    row.Total().Microseconds(),
		})
	}
	if total := rows[crit].Total(); total > 0 {
		rep.ELWaitShare = float64(rows[crit].ELWait) / float64(total)
	}
	return rep, nil
}

// median of a sample set; the input is not preserved.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	if n := len(xs); n%2 == 1 {
		return xs[n/2]
	} else {
		return (xs[n/2-1] + xs[n/2]) / 2
	}
}

// TraceBench regenerates the observability experiment as a table.
func TraceBench(w io.Writer, quick bool) error {
	rep, err := TraceData(quick)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "untraced %dus, traced %dus (overhead %.2f%%, raw median %.2f%% of %d pairs), %d events (%d dropped)\n",
		rep.UntracedUS, rep.TracedUS, rep.OverheadPct, rep.RawOverheadPct, rep.Samples, rep.Events, rep.Dropped)
	fmt.Fprintf(w, "%s\n", rep.AuditSummary)
	t := newTable(w)
	t.row("rank", "compute", "comm", "el-wait", "recovery", "transfer", "total")
	for _, r := range rep.CriticalPath {
		mark := ""
		if r.Rank == rep.CriticalRank {
			mark = " *"
		}
		t.row(fmt.Sprintf("%d%s", r.Rank, mark),
			fmt.Sprintf("%dus", r.ComputeUS), fmt.Sprintf("%dus", r.CommUS),
			fmt.Sprintf("%dus", r.ELWaitUS), fmt.Sprintf("%dus", r.RecoveryUS),
			fmt.Sprintf("%dus", r.TransferUS), fmt.Sprintf("%dus", r.TotalUS))
	}
	t.flush()
	fmt.Fprintf(w, "* critical rank; %.1f%% of its time is EL ack wait\n", 100*rep.ELWaitShare)
	return nil
}
