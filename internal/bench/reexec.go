package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/dispatcher"
	"mpichv/internal/mpi"
)

// Figure 10: re-execution performance. An asynchronous token ring runs
// on 8 nodes (event logger on a reliable node, checkpointing disabled);
// x nodes are stopped just before MPI_Finalize and restarted from the
// beginning, and we measure their completion time. The paper finds the
// 1-restart time to be about half the reference (only receptions are
// replayed: re-executed emissions are suppressed by the HS vector), the
// x=8 time just below the reference (event-logger traffic is not
// replayed), and a knee between 64 KB and 128 KB where the protocol
// switches from eager to rendezvous.

const (
	reexecNodes  = 8
	reexecRounds = 24
)

// ringAsync is the paper's asynchronous token ring: every node
// circulates its own token simultaneously — a non-blocking send to the
// right, a blocking receive from the left, then the send completion.
// Per round each node performs exactly one emission and one reception,
// which is what makes the single-restart re-execution about half the
// reference: only the receptions are replayed.
func ringAsync(size, rounds int) cluster.Program {
	return func(p *mpi.Proc) {
		n := p.Size()
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		var token uint64
		for r := 0; r < rounds; r++ {
			buf := make([]byte, size)
			binary.BigEndian.PutUint64(buf, token+1)
			sr := p.Isend(right, 1, buf)
			b, _ := p.Recv(left, 1)
			token = binary.BigEndian.Uint64(b)
			p.Wait(sr)
		}
	}
}

// ReexecPoint is one (size, restarts) measurement.
type ReexecPoint struct {
	Size      int
	Restarts  int
	Reference time.Duration // fault-free completion time
	Reexec    time.Duration // completion time of the restarted nodes
}

// Reexec measures the re-execution time for x simultaneous restarts at
// ~95% of the reference execution.
func Reexec(size, restarts int) ReexecPoint {
	prog := ringAsync(size, reexecRounds)
	ref := cluster.Run(cluster.Config{Impl: cluster.V2, N: reexecNodes}, prog)
	pt := ReexecPoint{Size: size, Restarts: restarts, Reference: ref.Elapsed}
	if restarts == 0 {
		pt.Reexec = 0
		return pt
	}
	killT := ref.Elapsed * 95 / 100
	detect := time.Millisecond
	var faults []dispatcher.Fault
	for x := 0; x < restarts; x++ {
		faults = append(faults, dispatcher.Fault{Time: killT, Rank: x})
	}
	res := cluster.Run(cluster.Config{
		Impl: cluster.V2, N: reexecNodes,
		Faults:         faults,
		DetectionDelay: detect,
	}, prog)
	pt.Reexec = res.Elapsed - killT - detect
	return pt
}

// Figure10Data sweeps message sizes and restart counts.
func Figure10Data(quick bool) []ReexecPoint {
	sizes := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 128 << 10, 256 << 10, 1 << 20}
	restarts := []int{0, 1, 2, 4, 8}
	if quick {
		sizes = []int{4 << 10, 128 << 10}
		restarts = []int{0, 1, 8}
	}
	var out []ReexecPoint
	for _, sz := range sizes {
		for _, x := range restarts {
			out = append(out, Reexec(sz, x))
		}
	}
	return out
}

// Figure10 regenerates the re-execution comparison.
func Figure10(w io.Writer, quick bool) error {
	t := newTable(w)
	t.row("size", "restarts", "reference", "re-execution", "ratio")
	for _, pt := range Figure10Data(quick) {
		ratio := "-"
		if pt.Restarts > 0 {
			ratio = fmt.Sprintf("%.2f", float64(pt.Reexec)/float64(pt.Reference))
		}
		t.row(sizeLabel(pt.Size), pt.Restarts, pt.Reference.Round(time.Millisecond),
			pt.Reexec.Round(time.Millisecond), ratio)
	}
	t.flush()
	return nil
}
