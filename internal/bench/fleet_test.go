package bench

import "testing"

// TestFleetShape is the bench-fleet smoke gate: sharding the event-logger
// fleet must buy real determinant throughput (≥2× at 4 shards vs 1 on the
// quick workload), with every row audit-green.
func TestFleetShape(t *testing.T) {
	const ranks, fan, rounds = 16, 8, 6
	base := fleetRun(1, ranks, fan, rounds)
	four := fleetRun(4, ranks, fan, rounds)
	for _, pt := range []FleetPoint{base, four} {
		if !pt.AuditOK {
			t.Fatalf("%d shards: audits failed", pt.Shards)
		}
		if pt.Events == 0 {
			t.Fatalf("%d shards: no determinants logged", pt.Shards)
		}
	}
	if four.DetPerSec < 2*base.DetPerSec {
		t.Errorf("4-shard determinant throughput %.0f/s < 2× the 1-shard %.0f/s",
			four.DetPerSec, base.DetPerSec)
	}
	t.Logf("dets/s: 1 shard %.0f, 4 shards %.0f (%.2fx)",
		base.DetPerSec, four.DetPerSec, four.DetPerSec/base.DetPerSec)
}

// TestFleetParSchedulesIdentical is the determinism half of the gate: the
// serial and parallel vtime cores must produce byte-identical schedules
// (equal FNV-1a hashes over the (at, seq, lane) stream) across several
// workload shapes, and both delivery logs must pass the auditor.
func TestFleetParSchedulesIdentical(t *testing.T) {
	shapes := []struct {
		lanes, steps, fan int
	}{
		{64, 6, 2},
		{96, 5, 3},
		{128, 4, 4},
	}
	for _, sh := range shapes {
		serial := fleetParRun(sh.lanes, 1, sh.steps, sh.fan)
		par := fleetParRun(sh.lanes, 4, sh.steps, sh.fan)
		if serial.ScheduleHash != par.ScheduleHash {
			t.Errorf("lanes=%d: schedule diverged: serial %s, parallel %s",
				sh.lanes, serial.ScheduleHash, par.ScheduleHash)
		}
		if serial.Events != par.Events {
			t.Errorf("lanes=%d: event counts diverged: %d vs %d",
				sh.lanes, serial.Events, par.Events)
		}
		if !serial.AuditOK || !par.AuditOK {
			t.Errorf("lanes=%d: delivery audit failed (serial %v, parallel %v)",
				sh.lanes, serial.AuditOK, par.AuditOK)
		}
	}
}
