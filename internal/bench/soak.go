package bench

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"mpichv/internal/deploy"
	"mpichv/internal/transport"
)

// soakWorkerExe resolves the worker executable for the soak harness.
// MPICHV_SOAK_EXE overrides (CI points it at a prebuilt binary);
// otherwise cmd/soak is built into a temp dir. Never os.Executable():
// inside `go test` that is the test binary, and spawning it as a
// worker would recurse into the whole suite.
func soakWorkerExe() (string, func(), error) {
	if exe := os.Getenv("MPICHV_SOAK_EXE"); exe != "" {
		return exe, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "mpichv-soak-exe-*")
	if err != nil {
		return "", nil, err
	}
	bin := filepath.Join(dir, "soak")
	cmd := exec.Command("go", "build", "-o", bin, "mpichv/cmd/soak")
	if out, err := cmd.CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("bench: building soak worker: %v\n%s", err, out)
	}
	return bin, func() { os.RemoveAll(dir) }, nil
}

// soakConfig sizes the soak experiment. quick keeps one phase over a
// small CN-only kill-set; the full run replicates the service plane
// (3 EL replicas, 2 CS mirrors), proxies the service links, opens the
// kill-set to every role, and rolls seeds across two phases.
func soakConfig(quick bool, exe string) (deploy.SoakConfig, int) {
	cfg := deploy.SoakConfig{
		Exe:    exe,
		Seed:   42,
		CNs:    3,
		Laps:   40,
		HoldMS: 20,
		Kills:  2,

		MinAfter: 1 * time.Second,
		Over:     2 * time.Second,
		Proxy: transport.ProxyPolicy{
			ChaosPolicy: transport.ChaosPolicy{
				Seed:     42,
				Drop:     0.01,
				Delay:    0.05,
				MaxDelay: 2 * time.Millisecond,
			},
		},
		Timeout: 90 * time.Second,
	}
	phases := 1
	if !quick {
		cfg.CNs = 4
		cfg.ELs = 3
		cfg.CSs = 2
		cfg.Laps = 120
		cfg.HoldMS = 25
		cfg.Kills = 4
		cfg.Stalls = 1
		cfg.StallFor = time.Second
		cfg.KillRoles = []deploy.Role{deploy.RoleCN, deploy.RoleEL, deploy.RoleCS, deploy.RoleSched}
		cfg.ProxyServices = true
		cfg.MinAfter = 2 * time.Second
		cfg.Over = 8 * time.Second
		cfg.Proxy.Duplicate = 0.01
		cfg.Proxy.Delay = 0.1
		cfg.DiskFaultEvery = 9
		cfg.Timeout = 4 * time.Minute
		phases = 2
	}
	return cfg, phases
}

// SoakBench runs the real-socket soak: a deployed multi-process system
// — service plane included — under seeded per-phase process kills and
// live socket chaos, audited after every recovery and again after each
// phase quiesces.
func SoakBench(w io.Writer, quick bool) error {
	exe, cleanup, err := soakWorkerExe()
	if err != nil {
		return err
	}
	defer cleanup()
	cfg, phases := soakConfig(quick, exe)
	ser, err := deploy.RunSoakSeries(cfg, phases)
	if err != nil {
		return err
	}
	for i, rep := range ser.Phases {
		fmt.Fprintf(w, "phase %d: seed=%d cns=%d els=%d css=%d laps=%d/%d kills=%v stalls=%d respawns=%d duration=%dms\n",
			i+1, rep.Seed, rep.CNs, rep.ELs, rep.CSs, rep.LapsDone, rep.CNs*rep.LapsPerRank,
			rep.RoleKills, rep.Stalls, rep.Respawns, rep.DurationMS)
		for _, r := range rep.Recoveries {
			line := fmt.Sprintf("phase %d: recovery: %s/%d inc %d respawn %dms", i+1, r.Role, r.ID, r.Inc, r.RespawnMS)
			if r.BackToWorkMS >= 0 {
				line += fmt.Sprintf(" back-to-work %dms", r.BackToWorkMS)
			}
			if r.RejoinMS >= 0 {
				line += fmt.Sprintf(" outage %dms", r.RejoinMS)
			}
			fmt.Fprintln(w, line)
		}
		fmt.Fprintf(w, "phase %d: %s\nphase %d: %s\n", i+1, rep.AuditSummary, i+1, rep.HBSummary)
		fmt.Fprintf(w, "phase %d: tcp: dials=%d redials=%d retransmits=%d dropped=%d\n",
			i+1, rep.TCP.Dials, rep.TCP.Redials, rep.TCP.Retransmits, rep.TCP.DroppedFrames)
		fmt.Fprintf(w, "phase %d: proxy: dropped=%d delayed=%d duplicated=%d resets=%d\n",
			i+1, rep.Metrics["proxy.dropped"], rep.Metrics["proxy.delayed"],
			rep.Metrics["proxy.duplicated"], rep.Metrics["proxy.resets"])
	}
	fmt.Fprintf(w, "series: %d phases %d laps %.1f laps/s kills per role %v\n",
		len(ser.Phases), ser.LapsDone, ser.GoodputLPS, ser.RoleKills)
	if !ser.OK {
		return fmt.Errorf("soak failed: %v", ser.Failures)
	}
	fmt.Fprintln(w, "soak OK")
	return nil
}

// SoakData regenerates the soak as a structured report (BENCH_soak.json).
func SoakData(quick bool) (any, error) {
	exe, cleanup, err := soakWorkerExe()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	cfg, phases := soakConfig(quick, exe)
	ser, err := deploy.RunSoakSeries(cfg, phases)
	if err != nil {
		return nil, err
	}
	if !ser.OK {
		return ser, fmt.Errorf("soak failed: %v", ser.Failures)
	}
	return ser, nil
}
