package bench

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"mpichv/internal/deploy"
	"mpichv/internal/transport"
)

// soakWorkerExe resolves the worker executable for the soak harness.
// MPICHV_SOAK_EXE overrides (CI points it at a prebuilt binary);
// otherwise cmd/soak is built into a temp dir. Never os.Executable():
// inside `go test` that is the test binary, and spawning it as a
// worker would recurse into the whole suite.
func soakWorkerExe() (string, func(), error) {
	if exe := os.Getenv("MPICHV_SOAK_EXE"); exe != "" {
		return exe, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "mpichv-soak-exe-*")
	if err != nil {
		return "", nil, err
	}
	bin := filepath.Join(dir, "soak")
	cmd := exec.Command("go", "build", "-o", bin, "mpichv/cmd/soak")
	if out, err := cmd.CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("bench: building soak worker: %v\n%s", err, out)
	}
	return bin, func() { os.RemoveAll(dir) }, nil
}

func soakConfig(quick bool, exe string) deploy.SoakConfig {
	cfg := deploy.SoakConfig{
		Exe:    exe,
		Seed:   42,
		CNs:    3,
		Laps:   40,
		HoldMS: 20,
		Kills:  2,

		MinAfter: 1 * time.Second,
		Over:     2 * time.Second,
		Proxy: transport.ProxyPolicy{
			ChaosPolicy: transport.ChaosPolicy{
				Seed:     42,
				Drop:     0.01,
				Delay:    0.05,
				MaxDelay: 2 * time.Millisecond,
			},
		},
		Timeout: 90 * time.Second,
	}
	if !quick {
		cfg.CNs = 4
		cfg.Laps = 120
		cfg.HoldMS = 25
		cfg.Kills = 3
		cfg.Stalls = 1
		cfg.StallFor = time.Second
		cfg.MinAfter = 2 * time.Second
		cfg.Over = 8 * time.Second
		cfg.Proxy.Duplicate = 0.01
		cfg.Proxy.Delay = 0.1
		cfg.DiskFaultEvery = 9
		cfg.Timeout = 4 * time.Minute
	}
	return cfg
}

// SoakBench runs the real-socket soak: a deployed multi-process system
// under seeded process kills and live socket chaos, audited after every
// recovery and again after quiescence.
func SoakBench(w io.Writer, quick bool) error {
	exe, cleanup, err := soakWorkerExe()
	if err != nil {
		return err
	}
	defer cleanup()
	rep, err := deploy.RunSoak(soakConfig(quick, exe))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "seed=%d cns=%d laps=%d/%d kills=%d stalls=%d respawns=%d duration=%dms\n",
		rep.Seed, rep.CNs, rep.LapsDone, rep.CNs*rep.LapsPerRank, rep.Kills, rep.Stalls, rep.Respawns, rep.DurationMS)
	for _, r := range rep.Recoveries {
		fmt.Fprintf(w, "recovery: rank %d inc %d respawn %dms back-to-work %dms\n",
			r.ID, r.Inc, r.RespawnMS, r.BackToWorkMS)
	}
	fmt.Fprintf(w, "%s\n%s\n", rep.AuditSummary, rep.HBSummary)
	fmt.Fprintf(w, "tcp: dials=%d redials=%d retransmits=%d dropped=%d\n",
		rep.TCP.Dials, rep.TCP.Redials, rep.TCP.Retransmits, rep.TCP.DroppedFrames)
	fmt.Fprintf(w, "proxy: dropped=%d delayed=%d duplicated=%d resets=%d\n",
		rep.Metrics["proxy.dropped"], rep.Metrics["proxy.delayed"],
		rep.Metrics["proxy.duplicated"], rep.Metrics["proxy.resets"])
	if !rep.OK {
		return fmt.Errorf("soak failed: %v", rep.Failures)
	}
	fmt.Fprintln(w, "soak OK")
	return nil
}

// SoakData regenerates the soak as a structured report (BENCH_soak.json).
func SoakData(quick bool) (any, error) {
	exe, cleanup, err := soakWorkerExe()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	rep, err := deploy.RunSoak(soakConfig(quick, exe))
	if err != nil {
		return nil, err
	}
	if !rep.OK {
		return rep, fmt.Errorf("soak failed: %v", rep.Failures)
	}
	return rep, nil
}
