package bench

import (
	"fmt"
	"io"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/mpi"
	"mpichv/internal/nas"
	"mpichv/internal/netsim"
)

// paramsFor scales the network model for a kernel's reduced message
// sizes (see nas package doc): dividing the bandwidth, the eager limit
// and the log budgets by MsgScale makes the reduced-size messages take
// exactly as long — and trip the same protocol thresholds — as the
// full-class messages would on the real network.
func paramsFor(b nas.Benchmark) netsim.Params {
	p := netsim.Params2003()
	s := b.MsgScale
	if s > 1 {
		p.Bandwidth /= s
		p.EagerLimit = int(float64(p.EagerLimit) / s)
		p.HalfDuplexMinBytes = int(float64(p.HalfDuplexMinBytes) / s)
		p.LogMemLimit = int64(float64(p.LogMemLimit) / s)
		p.LogHardLimit = int64(float64(p.LogHardLimit) / s)
		p.LogCopyPerByte = time.Duration(float64(p.LogCopyPerByte) * s)
		p.DiskCopyPerByte = time.Duration(float64(p.DiskCopyPerByte) * s)
		p.UnixCopyPerByte = time.Duration(float64(p.UnixCopyPerByte) * s)
	}
	return p
}

// NASRun is one kernel execution on one implementation.
type NASRun struct {
	Bench    nas.Benchmark
	Impl     cluster.Impl
	Procs    int
	Elapsed  time.Duration // extrapolated to the full iteration count
	Mops     float64       // full-class Mop/s
	Verified bool
	Result   cluster.Result
}

// RunNAS executes one kernel on a simulated cluster of the given
// implementation.
func RunNAS(b nas.Benchmark, impl cluster.Impl, procs int, cfg cluster.Config) NASRun {
	cfg.Impl = impl
	cfg.N = procs
	if cfg.Params.Bandwidth == 0 {
		cfg.Params = paramsFor(b)
	}
	results := make([]nas.Result, procs)
	res := cluster.Run(cfg, func(p *mpi.Proc) {
		results[p.Rank()] = b.Run(p, b)
	})
	run := NASRun{Bench: b, Impl: impl, Procs: procs, Result: res, Verified: true}
	run.Elapsed = time.Duration(float64(res.Elapsed) * b.ExtrapFactor())
	if run.Elapsed > 0 {
		run.Mops = b.FullFlops / 1e6 / run.Elapsed.Seconds()
	}
	for _, r := range results {
		if !r.Verified {
			run.Verified = false
		}
	}
	return run
}

func nasProcs(b nas.Benchmark, quick bool) []int {
	if b.MaxProcs == 25 { // BT/SP need squares
		if quick {
			return []int{4, 16}
		}
		return []int{1, 4, 9, 16, 25}
	}
	if quick {
		return []int{4, 16}
	}
	return []int{1, 2, 4, 8, 16, 32}
}

// Figure7Data runs the NPB suite on P4 and V2 across process counts.
func Figure7Data(quick bool) []NASRun {
	suite := nas.All()
	if quick {
		suite = []nas.Benchmark{nas.CG("A"), nas.MG("A"), nas.FT("A"), nas.LU("A"), nas.BT("A"), nas.SP("A")}
	}
	var out []NASRun
	for _, b := range suite {
		for _, procs := range nasProcs(b, quick) {
			for _, impl := range []cluster.Impl{cluster.P4, cluster.V2} {
				out = append(out, RunNAS(b, impl, procs, cluster.Config{}))
			}
		}
	}
	return out
}

// Figure7 regenerates the NPB performance comparison.
func Figure7(w io.Writer, quick bool) error {
	runs := Figure7Data(quick)
	t := newTable(w)
	t.row("bench", "procs", "impl", "time", "Mop/s", "verified")
	for _, r := range runs {
		t.row(r.Bench.ID(), r.Procs, r.Impl, r.Elapsed.Round(time.Millisecond),
			fmt.Sprintf("%.0f", r.Mops), r.Verified)
	}
	t.flush()
	return nil
}

// Breakdown is a compute/communication split (figure 8).
type Breakdown struct {
	Bench   string
	Impl    cluster.Impl
	Procs   int
	Total   time.Duration
	Compute time.Duration
	Comm    time.Duration
}

func breakdownOf(b nas.Benchmark, impl cluster.Impl, procs int) Breakdown {
	cfg := cluster.Config{}
	if impl == cluster.V1 {
		cfg.CMFanIn = 4 // the paper's figure 8 setup uses N/4 Channel Memories
	}
	run := RunNAS(b, impl, procs, cfg)
	out := Breakdown{Bench: b.ID(), Impl: impl, Procs: procs, Total: run.Elapsed}
	var n int
	for _, st := range run.Result.PerRank {
		if st == nil {
			continue
		}
		out.Compute += st.ComputeTime()
		out.Comm += st.CommTime()
		n++
	}
	if n > 0 {
		f := time.Duration(n)
		out.Compute = time.Duration(float64(out.Compute/f) * b.ExtrapFactor())
		out.Comm = time.Duration(float64(out.Comm/f) * b.ExtrapFactor())
	}
	return out
}

// Figure8Data produces the execution-time breakdown of CG-A-8 and
// BT-B-9 for the three implementations.
func Figure8Data(quick bool) []Breakdown {
	var out []Breakdown
	cg := nas.CG("A")
	bt := nas.BT("B")
	if quick {
		bt = nas.BT("A")
	}
	for _, impl := range []cluster.Impl{cluster.P4, cluster.V1, cluster.V2} {
		out = append(out, breakdownOf(cg, impl, 8))
	}
	for _, impl := range []cluster.Impl{cluster.P4, cluster.V1, cluster.V2} {
		out = append(out, breakdownOf(bt, impl, 9))
	}
	return out
}

// Figure8 regenerates the breakdown comparison.
func Figure8(w io.Writer, quick bool) error {
	t := newTable(w)
	t.row("bench", "procs", "impl", "total", "compute", "comm")
	for _, b := range Figure8Data(quick) {
		t.row(b.Bench, b.Procs, b.Impl, b.Total.Round(time.Millisecond),
			b.Compute.Round(time.Millisecond), b.Comm.Round(time.Millisecond))
	}
	t.flush()
	return nil
}

// CallDecomposition is one row of Table 1.
type CallDecomposition struct {
	Bench string
	Impl  cluster.Impl
	Send  time.Duration // MPI_(I)send
	Irecv time.Duration
	Wait  time.Duration
	Total time.Duration
}

func decompose(b nas.Benchmark, impl cluster.Impl, procs int) CallDecomposition {
	run := RunNAS(b, impl, procs, cluster.Config{})
	out := CallDecomposition{Bench: fmt.Sprintf("%s %d", b.ID(), procs), Impl: impl}
	var n int
	for _, st := range run.Result.PerRank {
		if st == nil {
			continue
		}
		out.Send += st.Get("MPI_Isend").Time + st.Get("MPI_Send").Time
		out.Irecv += st.Get("MPI_Irecv").Time
		out.Wait += st.Get("MPI_Wait").Time + st.Get("MPI_Recv").Time
		out.Total += st.CommTime()
		n++
	}
	if n > 0 {
		f := time.Duration(n)
		scale := b.ExtrapFactor()
		out.Send = time.Duration(float64(out.Send/f) * scale)
		out.Irecv = time.Duration(float64(out.Irecv/f) * scale)
		out.Wait = time.Duration(float64(out.Wait/f) * scale)
		out.Total = time.Duration(float64(out.Total/f) * scale)
	}
	return out
}

// Table1Data reproduces the call decomposition for BT-A-9 and CG-A-8.
func Table1Data(quick bool) []CallDecomposition {
	var out []CallDecomposition
	for _, impl := range []cluster.Impl{cluster.P4, cluster.V2} {
		out = append(out, decompose(nas.BT("A"), impl, 9))
	}
	for _, impl := range []cluster.Impl{cluster.P4, cluster.V2} {
		out = append(out, decompose(nas.CG("A"), impl, 8))
	}
	return out
}

// Table1 regenerates the MPI function time decomposition.
func Table1(w io.Writer, quick bool) error {
	t := newTable(w)
	t.row("bench", "impl", "MPI_(I)send", "MPI_Irecv", "MPI_Wait(+Recv)", "total comm")
	for _, d := range Table1Data(quick) {
		t.row(d.Bench, d.Impl, d.Send.Round(time.Millisecond), d.Irecv.Round(time.Millisecond),
			d.Wait.Round(time.Millisecond), d.Total.Round(time.Millisecond))
	}
	t.flush()
	return nil
}
