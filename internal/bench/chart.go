package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// asciiChart renders the figure experiments as actual figures: a
// log-x/linear-y line chart in plain text, one marker letter per
// series. It is deliberately small — enough to see the crossovers the
// paper plots (figure 5's bandwidth asymptotes, figure 9's 2× region)
// straight from a terminal.
type asciiChart struct {
	title  string
	ylabel string
	xs     []float64 // shared x values, ascending
	names  []string
	series map[string][]float64
}

func newChart(title, ylabel string, xs []float64) *asciiChart {
	return &asciiChart{title: title, ylabel: ylabel, xs: xs, series: map[string][]float64{}}
}

func (c *asciiChart) add(name string, ys []float64) {
	c.names = append(c.names, name)
	c.series[name] = ys
}

const (
	chartW = 64
	chartH = 14
)

// render draws the chart. X is log-scaled (the paper's message-size
// axes); Y is linear from zero.
func (c *asciiChart) render(w io.Writer) {
	if len(c.xs) < 2 {
		return
	}
	var ymax float64
	for _, ys := range c.series {
		for _, y := range ys {
			if y > ymax {
				ymax = y
			}
		}
	}
	if ymax <= 0 {
		return
	}
	x0, x1 := math.Log(c.xs[0]), math.Log(c.xs[len(c.xs)-1])
	grid := make([][]byte, chartH)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", chartW))
	}
	sort.Strings(c.names)
	for si, name := range c.names {
		marker := byte('A' + si%26)
		for i, y := range c.series[name] {
			if i >= len(c.xs) || y < 0 {
				continue
			}
			gx := 0
			if x1 > x0 {
				gx = int(math.Round((math.Log(c.xs[i]) - x0) / (x1 - x0) * float64(chartW-1)))
			}
			gy := chartH - 1 - int(math.Round(y/ymax*float64(chartH-1)))
			if gx >= 0 && gx < chartW && gy >= 0 && gy < chartH {
				if grid[gy][gx] != ' ' && grid[gy][gx] != marker {
					grid[gy][gx] = '*' // overlapping series
				} else {
					grid[gy][gx] = marker
				}
			}
		}
	}
	fmt.Fprintf(w, "\n  %s\n", c.title)
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.1f ", ymax)
		case chartH - 1:
			label = fmt.Sprintf("%7.1f ", 0.0)
		case chartH / 2:
			label = fmt.Sprintf("%7.1f ", ymax/2)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", chartW))
	fmt.Fprintf(w, "         %-10s%*s  (log x)\n", sizeLabel(int(c.xs[0])), chartW-12, sizeLabel(int(c.xs[len(c.xs)-1])))
	var legend []string
	for si, name := range c.names {
		legend = append(legend, fmt.Sprintf("%c=%s", 'A'+si%26, name))
	}
	fmt.Fprintf(w, "  %s   [%s]\n\n", c.ylabel, strings.Join(legend, "  "))
}
