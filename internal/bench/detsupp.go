package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/daemon"
	"mpichv/internal/mpi"
)

// DetSupp experiment: the critical-path cost of pessimistic determinant
// logging versus the adaptive suppression layer. The workload is a
// token ring — every hop is a reception followed immediately by a send,
// so in off mode each hop pays a full event-logger round trip inside
// WAITLOGGED before the token may leave. The adaptive classifier sees a
// deterministic directed channel (no probes, no competing arrivals) and
// keeps the determinant off the gate: it rides outgoing payloads and
// periodic epoch batches instead, and the hop collapses to pure
// transport. The aggressive row is the unsound upper bound (suppress
// everything without the safety checks) — the gap between it and
// adaptive is the price of classification.

// DetSuppPoint is one (mode, size) point of the sweep.
type DetSuppPoint struct {
	Mode    string
	Size    int
	Elapsed time.Duration
	PerMsg  time.Duration // elapsed per delivered message
	Speedup float64       // vs off at the same size
	// Gate accounting: the experiment's claim is that adaptive moves
	// determinants off the WAITLOGGED critical path, so the forced count
	// and the time actually spent blocked in the gate must both drop.
	ELWaits    int64   // sends that blocked on WAITLOGGED
	ELWaitUS   int64   // virtual µs spent blocked in WAITLOGGED
	Forced     int64   // determinants that joined the gate (pessimistic path)
	Suppressed int64   // determinants kept off the gate
	ForcedPerMsg float64 // forced determinants per delivered message
	Piggybacked int64  // suppressed determinants carried on payload frames
	Events     int64   // event batches' contents submitted to the EL (incl. epochs)
}

// detSuppModes maps row labels to daemon policies, in table order.
var detSuppModes = []struct {
	Name string
	Mode int
}{
	{"off", daemon.DetOff},
	{"adaptive", daemon.DetAdaptive},
	{"aggressive", daemon.DetAggressive},
}

const detSuppN = 4 // ring size

// detSuppRun measures one point.
func detSuppRun(name string, mode, size, rounds int) DetSuppPoint {
	res := cluster.Run(cluster.Config{
		Impl: cluster.V2, N: detSuppN,
		DetMode: mode,
	}, func(p *mpi.Proc) {
		n := p.Size()
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		buf := make([]byte, 8+size)
		var token uint64
		for r := 0; r < rounds; r++ {
			if p.Rank() == 0 {
				binary.BigEndian.PutUint64(buf, token+1)
				p.Send(right, 1, buf)
				b, _ := p.Recv(left, 1)
				token = binary.BigEndian.Uint64(b)
			} else {
				b, _ := p.Recv(left, 1)
				token = binary.BigEndian.Uint64(b) + 1
				binary.BigEndian.PutUint64(buf, token)
				p.Send(right, 1, buf)
			}
		}
	})
	msgs := int64(detSuppN * rounds)
	pt := DetSuppPoint{
		Mode:    name,
		Size:    size,
		Elapsed: res.Elapsed,
		PerMsg:  res.Elapsed / time.Duration(msgs),
	}
	for _, d := range res.Daemons {
		pt.ELWaits += d.ELWaits
		pt.ELWaitUS += d.ELWaitNS / 1e3
		pt.Forced += d.DetForced
		pt.Suppressed += d.DetSuppressed
		pt.Piggybacked += d.DetPiggybacked
		pt.Events += d.EventsLogged
	}
	pt.ForcedPerMsg = float64(pt.Forced) / float64(msgs)
	return pt
}

// DetSuppData runs the sweep. Off is always first at each size so it
// anchors the Speedup column.
func DetSuppData(quick bool) []DetSuppPoint {
	sizes := []int{0, 4 << 10, 64 << 10}
	rounds := 30
	if quick {
		sizes = []int{0, 4 << 10}
		rounds = 10
	}
	var out []DetSuppPoint
	for _, size := range sizes {
		var base time.Duration
		for _, m := range detSuppModes {
			pt := detSuppRun(m.Name, m.Mode, size, rounds)
			if m.Mode == daemon.DetOff {
				base = pt.Elapsed
			}
			pt.Speedup = float64(base) / float64(pt.Elapsed)
			out = append(out, pt)
		}
	}
	return out
}

// DetSupp regenerates the determinant-suppression sweep.
func DetSupp(w io.Writer, quick bool) error {
	pts := DetSuppData(quick)
	t := newTable(w)
	t.row("size", "mode", "time", "per msg", "vs off", "el waits", "el wait µs", "forced", "forced/msg", "suppressed", "piggyback")
	for _, pt := range pts {
		t.row(sizeLabel(pt.Size), pt.Mode,
			pt.Elapsed.Round(time.Microsecond), pt.PerMsg.Round(time.Microsecond),
			fmt.Sprintf("%.2fx", pt.Speedup), pt.ELWaits, pt.ELWaitUS,
			pt.Forced, fmt.Sprintf("%.3f", pt.ForcedPerMsg), pt.Suppressed, pt.Piggybacked)
	}
	t.flush()
	fmt.Fprintf(w, "%d-rank token ring; forced = determinants that joined the WAITLOGGED gate\n", detSuppN)
	return nil
}
