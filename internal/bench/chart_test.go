package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestChartRendersSeries(t *testing.T) {
	ch := newChart("test chart", "MB/s", []float64{1024, 4096, 65536, 1 << 20})
	ch.add("MPICH-P4", []float64{6, 9, 11, 11.3})
	ch.add("MPICH-V2", []float64{3, 7, 10.5, 10.7})
	var buf bytes.Buffer
	ch.render(&buf)
	out := buf.String()
	for _, want := range []string{"test chart", "A=MPICH-P4", "B=MPICH-V2", "1KB", "1MB", "(log x)"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.ContainsAny(out, "AB*") {
		t.Error("chart has no data markers")
	}
}

func TestChartDegenerateInputs(t *testing.T) {
	var buf bytes.Buffer
	newChart("empty", "y", nil).render(&buf)
	newChart("one point", "y", []float64{5}).render(&buf)
	zero := newChart("zeros", "y", []float64{1, 2})
	zero.add("s", []float64{0, 0})
	zero.render(&buf)
	if buf.Len() != 0 {
		t.Errorf("degenerate charts produced output: %q", buf.String())
	}
}
