package bench

import (
	"fmt"
	"io"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/mpi"
)

// Figure 9: "a ping-pong of 10 non-blocking sends (MPI_ISend), 10 non
// blocking receives (MPI_IRecv) and then waits for all these
// communications to finish (MPI_Waitall)" — the BT/SP exchange pattern.
// Both sides transmit simultaneously, so the full-duplex V2 daemon
// reaches up to twice the P4 bandwidth for 64 KB messages, while P4
// wins below the latency crossover.

// SyntheticResult is one point of the figure 9 sweep.
type SyntheticResult struct {
	Size   int
	MBperS float64
}

// Synthetic measures the aggregated bandwidth of the 10×Isend/Irecv/
// Waitall pattern for one message size.
func Synthetic(impl cluster.Impl, size, rounds int) SyntheticResult {
	const batch = 10
	var elapsed time.Duration
	cluster.Run(cluster.Config{Impl: impl, N: 2}, func(p *mpi.Proc) {
		peer := 1 - p.Rank()
		msg := make([]byte, size)
		var t0 time.Duration
		for r := 0; r < rounds+1; r++ {
			if r == 1 {
				t0 = p.Clock().Now()
			}
			reqs := make([]*mpi.Request, 0, 2*batch)
			for i := 0; i < batch; i++ {
				reqs = append(reqs, p.Irecv(peer, 30+i))
			}
			for i := 0; i < batch; i++ {
				reqs = append(reqs, p.Isend(peer, 30+i, msg))
			}
			p.Waitall(reqs)
		}
		if p.Rank() == 0 {
			elapsed = (p.Clock().Now() - t0) / time.Duration(rounds)
		}
	})
	res := SyntheticResult{Size: size}
	if elapsed > 0 {
		// Both directions move batch messages per round.
		res.MBperS = float64(2*batch*size) / elapsed.Seconds() / 1e6
	}
	return res
}

// Figure9Data sweeps the synthetic benchmark.
func Figure9Data(quick bool) map[cluster.Impl][]SyntheticResult {
	sizes := []int{1 << 10, 4 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}
	if quick {
		sizes = []int{1 << 10, 64 << 10}
	}
	out := make(map[cluster.Impl][]SyntheticResult)
	for _, impl := range []cluster.Impl{cluster.P4, cluster.V2} {
		for _, sz := range sizes {
			out[impl] = append(out[impl], Synthetic(impl, sz, 4))
		}
	}
	return out
}

// Figure9 regenerates the synthetic BT/SP-pattern comparison.
func Figure9(w io.Writer, quick bool) error {
	data := Figure9Data(quick)
	t := newTable(w)
	t.row("size", "P4 MB/s", "V2 MB/s", "V2/P4")
	var xs []float64
	for i := range data[cluster.P4] {
		p4 := data[cluster.P4][i]
		v2 := data[cluster.V2][i]
		xs = append(xs, float64(p4.Size))
		t.row(sizeLabel(p4.Size),
			fmt.Sprintf("%.2f", p4.MBperS),
			fmt.Sprintf("%.2f", v2.MBperS),
			fmt.Sprintf("%.2f", v2.MBperS/p4.MBperS))
	}
	t.flush()
	ch := newChart("10×Isend/Irecv/Waitall bandwidth (figure 9)", "MB/s", xs)
	for _, impl := range []cluster.Impl{cluster.P4, cluster.V2} {
		var ys []float64
		for _, r := range data[impl] {
			ys = append(ys, r.MBperS)
		}
		ch.add(impl.String(), ys)
	}
	ch.render(w)
	return nil
}
