// Package bench regenerates every table and figure of the paper's
// evaluation (§5) on the simulated testbed. Each experiment prints the
// same rows/series the paper reports and returns structured data so the
// test suite can assert the paper's qualitative findings (who wins, by
// roughly what factor, where the crossovers fall).
//
// Absolute magnitudes are calibrated to the paper's own P4 measurements
// (netsim.Params2003), but the claims under test are the shapes — see
// EXPERIMENTS.md for the paper-vs-measured record.
package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	// Run regenerates the experiment, writing the rows to w. Quick
	// mode trims sweeps for fast regression runs.
	Run func(w io.Writer, quick bool) error
	// Data, when set, regenerates the experiment as a structured value
	// suitable for json.Marshal — the machine-readable twin of Run,
	// emitted by vbench -json as BENCH_<id>.json.
	Data func(quick bool) (any, error)
}

// Experiments returns the full index, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig5", Title: "Figure 5: ping-pong bandwidth, P4 vs V1 vs V2", Run: Figure5,
			Data: func(q bool) (any, error) { return pingPongSeries(Figure5Data(q)), nil }},
		{ID: "fig6", Title: "Figure 6: ping-pong latency, P4 vs V1 vs V2", Run: Figure6,
			Data: func(q bool) (any, error) { return pingPongSeries(Figure6Data(q)), nil }},
		{ID: "fig7", Title: "Figure 7: NAS Parallel Benchmarks, P4 vs V2", Run: Figure7},
		{ID: "fig8", Title: "Figure 8: execution time breakdown, CG-A and BT-B", Run: Figure8},
		{ID: "tab1", Title: "Table 1: MPI call time decomposition, BT-A-9 and CG-A-8", Run: Table1},
		{ID: "fig9", Title: "Figure 9: synthetic Isend/Irecv/Waitall bandwidth, P4 vs V2", Run: Figure9},
		{ID: "fig10", Title: "Figure 10: re-execution performance (token ring)", Run: Figure10},
		{ID: "fig11", Title: "Figure 11: BT-A with faults during execution", Run: Figure11},
		{ID: "sched", Title: "§4.6.2: checkpoint scheduling policies (round-robin vs adaptive)", Run: SchedPolicies},
		{ID: "ablate", Title: "Ablations: WAITLOGGED gating, payload routing, garbage collection", Run: Ablations},
		{ID: "chaos", Title: "Chaos: BT-A under lossy links, node kills and service failover", Run: Chaos,
			Data: func(q bool) (any, error) { return ChaosData(q), nil }},
		{ID: "elrep", Title: "Replication: event-logger quorum size vs overhead under chaos", Run: ELRep,
			Data: func(q bool) (any, error) { return ELRepData(q), nil }},
		{ID: "perf", Title: "Perf: pipelined determinant logging, window × size × batching", Run: Perf,
			Data: func(q bool) (any, error) { return PerfData(q), nil }},
		{ID: "detsupp", Title: "DetSupp: adaptive determinant suppression + piggybacking vs pessimistic", Run: DetSupp,
			Data: func(q bool) (any, error) { return DetSuppData(q), nil }},
		{ID: "ckpt", Title: "Ckpt: incremental chunked checkpointing, log × chunk × delta × drop", Run: CkptBench,
			Data: func(q bool) (any, error) { return CkptBenchData(q), nil }},
		{ID: "trace", Title: "Trace: causal tracing overhead, HB audit and critical-path breakdown", Run: TraceBench,
			Data: func(q bool) (any, error) { return TraceData(q) }},
		{ID: "soak", Title: "Soak: real-socket deployment under process kills and live chaos", Run: SoakBench,
			Data: SoakData},
		{ID: "fleet", Title: "Fleet: sharded event loggers + parallel vtime core at 1000 ranks", Run: Fleet,
			Data: func(q bool) (any, error) { return FleetData(q), nil }},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids.
func IDs() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// table is a tiny tabwriter helper.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer) *table {
	return &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, c)
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() { t.tw.Flush() }

// sizeLabel formats a message size like the paper's axes.
func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
