package bench

import (
	"fmt"
	"io"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/dispatcher"
	"mpichv/internal/mpi"
	"mpichv/internal/nas"
	"mpichv/internal/sched"
	"mpichv/internal/transport"
)

// Event-logger replication sweep: BT class A under a fixed chaos load
// (lossy, truncating links plus correlated double faults against the
// computing nodes, and — when there is a peer to resync from — one
// replica kill mid-run), swept over the replica count R and write
// quorum Q. The paper's single "reliable node" is the R=1/Q=1 row;
// every other row buys tolerance of R−Q replica failures with the extra
// acks the sender must wait for, and the table quantifies that price.
// Every run must still produce verified numerics and a clean recovery
// audit: the sweep doubles as the no-orphans acceptance harness.

// ELRepPoint is one (R, Q) point of the replication sweep.
type ELRepPoint struct {
	Replicas int
	Quorum   int
	Elapsed  time.Duration
	Ratio    float64 // vs the R=1/Q=1 row
	Restarts int
	SvcKills int

	QuorumAcks    int64 // batches/saves completed at their write quorum
	DegradedReads int64 // restart fetches settled below the read quorum
	StaleRejects  int64 // checkpoint saves refused for regressing the seq
	Resyncs       int64 // replica anti-entropy rounds
	Synced        int64 // events + images pulled back by resyncing replicas

	Audit    string // recovery-auditor verdict
	AuditOK  bool
	Verified bool
}

// ELRepData runs the replication sweep. Every point sees the same link
// chaos and the same compute fault plan; rows differ only by R and Q
// (and the replica kill, which needs a surviving peer, so it is skipped
// at R=1).
func ELRepData(quick bool) []ELRepPoint {
	type rq struct{ r, q int }
	configs := []rq{{1, 1}, {2, 1}, {2, 2}, {3, 1}, {3, 2}}
	if quick {
		configs = []rq{{1, 1}, {3, 2}}
	}
	b := faultyBT()
	var out []ELRepPoint
	for _, c := range configs {
		pt := runELRepBT(b, c.r, c.q)
		if len(out) == 0 {
			pt.Ratio = 1
		} else {
			pt.Ratio = float64(pt.Elapsed) / float64(out[0].Elapsed)
		}
		out = append(out, pt)
	}
	return out
}

func runELRepBT(b nas.Benchmark, r, q int) ELRepPoint {
	results := make([]nas.Result, 4)
	// Correlated double faults: the second kill lands while the first
	// victim is typically still mid-restart, the overlap a single
	// reliable node cannot cover. The plan is identical for every row.
	faults := dispatcher.DoubleFaults(11, 0.2, 20*time.Second, 40*time.Millisecond, []int{0, 1, 2, 3})
	if r >= 2 {
		// Kill one replica mid-run; its respawn anti-entropies the
		// missed events back from the surviving peers.
		faults = append(faults, dispatcher.Fault{Time: 10 * time.Second, Rank: cluster.ELBase + r - 1})
	}
	res := cluster.Run(cluster.Config{
		Impl:           cluster.V2,
		N:              4,
		Params:         paramsFor(b),
		Checkpointing:  true,
		Policy:         sched.NewRandom(uint64(r*10 + q)),
		SchedPeriod:    5 * time.Millisecond,
		ELReplicas:     r,
		ELQuorum:       q,
		Faults:         faults,
		DetectionDelay: 3 * time.Millisecond,
		Chaos: transport.ChaosPolicy{
			Seed:      2003,
			Drop:      0.005,
			Duplicate: 0.002,
			Truncate:  0.01,
			Delay:     0.02,
			MaxDelay:  300 * time.Microsecond,
		},
	}, func(p *mpi.Proc) {
		results[p.Rank()] = b.Run(p, b)
	})
	audit := cluster.Audit(res)
	pt := ELRepPoint{
		Replicas:      r,
		Quorum:        q,
		Elapsed:       res.Elapsed,
		Restarts:      res.Restarts,
		SvcKills:      res.ServiceKills,
		QuorumAcks:    res.QuorumAcks,
		DegradedReads: res.DegradedReads,
		StaleRejects:  res.StaleRejects,
		Resyncs:       res.Resyncs,
		Synced:        res.SyncedEvents,
		Audit:         audit.Summary(),
		AuditOK:       audit.OK() && res.BelowQuorumAcks == 0,
		Verified:      true,
	}
	for _, rr := range results {
		if !rr.Verified {
			pt.Verified = false
		}
	}
	return pt
}

// ELRep regenerates the replication sweep.
func ELRep(w io.Writer, quick bool) error {
	t := newTable(w)
	t.row("R", "Q", "time", "vs R=1", "restarts", "svc kills", "quorum acks", "degraded", "stale", "resyncs", "synced", "audit", "verified")
	pts := ELRepData(quick)
	for _, pt := range pts {
		t.row(pt.Replicas, pt.Quorum, pt.Elapsed.Round(time.Millisecond),
			fmt.Sprintf("%.2f", pt.Ratio), pt.Restarts, pt.SvcKills,
			pt.QuorumAcks, pt.DegradedReads, pt.StaleRejects,
			pt.Resyncs, pt.Synced, ok(pt.AuditOK), pt.Verified)
	}
	t.flush()
	for _, pt := range pts {
		fmt.Fprintf(w, "R=%d Q=%d: %s\n", pt.Replicas, pt.Quorum, pt.Audit)
	}
	return nil
}

func ok(b bool) string {
	if b {
		return "ok"
	}
	return "FAILED"
}
