package bench

import (
	"fmt"
	"io"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/mpi"
)

// PingPongResult is one point of the figure 5/6 sweeps.
type PingPongResult struct {
	Size   int
	OneWay time.Duration // mean one-way latency
	MBperS float64       // observed bandwidth in MB/s
}

// PingPong measures the steady-state ping-pong between two nodes of the
// given implementation. The first round is a warm-up (it lacks the
// sender's event-logging wait).
func PingPong(impl cluster.Impl, size, rounds int) PingPongResult {
	var mean time.Duration
	cluster.Run(cluster.Config{Impl: impl, N: 2}, func(p *mpi.Proc) {
		msg := make([]byte, size)
		var t0 time.Duration
		for r := 0; r < rounds+1; r++ {
			if p.Rank() == 0 {
				if r == 1 {
					t0 = p.Clock().Now()
				}
				p.Send(1, 7, msg)
				p.Recv(1, 8)
			} else {
				b, _ := p.Recv(0, 7)
				p.Send(0, 8, b)
			}
		}
		if p.Rank() == 0 {
			mean = (p.Clock().Now() - t0) / time.Duration(rounds)
		}
	})
	res := PingPongResult{Size: size, OneWay: mean / 2}
	if mean > 0 {
		res.MBperS = float64(2*size) / mean.Seconds() / 1e6
	}
	return res
}

var ppImpls = []cluster.Impl{cluster.P4, cluster.V1, cluster.V2}

// PingPongSeries is one implementation's sweep, named for JSON export
// (cluster.Impl map keys do not marshal).
type PingPongSeries struct {
	Impl   string
	Points []PingPongResult
}

func pingPongSeries(data map[cluster.Impl][]PingPongResult) []PingPongSeries {
	var out []PingPongSeries
	for _, impl := range ppImpls {
		out = append(out, PingPongSeries{Impl: impl.String(), Points: data[impl]})
	}
	return out
}

// Figure5Data sweeps ping-pong bandwidth over message sizes.
func Figure5Data(quick bool) map[cluster.Impl][]PingPongResult {
	sizes := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 128 << 10, 256 << 10, 1 << 20, 4 << 20}
	if quick {
		sizes = []int{4 << 10, 64 << 10, 1 << 20}
	}
	out := make(map[cluster.Impl][]PingPongResult)
	for _, impl := range ppImpls {
		for _, sz := range sizes {
			out[impl] = append(out[impl], PingPong(impl, sz, 4))
		}
	}
	return out
}

// Figure5 regenerates the bandwidth comparison (paper: P4 peaks at
// 11.3 MB/s, V2 at 10.7, V1 at about half of P4).
func Figure5(w io.Writer, quick bool) error {
	data := Figure5Data(quick)
	t := newTable(w)
	t.row("size", "P4 MB/s", "V1 MB/s", "V2 MB/s")
	for i := range data[cluster.P4] {
		t.row(sizeLabel(data[cluster.P4][i].Size),
			fmt.Sprintf("%.2f", data[cluster.P4][i].MBperS),
			fmt.Sprintf("%.2f", data[cluster.V1][i].MBperS),
			fmt.Sprintf("%.2f", data[cluster.V2][i].MBperS))
	}
	t.flush()
	ch := newChart("ping-pong bandwidth (figure 5)", "MB/s", ppSizes(data))
	for _, impl := range ppImpls {
		var ys []float64
		for _, r := range data[impl] {
			ys = append(ys, r.MBperS)
		}
		ch.add(impl.String(), ys)
	}
	ch.render(w)
	return nil
}

func ppSizes(data map[cluster.Impl][]PingPongResult) []float64 {
	var xs []float64
	for _, r := range data[cluster.P4] {
		x := float64(r.Size)
		if x < 1 {
			x = 1
		}
		xs = append(xs, x)
	}
	return xs
}

// Figure6Data sweeps ping-pong latency over small message sizes.
func Figure6Data(quick bool) map[cluster.Impl][]PingPongResult {
	sizes := []int{0, 64, 256, 1 << 10, 4 << 10}
	if quick {
		sizes = []int{0, 1 << 10}
	}
	out := make(map[cluster.Impl][]PingPongResult)
	for _, impl := range ppImpls {
		for _, sz := range sizes {
			out[impl] = append(out[impl], PingPong(impl, sz, 10))
		}
	}
	return out
}

// Figure6 regenerates the latency comparison (paper: 77 µs for P4,
// 237 µs for V2 at 0 bytes).
func Figure6(w io.Writer, quick bool) error {
	data := Figure6Data(quick)
	t := newTable(w)
	t.row("size", "P4 one-way", "V1 one-way", "V2 one-way")
	for i := range data[cluster.P4] {
		t.row(sizeLabel(data[cluster.P4][i].Size),
			data[cluster.P4][i].OneWay,
			data[cluster.V1][i].OneWay,
			data[cluster.V2][i].OneWay)
	}
	t.flush()
	ch := newChart("ping-pong one-way latency (figure 6)", "µs", ppSizes(data))
	for _, impl := range ppImpls {
		var ys []float64
		for _, r := range data[impl] {
			ys = append(ys, float64(r.OneWay.Microseconds()))
		}
		ch.add(impl.String(), ys)
	}
	ch.render(w)
	return nil
}
