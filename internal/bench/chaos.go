package bench

import (
	"fmt"
	"io"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/dispatcher"
	"mpichv/internal/mpi"
	"mpichv/internal/nas"
	"mpichv/internal/sched"
	"mpichv/internal/transport"
)

// Chaos experiment: BT class A on 4 computing nodes with replicated
// event loggers, always-on checkpointing, a Poisson process killing
// compute and service nodes, and a chaos fabric dropping, duplicating
// and delaying frames at increasing rates. The paper's volatile-node
// claim is qualitative — executions survive faults — and this sweep
// quantifies the price: how much retry/failover machinery fires and how
// far the elapsed time stretches as the links and nodes degrade, with
// every run still producing verified numerics.

// ChaosPoint is one point of the chaos sweep.
type ChaosPoint struct {
	Drop         float64 // frame drop probability
	Elapsed      time.Duration
	Ratio        float64 // vs the clean run
	Restarts     int
	SvcKills     int
	SvcRestarts  int
	Retransmits  int64
	Pulls        int64
	Failovers    int64
	Dropped      int64 // frames the chaos fabric discarded
	StaleRejects int64 // checkpoint saves refused for regressing the seq
	DeltaCkpts   int64 // checkpoints shipped as deltas against an acked base
	ChunkRetrans int64 // checkpoint chunks re-sent after a timeout
	Compactions  int64 // superseded delta chains dropped by the stores
	Manifests    int64 // restart-time manifest gathers (chunked fast path)
	Audit        string
	AuditOK      bool
	Verified     bool
}

// ELOverrideReplicas/ELOverrideQuorum optionally force the replicated
// event-logger group on the chaos experiment: R independent replicas
// with write quorum Q instead of the legacy primary+backup pair. Set
// from vbench's -elreplicas/-elquorum flags; zero keeps the legacy
// layout. Under the override the event-logger kill is transient (the
// respawned replica anti-entropies its events back from the peers)
// rather than permanent, since quorum mode has no failover rotation to
// escape a permanently dead target.
var (
	ELOverrideReplicas int
	ELOverrideQuorum   int
)

// ChaosData runs the degradation sweep. Every point uses the same fault
// plan and seed lineage so the columns differ only by link quality.
func ChaosData(quick bool) []ChaosPoint {
	drops := []float64{0, 0.002, 0.005, 0.01, 0.02, 0.05}
	if quick {
		drops = []float64{0, 0.01}
	}
	b := faultyBT()
	var out []ChaosPoint
	for i, drop := range drops {
		pt := runChaosBT(b, drop, uint64(i+1))
		if i == 0 {
			pt.Ratio = 1
		} else {
			pt.Ratio = float64(pt.Elapsed) / float64(out[0].Elapsed)
		}
		out = append(out, pt)
	}
	return out
}

func runChaosBT(b nas.Benchmark, drop float64, seed uint64) ChaosPoint {
	results := make([]nas.Result, 4)
	pol := transport.ChaosPolicy{}
	if drop > 0 {
		pol = transport.ChaosPolicy{
			Seed:      2003 + seed,
			Drop:      drop,
			Duplicate: drop / 2,
			Delay:     0.02,
			MaxDelay:  300 * time.Microsecond,
		}
	}
	// One event-logger kill plus Poisson compute kills: the acceptance
	// scenario, swept over link quality. In the legacy layout the kill
	// is permanent (clients must fail over to the backup); under a
	// quorum override it is transient and answered by anti-entropy.
	faults := []dispatcher.Fault{{Time: 60 * time.Millisecond, Rank: cluster.ELBase, Permanent: ELOverrideReplicas == 0}}
	faults = append(faults, dispatcher.RandomFaults(seed, 4, 400*time.Millisecond, []int{0, 1, 2, 3})...)
	cfg := cluster.Config{
		Impl:           cluster.V2,
		N:              4,
		Params:         paramsFor(b),
		Checkpointing:  true,
		Policy:         sched.NewRandom(seed),
		SchedPeriod:    5 * time.Millisecond,
		EventLoggers:   2,
		Faults:         faults,
		DetectionDelay: 3 * time.Millisecond,
		Chaos:          pol,
	}
	if ELOverrideReplicas > 0 {
		cfg.EventLoggers = 0
		cfg.ELReplicas = ELOverrideReplicas
		cfg.ELQuorum = ELOverrideQuorum
	}
	res := cluster.Run(cfg, func(p *mpi.Proc) {
		results[p.Rank()] = b.Run(p, b)
	})
	audit := cluster.Audit(res)
	pt := ChaosPoint{
		Drop:         drop,
		Elapsed:      res.Elapsed,
		Restarts:     res.Restarts,
		SvcKills:     res.ServiceKills,
		SvcRestarts:  res.ServiceRestarts,
		Retransmits:  res.Retransmits,
		Pulls:        res.Pulls,
		Failovers:    res.Failovers,
		Dropped:      res.ChaosDropped,
		StaleRejects: res.StaleRejects,
		DeltaCkpts:   res.DeltaCkpts,
		ChunkRetrans: res.ChunkRetransmits,
		Compactions:  res.ChainCompactions,
		Manifests:    res.ManifestFetches,
		Audit:        audit.Summary(),
		AuditOK:      audit.OK() && res.BelowQuorumAcks == 0,
		Verified:     true,
	}
	for _, r := range results {
		if !r.Verified {
			pt.Verified = false
		}
	}
	return pt
}

// Chaos regenerates the link-degradation experiment.
func Chaos(w io.Writer, quick bool) error {
	t := newTable(w)
	t.row("drop", "time", "vs clean", "restarts", "svc k/r", "retrans", "pulls", "failovers", "dropped", "stale", "deltas", "chunkrt", "compact", "manifests", "audit", "verified")
	pts := ChaosData(quick)
	for _, pt := range pts {
		t.row(fmt.Sprintf("%.1f%%", pt.Drop*100), pt.Elapsed.Round(time.Millisecond),
			fmt.Sprintf("%.2f", pt.Ratio), pt.Restarts,
			fmt.Sprintf("%d/%d", pt.SvcKills, pt.SvcRestarts),
			pt.Retransmits, pt.Pulls, pt.Failovers, pt.Dropped,
			pt.StaleRejects, pt.DeltaCkpts, pt.ChunkRetrans, pt.Compactions,
			pt.Manifests, ok(pt.AuditOK), pt.Verified)
	}
	t.flush()
	for _, pt := range pts {
		fmt.Fprintf(w, "drop=%.1f%%: %s\n", pt.Drop*100, pt.Audit)
	}
	return nil
}
