package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/core"
	"mpichv/internal/mpi"
	"mpichv/internal/vtime"
)

// Fleet experiment: determinant-log throughput scaling of the sharded
// event-logger fleet, plus the deterministic parallel vtime core that
// makes thousand-rank runs tractable.
//
// Leg 1 (sharded fleet, virtual time): a determinant-heavy neighbor
// exchange where every reception's event must clear the EL before the
// next round's sends — the paper's pessimistic regime, with the EL's
// per-event service time (netsim.Params.ELService) as the serial
// bottleneck. Sharding the fleet splits the channel space over
// independent replica groups, so determinant throughput should scale
// near-linearly until the transport floor.
//
// Leg 2 (thousand ranks, virtual time): a 1000-rank exchange over an
// 8-shard fleet, run to completion with the no-orphans and
// happens-before auditors green — the scale claim.
//
// Leg 3 (parallel core, wall clock): the same event-lane workload
// executed by the serial and the parallel vtime cores. The schedules
// must be byte-identical (hash equality is the determinism contract);
// the wall-clock ratio is the speedup real cores buy.

// FleetPoint is one (shards, ranks) cell of the virtual-time sweep.
type FleetPoint struct {
	Shards  int
	Ranks   int
	Elapsed time.Duration
	Events  int64   // determinants stored by the fleet
	DetPerSec float64 // determinant-log throughput, events per virtual second
	Speedup   float64 // throughput vs the 1-shard row at the same rank count
	ELWaitUS  int64   // virtual µs all ranks spent blocked in WAITLOGGED
	AuditOK   bool    // no-orphans and happens-before auditors both green
}

// FleetParPoint is one (lanes, workers) cell of the parallel-core leg.
type FleetParPoint struct {
	Lanes        int
	Workers      int
	Events       int64
	WallMS       float64
	EventsPerSec float64
	Speedup      float64 // vs the workers=1 row
	ScheduleHash string  // FNV-1a over the (at, seq, lane) schedule
	AuditOK      bool    // delivery streams pass the no-orphans auditor
}

// FleetResult is the machine-readable artifact (BENCH_fleet.json).
type FleetResult struct {
	Cores    int // GOMAXPROCS of the measuring machine (leg 3 context)
	Sweep    []FleetPoint    // leg 1: shards × fixed ranks
	Thousand FleetPoint      // leg 2: the scale row
	Par      []FleetParPoint // leg 3: serial vs parallel core
}

// fleetProgram is the determinant-heavy workload: each round every rank
// eagerly sends a small message to its fan nearest ring neighbors, then
// receives its fan. Every reception is a pessimistic determinant, and
// the next round's first send blocks in WAITLOGGED until all of them
// cleared the fleet — so end-to-end time tracks EL service throughput.
func fleetProgram(rounds, fan int) cluster.Program {
	return func(p *mpi.Proc) {
		n := p.Size()
		buf := make([]byte, 8)
		for r := 0; r < rounds; r++ {
			for f := 1; f <= fan; f++ {
				p.Send((p.Rank()+f)%n, 1, buf)
			}
			for f := 1; f <= fan; f++ {
				p.Recv((p.Rank()-f+n)%n, 1)
			}
		}
	}
}

// fleetRun measures one sweep cell.
func fleetRun(shards, ranks, fan, rounds int) FleetPoint {
	cfg := cluster.Config{
		Impl: cluster.V2, N: ranks,
		ShardSeed: 42,
		Trace:     true, TraceCap: 512,
	}
	if shards > 1 {
		cfg.ELShards = shards
	}
	res := cluster.Run(cfg, fleetProgram(rounds, fan))
	pt := FleetPoint{
		Shards:  shards,
		Ranks:   ranks,
		Elapsed: res.Elapsed,
		Events:  res.ELLogged,
		AuditOK: cluster.Audit(res).OK() && cluster.AuditTrace(res).OK(),
	}
	if res.Elapsed > 0 {
		pt.DetPerSec = float64(res.ELLogged) / res.Elapsed.Seconds()
	}
	for _, d := range res.Daemons {
		pt.ELWaitUS += d.ELWaitNS / 1e3
	}
	return pt
}

// FleetSweepData runs leg 1 (and leg 2 as the returned thousand row).
func FleetSweepData(quick bool) ([]FleetPoint, FleetPoint) {
	shardCounts := []int{1, 2, 4, 8}
	ranks, fan, rounds := 32, 8, 12
	thousandRanks, thousandShards := 1000, 8
	if quick {
		shardCounts = []int{1, 2, 4}
		ranks, fan, rounds = 16, 8, 6
		thousandRanks, thousandShards = 200, 4
	}
	var sweep []FleetPoint
	var base float64
	for _, s := range shardCounts {
		pt := fleetRun(s, ranks, fan, rounds)
		if s == 1 {
			base = pt.DetPerSec
		}
		if base > 0 {
			pt.Speedup = pt.DetPerSec / base
		}
		sweep = append(sweep, pt)
	}
	thousand := fleetRun(thousandShards, thousandRanks, 1, 2)
	return sweep, thousand
}

// --- Leg 3: the parallel vtime core -----------------------------------------

// parLaneState is one lane's protocol state, touched only by events
// executing in that lane — the isolation contract of vtime.Par.
type parLaneState struct {
	clock    uint64            // reception clock
	sends    map[int]uint64    // per-destination sender clock
	chanSeq  map[int]uint64    // per-sender channel sequence
	delivers []core.Event      // the lane's delivery log, audit input
	sink     uint64            // fold of the synthetic per-event work
	left     int               // remaining self-repost steps
}

// parSpin is the synthetic per-event work (determinant serialization,
// dedup lookups): enough CPU per event that the parallel leg measures
// compute scaling, not merge overhead. The fold is returned so the
// loop cannot be eliminated.
func parSpin(x uint64) uint64 {
	for i := 0; i < 600; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// fleetParRun executes the lane workload on one core configuration:
// every lane repeatedly posts small messages to its fan neighbors, each
// delivery committing a determinant into the receiving lane's log.
// Per-channel delays are constant, so FIFO order is preserved by the
// (at, seq) schedule and the delivery logs must pass the auditor.
func fleetParRun(lanes, workers, steps, fan int) FleetParPoint {
	p := vtime.NewPar(lanes, workers)
	st := make([]*parLaneState, lanes)
	for i := range st {
		st[i] = &parLaneState{
			sends:   make(map[int]uint64),
			chanSeq: make(map[int]uint64),
			left:    steps,
		}
	}
	chanDelay := func(s, r int) time.Duration {
		return time.Duration(1+(s*31+r*17)%7) * time.Microsecond
	}
	var step func(lane int) vtime.Handler
	message := func(sender int, senderClock uint64) vtime.Handler {
		return func(c *vtime.ParCtx) {
			s := st[c.Lane()]
			s.sink = parSpin(s.sink ^ senderClock)
			s.clock++
			s.chanSeq[sender]++
			s.delivers = append(s.delivers, core.Event{
				Sender:      sender,
				SenderClock: senderClock,
				RecvClock:   s.clock,
				Seq:         s.chanSeq[sender],
			})
		}
	}
	step = func(lane int) vtime.Handler {
		return func(c *vtime.ParCtx) {
			s := st[lane]
			if s.left == 0 {
				return
			}
			s.left--
			for f := 1; f <= fan; f++ {
				to := (lane + f) % lanes
				s.sends[to]++
				c.Post(to, chanDelay(lane, to), message(lane, s.sends[to]))
			}
			c.Post(lane, 10*time.Microsecond, step(lane))
		}
	}
	for i := 0; i < lanes; i++ {
		p.Post(i, 0, step(i))
	}
	t0 := time.Now()
	p.Run()
	wall := time.Since(t0)

	deliveries := make([][]core.Event, lanes)
	for i, s := range st {
		deliveries[i] = s.delivers
	}
	pt := FleetParPoint{
		Lanes:        lanes,
		Workers:      workers,
		Events:       int64(p.Executed()),
		WallMS:       float64(wall) / float64(time.Millisecond),
		ScheduleHash: fmt.Sprintf("%016x", p.ScheduleHash()),
		AuditOK:      cluster.Audit(cluster.Result{Deliveries: deliveries}).OK(),
	}
	if wall > 0 {
		pt.EventsPerSec = float64(pt.Events) / wall.Seconds()
	}
	return pt
}

// FleetParData runs leg 3.
func FleetParData(quick bool) []FleetParPoint {
	lanes, steps, fan := 1024, 24, 4
	if quick {
		lanes, steps, fan = 256, 12, 4
	}
	serial := fleetParRun(lanes, 1, steps, fan)
	serial.Speedup = 1
	// The parallel row always runs with several workers, even on one
	// core: the claim under test is the determinism contract (identical
	// schedule hash under real concurrency), and wall-clock speedup is
	// reported for whatever cores the machine has — ≈1× on a single
	// core, approaching the core count otherwise.
	w := runtime.GOMAXPROCS(0)
	if w < 4 {
		w = 4
	}
	par := fleetParRun(lanes, w, steps, fan)
	if par.WallMS > 0 {
		par.Speedup = serial.WallMS / par.WallMS
	}
	return []FleetParPoint{serial, par}
}

// FleetData assembles the whole artifact.
func FleetData(quick bool) FleetResult {
	sweep, thousand := FleetSweepData(quick)
	return FleetResult{
		Cores:    runtime.GOMAXPROCS(0),
		Sweep:    sweep,
		Thousand: thousand,
		Par:      FleetParData(quick),
	}
}

// Fleet regenerates the sharded-fleet scaling tables.
func Fleet(w io.Writer, quick bool) error {
	data := FleetData(quick)
	t := newTable(w)
	t.row("shards", "ranks", "time", "events", "dets/s", "vs 1 shard", "el wait µs", "audit")
	rows := append(append([]FleetPoint(nil), data.Sweep...), data.Thousand)
	for _, pt := range rows {
		audit := "OK"
		if !pt.AuditOK {
			audit = "FAILED"
		}
		vs := "-"
		if pt.Speedup > 0 {
			vs = fmt.Sprintf("%.2fx", pt.Speedup)
		}
		t.row(pt.Shards, pt.Ranks, pt.Elapsed.Round(time.Microsecond),
			pt.Events, fmt.Sprintf("%.0f", pt.DetPerSec), vs, pt.ELWaitUS, audit)
	}
	t.flush()
	fmt.Fprintln(w)
	t = newTable(w)
	t.row("lanes", "workers", "events", "wall ms", "events/s", "speedup", "schedule", "audit")
	for _, pt := range data.Par {
		audit := "OK"
		if !pt.AuditOK {
			audit = "FAILED"
		}
		t.row(pt.Lanes, pt.Workers, pt.Events, fmt.Sprintf("%.1f", pt.WallMS),
			fmt.Sprintf("%.0f", pt.EventsPerSec), fmt.Sprintf("%.2fx", pt.Speedup),
			pt.ScheduleHash, audit)
	}
	t.flush()
	fmt.Fprintf(w, "fleet sweep: %d-rank neighbor exchange; parallel core on %d cores — schedule hashes must match\n",
		data.Sweep[0].Ranks, data.Cores)
	return nil
}
