package bench

import (
	"fmt"
	"io"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/mpi"
)

// Perf experiment: the critical-path cost of pessimistic determinant
// logging, swept over the pipelined-window depth. The workload is a
// burst-reply pattern built to stress WAITLOGGED: each round rank 0
// sends a burst of messages, and rank 1 — now holding one reception
// event per message — must get every event acked by the logger before
// its reply may leave. With stop-and-wait (window 1) the events drain
// one logger round-trip each; a window ≥ 4 overlaps them, and event
// batching collapses the queue into adaptive batches. The sweep prices
// all three against each other at several message sizes.

// PerfPoint is one (size, window, batching) point of the sweep.
type PerfPoint struct {
	Size     int
	Window   int
	Batching bool
	Elapsed  time.Duration
	PerMsg   time.Duration // elapsed per burst message
	Speedup  float64       // vs window=1 at the same size and batching
	ELWaits  int64         // sends that actually blocked on WAITLOGGED
	// The per-message time splits into the EL-ack wait (what the window
	// actually pipelines) and everything else — payload serialization,
	// transport and the SAVED-log copy — which no window depth can
	// touch. A flat Speedup column at large sizes is not a broken sweep:
	// ELWaitUS shows the gate has already vanished under the
	// serialization time it overlaps with.
	ELWaitUS int64 // virtual µs spent blocked in WAITLOGGED
	OtherUS  int64 // elapsed µs outside the gate (serialization + transport)
	Events   int64 // reception events submitted to the logger
}

const perfBurst = 16 // messages per round; rank 1's reply gates on all of them

// perfRun measures one point of the sweep.
func perfRun(size, window int, batching bool, rounds int) PerfPoint {
	res := cluster.Run(cluster.Config{
		Impl: cluster.V2, N: 2,
		EventBatching: batching,
		ELWindow:      window,
	}, func(p *mpi.Proc) {
		msg := make([]byte, size)
		for r := 0; r < rounds; r++ {
			if p.Rank() == 0 {
				for i := 0; i < perfBurst; i++ {
					p.Send(1, 1, msg)
				}
				p.Recv(1, 2)
			} else {
				for i := 0; i < perfBurst; i++ {
					p.Recv(0, 1)
				}
				p.Send(0, 2, []byte{1})
			}
		}
	})
	pt := PerfPoint{
		Size:     size,
		Window:   window,
		Batching: batching,
		Elapsed:  res.Elapsed,
		PerMsg:   res.Elapsed / time.Duration(rounds*perfBurst),
	}
	for _, d := range res.Daemons {
		pt.ELWaits += d.ELWaits
		pt.ELWaitUS += d.ELWaitNS / 1e3
		pt.Events += d.EventsLogged
	}
	pt.OtherUS = int64(res.Elapsed/time.Microsecond) - pt.ELWaitUS
	return pt
}

// PerfData runs the sweep. Window 1 — explicit stop-and-wait — is
// always first at each (size, batching) so it anchors the Speedup
// column.
func PerfData(quick bool) []PerfPoint {
	// The window sweep deliberately runs past the saturation point (a
	// burst of perfBurst events can keep at most perfBurst batches in
	// flight): the last useful depth shows up as the knee, not as the
	// edge of the sweep.
	sizes := []int{0, 512, 4 << 10, 64 << 10}
	windows := []int{1, 2, 4, 8, 16, 32}
	rounds := 30
	if quick {
		sizes = []int{0, 4 << 10}
		windows = []int{1, 8}
		rounds = 10
	}
	var out []PerfPoint
	for _, batching := range []bool{false, true} {
		for _, size := range sizes {
			var base time.Duration
			for _, w := range windows {
				pt := perfRun(size, w, batching, rounds)
				if w == 1 {
					base = pt.Elapsed
				}
				pt.Speedup = float64(base) / float64(pt.Elapsed)
				out = append(out, pt)
			}
		}
	}
	return out
}

// Perf regenerates the pipelined-logging sweep.
func Perf(w io.Writer, quick bool) error {
	pts := PerfData(quick)
	t := newTable(w)
	t.row("size", "window", "batching", "time", "per msg", "vs w=1", "el waits", "el wait µs", "other µs", "events")
	for _, pt := range pts {
		t.row(sizeLabel(pt.Size), pt.Window, pt.Batching,
			pt.Elapsed.Round(time.Microsecond), pt.PerMsg.Round(time.Microsecond),
			fmt.Sprintf("%.2fx", pt.Speedup), pt.ELWaits, pt.ELWaitUS, pt.OtherUS, pt.Events)
	}
	t.flush()
	fmt.Fprintf(w, "burst=%d messages per round; window=1 is stop-and-wait determinant logging\n", perfBurst)
	return nil
}
