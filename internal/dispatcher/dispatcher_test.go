package dispatcher

import (
	"testing"
	"time"

	"mpichv/internal/netsim"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

func TestDoneAfterAllFinalize(t *testing.T) {
	sim := vtime.NewSim()
	completed := false
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		d := Start(sim, fab, Config{
			Node:    1003,
			Ranks:   3,
			Kill:    func(int) {},
			Respawn: func(int) {},
		})
		for r := 0; r < 3; r++ {
			ep := fab.Attach(r, "cn")
			ep.Send(1003, wire.KFinalize, nil)
		}
		_, ok := d.Done().Recv()
		completed = ok
	})
	if !completed {
		t.Fatal("dispatcher never signalled completion")
	}
}

func TestDuplicateFinalizeCountedOnce(t *testing.T) {
	sim := vtime.NewSim()
	done := false
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		d := Start(sim, fab, Config{Node: 1003, Ranks: 2, Kill: func(int) {}, Respawn: func(int) {}})
		ep0 := fab.Attach(0, "cn0")
		ep1 := fab.Attach(1, "cn1")
		ep0.Send(1003, wire.KFinalize, nil)
		ep0.Send(1003, wire.KFinalize, nil) // restarted rank finalizing again
		sim.Sleep(5 * time.Millisecond)
		if _, ok := d.Done().TryRecv(); ok {
			t.Error("completed with only one distinct rank finalized")
		}
		ep1.Send(1003, wire.KFinalize, nil)
		_, done = d.Done().Recv()
	})
	if !done {
		t.Fatal("never completed")
	}
}

func TestFaultKillsAndRespawnsAfterDelay(t *testing.T) {
	sim := vtime.NewSim()
	var killedAt, respawnedAt time.Duration
	var killedRank, respawnedRank int
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		d := Start(sim, fab, Config{
			Node:           1003,
			Ranks:          2,
			Faults:         []Fault{{Time: 10 * time.Millisecond, Rank: 1}},
			DetectionDelay: 5 * time.Millisecond,
			Kill: func(r int) {
				killedRank, killedAt = r, sim.Now()
			},
			Respawn: func(r int) {
				respawnedRank, respawnedAt = r, sim.Now()
				// The respawned rank finalizes immediately.
				fab.Attach(r, "cn").Send(1003, wire.KFinalize, nil)
			},
		})
		fab.Attach(0, "cn0").Send(1003, wire.KFinalize, nil)
		d.Done().Recv()
		if d.Kills != 1 || d.Restarts != 1 {
			t.Errorf("kills=%d restarts=%d", d.Kills, d.Restarts)
		}
	})
	if killedRank != 1 || respawnedRank != 1 {
		t.Errorf("killed %d, respawned %d", killedRank, respawnedRank)
	}
	if killedAt != 10*time.Millisecond {
		t.Errorf("killed at %v", killedAt)
	}
	if respawnedAt != 15*time.Millisecond {
		t.Errorf("respawned at %v, want kill+detection", respawnedAt)
	}
}

func TestFaultOnFinalizedRankIgnored(t *testing.T) {
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		killed := false
		d := Start(sim, fab, Config{
			Node:           1003,
			Ranks:          1,
			Faults:         []Fault{{Time: 20 * time.Millisecond, Rank: 0}},
			DetectionDelay: time.Millisecond,
			Kill:           func(int) { killed = true },
			Respawn:        func(int) {},
		})
		fab.Attach(0, "cn0").Send(1003, wire.KFinalize, nil)
		d.Done().Recv()
		sim.Sleep(50 * time.Millisecond)
		if killed {
			t.Error("a finalized rank was killed by the fault plan")
		}
		if d.Kills != 0 {
			t.Errorf("Kills = %d", d.Kills)
		}
	})
}
