// Package dispatcher implements the execution monitor of the paper's
// mpirun (§4.7): it launches the computing nodes, watches them (a socket
// disconnection is a trusty fault detector in the synchronous-network
// model), and re-launches crashed programs. Fault injection is folded in
// here because the dispatcher is the component that observes faults: a
// scheduled fault kills the node's endpoint, and the dispatcher notices
// after the configured detection delay.
//
// Beyond computing nodes, the dispatcher also monitors the service
// nodes (event loggers, checkpoint servers): a crashed service is
// respawned over its stable store after the same detection delay,
// while the daemons bridge the outage with their retransmit/failover
// machinery.
package dispatcher

import (
	"math"
	"time"

	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// Fault is one scheduled node kill. Rank may name a computing node or a
// monitored service node. A Permanent fault is never respawned — the
// volatile-node model's definitive departure — forcing clients onto
// backups.
type Fault struct {
	Time      time.Duration // virtual time at which the node dies
	Rank      int
	Permanent bool
}

// Config parameterizes a Dispatcher.
type Config struct {
	Node  int // dispatcher's node id
	Ranks int // number of computing nodes

	// Faults is the injection plan (sorted or not).
	Faults []Fault
	// DetectionDelay is the time between a death and the dispatcher
	// noticing the broken socket.
	DetectionDelay time.Duration

	// Kill abruptly detaches a node (typically fabric.Kill).
	Kill func(rank int)
	// Respawn restarts a crashed node (new daemon + new MPI process
	// with Restarted=true).
	Respawn func(rank int)

	// Services lists service node ids (event loggers, checkpoint
	// servers) the dispatcher also monitors; a fault against one is
	// answered by RespawnService rather than Respawn.
	Services []int
	// RespawnService restarts a crashed service frontend over its
	// surviving stable store.
	RespawnService func(node int)

	// ELShardOf maps an event-logger node id to its fleet shard index.
	// When set, the dispatcher tracks per-shard replica liveness: the
	// moment a shard's live count drops below ELShardQuorum it
	// broadcasts KELShardDown to every computing node (the daemons
	// reroute the shard's channel range to its ring successor), and
	// when respawns bring the count back it broadcasts KELShardUp (the
	// daemons route the range home and backfill the rejoined shard).
	// Respawned computing nodes are brought up to date with the current
	// down-set, since the broadcast they missed died with them.
	ELShardOf     map[int]int
	ELShardQuorum int // live replicas a shard needs to hold its write quorum
	// ServiceRespawnDelay is the extra time a service respawn takes
	// beyond fault detection (provisioning a replacement node). Zero
	// keeps the legacy timing: respawn right at detection.
	ServiceRespawnDelay time.Duration
}

// Dispatcher monitors one run.
type Dispatcher struct {
	rt  vtime.Runtime
	cfg Config
	ep  transport.Endpoint
	in  *vtime.Mailbox[event]

	services  map[int]bool
	finalized map[int]bool
	done      *vtime.Mailbox[struct{}]

	shardAlive map[int]int  // shard → live replica count
	shardDown  map[int]bool // shards currently broadcast as down

	Restarts        int
	Kills           int
	ServiceKills    int
	ServiceRestarts int
	ShardDowns      int
	ShardUps        int
}

type event struct {
	frame     transport.Frame
	isFrame   bool
	fault     int // rank to kill now
	respawn   int // rank to respawn now
	permanent bool
	isNotice  bool // detection fired: re-evaluate shard quorum state
	notice    int  // shard index under evaluation
}

// Start attaches and runs the dispatcher. Done() signals when every rank
// has finalized.
func Start(rt vtime.Runtime, fab transport.Fabric, cfg Config) *Dispatcher {
	d := &Dispatcher{
		rt:        rt,
		cfg:       cfg,
		ep:        fab.Attach(cfg.Node, "dispatcher"),
		in:        vtime.NewMailbox[event](rt, "dispatcher"),
		services:  make(map[int]bool, len(cfg.Services)),
		finalized: make(map[int]bool),
		done:      vtime.NewMailbox[struct{}](rt, "dispatcher-done"),
	}
	for _, s := range cfg.Services {
		d.services[s] = true
	}
	if len(cfg.ELShardOf) > 0 {
		d.shardAlive = make(map[int]int)
		d.shardDown = make(map[int]bool)
		for _, k := range cfg.ELShardOf {
			d.shardAlive[k]++
		}
	}
	rt.Go("dispatcher-pump", func() {
		for {
			f, ok := d.ep.Inbox().Recv()
			if !ok {
				return
			}
			if !d.in.Send(event{isFrame: true, frame: f}) {
				return
			}
		}
	})
	for _, f := range cfg.Faults {
		f := f
		d.in.SendAfter(f.Time, event{fault: f.Rank, respawn: -1, permanent: f.Permanent})
	}
	rt.Go("dispatcher", d.run)
	return d
}

// Done returns a mailbox receiving one item when all ranks finalized.
func (d *Dispatcher) Done() *vtime.Mailbox[struct{}] { return d.done }

func (d *Dispatcher) run() {
	for {
		e, ok := d.in.Recv()
		if !ok {
			return
		}
		switch {
		case e.isFrame:
			if e.frame.Kind == wire.KFinalize {
				if !d.finalized[e.frame.From] {
					d.finalized[e.frame.From] = true
					if len(d.finalized) == d.cfg.Ranks {
						d.done.Send(struct{}{})
					}
				}
				// Always confirm, even a duplicate: on a lossy fabric
				// the retransmission means the daemon never saw the
				// first ack.
				d.ep.Send(e.frame.From, wire.KFinalizeAck, nil)
			}
		case e.isNotice:
			// Detection fired for a shard replica death: if the losses
			// leave the shard short of its write quorum, tell every
			// computing node to reroute the shard's channel range.
			if d.shardAlive[e.notice] < d.cfg.ELShardQuorum && !d.shardDown[e.notice] {
				d.shardDown[e.notice] = true
				d.ShardDowns++
				d.bcastShard(wire.KELShardDown, e.notice)
			}
		case e.respawn >= 0:
			if d.services[e.respawn] {
				d.ServiceRestarts++
				if d.cfg.RespawnService != nil {
					d.cfg.RespawnService(e.respawn)
				}
				if k, ok := d.shardIdx(e.respawn); ok {
					d.shardAlive[k]++
					// The shard regained its quorum: route its range home.
					// The daemons' history backfill restores what the dead
					// replicas lost.
					if d.shardAlive[k] >= d.cfg.ELShardQuorum && d.shardDown[k] {
						delete(d.shardDown, k)
						d.ShardUps++
						d.bcastShard(wire.KELShardUp, k)
					}
				}
				continue
			}
			d.Restarts++
			d.cfg.Respawn(e.respawn)
			// The respawned daemon missed any shard-down broadcast that
			// predates it; replay the current down-set so it routes
			// around dead shards from its first submission.
			for k := range d.shardDown {
				d.ep.Send(e.respawn, wire.KELShardDown, wire.EncodeU32(uint32(k)))
			}
		default:
			if d.services[e.fault] {
				d.ServiceKills++
				d.cfg.Kill(e.fault)
				if k, ok := d.shardIdx(e.fault); ok {
					d.shardAlive[k]--
					d.in.SendAfter(d.cfg.DetectionDelay, event{isNotice: true, notice: k, fault: -1, respawn: -1})
				}
				if !e.permanent {
					d.in.SendAfter(d.cfg.DetectionDelay+d.cfg.ServiceRespawnDelay, event{respawn: e.fault, fault: -1})
				}
				continue
			}
			if e.fault < 0 || e.fault >= d.cfg.Ranks {
				continue // a fault plan entry naming an unknown node
			}
			// A fault fires only against nodes still computing; a
			// finalized MPI process has no state left to lose (its
			// daemon keeps serving saved messages, as the paper's
			// daemons keep running until mpirun cleans the pool).
			if d.finalized[e.fault] {
				continue
			}
			d.Kills++
			d.cfg.Kill(e.fault)
			if !e.permanent {
				d.in.SendAfter(d.cfg.DetectionDelay, event{respawn: e.fault, fault: -1})
			}
		}
	}
}

// shardIdx maps a service node to its EL fleet shard, if it is one.
func (d *Dispatcher) shardIdx(node int) (int, bool) {
	if d.shardAlive == nil {
		return 0, false
	}
	k, ok := d.cfg.ELShardOf[node]
	return k, ok
}

// bcastShard announces a shard liveness transition to every computing
// node.
func (d *Dispatcher) bcastShard(kind uint8, k int) {
	for r := 0; r < d.cfg.Ranks; r++ {
		d.ep.Send(r, kind, wire.EncodeU32(uint32(k)))
	}
}

// RandomFaults draws a reproducible Poisson fault plan: kills arrive at
// the given rate (faults per second of virtual time) over the horizon,
// each against a target chosen uniformly from targets. The same seed
// always yields the same plan, which is what lets a chaos experiment be
// re-run bit-identically.
func RandomFaults(seed uint64, rate float64, horizon time.Duration, targets []int) []Fault {
	if rate <= 0 || horizon <= 0 || len(targets) == 0 {
		return nil
	}
	rng := seed
	next := func() float64 {
		rng = rng*2862933555777941757 + 3037000493
		return float64(rng>>11) / float64(1<<53)
	}
	var plan []Fault
	t := time.Duration(0)
	for {
		u := next()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		gap := time.Duration(-math.Log(u) / rate * float64(time.Second))
		if gap < time.Millisecond {
			gap = time.Millisecond
		}
		t += gap
		if t >= horizon {
			return plan
		}
		plan = append(plan, Fault{Time: t, Rank: targets[int(next()*float64(len(targets)))%len(targets)]})
	}
}

// DoubleFaults draws a reproducible plan of correlated fault pairs: each
// Poisson arrival kills one target and, within window, a second distinct
// one — landing the second death while the first victim is typically
// still mid-recovery (fetching its image, or between RESTART1 and
// RESTART2). This is the overlap the single-fault plans of RandomFaults
// almost never produce, and exactly the case quorum replication must
// survive. Same seed, same plan.
func DoubleFaults(seed uint64, rate float64, horizon, window time.Duration, targets []int) []Fault {
	if rate <= 0 || horizon <= 0 || len(targets) == 0 {
		return nil
	}
	rng := seed ^ 0x5bf0_3635
	next := func() float64 {
		rng = rng*2862933555777941757 + 3037000493
		return float64(rng>>11) / float64(1<<53)
	}
	if window <= 0 {
		window = 50 * time.Millisecond
	}
	var plan []Fault
	t := time.Duration(0)
	for {
		u := next()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		gap := time.Duration(-math.Log(u) / rate * float64(time.Second))
		if gap < time.Millisecond {
			gap = time.Millisecond
		}
		t += gap
		if t >= horizon {
			return plan
		}
		first := targets[int(next()*float64(len(targets)))%len(targets)]
		plan = append(plan, Fault{Time: t, Rank: first})
		if len(targets) < 2 {
			continue
		}
		second := first
		for second == first {
			second = targets[int(next()*float64(len(targets)))%len(targets)]
		}
		offset := time.Duration(next() * float64(window))
		if t+offset < horizon {
			plan = append(plan, Fault{Time: t + offset, Rank: second})
		}
	}
}
