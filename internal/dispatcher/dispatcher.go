// Package dispatcher implements the execution monitor of the paper's
// mpirun (§4.7): it launches the computing nodes, watches them (a socket
// disconnection is a trusty fault detector in the synchronous-network
// model), and re-launches crashed programs. Fault injection is folded in
// here because the dispatcher is the component that observes faults: a
// scheduled fault kills the node's endpoint, and the dispatcher notices
// after the configured detection delay.
package dispatcher

import (
	"time"

	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// Fault is one scheduled node kill.
type Fault struct {
	Time time.Duration // virtual time at which the node dies
	Rank int
}

// Config parameterizes a Dispatcher.
type Config struct {
	Node  int // dispatcher's node id
	Ranks int // number of computing nodes

	// Faults is the injection plan (sorted or not).
	Faults []Fault
	// DetectionDelay is the time between a death and the dispatcher
	// noticing the broken socket.
	DetectionDelay time.Duration

	// Kill abruptly detaches a node (typically fabric.Kill).
	Kill func(rank int)
	// Respawn restarts a crashed node (new daemon + new MPI process
	// with Restarted=true).
	Respawn func(rank int)
}

// Dispatcher monitors one run.
type Dispatcher struct {
	rt  vtime.Runtime
	cfg Config
	ep  transport.Endpoint
	in  *vtime.Mailbox[event]

	finalized map[int]bool
	done      *vtime.Mailbox[struct{}]

	Restarts int
	Kills    int
}

type event struct {
	frame   transport.Frame
	isFrame bool
	fault   int // rank to kill now
	respawn int // rank to respawn now
}

// Start attaches and runs the dispatcher. Done() signals when every rank
// has finalized.
func Start(rt vtime.Runtime, fab transport.Fabric, cfg Config) *Dispatcher {
	d := &Dispatcher{
		rt:        rt,
		cfg:       cfg,
		ep:        fab.Attach(cfg.Node, "dispatcher"),
		in:        vtime.NewMailbox[event](rt, "dispatcher"),
		finalized: make(map[int]bool),
		done:      vtime.NewMailbox[struct{}](rt, "dispatcher-done"),
	}
	rt.Go("dispatcher-pump", func() {
		for {
			f, ok := d.ep.Inbox().Recv()
			if !ok {
				return
			}
			if !d.in.Send(event{isFrame: true, frame: f}) {
				return
			}
		}
	})
	for _, f := range cfg.Faults {
		f := f
		d.in.SendAfter(f.Time, event{fault: f.Rank, respawn: -1})
	}
	rt.Go("dispatcher", d.run)
	return d
}

// Done returns a mailbox receiving one item when all ranks finalized.
func (d *Dispatcher) Done() *vtime.Mailbox[struct{}] { return d.done }

func (d *Dispatcher) run() {
	for {
		e, ok := d.in.Recv()
		if !ok {
			return
		}
		switch {
		case e.isFrame:
			if e.frame.Kind == wire.KFinalize {
				if !d.finalized[e.frame.From] {
					d.finalized[e.frame.From] = true
					if len(d.finalized) == d.cfg.Ranks {
						d.done.Send(struct{}{})
					}
				}
			}
		case e.respawn >= 0:
			d.Restarts++
			d.cfg.Respawn(e.respawn)
		default:
			// A fault fires only against nodes still computing; a
			// finalized MPI process has no state left to lose (its
			// daemon keeps serving saved messages, as the paper's
			// daemons keep running until mpirun cleans the pool).
			if d.finalized[e.fault] {
				continue
			}
			d.Kills++
			d.cfg.Kill(e.fault)
			d.in.SendAfter(d.cfg.DetectionDelay, event{respawn: e.fault, fault: -1})
		}
	}
}
