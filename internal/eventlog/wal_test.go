package eventlog

import (
	"path/filepath"
	"testing"

	"mpichv/internal/core"
	"mpichv/internal/walog"
)

func walEvents(n int) []core.Event {
	evs := make([]core.Event, n)
	for i := range evs {
		evs[i] = core.Event{Sender: 1, SenderClock: uint64(i + 1), RecvClock: uint64(i + 1), Seq: uint64(i + 1)}
	}
	return evs
}

// TestStoreWALSurvivesRestart: a store with an armed WAL, killed and
// reopened over the same file, comes back holding every logged event —
// the deployed EL worker's restart path.
func TestStoreWALSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "el.wal")
	st := NewStore()
	if _, err := st.OpenWAL(path, walog.TornConfig{}); err != nil {
		t.Fatal(err)
	}
	evs := walEvents(20)
	st.Add(2, evs[:10])
	st.Add(2, evs[10:])
	st.Add(2, evs[:5]) // duplicates must not re-append
	st.CloseWAL()

	st2 := NewStore()
	res, err := st2.OpenWAL(path, walog.TornConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn != 0 {
		t.Fatalf("clean WAL loaded with %d torn records", res.Torn)
	}
	if st2.Count(2) != 20 {
		t.Fatalf("restarted store holds %d events, want 20", st2.Count(2))
	}
	got := st2.Events(2, 0)
	for i, ev := range got {
		if ev.RecvClock != uint64(i+1) {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
	}
}

// TestStoreWALTornWrites: under injected short writes the reopened
// store holds exactly the records whose appends survived — a torn
// append never poisons its neighbours.
func TestStoreWALTornWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "el.wal")
	st := NewStore()
	if _, err := st.OpenWAL(path, walog.TornConfig{Seed: 11, Every: 4}); err != nil {
		t.Fatal(err)
	}
	evs := walEvents(40)
	for _, ev := range evs {
		st.Add(3, []core.Event{ev}) // one record per event
	}
	st.CloseWAL()

	st2 := NewStore()
	res, err := st2.OpenWAL(path, walog.TornConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn == 0 {
		t.Fatal("fault injector never fired")
	}
	if got := st2.Count(3); got+res.Torn < 40 || got >= 40 {
		t.Fatalf("survivors %d + torn %d inconsistent with 40 appends", got, res.Torn)
	}
	// Every survivor must be one of the appended events, in clock order.
	for i, ev := range st2.Events(3, 0) {
		if ev.Sender != 1 || ev.RecvClock == 0 || ev.RecvClock > 40 {
			t.Fatalf("survivor %d is not an appended event: %+v", i, ev)
		}
	}
}
