package eventlog

import (
	"testing"
	"time"

	"mpichv/internal/core"
	"mpichv/internal/netsim"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// harness wires one event logger and one client endpoint on a simulated
// fabric.
func harness(t *testing.T, service time.Duration, fn func(s *vtime.Sim, srv *Server, client transport.Endpoint)) {
	t.Helper()
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		srv := NewServer(sim, fab.Attach(100, "el"), service)
		srv.Start()
		client := fab.Attach(1, "client")
		fn(sim, srv, client)
	})
}

func recvKind(t *testing.T, ep transport.Endpoint, kind uint8) transport.Frame {
	t.Helper()
	for {
		f, ok := ep.Inbox().Recv()
		if !ok {
			t.Fatal("client inbox closed")
		}
		if f.Kind == kind {
			return f
		}
	}
}

func TestLogAndAck(t *testing.T) {
	harness(t, 0, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		evs := []core.Event{
			{Sender: 2, SenderClock: 1, RecvClock: 1},
			{Sender: 2, SenderClock: 2, RecvClock: 2, Probes: 3},
		}
		client.Send(100, wire.KEventLog, wire.EncodeEventLog(7, evs))
		f := recvKind(t, client, wire.KEventAck)
		seq, cum, err := wire.DecodeEventAck(f.Data)
		if err != nil || seq != 7 {
			t.Fatalf("ack seq = %d %v", seq, err)
		}
		// Batch 7 arrived with 1..6 missing, so the cumulative mark
		// stays at the incarnation base.
		if cum != 0 {
			t.Fatalf("cum = %d, want 0 (gap 1..6 unfilled)", cum)
		}
		if st := srv.Store.Stats(); srv.EventCount(1) != 2 || st.Logged != 2 {
			t.Errorf("stored %d events, Logged=%d", srv.EventCount(1), st.Logged)
		}
	})
}

func TestResubmittedBatchReAckedNotRelogged(t *testing.T) {
	// A retransmission (the ack was lost) must be acked again but must
	// not store the events a second time.
	harness(t, 0, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		evs := []core.Event{{Sender: 2, SenderClock: 1, RecvClock: 1}}
		client.Send(100, wire.KEventLog, wire.EncodeEventLog(1, evs))
		recvKind(t, client, wire.KEventAck)
		client.Send(100, wire.KEventLog, wire.EncodeEventLog(1, evs))
		f := recvKind(t, client, wire.KEventAck)
		if seq, _, _ := wire.DecodeEventAck(f.Data); seq != 1 {
			t.Fatalf("duplicate not re-acked: seq = %d", seq)
		}
		if st := srv.Store.Stats(); srv.EventCount(1) != 1 || st.Logged != 1 || st.Duplicates != 1 {
			t.Errorf("after duplicate: count=%d Logged=%d Duplicates=%d",
				srv.EventCount(1), st.Logged, st.Duplicates)
		}
	})
}

func TestFetchSortsOutOfOrderSubmissions(t *testing.T) {
	// On a chaotic network batches can arrive out of order; a fetch must
	// still return the events in RecvClock order for replay.
	harness(t, 0, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		client.Send(100, wire.KEventLog, wire.EncodeEventLog(2, []core.Event{
			{Sender: 3, SenderClock: 3, RecvClock: 3}, {Sender: 3, SenderClock: 4, RecvClock: 4},
		}))
		recvKind(t, client, wire.KEventAck)
		client.Send(100, wire.KEventLog, wire.EncodeEventLog(1, []core.Event{
			{Sender: 3, SenderClock: 1, RecvClock: 1}, {Sender: 3, SenderClock: 2, RecvClock: 2},
		}))
		recvKind(t, client, wire.KEventAck)

		client.Send(100, wire.KEventFetch, wire.EncodeU64(0))
		f := recvKind(t, client, wire.KEventFetched)
		got, err := wire.DecodeEvents(f.Data)
		if err != nil || len(got) != 4 {
			t.Fatalf("fetched %d events, err=%v; want 4", len(got), err)
		}
		for i, ev := range got {
			if ev.RecvClock != uint64(i+1) {
				t.Errorf("event %d has clock %d, want %d", i, ev.RecvClock, i+1)
			}
		}
	})
}

func TestFetchFiltersByClock(t *testing.T) {
	harness(t, 0, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		var evs []core.Event
		for i := uint64(1); i <= 10; i++ {
			evs = append(evs, core.Event{Sender: 3, SenderClock: i, RecvClock: i})
		}
		client.Send(100, wire.KEventLog, wire.EncodeEventLog(1, evs))
		recvKind(t, client, wire.KEventAck)

		client.Send(100, wire.KEventFetch, wire.EncodeU64(7))
		f := recvKind(t, client, wire.KEventFetched)
		got, err := wire.DecodeEvents(f.Data)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 {
			t.Fatalf("fetched %d events, want 3 (clocks 8..10)", len(got))
		}
		for i, ev := range got {
			if ev.RecvClock != uint64(8+i) {
				t.Errorf("event %d clock %d", i, ev.RecvClock)
			}
		}
	})
}

func TestFetchEmptyForUnknownNode(t *testing.T) {
	harness(t, 0, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		client.Send(100, wire.KEventFetch, wire.EncodeU64(0))
		f := recvKind(t, client, wire.KEventFetched)
		got, err := wire.DecodeEvents(f.Data)
		if err != nil || len(got) != 0 {
			t.Fatalf("fetch for fresh node: %v %v", got, err)
		}
	})
}

func TestEventsKeyedPerNode(t *testing.T) {
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		srv := NewServer(sim, fab.Attach(100, "el"), 0)
		srv.Start()
		c1 := fab.Attach(1, "c1")
		c2 := fab.Attach(2, "c2")
		c1.Send(100, wire.KEventLog, wire.EncodeEventLog(1, []core.Event{{Sender: 9, SenderClock: 1, RecvClock: 1}}))
		c2.Send(100, wire.KEventLog, wire.EncodeEventLog(1, []core.Event{{Sender: 9, SenderClock: 1, RecvClock: 1}, {Sender: 9, SenderClock: 2, RecvClock: 2}}))
		recvKind(t, c1, wire.KEventAck)
		recvKind(t, c2, wire.KEventAck)
		if srv.EventCount(1) != 1 || srv.EventCount(2) != 2 {
			t.Errorf("per-node counts: %d %d", srv.EventCount(1), srv.EventCount(2))
		}
	})
}

func TestServiceTimeSerializesBursts(t *testing.T) {
	// With a per-event service time, two batches submitted together
	// are acked at staggered times — the queueing effect that penalizes
	// collective bursts (DESIGN.md, Params2003.ELService).
	var gap time.Duration
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		NewServer(sim, fab.Attach(100, "el"), 100*time.Microsecond).Start()
		c1 := fab.Attach(1, "c1")
		c2 := fab.Attach(2, "c2")
		// Each send owns its buffer: the server recycles KEventLog
		// frames after storing them, so frames must never share bytes.
		ev := []core.Event{{Sender: 0, SenderClock: 1, RecvClock: 1}}
		c1.Send(100, wire.KEventLog, wire.EncodeEventLog(1, ev))
		c2.Send(100, wire.KEventLog, wire.EncodeEventLog(1, ev))
		recvKind(t, c1, wire.KEventAck)
		t1 := sim.Now()
		recvKind(t, c2, wire.KEventAck)
		gap = sim.Now() - t1
	})
	if gap < 90*time.Microsecond {
		t.Errorf("second ack arrived %v after the first; want ≥ the service time", gap)
	}
}

func TestMalformedFramesCountedAndIgnored(t *testing.T) {
	harness(t, 0, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		client.Send(100, wire.KEventLog, []byte{1, 2})
		client.Send(100, wire.KEventFetch, []byte{1})
		// The server must survive and still answer good requests.
		client.Send(100, wire.KEventFetch, wire.EncodeU64(0))
		recvKind(t, client, wire.KEventFetched)
		if st := srv.Store.Stats(); st.Malformed != 2 {
			t.Errorf("Malformed = %d, want 2", st.Malformed)
		}
	})
}

func TestReplicaResyncPullsMissingEvents(t *testing.T) {
	// A replica respawned with an empty store pulls everything its
	// peers hold via anti-entropy and then serves fetches itself.
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		a := NewServer(sim, fab.Attach(100, "el-a"), 0)
		a.Peers = []int{101}
		a.Start()
		client := fab.Attach(1, "client")
		client.Send(100, wire.KEventLog, wire.EncodeEventLog(1, []core.Event{
			{Sender: 2, SenderClock: 1, RecvClock: 1, Seq: 1},
			{Sender: 2, SenderClock: 2, RecvClock: 2, Seq: 2},
		}))
		recvKind(t, client, wire.KEventAck)

		// Replica B joins late with a fresh store and resyncs from A.
		b := NewServer(sim, fab.Attach(101, "el-b"), 0)
		b.Peers = []int{100}
		b.Resync = true
		b.Start()
		sim.Sleep(50 * time.Millisecond)

		client.Send(101, wire.KEventFetch, wire.EncodeU64(0))
		f := recvKind(t, client, wire.KEventFetched)
		got, err := wire.DecodeEvents(f.Data)
		if err != nil || len(got) != 2 {
			t.Fatalf("resynced replica served %d events, err=%v; want 2", len(got), err)
		}
		st := b.Store.Stats()
		if st.SyncedIn != 2 || st.Resyncs == 0 {
			t.Errorf("resync stats: %+v", st)
		}
	})
}

func TestResyncMarksPullOnlyMissingRange(t *testing.T) {
	// A stale (not empty) replica asks only for events above its
	// high-water marks; overlap is not re-counted.
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		full := NewServer(sim, fab.Attach(100, "el-a"), 0)
		full.Start()
		client := fab.Attach(1, "client")
		client.Send(100, wire.KEventLog, wire.EncodeEventLog(1, []core.Event{
			{Sender: 2, SenderClock: 1, RecvClock: 1, Seq: 1},
			{Sender: 2, SenderClock: 2, RecvClock: 2, Seq: 2},
			{Sender: 2, SenderClock: 3, RecvClock: 3, Seq: 3},
		}))
		recvKind(t, client, wire.KEventAck)

		stale := NewStore()
		stale.Add(1, []core.Event{{Sender: 2, SenderClock: 1, RecvClock: 1, Seq: 1}})
		b := NewServerWithStore(sim, fab.Attach(101, "el-b"), 0, stale)
		b.Peers = []int{100}
		b.Resync = true
		b.Start()
		sim.Sleep(50 * time.Millisecond)

		if n := stale.Count(1); n != 3 {
			t.Fatalf("stale replica holds %d events after resync, want 3", n)
		}
		if st := stale.Stats(); st.SyncedIn != 2 {
			t.Errorf("SyncedIn = %d, want 2 (only the missing range)", st.SyncedIn)
		}
	})
}

// TestResyncedReplicaServesReadQuorumMerge: two surviving replicas hold
// *divergent* partial stores (each event reached a different write
// quorum); a replica respawned empty anti-entropies from both peers and
// must then serve the union — so a read quorum that lands on the
// rejoined replica still sees every committed determinant.
func TestResyncedReplicaServesReadQuorumMerge(t *testing.T) {
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		e1 := core.Event{Sender: 2, SenderClock: 1, RecvClock: 1, Seq: 1}
		e2 := core.Event{Sender: 2, SenderClock: 2, RecvClock: 2, Seq: 2}
		e3 := core.Event{Sender: 3, SenderClock: 1, RecvClock: 3, Seq: 3}
		stA := NewStore()
		stA.Add(1, []core.Event{e1, e2}) // write quorum {A, old-C}
		stB := NewStore()
		stB.Add(1, []core.Event{e2, e3}) // write quorum {B, old-C}
		NewServerWithStore(sim, fab.Attach(100, "el-a"), 0, stA).Start()
		NewServerWithStore(sim, fab.Attach(101, "el-b"), 0, stB).Start()

		c := NewServer(sim, fab.Attach(102, "el-c"), 0)
		c.Peers = []int{100, 101}
		c.Resync = true
		c.Start()
		sim.Sleep(100 * time.Millisecond)

		if !c.Synced() {
			t.Fatal("rejoined replica never reported synced")
		}
		client := fab.Attach(1, "client")
		client.Send(102, wire.KEventFetch, wire.EncodeU64(0))
		f := recvKind(t, client, wire.KEventFetched)
		got, err := wire.DecodeEvents(f.Data)
		if err != nil {
			t.Fatal(err)
		}
		want := []core.Event{e1, e2, e3}
		if len(got) != len(want) {
			t.Fatalf("rejoined replica served %d events, want %d (the union): %+v", len(got), len(want), got)
		}
		for i, ev := range got {
			if ev != want[i] {
				t.Fatalf("event %d = %+v, want %+v", i, ev, want[i])
			}
		}
	})
}

func TestServersShareStore(t *testing.T) {
	// Two frontends over one store: events logged through the first are
	// served by the second — the failover configuration.
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		st := NewStore()
		NewServerWithStore(sim, fab.Attach(100, "el-a"), 0, st).Start()
		NewServerWithStore(sim, fab.Attach(101, "el-b"), 0, st).Start()
		client := fab.Attach(1, "client")
		client.Send(100, wire.KEventLog, wire.EncodeEventLog(1, []core.Event{{Sender: 2, SenderClock: 1, RecvClock: 1}}))
		recvKind(t, client, wire.KEventAck)
		client.Send(101, wire.KEventFetch, wire.EncodeU64(0))
		f := recvKind(t, client, wire.KEventFetched)
		got, err := wire.DecodeEvents(f.Data)
		if err != nil || len(got) != 1 {
			t.Fatalf("backup served %d events, err=%v; want 1", len(got), err)
		}
	})
}

func TestCumulativeAckTracksContiguousPrefix(t *testing.T) {
	// The mark on each ack is the highest seq with every batch of the
	// same incarnation up to it stored: out-of-order arrivals park
	// until the gap fills, and a new incarnation starts a new stream.
	harness(t, 0, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		ev := []core.Event{{Sender: 2, SenderClock: 1, RecvClock: 1}}
		ack := func(seq uint64) (uint64, uint64) {
			t.Helper()
			client.Send(100, wire.KEventLog, wire.EncodeEventLog(seq, ev))
			got, cum, err := wire.DecodeEventAck(recvKind(t, client, wire.KEventAck).Data)
			if err != nil || got != seq {
				t.Fatalf("ack for %d = (%d, %v)", seq, got, err)
			}
			return got, cum
		}
		if _, cum := ack(1); cum != 1 {
			t.Errorf("after batch 1: cum = %d, want 1", cum)
		}
		if _, cum := ack(3); cum != 1 {
			t.Errorf("after batch 3 (2 missing): cum = %d, want 1", cum)
		}
		if _, cum := ack(2); cum != 3 {
			t.Errorf("after gap filled: cum = %d, want 3", cum)
		}
		// Same stream, duplicate batch: the mark must not regress.
		if _, cum := ack(2); cum != 3 {
			t.Errorf("after duplicate: cum = %d, want 3", cum)
		}
		// A restarted submitter logs under a new incarnation namespace;
		// its mark restarts from the incarnation base.
		base := uint64(2) << 32
		if _, cum := ack(base + 1); cum != base+1 {
			t.Errorf("new incarnation: cum = %d, want %d", cum, base+1)
		}
		if _, cum := ack(base + 3); cum != base+1 {
			t.Errorf("new incarnation gap: cum = %d, want %d", cum, base+1)
		}
	})
}
