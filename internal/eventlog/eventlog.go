// Package eventlog implements the Event Logger (paper §4.5): a
// repository running on a reliable node that stores the dependency
// information of every message reception and serves it back to
// re-executing nodes. Several event loggers can serve one system; each
// computing node talks to exactly one, and loggers never need to talk to
// each other.
//
// The package splits the logger into a Server — the protocol frontend
// bound to one network endpoint — and a Store, the stable storage
// behind it. Several Server instances may share one Store, modeling the
// paper's reliable-node assumption while the frontends themselves crash
// and fail over: a backup logger serves fetches for events the primary
// logged. The Store is idempotent (duplicate submissions, retransmitted
// after a lost ack, change nothing) so the daemon may retry freely.
package eventlog

import (
	"sort"
	"sync"
	"time"

	"mpichv/internal/core"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// Store is the stable storage of one logical event logger. It is safe
// for use by several Server frontends.
type Store struct {
	mu sync.Mutex
	// events holds, per computing node id, that node's reception
	// events keyed by RecvClock. RecvClock totally orders a node's
	// deliveries (it only grows), so it identifies an event across
	// retransmissions and across incarnations of the node.
	events map[int]map[uint64]core.Event

	// Stats for the experiments.
	Logged     int64 // events stored
	Duplicates int64 // events re-submitted and ignored
	Malformed  int64 // frames that failed to decode
	Acks       int64 // submissions acknowledged
	Fetches    int64 // fetch requests served
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{events: make(map[int]map[uint64]core.Event)}
}

// Add stores a node's events, ignoring any already present, and
// returns how many were new.
func (st *Store) Add(node int, evs []core.Event) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	m := st.events[node]
	if m == nil {
		m = make(map[uint64]core.Event)
		st.events[node] = m
	}
	added := 0
	for _, ev := range evs {
		if _, dup := m[ev.RecvClock]; dup {
			st.Duplicates++
			continue
		}
		m[ev.RecvClock] = ev
		added++
	}
	st.Logged += int64(added)
	return added
}

// Events returns a node's stored events with RecvClock > after, sorted
// by RecvClock. The sort matters: on a chaotic network submissions can
// arrive out of order, and a re-executing node replays in clock order.
func (st *Store) Events(node int, after uint64) []core.Event {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []core.Event
	for _, ev := range st.events[node] {
		if ev.RecvClock > after {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RecvClock < out[j].RecvClock })
	return out
}

// Count reports the number of events stored for a node.
func (st *Store) Count(node int) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.events[node])
}

// Server is one event logger frontend.
type Server struct {
	rt      vtime.Runtime
	ep      transport.Endpoint
	service time.Duration // per-event processing time

	// Store is the stable storage behind this frontend; shared when
	// the server was built with NewServerWithStore.
	Store *Store
}

// NewServer creates an event logger with its own private store.
// service is the per-event processing time of the logger's host (zero
// for an infinitely fast logger).
func NewServer(rt vtime.Runtime, ep transport.Endpoint, service time.Duration) *Server {
	return NewServerWithStore(rt, ep, service, NewStore())
}

// NewServerWithStore creates an event logger frontend over an existing
// store, for failover setups where several frontends (primary and
// respawned or backup instances) must serve the same logged events.
func NewServerWithStore(rt vtime.Runtime, ep transport.Endpoint, service time.Duration, st *Store) *Server {
	return &Server{rt: rt, ep: ep, service: service, Store: st}
}

// Start runs the server loop as an actor.
func (s *Server) Start() {
	s.rt.Go("event-logger", s.run)
}

// EventCount reports the number of events stored for a node.
func (s *Server) EventCount(rank int) int { return s.Store.Count(rank) }

func (s *Server) run() {
	for {
		f, ok := s.ep.Inbox().Recv()
		if !ok {
			return
		}
		switch f.Kind {
		case wire.KEventLog:
			seq, evs, err := wire.DecodeEventLog(f.Data)
			if err != nil {
				s.Store.mu.Lock()
				s.Store.Malformed++
				s.Store.mu.Unlock()
				continue
			}
			if s.service > 0 {
				s.rt.Sleep(time.Duration(len(evs)) * s.service)
			}
			s.Store.Add(f.From, evs)
			// Always ack, even a pure duplicate: the retransmission
			// means the submitter never saw the first ack.
			s.Store.mu.Lock()
			s.Store.Acks++
			s.Store.mu.Unlock()
			s.ep.Send(f.From, wire.KEventAck, wire.EncodeU64(seq))
		case wire.KEventFetch:
			h, err := wire.DecodeU64(f.Data)
			if err != nil {
				s.Store.mu.Lock()
				s.Store.Malformed++
				s.Store.mu.Unlock()
				continue
			}
			s.Store.mu.Lock()
			s.Store.Fetches++
			s.Store.mu.Unlock()
			out := s.Store.Events(f.From, h)
			s.ep.Send(f.From, wire.KEventFetched, wire.EncodeEvents(out))
		}
	}
}
