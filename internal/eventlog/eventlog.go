// Package eventlog implements the Event Logger (paper §4.5): a
// repository running on a reliable node that stores the dependency
// information of every message reception and serves it back to
// re-executing nodes. Several event loggers can serve one system; each
// computing node talks to exactly one, and loggers never need to talk to
// each other.
package eventlog

import (
	"time"

	"mpichv/internal/core"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// Server is one event logger instance.
type Server struct {
	rt      vtime.Runtime
	ep      transport.Endpoint
	service time.Duration // per-event processing time

	// events holds, per computing node id, the reception events of
	// that node in arrival order (which is RecvClock order per node,
	// since a node submits its events in delivery order).
	events map[int][]core.Event

	// Stats for the experiments.
	Logged  int64
	Acks    int64
	Fetches int64
}

// NewServer creates an event logger attached to the given endpoint.
// service is the per-event processing time of the logger's host (zero
// for an infinitely fast logger).
func NewServer(rt vtime.Runtime, ep transport.Endpoint, service time.Duration) *Server {
	return &Server{rt: rt, ep: ep, service: service, events: make(map[int][]core.Event)}
}

// Start runs the server loop as an actor.
func (s *Server) Start() {
	s.rt.Go("event-logger", s.run)
}

// EventCount reports the number of events stored for a node.
func (s *Server) EventCount(rank int) int { return len(s.events[rank]) }

func (s *Server) run() {
	for {
		f, ok := s.ep.Inbox().Recv()
		if !ok {
			return
		}
		switch f.Kind {
		case wire.KEventLog:
			evs, err := wire.DecodeEvents(f.Data)
			if err != nil {
				continue
			}
			if s.service > 0 {
				s.rt.Sleep(time.Duration(len(evs)) * s.service)
			}
			s.events[f.From] = append(s.events[f.From], evs...)
			s.Logged += int64(len(evs))
			s.Acks++
			s.ep.Send(f.From, wire.KEventAck, wire.EncodeU32(uint32(len(evs))))
		case wire.KEventFetch:
			h, err := wire.DecodeU64(f.Data)
			if err != nil {
				continue
			}
			s.Fetches++
			var out []core.Event
			for _, ev := range s.events[f.From] {
				if ev.RecvClock > h {
					out = append(out, ev)
				}
			}
			s.ep.Send(f.From, wire.KEventFetched, wire.EncodeEvents(out))
		}
	}
}
