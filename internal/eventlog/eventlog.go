// Package eventlog implements the Event Logger (paper §4.5): a
// repository that stores the dependency information of every message
// reception and serves it back to re-executing nodes.
//
// The paper runs the logger on a single reliable node. This package
// drops that assumption: a logger is a group of R replica Servers with
// *independent* Stores. A daemon submits every event batch to all R
// replicas and treats it as logged once a write quorum Q has acked; a
// replica that crashed and respawned with an empty store rejoins by
// anti-entropy — it pulls the events it is missing, keyed by
// (node, RecvClock) range, from its peers — and restart-time fetches
// merge a read quorum so no quorum-committed event is ever lost even
// while up to Q−1 replicas hold stale state.
//
// The split between Server (the protocol frontend bound to one network
// endpoint) and Store (the storage behind it) is kept: legacy
// single-logger setups still share one Store across failover
// frontends. The Store is idempotent (duplicate submissions,
// retransmitted after a lost ack, change nothing) so the daemon may
// retry freely.
package eventlog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpichv/internal/core"
	"mpichv/internal/trace"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/walog"
	"mpichv/internal/wire"
)

// Stats is a consistent snapshot of a Store's counters, taken under
// the store lock so concurrent server frontends never expose a torn
// read.
type Stats struct {
	Logged     int64 // events stored
	Duplicates int64 // events re-submitted and ignored
	Malformed  int64 // frames that failed to decode
	Acks       int64 // submissions acknowledged
	Fetches    int64 // fetch requests served
	Resyncs    int64 // anti-entropy rounds completed into this store
	SyncedIn   int64 // events merged from peers during resync
}

// AddTo exports the snapshot into a metrics registry under the "el."
// namespace — the uniform surface the vbench -json artifacts read,
// replacing per-experiment ad-hoc plumbing of these counters.
func (s Stats) AddTo(r *trace.Registry) {
	r.Counter("el.logged").Add(s.Logged)
	r.Counter("el.duplicates").Add(s.Duplicates)
	r.Counter("el.malformed").Add(s.Malformed)
	r.Counter("el.acks").Add(s.Acks)
	r.Counter("el.fetches").Add(s.Fetches)
	r.Counter("el.resyncs").Add(s.Resyncs)
	r.Counter("el.synced_in").Add(s.SyncedIn)
}

// Store is the stable storage of one event logger replica. It is safe
// for use by several Server frontends.
type Store struct {
	mu sync.Mutex
	// events holds, per computing node id, that node's reception
	// events keyed by RecvClock. RecvClock totally orders a node's
	// deliveries (it only grows), so it identifies an event across
	// retransmissions and across incarnations of the node.
	events map[int]map[uint64]core.Event

	// wal, when set (deployed workers), receives every fresh event as
	// an append-only record so a SIGKILLed logger rejoins with its
	// durable prefix instead of an empty store. Volatile in-memory
	// stores (the simulation) never set it.
	wal *walog.Writer

	stats Stats
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{events: make(map[int]map[uint64]core.Event)}
}

// Stats returns a locked snapshot of the store's counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// Add stores a node's events, ignoring any already present, and
// returns how many were new.
func (st *Store) Add(node int, evs []core.Event) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	added := st.addLocked(node, evs, true)
	st.stats.Logged += int64(added)
	return added
}

// addLocked inserts events, optionally counting duplicates. Callers
// hold st.mu.
func (st *Store) addLocked(node int, evs []core.Event, countDups bool) int {
	m := st.events[node]
	if m == nil {
		m = make(map[uint64]core.Event)
		st.events[node] = m
	}
	added := 0
	var fresh []core.Event
	for _, ev := range evs {
		if _, dup := m[ev.RecvClock]; dup {
			if countDups {
				st.stats.Duplicates++
			}
			continue
		}
		m[ev.RecvClock] = ev
		added++
		if st.wal != nil {
			fresh = append(fresh, ev)
		}
	}
	if len(fresh) > 0 {
		// A failed (or injection-torn) append is silent, as a real torn
		// write would be; the loader's resync absorbs the damage.
		st.wal.Append(wire.EncodeNodeEvents(map[int][]core.Event{node: fresh}))
	}
	return added
}

// OpenWAL replays the write-ahead log at path into the store and then
// arms it: every subsequently stored event is appended. torn configures
// the deterministic disk-fault injector (zero value: faults off). Call
// before the store takes traffic.
func (st *Store) OpenWAL(path string, torn walog.TornConfig) (walog.LoadResult, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	w, res, err := walog.ReplayInto(path, torn, func(body []byte) {
		m, err := wire.DecodeNodeEvents(body)
		if err != nil {
			return // an undecodable record is damage the CRC missed: skip it
		}
		for node, evs := range m {
			st.addLocked(node, evs, false)
		}
	})
	if err != nil {
		return res, err
	}
	st.wal = w
	return res, nil
}

// CloseWAL detaches and closes the write-ahead log, if armed.
func (st *Store) CloseWAL() error {
	st.mu.Lock()
	w := st.wal
	st.wal = nil
	st.mu.Unlock()
	if w == nil {
		return nil
	}
	return w.Close()
}

// Events returns a node's stored events with RecvClock > after, sorted
// by RecvClock. The sort matters: on a chaotic network submissions can
// arrive out of order, and a re-executing node replays in clock order.
func (st *Store) Events(node int, after uint64) []core.Event {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []core.Event
	for _, ev := range st.events[node] {
		if ev.RecvClock > after {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RecvClock < out[j].RecvClock })
	return out
}

// Count reports the number of events stored for a node.
func (st *Store) Count(node int) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.events[node])
}

// Marks returns the per-node RecvClock high-water marks, the request
// half of the anti-entropy exchange: "send me everything above these".
// A fresh (respawned) store returns an empty map and pulls everything.
func (st *Store) Marks() map[int]uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	marks := make(map[int]uint64, len(st.events))
	for node, m := range st.events {
		var hi uint64
		for rc := range m {
			if rc > hi {
				hi = rc
			}
		}
		marks[node] = hi
	}
	return marks
}

// EventsSince returns, per node, every stored event with RecvClock
// above that node's mark (absent nodes mean "from the beginning") —
// the response half of the anti-entropy exchange.
func (st *Store) EventsSince(marks map[int]uint64) map[int][]core.Event {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[int][]core.Event)
	for node, m := range st.events {
		after := marks[node]
		var evs []core.Event
		for _, ev := range m {
			if ev.RecvClock > after {
				evs = append(evs, ev)
			}
		}
		if len(evs) > 0 {
			sort.Slice(evs, func(i, j int) bool { return evs[i].RecvClock < evs[j].RecvClock })
			out[node] = evs
		}
	}
	return out
}

// Merge folds a peer's sync response into the store and returns how
// many events were new. Overlap with already-held events is expected
// (resync is re-entrant) and not counted as protocol duplicates.
func (st *Store) Merge(m map[int][]core.Event) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	added := 0
	for node, evs := range m {
		added += st.addLocked(node, evs, false)
	}
	st.stats.Logged += int64(added)
	st.stats.SyncedIn += int64(added)
	st.stats.Resyncs++
	return added
}

// Server is one event logger replica frontend.
type Server struct {
	rt      vtime.Runtime
	ep      transport.Endpoint
	service time.Duration // per-event processing time

	// Store is the stable storage behind this frontend; shared when
	// the server was built with NewServerWithStore.
	Store *Store

	// Peers are the other replicas of this logger group; they serve
	// anti-entropy sync requests. Empty for a standalone logger.
	Peers []int
	// Resync makes the server pull missing events from Peers on
	// startup — set on a replica respawned with an empty store.
	Resync bool
	// ResyncAttempts bounds the resync request rounds (default 10).
	// Deployed out-of-process replicas set it higher: real dials and
	// peer respawns take wall-clock time the simulation never pays.
	ResyncAttempts int

	synced atomic.Bool

	// cums tracks, per submitting node, the contiguous prefix of batch
	// seqs this replica has stored, so every ack can piggyback a
	// cumulative mark (see ackCum). Touched only by the server actor.
	cums map[int]*cumTracker
}

// cumTracker follows one submitter's contiguous batch-seq prefix. Batch
// seqs are namespaced by incarnation in their high 32 bits; a submitter
// restarting under a new incarnation starts a fresh stream, and marks
// from the old one can never complete batches of the new.
type cumTracker struct {
	cum  uint64              // every batch in (base, cum] is stored
	pend map[uint64]struct{} // stored batches above cum, awaiting the gap
}

// NewServer creates an event logger with its own private store.
// service is the per-event processing time of the logger's host (zero
// for an infinitely fast logger).
func NewServer(rt vtime.Runtime, ep transport.Endpoint, service time.Duration) *Server {
	return NewServerWithStore(rt, ep, service, NewStore())
}

// NewServerWithStore creates an event logger frontend over an existing
// store, for failover setups where several frontends (primary and
// respawned or backup instances) must serve the same logged events.
func NewServerWithStore(rt vtime.Runtime, ep transport.Endpoint, service time.Duration, st *Store) *Server {
	return &Server{rt: rt, ep: ep, service: service, Store: st, cums: make(map[int]*cumTracker)}
}

// ackCum records that the batch with the given seq is now stored and
// returns the submitter's cumulative mark: the highest seq such that
// every batch of the same incarnation up to and including it is stored
// on this replica. The mark rides on the KEventAck, letting a pipelined
// submitter retire older in-flight batches whose own acks were lost.
func (s *Server) ackCum(from int, seq uint64) uint64 {
	t := s.cums[from]
	if t == nil || seq>>32 != t.cum>>32 {
		t = &cumTracker{cum: seq >> 32 << 32, pend: make(map[uint64]struct{})}
		s.cums[from] = t
	}
	if seq > t.cum {
		t.pend[seq] = struct{}{}
		for {
			if _, ok := t.pend[t.cum+1]; !ok {
				break
			}
			t.cum++
			delete(t.pend, t.cum)
		}
	}
	return t.cum
}

// Start runs the server loop as an actor, plus the resync requester if
// the replica is rejoining its group.
func (s *Server) Start() {
	s.rt.Go("event-logger", s.run)
	if s.Resync && len(s.Peers) > 0 {
		s.rt.Go(fmt.Sprintf("el-resync-%d", s.ep.ID()), s.resyncLoop)
	}
}

// EventCount reports the number of events stored for a node.
func (s *Server) EventCount(rank int) int { return s.Store.Count(rank) }

// Synced reports whether a rejoining replica has completed at least one
// anti-entropy merge since Start — the point where it is serving the
// group's committed state again and its outage window closes.
func (s *Server) Synced() bool { return s.synced.Load() }

// resyncLoop re-requests the missing event ranges from every peer until
// at least one sync response lands (merges are idempotent, so asking
// everyone and retrying is safe). The marks are snapshotted once, at
// join time: recomputing them after a partial merge could advance past
// holes a stale peer left behind.
func (s *Server) resyncLoop() {
	attempts := s.ResyncAttempts
	if attempts <= 0 {
		attempts = 10
	}
	req := wire.EncodeSyncMarks(s.Store.Marks())
	bo := transport.Backoff{Base: 5 * time.Millisecond, Seed: uint64(s.ep.ID())}
	for attempt := 0; attempt < attempts && !s.synced.Load(); attempt++ {
		for _, p := range s.Peers {
			s.ep.Send(p, wire.KELSyncReq, req)
		}
		s.rt.Sleep(bo.Delay(attempt))
	}
}

func (s *Server) run() {
	for {
		f, ok := s.ep.Inbox().Recv()
		if !ok {
			return
		}
		switch f.Kind {
		case wire.KEventLog:
			seq, evs, err := wire.DecodeEventLog(f.Data)
			if err != nil {
				s.countMalformed()
				continue
			}
			if s.service > 0 {
				s.rt.Sleep(time.Duration(len(evs)) * s.service)
			}
			s.Store.Add(f.From, evs)
			// Add copied the events out, so the frame's buffer is dead
			// and goes back to the framing pool.
			wire.PutBuf(f.Data)
			// Always ack, even a pure duplicate: the retransmission
			// means the submitter never saw the first ack.
			s.Store.mu.Lock()
			s.Store.stats.Acks++
			s.Store.mu.Unlock()
			cum := s.ackCum(f.From, seq)
			s.ep.Send(f.From, wire.KEventAck, wire.AppendEventAck(wire.GetBuf(16), seq, cum))
		case wire.KDetRelay:
			// Piggybacked determinants relayed by a receiver on behalf
			// of their origin node: stored under the origin (so the
			// origin's restart fetch finds them) but acked to the
			// relayer on its own seq stream — the same cumulative mark
			// retires relay and KEventLog batches alike.
			seq, origin, evs, err := wire.DecodeDetRelay(f.Data)
			if err != nil {
				s.countMalformed()
				continue
			}
			if s.service > 0 {
				s.rt.Sleep(time.Duration(len(evs)) * s.service)
			}
			s.Store.Add(origin, evs)
			wire.PutBuf(f.Data)
			s.Store.mu.Lock()
			s.Store.stats.Acks++
			s.Store.mu.Unlock()
			cum := s.ackCum(f.From, seq)
			s.ep.Send(f.From, wire.KEventAck, wire.AppendEventAck(wire.GetBuf(16), seq, cum))
		case wire.KEventFetch:
			h, err := wire.DecodeU64(f.Data)
			if err != nil {
				s.countMalformed()
				continue
			}
			s.Store.mu.Lock()
			s.Store.stats.Fetches++
			s.Store.mu.Unlock()
			out := s.Store.Events(f.From, h)
			s.ep.Send(f.From, wire.KEventFetched, wire.EncodeEvents(out))
		case wire.KELSyncReq:
			marks, err := wire.DecodeSyncMarks(f.Data)
			if err != nil {
				s.countMalformed()
				continue
			}
			s.ep.Send(f.From, wire.KELSyncResp, wire.EncodeNodeEvents(s.Store.EventsSince(marks)))
		case wire.KELSyncResp:
			m, err := wire.DecodeNodeEvents(f.Data)
			if err != nil {
				s.countMalformed()
				continue
			}
			s.Store.Merge(m)
			s.synced.Store(true)
		}
	}
}

func (s *Server) countMalformed() {
	s.Store.mu.Lock()
	s.Store.stats.Malformed++
	s.Store.mu.Unlock()
}
