// Package core implements the MPICH-V2 pessimistic sender-based
// message-logging protocol (paper §4.1 and Appendix A) as a pure state
// machine, free of I/O. The communication daemon drives it: each
// computing node owns one State and consults it on every send, arrival,
// delivery, probe, checkpoint and restart.
//
// The protocol in one paragraph: every process keeps a logical clock H
// incremented on each emission and each delivery. A sent message is
// identified by (sender rank, sender clock) and a copy of its payload is
// kept in the sender's SAVED log (volatile). On delivery, the receiver
// records the dependency event (sender, sender clock, receiver clock,
// probes since last delivery) and ships it asynchronously to the
// reliable event logger; no send may leave the node until all previously
// recorded events are acknowledged (WAITLOGGED). After a crash, the
// process restarts from its last checkpoint, downloads its event list
// from the event logger, asks every peer to re-send saved messages
// (RESTART1/RESTART2), and replays deliveries in exactly the logged
// order, discarding duplicates.
//
// Arrival versus delivery: a frame that reaches the node is Offered —
// deduplicated and either queued (normal execution) or stashed (replay,
// waiting for its logged turn). It is Committed — clock ticked, event
// recorded — only when the MPI process actually receives it. This
// mirrors the daemon/process split of §4.4 and keeps the checkpointed
// state coherent: arrived-but-undelivered messages are deliberately not
// part of any checkpoint, because their senders still hold them.
package core

import (
	"fmt"
	"sort"
)

// MsgID uniquely identifies a message: the sender's rank and the
// sender's logical clock at emission.
type MsgID struct {
	Sender int
	Clock  uint64
}

// Event is the dependency information logged for one reception (§4.5):
// "(sender's identity; sender's logical clock at emission; receiver's
// logical clock at delivery; number of probes since last delivery)".
// Seq additionally records the per-channel sequence number of the
// delivered message (1, 2, 3, … per sender), which lets recovery and
// the post-run auditor prove the logged history of every channel is
// gap-free; 0 marks a legacy/unsequenced event.
type Event struct {
	Sender      int
	SenderClock uint64
	RecvClock   uint64
	Probes      uint32
	Seq         uint64
}

// SavedMsg is one payload copy in the sender-based log.
type SavedMsg struct {
	To    int
	Clock uint64 // sender clock at emission
	Seq   uint64 // per-destination channel sequence (1, 2, 3, …)
	Kind  uint8  // device-level frame kind, replayed verbatim
	Data  []byte
}

// StashedMsg is a message received during replay ahead of its logged
// turn, or beyond the logged history.
type StashedMsg struct {
	From  int
	Clock uint64
	Seq   uint64 // per-sender channel sequence; 0 if unsequenced
	Kind  uint8
	Data  []byte
}

// OfferAction tells the daemon what to do with an incoming payload.
type OfferAction int

const (
	// OfferQueue: normal execution; append to the arrived queue and
	// Commit when the MPI process receives it.
	OfferQueue OfferAction = iota
	// OfferStash: replay in progress; the state retained the payload
	// until its logged turn (or until replay completes).
	OfferStash
	// OfferDrop: duplicate of something already seen; discard.
	OfferDrop
	// OfferHold: the message arrived ahead of an undelivered
	// predecessor on the same channel (a lossy or reordering network);
	// the state holds it until the gap fills. TakeHeld releases it.
	OfferHold
)

// State is the per-process protocol state. It is not safe for concurrent
// use; in this repository it is always owned by a single daemon actor.
type State struct {
	rank int

	h  uint64         // logical clock H_p
	hs map[int]uint64 // HS_p[q]: clock of last emission transmitted to q
	hr map[int]uint64 // HR_p[q]: sender clock of last delivery from q

	// offered[q] is the highest sender clock from q accepted this
	// incarnation (queued or stashed). It exists only in memory — a
	// crash forgets it along with the arrived queue — and suppresses
	// duplicate restart re-sends of messages that have arrived but
	// are not yet delivered. Used only for unsequenced (Seq 0) offers.
	offered map[int]uint64

	// Per-pair channel sequencing. The logical clock cannot order a
	// pair's messages for the receiver — it ticks on emissions to
	// *other* peers too, so clock gaps are invisible — but a lossy or
	// reordering network needs exactly that: the receiver must detect
	// a missing predecessor and hold later messages back, or FIFO
	// channel order (which MPI's non-overtaking rule and the replay
	// protocol both assume) silently breaks.
	seqTo  map[int]uint64                // seq of last emission to q (persistent)
	seqIn  map[int]uint64                // seq of last delivery from q (persistent)
	seqAcc map[int]uint64                // seq of last in-order acceptance from q (volatile)
	held   map[int]map[uint64]StashedMsg // out-of-order arrivals awaiting a gap fill (volatile)

	saved    []SavedMsg // SAVED_p, ascending by Clock
	logBytes int64

	probes  uint32 // unsuccessful probes since last delivery
	unacked int    // reception events submitted to the EL, not yet acked

	// Replay state (crash recovery).
	replay    []Event
	replayPos int
	stash     map[MsgID]StashedMsg // early re-sent messages awaiting their turn
}

// NewState returns the protocol state of a fresh process.
func NewState(rank int) *State {
	return &State{
		rank:    rank,
		hs:      make(map[int]uint64),
		hr:      make(map[int]uint64),
		offered: make(map[int]uint64),
		seqTo:   make(map[int]uint64),
		seqIn:   make(map[int]uint64),
		seqAcc:  make(map[int]uint64),
		held:    make(map[int]map[uint64]StashedMsg),
		stash:   make(map[MsgID]StashedMsg),
	}
}

// Rank returns the owning process rank.
func (s *State) Rank() int { return s.rank }

// Clock returns the current logical clock H_p.
func (s *State) Clock() uint64 { return s.h }

// LogBytes returns the payload bytes currently held in the SAVED log.
func (s *State) LogBytes() int64 { return s.logBytes }

// SavedCount returns the number of messages in the SAVED log.
func (s *State) SavedCount() int { return len(s.saved) }

// --- Sending -----------------------------------------------------------

// PrepareSend implements the send(m,q) action: it ticks the clock,
// stores a copy of the payload in the SAVED log (always — Lemma 1 needs
// re-executed sends to repopulate the log), and reports whether the
// message must actually be transmitted. Transmission is suppressed when
// the receiver is known to have delivered it already (H_p < HS_p[q]
// after a RESTART1/RESTART2 exchange told us what q had seen).
func (s *State) PrepareSend(to int, kind uint8, data []byte) (id MsgID, seq uint64, transmit bool) {
	s.h++
	s.seqTo[to]++
	seq = s.seqTo[to]
	id = MsgID{Sender: s.rank, Clock: s.h}
	s.saved = append(s.saved, SavedMsg{To: to, Clock: s.h, Seq: seq, Kind: kind, Data: data})
	s.logBytes += int64(len(data))
	// Appendix A guards with H_p >= HS_p[q]; we use the strict form so
	// the boundary message (exactly the last one the receiver reported
	// delivered) is not re-transmitted — the receiver would discard it
	// as a duplicate anyway.
	if s.h > s.hs[to] {
		s.hs[to] = s.h
		return id, seq, true
	}
	return id, seq, false
}

// SendBlocked reports whether WAITLOGGED() would block: some reception
// events have been submitted to the event logger but not yet
// acknowledged. The daemon must not transmit any payload while this is
// true (§4.5: "this information must be sent and acknowledged by the
// event logger before the node can modify the state of another MPI
// process").
func (s *State) SendBlocked() bool { return s.unacked > 0 }

// EventsAcked informs the state that the event logger acknowledged n
// reception events.
func (s *State) EventsAcked(n int) {
	s.unacked -= n
	if s.unacked < 0 {
		panic(fmt.Sprintf("core: rank %d: more event acks than submissions", s.rank))
	}
}

// UnackedEvents returns the number of submitted-but-unacked events.
func (s *State) UnackedEvents() int { return s.unacked }

// --- Receiving ---------------------------------------------------------

// ProbeMiss records an unsuccessful probe; the count is attached to the
// next reception event so that re-execution can replay the exact same
// sequence of probe outcomes (§4.5).
func (s *State) ProbeMiss() { s.probes++ }

// ProbeCount returns the unsuccessful probes since the last delivery.
func (s *State) ProbeCount() uint32 { return s.probes }

// Offer classifies an arriving payload frame from peer "from" with
// sender clock h and channel sequence seq (0 = unsequenced, for
// transports guaranteed FIFO). OfferQueue: the daemon appends it to its
// arrived queue (and should then collect TakeHeld successors).
// OfferStash: the state kept it for replay. OfferHold: the state kept
// it until its channel predecessors arrive. OfferDrop: duplicate.
func (s *State) Offer(from int, h, seq uint64, kind uint8, data []byte) OfferAction {
	if h <= s.hr[from] || (seq > 0 && seq <= s.seqIn[from]) {
		return OfferDrop
	}
	if s.Replaying() {
		// During replay everything waits in the stash, keyed by the
		// exact message identity (re-sends may interleave across
		// peers): logged messages wait for their logged turn, fresh
		// messages for the end of replay.
		id := MsgID{Sender: from, Clock: h}
		if _, dup := s.stash[id]; dup {
			return OfferDrop
		}
		s.stash[id] = StashedMsg{From: from, Clock: h, Seq: seq, Kind: kind, Data: data}
		return OfferStash
	}
	if seq == 0 {
		// Unsequenced: per-sender arrivals are assumed FIFO (one TCP
		// stream per pair), so a high-water mark suppresses duplicates
		// of arrived-but-undelivered messages after a peer's restart.
		if h <= s.offered[from] {
			return OfferDrop
		}
		s.offered[from] = h
		return OfferQueue
	}
	if seq <= s.seqAcc[from] {
		return OfferDrop
	}
	if seq != s.seqAcc[from]+1 {
		// A predecessor is missing — dropped or still in flight. Hold
		// the message; the daemon's pull timer re-requests the gap
		// from the sender's SAVED log if it does not fill by itself.
		hm := s.held[from]
		if hm == nil {
			hm = make(map[uint64]StashedMsg)
			s.held[from] = hm
		}
		hm[seq] = StashedMsg{From: from, Clock: h, Seq: seq, Kind: kind, Data: data}
		return OfferHold
	}
	s.seqAcc[from] = seq
	return OfferQueue
}

// TakeHeld pops held messages from a sender that became deliverable
// after a gap fill, in channel order. Call it after every OfferQueue.
func (s *State) TakeHeld(from int) []StashedMsg {
	hm := s.held[from]
	if len(hm) == 0 {
		return nil
	}
	var out []StashedMsg
	for {
		m, ok := hm[s.seqAcc[from]+1]
		if !ok {
			return out
		}
		delete(hm, m.Seq)
		s.seqAcc[from] = m.Seq
		out = append(out, m)
	}
}

// HeldCount reports how many out-of-order messages are parked waiting
// for a gap fill.
func (s *State) HeldCount() int {
	n := 0
	for _, hm := range s.held {
		n += len(hm)
	}
	return n
}

// Commit records the delivery of a queued message to the MPI process
// during normal execution: the clock ticks and the reception event to be
// logged is returned; the state counts it as unacked until EventsAcked.
func (s *State) Commit(from int, h, seq uint64) Event {
	if s.Replaying() {
		panic(fmt.Sprintf("core: rank %d: Commit during replay", s.rank))
	}
	return s.commit(from, h, seq, true)
}

// CommitSuppressed records a delivery whose determinant the daemon
// classified deterministic: the event is still created (it must reach
// the event logger eventually — replay and the no-orphans audit need a
// gap-free channel history) but it does not join the WAITLOGGED gate.
// The daemon is responsible for shipping it off the critical path
// (epoch batch + piggyback) and must not credit it via EventsAcked.
func (s *State) CommitSuppressed(from int, h, seq uint64) Event {
	if s.Replaying() {
		panic(fmt.Sprintf("core: rank %d: CommitSuppressed during replay", s.rank))
	}
	return s.commit(from, h, seq, false)
}

func (s *State) commit(from int, h, seq uint64, gate bool) Event {
	if h <= s.hr[from] {
		panic(fmt.Sprintf("core: rank %d: Commit of already-delivered message (%d,%d)", s.rank, from, h))
	}
	s.h++
	ev := Event{Sender: from, SenderClock: h, RecvClock: s.h, Probes: s.probes, Seq: seq}
	s.probes = 0
	s.hr[from] = h
	if seq > s.seqIn[from] {
		s.seqIn[from] = seq
	}
	if gate {
		s.unacked++
	}
	return ev
}

// --- Replay ------------------------------------------------------------

// Replaying reports whether logged events remain to be replayed.
func (s *State) Replaying() bool { return s.replayPos < len(s.replay) }

// NextReplay returns the next event to replay.
func (s *State) NextReplay() (Event, bool) {
	if !s.Replaying() {
		return Event{}, false
	}
	return s.replay[s.replayPos], true
}

// ReplayRemaining returns how many logged events are still to replay.
func (s *State) ReplayRemaining() int { return len(s.replay) - s.replayPos }

// TakeStashed pops the message for the next replay event if it has
// already arrived, advancing the replay cursor. The replayed event is
// already in the event logger and must not be re-submitted. When the
// next logged event sits beyond a clock hole (a suppressed determinant
// that never reached stable storage), TakeStashed refuses — the hole
// must be filled first by RegenerateReplay.
func (s *State) TakeStashed() (StashedMsg, Event, bool) {
	ev, ok := s.NextReplay()
	if !ok || ev.RecvClock != s.h+1 {
		return StashedMsg{}, Event{}, false
	}
	id := MsgID{Sender: ev.Sender, Clock: ev.SenderClock}
	m, ok := s.stash[id]
	if !ok {
		return StashedMsg{}, Event{}, false
	}
	delete(s.stash, id)
	s.advanceReplay(ev)
	if m.Seq > 0 {
		if m.Seq > s.seqIn[ev.Sender] {
			s.seqIn[ev.Sender] = m.Seq
		}
		if m.Seq > s.seqAcc[ev.Sender] {
			s.seqAcc[ev.Sender] = m.Seq
		}
	}
	return m, ev, true
}

func (s *State) advanceReplay(ev Event) {
	// The clock must land exactly where the original execution put it;
	// a mismatch means the execution was not piecewise deterministic.
	s.h++
	if s.h != ev.RecvClock {
		panic(fmt.Sprintf("core: rank %d: replay clock drift: have %d, logged event says %d",
			s.rank, s.h, ev.RecvClock))
	}
	s.hr[ev.Sender] = ev.SenderClock
	s.probes = 0
	s.replayPos++
}

// ReplayBlockedByHole reports whether the next logged replay event sits
// beyond a clock hole: its RecvClock is more than one tick ahead, so a
// delivery between here and there was never logged. That only happens
// when a suppressed determinant died with the crashed process before its
// epoch flush or piggyback relay became durable — which in turn proves
// (causal logging) that no surviving process depends on the lost choice,
// so the hole may be filled by regenerating the delivery fresh.
func (s *State) ReplayBlockedByHole() bool {
	ev, ok := s.NextReplay()
	return ok && ev.RecvClock > s.h+1
}

// RegenerateReplay fills one clock hole in the replay: it picks a
// stashed message that is next in channel order and is not claimed by
// any remaining logged event, delivers it as a *fresh* commit (clock
// ticks, a new pessimistically-gated event is returned for submission),
// and leaves the replay cursor where it is. Candidates are chosen
// deterministically (lowest sender rank, then clock); under adaptive
// classification the lost delivery was deterministic, so the candidate
// is unique in practice and the post-run auditors check the outcome.
// Returns false when no candidate has arrived yet — the daemon should
// wait (or pull) exactly as for a missing replay message.
func (s *State) RegenerateReplay() (StashedMsg, Event, bool) {
	ev, ok := s.NextReplay()
	if !ok || ev.RecvClock <= s.h+1 {
		return StashedMsg{}, Event{}, false
	}
	// Messages claimed by the remaining logged suffix must wait for
	// their logged turn; only unclaimed arrivals can fill the hole.
	claimed := make(map[MsgID]bool, len(s.replay)-s.replayPos)
	for _, e := range s.replay[s.replayPos:] {
		claimed[MsgID{Sender: e.Sender, Clock: e.SenderClock}] = true
	}
	var best StashedMsg
	found := false
	for id, m := range s.stash {
		if claimed[id] || m.Clock <= s.hr[m.From] {
			continue
		}
		if m.Seq > 0 && m.Seq != s.seqAcc[m.From]+1 {
			continue // beyond a channel gap: a predecessor is missing
		}
		if !found || m.From < best.From || (m.From == best.From && m.Clock < best.Clock) {
			best = m
			found = true
		}
	}
	if !found {
		return StashedMsg{}, Event{}, false
	}
	delete(s.stash, MsgID{Sender: best.From, Clock: best.Clock})
	if best.Seq > 0 {
		if best.Seq > s.seqAcc[best.From] {
			s.seqAcc[best.From] = best.Seq
		}
	} else if best.Clock > s.offered[best.From] {
		s.offered[best.From] = best.Clock
	}
	// The regenerated delivery is a fresh nondeterministic-by-default
	// choice: its event joins the WAITLOGGED gate and must be submitted.
	return best, s.commit(best.From, best.Clock, best.Seq, true), true
}

// DrainStash returns (and removes) every stashed message once replay is
// complete: messages that arrived during replay but belong to the fresh
// part of the execution. They are ordered by (clock, sender) — any
// order respecting per-sender FIFO is a legal fresh execution. Calling
// it while still replaying is a bug.
func (s *State) DrainStash() []StashedMsg {
	if s.Replaying() {
		panic(fmt.Sprintf("core: rank %d: DrainStash during replay", s.rank))
	}
	all := make([]StashedMsg, 0, len(s.stash))
	for _, m := range s.stash {
		all = append(all, m)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Clock != all[j].Clock {
			return all[i].Clock < all[j].Clock
		}
		return all[i].From < all[j].From
	})
	s.stash = make(map[MsgID]StashedMsg)
	// Per-sender clock order is emission order, so sequenced messages
	// come out in channel order here — but a message beyond a channel
	// gap (its predecessor was dropped mid-replay) must wait in held,
	// exactly as on the normal path.
	out := make([]StashedMsg, 0, len(all))
	for _, m := range all {
		if m.Seq == 0 {
			if m.Clock > s.offered[m.From] {
				s.offered[m.From] = m.Clock
			}
			out = append(out, m)
			continue
		}
		switch {
		case m.Seq <= s.seqAcc[m.From]: // duplicate
		case m.Seq == s.seqAcc[m.From]+1:
			s.seqAcc[m.From] = m.Seq
			out = append(out, m)
			out = append(out, s.TakeHeld(m.From)...)
		default:
			hm := s.held[m.From]
			if hm == nil {
				hm = make(map[uint64]StashedMsg)
				s.held[m.From] = hm
			}
			hm[m.Seq] = m
		}
	}
	return out
}

// ReplayReady reports whether the message for the next replay event has
// already arrived (TakeStashed would succeed).
func (s *State) ReplayReady() bool {
	ev, ok := s.NextReplay()
	if !ok {
		return false
	}
	_, has := s.stash[MsgID{Sender: ev.Sender, Clock: ev.SenderClock}]
	return has
}

// ReplayProbeMiss tells the daemon how to answer a probe during replay:
// true means the probe must report "no message pending" (one of the
// logged unsuccessful probes); false means the probe must report the
// next replayed message, blocking until it has physically arrived.
func (s *State) ReplayProbeMiss() bool {
	ev, ok := s.NextReplay()
	if !ok {
		return false
	}
	if s.probes < ev.Probes {
		s.probes++
		return true
	}
	return false
}

// --- Restart handshake --------------------------------------------------

// StartRecovery installs the event list downloaded from the event logger
// (phase A of figure 2). Events at or below the checkpointed clock are
// skipped: they were delivered before the checkpoint was taken.
//
// The replay list is additionally truncated at the first per-channel
// sequence gap. A gap means an earlier reception's event never reached
// stable storage while a later one did — the tail beyond the gap is
// unreplayable (its clock chain would drift) but also provably
// unobserved: WAITLOGGED gating blocked every send while the missing
// event was unacked, so no other process depends on the truncated
// suffix and those messages are simply re-delivered fresh. The number
// of events cut is returned for the daemon's stats.
func (s *State) StartRecovery(events []Event) (dropped int) {
	return s.StartRecoveryWith(events, false)
}

// StartRecoveryWith is StartRecovery with a hole-tolerance switch. A
// daemon running determinant suppression passes holeTolerant=true: a
// per-channel sequence gap then no longer truncates the suffix, because
// the gap is expected — a suppressed determinant lost with the crash —
// and the replay machinery fills the corresponding clock hole by
// regenerating the delivery (RegenerateReplay) instead of drifting.
// The WAITLOGGED truncation argument does not apply to suppressed
// events (sends are not gated on them), but the piggyback protocol
// restores it: any send that left after the lost delivery carried its
// determinant, so a determinant absent from the merged fetch is a
// determinant nothing alive depends on.
func (s *State) StartRecoveryWith(events []Event, holeTolerant bool) (dropped int) {
	var replay []Event
	for _, ev := range events {
		if ev.RecvClock > s.h {
			replay = append(replay, ev)
		}
	}
	sort.Slice(replay, func(i, j int) bool { return replay[i].RecvClock < replay[j].RecvClock })
	next := make(map[int]uint64, len(s.seqIn))
	for k, v := range s.seqIn {
		next[k] = v + 1
	}
	cut := len(replay)
	for i, ev := range replay {
		if ev.Seq == 0 {
			continue // unsequenced legacy event: nothing to validate
		}
		want := next[ev.Sender]
		if want == 0 {
			want = 1
		}
		if ev.Seq != want && !holeTolerant {
			cut = i
			break
		}
		next[ev.Sender] = ev.Seq + 1
	}
	dropped = len(replay) - cut
	replay = replay[:cut]
	s.replay = replay
	s.replayPos = 0
	s.probes = 0
	s.unacked = 0 // everything we will replay is already safely logged
	// The volatile acceptance state restarts from the delivered
	// horizon; the arrived queue and held map died with the crash.
	s.seqAcc = make(map[int]uint64, len(s.seqIn))
	for k, v := range s.seqIn {
		s.seqAcc[k] = v
	}
	s.held = make(map[int]map[uint64]StashedMsg)
	return dropped
}

// RestartAnnouncement returns HR_p[q] for the RESTART1 message sent to
// peer q: the sender clock of the last message from q that this process
// (as restored from its checkpoint) is known to have delivered.
func (s *State) RestartAnnouncement(q int) uint64 { return s.hr[q] }

// OnRestart1 handles RESTART1(hp) from a restarted peer: record what the
// peer has delivered of our messages, and return the saved payloads it
// still needs, in emission order. myHR is the value to put in the
// RESTART2 reply.
func (s *State) OnRestart1(peer int, hp uint64) (resend []SavedMsg, myHR uint64) {
	return s.resendAfter(peer, hp), s.hr[peer]
}

// OnRestart2 handles RESTART2(hp): same resend rule, no reply.
func (s *State) OnRestart2(peer int, hp uint64) (resend []SavedMsg) {
	return s.resendAfter(peer, hp)
}

func (s *State) resendAfter(peer int, hp uint64) []SavedMsg {
	// Appendix A assigns HS_p[q] = HP unconditionally: if the peer
	// rolled back, our future re-executed emissions below its horizon
	// are suppressed; re-sends above it happen right here.
	s.hs[peer] = hp
	var out []SavedMsg
	for _, m := range s.saved {
		if m.To == peer && m.Clock > hp {
			out = append(out, m)
		}
	}
	return out
}

// --- Garbage collection -------------------------------------------------

// CollectGarbage implements §4.6.1: peer has checkpointed having
// delivered our messages up to clock deliveredUpTo; payload copies at or
// below it will never be requested again. Returns the bytes freed.
func (s *State) CollectGarbage(peer int, deliveredUpTo uint64) int64 {
	var freed int64
	kept := s.saved[:0]
	for _, m := range s.saved {
		if m.To == peer && m.Clock <= deliveredUpTo {
			freed += int64(len(m.Data))
			continue
		}
		kept = append(kept, m)
	}
	s.saved = kept
	s.logBytes -= freed
	return freed
}

// DeliveredVector returns a copy of HR_p: for each peer, the sender
// clock of the last delivered message. A checkpointing node broadcasts
// it so that senders can garbage-collect.
func (s *State) DeliveredVector() map[int]uint64 {
	out := make(map[int]uint64, len(s.hr))
	for k, v := range s.hr {
		out[k] = v
	}
	return out
}
