package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Snapshot is the serializable protocol state included in a checkpoint
// image. Per §4.1, the SAVED payload log is part of the checkpoint: a
// restarted process must be able to re-send old messages without rolling
// back further (domino-effect avoidance). The MPI process state itself
// (the application snapshot) is carried separately by the ckpt package.
type Snapshot struct {
	Rank  int
	H     uint64
	HS    map[int]uint64
	HR    map[int]uint64
	SeqTo map[int]uint64 // per-destination channel sequence counters
	SeqIn map[int]uint64 // per-sender channel sequence of last delivery
	Saved []SavedMsg
}

// Snapshot captures a deep copy of the protocol state. It must be taken
// at a quiescent point (no partially received message), which the daemon
// guarantees by checkpointing between protocol messages — the same
// guarantee the paper gets by triggering Condor checkpoints from the
// daemon ("this insures that there are no active communication at fork
// time").
func (s *State) Snapshot() *Snapshot {
	sn := &Snapshot{
		Rank:  s.rank,
		H:     s.h,
		HS:    make(map[int]uint64, len(s.hs)),
		HR:    make(map[int]uint64, len(s.hr)),
		SeqTo: make(map[int]uint64, len(s.seqTo)),
		SeqIn: make(map[int]uint64, len(s.seqIn)),
		Saved: make([]SavedMsg, len(s.saved)),
	}
	for k, v := range s.hs {
		sn.HS[k] = v
	}
	for k, v := range s.hr {
		sn.HR[k] = v
	}
	for k, v := range s.seqTo {
		sn.SeqTo[k] = v
	}
	for k, v := range s.seqIn {
		sn.SeqIn[k] = v
	}
	for i, m := range s.saved {
		cp := m
		cp.Data = append([]byte(nil), m.Data...)
		sn.Saved[i] = cp
	}
	return sn
}

// Restore rebuilds a State from a snapshot, as the ROLLBACK() routine
// does from a checkpoint image.
func Restore(sn *Snapshot) *State {
	s := NewState(sn.Rank)
	s.h = sn.H
	for k, v := range sn.HS {
		s.hs[k] = v
	}
	for k, v := range sn.HR {
		s.hr[k] = v
	}
	for k, v := range sn.SeqTo {
		s.seqTo[k] = v
	}
	for k, v := range sn.SeqIn {
		s.seqIn[k] = v
		s.seqAcc[k] = v
	}
	s.saved = make([]SavedMsg, len(sn.Saved))
	for i, m := range sn.Saved {
		cp := m
		cp.Data = append([]byte(nil), m.Data...)
		s.saved[i] = cp
		s.logBytes += int64(len(m.Data))
	}
	return s
}

// Encode serializes the snapshot for transfer to the checkpoint server.
func (sn *Snapshot) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sn); err != nil {
		return nil, fmt.Errorf("core: encoding snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot parses a snapshot produced by Encode.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	var sn Snapshot
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&sn); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return &sn, nil
}
