package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
)

// Snapshot is the serializable protocol state included in a checkpoint
// image. Per §4.1, the SAVED payload log is part of the checkpoint: a
// restarted process must be able to re-send old messages without rolling
// back further (domino-effect avoidance). The MPI process state itself
// (the application snapshot) is carried separately by the ckpt package.
type Snapshot struct {
	Rank  int
	H     uint64
	HS    map[int]uint64
	HR    map[int]uint64
	SeqTo map[int]uint64 // per-destination channel sequence counters
	SeqIn map[int]uint64 // per-sender channel sequence of last delivery
	Saved []SavedMsg
}

// Snapshot captures a deep copy of the protocol state. It must be taken
// at a quiescent point (no partially received message), which the daemon
// guarantees by checkpointing between protocol messages — the same
// guarantee the paper gets by triggering Condor checkpoints from the
// daemon ("this insures that there are no active communication at fork
// time").
func (s *State) Snapshot() *Snapshot {
	sn := &Snapshot{
		Rank:  s.rank,
		H:     s.h,
		HS:    make(map[int]uint64, len(s.hs)),
		HR:    make(map[int]uint64, len(s.hr)),
		SeqTo: make(map[int]uint64, len(s.seqTo)),
		SeqIn: make(map[int]uint64, len(s.seqIn)),
		Saved: make([]SavedMsg, len(s.saved)),
	}
	for k, v := range s.hs {
		sn.HS[k] = v
	}
	for k, v := range s.hr {
		sn.HR[k] = v
	}
	for k, v := range s.seqTo {
		sn.SeqTo[k] = v
	}
	for k, v := range s.seqIn {
		sn.SeqIn[k] = v
	}
	for i, m := range s.saved {
		cp := m
		cp.Data = append([]byte(nil), m.Data...)
		sn.Saved[i] = cp
	}
	return sn
}

// Restore rebuilds a State from a snapshot, as the ROLLBACK() routine
// does from a checkpoint image.
func Restore(sn *Snapshot) *State {
	s := NewState(sn.Rank)
	s.h = sn.H
	for k, v := range sn.HS {
		s.hs[k] = v
	}
	for k, v := range sn.HR {
		s.hr[k] = v
	}
	for k, v := range sn.SeqTo {
		s.seqTo[k] = v
	}
	for k, v := range sn.SeqIn {
		s.seqIn[k] = v
		s.seqAcc[k] = v
	}
	s.saved = make([]SavedMsg, len(sn.Saved))
	for i, m := range sn.Saved {
		cp := m
		cp.Data = append([]byte(nil), m.Data...)
		s.saved[i] = cp
		s.logBytes += int64(len(m.Data))
	}
	return s
}

// The snapshot body uses a hand-rolled binary format ("MVS1") rather
// than gob for two reasons: the encode path must not allocate (it runs
// on every checkpoint), and the encoding must be deterministic — CS
// replicas materialize full images independently from base+delta
// chains, and anti-entropy compares them byte for byte, so map iteration
// order (which gob leaks into its output) cannot be allowed to leak into
// the image. Vector keys are therefore emitted in sorted order.
//
// Layout (all integers big-endian):
//
//	magic "MVS1" | u32 rank | u64 h
//	4 × vector: u32 n, then n × (u32 key, u64 val)   — HS, HR, SeqTo, SeqIn
//	u32 nSaved, then nSaved × (u32 to, u64 clock, u64 seq, u8 kind, u32 len, data)
var snapMagic = [4]byte{'M', 'V', 'S', '1'}

// intScratch pools the sorted-key scratch slices the encoder needs, so
// encoding into a preallocated destination performs zero allocations.
var intScratch = sync.Pool{New: func() any { b := make([]int, 0, 64); return &b }}

func vecSize(m map[int]uint64) int { return 4 + 12*len(m) }

func savedSize(msgs []SavedMsg) int {
	n := 4
	for i := range msgs {
		n += 4 + 8 + 8 + 1 + 4 + len(msgs[i].Data)
	}
	return n
}

// SnapshotSize returns the exact encoded size of AppendSnapshot's
// output for sn.
func SnapshotSize(sn *Snapshot) int {
	return 4 + 4 + 8 + vecSize(sn.HS) + vecSize(sn.HR) + vecSize(sn.SeqTo) +
		vecSize(sn.SeqIn) + savedSize(sn.Saved)
}

// SnapshotDeltaSize returns the exact encoded size of
// AppendSnapshotDelta's output for sn against marks.
func SnapshotDeltaSize(sn *Snapshot, marks map[int]uint64) int {
	n := 4 + 4 + 8 + vecSize(sn.HS) + vecSize(sn.HR) + vecSize(sn.SeqTo) +
		vecSize(sn.SeqIn) + 4
	for i := range sn.Saved {
		m := &sn.Saved[i]
		if marks == nil || m.Seq > marks[m.To] {
			n += 4 + 8 + 8 + 1 + 4 + len(m.Data)
		}
	}
	return n
}

func appendVec(dst []byte, m map[int]uint64) []byte {
	kp := intScratch.Get().(*[]int)
	keys := (*kp)[:0]
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(len(keys)))
	dst = append(dst, b[0:4]...)
	for _, k := range keys {
		binary.BigEndian.PutUint32(b[0:4], uint32(k))
		binary.BigEndian.PutUint64(b[4:12], m[k])
		dst = append(dst, b[:]...)
	}
	*kp = keys
	intScratch.Put(kp)
	return dst
}

func appendSaved(dst []byte, m *SavedMsg) []byte {
	var b [25]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(m.To))
	binary.BigEndian.PutUint64(b[4:12], m.Clock)
	binary.BigEndian.PutUint64(b[12:20], m.Seq)
	b[20] = m.Kind
	binary.BigEndian.PutUint32(b[21:25], uint32(len(m.Data)))
	dst = append(dst, b[:]...)
	return append(dst, m.Data...)
}

// AppendSnapshot appends the full binary encoding of sn to dst. With
// dst capacity of at least SnapshotSize(sn) it performs no allocation.
func AppendSnapshot(dst []byte, sn *Snapshot) []byte {
	return AppendSnapshotDelta(dst, sn, nil)
}

// AppendSnapshotDelta appends the binary encoding of sn to dst,
// restricted to the SAVED entries newer than marks: an entry to
// destination d is included only when its channel seq exceeds marks[d].
// marks is the SeqTo vector of the last checkpoint the store has acked,
// so the excluded entries are exactly those the store already holds in
// that image. A nil marks yields the full encoding.
func AppendSnapshotDelta(dst []byte, sn *Snapshot, marks map[int]uint64) []byte {
	dst = append(dst, snapMagic[:]...)
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(sn.Rank))
	binary.BigEndian.PutUint64(b[4:12], sn.H)
	dst = append(dst, b[:]...)
	dst = appendVec(dst, sn.HS)
	dst = appendVec(dst, sn.HR)
	dst = appendVec(dst, sn.SeqTo)
	dst = appendVec(dst, sn.SeqIn)
	// marks==nil must mean "everything", not "Seq > 0": channel seqs
	// start at 1 in live states, but the decoder accepts Seq 0, and a
	// full encoding that silently drops such an entry breaks the
	// decode∘encode identity the store replicas depend on.
	n := 0
	for i := range sn.Saved {
		if m := &sn.Saved[i]; marks == nil || m.Seq > marks[m.To] {
			n++
		}
	}
	binary.BigEndian.PutUint32(b[0:4], uint32(n))
	dst = append(dst, b[0:4]...)
	for i := range sn.Saved {
		if m := &sn.Saved[i]; marks == nil || m.Seq > marks[m.To] {
			dst = appendSaved(dst, m)
		}
	}
	return dst
}

// Encode serializes the snapshot for transfer to the checkpoint server.
func (sn *Snapshot) Encode() ([]byte, error) {
	return AppendSnapshot(make([]byte, 0, SnapshotSize(sn)), sn), nil
}

func decodeVec(b []byte, off int) (map[int]uint64, int, error) {
	if off+4 > len(b) {
		return nil, 0, fmt.Errorf("core: snapshot vector header truncated")
	}
	n := int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	if off+12*n > len(b) {
		return nil, 0, fmt.Errorf("core: snapshot vector of %d entries truncated", n)
	}
	m := make(map[int]uint64, n)
	for i := 0; i < n; i++ {
		m[int(binary.BigEndian.Uint32(b[off:]))] = binary.BigEndian.Uint64(b[off+4:])
		off += 12
	}
	return m, off, nil
}

func decodeSnapshotBinary(b []byte) (*Snapshot, error) {
	off := 4
	if off+12 > len(b) {
		return nil, fmt.Errorf("core: snapshot header truncated")
	}
	sn := &Snapshot{
		Rank: int(binary.BigEndian.Uint32(b[off:])),
		H:    binary.BigEndian.Uint64(b[off+4:]),
	}
	off += 12
	var err error
	for _, dst := range []*map[int]uint64{&sn.HS, &sn.HR, &sn.SeqTo, &sn.SeqIn} {
		if *dst, off, err = decodeVec(b, off); err != nil {
			return nil, err
		}
	}
	if off+4 > len(b) {
		return nil, fmt.Errorf("core: snapshot saved-log header truncated")
	}
	n := int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	if n < 0 || n > (len(b)-off)/25 {
		return nil, fmt.Errorf("core: snapshot claims %d saved entries in %d bytes", n, len(b)-off)
	}
	sn.Saved = make([]SavedMsg, n)
	for i := 0; i < n; i++ {
		// The count sanity check above bounds n, but data bytes consumed
		// by earlier entries can still leave less than a header here.
		if off+25 > len(b) {
			return nil, fmt.Errorf("core: snapshot saved entry %d header truncated", i)
		}
		m := &sn.Saved[i]
		m.To = int(binary.BigEndian.Uint32(b[off:]))
		m.Clock = binary.BigEndian.Uint64(b[off+4:])
		m.Seq = binary.BigEndian.Uint64(b[off+12:])
		m.Kind = b[off+20]
		dl := int(binary.BigEndian.Uint32(b[off+21:]))
		off += 25
		if dl < 0 || off+dl > len(b) {
			return nil, fmt.Errorf("core: snapshot saved entry %d data truncated", i)
		}
		m.Data = append([]byte(nil), b[off:off+dl]...)
		off += dl
	}
	if off != len(b) {
		return nil, fmt.Errorf("core: snapshot has %d trailing bytes", len(b)-off)
	}
	return sn, nil
}

// DecodeSnapshot parses a snapshot produced by Encode or the Append
// functions. Bodies written by previous releases' gob encoder are still
// accepted (the "MVS1" magic discriminates).
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) >= 4 && bytes.Equal(b[:4], snapMagic[:]) {
		return decodeSnapshotBinary(b)
	}
	var sn Snapshot
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&sn); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return &sn, nil
}

// MergeSnapshots materializes a full snapshot from a base image and a
// delta taken against it. The delta's clocks and vectors supersede the
// base's (they were captured later); the SAVED log is the ordered
// concatenation — every delta entry carries a channel seq beyond the
// base's SeqTo mark for its destination, and sender clocks only grow, so
// appending preserves both the per-channel seq order and the global
// clock order the replay path relies on. The result shares no memory
// with either input's mutable state except the Saved entries' Data
// slices, which are immutable once logged.
func MergeSnapshots(base, delta *Snapshot) *Snapshot {
	sn := &Snapshot{
		Rank:  delta.Rank,
		H:     delta.H,
		HS:    delta.HS,
		HR:    delta.HR,
		SeqTo: delta.SeqTo,
		SeqIn: delta.SeqIn,
		Saved: make([]SavedMsg, 0, len(base.Saved)+len(delta.Saved)),
	}
	sn.Saved = append(sn.Saved, base.Saved...)
	sn.Saved = append(sn.Saved, delta.Saved...)
	return sn
}
