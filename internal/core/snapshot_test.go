package core

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// sampleSnapshot builds a snapshot with populated vectors and a SAVED
// log whose entries straddle the marks boundary used by the delta
// tests: entries up to the marks' seqs belong to the "base", later ones
// to the delta.
func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Rank:  3,
		H:     41,
		HS:    map[int]uint64{0: 5, 1: 9, 2: 1},
		HR:    map[int]uint64{0: 4, 2: 7},
		SeqTo: map[int]uint64{0: 3, 1: 2},
		SeqIn: map[int]uint64{0: 6, 2: 2},
		Saved: []SavedMsg{
			{To: 0, Clock: 10, Seq: 1, Kind: 1, Data: []byte("alpha")},
			{To: 1, Clock: 11, Seq: 1, Kind: 1, Data: []byte("bravo")},
			{To: 0, Clock: 12, Seq: 2, Kind: 2, Data: nil},
			{To: 0, Clock: 14, Seq: 3, Kind: 1, Data: []byte("charlie")},
			{To: 1, Clock: 15, Seq: 2, Kind: 1, Data: []byte("delta!")},
		},
	}
}

func TestSnapshotBinaryRoundTripAndSize(t *testing.T) {
	sn := sampleSnapshot()
	b, err := sn.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != SnapshotSize(sn) {
		t.Errorf("encoded %d bytes, SnapshotSize promises %d", len(b), SnapshotSize(sn))
	}
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(sn), normalize(got)) {
		t.Errorf("round trip mutated snapshot:\n got %+v\nwant %+v", got, sn)
	}
}

// normalize maps nil Data to empty so DeepEqual compares content.
func normalize(sn *Snapshot) *Snapshot {
	cp := *sn
	cp.Saved = append([]SavedMsg(nil), sn.Saved...)
	for i := range cp.Saved {
		if cp.Saved[i].Data == nil {
			cp.Saved[i].Data = []byte{}
		}
	}
	return &cp
}

func TestSnapshotEncodingDeterministic(t *testing.T) {
	// The store materializes full images independently on each replica
	// and anti-entropy compares them byte for byte, so two encodings of
	// equal snapshots (rebuilt so map iteration order differs) must be
	// identical.
	a, _ := sampleSnapshot().Encode()
	for i := 0; i < 10; i++ {
		b, _ := sampleSnapshot().Encode()
		if !bytes.Equal(a, b) {
			t.Fatalf("encoding %d differs from the first", i)
		}
	}
}

func TestSnapshotGobFallbackDecodes(t *testing.T) {
	// Images written by the previous release carry gob bodies; the
	// decoder must still read them.
	sn := sampleSnapshot()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sn); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != sn.Rank || got.H != sn.H || len(got.Saved) != len(sn.Saved) {
		t.Errorf("gob fallback decoded %+v", got)
	}
}

func TestDecodeSnapshotRejectsTruncation(t *testing.T) {
	b, _ := sampleSnapshot().Encode()
	for cut := 4; cut < len(b); cut += 3 {
		if _, err := DecodeSnapshot(b[:cut]); err == nil {
			t.Fatalf("snapshot truncated to %d of %d bytes decoded", cut, len(b))
		}
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), b...), 0xFF)); err == nil {
		t.Error("snapshot with a trailing byte decoded")
	}
}

func TestSnapshotDeltaMergeEqualsFull(t *testing.T) {
	// The delta correctness argument, pinned: base = entries at or below
	// marks, delta = the rest; merging base and delta must re-encode to
	// the exact bytes of the full snapshot.
	full := sampleSnapshot()
	marks := map[int]uint64{0: 2, 1: 1} // base holds alpha, bravo, seq-2-to-0
	base := &Snapshot{
		Rank: full.Rank, H: 12,
		HS: map[int]uint64{0: 2}, HR: map[int]uint64{0: 1},
		SeqTo: map[int]uint64{0: 2, 1: 1}, SeqIn: map[int]uint64{0: 3},
		Saved: full.Saved[:3],
	}

	enc := AppendSnapshotDelta(nil, full, marks)
	if want := SnapshotDeltaSize(full, marks); len(enc) != want {
		t.Errorf("delta encoded %d bytes, SnapshotDeltaSize promises %d", len(enc), want)
	}
	delta, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Saved) != 2 {
		t.Fatalf("delta carries %d saved entries, want 2", len(delta.Saved))
	}

	merged := MergeSnapshots(base, delta)
	mb, _ := merged.Encode()
	fb, _ := full.Encode()
	if !bytes.Equal(mb, fb) {
		t.Error("merge(base, delta) does not re-encode to the full snapshot's bytes")
	}
}

func TestSnapshotDeltaNilMarksIsFull(t *testing.T) {
	sn := sampleSnapshot()
	a := AppendSnapshot(nil, sn)
	b := AppendSnapshotDelta(nil, sn, nil)
	if !bytes.Equal(a, b) {
		t.Error("nil marks should yield the full encoding")
	}
}

// The encode path runs on every checkpoint; with a preallocated
// destination it must not allocate (the sorted-key scratch comes from a
// pool, warmed by the first call).
func TestAppendSnapshotZeroAlloc(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation perturbs sync.Pool; alloc counts are not meaningful")
	}
	sn := sampleSnapshot()
	marks := map[int]uint64{0: 2, 1: 1}
	full := make([]byte, 0, SnapshotSize(sn))
	delta := make([]byte, 0, SnapshotDeltaSize(sn, marks))
	AppendSnapshot(full, sn) // warm the scratch pool
	cases := []struct {
		name string
		fn   func()
	}{
		{"AppendSnapshot", func() { AppendSnapshot(full[:0], sn) }},
		{"AppendSnapshotDelta", func() { AppendSnapshotDelta(delta[:0], sn, marks) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(200, c.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", c.name, allocs)
		}
	}
}
