//go:build race

package core

// raceDetectorEnabled gates allocation-count assertions: the race
// detector instruments sync.Pool (randomly dropping puts to widen the
// search space), so allocs/op is not meaningful under -race.
const raceDetectorEnabled = true
