package core

import (
	"bytes"
	"testing"
)

// FuzzDecodeSnapshot feeds arbitrary bytes to the snapshot decoder —
// the frame a restarting daemon trusts to rebuild its SAVED log and
// clock vectors. Accepted inputs must re-encode to a snapshot the
// decoder accepts again with identical content.
func FuzzDecodeSnapshot(f *testing.F) {
	sn := &Snapshot{
		Rank:  3,
		H:     17,
		HS:    map[int]uint64{0: 4, 2: 9},
		HR:    map[int]uint64{1: 2},
		SeqTo: map[int]uint64{0: 1},
		SeqIn: map[int]uint64{2: 6},
		Saved: []SavedMsg{{To: 0, Clock: 4, Seq: 1, Kind: 1, Data: []byte("payload")}},
	}
	if enc, err := sn.Encode(); err == nil {
		f.Add(enc)
	}
	empty := &Snapshot{}
	if enc, err := empty.Encode(); err == nil {
		f.Add(enc)
	}
	f.Add([]byte("MVS1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		enc, err := got.Encode()
		if err != nil {
			t.Fatalf("re-encoding accepted snapshot: %v", err)
		}
		again, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("re-encode of accepted snapshot rejected: %v", err)
		}
		if again.Rank != got.Rank || again.H != got.H || len(again.Saved) != len(got.Saved) {
			t.Fatalf("round trip: rank/H/saved %d/%d/%d vs %d/%d/%d",
				got.Rank, got.H, len(got.Saved), again.Rank, again.H, len(again.Saved))
		}
		for i := range got.Saved {
			a, b := &got.Saved[i], &again.Saved[i]
			if a.To != b.To || a.Clock != b.Clock || a.Seq != b.Seq || a.Kind != b.Kind || !bytes.Equal(a.Data, b.Data) {
				t.Fatalf("saved entry %d: %+v vs %+v", i, *a, *b)
			}
		}
	})
}
