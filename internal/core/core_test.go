package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// deliver offers and immediately commits a message during normal
// execution, as the daemon does for a blocking receive with an empty
// queue.
func deliver(t *testing.T, s *State, from int, h uint64, data []byte) Event {
	t.Helper()
	if act := s.Offer(from, h, 0, 0, data); act != OfferQueue {
		t.Fatalf("Offer(%d,%d) = %v, want OfferQueue", from, h, act)
	}
	return s.Commit(from, h, 0)
}

func TestClockTicksOnSendAndDeliver(t *testing.T) {
	s := NewState(0)
	id, _, tx := s.PrepareSend(1, 0, []byte("a"))
	if !tx || id.Clock != 1 || id.Sender != 0 {
		t.Fatalf("first send: id=%+v transmit=%v", id, tx)
	}
	ev := deliver(t, s, 1, 1, []byte("b"))
	if ev.RecvClock != 2 || ev.SenderClock != 1 || ev.Sender != 1 {
		t.Errorf("event = %+v", ev)
	}
	if s.Clock() != 2 {
		t.Errorf("clock = %d, want 2", s.Clock())
	}
}

func TestWaitLoggedGating(t *testing.T) {
	s := NewState(0)
	if s.SendBlocked() {
		t.Fatal("fresh state should not block sends")
	}
	deliver(t, s, 1, 1, nil)
	if !s.SendBlocked() {
		t.Fatal("send must be blocked until the event is acked")
	}
	s.EventsAcked(1)
	if s.SendBlocked() {
		t.Fatal("send still blocked after ack")
	}
}

func TestEventsAckedUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ack underflow")
		}
	}()
	NewState(0).EventsAcked(1)
}

func TestDuplicateOfferDropped(t *testing.T) {
	s := NewState(0)
	deliver(t, s, 2, 5, nil)
	if act := s.Offer(2, 5, 0, 0, nil); act != OfferDrop {
		t.Fatalf("re-offer of delivered clock: %v", act)
	}
	if act := s.Offer(2, 3, 0, 0, nil); act != OfferDrop {
		t.Fatalf("older clock: %v", act)
	}
	// A queued-but-undelivered message also blocks its duplicates.
	if act := s.Offer(2, 6, 0, 0, nil); act != OfferQueue {
		t.Fatalf("fresh clock: %v", act)
	}
	if act := s.Offer(2, 6, 0, 0, nil); act != OfferDrop {
		t.Fatalf("duplicate of queued message: %v", act)
	}
	s.Commit(2, 6, 0)
}

func TestCommitOfDuplicatePanics(t *testing.T) {
	s := NewState(0)
	deliver(t, s, 1, 4, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Commit(1, 4, 0)
}

func TestProbeCountAttachedToEvent(t *testing.T) {
	s := NewState(0)
	s.ProbeMiss()
	s.ProbeMiss()
	s.ProbeMiss()
	ev := deliver(t, s, 1, 1, nil)
	if ev.Probes != 3 {
		t.Errorf("probes = %d, want 3", ev.Probes)
	}
	ev = deliver(t, s, 1, 2, nil)
	if ev.Probes != 0 {
		t.Errorf("probe counter not reset: %d", ev.Probes)
	}
}

func TestSavedLogAccumulatesAndGC(t *testing.T) {
	s := NewState(0)
	s.PrepareSend(1, 0, make([]byte, 100)) // clock 1
	s.PrepareSend(2, 0, make([]byte, 50))  // clock 2
	s.PrepareSend(1, 0, make([]byte, 70))  // clock 3
	if s.LogBytes() != 220 || s.SavedCount() != 3 {
		t.Fatalf("log = %d bytes / %d msgs", s.LogBytes(), s.SavedCount())
	}
	freed := s.CollectGarbage(1, 1) // peer 1 checkpointed after delivering clock 1
	if freed != 100 {
		t.Errorf("freed = %d, want 100", freed)
	}
	if s.LogBytes() != 120 || s.SavedCount() != 2 {
		t.Errorf("after GC: %d bytes / %d msgs", s.LogBytes(), s.SavedCount())
	}
	// GC for the other peer leaves peer 1's remaining message alone.
	if freed := s.CollectGarbage(2, 2); freed != 50 {
		t.Errorf("freed = %d, want 50", freed)
	}
}

func TestResendAfterRestart1(t *testing.T) {
	s := NewState(0)
	s.PrepareSend(1, 9, []byte("m1")) // clock 1
	s.PrepareSend(1, 9, []byte("m2")) // clock 2
	s.PrepareSend(2, 9, []byte("x"))  // clock 3
	s.PrepareSend(1, 9, []byte("m3")) // clock 4
	deliver(t, s, 1, 7, nil)          // so HR[1] = 7

	resend, myHR := s.OnRestart1(1, 2) // peer 1 delivered up to our clock 2
	if myHR != 7 {
		t.Errorf("myHR = %d, want 7", myHR)
	}
	if len(resend) != 1 || string(resend[0].Data) != "m3" || resend[0].Clock != 4 {
		t.Fatalf("resend = %+v", resend)
	}
	// Re-executed sends at or below hp=2 to peer 1 are now suppressed.
	s2 := NewState(0)
	s2.OnRestart2(1, 2)
	if _, _, tx := s2.PrepareSend(1, 0, []byte("m1")); tx {
		t.Error("re-executed send clock 1 should be suppressed")
	}
	if _, _, tx := s2.PrepareSend(1, 0, []byte("m2")); tx {
		t.Error("re-executed send clock 2 should be suppressed")
	}
	if _, _, tx := s2.PrepareSend(1, 0, []byte("m3")); !tx {
		t.Error("send clock 3 must be transmitted")
	}
	// But all of them must be in SAVED (Lemma 1).
	if s2.SavedCount() != 3 {
		t.Errorf("SAVED count = %d, want 3", s2.SavedCount())
	}
}

func TestReplaySequence(t *testing.T) {
	s := NewState(0)
	// Original history: recv(1,c1) recv(2,c1) recv(1,c2), with a probe
	// miss before the second event.
	events := []Event{
		{Sender: 1, SenderClock: 1, RecvClock: 1, Probes: 0},
		{Sender: 2, SenderClock: 1, RecvClock: 2, Probes: 1},
		{Sender: 1, SenderClock: 2, RecvClock: 3, Probes: 0},
	}
	s.StartRecovery(events)
	if !s.Replaying() || s.ReplayRemaining() != 3 {
		t.Fatalf("replaying=%v remaining=%d", s.Replaying(), s.ReplayRemaining())
	}

	// Peer 1's two messages arrive before peer 2's: both stash; only
	// the first can be taken.
	if act := s.Offer(1, 1, 0, 0, []byte("a")); act != OfferStash {
		t.Fatalf("replay offer: %v", act)
	}
	if act := s.Offer(1, 2, 0, 0, []byte("c")); act != OfferStash {
		t.Fatalf("replay offer 2: %v", act)
	}
	m, ev, ok := s.TakeStashed()
	if !ok || string(m.Data) != "a" || ev.RecvClock != 1 {
		t.Fatalf("first replay: %+v %+v %v", m, ev, ok)
	}
	// Next logged event is from peer 2, whose message has not arrived.
	if _, _, ok := s.TakeStashed(); ok {
		t.Fatal("TakeStashed should fail until peer 2's message arrives")
	}
	// Replayed probe: the log says one miss before event 2.
	if !s.ReplayProbeMiss() {
		t.Error("first probe during replay should miss")
	}
	if s.ReplayProbeMiss() {
		t.Error("second probe should not miss (message 2 is next)")
	}
	if act := s.Offer(2, 1, 0, 0, []byte("b")); act != OfferStash {
		t.Fatal("peer 2 message should stash")
	}
	m, ev, ok = s.TakeStashed()
	if !ok || string(m.Data) != "b" || ev.RecvClock != 2 {
		t.Fatalf("second replay: %+v %+v %v", m, ev, ok)
	}
	m, ev, ok = s.TakeStashed()
	if !ok || string(m.Data) != "c" || ev.RecvClock != 3 {
		t.Fatalf("third replay: %+v %+v %v", m, ev, ok)
	}
	if s.Replaying() {
		t.Error("replay should be complete")
	}
	if s.Clock() != 3 {
		t.Errorf("clock after replay = %d, want 3", s.Clock())
	}
	// Fresh deliveries resume normal logging.
	ev = deliver(t, s, 2, 2, nil)
	if ev.RecvClock != 4 || !s.SendBlocked() {
		t.Errorf("post-replay delivery: ev=%+v blocked=%v", ev, s.SendBlocked())
	}
}

func TestDrainStashAfterReplay(t *testing.T) {
	s := NewState(0)
	s.StartRecovery([]Event{{Sender: 1, SenderClock: 1, RecvClock: 1}})
	// A fresh message from peer 2 and a future message from peer 1
	// arrive during replay.
	s.Offer(2, 1, 0, 0, []byte("fresh2"))
	s.Offer(1, 2, 0, 0, []byte("future1"))
	s.Offer(1, 1, 0, 0, []byte("logged"))
	if _, _, ok := s.TakeStashed(); !ok {
		t.Fatal("logged message should be takeable")
	}
	rest := s.DrainStash()
	if len(rest) != 2 {
		t.Fatalf("drained %d, want 2", len(rest))
	}
	// Ordered by clock then sender: (2,clock1) then (1,clock2).
	if rest[0].From != 2 || string(rest[0].Data) != "fresh2" {
		t.Errorf("rest[0] = %+v", rest[0])
	}
	if rest[1].From != 1 || string(rest[1].Data) != "future1" {
		t.Errorf("rest[1] = %+v", rest[1])
	}
	// Drained messages commit normally.
	for _, m := range rest {
		s.Commit(m.From, m.Clock, 0)
	}
}

func TestDrainStashDuringReplayPanics(t *testing.T) {
	s := NewState(0)
	s.StartRecovery([]Event{{Sender: 1, SenderClock: 1, RecvClock: 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.DrainStash()
}

func TestStartRecoverySkipsPreCheckpointEvents(t *testing.T) {
	// A process restored from a checkpoint at clock 5 must only replay
	// events after clock 5.
	sn := &Snapshot{Rank: 0, H: 5, HS: map[int]uint64{}, HR: map[int]uint64{1: 3}}
	s := Restore(sn)
	s.StartRecovery([]Event{
		{Sender: 1, SenderClock: 2, RecvClock: 4},
		{Sender: 1, SenderClock: 3, RecvClock: 5},
		{Sender: 1, SenderClock: 4, RecvClock: 6},
	})
	if s.ReplayRemaining() != 1 {
		t.Fatalf("remaining = %d, want 1", s.ReplayRemaining())
	}
	ev, _ := s.NextReplay()
	if ev.RecvClock != 6 {
		t.Errorf("next replay = %+v", ev)
	}
}

func TestReplayClockHoleRefusedAndRegenerated(t *testing.T) {
	// The logged event sits at clock 5 while the state is at clock 0:
	// deliveries in between were never logged (suppressed determinants
	// lost with the crash). TakeStashed must refuse — delivering the
	// logged message now would drift the clock — and the hole is
	// instead filled by regenerating unclaimed arrivals.
	s := NewState(0)
	s.StartRecovery([]Event{{Sender: 1, SenderClock: 3, RecvClock: 5}})
	s.Offer(1, 3, 0, 0, nil) // the logged message itself: claimed, must wait
	if _, _, ok := s.TakeStashed(); ok {
		t.Fatal("TakeStashed crossed a clock hole")
	}
	if !s.ReplayBlockedByHole() {
		t.Fatal("hole not reported")
	}
	if _, _, ok := s.RegenerateReplay(); ok {
		t.Fatal("regenerated a message claimed by the logged suffix")
	}
	// An unclaimed arrival from another sender fills the hole as a
	// fresh, gated delivery.
	s.Offer(2, 7, 0, 0, nil)
	m, ev, ok := s.RegenerateReplay()
	if !ok || m.From != 2 || ev.RecvClock != 1 {
		t.Fatalf("regeneration: ok=%v m=%+v ev=%+v", ok, m, ev)
	}
	if !s.SendBlocked() {
		t.Fatal("regenerated delivery must join the WAITLOGGED gate")
	}
	if !s.Replaying() {
		t.Fatal("replay cursor must not advance on regeneration")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewState(3)
	s.PrepareSend(1, 2, []byte("hello"))
	s.Offer(2, 9, 0, 0, nil)
	s.Commit(2, 9, 0)
	s.EventsAcked(1)
	sn := s.Snapshot()
	b, err := sn.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sn2, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	r := Restore(sn2)
	if r.Rank() != 3 || r.Clock() != s.Clock() || r.LogBytes() != s.LogBytes() {
		t.Errorf("restored state mismatch: %+v", r)
	}
	if r.RestartAnnouncement(2) != 9 {
		t.Errorf("HR[2] = %d, want 9", r.RestartAnnouncement(2))
	}
	// Mutating the restored copy must not touch the original payloads.
	r.saved[0].Data[0] = 'X'
	if s.saved[0].Data[0] != 'h' {
		t.Error("snapshot aliases original payload")
	}
}

// Property (Lemma 1): after any sequence of sends, every emitted clock
// to every peer is present in SAVED until garbage-collected, and resend
// returns exactly the suffix above the requested clock.
func TestPropertySavedLogComplete(t *testing.T) {
	f := func(dests []uint8, cut uint8) bool {
		if len(dests) == 0 || len(dests) > 128 {
			return true
		}
		s := NewState(0)
		byPeer := make(map[int][]uint64)
		for _, d := range dests {
			peer := int(d%4) + 1
			id, _, _ := s.PrepareSend(peer, 0, []byte{d})
			byPeer[peer] = append(byPeer[peer], id.Clock)
		}
		for peer, clocks := range byPeer {
			hp := uint64(cut)
			resend := s.OnRestart2(peer, hp)
			var want []uint64
			for _, c := range clocks {
				if c > hp {
					want = append(want, c)
				}
			}
			if len(resend) != len(want) {
				return false
			}
			for i := range want {
				if resend[i].Clock != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: replay of a logged history, with messages arriving in any
// permuted order and with duplicates injected, reconstructs exactly the
// original delivery sequence (the consistency Theorem 2 requires).
func TestPropertyReplayDeterminism(t *testing.T) {
	f := func(seed int64, nEvents uint8) bool {
		n := int(nEvents%20) + 1
		rng := rand.New(rand.NewSource(seed))

		// Build an original history: n deliveries from 3 peers.
		orig := NewState(0)
		type msg struct {
			from int
			h    uint64
			data []byte
		}
		var msgs []msg
		clock := map[int]uint64{}
		var history []Event
		for i := 0; i < n; i++ {
			from := rng.Intn(3) + 1
			clock[from]++
			m := msg{from: from, h: clock[from], data: []byte(fmt.Sprintf("%d/%d", from, clock[from]))}
			msgs = append(msgs, m)
			if rng.Intn(3) == 0 {
				orig.ProbeMiss()
			}
			if act := orig.Offer(m.from, m.h, 0, 0, m.data); act != OfferQueue {
				return false
			}
			history = append(history, orig.Commit(m.from, m.h, 0))
			orig.EventsAcked(1)
		}

		// Crash and replay with shuffled arrivals plus duplicates.
		re := NewState(0)
		re.StartRecovery(history)
		arrivals := append([]msg(nil), msgs...)
		for i := 0; i < len(msgs); i += 2 { // duplicates
			arrivals = append(arrivals, msgs[rng.Intn(len(msgs))])
		}
		rng.Shuffle(len(arrivals), func(i, j int) { arrivals[i], arrivals[j] = arrivals[j], arrivals[i] })

		var delivered []string
		for _, m := range arrivals {
			re.Offer(m.from, m.h, 0, 0, m.data)
			for {
				sm, _, ok := re.TakeStashed()
				if !ok {
					break
				}
				delivered = append(delivered, string(sm.Data))
			}
		}
		if re.Replaying() {
			return false
		}
		if len(delivered) != n {
			return false
		}
		for i, m := range msgs {
			if delivered[i] != string(m.data) {
				return false
			}
		}
		return re.Clock() == orig.Clock()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: GC removes exactly the messages at or below the vector and
// resend never returns a collected message afterwards.
func TestPropertyGCConsistentWithResend(t *testing.T) {
	f := func(sends []uint8, gcAt uint8) bool {
		s := NewState(0)
		for _, b := range sends {
			s.PrepareSend(1, 0, []byte{b})
		}
		s.CollectGarbage(1, uint64(gcAt))
		for _, m := range s.OnRestart2(1, 0) {
			if m.Clock <= uint64(gcAt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIndependentOfLaterMutation(t *testing.T) {
	s := NewState(0)
	s.PrepareSend(1, 0, []byte("before"))
	sn := s.Snapshot()
	s.PrepareSend(1, 0, []byte("after"))
	if len(sn.Saved) != 1 {
		t.Fatalf("snapshot grew: %d", len(sn.Saved))
	}
	r := Restore(sn)
	if r.Clock() != 1 || r.SavedCount() != 1 {
		t.Errorf("restored clock=%d saved=%d", r.Clock(), r.SavedCount())
	}
}

func TestDecodeSnapshotRejectsGarbage(t *testing.T) {
	if _, err := DecodeSnapshot(bytes.Repeat([]byte{0x7}, 40)); err == nil {
		t.Error("garbage snapshot decoded without error")
	}
}

func TestDeliveredVectorCopies(t *testing.T) {
	s := NewState(0)
	deliver(t, s, 1, 3, nil)
	v := s.DeliveredVector()
	if v[1] != 3 {
		t.Fatalf("vector = %v", v)
	}
	v[1] = 99
	if s.RestartAnnouncement(1) != 3 {
		t.Error("DeliveredVector aliases internal map")
	}
}

// TestTwoCrashedPeersExchange drives two States through the concurrent-
// failure scenario of Appendix B: both crash, both restart from scratch,
// and every message each one needs arrives from the other's re-executed
// sends (SAVED repopulation, Lemma 1), with transmissions filtered by
// the RESTART1 horizons.
func TestTwoCrashedPeersExchange(t *testing.T) {
	// Original execution: a strict alternation p→q, q→p, 6 messages
	// each way, both logging all receptions.
	type wireMsg struct {
		from int
		h    uint64
		data []byte
	}
	run := func(p, q *State, deliverP, deliverQ func(wireMsg)) {
		for i := 0; i < 6; i++ {
			id, _, tx := p.PrepareSend(1, 0, []byte{byte(i)})
			if tx {
				deliverQ(wireMsg{from: 0, h: id.Clock, data: []byte{byte(i)}})
			}
			id, _, tx = q.PrepareSend(0, 0, []byte{byte(i + 100)})
			if tx {
				deliverP(wireMsg{from: 1, h: id.Clock, data: []byte{byte(i + 100)}})
			}
		}
	}

	p0, q0 := NewState(0), NewState(1)
	var histP, histQ []Event
	run(p0, q0,
		func(m wireMsg) {
			if p0.Offer(m.from, m.h, 0, 0, m.data) == OfferQueue {
				histP = append(histP, p0.Commit(m.from, m.h, 0))
				p0.EventsAcked(1)
			}
		},
		func(m wireMsg) {
			if q0.Offer(m.from, m.h, 0, 0, m.data) == OfferQueue {
				histQ = append(histQ, q0.Commit(m.from, m.h, 0))
				q0.EventsAcked(1)
			}
		})

	// Both crash; both restart from scratch with their logged events.
	p1, q1 := NewState(0), NewState(1)
	p1.StartRecovery(histP)
	q1.StartRecovery(histQ)
	// RESTART1 exchange: each announces HR=0 (restored from scratch).
	if rs, _ := p1.OnRestart1(1, q1.RestartAnnouncement(0)); len(rs) != 0 {
		t.Fatalf("fresh state resent %d messages", len(rs))
	}
	if rs := q1.OnRestart2(0, p1.RestartAnnouncement(1)); len(rs) != 0 {
		t.Fatalf("fresh state resent %d messages", len(rs))
	}

	// Re-execute the same program; messages flow between the replaying
	// states. Every delivery must come out in the original order.
	var replayedP, replayedQ [][]byte
	drain := func(s *State, sink *[][]byte) {
		for {
			m, _, ok := s.TakeStashed()
			if !ok {
				return
			}
			*sink = append(*sink, m.Data)
		}
	}
	run(p1, q1,
		func(m wireMsg) {
			p1.Offer(m.from, m.h, 0, 0, m.data)
			drain(p1, &replayedP)
		},
		func(m wireMsg) {
			q1.Offer(m.from, m.h, 0, 0, m.data)
			drain(q1, &replayedQ)
		})
	if p1.Replaying() || q1.Replaying() {
		t.Fatalf("replay incomplete: p=%d q=%d remaining", p1.ReplayRemaining(), q1.ReplayRemaining())
	}
	if len(replayedP) != 6 || len(replayedQ) != 6 {
		t.Fatalf("replayed %d/%d messages, want 6/6", len(replayedP), len(replayedQ))
	}
	for i := 0; i < 6; i++ {
		if replayedP[i][0] != byte(i+100) || replayedQ[i][0] != byte(i) {
			t.Errorf("replay order broken at %d: %v %v", i, replayedP[i], replayedQ[i])
		}
	}
	if p1.Clock() != p0.Clock() || q1.Clock() != q0.Clock() {
		t.Errorf("clocks diverged: p %d vs %d, q %d vs %d", p1.Clock(), p0.Clock(), q1.Clock(), q0.Clock())
	}
	// Lemma 1: the re-executed SAVED logs are complete.
	if p1.SavedCount() != p0.SavedCount() || q1.SavedCount() != q0.SavedCount() {
		t.Errorf("SAVED logs differ: p %d vs %d, q %d vs %d",
			p1.SavedCount(), p0.SavedCount(), q1.SavedCount(), q0.SavedCount())
	}
}
