// Package shard implements the deterministic placement function of the
// event-logger / checkpoint-server fleet layer (DESIGN.md §15): a
// consistent-hash ring that maps a channel (sender, receiver) to a shard
// index, with successor takeover when a shard is down and minimal key
// movement by construction.
//
// The ring uses a fixed slot table (Redis-Cluster style hash slots)
// rather than avalanche hashing of keys onto a point circle. The key →
// slot map is an affine mix of sender and receiver — slot = s·a + r·b
// over Z_1024 with a seeded odd a and even b; the slot → shard map is
// the static balanced assignment slot mod shards. Affine-over-a-power-
// of-two is deliberate: MPI communicators produce regular channel sets,
// and the parities are chosen for exactly those. An odd a makes
// receiver fans {(s, me)} and full grids {0..n-1}² equidistribute (for
// each receiver, s·a walks every residue class — a mixing hash would
// give multinomial imbalance at small channel counts, routinely landing
// 3× load on one shard from dozens of channels over 8). An even b makes
// the combined stride a+b odd, so nearest-neighbor paths and rings
// {(r, r+1)} also cycle through every shard instead of aliasing onto
// the even residues. Membership changes touch only the slot → shard
// layer: when shard k is down its slots — and nothing else — resolve to
// k's successor, so key movement is exactly the dead shard's share.
package shard

// NSlots is the fixed slot-table size. A power of two so that seeded odd
// multipliers are bijections on the slot space.
const NSlots = 1024

// Ring is an immutable placement function: (sender, receiver) → shard.
// Liveness is not ring state — callers pass the current dead set, so one
// ring value is shared by daemons, dispatcher, and harness without
// coordination.
type Ring struct {
	shards int
	a, b   uint64
}

// New returns the ring for a fleet of shards. The seed varies the
// slot permutation between deployments; the mapping is a pure function
// of (shards, seed).
func New(shards int, seed uint64) *Ring {
	if shards <= 0 {
		panic("shard: ring needs at least one shard")
	}
	// SplitMix64 finalizer over the seed; a forced odd, b forced even
	// (see the package comment for why the parities matter).
	mix := func(x uint64) uint64 {
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		return x ^ (x >> 31)
	}
	return &Ring{shards: shards, a: mix(seed) | 1, b: mix(seed+1) &^ 1}
}

// Shards reports the fleet size.
func (r *Ring) Shards() int { return r.shards }

// Slot maps a channel to its hash slot.
func (r *Ring) Slot(sender, receiver int) int {
	return int((uint64(sender)*r.a + uint64(receiver)*r.b) % NSlots)
}

// Owner maps a channel to its base shard, ignoring liveness.
func (r *Ring) Owner(sender, receiver int) int {
	return r.Slot(sender, receiver) % r.shards
}

// Successor returns the next live shard after k in ring order. If every
// shard is dead it returns k itself.
func (r *Ring) Successor(k int, dead map[int]bool) int {
	for i := 1; i < r.shards; i++ {
		s := (k + i) % r.shards
		if !dead[s] {
			return s
		}
	}
	return k
}

// OwnerLive maps a channel to the shard serving it under the given dead
// set: the base owner if live, otherwise its successor. dead may be nil.
func (r *Ring) OwnerLive(sender, receiver int, dead map[int]bool) int {
	k := r.Owner(sender, receiver)
	if len(dead) == 0 || !dead[k] {
		return k
	}
	return r.Successor(k, dead)
}
