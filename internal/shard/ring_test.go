package shard

import "testing"

// TestRingDeterminism: the mapping is a pure function of (shards, seed)
// — two independently constructed rings agree on every channel, and a
// different seed produces a different permutation.
func TestRingDeterminism(t *testing.T) {
	a := New(8, 42)
	b := New(8, 42)
	c := New(8, 43)
	same, diff := 0, 0
	for s := 0; s < 32; s++ {
		for r := 0; r < 32; r++ {
			if a.Owner(s, r) != b.Owner(s, r) {
				t.Fatalf("(%d,%d): ring not deterministic: %d vs %d", s, r, a.Owner(s, r), b.Owner(s, r))
			}
			if a.Owner(s, r) == c.Owner(s, r) {
				same++
			} else {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatalf("seed has no effect: %d/%d placements identical across seeds", same, same+diff)
	}
}

// TestRingBalance: at 64 channels (an 8×8 rank grid) over 8 shards the
// max/min shard load ratio must stay ≤ 1.3. The affine slot map makes
// grid channels equidistribute, so the ratio is in fact 1.0 here; the
// 1.3 bound is the contract the fleet layer relies on.
func TestRingBalance(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 42, 1 << 40} {
		r := New(8, seed)
		load := make([]int, 8)
		for s := 0; s < 8; s++ {
			for d := 0; d < 8; d++ {
				load[r.Owner(s, d)]++
			}
		}
		min, max := load[0], load[0]
		for _, l := range load[1:] {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		if min == 0 || float64(max)/float64(min) > 1.3 {
			t.Fatalf("seed %d: shard loads %v, max/min %d/%d exceeds 1.3", seed, load, max, min)
		}
	}
}

// TestRingPathSpread: nearest-neighbor channel sets {(r, r+1)} — ring
// and stencil exchanges — must cycle through every shard rather than
// aliasing onto a subset, which is what the even-b parity buys.
func TestRingPathSpread(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 11, 42} {
		for _, shards := range []int{2, 4, 8} {
			r := New(shards, seed)
			hit := make(map[int]bool)
			for i := 0; i < 4*shards; i++ {
				hit[r.Owner(i, i+1)] = true
			}
			if len(hit) != shards {
				t.Errorf("seed %d, %d shards: ring channels hit only %d shards", seed, shards, len(hit))
			}
		}
	}
}

// TestRingMinimalMovement: removing one shard moves exactly that shard's
// keys (to its successor) and no others; restoring it moves them back.
func TestRingMinimalMovement(t *testing.T) {
	r := New(8, 42)
	dead := map[int]bool{3: true}
	moved := 0
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			base := r.Owner(s, d)
			live := r.OwnerLive(s, d, dead)
			if base != 3 {
				if live != base {
					t.Fatalf("(%d,%d): key moved from live shard %d to %d", s, d, base, live)
				}
				continue
			}
			moved++
			if want := r.Successor(3, dead); live != want {
				t.Fatalf("(%d,%d): dead shard's key went to %d, want successor %d", s, d, live, want)
			}
			if back := r.OwnerLive(s, d, nil); back != base {
				t.Fatalf("(%d,%d): key did not return on rejoin: %d vs %d", s, d, back, base)
			}
		}
	}
	if moved == 0 {
		t.Fatal("shard 3 owned no keys in a 16×16 grid")
	}
}

// TestRingSuccessorSkipsDead: successor walk skips consecutive dead
// shards and degrades to identity when the whole fleet is down.
func TestRingSuccessorSkipsDead(t *testing.T) {
	r := New(4, 1)
	if got := r.Successor(1, map[int]bool{1: true, 2: true}); got != 3 {
		t.Fatalf("successor(1) with {1,2} dead = %d, want 3", got)
	}
	all := map[int]bool{0: true, 1: true, 2: true, 3: true}
	if got := r.Successor(2, all); got != 2 {
		t.Fatalf("successor with all dead = %d, want identity 2", got)
	}
}
