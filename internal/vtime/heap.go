package vtime

// lesser is the ordering constraint of heap4: the element type compares
// itself against another of its kind.
type lesser[T any] interface{ Less(T) bool }

// heap4 is an inlined generic 4-ary min-heap. It replaces the
// container/heap eventHeap on the scheduler's hot path: the stdlib
// interface boxes every Push/Pop operand into an `any` (one allocation
// per scheduled event) and pays a dynamic dispatch per comparison. The
// generic heap keeps elements concrete, so push/pop allocate nothing at
// steady state (see BenchmarkHeap4PushPop / TestHeap4ZeroAllocs), and a
// branching factor of 4 halves the tree depth, trading cheap in-node
// comparisons for expensive cache-missing levels — the standard layout
// for event queues whose elements are small pointers.
type heap4[T lesser[T]] struct{ s []T }

// Len reports the number of queued elements.
func (h *heap4[T]) Len() int { return len(h.s) }

// Min returns the minimum element without removing it. Call only when
// Len() > 0.
func (h *heap4[T]) Min() T { return h.s[0] }

// Push inserts x.
func (h *heap4[T]) Push(x T) {
	h.s = append(h.s, x)
	i := len(h.s) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !h.s[i].Less(h.s[p]) {
			break
		}
		h.s[i], h.s[p] = h.s[p], h.s[i]
		i = p
	}
}

// Pop removes and returns the minimum element. Call only when Len() > 0.
func (h *heap4[T]) Pop() T {
	s := h.s
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	var zero T
	s[n] = zero // release the reference so the GC can reclaim it
	h.s = s[:n]
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h.s[j].Less(h.s[m]) {
				m = j
			}
		}
		if !h.s[m].Less(h.s[i]) {
			break
		}
		h.s[i], h.s[m] = h.s[m], h.s[i]
		i = m
	}
	return top
}

// reset empties the heap, keeping the backing array.
func (h *heap4[T]) reset() {
	var zero T
	for i := range h.s {
		h.s[i] = zero
	}
	h.s = h.s[:0]
}
