package vtime

import (
	"sync"
	"time"
)

// Real is the wall-clock runtime: actors are ordinary goroutines and the
// clock is the machine clock. It is used by the TCP deployment (cmd/vrun
// and friends) and by tests that exercise true concurrency.
type Real struct {
	start time.Time
	wg    sync.WaitGroup
}

// NewReal returns a wall-clock runtime with Now()==0 at the time of the
// call.
func NewReal() *Real {
	return &Real{start: time.Now()}
}

// NewRealAt returns a wall-clock runtime whose Now()==0 at epoch. A
// multi-process deployment passes one epoch to every worker so their
// trace timestamps and partition windows share a comparable time base.
func NewRealAt(epoch time.Time) *Real {
	return &Real{start: epoch}
}

// Now reports wall-clock time elapsed since the runtime was created.
func (r *Real) Now() time.Duration { return time.Since(r.start) }

// Sleep pauses the calling goroutine for d of wall-clock time.
func (r *Real) Sleep(d time.Duration) { time.Sleep(d) }

// Go runs fn in a new goroutine tracked by Wait.
func (r *Real) Go(name string, fn func()) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		fn()
	}()
}

// Wait blocks until every goroutine started with Go has returned.
func (r *Real) Wait() { r.wg.Wait() }

var _ Runtime = (*Real)(nil)
