package vtime

import (
	"runtime"
	"testing"
	"time"
)

// BenchmarkMailboxHandoff prices one round-trip between two simulator
// actors — a request/response pair over two mailboxes, the pattern of
// every MPI-process↔daemon "Unix socket" crossing — including the
// token handoffs the single-threaded scheduler performs in between.
func BenchmarkMailboxHandoff(b *testing.B) {
	sim := NewSim()
	sim.Run(func() {
		req := NewMailbox[int](sim, "req")
		rsp := NewMailbox[int](sim, "rsp")
		sim.Go("echo", func() {
			for {
				v, ok := req.Recv()
				if !ok {
					return
				}
				rsp.Send(v)
			}
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req.Send(i)
			rsp.Recv()
		}
		b.StopTimer()
		req.Close()
	})
}

// BenchmarkMailboxSendRecv prices the same-actor enqueue/dequeue pair
// alone, without a scheduler handoff.
func BenchmarkMailboxSendRecv(b *testing.B) {
	sim := NewSim()
	sim.Run(func() {
		mb := NewMailbox[int](sim, "mb")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mb.Send(i)
			mb.Recv()
		}
		b.StopTimer()
	})
}

// BenchmarkHeap4PushPop prices one push/pop pair on the scheduler's
// event heap against a standing population of pending events — the hot
// path of every Schedule/timer operation. The events are pre-allocated
// and the backing array pre-grown, so the measured loop shows the heap's
// own cost: 0 allocs/op (the container/heap predecessor paid one
// interface-boxing allocation per Push).
func BenchmarkHeap4PushPop(b *testing.B) {
	const standing = 1024
	var h heap4[*event]
	evs := make([]*event, standing+1)
	for i := range evs {
		evs[i] = &event{}
	}
	seq := uint64(0)
	for i := 0; i < standing; i++ {
		ev := evs[i]
		seq++
		ev.at, ev.seq = time.Duration(seq%257), seq
		h.Push(ev)
	}
	spare := evs[standing]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq++
		spare.at, spare.seq = time.Duration(seq%257), seq
		h.Push(spare)
		spare = h.Pop()
	}
}

// BenchmarkParEpoch prices the parallel core end to end: lanes each
// reposting an event per epoch, measured per executed event.
func BenchmarkParEpoch(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(map[bool]string{true: "serial", false: "parallel"}[workers == 1], func(b *testing.B) {
			const lanes = 256
			p := NewPar(lanes, workers)
			rounds := b.N/lanes + 1
			var step Handler
			step = func(c *ParCtx) {
				if c.Now() < time.Duration(rounds)*time.Microsecond {
					c.Post(c.Lane(), time.Microsecond, step)
				}
			}
			for l := 0; l < lanes; l++ {
				p.Post(l, 0, step)
			}
			b.ReportAllocs()
			b.ResetTimer()
			p.Run()
			b.StopTimer()
		})
	}
}
