package vtime

import "testing"

// BenchmarkMailboxHandoff prices one round-trip between two simulator
// actors — a request/response pair over two mailboxes, the pattern of
// every MPI-process↔daemon "Unix socket" crossing — including the
// token handoffs the single-threaded scheduler performs in between.
func BenchmarkMailboxHandoff(b *testing.B) {
	sim := NewSim()
	sim.Run(func() {
		req := NewMailbox[int](sim, "req")
		rsp := NewMailbox[int](sim, "rsp")
		sim.Go("echo", func() {
			for {
				v, ok := req.Recv()
				if !ok {
					return
				}
				rsp.Send(v)
			}
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req.Send(i)
			rsp.Recv()
		}
		b.StopTimer()
		req.Close()
	})
}

// BenchmarkMailboxSendRecv prices the same-actor enqueue/dequeue pair
// alone, without a scheduler handoff.
func BenchmarkMailboxSendRecv(b *testing.B) {
	sim := NewSim()
	sim.Run(func() {
		mb := NewMailbox[int](sim, "mb")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mb.Send(i)
			mb.Recv()
		}
		b.StopTimer()
	})
}
