// Package vtime provides the execution substrate for the MPICH-V2
// reproduction: a deterministic discrete-event virtual-time scheduler
// (Sim) and a wall-clock runtime (Real) behind a common Runtime
// interface.
//
// The simulator uses a token-passing model: exactly one actor goroutine
// executes at any moment. When the running actor blocks (Sleep, Mailbox
// Recv, ...), it hands the token to the next ready actor, advancing the
// virtual clock through the pending event heap when nobody is ready.
// Ties are broken by a monotonically increasing sequence number, so a
// given program produces the same schedule on every run. This gives us
// reproducible timing experiments and reproducible fault injection while
// running the real protocol code, which is the substitution this
// repository makes for the paper's physical cluster (see DESIGN.md §2).
package vtime

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Clock is the time source seen by protocol code. Virtual in Sim runs,
// wall-clock in Real runs.
type Clock interface {
	// Now reports the time elapsed since the runtime started.
	Now() time.Duration
	// Sleep pauses the calling actor for d.
	Sleep(d time.Duration)
}

// Runtime is what system components need to spawn concurrent activities
// and observe time. *Sim and *Real both implement it.
type Runtime interface {
	Clock
	// Go starts fn as a new actor. The name is used in diagnostics.
	Go(name string, fn func())
}

// errStopped is panicked out of blocked actors when the simulation shuts
// down; the actor wrapper recovers it.
type errStopped struct{}

// actorInfo identifies an actor for diagnostics.
type actorInfo struct {
	name string
}

// waiter represents one parked blocking operation.
type waiter struct {
	actor    *actorInfo
	reason   string
	ch       chan struct{}
	ready    bool // queued on readyQ (or granted)
	granted  bool // ch has been closed
	stop     bool // woken by Stop; blocked call must panic errStopped
	timedOut bool // woken by a timeout event
	seq      uint64
}

// event is a scheduled callback on the virtual timeline.
type event struct {
	at  time.Duration
	seq uint64
	fn  func() // runs with sim lock held; must not block
}

// Less orders events by (at, seq): virtual deadline first, scheduling
// order as the deterministic tie-break.
func (e *event) Less(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Sim is a deterministic discrete-event scheduler. Create with NewSim,
// drive with Run. All actors must block only through Sim primitives
// (Sleep, Mailbox operations); ordinary channel operations would stall
// the virtual clock.
type Sim struct {
	mu      sync.Mutex
	now     time.Duration
	seq     uint64
	events  heap4[*event]
	readyQ  []*waiter
	blocked map[*waiter]struct{}
	current *actorInfo
	stopped bool
	nactors int
	wg      sync.WaitGroup
}

// NewSim returns a simulator with the clock at zero.
func NewSim() *Sim {
	return &Sim{blocked: make(map[*waiter]struct{})}
}

// Now reports the current virtual time.
func (s *Sim) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

func (s *Sim) nextSeq() uint64 {
	s.seq++
	return s.seq
}

// schedule registers fn to run at virtual time at. Lock must be held.
func (s *Sim) schedule(at time.Duration, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.events.Push(&event{at: at, seq: s.nextSeq(), fn: fn})
}

// Schedule registers fn to run at virtual time at (clamped to now). The
// callback runs inside the scheduler with the simulator lock held: it
// must be quick, must not block, and may only touch simulator state via
// *Locked helpers (it is intended for transport implementations).
func (s *Sim) Schedule(at time.Duration, fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	s.schedule(at, fn)
}

// wake marks w runnable. Lock must be held.
func (s *Sim) wake(w *waiter) {
	if w.ready || w.granted {
		return
	}
	w.ready = true
	s.readyQ = append(s.readyQ, w)
}

// dispatch hands the token to the next runnable actor, advancing virtual
// time through the event heap as needed. Lock must be held. On return,
// either one waiter has been granted the token, or there was nothing to
// run (s.current == nil).
func (s *Sim) dispatch() {
	for {
		if len(s.readyQ) > 0 {
			w := s.readyQ[0]
			s.readyQ = s.readyQ[1:]
			w.granted = true
			s.current = w.actor
			close(w.ch)
			return
		}
		if s.events.Len() > 0 {
			ev := s.events.Pop()
			if ev.at > s.now {
				s.now = ev.at
			}
			ev.fn()
			continue
		}
		s.current = nil
		return
	}
}

// park blocks the calling actor on w until some other activity wakes it.
// Lock must be held on entry and is held again on return. Panics with a
// deadlock report if nothing can ever wake w, and with errStopped if the
// simulation is shut down while parked.
func (s *Sim) park(w *waiter) {
	s.blocked[w] = struct{}{}
	s.dispatch()
	if s.current == nil && !w.granted {
		msg := s.deadlockReport(w)
		s.mu.Unlock()
		panic(msg)
	}
	s.mu.Unlock()
	<-w.ch
	s.mu.Lock()
	delete(s.blocked, w)
	s.current = w.actor
	if w.stop {
		s.mu.Unlock()
		panic(errStopped{})
	}
}

func (s *Sim) deadlockReport(self *waiter) string {
	var b strings.Builder
	fmt.Fprintf(&b, "vtime: deadlock at %v: all %d actors blocked and no pending events\n", s.now, s.nactors)
	var lines []string
	for w := range s.blocked {
		lines = append(lines, fmt.Sprintf("  actor %q blocked on %s", w.actor.name, w.reason))
	}
	lines = append(lines, fmt.Sprintf("  actor %q blocked on %s (caller)", self.actor.name, self.reason))
	sort.Strings(lines)
	b.WriteString(strings.Join(lines, "\n"))
	return b.String()
}

// Sleep pauses the calling actor for d of virtual time.
func (s *Sim) Sleep(d time.Duration) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		panic(errStopped{})
	}
	w := &waiter{actor: s.current, reason: fmt.Sprintf("sleep(%v)", d), ch: make(chan struct{}), seq: s.nextSeq()}
	s.schedule(s.now+d, func() { s.wake(w) })
	s.park(w)
	s.mu.Unlock()
}

// Go starts fn as a new actor. It becomes runnable at the current
// virtual time, after already-ready actors.
func (s *Sim) Go(name string, fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	a := &actorInfo{name: name}
	s.nactors++
	w := &waiter{actor: a, reason: "start", ch: make(chan struct{}), seq: s.nextSeq()}
	s.wake(w)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(errStopped); ok {
					return
				}
				panic(r)
			}
		}()
		<-w.ch
		s.mu.Lock()
		s.current = a
		if w.stop {
			s.mu.Unlock()
			panic(errStopped{})
		}
		s.mu.Unlock()
		fn()
		s.exit()
	}()
}

// exit is called by an actor goroutine when its function returns; it
// passes the token on.
func (s *Sim) exit() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nactors--
	s.dispatch()
}

// Run executes fn as the root actor and drives the simulation until fn
// returns, then stops all remaining actors and waits for their
// goroutines to exit. It is the entry point for a simulated system.
func (s *Sim) Run(fn func()) {
	s.mu.Lock()
	a := &actorInfo{name: "main"}
	s.nactors++
	s.current = a
	s.mu.Unlock()
	fn()
	s.mu.Lock()
	s.nactors--
	s.stopLocked()
	s.mu.Unlock()
	s.wg.Wait()
}

// Stop shuts the simulation down: every parked actor is released and
// unwinds via an internal panic that its wrapper recovers. Only the
// goroutine currently holding the token (typically the Run root after
// its function returned) may call Stop.
func (s *Sim) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopLocked()
}

func (s *Sim) stopLocked() {
	if s.stopped {
		return
	}
	s.stopped = true
	for w := range s.blocked {
		w.stop = true
		if !w.granted {
			w.granted = true
			close(w.ch)
		}
	}
	for _, w := range s.readyQ {
		w.stop = true
		if !w.granted {
			w.granted = true
			close(w.ch)
		}
	}
	s.readyQ = nil
	s.events.reset()
}

// Stopped reports whether Stop has been called.
func (s *Sim) Stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

var _ Runtime = (*Sim)(nil)
