package vtime

import (
	"fmt"
	"sync"
	"time"
)

// Mailbox is an unbounded FIFO queue usable from both runtimes. In a Sim
// it participates in the virtual-time token protocol; in a Real runtime
// it behaves like an ordinary blocking queue. Every inter-actor
// interaction in the simulated system flows through mailboxes so that
// the virtual clock can account for it.
type Mailbox[T any] struct {
	name string

	// sim mode
	sim     *Sim
	q       []T
	closed  bool
	waiters []*waiter

	// real mode
	mu   sync.Mutex
	cond *sync.Cond
}

// NewMailbox returns a mailbox bound to rt. The name appears in
// deadlock diagnostics.
func NewMailbox[T any](rt Runtime, name string) *Mailbox[T] {
	m := &Mailbox[T]{name: name}
	if s, ok := rt.(*Sim); ok {
		m.sim = s
	} else {
		m.cond = sync.NewCond(&m.mu)
	}
	return m
}

// Send enqueues v now. It reports false if the mailbox is closed.
func (m *Mailbox[T]) Send(v T) bool {
	if m.sim != nil {
		m.sim.mu.Lock()
		defer m.sim.mu.Unlock()
		return m.sendLocked(v)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.q = append(m.q, v)
	m.cond.Signal()
	return true
}

// sendLocked enqueues v with the simulator lock held (callable from
// Schedule callbacks). Returns false if closed.
func (m *Mailbox[T]) sendLocked(v T) bool {
	if m.closed {
		return false
	}
	m.q = append(m.q, v)
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.sim.wake(w)
	}
	return true
}

// SendAfter enqueues v after a delay of d. In a Sim the delivery is a
// scheduled event at now+d; in a Real runtime it uses a timer. Delivery
// into a closed mailbox is silently dropped. It is the primitive used by
// transports to model network delay.
func (m *Mailbox[T]) SendAfter(d time.Duration, v T) {
	if m.sim != nil {
		s := m.sim
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.stopped {
			return
		}
		s.schedule(s.now+d, func() { m.sendLocked(v) })
		return
	}
	if d <= 0 {
		m.Send(v)
		return
	}
	time.AfterFunc(d, func() { m.Send(v) })
}

// Recv blocks until an item is available or the mailbox is closed and
// drained; ok is false in the latter case.
func (m *Mailbox[T]) Recv() (v T, ok bool) {
	if m.sim != nil {
		s := m.sim
		s.mu.Lock()
		for {
			if s.stopped {
				s.mu.Unlock()
				panic(errStopped{})
			}
			if len(m.q) > 0 {
				v = m.q[0]
				m.q = m.q[1:]
				s.mu.Unlock()
				return v, true
			}
			if m.closed {
				s.mu.Unlock()
				return v, false
			}
			w := &waiter{actor: s.current, reason: fmt.Sprintf("recv(%s)", m.name), ch: make(chan struct{}), seq: s.nextSeq()}
			m.waiters = append(m.waiters, w)
			s.park(w) // park panics with the lock released on stop/deadlock
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.q) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.q) > 0 {
		v = m.q[0]
		m.q = m.q[1:]
		return v, true
	}
	return v, false
}

// TryRecv pops an item if one is immediately available.
func (m *Mailbox[T]) TryRecv() (v T, ok bool) {
	if m.sim != nil {
		m.sim.mu.Lock()
		defer m.sim.mu.Unlock()
		if len(m.q) > 0 {
			v = m.q[0]
			m.q = m.q[1:]
			return v, true
		}
		return v, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.q) > 0 {
		v = m.q[0]
		m.q = m.q[1:]
		return v, true
	}
	return v, false
}

// Close marks the mailbox closed. Pending items may still be received;
// blocked receivers observe ok=false once drained.
func (m *Mailbox[T]) Close() {
	if m.sim != nil {
		m.sim.mu.Lock()
		defer m.sim.mu.Unlock()
		if m.closed {
			return
		}
		m.closed = true
		for _, w := range m.waiters {
			m.sim.wake(w)
		}
		m.waiters = nil
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// Closed reports whether Close has been called.
func (m *Mailbox[T]) Closed() bool {
	if m.sim != nil {
		m.sim.mu.Lock()
		defer m.sim.mu.Unlock()
		return m.closed
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Len reports the number of queued items.
func (m *Mailbox[T]) Len() int {
	if m.sim != nil {
		m.sim.mu.Lock()
		defer m.sim.mu.Unlock()
		return len(m.q)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.q)
}
