package vtime

import (
	"bytes"
	"runtime"
	"sort"
	"testing"
	"time"
)

// xorshift is the deterministic per-lane RNG used by the workload
// generators. Lane-local by construction: each lane owns one state word.
func xorshift(s uint64) uint64 {
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	return s
}

// seedChaosWorkload posts an initial step event on every lane. Each step
// sends a few messages to pseudo-random lanes with pseudo-random delays,
// message handlers bounce a reply with decreasing hops, and every
// handler mutates only lane-local state — the contract Par requires.
func seedChaosWorkload(p *Par, seed uint64, lanes, steps int, counts []uint64) {
	rngs := make([]uint64, lanes)
	left := make([]int, lanes)
	for l := 0; l < lanes; l++ {
		rngs[l] = seed*2654435761 + uint64(l)*0x9e3779b97f4a7c15 + 1
		left[l] = steps
	}
	var bounce func(hops int) Handler
	bounce = func(hops int) Handler {
		return func(c *ParCtx) {
			l := c.Lane()
			counts[l]++
			if hops <= 0 {
				return
			}
			rngs[l] = xorshift(rngs[l])
			r := rngs[l]
			c.Post(int(r%uint64(lanes)), time.Duration(r>>32%97)*time.Microsecond, bounce(hops-1))
		}
	}
	var step Handler
	step = func(c *ParCtx) {
		l := c.Lane()
		counts[l]++
		rngs[l] = xorshift(rngs[l])
		r := rngs[l]
		for i := 0; i < int(r%3)+1; i++ {
			rngs[l] = xorshift(rngs[l])
			m := rngs[l]
			c.Post(int(m%uint64(lanes)), time.Duration(m>>32%53)*time.Microsecond, bounce(2))
		}
		left[l]--
		if left[l] > 0 {
			c.Post(l, time.Duration(r>>48%31+1)*time.Microsecond, step)
		}
	}
	for l := 0; l < lanes; l++ {
		p.Post(l, time.Duration(l%7)*time.Microsecond, step)
	}
}

// TestParEquivalence is the schedule-recording equivalence gate from
// DESIGN.md §15: for seeded chaotic workloads, the parallel core must
// produce a byte-identical (at, seq, lane) schedule to the serial core.
// Worker count may change wall-clock time only.
func TestParEquivalence(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 4
	}
	const lanes, steps = 37, 40
	for _, seed := range []uint64{1, 12345, 987654321} {
		ser := NewPar(lanes, 1)
		ser.Record(true)
		serCounts := make([]uint64, lanes)
		seedChaosWorkload(ser, seed, lanes, steps, serCounts)
		ser.Run()

		par := NewPar(lanes, workers)
		par.Record(true)
		parCounts := make([]uint64, lanes)
		seedChaosWorkload(par, seed, lanes, steps, parCounts)
		par.Run()

		if ser.Executed() == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		if ser.Executed() != par.Executed() {
			t.Fatalf("seed %d: executed %d serial vs %d parallel", seed, ser.Executed(), par.Executed())
		}
		if !bytes.Equal(ser.Schedule(), par.Schedule()) {
			t.Fatalf("seed %d: schedules differ (serial %d bytes, parallel %d bytes)", seed, len(ser.Schedule()), len(par.Schedule()))
		}
		if ser.ScheduleHash() != par.ScheduleHash() {
			t.Fatalf("seed %d: schedule hashes differ", seed)
		}
		for l := range serCounts {
			if serCounts[l] != parCounts[l] {
				t.Fatalf("seed %d lane %d: count %d serial vs %d parallel", seed, l, serCounts[l], parCounts[l])
			}
		}
		if ser.Now() != par.Now() {
			t.Fatalf("seed %d: final time %v serial vs %v parallel", seed, ser.Now(), par.Now())
		}
	}
}

// TestParLaneOrder checks the two ordering guarantees handlers rely on:
// events on one lane run in (at, seq) order, and a zero-delay Post lands
// in a later epoch at the same instant.
func TestParLaneOrder(t *testing.T) {
	p := NewPar(2, 2)
	var got []int
	p.Post(0, 2*time.Microsecond, func(c *ParCtx) { got = append(got, 2) })
	p.Post(0, time.Microsecond, func(c *ParCtx) {
		got = append(got, 1)
		c.Post(0, 0, func(c *ParCtx) {
			if c.Now() != time.Microsecond {
				t.Errorf("zero-delay post at %v, want 1µs", c.Now())
			}
			got = append(got, 10)
		})
	})
	p.Run()
	want := []int{1, 10, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

// TestHeap4Order drains pseudo-random events and checks the pop sequence
// matches a reference sort by (at, seq).
func TestHeap4Order(t *testing.T) {
	var h heap4[*event]
	r := uint64(42)
	var ref []*event
	for i := 0; i < 2000; i++ {
		r = xorshift(r)
		ev := &event{at: time.Duration(r % 127), seq: uint64(i)}
		ref = append(ref, ev)
		h.Push(ev)
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i].Less(ref[j]) })
	for i, want := range ref {
		if got := h.Pop(); got != want {
			t.Fatalf("pop %d: got (%v,%d) want (%v,%d)", i, got.at, got.seq, want.at, want.seq)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not drained: %d left", h.Len())
	}
}

// TestHeap4ZeroAllocs proves the satellite claim: push/pop on the event
// heap allocates nothing once the backing array has grown.
func TestHeap4ZeroAllocs(t *testing.T) {
	var h heap4[*event]
	evs := make([]*event, 513)
	for i := range evs {
		evs[i] = &event{at: time.Duration(i * 31 % 257), seq: uint64(i)}
	}
	for _, ev := range evs[:512] {
		h.Push(ev)
	}
	spare := evs[512]
	seq := uint64(1000)
	allocs := testing.AllocsPerRun(1000, func() {
		seq++
		spare.at, spare.seq = time.Duration(seq%257), seq
		h.Push(spare)
		spare = h.Pop()
	})
	if allocs != 0 {
		t.Fatalf("push/pop hot path allocates %v/op, want 0", allocs)
	}
}
