package vtime

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Par is a deterministic parallel discrete-event engine. It trades the
// token-passing generality of Sim (arbitrary blocking actors) for
// throughput: events are partitioned into per-lane streams (one lane per
// simulated rank or service), and all events that share the minimal
// pending virtual time form an epoch that executes across real cores.
//
// Determinism argument (asserted by TestParEquivalence): the schedule a
// run produces is the sequence of executed (at, seq, lane) triples.
//
//  1. Epoch membership is decided before any handler runs: the engine
//     pops every pending event whose time equals the heap minimum, in
//     (at, seq) order — a pure function of prior state.
//  2. Handlers run concurrently but each lane's events run in order on
//     one worker, and a handler may only touch lane-local state plus its
//     private emission buffer (Post). Nothing a handler can observe
//     depends on how lanes interleave across cores.
//  3. At the epoch barrier the emission buffers are merged in lane
//     order, then in per-lane emission order, and global sequence
//     numbers are assigned during that merge. Worker completion order
//     never influences seq assignment.
//
// Hence the recorded schedule is byte-identical for any worker count,
// including workers=1 (the serial core): parallelism changes wall-clock
// time only. Lane counts of 1000+ are practical because the engine costs
// O(log n) heap work per event and no goroutine handoff per event,
// unlike Sim's one-token-transfer-per-block model.
type Par struct {
	lanes   int
	workers int

	now  time.Duration
	seq  uint64
	heap heap4[*parEvent]

	// emits[l] is the private emission buffer of lane l, written only by
	// the worker executing lane l during an epoch, drained single-threaded
	// at the barrier.
	emits [][]*parEvent

	executed uint64
	record   bool
	sched    []byte
	hash     uint64 // running FNV-1a over the schedule triples

	// scratch reused across epochs
	epoch     []*parEvent
	active    []int // lanes with events this epoch, in first-appearance order
	laneQ     [][]*parEvent
	laneDirty []bool

	running bool
}

// Handler is a lane event callback. It runs with no engine lock: it may
// touch only state owned by its lane and the ParCtx it is given.
type Handler func(*ParCtx)

// parEvent is one scheduled lane callback. seq is assigned when the
// event enters the heap (at post or at the merge barrier), never during
// parallel execution.
type parEvent struct {
	at   time.Duration
	seq  uint64
	lane int
	fn   Handler
}

// Less orders events by (at, seq), mirroring Sim's event ordering.
func (e *parEvent) Less(o *parEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// ParCtx is the view a handler gets of the engine: the clock, its own
// lane, and the only legal side-channel — posting future events.
type ParCtx struct {
	p    *Par
	lane int
	at   time.Duration
}

// Lane reports the lane this handler runs on.
func (c *ParCtx) Lane() int { return c.lane }

// Now reports the virtual time of the current epoch.
func (c *ParCtx) Now() time.Duration { return c.at }

// Post schedules fn on lane after delay (clamped to 0) of virtual time.
// A zero delay lands in a later epoch at the same virtual instant, so a
// handler never races its own emissions.
func (c *ParCtx) Post(lane int, delay time.Duration, fn Handler) {
	if delay < 0 {
		delay = 0
	}
	if lane < 0 || lane >= c.p.lanes {
		panic(fmt.Sprintf("vtime: Post to lane %d of %d", lane, c.p.lanes))
	}
	c.p.emits[c.lane] = append(c.p.emits[c.lane], &parEvent{at: c.at + delay, lane: lane, fn: fn})
}

// NewPar returns an engine with the given lane count. workers <= 0 means
// GOMAXPROCS; workers == 1 is the serial reference core.
func NewPar(lanes, workers int) *Par {
	if lanes <= 0 {
		panic("vtime: NewPar needs at least one lane")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Par{
		lanes:     lanes,
		workers:   workers,
		emits:     make([][]*parEvent, lanes),
		laneQ:     make([][]*parEvent, lanes),
		laneDirty: make([]bool, lanes),
		hash:      1469598103934665603, // FNV-1a offset basis
	}
}

// Record enables schedule recording: every executed (at, seq, lane)
// triple is appended to the byte log returned by Schedule. The running
// ScheduleHash is maintained regardless.
func (p *Par) Record(on bool) { p.record = on }

// Post seeds an event before Run. Events posted here receive their
// sequence numbers in call order, so seeding is part of the
// deterministic input.
func (p *Par) Post(lane int, at time.Duration, fn Handler) {
	if p.running {
		panic("vtime: Par.Post during Run; use ParCtx.Post from handlers")
	}
	if lane < 0 || lane >= p.lanes {
		panic(fmt.Sprintf("vtime: Post to lane %d of %d", lane, p.lanes))
	}
	if at < 0 {
		at = 0
	}
	p.seq++
	p.heap.Push(&parEvent{at: at, seq: p.seq, lane: lane, fn: fn})
}

// Run drains the event heap epoch by epoch and returns when no events
// remain. The final virtual time is available via Now.
func (p *Par) Run() {
	p.running = true
	for p.heap.Len() > 0 {
		p.runEpoch()
	}
	p.running = false
}

func (p *Par) runEpoch() {
	t := p.heap.Min().at
	if t > p.now {
		p.now = t
	}

	// Collect the epoch: every pending event at exactly t, in (at, seq)
	// order. Partition into per-lane queues preserving that order.
	p.epoch = p.epoch[:0]
	p.active = p.active[:0]
	for p.heap.Len() > 0 && p.heap.Min().at == t {
		ev := p.heap.Pop()
		p.epoch = append(p.epoch, ev)
		if !p.laneDirty[ev.lane] {
			p.laneDirty[ev.lane] = true
			p.active = append(p.active, ev.lane)
		}
		p.laneQ[ev.lane] = append(p.laneQ[ev.lane], ev)
	}

	// Record before executing: the schedule is fixed the moment the
	// epoch is popped, whatever the workers do with it.
	p.executed += uint64(len(p.epoch))
	for _, ev := range p.epoch {
		p.note(ev)
	}

	// Execute: each active lane's events run in order on one worker.
	if p.workers == 1 || len(p.active) == 1 {
		ctx := ParCtx{p: p, at: t}
		for _, lane := range p.active {
			ctx.lane = lane
			for _, ev := range p.laneQ[lane] {
				ev.fn(&ctx)
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		nw := p.workers
		if nw > len(p.active) {
			nw = len(p.active)
		}
		wg.Add(nw)
		for w := 0; w < nw; w++ {
			go func() {
				defer wg.Done()
				ctx := ParCtx{p: p, at: t}
				for {
					i := int(next.Add(1)) - 1
					if i >= len(p.active) {
						return
					}
					lane := p.active[i]
					ctx.lane = lane
					for _, ev := range p.laneQ[lane] {
						ev.fn(&ctx)
					}
				}
			}()
		}
		wg.Wait()
	}

	// Barrier merge: drain emission buffers in lane order, then emission
	// order, assigning global seqs. This ordering — not worker completion
	// order — is what makes the next epoch's pop order deterministic.
	for _, lane := range p.active {
		p.laneDirty[lane] = false
		q := p.laneQ[lane]
		for i := range q {
			q[i] = nil
		}
		p.laneQ[lane] = q[:0]
	}
	for lane := 0; lane < p.lanes; lane++ {
		buf := p.emits[lane]
		if len(buf) == 0 {
			continue
		}
		for i, ev := range buf {
			p.seq++
			ev.seq = p.seq
			p.heap.Push(ev)
			buf[i] = nil
		}
		p.emits[lane] = buf[:0]
	}
}

// note folds one executed event into the schedule hash and, when
// recording, the byte log.
func (p *Par) note(ev *parEvent) {
	var b [20]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(ev.at))
	binary.LittleEndian.PutUint64(b[8:], ev.seq)
	binary.LittleEndian.PutUint32(b[16:], uint32(ev.lane))
	h := p.hash
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	p.hash = h
	if p.record {
		p.sched = append(p.sched, b[:]...)
	}
}

// Now reports the current virtual time.
func (p *Par) Now() time.Duration { return p.now }

// Executed reports how many events have run.
func (p *Par) Executed() uint64 { return p.executed }

// Lanes reports the lane count.
func (p *Par) Lanes() int { return p.lanes }

// Schedule returns the recorded schedule bytes (empty unless Record(true)
// was set before Run): 20 bytes per executed event, little-endian
// (at:8, seq:8, lane:4), in execution order.
func (p *Par) Schedule() []byte { return p.sched }

// ScheduleHash returns the FNV-1a hash of the schedule triples executed
// so far. Equal hashes across worker counts certify an identical
// schedule without retaining the byte log.
func (p *Par) ScheduleHash() uint64 { return p.hash }
