package vtime

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSimSleepAdvancesClock(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		if s.Now() != 0 {
			t.Errorf("initial Now() = %v, want 0", s.Now())
		}
		s.Sleep(10 * time.Millisecond)
		if got := s.Now(); got != 10*time.Millisecond {
			t.Errorf("Now() after sleep = %v, want 10ms", got)
		}
		s.Sleep(0)
		if got := s.Now(); got != 10*time.Millisecond {
			t.Errorf("Now() after zero sleep = %v, want 10ms", got)
		}
	})
}

func TestSimSleepOrdering(t *testing.T) {
	s := NewSim()
	var order []string
	s.Run(func() {
		done := NewMailbox[string](s, "done")
		s.Go("slow", func() {
			s.Sleep(20 * time.Millisecond)
			done.Send("slow")
		})
		s.Go("fast", func() {
			s.Sleep(5 * time.Millisecond)
			done.Send("fast")
		})
		for i := 0; i < 2; i++ {
			v, ok := done.Recv()
			if !ok {
				t.Fatal("mailbox closed early")
			}
			order = append(order, v)
		}
	})
	if order[0] != "fast" || order[1] != "slow" {
		t.Errorf("wake order = %v, want [fast slow]", order)
	}
}

func TestSimVirtualTimeIsFast(t *testing.T) {
	s := NewSim()
	start := time.Now()
	s.Run(func() {
		s.Sleep(1000 * time.Hour) // a virtual year of idling costs nothing
	})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("simulating 1000h took %v of wall time", elapsed)
	}
	if s.Now() != 1000*time.Hour {
		t.Errorf("Now() = %v, want 1000h", s.Now())
	}
}

func TestMailboxFIFO(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		mb := NewMailbox[int](s, "fifo")
		for i := 0; i < 100; i++ {
			mb.Send(i)
		}
		for i := 0; i < 100; i++ {
			v, ok := mb.Recv()
			if !ok || v != i {
				t.Fatalf("Recv #%d = (%d,%v), want (%d,true)", i, v, ok, i)
			}
		}
		if _, ok := mb.TryRecv(); ok {
			t.Error("TryRecv on empty mailbox reported ok")
		}
	})
}

func TestMailboxSendAfterDeliversInTimeOrder(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		mb := NewMailbox[int](s, "timed")
		mb.SendAfter(30*time.Millisecond, 3)
		mb.SendAfter(10*time.Millisecond, 1)
		mb.SendAfter(20*time.Millisecond, 2)
		for want := 1; want <= 3; want++ {
			v, ok := mb.Recv()
			if !ok || v != want {
				t.Fatalf("Recv = (%d,%v), want (%d,true)", v, ok, want)
			}
			if got, wantT := s.Now(), time.Duration(want)*10*time.Millisecond; got != wantT {
				t.Errorf("delivery %d at %v, want %v", want, got, wantT)
			}
		}
	})
}

func TestMailboxCloseWakesReceiver(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		mb := NewMailbox[int](s, "closing")
		s.Go("closer", func() {
			s.Sleep(time.Millisecond)
			mb.Close()
		})
		if _, ok := mb.Recv(); ok {
			t.Error("Recv on closed mailbox reported ok")
		}
		if !mb.Closed() {
			t.Error("Closed() = false after Close")
		}
	})
}

func TestMailboxSendToClosedDropped(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		mb := NewMailbox[int](s, "dead")
		mb.Close()
		if mb.Send(1) {
			t.Error("Send to closed mailbox reported true")
		}
		mb.SendAfter(time.Millisecond, 2)
		s.Sleep(2 * time.Millisecond)
		if mb.Len() != 0 {
			t.Errorf("Len = %d after sends to closed mailbox, want 0", mb.Len())
		}
	})
}

func TestSimDeterminism(t *testing.T) {
	// Two identical runs with many interleaved actors must produce the
	// same event trace with the same virtual timestamps.
	run := func() []string {
		s := NewSim()
		var trace []string
		s.Run(func() {
			out := NewMailbox[string](s, "out")
			for i := 0; i < 8; i++ {
				i := i
				s.Go("worker", func() {
					for j := 0; j < 5; j++ {
						s.Sleep(time.Duration(1+(i*7+j*3)%11) * time.Millisecond)
						out.Send(string(rune('a'+i)) + string(rune('0'+j)))
					}
				})
			}
			for k := 0; k < 40; k++ {
				v, _ := out.Recv()
				trace = append(trace, v+"@"+s.Now().String())
			}
		})
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSimDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "deadlock") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	s := NewSim()
	s.Run(func() {
		mb := NewMailbox[int](s, "never")
		mb.Recv() // nothing will ever send
	})
}

func TestSimStopReleasesActors(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		mb := NewMailbox[int](s, "forever")
		for i := 0; i < 5; i++ {
			s.Go("server", func() {
				for {
					if _, ok := mb.Recv(); !ok {
						return
					}
				}
			})
		}
		s.Sleep(time.Millisecond) // let servers park
	})
	// Run returns only after all goroutines exit; reaching here is the test.
}

func TestSimScheduleCallback(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		mb := NewMailbox[int](s, "cb")
		s.Schedule(5*time.Millisecond, func() { mb.sendLocked(42) })
		v, ok := mb.Recv()
		if !ok || v != 42 {
			t.Fatalf("Recv = (%d,%v), want (42,true)", v, ok)
		}
		if s.Now() != 5*time.Millisecond {
			t.Errorf("Now() = %v, want 5ms", s.Now())
		}
	})
}

func TestRealRuntimeMailbox(t *testing.T) {
	r := NewReal()
	mb := NewMailbox[int](r, "real")
	var got []int
	var mu sync.Mutex
	r.Go("producer", func() {
		for i := 0; i < 10; i++ {
			mb.Send(i)
		}
		mb.Close()
	})
	r.Go("consumer", func() {
		for {
			v, ok := mb.Recv()
			if !ok {
				return
			}
			mu.Lock()
			got = append(got, v)
			mu.Unlock()
		}
	})
	r.Wait()
	if len(got) != 10 {
		t.Fatalf("received %d items, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Errorf("got[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestRealSendAfter(t *testing.T) {
	r := NewReal()
	mb := NewMailbox[int](r, "real-timed")
	mb.SendAfter(5*time.Millisecond, 7)
	v, ok := mb.Recv()
	if !ok || v != 7 {
		t.Fatalf("Recv = (%d,%v), want (7,true)", v, ok)
	}
}

// Property: for any set of delays, mailbox deliveries arrive in
// nondecreasing time order matching the sorted delays.
func TestPropertySendAfterOrdering(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 || len(delaysRaw) > 64 {
			return true
		}
		s := NewSim()
		ok := true
		s.Run(func() {
			mb := NewMailbox[time.Duration](s, "prop")
			for _, d := range delaysRaw {
				dd := time.Duration(d) * time.Microsecond
				mb.SendAfter(dd, dd)
			}
			last := time.Duration(-1)
			for range delaysRaw {
				v, rok := mb.Recv()
				if !rok || v < last {
					ok = false
					return
				}
				last = v
				if s.Now() != v {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: clock never goes backwards across arbitrary sleep sequences
// by concurrent actors.
func TestPropertyClockMonotonic(t *testing.T) {
	f := func(sleeps []uint8) bool {
		if len(sleeps) > 32 {
			sleeps = sleeps[:32]
		}
		s := NewSim()
		monotonic := true
		s.Run(func() {
			done := NewMailbox[struct{}](s, "done")
			var last time.Duration
			for _, ms := range sleeps {
				ms := ms
				s.Go("sleeper", func() {
					s.Sleep(time.Duration(ms) * time.Millisecond)
					if now := s.Now(); now < last {
						monotonic = false
					} else {
						last = now
					}
					done.Send(struct{}{})
				})
			}
			for range sleeps {
				done.Recv()
			}
		})
		return monotonic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
