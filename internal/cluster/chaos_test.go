package cluster

import (
	"encoding/binary"
	"testing"
	"time"

	"mpichv/internal/core"
	"mpichv/internal/dispatcher"
	"mpichv/internal/mpi"
	"mpichv/internal/nas"
	"mpichv/internal/transport"
)

// recordingRing is ringProgram plus a per-rank record of every token
// value received, so delivery sequences can be compared across runs. A
// killed rank re-executes from scratch (or from replay), resetting its
// record — the surviving record is the one the last incarnation
// observed end to end.
func recordingRing(rounds int, finals []uint64, seqs [][]uint64) Program {
	return func(p *mpi.Proc) {
		n := p.Size()
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		seqs[p.Rank()] = nil
		var token uint64
		buf := make([]byte, 8)
		for r := 0; r < rounds; r++ {
			if p.Rank() == 0 {
				binary.BigEndian.PutUint64(buf, token+1)
				p.Send(right, 1, buf)
				b, _ := p.Recv(left, 1)
				token = binary.BigEndian.Uint64(b)
			} else {
				b, _ := p.Recv(left, 1)
				token = binary.BigEndian.Uint64(b) + 1
				binary.BigEndian.PutUint64(buf, token)
				p.Send(right, 1, buf)
			}
			seqs[p.Rank()] = append(seqs[p.Rank()], token)
		}
		finals[p.Rank()] = token
	}
}

// chaosRing runs the recording ring under the given config and returns
// finals and per-rank token sequences.
func chaosRing(cfg Config, rounds int) (Result, []uint64, [][]uint64) {
	finals := make([]uint64, cfg.N)
	seqs := make([][]uint64, cfg.N)
	res := Run(cfg, recordingRing(rounds, finals, seqs))
	return res, finals, seqs
}

// TestChaosTokenRingProperty is the seeded property test of the chaos
// machinery: for each seed, an 8-node token ring runs under a generated
// schedule of drops, duplications, jitter and a timed partition, plus
// Poisson-random node kills — and must converge to exactly the
// delivery sequence of the fault-free run.
func TestChaosTokenRingProperty(t *testing.T) {
	const n, rounds = 8, 20
	_, wantFinals, wantSeqs := chaosRing(Config{Impl: V2, N: n}, rounds)

	for _, seed := range []uint64{1, 42, 20030817} {
		// Derive per-seed rates deterministically (splitmix-ish): every
		// seed exercises a different mix of loss, duplication and
		// reordering.
		x := (seed + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
		u := func() float64 {
			x = x*6364136223846793005 + 1442695040888963407
			return float64(x>>11) / float64(1<<53)
		}
		// Partition a ring edge — only neighbours exchange frames, so
		// a random pair would rarely cut anything.
		pa := int(u() * n)
		pol := transport.ChaosPolicy{
			Seed:      seed,
			Drop:      0.005 + 0.02*u(),
			Duplicate: 0.02 * u(),
			Delay:     0.05 * u(),
			MaxDelay:  500 * time.Microsecond,
			Partitions: []transport.Partition{{
				A:     pa,
				B:     (pa + 1) % n,
				From:  time.Duration(5+10*u()) * time.Millisecond,
				Until: time.Duration(25+20*u()) * time.Millisecond,
			}},
		}
		faults := dispatcher.RandomFaults(seed, 8, 150*time.Millisecond, ranks(n))

		res, finals, seqs := chaosRing(Config{
			Impl: V2, N: n,
			Chaos:          pol,
			Faults:         faults,
			DetectionDelay: 2 * time.Millisecond,
			Trace:          true,
		}, rounds)

		if res.ChaosDropped+res.ChaosPartitioned == 0 {
			t.Errorf("seed %d: chaos injected nothing (dropped=%d partitioned=%d)",
				seed, res.ChaosDropped, res.ChaosPartitioned)
		}
		for r := 0; r < n; r++ {
			if finals[r] != wantFinals[r] {
				t.Errorf("seed %d: rank %d final token = %d, want %d (kills=%d)",
					seed, r, finals[r], wantFinals[r], res.Kills)
			}
			if len(seqs[r]) != len(wantSeqs[r]) {
				t.Errorf("seed %d: rank %d saw %d tokens, want %d", seed, r, len(seqs[r]), len(wantSeqs[r]))
				continue
			}
			for i := range seqs[r] {
				if seqs[r][i] != wantSeqs[r][i] {
					t.Errorf("seed %d: rank %d delivery %d = %d, want %d", seed, r, i, seqs[r][i], wantSeqs[r][i])
					break
				}
			}
		}
		if hb := AuditTrace(res); !hb.OK() {
			t.Errorf("seed %d: %s", seed, hb.Summary())
		}
		t.Logf("seed %d: kills=%d dropped=%d dup=%d delayed=%d part=%d retrans=%d pulls=%d",
			seed, res.Kills, res.ChaosDropped, res.ChaosDuplicated, res.ChaosDelayed,
			res.ChaosPartitioned, res.Retransmits, res.Pulls)
	}
}

func TestChaosRunsAreDeterministic(t *testing.T) {
	cfg := Config{
		Impl: V2, N: 4,
		Chaos:          transport.ChaosPolicy{Seed: 5, Drop: 0.02, Duplicate: 0.01, Delay: 0.05},
		Faults:         []dispatcher.Fault{{Time: 5 * time.Millisecond, Rank: 2}},
		DetectionDelay: 2 * time.Millisecond,
	}
	r1, f1, _ := chaosRing(cfg, 15)
	r2, f2, _ := chaosRing(cfg, 15)
	if r1.Elapsed != r2.Elapsed || f1[0] != f2[0] || r1.ChaosDropped != r2.ChaosDropped {
		t.Errorf("same seed diverged: (%v,%d,%d) vs (%v,%d,%d)",
			r1.Elapsed, f1[0], r1.ChaosDropped, r2.Elapsed, f2[0], r2.ChaosDropped)
	}
}

func TestChaosCrashDuringCheckpoint(t *testing.T) {
	// Kills land while checkpoint images are in flight on a lossy
	// fabric: save retransmission, the checkpoint store's monotonicity
	// guard, and restart from a partially acknowledged history must all
	// compose.
	const n, iters = 4, 50
	finals := make([]float64, n)
	var faults []dispatcher.Fault
	for i := 0; i < 4; i++ {
		faults = append(faults, dispatcher.Fault{
			Time: time.Duration(9+8*i) * time.Millisecond,
			Rank: i % n,
		})
	}
	res := Run(Config{
		Impl: V2, N: n,
		Checkpointing:  true,
		SchedPeriod:    time.Millisecond, // checkpoint constantly
		DetectionDelay: 3 * time.Millisecond,
		Chaos:          transport.ChaosPolicy{Seed: 11, Drop: 0.01, Delay: 0.03, MaxDelay: 300 * time.Microsecond},
		Faults:         faults,
		Trace:          true,
	}, ckptProgram(iters, finals))
	if res.Restarts != len(faults) {
		t.Fatalf("restarts = %d, want %d", res.Restarts, len(faults))
	}
	if res.CkptSaves == 0 {
		t.Error("no checkpoints survived the chaos")
	}
	want := ckptExpect(n, iters)
	for r, v := range finals {
		if v != want {
			t.Errorf("rank %d acc = %v, want %v", r, v, want)
		}
	}
	if hb := AuditTrace(res); !hb.OK() {
		t.Errorf("%s", hb.Summary())
	}
}

func TestChaosCrashDuringReplay(t *testing.T) {
	// The second fault lands while the rank is replaying from its first
	// crash, and the fabric is dropping frames throughout — including,
	// possibly, the RESTART messages themselves, which the recovery
	// retry machinery must re-send.
	const n, rounds = 4, 30
	finals := make([]uint64, n)
	res := Run(Config{
		Impl: V2, N: n,
		DetectionDelay: 2 * time.Millisecond,
		Chaos:          transport.ChaosPolicy{Seed: 3, Drop: 0.02, Duplicate: 0.01},
		Faults: []dispatcher.Fault{
			{Time: 5 * time.Millisecond, Rank: 2},
			{Time: 9 * time.Millisecond, Rank: 2}, // during recovery/replay
		},
		Trace: true,
	}, ringProgram(rounds, finals))
	if res.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2", res.Restarts)
	}
	if finals[0] != ringExpect(n, rounds) {
		t.Errorf("token = %d, want %d", finals[0], ringExpect(n, rounds))
	}
	if hb := AuditTrace(res); !hb.OK() {
		t.Errorf("%s", hb.Summary())
	}
}

func TestEventLoggerFailover(t *testing.T) {
	// The primary event logger of half the ranks dies permanently; the
	// daemons' ack timeouts must re-home them to the surviving logger
	// (which shares the stable store) without losing an event.
	const n, rounds = 4, 25
	finals := make([]uint64, n)
	res := Run(Config{
		Impl: V2, N: n,
		EventLoggers:   2,
		DetectionDelay: 2 * time.Millisecond,
		Faults:         []dispatcher.Fault{{Time: 3 * time.Millisecond, Rank: ELBase, Permanent: true}},
		Trace:          true,
	}, ringProgram(rounds, finals))
	if res.ServiceKills != 1 {
		t.Fatalf("service kills = %d, want 1", res.ServiceKills)
	}
	if res.ServiceRestarts != 0 {
		t.Fatalf("service restarts = %d, want 0 for a permanent fault", res.ServiceRestarts)
	}
	if res.Failovers == 0 {
		t.Error("no daemon failed over to the backup event logger")
	}
	if finals[0] != ringExpect(n, rounds) {
		t.Errorf("token = %d, want %d", finals[0], ringExpect(n, rounds))
	}
	if hb := AuditTrace(res); !hb.OK() {
		t.Errorf("%s", hb.Summary())
	}
	t.Logf("failovers=%d retransmits=%d logged=%d", res.Failovers, res.Retransmits, res.ELLogged)
}

func TestEventLoggerRespawn(t *testing.T) {
	// A transient event-logger crash: the dispatcher respawns the
	// frontend over the shared store, daemons retransmit their batches
	// into the outage, and a later compute-node crash must still be
	// able to fetch its full event history.
	const n, rounds = 4, 30
	finals := make([]uint64, n)
	res := Run(Config{
		Impl: V2, N: n,
		DetectionDelay: 2 * time.Millisecond,
		// The EL outage stalls the ring on one rank's unacknowledged
		// event; the compute kill targets a different rank so the
		// retransmit stays visible in the (last-incarnation) stats.
		Faults: []dispatcher.Fault{
			{Time: 3 * time.Millisecond, Rank: ELNode},
			{Time: 12 * time.Millisecond, Rank: 3},
		},
		Trace: true,
	}, ringProgram(rounds, finals))
	if res.ServiceKills != 1 || res.ServiceRestarts != 1 {
		t.Fatalf("service kills/restarts = %d/%d, want 1/1", res.ServiceKills, res.ServiceRestarts)
	}
	if res.Restarts != 1 {
		t.Fatalf("compute restarts = %d, want 1", res.Restarts)
	}
	if res.Retransmits == 0 {
		t.Error("no retransmissions were needed to bridge the outage")
	}
	if finals[0] != ringExpect(n, rounds) {
		t.Errorf("token = %d, want %d", finals[0], ringExpect(n, rounds))
	}
	if hb := AuditTrace(res); !hb.OK() {
		t.Errorf("%s", hb.Summary())
	}
}

func TestCheckpointServerRespawn(t *testing.T) {
	// Same for the checkpoint server: saves retransmit into the outage
	// and the respawned frontend keeps serving the stored images.
	const n, iters = 4, 50
	finals := make([]float64, n)
	res := Run(Config{
		Impl: V2, N: n,
		Checkpointing:  true,
		SchedPeriod:    2 * time.Millisecond,
		DetectionDelay: 3 * time.Millisecond,
		Faults: []dispatcher.Fault{
			{Time: 10 * time.Millisecond, Rank: CSNode},
			{Time: 30 * time.Millisecond, Rank: 2},
		},
		Trace: true,
	}, ckptProgram(iters, finals))
	if res.ServiceKills != 1 || res.ServiceRestarts != 1 {
		t.Fatalf("service kills/restarts = %d/%d, want 1/1", res.ServiceKills, res.ServiceRestarts)
	}
	if res.CkptSaves == 0 {
		t.Error("no checkpoints stored")
	}
	want := ckptExpect(n, iters)
	for r, v := range finals {
		if v != want {
			t.Errorf("rank %d acc = %v, want %v", r, v, want)
		}
	}
	if hb := AuditTrace(res); !hb.OK() {
		t.Errorf("%s", hb.Summary())
	}
}

// TestChaosBTAcceptance is the integration acceptance scenario: a BT.A
// run with continuous checkpointing on a fabric dropping over 1% of
// frames, during which the primary event logger is killed for good and
// a compute node is killed twice — the second time mid-replay. The run
// must complete with verified numerics and the same per-process
// delivery sequence as the fault-free run.
func TestChaosBTAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("BT chaos acceptance is slow in short mode")
	}
	const n = 4
	bm := nas.BT("A")
	run := func(cfg Config) ([]nas.Result, Result) {
		results := make([]nas.Result, n)
		res := Run(cfg, func(p *mpi.Proc) {
			results[p.Rank()] = bm.Run(p, bm)
		})
		return results, res
	}

	clean, cleanRes := run(Config{Impl: V2, N: n})

	faulty, res := run(Config{
		Impl: V2, N: n,
		Checkpointing:  true,
		SchedPeriod:    5 * time.Millisecond,
		EventLoggers:   2,
		DetectionDelay: 3 * time.Millisecond,
		Chaos: transport.ChaosPolicy{
			Seed:      2003,
			Drop:      0.015,
			Duplicate: 0.005,
			Delay:     0.02,
			MaxDelay:  300 * time.Microsecond,
		},
		Faults: []dispatcher.Fault{
			{Time: 60 * time.Millisecond, Rank: ELBase, Permanent: true},
			{Time: 100 * time.Millisecond, Rank: 2},
			{Time: 106 * time.Millisecond, Rank: 2}, // lands mid-replay
		},
		Trace:    true,
		TraceCap: 1 << 18, // BT.A is chatty; keep the audit total
	})

	for r := 0; r < n; r++ {
		if !clean[r].Verified {
			t.Fatalf("fault-free BT.A rank %d did not verify", r)
		}
		if !faulty[r].Verified {
			t.Errorf("chaotic BT.A rank %d did not verify (value %v)", r, faulty[r].Value)
		}
		if faulty[r].Value != clean[r].Value {
			t.Errorf("rank %d value %v differs from fault-free %v", r, faulty[r].Value, clean[r].Value)
		}
	}
	if res.ServiceKills != 1 {
		t.Errorf("service kills = %d, want 1 (the primary event logger)", res.ServiceKills)
	}
	if res.Kills < 2 {
		t.Errorf("compute kills = %d, want ≥ 2", res.Kills)
	}
	attempted := res.NetMessages + res.ChaosDropped
	if res.ChaosDropped*100 < attempted {
		t.Errorf("dropped %d of %d frames, want ≥ 1%%", res.ChaosDropped, attempted)
	}
	if hb := AuditTrace(res); !hb.OK() {
		t.Errorf("%s", hb.Summary())
	} else if hb.Incomplete {
		t.Error("trace wrapped; raise TraceCap so the audit is total")
	}

	// Delivery sequences: BT's receives are directed, so each channel
	// (sender → receiver) delivers the same gap-free sequence of
	// messages in every run — chaos must not lose, duplicate or
	// reorder any of them (the identical verified numerics confirm
	// their payloads). The interleaving ACROSS senders is the genuine
	// reception nondeterminism the event logger exists to capture, and
	// legitimately differs between two independent runs, so the
	// comparison projects per channel. (The app-level interleaving
	// check lives in TestChaosTokenRingProperty, where the program
	// records what it saw.)
	compareChannels(t, n, cleanRes.Deliveries, res.Deliveries)
}

// compareChannels checks that each sender→receiver channel logged the
// same number of deliveries in both runs. Channel sequences are
// gap-free, so equal counts mean equal per-channel delivery sequences.
// Events of the last few deliveries may still be in flight when a run
// ends, hence the small tail allowance.
func compareChannels(t *testing.T, n int, want, got [][]core.Event) {
	t.Helper()
	count := func(evs []core.Event) map[int]int {
		m := make(map[int]int)
		for _, ev := range evs {
			m[ev.Sender]++
		}
		return m
	}
	for r := 0; r < n; r++ {
		a, b := count(want[r]), count(got[r])
		for s := 0; s < n; s++ {
			if d := a[s] - b[s]; d > 4 || d < -4 {
				t.Errorf("channel %d→%d delivered %d messages, fault-free delivered %d", s, r, b[s], a[s])
			}
		}
	}
}

// TestChaosCSReplicaKilledMidChunkedTransfer kills a quorum checkpoint
// replica while chunked delta images are streaming to it on a lossy
// fabric. The replica respawns EMPTY: any per-chunk acks the daemons
// still hold for it are phantom, so completion must ride only on full
// save acks — the write quorum may never count a replica that holds
// nothing. A later compute kill then restarts through the manifest
// fast path against the healed group.
func TestChaosCSReplicaKilledMidChunkedTransfer(t *testing.T) {
	const n, iters = 4, 50
	finals := make([]float64, n)
	res := Run(Config{
		Impl: V2, N: n,
		Checkpointing:  true,
		ELReplicas:     3, // implies CSReplicas=3, quorum 2
		SchedPeriod:    time.Millisecond,
		CkptChunk:      64, // force multi-chunk transfers
		DetectionDelay: 3 * time.Millisecond,
		Chaos:          transport.ChaosPolicy{Seed: 17, Drop: 0.01, Delay: 0.02, MaxDelay: 200 * time.Microsecond},
		Faults: []dispatcher.Fault{
			{Time: 10 * time.Millisecond, Rank: CSBase + 1},
			{Time: 30 * time.Millisecond, Rank: 2},
		},
		Trace: true,
	}, ckptProgram(iters, finals))

	if res.ServiceKills != 1 || res.ServiceRestarts != 1 {
		t.Fatalf("service kills/restarts = %d/%d, want 1/1", res.ServiceKills, res.ServiceRestarts)
	}
	if res.Restarts != 1 {
		t.Fatalf("compute restarts = %d, want 1", res.Restarts)
	}
	want := ckptExpect(n, iters)
	for r, v := range finals {
		if v != want {
			t.Errorf("rank %d acc = %v, want %v", r, v, want)
		}
	}
	if res.CkptSaves == 0 {
		t.Error("no checkpoints stored")
	}
	if res.DeltaCkpts == 0 {
		t.Error("steady-state checkpointing never shipped a delta")
	}
	if res.ManifestFetches == 0 {
		t.Error("restart did not take the chunked manifest fast path")
	}
	if res.BelowQuorumAcks != 0 {
		t.Errorf("%d sends escaped below the write quorum", res.BelowQuorumAcks)
	}
	if rep := Audit(res); !rep.OK() {
		t.Errorf("%s", rep.Summary())
	}
	if hb := AuditTrace(res); !hb.OK() {
		t.Errorf("%s", hb.Summary())
	}
	t.Logf("saves=%d deltas=%d shipped=%dB retrans=%d manifests=%d compactions=%d breaks=%d resyncs=%d",
		res.CkptSaves, res.DeltaCkpts, res.CkptShippedBytes, res.ChunkRetransmits,
		res.ManifestFetches, res.ChainCompactions, res.ChainBreaks, res.Resyncs)
}

// TestChaosBrokenDeltaChainFallsBackToFullImage engineers a broken
// delta chain: a checkpoint replica respawns empty into a stream of
// deltas whose bases it never saw. The store must refuse to ack those
// (ChainBreak, no phantom durability), heal through anti-entropy, and
// a compute restart afterwards must still recover from the last
// materialized full image — the chain is a shipping optimisation, never
// the durability unit.
func TestChaosBrokenDeltaChainFallsBackToFullImage(t *testing.T) {
	const n, iters = 4, 60
	finals := make([]float64, n)
	res := Run(Config{
		Impl: V2, N: n,
		Checkpointing:  true,
		ELReplicas:     3,
		SchedPeriod:    time.Millisecond, // constant deltas in flight
		CkptChunk:      48,
		DetectionDelay: 2 * time.Millisecond,
		Chaos:          transport.ChaosPolicy{Seed: 23, Drop: 0.02, Delay: 0.03, MaxDelay: 400 * time.Microsecond},
		Faults: []dispatcher.Fault{
			{Time: 8 * time.Millisecond, Rank: CSBase + 2},
			{Time: 14 * time.Millisecond, Rank: CSBase},
			{Time: 28 * time.Millisecond, Rank: 1},
		},
		Trace: true,
	}, ckptProgram(iters, finals))

	if res.ServiceKills != 2 || res.ServiceRestarts != 2 {
		t.Fatalf("service kills/restarts = %d/%d, want 2/2", res.ServiceKills, res.ServiceRestarts)
	}
	if res.Restarts != 1 {
		t.Fatalf("compute restarts = %d, want 1", res.Restarts)
	}
	want := ckptExpect(n, iters)
	for r, v := range finals {
		if v != want {
			t.Errorf("rank %d acc = %v, want %v", r, v, want)
		}
	}
	if res.DeltaCkpts == 0 {
		t.Error("no deltas were in flight; the chain-break path went unexercised")
	}
	if res.ChainBreaks == 0 {
		t.Error("no replica ever saw a delta without its base; the fallback went unexercised")
	}
	if res.BelowQuorumAcks != 0 {
		t.Errorf("%d sends escaped below the write quorum", res.BelowQuorumAcks)
	}
	if rep := Audit(res); !rep.OK() {
		t.Errorf("%s", rep.Summary())
	}
	if hb := AuditTrace(res); !hb.OK() {
		t.Errorf("%s", hb.Summary())
	}
	t.Logf("deltas=%d breaks=%d compactions=%d resyncs=%d synced=%d saves=%d",
		res.DeltaCkpts, res.ChainBreaks, res.ChainCompactions,
		res.Resyncs, res.SyncedEvents, res.CkptSaves)
}
