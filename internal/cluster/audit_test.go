package cluster

import (
	"testing"
	"time"

	"mpichv/internal/core"
	"mpichv/internal/dispatcher"
	"mpichv/internal/mpi"
	"mpichv/internal/nas"
	"mpichv/internal/transport"
)

// deliveriesOf builds a synthetic Result for auditing.
func deliveriesOf(perRank ...[]core.Event) Result {
	return Result{Deliveries: perRank}
}

func TestAuditAcceptsCleanLog(t *testing.T) {
	rep := Audit(deliveriesOf([]core.Event{
		{Sender: 1, SenderClock: 1, RecvClock: 2, Seq: 1},
		{Sender: 2, SenderClock: 1, RecvClock: 3, Seq: 1},
		{Sender: 1, SenderClock: 4, RecvClock: 5, Seq: 2},
	}))
	if !rep.OK() {
		t.Fatalf("clean log rejected: %s", rep.Summary())
	}
	if rep.Events != 3 {
		t.Errorf("Events = %d, want 3", rep.Events)
	}
}

func TestAuditDetectsOrphanHole(t *testing.T) {
	// Channel sequence 2 is missing while 3 is present: some delivery
	// happened, was observable, and no replica can replay it.
	rep := Audit(deliveriesOf([]core.Event{
		{Sender: 1, SenderClock: 1, RecvClock: 2, Seq: 1},
		{Sender: 1, SenderClock: 5, RecvClock: 7, Seq: 3},
	}))
	if len(rep.Orphans) != 1 {
		t.Fatalf("orphans = %v, want exactly one", rep.Orphans)
	}
	if rep.OK() {
		t.Error("report with an orphan claims OK")
	}
}

func TestAuditDetectsClockAndFIFOViolations(t *testing.T) {
	rep := Audit(deliveriesOf([]core.Event{
		{Sender: 1, SenderClock: 3, RecvClock: 2, Seq: 1},
		{Sender: 2, SenderClock: 1, RecvClock: 2, Seq: 1}, // duplicate reception clock
		{Sender: 1, SenderClock: 1, RecvClock: 4, Seq: 2}, // sender clock went backwards
	}))
	if len(rep.ClockViolations) == 0 {
		t.Error("duplicate reception clock not flagged")
	}
	if len(rep.FIFOViolations) == 0 {
		t.Error("out-of-order sender clocks not flagged")
	}
}

func TestAuditIgnoresUnsequencedEvents(t *testing.T) {
	// Seq 0 marks events logged before channel sequencing existed; they
	// must not produce phantom holes.
	rep := Audit(deliveriesOf([]core.Event{
		{Sender: 1, SenderClock: 1, RecvClock: 2, Seq: 0},
		{Sender: 1, SenderClock: 5, RecvClock: 7, Seq: 0},
	}))
	if !rep.OK() {
		t.Fatalf("unsequenced log rejected: %s", rep.Summary())
	}
}

func TestAuditCountsSupersededReplicaDivergence(t *testing.T) {
	// Two replicas disagree about channel-seq 2 (a crash mid-quorum left
	// a stale variant on one of them); the merged view keeps one, the
	// audit reports the divergence without failing.
	winner := core.Event{Sender: 1, SenderClock: 4, RecvClock: 6, Seq: 2}
	stale := core.Event{Sender: 1, SenderClock: 4, RecvClock: 5, Seq: 2}
	first := core.Event{Sender: 1, SenderClock: 1, RecvClock: 2, Seq: 1}
	res := Result{
		Deliveries: [][]core.Event{{first, winner}},
		ELReplicaDeliveries: [][][]core.Event{
			{{first, winner}},
			{{first, winner}},
			{{first, stale}},
		},
	}
	rep := Audit(res)
	if !rep.OK() {
		t.Fatalf("quorum-absorbed divergence rejected: %s", rep.Summary())
	}
	if rep.Superseded != 1 {
		t.Errorf("Superseded = %d, want 1", rep.Superseded)
	}
}

// TestAuditSeededQuorumChaosRuns is the no-orphans property test: 20
// seeded chaos schedules over a quorum-replicated (R=3, Q=2) system,
// each with Poisson node kills that may hit compute nodes AND event-log
// replicas, plus frame drop/duplication/truncation. Every run must
// finish with the fault-free result, zero sends below the write quorum,
// and an audit with no orphans and no clock gaps.
func TestAuditSeededQuorumChaosRuns(t *testing.T) {
	const n, rounds = 6, 12
	_, wantFinals, _ := chaosRing(Config{Impl: V2, N: n}, rounds)

	targets := append(ranks(n), ELBase, ELBase+1, ELBase+2)
	for seed := uint64(1); seed <= 20; seed++ {
		x := (seed + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
		u := func() float64 {
			x = x*6364136223846793005 + 1442695040888963407
			return float64(x>>11) / float64(1<<53)
		}
		pol := transport.ChaosPolicy{
			Seed:      seed,
			Drop:      0.002 + 0.01*u(),
			Duplicate: 0.01 * u(),
			Truncate:  0.004 * u(),
		}
		faults := dispatcher.RandomFaults(seed, 30, 120*time.Millisecond, targets)

		// Cycle the EL submission mode across seeds so the no-orphans
		// property is exercised with legacy stop-and-wait, a pipelined
		// window of per-event batches, and a pipelined window with
		// adaptive batching.
		cfg := Config{
			Impl: V2, N: n,
			ELReplicas:     3,
			Chaos:          pol,
			Faults:         faults,
			DetectionDelay: 2 * time.Millisecond,
			Trace:          true,
		}
		switch seed % 3 {
		case 1:
			cfg.ELWindow = 8
		case 2:
			cfg.ELWindow = 8
			cfg.EventBatching = true
		}
		res, finals, _ := chaosRing(cfg, rounds)

		for r := 0; r < n; r++ {
			if finals[r] != wantFinals[r] {
				t.Errorf("seed %d: rank %d final = %d, want %d (kills=%d/%d)",
					seed, r, finals[r], wantFinals[r], res.Kills, res.ServiceKills)
			}
		}
		if res.BelowQuorumAcks != 0 {
			t.Errorf("seed %d: %d sends escaped below the write quorum", seed, res.BelowQuorumAcks)
		}
		rep := Audit(res)
		if !rep.OK() {
			t.Errorf("seed %d: %s", seed, rep.Summary())
			for _, v := range append(append(rep.Orphans, rep.ClockViolations...), rep.FIFOViolations...) {
				t.Logf("seed %d: %s", seed, v)
			}
		}
		if hb := AuditTrace(res); !hb.OK() {
			t.Errorf("seed %d: %s", seed, hb.Summary())
		}
		t.Logf("seed %d: kills=%d svc=%d resyncs=%d synced=%d superseded=%d dropped=%d trunc=%d",
			seed, res.Kills, res.ServiceKills, res.Resyncs, res.SyncedEvents,
			rep.Superseded, res.ChaosDropped, res.ChaosTruncated)
	}
}

// TestDoubleFaultMidRestart kills a second node while the first is
// still inside its RESTART1/RESTART2 handshake: the first victim's
// recovery must not deadlock on a peer that died under it, and both
// recoveries — running concurrently over the same replica group — must
// converge to the fault-free result.
func TestDoubleFaultMidRestart(t *testing.T) {
	const n, rounds = 4, 30
	finals := make([]uint64, n)
	res := Run(Config{
		Impl: V2, N: n,
		ELReplicas:     3,
		DetectionDelay: 2 * time.Millisecond,
		RestartTimeout: 5 * time.Millisecond, // rank 1 insists on RESTART2s
		Faults: []dispatcher.Fault{
			{Time: 6 * time.Millisecond, Rank: 1},
			// Rank 1 is respawned at ~8ms and enters its handshake; rank
			// 2 dies right in the middle of answering it.
			{Time: 8200 * time.Microsecond, Rank: 2},
		},
		Trace: true,
	}, ringProgram(rounds, finals))
	if res.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2", res.Restarts)
	}
	if finals[0] != ringExpect(n, rounds) {
		t.Errorf("token = %d, want %d", finals[0], ringExpect(n, rounds))
	}
	if res.BelowQuorumAcks != 0 {
		t.Errorf("%d sends escaped below the write quorum", res.BelowQuorumAcks)
	}
	if rep := Audit(res); !rep.OK() {
		t.Errorf("%s", rep.Summary())
	}
	if hb := AuditTrace(res); !hb.OK() {
		t.Errorf("%s", hb.Summary())
	}
}

// TestDoubleFaultPlansOverlap sanity-checks the generator: pairs land
// within the window and never target the same node twice.
func TestDoubleFaultPlansOverlap(t *testing.T) {
	plan := dispatcher.DoubleFaults(7, 4, time.Second, 20*time.Millisecond, []int{0, 1, 2, 3})
	if len(plan) < 4 {
		t.Fatalf("plan too small: %d faults", len(plan))
	}
	pairs := 0
	for i := 1; i < len(plan); i++ {
		if gap := plan[i].Time - plan[i-1].Time; gap >= 0 && gap <= 20*time.Millisecond {
			if plan[i].Rank == plan[i-1].Rank {
				t.Errorf("fault %d repeats target %d within the window", i, plan[i].Rank)
			}
			pairs++
		}
	}
	if pairs == 0 {
		t.Error("no overlapping fault pairs generated")
	}
	again := dispatcher.DoubleFaults(7, 4, time.Second, 20*time.Millisecond, []int{0, 1, 2, 3})
	if len(again) != len(plan) {
		t.Errorf("same seed produced %d faults, then %d", len(plan), len(again))
	}
}

// TestQuorumBTAcceptance is the replication acceptance scenario: BT.A
// with R=3/Q=2 event-log and checkpoint replication, one event-log
// replica killed mid-run (its respawn must anti-entropy resync), a
// compute node killed twice, and a fabric that truncates ~1% of frames
// — so checkpoint images get damaged in flight and must be caught by
// the CRC framing and re-fetched or re-saved. The run must verify, no
// send may leave below the write quorum, and the audit must be clean.
func TestQuorumBTAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("BT quorum acceptance is slow in short mode")
	}
	const n = 4
	bm := nas.BT("A")
	run := func(cfg Config) ([]nas.Result, Result) {
		results := make([]nas.Result, n)
		res := Run(cfg, func(p *mpi.Proc) {
			results[p.Rank()] = bm.Run(p, bm)
		})
		return results, res
	}

	clean, _ := run(Config{Impl: V2, N: n})

	faulty, res := run(Config{
		Impl: V2, N: n,
		ELReplicas:     3,
		ELWindow:       4, // acceptance runs with pipelined determinant logging
		EventBatching:  true,
		Checkpointing:  true,
		SchedPeriod:    5 * time.Millisecond,
		DetectionDelay: 3 * time.Millisecond,
		Chaos: transport.ChaosPolicy{
			Seed:     2003,
			Drop:     0.005,
			Truncate: 0.01,
		},
		// BT.A runs ~10.5 virtual seconds; the kills land mid-run so
		// real state exists to recover (the replica's respawn must have
		// events to anti-entropy back, the compute restart a checkpoint
		// and a replay log to fetch through the read quorum).
		Faults: []dispatcher.Fault{
			{Time: 2 * time.Second, Rank: 2},
			{Time: 2050 * time.Millisecond, Rank: 2}, // lands mid-recovery
			{Time: 5 * time.Second, Rank: ELBase + 1},
		},
		Trace:    true,
		TraceCap: 1 << 18, // BT.A is chatty; keep the audit total
	})

	for r := 0; r < n; r++ {
		if !clean[r].Verified {
			t.Fatalf("fault-free BT.A rank %d did not verify", r)
		}
		if !faulty[r].Verified {
			t.Errorf("chaotic BT.A rank %d did not verify (value %v)", r, faulty[r].Value)
		}
		if faulty[r].Value != clean[r].Value {
			t.Errorf("rank %d value %v differs from fault-free %v", r, faulty[r].Value, clean[r].Value)
		}
	}
	if res.ServiceKills != 1 || res.ServiceRestarts != 1 {
		t.Errorf("service kills/restarts = %d/%d, want 1/1", res.ServiceKills, res.ServiceRestarts)
	}
	if res.ChaosTruncated == 0 {
		t.Error("chaos truncated no frames; the integrity path went unexercised")
	}
	if res.BelowQuorumAcks != 0 {
		t.Errorf("%d sends escaped below the write quorum", res.BelowQuorumAcks)
	}
	if res.Resyncs == 0 {
		t.Error("the respawned replica never resynced")
	}
	if res.SyncedEvents == 0 {
		t.Error("the respawned replica pulled nothing back from its peers")
	}
	rep := Audit(res)
	if !rep.OK() {
		t.Errorf("%s", rep.Summary())
		for _, v := range append(append(rep.Orphans, rep.ClockViolations...), rep.FIFOViolations...) {
			t.Log(v)
		}
	}
	if hb := AuditTrace(res); !hb.OK() {
		t.Errorf("%s", hb.Summary())
	} else if hb.Incomplete {
		t.Error("trace wrapped; raise TraceCap so the audit is total")
	}
	t.Logf("%s; trunc=%d resyncs=%d synced=%d stale=%d corrupt=%d replaydrop=%d",
		rep.Summary(), res.ChaosTruncated, res.Resyncs, res.SyncedEvents,
		res.StaleRejects, res.CorruptImages, res.ReplayDropped)
}
