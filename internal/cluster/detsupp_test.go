package cluster

import (
	"encoding/binary"
	"testing"
	"time"

	"mpichv/internal/daemon"
	"mpichv/internal/dispatcher"
	"mpichv/internal/mpi"
	"mpichv/internal/transport"
)

// TestDetSuppressionRingFaultFree is the smoke property: a directed
// token ring is fully deterministic, so the adaptive classifier must
// keep nearly every determinant off the WAITLOGGED gate, piggyback them
// on payload frames, and still leave the event log gap-free once the
// epoch batches drain.
func TestDetSuppressionRingFaultFree(t *testing.T) {
	const n, rounds = 6, 20
	finals := make([]uint64, n)
	res := Run(Config{
		Impl: V2, N: n,
		DetMode: daemon.DetAdaptive,
		Trace:   true,
	}, ringProgram(rounds, finals))

	if finals[0] != ringExpect(n, rounds) {
		t.Fatalf("token = %d, want %d", finals[0], ringExpect(n, rounds))
	}
	if res.DetSuppressed == 0 {
		t.Fatal("adaptive mode suppressed nothing on a deterministic ring")
	}
	if res.DetForced > res.DetSuppressed/4 {
		t.Errorf("forced %d determinants vs %d suppressed; the ring should be almost entirely suppressible",
			res.DetForced, res.DetSuppressed)
	}
	if res.DetPiggybacked == 0 {
		t.Error("no determinants rode outgoing payload frames")
	}
	if rep := Audit(res); !rep.OK() {
		t.Errorf("%s", rep.Summary())
	}
	hb := AuditTrace(res)
	if !hb.OK() {
		t.Errorf("%s", hb.Summary())
	}
	if hb.Suppressed == 0 {
		t.Error("trace recorded no suppressed deliveries")
	}
	t.Logf("suppressed=%d forced=%d piggybacked=%d relayed=%d epochs logged=%d",
		res.DetSuppressed, res.DetForced, res.DetPiggybacked, res.DetRelayed, res.ELLogged)
}

// competingThenPingPong builds the canonical nondeterministic prologue:
// ranks 1 and 2 both fire payloads at rank 0 while rank 0 is busy
// computing, so by the time rank 0's daemon pops the first arrival
// (rank 1's — it was sent first) the other sender's message is provably
// sitting arrived-undelivered: a competing candidate the delivery order
// chose against. The prologue repeats reps times, then ranks 0 and 1
// ping-pong for rounds turns of purely deterministic traffic on the
// now-suspect channel.
func competingThenPingPong(reps, rounds int) Program {
	return func(p *mpi.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < reps; i++ {
			switch p.Rank() {
			case 1:
				p.Send(0, 5, buf)
				p.Recv(0, 9)
			case 2:
				// Arrive strictly after rank 1 but well inside rank 0's
				// compute window.
				p.ComputeTime(200 * time.Microsecond)
				p.Send(0, 5, buf)
				p.Recv(0, 9)
			case 0:
				// Let both payloads queue up in the daemon before the
				// first reception commits.
				p.ComputeTime(2 * time.Millisecond)
				p.Recv(1, 5) // rank 2's payload is arrived-undelivered: competing ≥ 1
				p.Recv(2, 5)
				p.Send(1, 9, buf) // acks keep the reps in lockstep
				p.Send(2, 9, buf)
			}
		}
		var token uint64
		for r := 0; r < rounds; r++ {
			switch p.Rank() {
			case 0:
				binary.BigEndian.PutUint64(buf, token+1)
				p.Send(1, 7, buf)
				b, _ := p.Recv(1, 8)
				token = binary.BigEndian.Uint64(b)
			case 1:
				b, _ := p.Recv(0, 7)
				token = binary.BigEndian.Uint64(b) + 1
				binary.BigEndian.PutUint64(buf, token)
				p.Send(0, 8, buf)
			}
		}
	}
}

// TestDetPoisonIsPermanent: once a channel has ever shown a competing
// arrival, the adaptive classifier must latch it back to pessimistic
// logging for good — the deterministic ping-pong that follows the
// nondeterministic prologue still logs every determinant on the gate.
func TestDetPoisonIsPermanent(t *testing.T) {
	const reps, rounds = 2, 25
	res := Run(Config{
		Impl: V2, N: 3,
		DetMode: daemon.DetAdaptive,
		Trace:   true,
	}, competingThenPingPong(reps, rounds))

	if res.DetPoisoned == 0 {
		t.Fatal("the competing prologue never poisoned a channel")
	}
	// Every post-prologue delivery from rank 1 at rank 0 rides the
	// poisoned channel and must be forced.
	if res.DetForced < rounds {
		t.Errorf("forced %d determinants, want ≥ %d: poisoned channel resumed suppressing", res.DetForced, rounds)
	}
	if rep := Audit(res); !rep.OK() {
		t.Errorf("%s", rep.Summary())
	}
	if hb := AuditTrace(res); !hb.OK() {
		t.Errorf("%s", hb.Summary())
	}

	// Control: without the prologue the same ping-pong poisons nothing
	// and suppresses freely.
	ctl := Run(Config{
		Impl: V2, N: 3,
		DetMode: daemon.DetAdaptive,
		Trace:   true,
	}, competingThenPingPong(0, rounds))
	if ctl.DetPoisoned != 0 {
		t.Errorf("control run poisoned %d channels on purely directed traffic", ctl.DetPoisoned)
	}
	if ctl.DetSuppressed == 0 {
		t.Error("control run suppressed nothing")
	}
	t.Logf("poisoned=%d forced=%d suppressed=%d (control: forced=%d suppressed=%d)",
		res.DetPoisoned, res.DetForced, res.DetSuppressed, ctl.DetForced, ctl.DetSuppressed)
}

// TestDetMisclassificationConvictedByAuditor is the negative safety
// test: the deliberately unsound aggressive classifier suppresses the
// determinant of a delivery with a competing arrival, and the
// happens-before auditor must convict it. The same workload under the
// adaptive classifier audits clean — the conviction is about the
// classifier, not the workload.
func TestDetMisclassificationConvictedByAuditor(t *testing.T) {
	const reps, rounds = 3, 5
	res := Run(Config{
		Impl: V2, N: 3,
		DetMode: daemon.DetAggressive,
		Trace:   true,
	}, competingThenPingPong(reps, rounds))

	hb := AuditTrace(res)
	if hb.OK() {
		t.Fatal("auditor passed a trace where nondeterministic deliveries were suppressed")
	}
	if len(hb.SuppressionViolations) == 0 {
		t.Fatalf("auditor failed for the wrong reason: %s", hb.Summary())
	}
	t.Logf("auditor convicted: %s", hb.SuppressionViolations[0])

	clean := Run(Config{
		Impl: V2, N: 3,
		DetMode: daemon.DetAdaptive,
		Trace:   true,
	}, competingThenPingPong(reps, rounds))
	if hb := AuditTrace(clean); !hb.OK() {
		t.Errorf("adaptive classifier on the same workload audits dirty: %s", hb.Summary())
	}
}

// TestDetSuppressionSeededChaosReplaysIdentically reruns the no-orphans
// chaos property with suppression on: 20 seeded schedules of node kills
// (compute and EL replicas alike) plus frame drop/duplication/
// truncation over a quorum-replicated (R=3, Q=2) system. Restarted
// ranks replay through suppressed determinants — regenerating the
// deterministic receives the EL never saw — and every run must still
// produce the fault-free token sequence on every rank, with a gap-free
// audited log and a green happens-before report.
func TestDetSuppressionSeededChaosReplaysIdentically(t *testing.T) {
	const n, rounds = 6, 12
	_, wantFinals, wantSeqs := chaosRing(Config{Impl: V2, N: n, DetMode: daemon.DetAdaptive}, rounds)

	targets := append(ranks(n), ELBase, ELBase+1, ELBase+2)
	var totalSuppressed, totalRegenerated, totalRestarts int64
	for seed := uint64(1); seed <= 20; seed++ {
		x := (seed + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
		u := func() float64 {
			x = x*6364136223846793005 + 1442695040888963407
			return float64(x>>11) / float64(1<<53)
		}
		pol := transport.ChaosPolicy{
			Seed:      seed,
			Drop:      0.002 + 0.01*u(),
			Duplicate: 0.01 * u(),
			Truncate:  0.004 * u(),
		}
		faults := dispatcher.RandomFaults(seed, 30, 120*time.Millisecond, targets)

		cfg := Config{
			Impl: V2, N: n,
			ELReplicas:     3,
			DetMode:        daemon.DetAdaptive,
			Chaos:          pol,
			Faults:         faults,
			DetectionDelay: 2 * time.Millisecond,
			Trace:          true,
		}
		// Alternate the EL submission pipeline so suppression composes
		// with both stop-and-wait and windowed batching.
		if seed%2 == 0 {
			cfg.ELWindow = 8
			cfg.EventBatching = true
		}
		res, finals, seqs := chaosRing(cfg, rounds)

		for r := 0; r < n; r++ {
			if finals[r] != wantFinals[r] {
				t.Errorf("seed %d: rank %d final = %d, want %d (kills=%d/%d)",
					seed, r, finals[r], wantFinals[r], res.Kills, res.ServiceKills)
			}
			if len(seqs[r]) != len(wantSeqs[r]) {
				t.Errorf("seed %d: rank %d saw %d tokens, want %d", seed, r, len(seqs[r]), len(wantSeqs[r]))
				continue
			}
			for i := range seqs[r] {
				if seqs[r][i] != wantSeqs[r][i] {
					t.Errorf("seed %d: rank %d delivery %d = %d, want %d (replay after suppression diverged)",
						seed, r, i, seqs[r][i], wantSeqs[r][i])
					break
				}
			}
		}
		if res.BelowQuorumAcks != 0 {
			t.Errorf("seed %d: %d sends escaped below the write quorum", seed, res.BelowQuorumAcks)
		}
		rep := Audit(res)
		if !rep.OK() {
			t.Errorf("seed %d: %s", seed, rep.Summary())
			for _, v := range append(append(rep.Orphans, rep.ClockViolations...), rep.FIFOViolations...) {
				t.Logf("seed %d: %s", seed, v)
			}
		}
		if hb := AuditTrace(res); !hb.OK() {
			t.Errorf("seed %d: %s", seed, hb.Summary())
		}
		totalSuppressed += res.DetSuppressed
		totalRegenerated += res.DetRegenerated
		totalRestarts += int64(res.Restarts)
		t.Logf("seed %d: kills=%d svc=%d suppressed=%d forced=%d regen=%d merged=%d",
			seed, res.Kills, res.ServiceKills, res.DetSuppressed, res.DetForced,
			res.DetRegenerated, res.ReplayDropped)
	}
	if totalSuppressed == 0 {
		t.Error("no seed ever suppressed a determinant; the property went unexercised")
	}
	if totalRestarts == 0 {
		t.Error("no seed ever restarted a rank; replay-after-suppression went unexercised")
	}
	t.Logf("totals: suppressed=%d regenerated=%d restarts=%d", totalSuppressed, totalRegenerated, totalRestarts)
}
