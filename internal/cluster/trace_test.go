package cluster

import (
	"strings"
	"testing"
	"time"

	"mpichv/internal/dispatcher"
	"mpichv/internal/trace"
	"mpichv/internal/transport"
)

// TestTracedRunProducesCausalTrace checks the plumbing: a traced run
// yields a merged trace whose counts line up with what the daemons did,
// with parent links carried across the wire.
func TestTracedRunProducesCausalTrace(t *testing.T) {
	const n, rounds = 4, 10
	finals := make([]uint64, n)
	res := Run(Config{Impl: V2, N: n, Trace: true}, ringProgram(rounds, finals))
	if finals[0] != ringExpect(n, rounds) {
		t.Fatalf("token = %d, want %d", finals[0], ringExpect(n, rounds))
	}
	tr := res.Trace
	if tr == nil || len(tr.Evs) == 0 {
		t.Fatal("traced run produced no trace")
	}
	if tr.Dropped != 0 {
		t.Fatalf("ring wrapped on a tiny run: %d dropped", tr.Dropped)
	}
	sends, delivers := tr.Count(trace.EvSend), tr.Count(trace.EvDeliver)
	if sends < n*rounds || delivers < n*rounds {
		t.Errorf("trace too sparse: %d sends, %d delivers (want >= %d)", sends, delivers, n*rounds)
	}
	// Every determinant retires except possibly the last per rank: a
	// delivery with no later send never has to wait for its ack before
	// finalize.
	if got := tr.Count(trace.EvDetDurable); got < delivers-n || got > delivers {
		t.Errorf("durables = %d, delivers = %d — at most one in flight per rank at exit", got, delivers)
	}
	// Causality on the wire: every delivery names its sender's span.
	withParent := 0
	for _, ev := range tr.Evs {
		if ev.Kind == trace.EvDeliver && ev.Parent != 0 {
			withParent++
			pr, _ := trace.UnpackSpan(ev.Parent)
			if pr < 0 || pr >= n {
				t.Fatalf("delivery parent names rank %d", pr)
			}
		}
	}
	if withParent != delivers {
		t.Errorf("%d/%d deliveries carry a parent span", withParent, delivers)
	}
	// Timestamps are ordered after Merge.
	for i := 1; i < len(tr.Evs); i++ {
		if tr.Evs[i].T < tr.Evs[i-1].T {
			t.Fatal("merged trace out of time order")
		}
	}
	if hb := AuditTrace(res); !hb.OK() {
		t.Errorf("%s", hb.Summary())
	}
}

// TestTracedChaosRecoveryAuditsGreen is the positive end-to-end check:
// a seeded chaos run with node kills, quorum event logging and chunked
// checkpointing upholds all three happens-before invariants, and the
// trace shows the recovery machinery actually ran (restarts, replays,
// checkpoint durability, GC notes).
func TestTracedChaosRecoveryAuditsGreen(t *testing.T) {
	const n, iters = 4, 60
	finals := make([]float64, n)
	res := Run(Config{
		Impl: V2, N: n,
		Checkpointing:  true,
		ELReplicas:     3,
		SchedPeriod:    2 * time.Millisecond,
		DetectionDelay: 3 * time.Millisecond,
		Chaos:          transport.ChaosPolicy{Seed: 7, Drop: 0.01, Delay: 0.03, MaxDelay: 300 * time.Microsecond},
		Faults: []dispatcher.Fault{
			{Time: 20 * time.Millisecond, Rank: 1},
			{Time: 45 * time.Millisecond, Rank: 3},
		},
		Trace: true,
	}, ckptProgram(iters, finals))

	want := ckptExpect(n, iters)
	for r, v := range finals {
		if v != want {
			t.Errorf("rank %d final = %g, want %g", r, v, want)
		}
	}
	if res.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2", res.Restarts)
	}
	hb := AuditTrace(res)
	if !hb.OK() {
		t.Fatalf("%s", hb.Summary())
	}
	if hb.Incomplete {
		t.Fatal("trace incomplete — raise TraceCap so the audit is total")
	}
	tr := res.Trace
	for _, k := range []trace.Kind{
		trace.EvRestartBegin, trace.EvRestartEnd, trace.EvDetSubmit,
		trace.EvCkptChunk, trace.EvCkptDurable, trace.EvGCNote, trace.EvGCApply,
	} {
		if tr.Count(k) == 0 {
			t.Errorf("no %v events — scenario did not exercise that path", k)
		}
	}
	if tr.Count(trace.EvRestartBegin) < res.Restarts {
		t.Errorf("restart-begin events = %d, restarts = %d", tr.Count(trace.EvRestartBegin), res.Restarts)
	}
}

// TestAuditorCatchesNoSendGating is the required negative test: with
// the WAITLOGGED barrier ablated, payloads leave while determinants are
// still at the event loggers, and the happens-before auditor must see
// it. The same workload with the gate on audits green — the violation
// comes from the injected bug, not from the auditor's disposition.
func TestAuditorCatchesNoSendGating(t *testing.T) {
	const n, rounds = 3, 15
	run := func(noGate bool) trace.HBReport {
		finals := make([]uint64, n)
		res := Run(Config{
			Impl: V2, N: n,
			ELReplicas:   3,
			NoSendGating: noGate,
			Trace:        true,
		}, ringProgram(rounds, finals))
		if finals[0] != ringExpect(n, rounds) {
			t.Fatalf("noGate=%v: token = %d, want %d", noGate, finals[0], ringExpect(n, rounds))
		}
		return AuditTrace(res)
	}
	if hb := run(false); !hb.OK() {
		t.Fatalf("gated control run flagged: %s", hb.Summary())
	}
	hb := run(true)
	if hb.OK() || len(hb.EarlySends) == 0 {
		t.Fatalf("ablated gate not caught: %s", hb.Summary())
	}
	if !strings.Contains(hb.Summary(), "early sends") {
		t.Errorf("summary: %s", hb.Summary())
	}
	if len(hb.ReplayViolations) != 0 || len(hb.GCViolations) != 0 {
		t.Errorf("ablation bled into unrelated invariants: %s", hb.Summary())
	}
}

// TestTraceRingWrapReportsIncomplete: a deliberately tiny ring forces
// wrap; the auditor must flag the trace incomplete instead of claiming
// violations over missing evidence.
func TestTraceRingWrapReportsIncomplete(t *testing.T) {
	const n, rounds = 4, 20
	finals := make([]uint64, n)
	res := Run(Config{Impl: V2, N: n, Trace: true, TraceCap: 16}, ringProgram(rounds, finals))
	if res.Trace.Dropped == 0 {
		t.Fatal("tiny ring did not wrap")
	}
	hb := AuditTrace(res)
	if !hb.Incomplete {
		t.Fatal("wrapped trace not marked incomplete")
	}
	if !hb.OK() {
		t.Errorf("incomplete trace produced violations: %s", hb.Summary())
	}
}

// TestUntracedRunHasNoTraceButFullMetrics: tracing off leaves the
// trace nil (and the wire untouched) while the metrics registry still
// exports every subsystem's counters.
func TestUntracedRunHasNoTraceButFullMetrics(t *testing.T) {
	const n, rounds = 3, 8
	finals := make([]uint64, n)
	res := Run(Config{Impl: V2, N: n}, ringProgram(rounds, finals))
	if res.Trace != nil {
		t.Error("untraced run carries a trace")
	}
	if res.Metrics == nil {
		t.Fatal("run has no metrics registry")
	}
	snap := res.Metrics.Snapshot()
	for _, name := range []string{
		"daemon.sent_msgs", "daemon.recv_msgs", "daemon.events_logged",
		"el.logged", "net.messages", "run.kills",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("metric %s missing from snapshot", name)
		}
	}
	if snap.Counters["daemon.sent_msgs"] == 0 || snap.Counters["el.logged"] == 0 {
		t.Errorf("core counters are zero: sent=%d logged=%d",
			snap.Counters["daemon.sent_msgs"], snap.Counters["el.logged"])
	}
	if snap.Gauges["run.ranks"] != n {
		t.Errorf("run.ranks = %g", snap.Gauges["run.ranks"])
	}
	if _, ok := snap.Histograms["daemon.waitlogged_us"]; ok {
		t.Error("trace-derived histogram present without tracing")
	}
}

// TestTracedRunMetricsIncludeHistograms: with tracing on, the registry
// gains the trace-derived distributions.
func TestTracedRunMetricsIncludeHistograms(t *testing.T) {
	const n, rounds = 3, 8
	finals := make([]uint64, n)
	res := Run(Config{Impl: V2, N: n, ELReplicas: 3, Trace: true}, ringProgram(rounds, finals))
	snap := res.Metrics.Snapshot()
	h, ok := snap.Histograms["daemon.payload_bytes"]
	if !ok || h.Count == 0 {
		t.Fatalf("daemon.payload_bytes: %+v (present=%v)", h, ok)
	}
	if h.Min < 8 || h.Max > 64 {
		t.Errorf("payload sizes out of range: %+v", h)
	}
	if w, ok := snap.Histograms["daemon.waitlogged_us"]; !ok || w.Count == 0 {
		t.Errorf("daemon.waitlogged_us: %+v (present=%v) — the EL round trip must stall someone", w, ok)
	}
	if snap.Counters["trace.events"] == 0 {
		t.Error("trace.events counter is zero")
	}
}

// TestCriticalPathFromTracedRun: the extractor decomposes each rank's
// virtual time and the decomposition is self-consistent — ELWait fits
// inside Comm, and a run dominated by blocking receives puts the
// critical rank's time mostly in communication.
func TestCriticalPathFromTracedRun(t *testing.T) {
	const n, rounds = 4, 12
	finals := make([]uint64, n)
	res := Run(Config{Impl: V2, N: n, ELReplicas: 3, Trace: true}, ringProgram(rounds, finals))
	rows := trace.ExtractCriticalPath(res.Trace, res.PerRank)
	if len(rows) != n {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Comm <= 0 {
			t.Errorf("rank %d: Comm = %v", row.Rank, row.Comm)
		}
		if row.ELWait < 0 || row.ELWait > row.Comm {
			t.Errorf("rank %d: ELWait %v outside Comm %v", row.Rank, row.ELWait, row.Comm)
		}
		if row.Transfer != row.Comm-row.ELWait-row.Recovery {
			t.Errorf("rank %d: Transfer %v != Comm-ELWait-Recovery", row.Rank, row.Transfer)
		}
	}
	crit := rows[trace.CriticalRank(rows)]
	if crit.Total() == 0 {
		t.Error("critical rank accounted no time")
	}
}

// TestTraceDeterminism: tracing must not perturb the simulation, and
// the trace itself is a deterministic function of the config.
func TestTraceDeterminism(t *testing.T) {
	cfg := Config{
		Impl: V2, N: 4,
		ELReplicas:     3,
		Chaos:          transport.ChaosPolicy{Seed: 5, Drop: 0.02, Duplicate: 0.01, Delay: 0.05},
		Faults:         []dispatcher.Fault{{Time: 5 * time.Millisecond, Rank: 2}},
		DetectionDelay: 2 * time.Millisecond,
		Trace:          true,
	}
	r1, f1, _ := chaosRing(cfg, 15)
	r2, f2, _ := chaosRing(cfg, 15)
	if r1.Elapsed != r2.Elapsed || f1[0] != f2[0] {
		t.Fatalf("same seed diverged: (%v,%d) vs (%v,%d)", r1.Elapsed, f1[0], r2.Elapsed, f2[0])
	}
	if len(r1.Trace.Evs) != len(r2.Trace.Evs) {
		t.Fatalf("trace lengths differ: %d vs %d", len(r1.Trace.Evs), len(r2.Trace.Evs))
	}
	for i := range r1.Trace.Evs {
		if r1.Trace.Evs[i] != r2.Trace.Evs[i] {
			t.Fatalf("trace diverges at event %d: %+v vs %+v", i, r1.Trace.Evs[i], r2.Trace.Evs[i])
		}
	}
	// And against the untraced baseline: identical virtual outcome.
	cfg2 := cfg
	cfg2.Trace = false
	r3, f3, _ := chaosRing(cfg2, 15)
	if f3[0] != f1[0] {
		t.Errorf("tracing changed the computation: %d vs %d", f3[0], f1[0])
	}
	_ = r3
}
