package cluster

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"mpichv/internal/dispatcher"
	"mpichv/internal/mpi"
	"mpichv/internal/netsim"
)

// pingPong bounces a message repeatedly and records the steady-state
// mean round trip (the first round is a warm-up: it lacks the sender's
// event-logging wait).
func pingPong(size, rounds int, out *time.Duration) Program {
	return func(p *mpi.Proc) {
		msg := make([]byte, size)
		var t0 time.Duration
		for r := 0; r < rounds+1; r++ {
			if p.Rank() == 0 {
				if r == 1 {
					t0 = p.Clock().Now()
				}
				p.Send(1, 7, msg)
				p.Recv(1, 8)
			} else {
				b, _ := p.Recv(0, 7)
				p.Send(0, 8, b)
			}
		}
		if p.Rank() == 0 {
			*out = (p.Clock().Now() - t0) / time.Duration(rounds)
		}
	}
}

func TestPingPongCompletesOnAllImpls(t *testing.T) {
	for _, impl := range []Impl{V2, P4, V1} {
		t.Run(impl.String(), func(t *testing.T) {
			var rtt time.Duration
			res := Run(Config{Impl: impl, N: 2}, pingPong(0, 10, &rtt))
			if rtt <= 0 {
				t.Fatalf("%v: no round trip measured", impl)
			}
			if res.Elapsed <= 0 {
				t.Fatalf("%v: elapsed = %v", impl, res.Elapsed)
			}
			t.Logf("%v: 0-byte RTT = %v", impl, rtt)
		})
	}
}

func TestLatencyCalibration(t *testing.T) {
	// Paper figure 6: P4 one-way 0-byte latency 77 µs, V2 237 µs; V1
	// sits in between. We allow 10% slack for protocol details.
	oneWay := func(impl Impl) time.Duration {
		var rtt time.Duration
		Run(Config{Impl: impl, N: 2}, pingPong(0, 10, &rtt))
		return rtt / 2
	}
	p4 := oneWay(P4)
	v2 := oneWay(V2)
	v1 := oneWay(V1)
	check := func(name string, got, want time.Duration) {
		lo, hi := want*90/100, want*110/100
		if got < lo || got > hi {
			t.Errorf("%s one-way latency = %v, want ≈ %v", name, got, want)
		}
	}
	check("P4", p4, 77*time.Microsecond)
	check("V2", v2, 237*time.Microsecond)
	if v1 <= p4 || v1 >= v2 {
		t.Errorf("V1 latency %v should sit between P4 %v and V2 %v", v1, p4, v2)
	}
}

func TestBandwidthShape(t *testing.T) {
	// Paper figure 5: for 1 MiB messages P4 ≈ 11.3 MB/s, V2 slightly
	// below (10.7), V1 about half.
	bw := func(impl Impl) float64 {
		var rtt time.Duration
		const size = 1 << 20
		Run(Config{Impl: impl, N: 2}, pingPong(size, 4, &rtt))
		return float64(2*size) / rtt.Seconds() / 1e6
	}
	p4, v2, v1 := bw(P4), bw(V2), bw(V1)
	t.Logf("bandwidth MB/s: P4=%.2f V2=%.2f V1=%.2f", p4, v2, v1)
	if !(v2 < p4 && p4 < 1.10*v2) {
		t.Errorf("V2 (%.2f) should be slightly below P4 (%.2f)", v2, p4)
	}
	if v1 > 0.6*p4 || v1 < 0.4*p4 {
		t.Errorf("V1 (%.2f) should be about half of P4 (%.2f)", v1, p4)
	}
}

// ringProgram passes an accumulating token around the ring for rounds
// turns and records the final value everyone agrees on.
func ringProgram(rounds int, finals []uint64) Program {
	return func(p *mpi.Proc) {
		n := p.Size()
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		var token uint64
		buf := make([]byte, 8)
		for r := 0; r < rounds; r++ {
			if p.Rank() == 0 {
				binary.BigEndian.PutUint64(buf, token+1)
				p.Send(right, 1, buf)
				b, _ := p.Recv(left, 1)
				token = binary.BigEndian.Uint64(b)
			} else {
				b, _ := p.Recv(left, 1)
				token = binary.BigEndian.Uint64(b) + 1
				binary.BigEndian.PutUint64(buf, token)
				p.Send(right, 1, buf)
			}
		}
		finals[p.Rank()] = token
	}
}

func ringExpect(n, rounds int) (rank0 uint64) {
	// Each round adds n to the token as it passes all ranks.
	return uint64(n * rounds)
}

func TestTokenRing(t *testing.T) {
	const n, rounds = 8, 20
	finals := make([]uint64, n)
	Run(Config{Impl: V2, N: n}, ringProgram(rounds, finals))
	if finals[0] != ringExpect(n, rounds) {
		t.Errorf("rank 0 token = %d, want %d", finals[0], ringExpect(n, rounds))
	}
}

func TestCollectivesV2(t *testing.T) {
	const n = 7 // non-power-of-two on purpose
	sums := make([]float64, n)
	gathered := make([]int, n)
	Run(Config{Impl: V2, N: n}, func(p *mpi.Proc) {
		me := float64(p.Rank() + 1)
		sums[p.Rank()] = p.AllreduceScalar(me, mpi.OpSum)

		// Bcast + Barrier + Allgather round trip.
		msg := p.Bcast(2, []byte(fmt.Sprintf("from2:%d", p.Rank())))
		if string(msg) != "from2:2" {
			p.Abortf("bcast got %q", msg)
		}
		p.Barrier()
		blocks := p.Allgather([]byte{byte(p.Rank() * 3)})
		count := 0
		for r, b := range blocks {
			if len(b) == 1 && int(b[0]) == r*3 {
				count++
			}
		}
		gathered[p.Rank()] = count

		// Alltoall: block for rank r carries our rank.
		out := make([][]byte, n)
		for r := range out {
			out[r] = []byte{byte(p.Rank()), byte(r)}
		}
		in := p.Alltoall(out)
		for r, b := range in {
			if len(b) != 2 || int(b[0]) != r || int(b[1]) != p.Rank() {
				p.Abortf("alltoall block from %d = %v", r, b)
			}
		}
	})
	want := float64(n * (n + 1) / 2)
	for r, s := range sums {
		if s != want {
			t.Errorf("rank %d allreduce = %v, want %v", r, s, want)
		}
	}
	for r, c := range gathered {
		if c != n {
			t.Errorf("rank %d allgather matched %d/%d blocks", r, c, n)
		}
	}
}

func TestRendezvousLargeMessages(t *testing.T) {
	const n = 2
	const size = 300 << 10 // over the 64 KiB eager limit
	ok := make([]bool, n)
	Run(Config{Impl: V2, N: n}, func(p *mpi.Proc) {
		if p.Rank() == 0 {
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i * 7)
			}
			p.Send(1, 5, data)
			ok[0] = true
		} else {
			b, st := p.Recv(0, 5)
			good := st.Size == size && len(b) == size
			for i := 0; good && i < size; i += 4097 {
				good = b[i] == byte(i*7)
			}
			ok[1] = good
		}
	})
	if !ok[0] || !ok[1] {
		t.Errorf("rendezvous transfer failed: %v", ok)
	}
}

func TestRestartFromScratchReExecutes(t *testing.T) {
	// No checkpointing: a killed node re-executes from the beginning,
	// replaying its receptions from the senders' logs, and the ring
	// still completes with the right token value.
	const n, rounds = 4, 30
	finals := make([]uint64, n)
	res := Run(Config{
		Impl: V2, N: n,
		Faults: []dispatcher.Fault{{Time: 5 * time.Millisecond, Rank: 2}},
	}, ringProgram(rounds, finals))
	if res.Kills != 1 || res.Restarts != 1 {
		t.Fatalf("kills=%d restarts=%d, want 1/1", res.Kills, res.Restarts)
	}
	if finals[0] != ringExpect(n, rounds) {
		t.Errorf("rank 0 token = %d, want %d", finals[0], ringExpect(n, rounds))
	}
	for r := 1; r < n; r++ {
		if finals[r] == 0 {
			t.Errorf("rank %d never finished", r)
		}
	}
}

func TestMultipleConcurrentFaults(t *testing.T) {
	// n concurrent faults of n processes: every rank dies at a
	// different point; the system still converges (the paper's
	// headline property).
	const n, rounds = 4, 25
	finals := make([]uint64, n)
	var faults []dispatcher.Fault
	for r := 0; r < n; r++ {
		faults = append(faults, dispatcher.Fault{Time: time.Duration(3+2*r) * time.Millisecond, Rank: r})
	}
	res := Run(Config{Impl: V2, N: n, Faults: faults}, ringProgram(rounds, finals))
	if res.Restarts != n {
		t.Fatalf("restarts = %d, want %d", res.Restarts, n)
	}
	if finals[0] != ringExpect(n, rounds) {
		t.Errorf("rank 0 token = %d, want %d", finals[0], ringExpect(n, rounds))
	}
}

// ckptProgram iterates allreduces with checkpointable state.
func ckptProgram(iters int, finals []float64) Program {
	return func(p *mpi.Proc) {
		state := struct {
			Iter int
			Acc  float64
		}{}
		p.SetStateProvider(func() []byte {
			buf := make([]byte, 16)
			binary.BigEndian.PutUint64(buf, uint64(state.Iter))
			binary.BigEndian.PutUint64(buf[8:], uint64(int64(state.Acc)))
			return buf
		})
		if blob, restarted := p.Restarted(); restarted && blob != nil {
			state.Iter = int(binary.BigEndian.Uint64(blob))
			state.Acc = float64(int64(binary.BigEndian.Uint64(blob[8:])))
		}
		for ; state.Iter < iters; state.Iter++ {
			p.CheckpointPoint()
			p.Compute(1e5)
			state.Acc += p.AllreduceScalar(float64(p.Rank()+state.Iter), mpi.OpSum)
		}
		finals[p.Rank()] = state.Acc
	}
}

func ckptExpect(n, iters int) float64 {
	var acc float64
	for i := 0; i < iters; i++ {
		for r := 0; r < n; r++ {
			acc += float64(r + i)
		}
	}
	return acc
}

func TestCheckpointRestart(t *testing.T) {
	const n, iters = 4, 60
	finals := make([]float64, n)
	res := Run(Config{
		Impl: V2, N: n,
		Checkpointing: true,
		SchedPeriod:   2 * time.Millisecond,
		Faults: []dispatcher.Fault{
			{Time: 20 * time.Millisecond, Rank: 1},
			{Time: 45 * time.Millisecond, Rank: 3},
		},
	}, ckptProgram(iters, finals))
	if res.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2", res.Restarts)
	}
	if res.CkptSaves == 0 {
		t.Error("no checkpoints were saved")
	}
	want := ckptExpect(n, iters)
	for r, v := range finals {
		if v != want {
			t.Errorf("rank %d acc = %v, want %v", r, v, want)
		}
	}
	t.Logf("ckpt saves=%d bytes=%d restarts=%d elapsed=%v", res.CkptSaves, res.CkptBytes, res.Restarts, res.Elapsed)
}

func TestGarbageCollectionFreesLogs(t *testing.T) {
	const n, iters = 2, 40
	finals := make([]float64, n)
	res := Run(Config{
		Impl: V2, N: n,
		Checkpointing: true,
		SchedPeriod:   time.Millisecond,
	}, ckptProgram(iters, finals))
	var freed int64
	for _, d := range res.Daemons {
		freed += d.GCFreedBytes
	}
	if res.CkptSaves == 0 {
		t.Skip("no checkpoints completed in this configuration")
	}
	if freed == 0 {
		t.Error("garbage collection never freed logged payloads")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (time.Duration, uint64) {
		finals := make([]uint64, 4)
		res := Run(Config{
			Impl: V2, N: 4,
			Faults: []dispatcher.Fault{{Time: 4 * time.Millisecond, Rank: 1}},
		}, ringProgram(15, finals))
		return res.Elapsed, finals[0]
	}
	e1, f1 := run()
	e2, f2 := run()
	if e1 != e2 || f1 != f2 {
		t.Errorf("nondeterministic runs: (%v,%d) vs (%v,%d)", e1, f1, e2, f2)
	}
}

func TestAnySourceOrderIsReplayed(t *testing.T) {
	// Rank 0 receives from AnySource; the arrival order is the
	// nondeterminism the event logger captures. After a crash of rank
	// 0, the re-execution must observe the same order, producing the
	// same alternating-difference checksum.
	const n, msgs = 4, 30
	var sum [2]int64
	for variant, faults := range [][]dispatcher.Fault{
		nil,
		{{Time: 3 * time.Millisecond, Rank: 0}},
	} {
		Run(Config{Impl: V2, N: n, Faults: faults}, func(p *mpi.Proc) {
			if p.Rank() == 0 {
				var acc, weight int64 = 0, 1
				for i := 0; i < n-1; i++ {
					for j := 0; j < msgs; j++ {
						b, st := p.Recv(mpi.AnySource, 3)
						acc += weight * int64(st.Source) * int64(b[0]+1)
						weight = -weight
					}
				}
				sum[variant] = acc
			} else {
				for j := 0; j < msgs; j++ {
					p.Send(0, 3, []byte{byte(j)})
				}
			}
		})
	}
	// The checksum depends on the interleaving; deterministic sims and
	// faithful replay must agree with the fault-free run.
	if sum[0] != sum[1] {
		t.Errorf("replayed AnySource order diverged: %d vs %d", sum[0], sum[1])
	}
}

func TestSlowNetworkStillCorrect(t *testing.T) {
	// Sanity under a different parameterization: 10× slower network.
	p := netsim.Params2003()
	p.Bandwidth /= 10
	p.ComputeOverhead *= 10
	finals := make([]uint64, 3)
	Run(Config{Impl: V2, N: 3, Params: p}, ringProgram(10, finals))
	if finals[0] != ringExpect(3, 10) {
		t.Errorf("token = %d, want %d", finals[0], ringExpect(3, 10))
	}
}

func TestMultipleEventLoggers(t *testing.T) {
	// §4.5: several event loggers, each daemon connected to exactly
	// one, no logger-to-logger communication. Recovery must fetch from
	// the right logger.
	const n, rounds = 4, 20
	finals := make([]uint64, n)
	res := Run(Config{
		Impl: V2, N: n,
		EventLoggers: 2,
		Faults:       []dispatcher.Fault{{Time: 4 * time.Millisecond, Rank: 3}},
	}, ringProgram(rounds, finals))
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	if finals[0] != ringExpect(n, rounds) {
		t.Errorf("token = %d, want %d", finals[0], ringExpect(n, rounds))
	}
	if res.ELLogged == 0 {
		t.Error("no events logged across the loggers")
	}
}

func TestNoGatingIsFasterButUnsafe(t *testing.T) {
	// Ablation sanity: disabling WAITLOGGED must strictly reduce the
	// latency of a dependent message chain.
	run := func(gating bool) time.Duration {
		finals := make([]uint64, 3)
		res := Run(Config{Impl: V2, N: 3, NoSendGating: !gating}, ringProgram(10, finals))
		return res.Elapsed
	}
	if on, off := run(true), run(false); off >= on {
		t.Errorf("no-gating (%v) should be faster than pessimistic (%v)", off, on)
	}
}

func TestSameRankKilledTwice(t *testing.T) {
	// The second fault lands while the rank is replaying from its
	// first crash: recovery must restart cleanly from the same logs.
	const n, rounds = 4, 30
	finals := make([]uint64, n)
	res := Run(Config{
		Impl: V2, N: n,
		DetectionDelay: 2 * time.Millisecond,
		Faults: []dispatcher.Fault{
			{Time: 5 * time.Millisecond, Rank: 2},
			{Time: 8 * time.Millisecond, Rank: 2}, // during recovery/replay
		},
	}, ringProgram(rounds, finals))
	if res.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2", res.Restarts)
	}
	if finals[0] != ringExpect(n, rounds) {
		t.Errorf("token = %d, want %d", finals[0], ringExpect(n, rounds))
	}
}

func TestFaultDuringCheckpointing(t *testing.T) {
	// Faults racing the checkpoint pipeline: kills land while images
	// are in flight to the checkpoint server.
	const n, iters = 4, 50
	finals := make([]float64, n)
	var faults []dispatcher.Fault
	for i := 0; i < 6; i++ {
		faults = append(faults, dispatcher.Fault{
			Time: time.Duration(8+7*i) * time.Millisecond,
			Rank: i % n,
		})
	}
	res := Run(Config{
		Impl: V2, N: n,
		Checkpointing:  true,
		SchedPeriod:    time.Millisecond, // checkpoint constantly
		DetectionDelay: 3 * time.Millisecond,
		Faults:         faults,
	}, ckptProgram(iters, finals))
	if res.Restarts != 6 {
		t.Fatalf("restarts = %d, want 6", res.Restarts)
	}
	want := ckptExpect(n, iters)
	for r, v := range finals {
		if v != want {
			t.Errorf("rank %d acc = %v, want %v", r, v, want)
		}
	}
}

func TestRapidFireFaults(t *testing.T) {
	// A fault every few milliseconds, round-robin over the ranks —
	// high fault frequency is one of the paper's two volatility
	// challenges (§2).
	const n, rounds = 3, 25
	finals := make([]uint64, n)
	var faults []dispatcher.Fault
	for i := 0; i < 9; i++ {
		faults = append(faults, dispatcher.Fault{
			Time: time.Duration(4+3*i) * time.Millisecond,
			Rank: i % n,
		})
	}
	res := Run(Config{
		Impl: V2, N: n,
		DetectionDelay: time.Millisecond,
		Faults:         faults,
	}, ringProgram(rounds, finals))
	if res.Restarts == 0 {
		t.Fatal("no restarts recorded")
	}
	if finals[0] != ringExpect(n, rounds) {
		t.Errorf("token = %d, want %d", finals[0], ringExpect(n, rounds))
	}
	t.Logf("survived %d kills / %d restarts", res.Kills, res.Restarts)
}

func TestMultipleCheckpointServers(t *testing.T) {
	const n, iters = 4, 60
	finals := make([]float64, n)
	res := Run(Config{
		Impl: V2, N: n,
		Checkpointing: true,
		CkptServers:   2,
		SchedPeriod:   2 * time.Millisecond,
		Faults: []dispatcher.Fault{
			{Time: 20 * time.Millisecond, Rank: 0},
			{Time: 40 * time.Millisecond, Rank: 3},
		},
	}, ckptProgram(iters, finals))
	if res.Restarts != 2 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	if res.CkptSaves == 0 {
		t.Fatal("no checkpoints saved across the servers")
	}
	want := ckptExpect(n, iters)
	for r, v := range finals {
		if v != want {
			t.Errorf("rank %d acc = %v, want %v", r, v, want)
		}
	}
}

func TestEventBatchingCorrectAndCheaper(t *testing.T) {
	// Batching pays off on reception bursts: an incast where rank 0
	// drains many messages back to back, then answers.
	incast := func(sums []int64) Program {
		return func(p *mpi.Proc) {
			const msgs = 30
			if p.Rank() == 0 {
				var sum int64
				for i := 0; i < (p.Size()-1)*msgs; i++ {
					b, _ := p.Recv(mpi.AnySource, 1)
					sum += int64(b[0])
				}
				for r := 1; r < p.Size(); r++ {
					p.Send(r, 2, []byte{byte(sum % 251)})
				}
				sums[0] = sum
			} else {
				for i := 0; i < msgs; i++ {
					p.Send(0, 1, []byte{byte(i)})
				}
				b, _ := p.Recv(0, 2)
				sums[p.Rank()] = int64(b[0])
			}
		}
	}
	run := func(batching bool) (Result, []int64) {
		sums := make([]int64, 4)
		res := Run(Config{
			Impl: V2, N: 4,
			EventBatching: batching,
			Faults:        []dispatcher.Fault{{Time: 3 * time.Millisecond, Rank: 0}},
		}, incast(sums))
		return res, sums
	}
	plain, sumsPlain := run(false)
	batched, sumsBatched := run(true)
	for r := range sumsPlain {
		if sumsPlain[r] != sumsBatched[r] {
			t.Fatalf("rank %d result differs: %d vs %d", r, sumsPlain[r], sumsBatched[r])
		}
	}
	if plain.ELLogged != batched.ELLogged {
		t.Errorf("event counts differ: %d vs %d", plain.ELLogged, batched.ELLogged)
	}
	if batched.NetMessages >= plain.NetMessages {
		t.Errorf("batching did not reduce messages: %d vs %d", batched.NetMessages, plain.NetMessages)
	}
	t.Logf("net messages: plain=%d batched=%d", plain.NetMessages, batched.NetMessages)
}

func TestMassiveSimultaneousNodeLoss(t *testing.T) {
	// §2's first volatility challenge: "survive massive lost of nodes"
	// — e.g. a whole sub-cluster disconnecting at once. Half of a
	// 16-node ring dies at the same instant.
	const n, rounds = 16, 15
	finals := make([]uint64, n)
	var faults []dispatcher.Fault
	for r := 0; r < n; r += 2 {
		faults = append(faults, dispatcher.Fault{Time: 6 * time.Millisecond, Rank: r})
	}
	res := Run(Config{
		Impl: V2, N: n,
		DetectionDelay: 2 * time.Millisecond,
		Faults:         faults,
	}, ringProgram(rounds, finals))
	if res.Restarts != n/2 {
		t.Fatalf("restarts = %d, want %d", res.Restarts, n/2)
	}
	if finals[0] != ringExpect(n, rounds) {
		t.Errorf("token = %d, want %d", finals[0], ringExpect(n, rounds))
	}
}
