package cluster

import (
	"testing"
	"time"

	"mpichv/internal/dispatcher"
	"mpichv/internal/shard"
)

// TestFleetShardedTopologies: the sharded event-logger fleet must keep
// every piecewise-determinism invariant in every topology — single
// replicas per shard, full quorum groups per shard, and a sharded
// checkpoint fleet on top — and the channel ranges must actually spread
// over the shards instead of collapsing onto one group.
func TestFleetShardedTopologies(t *testing.T) {
	const n, rounds = 8, 12
	cases := []struct {
		name   string
		cfg    Config
		minUse int // replicas that must hold at least one event
	}{
		{"2shards-1replica", Config{ELShards: 2, ShardSeed: 42}, 2},
		{"4shards-1replica", Config{ELShards: 4, ShardSeed: 42}, 3},
		{"4shards-3replicas-q2", Config{ELShards: 4, ELReplicas: 3, ELQuorum: 2, ShardSeed: 7}, 6},
		{"4shards-ckpt-2csshards", Config{
			ELShards: 4, CSShards: 2, ShardSeed: 11,
			Checkpointing: true, SchedPeriod: 5 * time.Millisecond,
		}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Impl = V2
			cfg.N = n
			cfg.Trace = true
			finals := make([]uint64, n)
			res := Run(cfg, ringProgram(rounds, finals))
			if want := ringExpect(n, rounds); finals[0] != want {
				t.Errorf("token = %d, want %d", finals[0], want)
			}
			if res.ELLogged == 0 {
				t.Fatal("no events logged")
			}
			used := 0
			for _, per := range res.ELReplicaDeliveries {
				for r := range per {
					if len(per[r]) > 0 {
						used++
						break
					}
				}
			}
			if used < tc.minUse {
				t.Errorf("events landed on %d replicas, want ≥ %d — fleet not spreading", used, tc.minUse)
			}
			if rep := Audit(res); !rep.OK() {
				t.Errorf("%s", rep.Summary())
			}
			if hb := AuditTrace(res); !hb.OK() {
				t.Errorf("%s", hb.Summary())
			}
		})
	}
}

// TestFleetShardKillMidRun is the fleet-failure acceptance case: every
// replica of one EL shard is killed mid-run, the dispatcher broadcasts
// the outage, the daemons reroute the shard's key range to its ring
// successor and backfill the displaced history, a compute rank then
// crashes and must reconstruct a gap-free replay from the cross-shard
// union — and when the shard's replicas respawn (empty), it rejoins and
// is backfilled. The recovery auditor must find no orphans.
func TestFleetShardKillMidRun(t *testing.T) {
	const (
		n, rounds = 8, 40
		shards    = 4
		replicas  = 3
		seed      = 42
	)
	// Kill the shard that owns the ring channel 0 → 1, so the outage is
	// guaranteed to displace live traffic.
	victim := shard.New(shards, seed).Owner(0, 1)
	var faults []dispatcher.Fault
	for i := 0; i < replicas; i++ {
		faults = append(faults, dispatcher.Fault{
			Time: 5 * time.Millisecond, Rank: ELBase + victim*replicas + i,
		})
	}
	faults = append(faults, dispatcher.Fault{Time: 15 * time.Millisecond, Rank: 3})

	finals := make([]uint64, n)
	res := Run(Config{
		Impl: V2, N: n,
		ELShards: shards, ELReplicas: replicas, ELQuorum: 2, ShardSeed: seed,
		DetectionDelay:    2 * time.Millisecond,
		ShardRespawnDelay: 25 * time.Millisecond,
		Faults:            faults,
		Trace:             true,
	}, ringProgram(rounds, finals))

	if res.ServiceKills != replicas {
		t.Fatalf("service kills = %d, want %d", res.ServiceKills, replicas)
	}
	if res.Restarts < 1 {
		t.Fatalf("compute restarts = %d, want ≥ 1", res.Restarts)
	}
	if res.ShardDowns < 1 || res.ShardUps < 1 {
		t.Errorf("shard downs/ups = %d/%d, want ≥ 1 each", res.ShardDowns, res.ShardUps)
	}
	if res.ShardRebalances == 0 {
		t.Error("no daemon rerouted the dead shard's key range")
	}
	if res.ShardRejoins == 0 {
		t.Error("no daemon routed the key range home on shard recovery")
	}
	if res.ShardBackfilled == 0 {
		t.Error("no history determinants were backfilled")
	}
	if want := ringExpect(n, rounds); finals[0] != want {
		t.Errorf("token = %d, want %d", finals[0], want)
	}
	if rep := Audit(res); !rep.OK() {
		t.Errorf("%s", rep.Summary())
	}
	if hb := AuditTrace(res); !hb.OK() {
		t.Errorf("%s", hb.Summary())
	}
	t.Logf("downs=%d ups=%d rebalances=%d rejoins=%d backfilled=%d restarts=%d logged=%d",
		res.ShardDowns, res.ShardUps, res.ShardRebalances, res.ShardRejoins,
		res.ShardBackfilled, res.Restarts, res.ELLogged)
}

// TestFleetShardedDeterminism: two identical sharded runs produce the
// same virtual-time result — the fleet layer adds no nondeterminism.
func TestFleetShardedDeterminism(t *testing.T) {
	run := func() time.Duration {
		finals := make([]uint64, 6)
		res := Run(Config{
			Impl: V2, N: 6,
			ELShards: 3, ShardSeed: 9,
		}, ringProgram(10, finals))
		return res.Elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("sharded runs diverged: %v vs %v", a, b)
	}
}
