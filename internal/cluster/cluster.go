// Package cluster assembles complete MPICH-V2 / P4 / V1 systems inside
// the virtual-time simulator: computing nodes with their daemons and MPI
// processes, the event logger, the checkpoint server, the checkpoint
// scheduler, and the dispatcher with its fault-injection plan. It is the
// harness every experiment and integration test drives.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"mpichv/internal/ckpt"
	"mpichv/internal/core"
	"mpichv/internal/daemon"
	"mpichv/internal/dispatcher"
	"mpichv/internal/eventlog"
	"mpichv/internal/mpi"
	"mpichv/internal/netsim"
	"mpichv/internal/sched"
	"mpichv/internal/shard"
	"mpichv/internal/trace"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
)

// Impl selects the MPI implementation.
type Impl int

// The three implementations the paper compares.
const (
	V2 Impl = iota
	P4
	V1
)

// String names the implementation.
func (i Impl) String() string {
	switch i {
	case V2:
		return "MPICH-V2"
	case P4:
		return "MPICH-P4"
	case V1:
		return "MPICH-V1"
	}
	return "?"
}

// Node id layout. Computing nodes use their rank; services sit in the
// auxiliary range (slower machines in the paper's testbed).
const (
	ELNode    = 1000
	CSNode    = 1001
	SchedNode = 1002
	DispNode  = 1003
	ELBase    = 1100 // additional event loggers when Config.EventLoggers > 1
	CSBase    = 1200 // additional checkpoint servers when Config.CkptServers > 1
	CMBase    = 2000
)

// elNodeFor maps a rank to its event logger's node id (§4.5: "every
// communication daemon must be connected to exactly one event logger").
func elNodeFor(rank, nEL int) int {
	if nEL <= 1 {
		return ELNode
	}
	return ELBase + rank%nEL
}

// csNodeFor maps a rank to its checkpoint server's node id ("a set of
// reliable remote checkpoint servers", §2).
func csNodeFor(rank, nCS int) int {
	if nCS <= 1 {
		return CSNode
	}
	return CSBase + rank%nCS
}

// Program is an MPI application: it runs once per rank.
type Program func(p *mpi.Proc)

// Config describes one system run.
type Config struct {
	Impl Impl
	N    int // number of MPI processes

	// Params is the network/time model; zero value means Params2003.
	Params netsim.Params

	// EventLoggers is the number of event loggers (default 1); ranks
	// are assigned round-robin. Loggers never talk to each other
	// (§4.5).
	EventLoggers int

	// ELReplicas switches the event-log service from partitioned
	// frontends over one store to a replica group of that many servers
	// (at ELBase+i), each with its OWN independent store. Every daemon
	// submits each event batch to all replicas and WAITLOGGED is
	// released only once ELQuorum of them acked; a respawned replica
	// comes back empty and anti-entropy resyncs from its peers.
	// Overrides EventLoggers when > 0.
	ELReplicas int
	// ELQuorum is the write quorum (default: majority, R/2+1).
	ELQuorum int
	// CSReplicas/CSQuorum mirror the scheme for the checkpoint service
	// (effective only with Checkpointing; CSReplicas defaults to
	// ELReplicas so one knob turns on full replication).
	CSReplicas int
	CSQuorum   int

	// ELShards splits the event-logger service into that many replica
	// groups (shards). Each shard is its own ELReplicas/ELQuorum quorum
	// group; the daemons place every channel (sender, receiver) on a
	// shard through the deterministic consistent-hash ring seeded by
	// ShardSeed, gate WAITLOGGED per shard, and union the shards' logs
	// at restart. When a shard loses its write quorum the dispatcher
	// broadcasts the outage and its key range rides on the ring
	// successor until the respawns bring it back (ELReplicas defaults
	// to 1 per shard). 0 or 1 means the unsharded layouts above.
	ELShards int
	// CSShards mirrors the split for the checkpoint service: each rank
	// checkpoints to the replica group its rank hashes to.
	CSShards int
	// ShardSeed seeds the placement ring (any value; runs with equal
	// seeds place identically).
	ShardSeed uint64
	// ShardRespawnDelay is the extra time a killed service replica
	// takes to re-provision beyond fault detection. Zero keeps respawn
	// at the detection instant, which heals a shard before its outage
	// broadcast fires.
	ShardRespawnDelay time.Duration

	// Checkpointing runs the checkpoint server and scheduler.
	Checkpointing bool
	// CkptServers is the number of checkpoint servers (default 1);
	// ranks are assigned round-robin.
	CkptServers int
	// EventBatching makes daemons accumulate reception events while an
	// event-logger exchange is in flight and submit them as one batch,
	// reducing logger load (the asynchronous-submission optimization
	// of §4.5).
	EventBatching bool
	// ELWindow, when positive, pipelines determinant logging with up
	// to ELWindow event batches in flight per daemon (1 = explicit
	// stop-and-wait; 0 = legacy behavior). See daemon.Config.ELWindow.
	ELWindow int
	// DetMode selects the determinant-suppression policy of V2 daemons
	// (daemon.DetOff/DetAdaptive/DetAggressive); see
	// daemon.Config.DetMode. DetEpoch/DetPiggyMax tune the epoch batch
	// size and the piggyback backlog cap (0 = daemon defaults).
	DetMode     int
	DetEpoch    int
	DetPiggyMax int
	// Policy is the checkpoint scheduling policy (default round
	// robin).
	Policy sched.Policy
	// SchedPeriod is the scheduler round period.
	SchedPeriod time.Duration

	// CMFanIn is how many computing nodes share one Channel Memory in
	// a V1 run (default 1, the configuration of the paper's
	// bandwidth/latency comparison).
	CMFanIn int

	// Faults is the injection plan.
	Faults []dispatcher.Fault
	// DetectionDelay before the dispatcher notices a death (default
	// 100 ms, a conservative socket-error latency).
	DetectionDelay time.Duration

	// EagerLimit overrides Params.EagerLimit when nonzero.
	EagerLimit int

	// NoSendGating disables the WAITLOGGED barrier on V2 daemons
	// (ablation benchmarks only; breaks the fault-tolerance
	// guarantee).
	NoSendGating bool

	// Chaos injects deterministic per-frame link faults (drop,
	// duplication, jitter, corruption, partitions) by wrapping the
	// fabric in a transport.ChaosFabric. The zero value leaves the
	// fabric reliable.
	Chaos transport.ChaosPolicy

	// RestartTimeout and PullTimeout override the V2 daemons' recovery
	// handshake and starvation-pull timers. Zero means automatic:
	// enabled with conservative bases when Chaos can lose frames,
	// disabled on a reliable fabric (the paper's configuration);
	// negative disables explicitly.
	RestartTimeout time.Duration
	PullTimeout    time.Duration

	// CkptChunk is the chunked checkpoint transfer's chunk size in
	// bytes (0 = daemon default, negative = monolithic saves); see
	// daemon.Config.CkptChunkSize.
	CkptChunk int
	// CkptNoDelta ships full images on every checkpoint (ablation);
	// see daemon.Config.CkptNoDelta.
	CkptNoDelta bool

	// Trace enables causal tracing: every V2 daemon records its
	// protocol transitions into a per-rank ring (shared across that
	// rank's incarnations) and Result.Trace carries the merged,
	// time-ordered trace for the happens-before auditor and the
	// critical-path extractor. Payload frames grow by a span-id field
	// while tracing; disabled (the default), the wire format and the
	// send path are byte-for-byte identical to an untraced build.
	Trace bool
	// TraceCap overrides the per-rank ring capacity
	// (trace.DefaultRecorderCap when zero).
	TraceCap int
}

// Result carries everything the experiments measure.
type Result struct {
	Elapsed  time.Duration  // virtual time until every rank finalized
	PerRank  []*trace.Stats // per-rank MPI call decomposition (last incarnation)
	Daemons  []daemon.Stats // per-rank daemon counters (last incarnation)
	Restarts int
	Kills    int

	// Service failover accounting.
	ServiceKills    int
	ServiceRestarts int

	ELLogged    int64 // reception events stored by the event loggers
	CkptSaves   int64
	CkptBytes   int64
	NetMessages int64
	NetBytes    int64

	// Robustness machinery accounting, summed over the last
	// incarnation of every daemon plus the service stores.
	Retransmits  int64 // timed-out requests re-sent
	Pulls        int64 // starvation-triggered pull announcements
	Failovers    int64 // daemon re-homings to backup services
	Malformed    int64 // undecodable frames seen by daemons and services
	ELDuplicates int64 // re-submitted events deduplicated by the loggers

	// Sharded-fleet accounting (zero outside ELShards > 1).
	ELShardN        int   // configured EL shard count
	ShardDowns      int   // dispatcher shard-outage broadcasts
	ShardUps        int   // dispatcher shard-recovery broadcasts
	ShardRebalances int64 // daemon reroutes of a dead shard's key range
	ShardRejoins    int64 // daemon route-home transitions on shard recovery
	ShardBackfilled int64 // history determinants re-logged to successors/rejoiners

	// Quorum replication accounting (zero outside quorum mode).
	ELReplicaN      int   // configured replica count R
	ELWriteQuorum   int   // configured write quorum Q
	QuorumAcks      int64 // batches/saves completed at their write quorum
	BelowQuorumAcks int64 // payloads sent below quorum — must stay 0 with gating on
	DegradedReads   int64 // restart fetches settled below the read quorum
	CorruptImages   int64 // fetched checkpoint images rejected by integrity checks
	ReplayDropped   int64 // replay events truncated at a channel-sequence gap
	StaleRejects    int64 // checkpoint saves refused for regressing the stored seq
	Resyncs         int64 // replica anti-entropy rounds completed
	SyncedEvents    int64 // events + images replicas pulled from peers while resyncing

	// Incremental chunked checkpointing accounting. CkptShippedBytes is
	// what the daemons pushed onto the wire (delta-reduced); CkptBytes
	// above is what the stores hold after materialization.
	CkptShippedBytes int64
	DeltaCkpts       int64 // checkpoints shipped as deltas
	ChunkRetransmits int64 // checkpoint chunks re-sent after a timeout
	ManifestFetches  int64 // restart-time manifest gathers (chunked fast path)
	ChainCompactions int64 // superseded chain images compacted by the stores
	ChainBreaks      int64 // deltas that arrived at a store missing their base

	// Determinant-suppression accounting (zero with DetMode off),
	// summed over the last incarnation of every daemon.
	DetSuppressed  int64 // determinants kept off the WAITLOGGED gate
	DetForced      int64 // determinants logged on the full pessimistic path
	DetPiggybacked int64 // suppressed determinants carried on payload frames
	DetRelayed     int64 // foreign determinants relayed to the EL by receivers
	DetRegenerated int64 // replay holes filled by regenerating a delivery
	DetPoisoned    int64 // channels latched back to pessimistic logging

	// Frames touched by the chaos fabric (zero without Chaos).
	ChaosDropped     int64
	ChaosDuplicated  int64
	ChaosDelayed     int64
	ChaosCorrupted   int64
	ChaosTruncated   int64
	ChaosPartitioned int64

	// Deliveries[r] is rank r's delivery sequence as recorded by the
	// event loggers, ordered by reception clock — the protocol's source
	// of truth for re-execution. Within one run, a replayed process
	// follows it exactly. Across runs, each sender→receiver channel
	// delivers the same gap-free message sequence, but the interleaving
	// of different senders is the reception nondeterminism the log
	// exists to capture and may legitimately differ. In quorum mode it
	// is the deduplicated union of all replica logs.
	Deliveries [][]core.Event

	// ELReplicaDeliveries[i][r] is replica i's copy of rank r's
	// delivery log (quorum mode only) — the raw per-store view the
	// recovery auditor cross-checks for quorum-survivable divergence.
	ELReplicaDeliveries [][][]core.Event

	// Trace is the merged causal trace of the run (Config.Trace only):
	// the input of trace.AuditHB and trace.ExtractCriticalPath.
	Trace *trace.Trace

	// Metrics is the run's uniform metrics registry: every subsystem's
	// counters under a stable namespace (daemon.*, el.*, ckpt.*,
	// chaos.*, run.*), plus trace-derived histograms (waitlogged stall
	// durations, payload sizes, restart durations) when tracing was
	// enabled. This is what vbench -json exports.
	Metrics *trace.Registry
}

// Run executes the program on a fresh simulated system and returns the
// measurements. It is deterministic: the same config and program produce
// the same result.
func Run(cfg Config, prog Program) Result {
	var res Result
	sim := vtime.NewSim()
	sim.Run(func() {
		res = runInSim(sim, cfg, prog)
	})
	return res
}

func runInSim(sim *vtime.Sim, cfg Config, prog Program) Result {
	if cfg.Params.Bandwidth == 0 {
		cfg.Params = netsim.Params2003()
	}
	if cfg.Impl == P4 {
		cfg.Params.HalfDuplexPairs = true
	}
	if cfg.EagerLimit > 0 {
		cfg.Params.EagerLimit = cfg.EagerLimit
	}
	if cfg.DetectionDelay <= 0 {
		cfg.DetectionDelay = 100 * time.Millisecond
	}
	if cfg.CMFanIn <= 0 {
		cfg.CMFanIn = 1
	}
	if cfg.Policy == nil {
		cfg.Policy = &sched.RoundRobin{}
	}
	if cfg.ELShards > 1 && cfg.ELReplicas <= 0 {
		cfg.ELReplicas = 1
	}
	if cfg.CSShards > 1 && cfg.Checkpointing && cfg.CSReplicas <= 0 {
		cfg.CSReplicas = 1
	}
	if cfg.ELReplicas > 0 {
		if cfg.ELQuorum <= 0 {
			cfg.ELQuorum = cfg.ELReplicas/2 + 1
		}
		if cfg.ELQuorum > cfg.ELReplicas {
			cfg.ELQuorum = cfg.ELReplicas
		}
		if cfg.Checkpointing && cfg.CSReplicas <= 0 {
			cfg.CSReplicas = cfg.ELReplicas
		}
	}
	if cfg.CSReplicas > 0 {
		if cfg.CSQuorum <= 0 {
			cfg.CSQuorum = cfg.CSReplicas/2 + 1
		}
		if cfg.CSQuorum > cfg.CSReplicas {
			cfg.CSQuorum = cfg.CSReplicas
		}
	}

	classify := func(id int) netsim.Class {
		if id >= ELNode && id < CMBase {
			return netsim.ClassService
		}
		return netsim.ClassCompute
	}
	net := netsim.New(sim, cfg.Params)
	var fab transport.Fabric = transport.NewSimFabric(sim, net, classify)
	var chaos *transport.ChaosFabric
	if cfg.Chaos.Active() {
		chaos = transport.NewChaosFabric(sim, fab, cfg.Chaos)
		fab = chaos
	}

	h := &harness{sim: sim, cfg: cfg, fab: fab, prog: prog}
	h.perRank = make([]*trace.Stats, cfg.N)
	h.daemons = make([]daemon.Stats, cfg.N)
	h.v2ds = make([]*daemon.V2, cfg.N)
	h.spawns = make([]uint64, cfg.N)
	if cfg.Trace {
		// One recorder per rank for the life of the run: respawned
		// incarnations append to their predecessor's ring, so the
		// auditor sees the rank's whole history across crashes.
		h.recorders = make([]*trace.Recorder, cfg.N)
		for r := range h.recorders {
			h.recorders[r] = trace.NewRecorder(r, cfg.TraceCap)
		}
	}

	// Services. In the legacy (partitioned / failover) configurations
	// every frontend of a kind shares one stable store, so a respawned
	// or backup instance serves exactly what its predecessor stored —
	// the paper's reliable-service assumption, with only the frontend
	// process being volatile. In quorum mode each replica owns an
	// INDEPENDENT store: a killed replica loses it, and the respawn
	// comes back empty and anti-entropy resyncs from its peers.
	switch cfg.Impl {
	case V2:
		if cfg.ELShards > 1 {
			// Sharded fleet: shard k's replica group lives at
			// ELBase + k*stride + i, each group an independent quorum.
			stride := cfg.ELReplicas
			if cfg.ELShards*stride > CSBase-ELBase {
				panic(fmt.Sprintf("cluster: %d EL shards × %d replicas exceed the %d-node service range",
					cfg.ELShards, stride, CSBase-ELBase))
			}
			h.elQ = cfg.ELQuorum
			h.elStores = make(map[int]*eventlog.Store)
			h.elShardGroups = make([][]int, cfg.ELShards)
			h.elShardOf = make(map[int]int)
			for k := 0; k < cfg.ELShards; k++ {
				for i := 0; i < stride; i++ {
					n := ELBase + k*stride + i
					h.elShardGroups[k] = append(h.elShardGroups[k], n)
					h.elShardOf[n] = k
					h.elNodes = append(h.elNodes, n)
				}
			}
		} else if cfg.ELReplicas > 0 {
			h.elQ = cfg.ELQuorum
			h.elStores = make(map[int]*eventlog.Store)
			for i := 0; i < cfg.ELReplicas; i++ {
				h.elNodes = append(h.elNodes, ELBase+i)
			}
		} else if cfg.EventLoggers <= 1 {
			h.elNodes = []int{ELNode}
		} else {
			for i := 0; i < cfg.EventLoggers; i++ {
				h.elNodes = append(h.elNodes, ELBase+i)
			}
		}
		if h.elStores == nil {
			h.elStore = eventlog.NewStore()
		}
		for _, n := range h.elNodes {
			h.startEL(n, false)
		}
		if cfg.Checkpointing {
			if cfg.CSShards > 1 {
				stride := cfg.CSReplicas
				if cfg.CSShards*stride > CMBase-CSBase {
					panic(fmt.Sprintf("cluster: %d CS shards × %d replicas exceed the %d-node service range",
						cfg.CSShards, stride, CMBase-CSBase))
				}
				h.csQ = cfg.CSQuorum
				h.csStores = make(map[int]*ckpt.Store)
				h.csShardGroups = make([][]int, cfg.CSShards)
				h.csRing = shard.New(cfg.CSShards, cfg.ShardSeed+1)
				for k := 0; k < cfg.CSShards; k++ {
					for i := 0; i < stride; i++ {
						n := CSBase + k*stride + i
						h.csShardGroups[k] = append(h.csShardGroups[k], n)
						h.csNodes = append(h.csNodes, n)
					}
				}
			} else if cfg.CSReplicas > 0 {
				h.csQ = cfg.CSQuorum
				h.csStores = make(map[int]*ckpt.Store)
				for i := 0; i < cfg.CSReplicas; i++ {
					h.csNodes = append(h.csNodes, CSBase+i)
				}
			} else if cfg.CkptServers <= 1 {
				h.csNodes = []int{CSNode}
			} else {
				for i := 0; i < cfg.CkptServers; i++ {
					h.csNodes = append(h.csNodes, CSBase+i)
				}
			}
			if h.csStores == nil {
				h.csStore = ckpt.NewStore()
			}
			for _, n := range h.csNodes {
				h.startCS(n, false)
			}
			sched.Start(sim, fab, sched.Config{
				Node:   SchedNode,
				Ranks:  ranks(cfg.N),
				Policy: cfg.Policy,
				Period: cfg.SchedPeriod,
			})
		}
	case V1:
		ncm := (cfg.N + cfg.CMFanIn - 1) / cfg.CMFanIn
		for i := 0; i < ncm; i++ {
			daemon.StartChannelMemory(sim, fab, CMBase+i)
		}
	}

	// Dispatcher with the fault plan; it also monitors the service
	// frontends and respawns crashed ones over their stores.
	dpcfg := dispatcher.Config{
		Node:           DispNode,
		Ranks:          cfg.N,
		Faults:         cfg.Faults,
		DetectionDelay: cfg.DetectionDelay,
		Kill:           func(rank int) { fab.Kill(rank) },
		Respawn:        func(rank int) { h.spawn(rank, true) },
		Services:       append(append([]int{}, h.elNodes...), h.csNodes...),
		RespawnService: h.respawnService,
	}
	if len(h.elShardGroups) > 1 {
		dpcfg.ELShardOf = h.elShardOf
		dpcfg.ELShardQuorum = cfg.ELQuorum
		dpcfg.ServiceRespawnDelay = cfg.ShardRespawnDelay
	}
	h.disp = dispatcher.Start(sim, fab, dpcfg)

	start := sim.Now()
	for r := 0; r < cfg.N; r++ {
		h.spawn(r, false)
	}

	// Wait for completion.
	if _, ok := h.disp.Done().Recv(); !ok {
		panic("cluster: dispatcher terminated before completion")
	}

	res := Result{
		Elapsed:         sim.Now() - start,
		PerRank:         h.perRank,
		Daemons:         h.daemons,
		Restarts:        h.disp.Restarts,
		Kills:           h.disp.Kills,
		ServiceKills:    h.disp.ServiceKills,
		ServiceRestarts: h.disp.ServiceRestarts,
		NetMessages:     net.Messages,
		NetBytes:        net.Bytes,
	}
	for r := 0; r < cfg.N; r++ {
		if h.v2ds[r] != nil {
			res.Daemons[r] = h.v2ds[r].Stats()
		}
	}
	for _, st := range res.Daemons {
		res.Retransmits += st.Retransmits
		res.Pulls += st.Pulls
		res.Failovers += st.Failovers
		res.Malformed += st.Malformed
		res.QuorumAcks += st.QuorumAcks
		res.BelowQuorumAcks += st.BelowQuorumAcks
		res.DegradedReads += st.DegradedReads
		res.CorruptImages += st.CorruptImages
		res.ReplayDropped += st.ReplayDropped
		res.CkptShippedBytes += st.CkptBytes
		res.DeltaCkpts += st.DeltaCkpts
		res.ChunkRetransmits += st.ChunkRetransmits
		res.ManifestFetches += st.ManifestFetches
		res.DetSuppressed += st.DetSuppressed
		res.DetForced += st.DetForced
		res.DetPiggybacked += st.DetPiggybacked
		res.DetRelayed += st.DetRelayed
		res.DetRegenerated += st.DetRegenerated
		res.DetPoisoned += st.DetPoisoned
		res.ShardRebalances += st.ShardRebalances
		res.ShardRejoins += st.ShardRejoins
		res.ShardBackfilled += st.ShardBackfilled
	}
	res.ELShardN = len(h.elShardGroups)
	res.ShardDowns = h.disp.ShardDowns
	res.ShardUps = h.disp.ShardUps
	res.ELReplicaN = cfg.ELReplicas
	res.ELWriteQuorum = cfg.ELQuorum
	switch {
	case h.elStores != nil:
		res.ELReplicaDeliveries = make([][][]core.Event, 0, len(h.elNodes))
		for _, n := range h.elNodes {
			st := h.elStores[n]
			s := st.Stats()
			res.ELLogged += s.Logged
			res.ELDuplicates += s.Duplicates
			res.Malformed += s.Malformed
			res.Resyncs += s.Resyncs
			res.SyncedEvents += s.SyncedIn
			per := make([][]core.Event, cfg.N)
			for r := 0; r < cfg.N; r++ {
				per[r] = st.Events(r, 0)
			}
			res.ELReplicaDeliveries = append(res.ELReplicaDeliveries, per)
		}
		res.Deliveries = mergeReplicaDeliveries(cfg.N, res.ELReplicaDeliveries)
	case h.elStore != nil:
		s := h.elStore.Stats()
		res.ELLogged = s.Logged
		res.ELDuplicates = s.Duplicates
		res.Malformed += s.Malformed
		res.Deliveries = make([][]core.Event, cfg.N)
		for r := 0; r < cfg.N; r++ {
			res.Deliveries[r] = h.elStore.Events(r, 0)
		}
	}
	switch {
	case h.csStores != nil:
		for _, n := range h.csNodes {
			s := h.csStores[n].Stats()
			res.CkptSaves += s.Saves
			res.CkptBytes += s.SavedBytes
			res.Malformed += s.Malformed
			res.StaleRejects += s.StaleRejects
			res.Resyncs += s.Resyncs
			res.SyncedEvents += s.SyncedIn
			res.ChainCompactions += s.ChainCompactions
			res.ChainBreaks += s.ChainBreaks
		}
	case h.csStore != nil:
		s := h.csStore.Stats()
		res.CkptSaves = s.Saves
		res.CkptBytes = s.SavedBytes
		res.Malformed += s.Malformed
		res.StaleRejects = s.StaleRejects
		res.ChainCompactions = s.ChainCompactions
		res.ChainBreaks = s.ChainBreaks
	}
	if chaos != nil {
		res.ChaosDropped = chaos.Dropped
		res.ChaosDuplicated = chaos.Duplicated
		res.ChaosDelayed = chaos.Delayed
		res.ChaosCorrupted = chaos.Corrupted
		res.ChaosTruncated = chaos.Truncated
		res.ChaosPartitioned = chaos.Partitioned
	}
	if h.recorders != nil {
		res.Trace = trace.Merge(h.recorders...)
	}

	// Uniform metrics export: every subsystem folds its counters into
	// one registry under its namespace, plus run-level gauges and the
	// trace-derived histograms.
	reg := trace.NewRegistry()
	for _, st := range res.Daemons {
		st.AddTo(reg)
	}
	switch {
	case h.elStores != nil:
		for _, n := range h.elNodes {
			h.elStores[n].Stats().AddTo(reg)
		}
	case h.elStore != nil:
		h.elStore.Stats().AddTo(reg)
	}
	switch {
	case h.csStores != nil:
		for _, n := range h.csNodes {
			h.csStores[n].Stats().AddTo(reg)
		}
	case h.csStore != nil:
		h.csStore.Stats().AddTo(reg)
	}
	if chaos != nil {
		chaos.AddTo(reg)
	}
	// Fold the fabric's own counters when it exports any (the TCP
	// fabric's redials, retransmits, dropped frames — "tcp.*"). The
	// chaos wrapper was folded above, so skip it to avoid a double
	// count when the fabric and the wrapper are the same object.
	if am, ok := h.fab.(interface{ AddTo(*trace.Registry) }); ok {
		if chaos == nil || h.fab != transport.Fabric(chaos) {
			am.AddTo(reg)
		}
	}
	reg.Gauge("run.elapsed_us").Set(float64(res.Elapsed) / float64(time.Microsecond))
	reg.Gauge("run.ranks").Set(float64(cfg.N))
	reg.Counter("run.kills").Add(int64(res.Kills))
	reg.Counter("run.restarts").Add(int64(res.Restarts))
	reg.Counter("run.service_kills").Add(int64(res.ServiceKills))
	reg.Counter("run.service_restarts").Add(int64(res.ServiceRestarts))
	reg.Counter("run.shard_downs").Add(int64(res.ShardDowns))
	reg.Counter("run.shard_ups").Add(int64(res.ShardUps))
	reg.Counter("net.messages").Add(res.NetMessages)
	reg.Counter("net.bytes").Add(res.NetBytes)
	if res.Trace != nil {
		wait := reg.Histogram("daemon.waitlogged_us")
		payload := reg.Histogram("daemon.payload_bytes")
		restart := reg.Histogram("daemon.restart_us")
		for i := range res.Trace.Evs {
			ev := &res.Trace.Evs[i]
			switch ev.Kind {
			case trace.EvWaitLogged:
				wait.Observe(float64(ev.A) / float64(time.Microsecond))
			case trace.EvSend:
				payload.Observe(float64(ev.B))
			case trace.EvRestartEnd:
				restart.Observe(float64(ev.B) / float64(time.Microsecond))
			}
		}
		reg.Counter("trace.events").Add(int64(len(res.Trace.Evs)))
		reg.Counter("trace.dropped").Add(res.Trace.Dropped)
	}
	res.Metrics = reg
	return res
}

func ranks(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

type harness struct {
	sim  *vtime.Sim
	cfg  Config
	fab  transport.Fabric
	prog Program

	elNodes  []int
	csNodes  []int
	elStore  *eventlog.Store // shared store (legacy partitioned/failover mode)
	csStore  *ckpt.Store
	elStores map[int]*eventlog.Store // per-replica stores, node → latest incarnation (quorum mode)
	csStores map[int]*ckpt.Store
	elQ, csQ int // write quorums; > 0 selects quorum mode
	disp     *dispatcher.Dispatcher

	// Sharded-fleet layout (Config.ELShards / CSShards > 1).
	elShardGroups [][]int     // shard → its replica node ids
	csShardGroups [][]int
	elShardOf     map[int]int // EL node → shard index (dispatcher liveness tracking)
	csRing        *shard.Ring // rank → CS shard placement

	perRank   []*trace.Stats
	daemons   []daemon.Stats
	v2ds      []*daemon.V2
	spawns    []uint64          // per-rank incarnation counters
	recorders []*trace.Recorder // per-rank trace rings (Config.Trace only)
}

// startEL / startCS attach one service frontend: over the shared store
// in legacy mode, over a fresh independent store (resyncing from peers
// when asked) in quorum mode.
func (h *harness) startEL(node int, resync bool) {
	ep := h.fab.Attach(node, fmt.Sprintf("event-logger@%d", node))
	if h.elQ > 0 {
		st := eventlog.NewStore()
		h.elStores[node] = st
		srv := eventlog.NewServerWithStore(h.sim, ep, h.cfg.Params.ELService, st)
		// Anti-entropy stays within the replica group: in a sharded
		// fleet a replica's peers are its shard siblings, not the whole
		// fleet — shards never talk to each other.
		srv.Peers = othersOf(node, groupOf(node, h.elShardGroups, h.elNodes))
		srv.Resync = resync
		srv.Start()
		return
	}
	eventlog.NewServerWithStore(h.sim, ep, h.cfg.Params.ELService, h.elStore).Start()
}

func (h *harness) startCS(node int, resync bool) {
	ep := h.fab.Attach(node, fmt.Sprintf("ckpt-server@%d", node))
	if h.csQ > 0 {
		st := ckpt.NewStore()
		h.csStores[node] = st
		srv := ckpt.NewServerWithStore(h.sim, ep, st)
		srv.Peers = othersOf(node, groupOf(node, h.csShardGroups, h.csNodes))
		srv.Resync = resync
		srv.Start()
		return
	}
	ckpt.NewServerWithStore(h.sim, ep, h.csStore).Start()
}

// groupOf returns the shard replica group containing node, or all (the
// unsharded fleet) when no groups are configured.
func groupOf(node int, groups [][]int, all []int) []int {
	for _, g := range groups {
		for _, n := range g {
			if n == node {
				return g
			}
		}
	}
	return all
}

// respawnService restarts a crashed service frontend on its node id. In
// quorum mode the replacement starts over an empty store and resyncs.
func (h *harness) respawnService(node int) {
	for _, n := range h.elNodes {
		if n == node {
			h.startEL(node, h.elQ > 0)
			return
		}
	}
	for _, n := range h.csNodes {
		if n == node {
			h.startCS(node, h.csQ > 0)
			return
		}
	}
}

// othersOf returns every node in nodes except self.
func othersOf(self int, nodes []int) []int {
	out := make([]int, 0, len(nodes)-1)
	for _, n := range nodes {
		if n != self {
			out = append(out, n)
		}
	}
	return out
}

// mergeReplicaDeliveries folds the replica logs into one per-rank view:
// identical events deduplicate, and conflicting versions of the same
// (sender, channel-seq) slot resolve exactly as a restarting daemon
// resolves its read quorum — majority replica count, then higher
// RecvClock, then higher SenderClock — so the merged view is what
// recovery would actually replay.
func mergeReplicaDeliveries(n int, replicas [][][]core.Event) [][]core.Event {
	out := make([][]core.Event, n)
	for r := 0; r < n; r++ {
		count := make(map[core.Event]int)
		for _, per := range replicas {
			for _, ev := range per[r] {
				count[ev]++
			}
		}
		type slot struct {
			sender int
			seq    uint64
		}
		best := make(map[slot]core.Event)
		merged := make([]core.Event, 0, len(count))
		for ev, c := range count {
			if ev.Seq == 0 {
				merged = append(merged, ev) // unsequenced legacy event
				continue
			}
			k := slot{ev.Sender, ev.Seq}
			cur, ok := best[k]
			if !ok || c > count[cur] ||
				(c == count[cur] && (ev.RecvClock > cur.RecvClock ||
					(ev.RecvClock == cur.RecvClock && ev.SenderClock > cur.SenderClock))) {
				best[k] = ev
			}
		}
		for _, ev := range best {
			merged = append(merged, ev)
		}
		sort.Slice(merged, func(i, j int) bool {
			if merged[i].RecvClock != merged[j].RecvClock {
				return merged[i].RecvClock < merged[j].RecvClock
			}
			if merged[i].Sender != merged[j].Sender {
				return merged[i].Sender < merged[j].Sender
			}
			return merged[i].Seq < merged[j].Seq
		})
		out[r] = merged
	}
	return out
}

// backupsFor returns every service node in nodes except primary, in
// ring order starting after it, so failover load spreads.
func backupsFor(primary int, nodes []int) []int {
	if len(nodes) <= 1 {
		return nil
	}
	idx := 0
	for i, n := range nodes {
		if n == primary {
			idx = i
			break
		}
	}
	out := make([]int, 0, len(nodes)-1)
	for i := 1; i < len(nodes); i++ {
		out = append(out, nodes[(idx+i)%len(nodes)])
	}
	return out
}

// spawn starts (or restarts) the daemon and MPI process of one rank.
func (h *harness) spawn(rank int, restarted bool) {
	cfg := h.cfg
	dcfg := daemon.Config{
		Rank:        rank,
		Size:        cfg.N,
		EventLogger: -1,
		CkptServer:  -1,
		Scheduler:   -1,
		Dispatcher:  DispNode,
		UnixDelay:   cfg.Params.UnixOverhead,
		Restarted:   restarted,
		Incarnation: h.spawns[rank],
	}
	h.spawns[rank]++
	var dev daemon.Device
	switch cfg.Impl {
	case V2:
		if len(h.elShardGroups) > 0 {
			dcfg.ELShardGroups = h.elShardGroups
			dcfg.ELShardSeed = cfg.ShardSeed
			dcfg.ELQuorum = cfg.ELQuorum
		} else if cfg.ELReplicas > 0 {
			dcfg.ELReplicas = append([]int(nil), h.elNodes...)
			dcfg.ELQuorum = cfg.ELQuorum
		} else {
			nEL := cfg.EventLoggers
			if nEL < 1 {
				nEL = 1
			}
			dcfg.EventLogger = elNodeFor(rank, nEL)
			dcfg.ELBackups = backupsFor(dcfg.EventLogger, h.elNodes)
		}
		dcfg.Scheduler = SchedNode
		if cfg.Checkpointing {
			if h.csRing != nil {
				// Each rank checkpoints to the one CS shard its rank
				// hashes to — checkpoint load spreads across shards
				// without any cross-shard protocol, since an image
				// belongs to exactly one rank.
				dcfg.CSReplicas = h.csShardGroups[h.csRing.Owner(rank, rank)]
				dcfg.CSQuorum = cfg.CSQuorum
			} else if cfg.CSReplicas > 0 {
				dcfg.CSReplicas = append([]int(nil), h.csNodes...)
				dcfg.CSQuorum = cfg.CSQuorum
			} else {
				nCS := cfg.CkptServers
				if nCS < 1 {
					nCS = 1
				}
				dcfg.CkptServer = csNodeFor(rank, nCS)
				dcfg.CSBackups = backupsFor(dcfg.CkptServer, h.csNodes)
			}
		}
		// On a fabric that can lose frames, the paper's fire-and-forget
		// RESTART1 handshake and the push-only receive path are not
		// live; enable the handshake confirmation and the starvation
		// pull with conservative bases.
		dcfg.RestartTimeout = cfg.RestartTimeout
		dcfg.PullTimeout = cfg.PullTimeout
		if cfg.Chaos.Lossy() {
			if dcfg.RestartTimeout == 0 {
				dcfg.RestartTimeout = 25 * time.Millisecond
			}
			if dcfg.PullTimeout == 0 {
				dcfg.PullTimeout = 50 * time.Millisecond
			}
		}
		dcfg.EventBatching = cfg.EventBatching
		dcfg.ELWindow = cfg.ELWindow
		dcfg.DetMode = cfg.DetMode
		dcfg.DetEpoch = cfg.DetEpoch
		dcfg.DetPiggyMax = cfg.DetPiggyMax
		dcfg.NoSendGating = cfg.NoSendGating
		dcfg.CkptChunkSize = cfg.CkptChunk
		dcfg.CkptNoDelta = cfg.CkptNoDelta
		dcfg.UnixCopyPerByte = cfg.Params.UnixCopyPerByte
		dcfg.PipelineLimit = cfg.Params.EagerLimit
		dcfg.LogCopyPerByte = cfg.Params.LogCopyPerByte
		dcfg.DiskCopyPerByte = cfg.Params.DiskCopyPerByte
		dcfg.LogMemLimit = cfg.Params.LogMemLimit
		dcfg.LogHardLimit = cfg.Params.LogHardLimit
		if h.recorders != nil {
			dcfg.Tracer = h.recorders[rank]
		}
		var d2 *daemon.V2
		dev, d2 = daemon.StartV2(h.sim, h.fab, dcfg)
		h.v2ds[rank] = d2
	case P4:
		dcfg.UnixDelay = 0 // the P4 driver lives inside the MPI process
		dev, _ = daemon.StartP4(h.sim, h.fab, dcfg, cfg.Params.Bandwidth)
	case V1:
		dcfg.UnixCopyPerByte = cfg.Params.UnixCopyPerByte
		dcfg.PipelineLimit = cfg.Params.EagerLimit
		dcfg.ChannelMemory = func(r int) int { return CMBase + r/cfg.CMFanIn }
		dev, _ = daemon.StartV1(h.sim, h.fab, dcfg)
	}

	opts := mpi.Options{
		EagerLimit:   cfg.Params.EagerLimit,
		EagerInIsend: cfg.Impl == P4,
		FlopRate:     cfg.Params.FlopRate,
	}
	h.sim.Go(fmt.Sprintf("rank%d", rank), func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(daemon.Killed); ok {
					return // the node crashed; the dispatcher respawns it
				}
				panic(r)
			}
		}()
		p := mpi.Start(dev, h.sim, opts)
		h.prog(p)
		p.Finalize()
		h.perRank[rank] = p.Stats()
	})
}
