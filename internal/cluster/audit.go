package cluster

import (
	"fmt"
	"sort"

	"mpichv/internal/core"
	"mpichv/internal/trace"
)

// AuditTrace runs the happens-before auditor over the run's causal
// trace. It complements Audit: Audit cross-checks the event loggers'
// merged view of deliveries, while AuditTrace checks the ordering the
// daemons actually executed — determinant durability before any
// dependent send, replay in original receiver-clock order, GC only
// behind announced checkpoint horizons. The run must have been made
// with Config.Trace set; a run without a trace audits vacuously green.
func AuditTrace(res Result) trace.HBReport {
	return trace.AuditHB(res.Trace)
}

// AuditReport is the verdict of the post-run recovery auditor: a
// machine-checkable statement that the piecewise-determinism invariants
// of the pessimistic logging protocol held for one run. An empty
// violation set means every delivery a surviving process could have
// observed is durably logged and replayable — no orphan processes.
type AuditReport struct {
	Ranks      int // ranks audited
	Events     int // events in the merged (post-supersession) logs
	Superseded int // replica-divergent (sender, channel-seq) slots resolved by majority

	// Orphans are per-channel sequence holes: a delivery that some later
	// logged delivery proves happened, yet whose own event survives on
	// no replica. A restart could not replay past it, so any process
	// depending on it would be orphaned.
	Orphans []string
	// ClockViolations are per-rank reception-clock order breaches:
	// duplicate or non-increasing RecvClocks in one rank's merged log,
	// the signature of divergent incarnations both surviving in the
	// replica group.
	ClockViolations []string
	// FIFOViolations are per-channel sender-clock order breaches: the
	// log claims a channel delivered messages out of emission order,
	// which the FIFO channel model makes impossible in a real run.
	FIFOViolations []string
}

// OK reports whether the run passed every invariant.
func (a AuditReport) OK() bool {
	return len(a.Orphans) == 0 && len(a.ClockViolations) == 0 && len(a.FIFOViolations) == 0
}

// Summary renders a one-line verdict for experiment tables and logs.
func (a AuditReport) Summary() string {
	if a.OK() {
		return fmt.Sprintf("audit OK: %d ranks, %d events, %d superseded", a.Ranks, a.Events, a.Superseded)
	}
	return fmt.Sprintf("audit FAILED: %d orphans, %d clock violations, %d fifo violations (%d ranks, %d events)",
		len(a.Orphans), len(a.ClockViolations), len(a.FIFOViolations), a.Ranks, a.Events)
}

// Audit checks the piecewise-determinism invariants over a finished
// run's event logs. It consumes the merged per-rank delivery view
// (Result.Deliveries) and, in quorum mode, the raw per-replica logs for
// supersession accounting. Events with Seq == 0 predate channel
// sequencing and are exempt from the contiguity check.
func Audit(res Result) AuditReport {
	rep := AuditReport{Ranks: len(res.Deliveries)}

	// Supersession accounting: a (rank, sender, channel-seq) slot where
	// replicas hold differing events is the trace of an incarnation
	// that died mid-quorum; the merge kept the majority version, the
	// rest are superseded. Informational — divergence a quorum absorbs
	// is not a violation.
	type slot struct {
		sender int
		seq    uint64
	}
	for r := 0; r < len(res.Deliveries); r++ {
		variants := make(map[slot]map[core.Event]bool)
		for _, per := range res.ELReplicaDeliveries {
			for _, ev := range per[r] {
				if ev.Seq == 0 {
					continue
				}
				k := slot{ev.Sender, ev.Seq}
				if variants[k] == nil {
					variants[k] = make(map[core.Event]bool)
				}
				variants[k][ev] = true
			}
		}
		for _, vs := range variants {
			rep.Superseded += len(vs) - 1
		}
	}

	for r, evs := range res.Deliveries {
		rep.Events += len(evs)

		// A rank's reception clock strictly orders its deliveries; the
		// merged log is sorted by it, so any tie is two incarnations
		// claiming the same delivery slot.
		for i := 1; i < len(evs); i++ {
			if evs[i].RecvClock <= evs[i-1].RecvClock {
				rep.ClockViolations = append(rep.ClockViolations,
					fmt.Sprintf("rank %d: deliveries %d and %d share reception clock %d",
						r, i-1, i, evs[i].RecvClock))
			}
		}

		bySender := make(map[int][]core.Event)
		for _, ev := range evs {
			bySender[ev.Sender] = append(bySender[ev.Sender], ev)
		}
		senders := make([]int, 0, len(bySender))
		for s := range bySender {
			senders = append(senders, s)
		}
		sort.Ints(senders)
		for _, s := range senders {
			ch := bySender[s]

			// FIFO: along one channel, delivery order must match
			// emission order (the sender's clock at emission).
			for i := 1; i < len(ch); i++ {
				if ch[i].SenderClock <= ch[i-1].SenderClock {
					rep.FIFOViolations = append(rep.FIFOViolations,
						fmt.Sprintf("channel %d→%d: sender clock %d delivered after %d",
							s, r, ch[i].SenderClock, ch[i-1].SenderClock))
				}
			}

			// Gap-freedom: the channel sequence numbers present must be
			// exactly {1..max}. A hole is an orphan — a later logged
			// delivery proves the missing one happened, but no replica
			// can replay it.
			seen := make(map[uint64]bool, len(ch))
			var max uint64
			sequenced := false
			for _, ev := range ch {
				if ev.Seq == 0 {
					continue
				}
				sequenced = true
				seen[ev.Seq] = true
				if ev.Seq > max {
					max = ev.Seq
				}
			}
			if !sequenced {
				continue
			}
			for q := uint64(1); q <= max; q++ {
				if !seen[q] {
					rep.Orphans = append(rep.Orphans,
						fmt.Sprintf("channel %d→%d: sequence %d missing (log reaches %d)", s, r, q, max))
				}
			}
		}
	}
	return rep
}
