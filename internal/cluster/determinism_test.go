package cluster

import (
	"reflect"
	"testing"
	"time"

	"mpichv/internal/transport"
)

// TestELWindowDeterminismUnderChaos is the guard on the pipelined
// determinant window: under the same seeded link chaos, a run with
// stop-and-wait logging (ELWindow=1) and a run with a deep window
// (ELWindow=8) must produce the exact same application transcript —
// the window changes when WAITLOGGED releases, never what the
// application observes — and both must audit clean.
func TestELWindowDeterminismUnderChaos(t *testing.T) {
	const n, rounds = 4, 15
	// Link-only chaos (no kills): with faults, the two runs legitimately
	// interleave receptions differently before the crash, and replay
	// pins each run only to its own pre-crash order.
	pol := transport.ChaosPolicy{
		Seed:      7,
		Drop:      0.02,
		Duplicate: 0.01,
		Delay:     0.05,
		MaxDelay:  200 * time.Microsecond,
	}
	type run struct {
		res    Result
		finals []uint64
		seqs   [][]uint64
	}
	runWith := func(window int) run {
		res, finals, seqs := chaosRing(Config{
			Impl: V2, N: n,
			EventBatching: true,
			ELWindow:      window,
			Chaos:         pol,
		}, rounds)
		return run{res, finals, seqs}
	}
	sw, pipe := runWith(1), runWith(8)

	for _, r := range []struct {
		name string
		run  run
	}{{"stop-and-wait", sw}, {"window=8", pipe}} {
		if r.run.res.ChaosDropped+r.run.res.ChaosDuplicated+r.run.res.ChaosDelayed == 0 {
			t.Errorf("%s: chaos injected nothing", r.name)
		}
		if rep := Audit(r.run.res); !rep.OK() {
			t.Errorf("%s: audit failed: %s", r.name, rep.Summary())
		}
	}
	if !reflect.DeepEqual(sw.finals, pipe.finals) {
		t.Errorf("final tokens diverged: stop-and-wait %v, window=8 %v", sw.finals, pipe.finals)
	}
	if !reflect.DeepEqual(sw.seqs, pipe.seqs) {
		t.Errorf("delivery transcripts diverged:\nstop-and-wait %v\nwindow=8      %v", sw.seqs, pipe.seqs)
	}
}
