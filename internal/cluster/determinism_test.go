package cluster

import (
	"reflect"
	"testing"
	"time"

	"mpichv/internal/dispatcher"
	"mpichv/internal/transport"
)

// TestELWindowDeterminismUnderChaos is the guard on the pipelined
// determinant window: under the same seeded link chaos, a run with
// stop-and-wait logging (ELWindow=1) and a run with a deep window
// (ELWindow=8) must produce the exact same application transcript —
// the window changes when WAITLOGGED releases, never what the
// application observes — and both must audit clean.
func TestELWindowDeterminismUnderChaos(t *testing.T) {
	const n, rounds = 4, 15
	// Link-only chaos (no kills): with faults, the two runs legitimately
	// interleave receptions differently before the crash, and replay
	// pins each run only to its own pre-crash order.
	pol := transport.ChaosPolicy{
		Seed:      7,
		Drop:      0.02,
		Duplicate: 0.01,
		Delay:     0.05,
		MaxDelay:  200 * time.Microsecond,
	}
	type run struct {
		res    Result
		finals []uint64
		seqs   [][]uint64
	}
	runWith := func(window int) run {
		res, finals, seqs := chaosRing(Config{
			Impl: V2, N: n,
			EventBatching: true,
			ELWindow:      window,
			Chaos:         pol,
			Trace:         true,
		}, rounds)
		return run{res, finals, seqs}
	}
	sw, pipe := runWith(1), runWith(8)

	for _, r := range []struct {
		name string
		run  run
	}{{"stop-and-wait", sw}, {"window=8", pipe}} {
		if r.run.res.ChaosDropped+r.run.res.ChaosDuplicated+r.run.res.ChaosDelayed == 0 {
			t.Errorf("%s: chaos injected nothing", r.name)
		}
		if rep := Audit(r.run.res); !rep.OK() {
			t.Errorf("%s: audit failed: %s", r.name, rep.Summary())
		}
		if hb := AuditTrace(r.run.res); !hb.OK() {
			t.Errorf("%s: hb-audit failed: %s", r.name, hb.Summary())
		}
	}
	if !reflect.DeepEqual(sw.finals, pipe.finals) {
		t.Errorf("final tokens diverged: stop-and-wait %v, window=8 %v", sw.finals, pipe.finals)
	}
	if !reflect.DeepEqual(sw.seqs, pipe.seqs) {
		t.Errorf("delivery transcripts diverged:\nstop-and-wait %v\nwindow=8      %v", sw.seqs, pipe.seqs)
	}
}

// TestCkptChunkingDeterminism is the ablation guard on the checkpoint
// data path: monolithic images, default chunking, a pathological odd
// chunk size, and delta shipping on/off are pure transport choices — a
// rank killed mid-run must restore the exact same state (and hence the
// same finals) under every one of them. The byte-identity of the
// reassembled image itself is pinned in the ckpt package; this pins
// that nothing above it can tell the difference either.
func TestCkptChunkingDeterminism(t *testing.T) {
	const n, iters = 4, 50
	type ablation struct {
		name    string
		chunk   int
		noDelta bool
	}
	cases := []ablation{
		{"monolithic+delta", -1, false},
		{"chunk=default+delta", 0, false},
		{"chunk=97+delta", 97, false},
		{"chunk=default+nodelta", 0, true},
		{"monolithic+nodelta", -1, true},
	}
	want := ckptExpect(n, iters)
	for _, c := range cases {
		finals := make([]float64, n)
		res := Run(Config{
			Impl: V2, N: n,
			Checkpointing:  true,
			ELReplicas:     3,
			SchedPeriod:    2 * time.Millisecond,
			CkptChunk:      c.chunk,
			CkptNoDelta:    c.noDelta,
			DetectionDelay: 3 * time.Millisecond,
			Chaos:          transport.ChaosPolicy{Seed: 31, Drop: 0.01, Delay: 0.02, MaxDelay: 200 * time.Microsecond},
			Faults:         []dispatcher.Fault{{Time: 25 * time.Millisecond, Rank: 2}},
			Trace:          true,
		}, ckptProgram(iters, finals))

		if res.Restarts != 1 {
			t.Errorf("%s: restarts = %d, want 1", c.name, res.Restarts)
		}
		for r, v := range finals {
			if v != want {
				t.Errorf("%s: rank %d acc = %v, want %v", c.name, r, v, want)
			}
		}
		if res.CkptSaves == 0 {
			t.Errorf("%s: no checkpoints stored", c.name)
		}
		if c.noDelta && res.DeltaCkpts != 0 {
			t.Errorf("%s: shipped %d deltas with delta shipping disabled", c.name, res.DeltaCkpts)
		}
		if !c.noDelta && res.DeltaCkpts == 0 {
			t.Errorf("%s: never shipped a delta", c.name)
		}
		if c.chunk < 0 && res.ChunkRetransmits != 0 {
			t.Errorf("%s: %d chunk retransmits in monolithic mode", c.name, res.ChunkRetransmits)
		}
		if c.chunk < 0 && res.ManifestFetches != 0 {
			t.Errorf("%s: %d manifest fetches in monolithic mode", c.name, res.ManifestFetches)
		}
		if rep := Audit(res); !rep.OK() {
			t.Errorf("%s: %s", c.name, rep.Summary())
		}
		if hb := AuditTrace(res); !hb.OK() {
			t.Errorf("%s: %s", c.name, hb.Summary())
		}
		t.Logf("%s: saves=%d deltas=%d shipped=%dB retrans=%d manifests=%d",
			c.name, res.CkptSaves, res.DeltaCkpts, res.CkptShippedBytes,
			res.ChunkRetransmits, res.ManifestFetches)
	}
}
