package cluster

import (
	"fmt"
	"testing"
	"time"

	"mpichv/internal/dispatcher"
	"mpichv/internal/mpi"
)

// The table-driven collectives suite runs each collective through the
// full daemon stack (not the mpi package's in-memory hub double) at
// non-power-of-two sizes, with and without daemons crashing in the
// middle of the iteration stream. The programs are deterministic pure
// functions of rank, so a crashed rank restarts from scratch and the
// logged messages replay it to the same answer — the collectives must
// survive losing a participant mid-protocol with no wrong sums and no
// hangs.

// collCase describes one collective under test. prog must write each
// rank's accumulated result into finals; want gives the expected value
// for a rank.
type collCase struct {
	name string
	prog func(iters int, finals []float64) Program
	want func(n, iters, rank int) float64
}

func collCases() []collCase {
	return []collCase{
		{
			name: "bcast",
			prog: func(iters int, finals []float64) Program {
				return func(p *mpi.Proc) {
					var acc float64
					for i := 0; i < iters; i++ {
						p.Compute(5e4)
						root := i % p.Size()
						var data []byte
						if p.Rank() == root {
							data = []byte{byte(i), byte(root)}
						}
						got := p.Bcast(root, data)
						if len(got) != 2 || got[0] != byte(i) || got[1] != byte(root) {
							p.Abortf("bcast iter %d root %d got %v", i, root, got)
						}
						acc += float64(int(got[0]) + int(got[1]))
					}
					finals[p.Rank()] = acc
				}
			},
			want: func(n, iters, rank int) float64 {
				var acc float64
				for i := 0; i < iters; i++ {
					acc += float64(i + i%n)
				}
				return acc
			},
		},
		{
			name: "reduce",
			prog: func(iters int, finals []float64) Program {
				return func(p *mpi.Proc) {
					var acc float64
					for i := 0; i < iters; i++ {
						p.Compute(5e4)
						root := i % p.Size()
						out := p.Reduce(root, []float64{float64(p.Rank() + i)}, mpi.OpSum)
						if p.Rank() == root {
							acc += out[0]
						} else if out != nil {
							p.Abortf("non-root rank %d got reduce result %v", p.Rank(), out)
						}
					}
					finals[p.Rank()] = acc
				}
			},
			want: func(n, iters, rank int) float64 {
				// Rank r accumulates the global sum on the iterations it
				// roots: sum over i ≡ r (mod n) of (n·i + n(n−1)/2).
				var acc float64
				for i := rank; i < iters; i += n {
					acc += float64(n*i) + float64(n*(n-1))/2
				}
				return acc
			},
		},
		{
			name: "allreduce",
			prog: func(iters int, finals []float64) Program {
				return func(p *mpi.Proc) {
					var acc float64
					for i := 0; i < iters; i++ {
						p.Compute(5e4)
						acc += p.AllreduceScalar(float64(p.Rank()+i), mpi.OpSum)
					}
					finals[p.Rank()] = acc
				}
			},
			want: func(n, iters, rank int) float64 {
				var acc float64
				for i := 0; i < iters; i++ {
					acc += float64(n*i) + float64(n*(n-1))/2
				}
				return acc
			},
		},
		{
			name: "barrier",
			prog: func(iters int, finals []float64) Program {
				return func(p *mpi.Proc) {
					done := 0
					for i := 0; i < iters; i++ {
						p.Compute(5e4)
						p.Barrier()
						done++
					}
					finals[p.Rank()] = float64(done)
				}
			},
			want: func(n, iters, rank int) float64 { return float64(iters) },
		},
	}
}

func TestCollectivesTableDriven(t *testing.T) {
	const iters = 20
	for _, tc := range collCases() {
		for _, n := range []int{3, 5, 6, 7} { // all non-powers-of-two
			for _, crash := range []bool{false, true} {
				tc, n, crash := tc, n, crash
				t.Run(fmt.Sprintf("%s/n=%d/crash=%v", tc.name, n, crash), func(t *testing.T) {
					cfg := Config{Impl: V2, N: n, Trace: true}
					if crash {
						// Two daemons die while the iteration stream — and
						// with it some collective — is in flight.
						cfg.Faults = []dispatcher.Fault{
							{Time: 6 * time.Millisecond, Rank: 1},
							{Time: 11 * time.Millisecond, Rank: n - 1},
						}
					}
					finals := make([]float64, n)
					res := Run(cfg, tc.prog(iters, finals))
					if crash && res.Restarts != 2 {
						t.Fatalf("restarts = %d, want 2", res.Restarts)
					}
					for r := range finals {
						if want := tc.want(n, iters, r); finals[r] != want {
							t.Errorf("rank %d final = %v, want %v", r, finals[r], want)
						}
					}
					if hb := AuditTrace(res); !hb.OK() {
						t.Errorf("%s", hb.Summary())
					}
				})
			}
		}
	}
}
