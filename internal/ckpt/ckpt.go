// Package ckpt implements the checkpoint system of §4.6: the checkpoint
// image format and the Checkpoint Server, a repository storing the
// latest successful image of each MPI process and its communication
// daemon.
//
// The paper checkpoints the MPI process with the Condor standalone
// library (a system-level process image). Go cannot freeze a goroutine,
// so the image carries an application-level snapshot instead: the MPI
// program supplies its state as bytes at daemon-triggered safe points.
// The daemon state (logical clocks, HR/HS vectors and the SAVED payload
// log — included to avoid the domino effect, §4.1) is serialized by the
// core package. See DESIGN.md §2 for why this substitution preserves the
// protocol behaviour under test.
//
// Images travel and rest inside a length + CRC-32 frame: a truncated or
// bit-flipped image is detected at decode time instead of being
// restored into a live process. Servers verify the frame before
// storing, so a save that was damaged in flight is never acked and the
// daemon retransmits it; a daemon that still fetches a damaged image
// (hit on the fetch path) rejects it and re-fetches from the next
// replica.
//
// Like the event logger, the server is split into a frontend (Server)
// and stable storage (Store), and a server may be one of R replicas
// with independent stores: daemons replicate every save and count acks
// against a write quorum, and a replica respawned empty rejoins by
// pulling its peers' latest images (anti-entropy, keyed by rank and
// checkpoint seq). A retransmitted save is recognized and re-acked
// instead of regressing the stored image.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"mpichv/internal/core"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// Image is one checkpoint: everything needed to restart a computing
// node.
type Image struct {
	Rank int
	// Seq numbers the node's checkpoints; the server keeps the
	// highest completed one.
	Seq uint64
	// AppState is the application-level snapshot of the MPI process.
	AppState []byte
	// Proto is the encoded core.Snapshot of the daemon.
	Proto []byte
}

// imageMagic brands an encoded image so truncation that happens to
// leave a well-formed length cannot masquerade as a different blob.
var imageMagic = [4]byte{'M', 'V', 'C', 'K'}

const imageHeaderLen = 4 + 4 + 4 // magic + body length + CRC-32

// Encode serializes the image for transfer: a magic/length/CRC-32
// header followed by the gob body. The header is what lets DecodeImage
// reject a truncated or corrupted image deterministically.
func (im *Image) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(im); err != nil {
		return nil, fmt.Errorf("ckpt: encoding image: %w", err)
	}
	body := buf.Bytes()
	out := make([]byte, imageHeaderLen+len(body))
	copy(out[0:4], imageMagic[:])
	binary.BigEndian.PutUint32(out[4:8], uint32(len(body)))
	binary.BigEndian.PutUint32(out[8:12], crc32.ChecksumIEEE(body))
	copy(out[imageHeaderLen:], body)
	return out, nil
}

// DecodeImage parses an image produced by Encode, verifying the length
// framing and the CRC-32 checksum before touching the gob payload.
func DecodeImage(b []byte) (*Image, error) {
	if len(b) < imageHeaderLen {
		return nil, fmt.Errorf("ckpt: image of %d bytes shorter than its header", len(b))
	}
	if !bytes.Equal(b[0:4], imageMagic[:]) {
		return nil, fmt.Errorf("ckpt: bad image magic %x", b[0:4])
	}
	want := int(binary.BigEndian.Uint32(b[4:8]))
	body := b[imageHeaderLen:]
	if len(body) != want {
		return nil, fmt.Errorf("ckpt: truncated image: header promises %d body bytes, frame holds %d", want, len(body))
	}
	if sum := crc32.ChecksumIEEE(body); sum != binary.BigEndian.Uint32(b[8:12]) {
		return nil, fmt.Errorf("ckpt: image checksum mismatch")
	}
	var im Image
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&im); err != nil {
		return nil, fmt.Errorf("ckpt: decoding image: %w", err)
	}
	return &im, nil
}

// ProtoSnapshot decodes the daemon protocol snapshot inside the image.
func (im *Image) ProtoSnapshot() (*core.Snapshot, error) {
	return core.DecodeSnapshot(im.Proto)
}

// Stats is a consistent snapshot of a Store's counters, taken under
// the store lock.
type Stats struct {
	Saves        int64 // images accepted
	SavedBytes   int64 // bytes of accepted images
	Fetches      int64 // fetch requests served
	Duplicates   int64 // saves re-transmitted at the stored seq and ignored
	StaleRejects int64 // saves below the stored seq, dropped as stale
	Malformed    int64 // frames or images that failed to decode/verify
	Resyncs      int64 // anti-entropy rounds completed into this store
	SyncedIn     int64 // images merged from peers during resync
}

// Store is the stable image storage of one checkpoint server replica,
// safe for use by several Server frontends.
type Store struct {
	mu     sync.Mutex
	images map[int][]byte // rank → encoded latest image
	seqs   map[int]uint64 // rank → seq of the stored image
	has    map[int]bool   // rank → an image was ever stored

	stats Stats
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{images: make(map[int][]byte), seqs: make(map[int]uint64), has: make(map[int]bool)}
}

// Stats returns a locked snapshot of the store's counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// Put stores an image for a rank unless an image with the same or a
// newer sequence number is already held — a retransmitted save whose
// ack was lost (counted as a duplicate), or a stale save racing a
// fresher one over a reordering network (counted as a stale reject),
// must not regress the stored image. Returns whether the image was
// accepted.
func (st *Store) Put(rank int, seq uint64, image []byte) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.has[rank] && seq <= st.seqs[rank] {
		if seq == st.seqs[rank] {
			st.stats.Duplicates++
		} else {
			st.stats.StaleRejects++
		}
		return false
	}
	st.images[rank] = append([]byte(nil), image...)
	st.seqs[rank] = seq
	st.has[rank] = true
	st.stats.Saves++
	st.stats.SavedBytes += int64(len(image))
	return true
}

// Get returns the stored image for a rank, if any.
func (st *Store) Get(rank int) ([]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	img, ok := st.images[rank]
	return img, ok && len(img) > 0
}

// Has reports whether a rank has a stored checkpoint.
func (st *Store) Has(rank int) bool {
	_, ok := st.Get(rank)
	return ok
}

// Marks returns the per-rank checkpoint-seq high-water marks for an
// anti-entropy request; a fresh store returns an empty map and pulls
// every rank's latest image.
func (st *Store) Marks() map[int]uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	marks := make(map[int]uint64, len(st.seqs))
	for rank := range st.has {
		marks[rank] = st.seqs[rank]
	}
	return marks
}

// EntriesSince returns the stored images whose seq is above the
// requester's mark for that rank — the response half of the
// anti-entropy exchange.
func (st *Store) EntriesSince(marks map[int]uint64) []wire.CkptEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []wire.CkptEntry
	for rank, img := range st.images {
		if mark, known := marks[rank]; known && st.seqs[rank] <= mark {
			continue
		}
		out = append(out, wire.CkptEntry{Rank: rank, Seq: st.seqs[rank], Image: img})
	}
	return out
}

// MergeEntries folds a peer's sync response into the store via the
// same monotonic Put rule, returning how many images were accepted.
func (st *Store) MergeEntries(entries []wire.CkptEntry) int {
	added := 0
	for _, e := range entries {
		if st.Put(e.Rank, e.Seq, e.Image) {
			added++
		}
	}
	st.mu.Lock()
	st.stats.SyncedIn += int64(added)
	st.stats.Resyncs++
	// Merged images were already counted as Saves by Put; a resync is
	// not a save from a daemon, so move them to the sync column
	// (SavedBytes stays: it measures storage traffic either way).
	st.stats.Saves -= int64(added)
	st.mu.Unlock()
	return added
}

// Server is one checkpoint server replica frontend.
type Server struct {
	rt vtime.Runtime
	ep transport.Endpoint

	// Store is the stable storage behind this frontend; shared when
	// the server was built with NewServerWithStore.
	Store *Store

	// Peers are the other replicas of this checkpoint group; they
	// serve anti-entropy sync requests. Empty for a standalone server.
	Peers []int
	// Resync makes the server pull its peers' latest images on
	// startup — set on a replica respawned with an empty store.
	Resync bool

	synced atomic.Bool
}

// NewServer creates a checkpoint server with its own private store.
func NewServer(rt vtime.Runtime, ep transport.Endpoint) *Server {
	return NewServerWithStore(rt, ep, NewStore())
}

// NewServerWithStore creates a frontend over an existing store, for
// failover setups where a respawned or backup server must serve the
// images its predecessor stored.
func NewServerWithStore(rt vtime.Runtime, ep transport.Endpoint, st *Store) *Server {
	return &Server{rt: rt, ep: ep, Store: st}
}

// Start runs the server loop as an actor, plus the resync requester if
// the replica is rejoining its group.
func (s *Server) Start() {
	s.rt.Go("ckpt-server", s.run)
	if s.Resync && len(s.Peers) > 0 {
		s.rt.Go(fmt.Sprintf("cs-resync-%d", s.ep.ID()), s.resyncLoop)
	}
}

// HasImage reports whether a rank has a stored checkpoint.
func (s *Server) HasImage(rank int) bool { return s.Store.Has(rank) }

// resyncLoop mirrors the event logger's: marks are snapshotted once at
// join time and the request retries with backoff until any peer's
// response lands (merging is idempotent).
func (s *Server) resyncLoop() {
	req := wire.EncodeSyncMarks(s.Store.Marks())
	bo := transport.Backoff{Base: 5 * time.Millisecond, Seed: uint64(s.ep.ID())}
	for attempt := 0; attempt < 10 && !s.synced.Load(); attempt++ {
		for _, p := range s.Peers {
			s.ep.Send(p, wire.KCSSyncReq, req)
		}
		s.rt.Sleep(bo.Delay(attempt))
	}
}

func (s *Server) run() {
	for {
		f, ok := s.ep.Inbox().Recv()
		if !ok {
			return
		}
		switch f.Kind {
		case wire.KCkptSave:
			seq, image, err := wire.DecodeCkptSave(f.Data)
			if err != nil {
				s.countMalformed()
				continue
			}
			// Verify the image frame before storing: a save damaged in
			// flight is dropped *unacked*, so the daemon retransmits it
			// and the store only ever holds verifiable images.
			if _, err := DecodeImage(image); err != nil {
				s.countMalformed()
				continue
			}
			s.Store.Put(f.From, seq, image)
			// The save frame itself is NOT recycled: the daemon retains
			// its ckptPending buffer for retransmission. Ack even a
			// duplicate: the retransmission means the saver never saw
			// the first ack.
			s.ep.Send(f.From, wire.KCkptSaveAck, wire.AppendU64(wire.GetBuf(8), seq))
		case wire.KCkptFetch:
			s.Store.mu.Lock()
			s.Store.stats.Fetches++
			s.Store.mu.Unlock()
			img, ok := s.Store.Get(f.From)
			s.ep.Send(f.From, wire.KCkptImage, wire.EncodeCkptImage(ok, img))
		case wire.KCSSyncReq:
			marks, err := wire.DecodeSyncMarks(f.Data)
			if err != nil {
				s.countMalformed()
				continue
			}
			s.ep.Send(f.From, wire.KCSSyncResp, wire.EncodeCkptEntries(s.Store.EntriesSince(marks)))
		case wire.KCSSyncResp:
			entries, err := wire.DecodeCkptEntries(f.Data)
			if err != nil {
				s.countMalformed()
				continue
			}
			s.Store.MergeEntries(entries)
			s.synced.Store(true)
		}
	}
}

func (s *Server) countMalformed() {
	s.Store.mu.Lock()
	s.Store.stats.Malformed++
	s.Store.mu.Unlock()
}
