// Package ckpt implements the checkpoint system of §4.6: the checkpoint
// image format and the Checkpoint Server, a reliable repository storing
// the latest successful image of each MPI process and its communication
// daemon.
//
// The paper checkpoints the MPI process with the Condor standalone
// library (a system-level process image). Go cannot freeze a goroutine,
// so the image carries an application-level snapshot instead: the MPI
// program supplies its state as bytes at daemon-triggered safe points.
// The daemon state (logical clocks, HR/HS vectors and the SAVED payload
// log — included to avoid the domino effect, §4.1) is serialized by the
// core package. See DESIGN.md §2 for why this substitution preserves the
// protocol behaviour under test.
package ckpt

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"mpichv/internal/core"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// Image is one checkpoint: everything needed to restart a computing
// node.
type Image struct {
	Rank int
	// Seq numbers the node's checkpoints; the server keeps the
	// highest completed one.
	Seq uint64
	// AppState is the application-level snapshot of the MPI process.
	AppState []byte
	// Proto is the encoded core.Snapshot of the daemon.
	Proto []byte
}

// Encode serializes the image for transfer.
func (im *Image) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(im); err != nil {
		return nil, fmt.Errorf("ckpt: encoding image: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeImage parses an image produced by Encode.
func DecodeImage(b []byte) (*Image, error) {
	var im Image
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&im); err != nil {
		return nil, fmt.Errorf("ckpt: decoding image: %w", err)
	}
	return &im, nil
}

// ProtoSnapshot decodes the daemon protocol snapshot inside the image.
func (im *Image) ProtoSnapshot() (*core.Snapshot, error) {
	return core.DecodeSnapshot(im.Proto)
}

// Server is the checkpoint server: it stores the latest image per rank
// and serves it to restarting nodes.
type Server struct {
	rt     vtime.Runtime
	ep     transport.Endpoint
	images map[int][]byte // rank → encoded latest image

	// Stats for the experiments.
	Saves      int64
	SavedBytes int64
	Fetches    int64
}

// NewServer creates a checkpoint server attached to the endpoint.
func NewServer(rt vtime.Runtime, ep transport.Endpoint) *Server {
	return &Server{rt: rt, ep: ep, images: make(map[int][]byte)}
}

// Start runs the server loop as an actor.
func (s *Server) Start() {
	s.rt.Go("ckpt-server", s.run)
}

// HasImage reports whether a rank has a stored checkpoint.
func (s *Server) HasImage(rank int) bool { return len(s.images[rank]) > 0 }

func (s *Server) run() {
	for {
		f, ok := s.ep.Inbox().Recv()
		if !ok {
			return
		}
		switch f.Kind {
		case wire.KCkptSave:
			seq, image, err := wire.DecodeCkptSave(f.Data)
			if err != nil {
				continue
			}
			s.images[f.From] = append([]byte(nil), image...)
			s.Saves++
			s.SavedBytes += int64(len(image))
			s.ep.Send(f.From, wire.KCkptSaveAck, wire.EncodeU64(seq))
		case wire.KCkptFetch:
			s.Fetches++
			img, ok := s.images[f.From]
			s.ep.Send(f.From, wire.KCkptImage, wire.EncodeCkptImage(ok && len(img) > 0, img))
		}
	}
}
