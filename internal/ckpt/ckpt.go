// Package ckpt implements the checkpoint system of §4.6: the checkpoint
// image format and the Checkpoint Server, a reliable repository storing
// the latest successful image of each MPI process and its communication
// daemon.
//
// The paper checkpoints the MPI process with the Condor standalone
// library (a system-level process image). Go cannot freeze a goroutine,
// so the image carries an application-level snapshot instead: the MPI
// program supplies its state as bytes at daemon-triggered safe points.
// The daemon state (logical clocks, HR/HS vectors and the SAVED payload
// log — included to avoid the domino effect, §4.1) is serialized by the
// core package. See DESIGN.md §2 for why this substitution preserves the
// protocol behaviour under test.
//
// Like the event logger, the server is split into a frontend (Server)
// and stable storage (Store) so several frontends — a primary and its
// respawned or backup instances — can serve the same images, and so a
// retransmitted save is recognized and re-acked instead of regressing
// the stored image.
package ckpt

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"mpichv/internal/core"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

// Image is one checkpoint: everything needed to restart a computing
// node.
type Image struct {
	Rank int
	// Seq numbers the node's checkpoints; the server keeps the
	// highest completed one.
	Seq uint64
	// AppState is the application-level snapshot of the MPI process.
	AppState []byte
	// Proto is the encoded core.Snapshot of the daemon.
	Proto []byte
}

// Encode serializes the image for transfer.
func (im *Image) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(im); err != nil {
		return nil, fmt.Errorf("ckpt: encoding image: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeImage parses an image produced by Encode.
func DecodeImage(b []byte) (*Image, error) {
	var im Image
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&im); err != nil {
		return nil, fmt.Errorf("ckpt: decoding image: %w", err)
	}
	return &im, nil
}

// ProtoSnapshot decodes the daemon protocol snapshot inside the image.
func (im *Image) ProtoSnapshot() (*core.Snapshot, error) {
	return core.DecodeSnapshot(im.Proto)
}

// Store is the stable image storage of one logical checkpoint server,
// safe for use by several Server frontends.
type Store struct {
	mu     sync.Mutex
	images map[int][]byte // rank → encoded latest image
	seqs   map[int]uint64 // rank → seq of the stored image
	has    map[int]bool   // rank → an image was ever stored

	// Stats for the experiments.
	Saves      int64 // images accepted
	SavedBytes int64 // bytes of accepted images
	Fetches    int64 // fetch requests served
	Duplicates int64 // stale or duplicate saves ignored
	Malformed  int64 // frames that failed to decode
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{images: make(map[int][]byte), seqs: make(map[int]uint64), has: make(map[int]bool)}
}

// Put stores an image for a rank unless an image with the same or a
// newer sequence number is already held — a retransmitted save whose
// ack was lost, or a stale save racing a fresher one over a reordering
// network, must not regress the stored image. Returns whether the image
// was accepted.
func (st *Store) Put(rank int, seq uint64, image []byte) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.has[rank] && seq <= st.seqs[rank] {
		st.Duplicates++
		return false
	}
	st.images[rank] = append([]byte(nil), image...)
	st.seqs[rank] = seq
	st.has[rank] = true
	st.Saves++
	st.SavedBytes += int64(len(image))
	return true
}

// Get returns the stored image for a rank, if any.
func (st *Store) Get(rank int) ([]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	img, ok := st.images[rank]
	return img, ok && len(img) > 0
}

// Has reports whether a rank has a stored checkpoint.
func (st *Store) Has(rank int) bool {
	_, ok := st.Get(rank)
	return ok
}

// Server is one checkpoint server frontend.
type Server struct {
	rt vtime.Runtime
	ep transport.Endpoint

	// Store is the stable storage behind this frontend; shared when
	// the server was built with NewServerWithStore.
	Store *Store
}

// NewServer creates a checkpoint server with its own private store.
func NewServer(rt vtime.Runtime, ep transport.Endpoint) *Server {
	return NewServerWithStore(rt, ep, NewStore())
}

// NewServerWithStore creates a frontend over an existing store, for
// failover setups where a respawned or backup server must serve the
// images its predecessor stored.
func NewServerWithStore(rt vtime.Runtime, ep transport.Endpoint, st *Store) *Server {
	return &Server{rt: rt, ep: ep, Store: st}
}

// Start runs the server loop as an actor.
func (s *Server) Start() {
	s.rt.Go("ckpt-server", s.run)
}

// HasImage reports whether a rank has a stored checkpoint.
func (s *Server) HasImage(rank int) bool { return s.Store.Has(rank) }

func (s *Server) run() {
	for {
		f, ok := s.ep.Inbox().Recv()
		if !ok {
			return
		}
		switch f.Kind {
		case wire.KCkptSave:
			seq, image, err := wire.DecodeCkptSave(f.Data)
			if err != nil {
				s.Store.mu.Lock()
				s.Store.Malformed++
				s.Store.mu.Unlock()
				continue
			}
			s.Store.Put(f.From, seq, image)
			// Ack even a duplicate: the retransmission means the
			// saver never saw the first ack.
			s.ep.Send(f.From, wire.KCkptSaveAck, wire.EncodeU64(seq))
		case wire.KCkptFetch:
			s.Store.mu.Lock()
			s.Store.Fetches++
			s.Store.mu.Unlock()
			img, ok := s.Store.Get(f.From)
			s.ep.Send(f.From, wire.KCkptImage, wire.EncodeCkptImage(ok, img))
		}
	}
}
