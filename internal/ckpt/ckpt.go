// Package ckpt implements the checkpoint system of §4.6: the checkpoint
// image format and the Checkpoint Server, a repository storing the
// latest successful image of each MPI process and its communication
// daemon.
//
// The paper checkpoints the MPI process with the Condor standalone
// library (a system-level process image). Go cannot freeze a goroutine,
// so the image carries an application-level snapshot instead: the MPI
// program supplies its state as bytes at daemon-triggered safe points.
// The daemon state (logical clocks, HR/HS vectors and the SAVED payload
// log — included to avoid the domino effect, §4.1) is serialized by the
// core package. See DESIGN.md §2 for why this substitution preserves the
// protocol behaviour under test.
//
// Images travel and rest inside a length + CRC-32 frame: a truncated or
// bit-flipped image is detected at decode time instead of being
// restored into a live process. Servers verify the frame before
// storing, so a save that was damaged in flight is never acked and the
// daemon retransmits it; a daemon that still fetches a damaged image
// (hit on the fetch path) rejects it and re-fetches from the next
// replica.
//
// Like the event logger, the server is split into a frontend (Server)
// and stable storage (Store), and a server may be one of R replicas
// with independent stores: daemons replicate every save and count acks
// against a write quorum, and a replica respawned empty rejoins by
// pulling its peers' latest images (anti-entropy, keyed by rank and
// checkpoint seq). A retransmitted save is recognized and re-acked
// instead of regressing the stored image.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"mpichv/internal/core"
	"mpichv/internal/trace"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/walog"
	"mpichv/internal/wire"
)

// Image is one checkpoint: everything needed to restart a computing
// node.
type Image struct {
	Rank int
	// Seq numbers the node's checkpoints; the server keeps the
	// highest completed one.
	Seq uint64
	// BaseSeq is zero for a full image. Nonzero marks a delta: Proto
	// carries only the SAVED entries appended since the checkpoint at
	// BaseSeq (the last one the store acked), and the store must
	// materialize the full image from the base before serving it.
	BaseSeq uint64
	// AppState is the application-level snapshot of the MPI process.
	AppState []byte
	// Proto is the encoded core.Snapshot of the daemon.
	Proto []byte
}

// imageMagic brands an encoded image so truncation that happens to
// leave a well-formed length cannot masquerade as a different blob.
// imageMagicGob is the previous release's frame, whose body is gob;
// it is still decoded for backward compatibility.
var (
	imageMagic    = [4]byte{'M', 'V', 'C', '2'}
	imageMagicGob = [4]byte{'M', 'V', 'C', 'K'}
)

const imageHeaderLen = 4 + 4 + 4 // magic + body length + CRC-32

// ImageSize returns the exact encoded size of AppendImage's output.
func ImageSize(im *Image) int {
	return imageHeaderLen + 4 + 8 + 8 + 4 + len(im.AppState) + 4 + len(im.Proto)
}

// AppendImage appends the binary encoding of im to dst: the
// magic/length/CRC-32 header followed by a fixed-layout body (rank,
// seq, baseSeq, app state, proto snapshot). With dst capacity of at
// least ImageSize(im) — e.g. a wire.GetBuf buffer — it performs no
// allocation. Unlike the gob body it replaces, the encoding is
// deterministic, which the store relies on: replicas materialize full
// images independently and anti-entropy compares them byte for byte.
func AppendImage(dst []byte, im *Image) []byte {
	start := len(dst)
	var b [24]byte
	dst = append(dst, b[:imageHeaderLen]...) // header, patched below
	binary.BigEndian.PutUint32(b[0:4], uint32(im.Rank))
	binary.BigEndian.PutUint64(b[4:12], im.Seq)
	binary.BigEndian.PutUint64(b[12:20], im.BaseSeq)
	binary.BigEndian.PutUint32(b[20:24], uint32(len(im.AppState)))
	dst = append(dst, b[:24]...)
	dst = append(dst, im.AppState...)
	binary.BigEndian.PutUint32(b[0:4], uint32(len(im.Proto)))
	dst = append(dst, b[:4]...)
	dst = append(dst, im.Proto...)
	body := dst[start+imageHeaderLen:]
	copy(dst[start:start+4], imageMagic[:])
	binary.BigEndian.PutUint32(dst[start+4:start+8], uint32(len(body)))
	binary.BigEndian.PutUint32(dst[start+8:start+12], crc32.ChecksumIEEE(body))
	return dst
}

// Encode serializes the image for transfer. The header is what lets
// DecodeImage reject a truncated or corrupted image deterministically.
func (im *Image) Encode() ([]byte, error) {
	return AppendImage(make([]byte, 0, ImageSize(im)), im), nil
}

// DecodeImage parses an image produced by Encode, verifying the length
// framing and the CRC-32 checksum before touching the payload. Frames
// written by the previous release's gob encoder (magic "MVCK") are
// still accepted.
func DecodeImage(b []byte) (*Image, error) {
	if len(b) < imageHeaderLen {
		return nil, fmt.Errorf("ckpt: image of %d bytes shorter than its header", len(b))
	}
	isGob := bytes.Equal(b[0:4], imageMagicGob[:])
	if !isGob && !bytes.Equal(b[0:4], imageMagic[:]) {
		return nil, fmt.Errorf("ckpt: bad image magic %x", b[0:4])
	}
	want := int(binary.BigEndian.Uint32(b[4:8]))
	body := b[imageHeaderLen:]
	if len(body) != want {
		return nil, fmt.Errorf("ckpt: truncated image: header promises %d body bytes, frame holds %d", want, len(body))
	}
	if sum := crc32.ChecksumIEEE(body); sum != binary.BigEndian.Uint32(b[8:12]) {
		return nil, fmt.Errorf("ckpt: image checksum mismatch")
	}
	var im Image
	if isGob {
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&im); err != nil {
			return nil, fmt.Errorf("ckpt: decoding image: %w", err)
		}
		return &im, nil
	}
	if len(body) < 24 {
		return nil, fmt.Errorf("ckpt: image body of %d bytes shorter than its fixed fields", len(body))
	}
	im.Rank = int(binary.BigEndian.Uint32(body[0:4]))
	im.Seq = binary.BigEndian.Uint64(body[4:12])
	im.BaseSeq = binary.BigEndian.Uint64(body[12:20])
	appLen := int(binary.BigEndian.Uint32(body[20:24]))
	off := 24
	if appLen < 0 || off+appLen+4 > len(body) {
		return nil, fmt.Errorf("ckpt: image app state of %d bytes truncated", appLen)
	}
	im.AppState = append([]byte(nil), body[off:off+appLen]...)
	off += appLen
	protoLen := int(binary.BigEndian.Uint32(body[off : off+4]))
	off += 4
	if protoLen < 0 || off+protoLen != len(body) {
		return nil, fmt.Errorf("ckpt: image proto of %d bytes does not fill the body", protoLen)
	}
	im.Proto = append([]byte(nil), body[off:]...)
	return &im, nil
}

// ProtoSnapshot decodes the daemon protocol snapshot inside the image.
func (im *Image) ProtoSnapshot() (*core.Snapshot, error) {
	return core.DecodeSnapshot(im.Proto)
}

// Stats is a consistent snapshot of a Store's counters, taken under
// the store lock.
type Stats struct {
	Saves            int64 // images accepted
	SavedBytes       int64 // bytes of accepted (materialized) images
	Fetches          int64 // fetch/manifest requests served
	Duplicates       int64 // saves re-transmitted at the stored seq and ignored
	StaleRejects     int64 // saves below the stored seq, dropped as stale
	Malformed        int64 // frames or images that failed to decode/verify
	Resyncs          int64 // anti-entropy rounds completed into this store
	SyncedIn         int64 // images merged from peers during resync
	DeltaSaves       int64 // accepted images that arrived as deltas
	ChainCompactions int64 // superseded chain images compacted away
	ChainBreaks      int64 // deltas dropped because their base was missing
}

// AddTo exports the snapshot into a metrics registry under the "ckpt."
// namespace — the uniform surface the vbench -json artifacts read.
func (s Stats) AddTo(r *trace.Registry) {
	r.Counter("ckpt.saves").Add(s.Saves)
	r.Counter("ckpt.saved_bytes").Add(s.SavedBytes)
	r.Counter("ckpt.fetches").Add(s.Fetches)
	r.Counter("ckpt.duplicates").Add(s.Duplicates)
	r.Counter("ckpt.stale_rejects").Add(s.StaleRejects)
	r.Counter("ckpt.malformed").Add(s.Malformed)
	r.Counter("ckpt.resyncs").Add(s.Resyncs)
	r.Counter("ckpt.synced_in").Add(s.SyncedIn)
	r.Counter("ckpt.delta_saves").Add(s.DeltaSaves)
	r.Counter("ckpt.chain_compactions").Add(s.ChainCompactions)
	r.Counter("ckpt.chain_breaks").Add(s.ChainBreaks)
}

// AcceptStatus is the store's verdict on an arriving image; the server
// acks on Accepted and Stale (a stale save usually means the saver
// never saw the first ack), stays silent on Malformed (the daemon
// retransmits), and triggers an anti-entropy pull on ChainBreak.
type AcceptStatus int

const (
	Accepted   AcceptStatus = iota // newly stored (after materialization if a delta)
	Stale                          // at or below the stored seq; re-ack, don't store
	Malformed                      // failed decode/verify; drop unacked
	ChainBreak                     // delta whose base image is missing; drop unacked
)

// partialImage is a chunked image mid-assembly: chunks land in any
// order and the image is decoded only once every index is present.
type partialImage struct {
	count  int
	n      int
	size   int
	got    []bool
	chunks [][]byte
}

// Store is the stable image storage of one checkpoint server replica,
// safe for use by several Server frontends. Per rank it holds
// materialized full images keyed by checkpoint seq — the latest one is
// what fetches serve; older ones are kept only while an in-flight delta
// may still name them as its base, and are compacted as the base
// horizon advances.
type Store struct {
	mu       sync.Mutex
	images   map[int]map[uint64][]byte     // rank → seq → materialized full image
	latest   map[int]uint64                // rank → highest stored seq
	partials map[int]map[uint64]*partialImage

	// wal, when set (deployed workers), receives every materialized
	// full image so a SIGKILLed checkpoint server rejoins with its
	// durable prefix. Deltas are materialized *before* the append, so
	// recovery never depends on a base image surviving.
	wal *walog.Writer

	stats Stats
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		images:   make(map[int]map[uint64][]byte),
		latest:   make(map[int]uint64),
		partials: make(map[int]map[uint64]*partialImage),
	}
}

// Stats returns a locked snapshot of the store's counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// OpenWAL replays the image log at path into the store and then arms
// it: every subsequently stored image is appended. Records that fail
// the image's own CRC frame are skipped — the daemon's replication and
// anti-entropy supply what the disk lost. torn configures the
// deterministic disk-fault injector (zero value: faults off).
func (st *Store) OpenWAL(path string, torn walog.TornConfig) (walog.LoadResult, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	w, res, err := walog.ReplayInto(path, torn, func(body []byte) {
		if len(body) < 16 {
			return
		}
		rank := int(binary.BigEndian.Uint64(body))
		seq := binary.BigEndian.Uint64(body[8:])
		image := body[16:]
		if im, err := DecodeImage(image); err != nil || im.Seq != seq || im.Rank != rank {
			return // damage the record CRC missed, or a mismatched frame
		}
		if img := st.images[rank]; img != nil {
			if _, dup := img[seq]; dup {
				return
			}
		}
		st.storeLocked(rank, seq, append([]byte(nil), image...))
	})
	if err != nil {
		return res, err
	}
	st.wal = w
	return res, nil
}

// CloseWAL detaches and closes the write-ahead log, if armed.
func (st *Store) CloseWAL() error {
	st.mu.Lock()
	w := st.wal
	st.wal = nil
	st.mu.Unlock()
	if w == nil {
		return nil
	}
	return w.Close()
}

// Accept verifies and stores an image for a rank unless an image with
// the same or a newer sequence number is already held — a retransmitted
// save whose ack was lost (Duplicates), or a stale save racing a
// fresher one over a reordering network (StaleRejects), must not
// regress the stored image. A delta is materialized against its base
// before storing; see acceptLocked.
func (st *Store) Accept(rank int, seq uint64, image []byte) AcceptStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.acceptLocked(rank, seq, image)
}

// Put is Accept reduced to the legacy boolean: true iff newly stored.
func (st *Store) Put(rank int, seq uint64, image []byte) bool {
	return st.Accept(rank, seq, image) == Accepted
}

func (st *Store) staleLocked(rank int, seq uint64) bool {
	if len(st.images[rank]) == 0 || seq > st.latest[rank] {
		return false
	}
	if seq == st.latest[rank] {
		st.stats.Duplicates++
	} else {
		st.stats.StaleRejects++
	}
	return true
}

// acceptLocked runs the shared admission path: integrity verification,
// stale suppression, delta materialization, compaction. A delta whose
// base image at BaseSeq is missing (the replica was respawned after the
// base shipped, or over-compacted) is a chain break: it is NOT acked,
// and the server self-heals by pulling peers' materialized images —
// the daemon meanwhile retransmits and eventually escalates to a full
// image, so liveness never depends on the chain being repairable.
func (st *Store) acceptLocked(rank int, seq uint64, image []byte) AcceptStatus {
	if st.staleLocked(rank, seq) {
		return Stale
	}
	im, err := DecodeImage(image)
	if err != nil || im.Seq != seq {
		st.stats.Malformed++
		return Malformed
	}
	if im.BaseSeq != 0 {
		base, ok := st.images[rank][im.BaseSeq]
		if !ok {
			st.stats.ChainBreaks++
			return ChainBreak
		}
		full, err := materialize(base, im)
		if err != nil {
			st.stats.Malformed++
			return Malformed
		}
		image = full
		st.stats.DeltaSaves++
		st.storeLocked(rank, seq, image)
		// A delta based on B proves the daemon saw B acked by a write
		// quorum, so every future base is ≥ B: anything below B is
		// unreachable and compacts away. B itself stays — another
		// in-flight delta may still name it.
		st.compactLocked(rank, im.BaseSeq)
	} else {
		st.storeLocked(rank, seq, append([]byte(nil), image...))
		// A full image at S supersedes everything below it. If an
		// in-flight delta still names a compacted base, the resulting
		// chain break heals via anti-entropy or daemon escalation.
		st.compactLocked(rank, seq)
	}
	st.stats.Saves++
	st.stats.SavedBytes += int64(len(image))
	return Accepted
}

// materialize rebuilds the full image a delta describes: the base's
// SAVED log followed by the delta's, under the delta's clocks and
// vectors. The re-encoding is deterministic (sorted vector keys, fixed
// layout), so every replica materializes byte-identical images from the
// same chain — what lets anti-entropy and the chunked restart fetch
// treat replicas as interchangeable byte sources.
func materialize(baseImg []byte, delta *Image) ([]byte, error) {
	base, err := DecodeImage(baseImg)
	if err != nil {
		return nil, err
	}
	bsn, err := base.ProtoSnapshot()
	if err != nil {
		return nil, err
	}
	dsn, err := delta.ProtoSnapshot()
	if err != nil {
		return nil, err
	}
	sn := core.MergeSnapshots(bsn, dsn)
	full := &Image{
		Rank:     delta.Rank,
		Seq:      delta.Seq,
		AppState: delta.AppState,
		Proto:    core.AppendSnapshot(make([]byte, 0, core.SnapshotSize(sn)), sn),
	}
	return AppendImage(make([]byte, 0, ImageSize(full)), full), nil
}

func (st *Store) storeLocked(rank int, seq uint64, image []byte) {
	m := st.images[rank]
	if m == nil {
		m = make(map[uint64][]byte)
		st.images[rank] = m
	}
	m[seq] = image
	if st.wal != nil {
		rec := make([]byte, 16, 16+len(image))
		binary.BigEndian.PutUint64(rec, uint64(rank))
		binary.BigEndian.PutUint64(rec[8:], seq)
		// A failed (or injection-torn) append is silent, as a real torn
		// write would be; the loader's resync absorbs the damage.
		st.wal.Append(append(rec, image...))
	}
	if seq > st.latest[rank] {
		st.latest[rank] = seq
	}
	// Partial assemblies at or below the new image are superseded.
	for s := range st.partials[rank] {
		if s <= st.latest[rank] {
			delete(st.partials[rank], s)
		}
	}
}

func (st *Store) compactLocked(rank int, floor uint64) {
	for s := range st.images[rank] {
		if s < floor {
			delete(st.images[rank], s)
			st.stats.ChainCompactions++
		}
	}
}

// PutChunk lands one chunk of a chunked image transfer. ack asks the
// server to acknowledge the chunk — pure retransmit suppression; the
// daemon never infers durability from chunk acks, because a replica
// respawned empty still looks all-acked to a daemon that shipped it
// chunks before the crash. full asks for a full-image ack
// (KCkptSaveAck) instead: the store holds a verified, materialized
// image at or above seq — either this chunk completed the assembly, or
// the transfer is a retransmission of something already stored. Only
// full acks count toward the write quorum, so a replica that dies with
// a partial chain, or assembles a delta whose base it lost, never
// claims an image it cannot serve.
func (st *Store) PutChunk(rank int, seq uint64, idx, count uint32, body []byte) (ack, full, chainBreak bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.staleLocked(rank, seq) {
		return false, true, false
	}
	pm := st.partials[rank]
	if pm == nil {
		pm = make(map[uint64]*partialImage)
		st.partials[rank] = pm
	}
	p := pm[seq]
	if p == nil || p.count != int(count) {
		p = &partialImage{count: int(count), got: make([]bool, count), chunks: make([][]byte, count)}
		pm[seq] = p
	}
	if !p.got[idx] {
		p.chunks[idx] = append([]byte(nil), body...)
		p.got[idx] = true
		p.n++
		p.size += len(body)
	}
	if p.n < p.count {
		return true, false, false
	}
	// Fully assembled — possibly a retry, if an earlier attempt broke
	// its chain and a retransmitted chunk re-triggered assembly after
	// anti-entropy delivered the base.
	image := make([]byte, 0, p.size)
	for _, c := range p.chunks {
		image = append(image, c...)
	}
	switch st.acceptLocked(rank, seq, image) {
	case Accepted, Stale:
		delete(pm, seq)
		return false, true, false
	case ChainBreak:
		// Keep the partial: the base may yet arrive via the sync pull
		// this verdict triggers, and the daemon's chunk retransmit will
		// re-run this acceptance.
		return false, false, true
	default:
		delete(pm, seq)
		return false, false, false
	}
}

// Get returns the latest stored image for a rank, if any.
func (st *Store) Get(rank int) ([]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	img, ok := st.images[rank][st.latest[rank]]
	return img, ok && len(img) > 0
}

// Has reports whether a rank has a stored checkpoint.
func (st *Store) Has(rank int) bool {
	_, ok := st.Get(rank)
	return ok
}

// Manifest describes the latest stored image for a rank, cut at
// chunkSize bytes per chunk, for the restart fast path: per-chunk
// CRC-32s let the fetcher validate each pulled chunk independently, and
// the whole-image CRC lets it group replicas serving byte-identical
// copies.
func (st *Store) Manifest(rank int, chunkSize uint32) wire.CkptManifest {
	st.mu.Lock()
	defer st.mu.Unlock()
	img, ok := st.images[rank][st.latest[rank]]
	if !ok || len(img) == 0 || chunkSize == 0 {
		return wire.CkptManifest{}
	}
	n := (len(img) + int(chunkSize) - 1) / int(chunkSize)
	m := wire.CkptManifest{
		Present:   true,
		Seq:       st.latest[rank],
		Size:      uint64(len(img)),
		ChunkSize: chunkSize,
		ImageCRC:  crc32.ChecksumIEEE(img),
		ChunkCRCs: make([]uint32, n),
	}
	for i := range m.ChunkCRCs {
		lo := i * int(chunkSize)
		hi := min(lo+int(chunkSize), len(img))
		m.ChunkCRCs[i] = crc32.ChecksumIEEE(img[lo:hi])
	}
	return m
}

// ChunkAt returns the encoded chunk frame for chunk idx of the image
// stored at exactly seq, cut at chunkSize — the fetch must hit the same
// bytes the manifest described, so a store that has since moved to a
// newer image serves nothing and lets the fetcher re-gather manifests.
func (st *Store) ChunkAt(rank int, seq uint64, idx, chunkSize uint32) ([]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	img, ok := st.images[rank][seq]
	if !ok || len(img) == 0 || chunkSize == 0 {
		return nil, false
	}
	n := (len(img) + int(chunkSize) - 1) / int(chunkSize)
	if int(idx) >= n {
		return nil, false
	}
	lo := int(idx) * int(chunkSize)
	hi := min(lo+int(chunkSize), len(img))
	body := img[lo:hi]
	return wire.AppendCkptChunk(wire.GetBuf(wire.CkptChunkSize(len(body))), seq, idx, uint32(n), body), true
}

// Marks returns the per-rank checkpoint-seq high-water marks for an
// anti-entropy request; a fresh store returns an empty map and pulls
// every rank's latest image.
func (st *Store) Marks() map[int]uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	marks := make(map[int]uint64, len(st.latest))
	for rank, m := range st.images {
		if len(m) > 0 {
			marks[rank] = st.latest[rank]
		}
	}
	return marks
}

// EntriesSince returns the latest stored images whose seq is above the
// requester's mark for that rank — the response half of the
// anti-entropy exchange. Only materialized full images travel: a
// respawned replica never needs a delta chain.
func (st *Store) EntriesSince(marks map[int]uint64) []wire.CkptEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []wire.CkptEntry
	for rank, m := range st.images {
		img, ok := m[st.latest[rank]]
		if !ok || len(img) == 0 {
			continue
		}
		if mark, known := marks[rank]; known && st.latest[rank] <= mark {
			continue
		}
		out = append(out, wire.CkptEntry{Rank: rank, Seq: st.latest[rank], Image: img})
	}
	return out
}

// MergeEntries folds a peer's sync response into the store via the
// same monotonic Put rule, returning how many images were accepted.
func (st *Store) MergeEntries(entries []wire.CkptEntry) int {
	added := 0
	for _, e := range entries {
		if st.Put(e.Rank, e.Seq, e.Image) {
			added++
		}
	}
	st.mu.Lock()
	st.stats.SyncedIn += int64(added)
	st.stats.Resyncs++
	// Merged images were already counted as Saves by Put; a resync is
	// not a save from a daemon, so move them to the sync column
	// (SavedBytes stays: it measures storage traffic either way).
	st.stats.Saves -= int64(added)
	st.mu.Unlock()
	return added
}

// Server is one checkpoint server replica frontend.
type Server struct {
	rt vtime.Runtime
	ep transport.Endpoint

	// Store is the stable storage behind this frontend; shared when
	// the server was built with NewServerWithStore.
	Store *Store

	// Peers are the other replicas of this checkpoint group; they
	// serve anti-entropy sync requests. Empty for a standalone server.
	Peers []int
	// Resync makes the server pull its peers' latest images on
	// startup — set on a replica respawned with an empty store.
	Resync bool
	// ResyncAttempts bounds the resync request rounds (default 10);
	// deployed out-of-process replicas set it higher.
	ResyncAttempts int

	synced atomic.Bool
}

// Synced reports whether a rejoining replica has completed at least one
// anti-entropy merge since Start — the point where its outage window
// closes.
func (s *Server) Synced() bool { return s.synced.Load() }

// NewServer creates a checkpoint server with its own private store.
func NewServer(rt vtime.Runtime, ep transport.Endpoint) *Server {
	return NewServerWithStore(rt, ep, NewStore())
}

// NewServerWithStore creates a frontend over an existing store, for
// failover setups where a respawned or backup server must serve the
// images its predecessor stored.
func NewServerWithStore(rt vtime.Runtime, ep transport.Endpoint, st *Store) *Server {
	return &Server{rt: rt, ep: ep, Store: st}
}

// Start runs the server loop as an actor, plus the resync requester if
// the replica is rejoining its group.
func (s *Server) Start() {
	s.rt.Go("ckpt-server", s.run)
	if s.Resync && len(s.Peers) > 0 {
		s.rt.Go(fmt.Sprintf("cs-resync-%d", s.ep.ID()), s.resyncLoop)
	}
}

// HasImage reports whether a rank has a stored checkpoint.
func (s *Server) HasImage(rank int) bool { return s.Store.Has(rank) }

// resyncLoop mirrors the event logger's: marks are snapshotted once at
// join time and the request retries with backoff until any peer's
// response lands (merging is idempotent).
func (s *Server) resyncLoop() {
	attempts := s.ResyncAttempts
	if attempts <= 0 {
		attempts = 10
	}
	req := wire.EncodeSyncMarks(s.Store.Marks())
	bo := transport.Backoff{Base: 5 * time.Millisecond, Seed: uint64(s.ep.ID())}
	for attempt := 0; attempt < attempts && !s.synced.Load(); attempt++ {
		for _, p := range s.Peers {
			s.ep.Send(p, wire.KCSSyncReq, req)
		}
		s.rt.Sleep(bo.Delay(attempt))
	}
}

func (s *Server) run() {
	for {
		f, ok := s.ep.Inbox().Recv()
		if !ok {
			return
		}
		switch f.Kind {
		case wire.KCkptSave:
			seq, image, err := wire.DecodeCkptSave(f.Data)
			if err != nil {
				s.countMalformed()
				continue
			}
			// Accept verifies the image before storing: a save damaged
			// in flight is dropped *unacked*, so the daemon retransmits
			// it and the store only ever holds verifiable images. The
			// save frame itself is NOT recycled: the daemon retains its
			// transfer buffer for retransmission. Ack even a stale
			// duplicate: the retransmission means the saver never saw
			// the first ack.
			switch s.Store.Accept(f.From, seq, image) {
			case Accepted, Stale:
				s.ep.Send(f.From, wire.KCkptSaveAck, wire.AppendU64(wire.GetBuf(8), seq))
			case ChainBreak:
				s.pullPeers()
			}
		case wire.KCkptChunk:
			seq, idx, count, body, err := wire.DecodeCkptChunk(f.Data)
			if err != nil {
				s.countMalformed()
				continue
			}
			// Like saves, chunk frames are retained by the daemon for
			// retransmission and never recycled here; the body is copied
			// into the partial assembly. A full-image ack (the store holds
			// a verified image at or above seq) supersedes the chunk ack:
			// only it counts toward the daemon's write quorum.
			ack, full, chainBreak := s.Store.PutChunk(f.From, seq, idx, count, body)
			switch {
			case full:
				s.ep.Send(f.From, wire.KCkptSaveAck, wire.AppendU64(wire.GetBuf(8), seq))
			case ack:
				s.ep.Send(f.From, wire.KCkptChunkAck,
					wire.AppendCkptChunkAck(wire.GetBuf(wire.CkptChunkAckLen), seq, idx))
			}
			if chainBreak {
				s.pullPeers()
			}
		case wire.KCkptManifestReq:
			chunkSize, err := wire.DecodeU32(f.Data)
			if err != nil {
				s.countMalformed()
				continue
			}
			s.Store.mu.Lock()
			s.Store.stats.Fetches++
			s.Store.mu.Unlock()
			s.ep.Send(f.From, wire.KCkptManifest, wire.EncodeCkptManifest(s.Store.Manifest(f.From, chunkSize)))
		case wire.KCkptChunkFetch:
			seq, idx, chunkSize, err := wire.DecodeCkptChunkFetch(f.Data)
			if err != nil {
				s.countMalformed()
				continue
			}
			// Silent when the exact image is gone (superseded since the
			// manifest was served): the fetcher times out and re-gathers.
			if frame, ok := s.Store.ChunkAt(f.From, seq, idx, chunkSize); ok {
				s.ep.Send(f.From, wire.KCkptChunkData, frame)
			}
		case wire.KCkptFetch:
			s.Store.mu.Lock()
			s.Store.stats.Fetches++
			s.Store.mu.Unlock()
			img, ok := s.Store.Get(f.From)
			s.ep.Send(f.From, wire.KCkptImage, wire.EncodeCkptImage(ok, img))
		case wire.KCSSyncReq:
			marks, err := wire.DecodeSyncMarks(f.Data)
			if err != nil {
				s.countMalformed()
				continue
			}
			s.ep.Send(f.From, wire.KCSSyncResp, wire.EncodeCkptEntries(s.Store.EntriesSince(marks)))
		case wire.KCSSyncResp:
			entries, err := wire.DecodeCkptEntries(f.Data)
			if err != nil {
				s.countMalformed()
				continue
			}
			s.Store.MergeEntries(entries)
			s.synced.Store(true)
		}
	}
}

// pullPeers fires a one-shot anti-entropy pull after a chain break: a
// peer's materialized latest image at or above the broken delta's base
// repairs or supersedes the chain. The daemon's retransmit/escalation
// keeps the save live regardless, so one unretried round suffices.
func (s *Server) pullPeers() {
	if len(s.Peers) == 0 {
		return
	}
	req := wire.EncodeSyncMarks(s.Store.Marks())
	for _, p := range s.Peers {
		s.ep.Send(p, wire.KCSSyncReq, req)
	}
}

func (s *Server) countMalformed() {
	s.Store.mu.Lock()
	s.Store.stats.Malformed++
	s.Store.mu.Unlock()
}
