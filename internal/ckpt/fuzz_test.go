package ckpt

import (
	"bytes"
	"testing"
)

// FuzzDecodeImage feeds arbitrary bytes to the checkpoint image
// decoder — the integrity gate between the stores and a restarting
// daemon. Accepted frames must round-trip byte-identically (the store
// replicas compare materialized images byte for byte, so the encoding
// must be deterministic).
func FuzzDecodeImage(f *testing.F) {
	im := &Image{Rank: 2, Seq: 5, BaseSeq: 4, AppState: []byte("app"), Proto: []byte("proto")}
	if enc, err := im.Encode(); err == nil {
		f.Add(enc)
	}
	empty := &Image{}
	if enc, err := empty.Encode(); err == nil {
		f.Add(enc)
	}
	f.Add([]byte("MVC2\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeImage(data)
		if err != nil {
			return
		}
		enc, err := got.Encode()
		if err != nil {
			t.Fatalf("re-encoding accepted image: %v", err)
		}
		again, err := DecodeImage(enc)
		if err != nil {
			t.Fatalf("re-encode of accepted image rejected: %v", err)
		}
		if again.Rank != got.Rank || again.Seq != got.Seq || again.BaseSeq != got.BaseSeq ||
			!bytes.Equal(again.AppState, got.AppState) || !bytes.Equal(again.Proto, got.Proto) {
			t.Fatalf("round trip: %+v vs %+v", got, again)
		}
	})
}
