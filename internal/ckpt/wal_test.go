package ckpt

import (
	"bytes"
	"path/filepath"
	"testing"

	"mpichv/internal/walog"
)

// TestStoreWALSurvivesRestart: a checkpoint store with an armed WAL,
// killed and reopened over the same file, serves the latest image of
// every rank — the deployed CS worker's restart path. Deltas are
// materialized before hitting the log, so the reopened store is whole
// even if the delta's base was compacted in memory.
func TestStoreWALSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cs.wal")
	st := NewStore()
	if _, err := st.OpenWAL(path, walog.TornConfig{}); err != nil {
		t.Fatal(err)
	}
	img1 := makeImage(t, 0, 1)
	img2 := makeImage(t, 0, 2)
	img3 := makeImage(t, 1, 1)
	if st.Accept(0, 1, img1) != Accepted || st.Accept(0, 2, img2) != Accepted || st.Accept(1, 1, img3) != Accepted {
		t.Fatal("accept failed")
	}
	st.Accept(0, 2, img2) // duplicate must not re-append
	st.CloseWAL()

	st2 := NewStore()
	res, err := st2.OpenWAL(path, walog.TornConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn != 0 || res.Records != 3 {
		t.Fatalf("clean WAL loaded %+v, want 3 records", res)
	}
	got, ok := st2.Get(0)
	if !ok || !bytes.Equal(got, img2) {
		t.Fatalf("rank 0 restored wrong image (ok=%v)", ok)
	}
	if !st2.Has(1) {
		t.Fatal("rank 1 lost its image across the restart")
	}
}

// TestStoreWALTornImage: a torn image append costs that image only; the
// image's own CRC frame rejects any half-written record the log scan
// might still frame correctly.
func TestStoreWALTornImage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cs.wal")
	st := NewStore()
	// Every append torn: nothing durable survives.
	if _, err := st.OpenWAL(path, walog.TornConfig{Seed: 1, Every: 1}); err != nil {
		t.Fatal(err)
	}
	if st.Accept(0, 1, makeImage(t, 0, 1)) != Accepted {
		t.Fatal("accept failed")
	}
	st.CloseWAL()

	st2 := NewStore()
	res, err := st2.OpenWAL(path, walog.TornConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 0 || res.Torn == 0 {
		t.Fatalf("torn-everything WAL loaded %+v", res)
	}
	if st2.Has(0) {
		t.Fatal("a torn image was restored")
	}
}
